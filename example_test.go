package afterimage_test

import (
	"fmt"

	"afterimage"
)

// ExampleNewLab demonstrates the five-line version of the attack: boot a
// simulated machine and leak a victim's branch outcomes through the
// IP-stride prefetcher.
func ExampleNewLab() {
	lab := afterimage.NewLab(afterimage.Options{Seed: 42, Quiet: true})
	secret := []bool{true, false, true, true, false}
	res := lab.RunVariant1(afterimage.V1Options{Secret: secret})
	fmt.Println("leaked:", res.Inferred)
	fmt.Printf("success: %.0f%%\n", res.SuccessRate()*100)
	// Output:
	// leaked: [true false true true false]
	// success: 100%
}

// ExampleLab_RevFig6 reproduces the paper's indexing experiment: the
// prefetcher triggers exactly when eight or more low IP bits match.
func ExampleLab_RevFig6() {
	lab := afterimage.NewLab(afterimage.Options{Seed: 1, Quiet: true})
	for _, p := range lab.RevFig6() {
		if p.MatchedBits == 7 || p.MatchedBits == 8 {
			fmt.Printf("%d matched bits: triggered=%v\n", p.MatchedBits, p.Triggered)
		}
	}
	// Output:
	// 7 matched bits: triggered=false
	// 8 matched bits: triggered=true
}

// ExampleLab_RunSGX leaks an enclave's secret-dependent stride after the
// enclave exits (the §5.4 channel).
func ExampleLab_RunSGX() {
	lab := afterimage.NewLab(afterimage.Options{Seed: 3, Quiet: true})
	res := lab.RunSGX(0, []bool{true, false})
	fmt.Println("inferred:", res.Inferred)
	// Output:
	// inferred: [true false]
}

// ExampleCompareTrainingCosts quantifies §9.2: the prefetcher trains in one
// candidate; a branch predictor needs 256 under ASLR.
func ExampleCompareTrainingCosts() {
	c := afterimage.CompareTrainingCosts(1)
	fmt.Println("BPU candidates:", c.BPUCandidates)
	fmt.Println("prefetcher candidates:", c.PrefetcherCandidates)
	// Output:
	// BPU candidates: 256
	// prefetcher candidates: 1
}
