package afterimage

import "testing"

func TestModelStrings(t *testing.T) {
	if CoffeeLake.String() == "" || Haswell.String() == "" {
		t.Fatal("empty model names")
	}
	lab := NewLab(Options{Model: Haswell, Seed: 1})
	if lab.ModelName() != "Haswell i7-4770" {
		t.Fatalf("ModelName = %q", lab.ModelName())
	}
}

func TestSecondsConversion(t *testing.T) {
	lab := NewLab(Options{Seed: 1})
	if s := lab.Seconds(3_000_000_000); s != 1 {
		t.Fatalf("Seconds = %v", s)
	}
}

func TestRandomBitsDeterministic(t *testing.T) {
	a := NewLab(Options{Seed: 9}).randomBits(32)
	b := NewLab(Options{Seed: 9}).randomBits(32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random bits differ across equal seeds")
		}
	}
}

func TestRevFig6IndexBoundary(t *testing.T) {
	lab := NewLab(Options{Seed: 2, Quiet: true})
	for _, p := range lab.RevFig6() {
		want := p.MatchedBits >= 8
		if p.Triggered != want {
			t.Fatalf("matched=%d triggered=%v, want %v (t=%d)",
				p.MatchedBits, p.Triggered, want, p.AccessTime)
		}
	}
}

func TestRevFig7Policy(t *testing.T) {
	lab := NewLab(Options{Seed: 3, Quiet: true})
	a := lab.RevFig7(true) // Figure 7a
	wantA := []Fig7Point{
		{1, true, false}, {2, false, false}, {3, false, true},
	}
	for i, w := range wantA {
		if a[i].OldStrideFired != w.OldStrideFired || a[i].NewStrideFired != w.NewStrideFired {
			t.Fatalf("7a iter %d: %+v, want %+v", i+1, a[i], w)
		}
	}
	b := lab.RevFig7(false) // Figure 7b
	wantB := []Fig7Point{
		{1, true, false}, {2, false, true},
	}
	for i, w := range wantB {
		if b[i].OldStrideFired != w.OldStrideFired || b[i].NewStrideFired != w.NewStrideFired {
			t.Fatalf("7b iter %d: %+v, want %+v", i+1, b[i], w)
		}
	}
}

func TestRevTable1(t *testing.T) {
	lab := NewLab(Options{Seed: 4, Quiet: true})
	rows := lab.RevTable1()
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		switch r.Pool {
		case "recl":
			if !r.SharePhysical || !r.Prefetchable {
				t.Fatalf("recl offset %d: %+v (want shared & prefetchable)", r.PageOffset, r)
			}
		case "lock":
			if r.SharePhysical {
				t.Fatalf("lock offset %d shares a frame", r.PageOffset)
			}
			want := r.PageOffset == 1 // only the next page is prefetchable
			if r.Prefetchable != want {
				t.Fatalf("lock offset %d: prefetchable=%v, want %v", r.PageOffset, r.Prefetchable, want)
			}
		}
	}
}

func TestRevFig8a(t *testing.T) {
	lab := NewLab(Options{Seed: 5, Quiet: true})
	for _, tc := range []struct{ n, evicted int }{{26, 2}, {30, 6}} {
		pts := lab.RevFig8a(tc.n)
		for _, p := range pts {
			want := p.Index >= tc.evicted
			if p.Triggered != want {
				t.Fatalf("n=%d point %d: triggered=%v, want %v", tc.n, p.Index, p.Triggered, want)
			}
		}
	}
}

func TestRevFig8b(t *testing.T) {
	lab := NewLab(Options{Seed: 6, Quiet: true})
	for _, p := range lab.RevFig8b() {
		want := p.Index < 8 || p.Index >= 16
		if p.Triggered != want {
			t.Fatalf("point %d: triggered=%v, want %v", p.Index, p.Triggered, want)
		}
	}
}

func TestSGXRetention(t *testing.T) {
	lab := NewLab(Options{Seed: 7, Quiet: true})
	hit, at := lab.SGXRetention()
	if !hit {
		t.Fatalf("enclave prefetch lost after EEXIT (t=%d)", at)
	}
}

func TestVariant1CrossThreadAccuracy(t *testing.T) {
	lab := NewLab(Options{Seed: 8})
	res := lab.RunVariant1(V1Options{Bits: 64})
	if res.SuccessRate() < 0.95 {
		t.Fatalf("cross-thread F+R success %.2f, want ≥ 0.95 (paper: 0.99)", res.SuccessRate())
	}
	if len(res.LastProbe) != 64 {
		t.Fatalf("probe vector has %d points", len(res.LastProbe))
	}
}

func TestVariant1CrossProcessAccuracy(t *testing.T) {
	lab := NewLab(Options{Seed: 9})
	res := lab.RunVariant1(V1Options{Bits: 64, CrossProcess: true})
	if res.SuccessRate() < 0.90 {
		t.Fatalf("cross-process F+R success %.2f, want ≥ 0.90 (paper: 0.97)", res.SuccessRate())
	}
}

func TestVariant1PrimeProbeBackend(t *testing.T) {
	lab := NewLab(Options{Seed: 10})
	res := lab.RunVariant1(V1Options{Bits: 16, Backend: PrimeProbe})
	if res.SuccessRate() < 0.85 {
		t.Fatalf("P+P success %.2f", res.SuccessRate())
	}
}

func TestVariant2Accuracy(t *testing.T) {
	lab := NewLab(Options{Seed: 11})
	res := lab.RunVariant2(V2Options{Bits: 64})
	if res.SuccessRate() < 0.85 {
		t.Fatalf("V2 success %.2f, want ≥ 0.85 (paper: 0.91)", res.SuccessRate())
	}
}

func TestVariant2WithIPSearch(t *testing.T) {
	lab := NewLab(Options{Seed: 12, Quiet: true})
	res := lab.RunVariant2(V2Options{Bits: 8, UseIPSearch: true})
	if !res.IPSearched {
		t.Fatal("IP search did not run")
	}
	if res.FoundIPLow8 != 0xA7 {
		t.Fatalf("IP search found %#x, want 0xA7", res.FoundIPLow8)
	}
	if res.SuccessRate() < 0.8 {
		t.Fatalf("V2-with-search success %.2f", res.SuccessRate())
	}
}

func TestSGXLeakAccuracy(t *testing.T) {
	lab := NewLab(Options{Seed: 13, Quiet: true})
	res := lab.RunSGX(16, nil)
	if res.SuccessRate() != 1.0 {
		t.Fatalf("SGX leak success %.2f, want 1.0 in the quiet PoC", res.SuccessRate())
	}
}

func TestMitigationDefeatsVariant1(t *testing.T) {
	lab := NewLab(Options{Seed: 14, MitigationFlush: true})
	res := lab.RunVariant1(V1Options{Bits: 32})
	// With clear-ip-prefetcher on every switch, no echo survives: every
	// round infers "else", so accuracy collapses to the base rate of zeros.
	zeros := 0
	for _, s := range res.Secret {
		if !s {
			zeros++
		}
	}
	if res.Correct != zeros {
		t.Fatalf("mitigated attack still leaked: %d correct vs %d zeros", res.Correct, zeros)
	}
	for _, inf := range res.Inferred {
		if inf {
			t.Fatal("mitigated attack produced a positive inference")
		}
	}
}

func TestCovertChannelSingleEntry(t *testing.T) {
	lab := NewLab(Options{Seed: 15})
	res := lab.RunCovertChannel(CovertOptions{Message: []byte("The quick brown fox jumps over the lazy dog")})
	if res.ErrorRate() > 0.06 {
		t.Fatalf("single-entry covert error %.1f%%, paper reports <6%%", res.ErrorRate()*100)
	}
	if res.Bps(1.0/3e9) <= 0 {
		t.Fatal("non-positive bandwidth")
	}
}

func TestCovertChannelManyEntriesDegrades(t *testing.T) {
	lab1 := NewLab(Options{Seed: 16})
	r1 := lab1.RunCovertChannel(CovertOptions{Message: make([]byte, 120), Entries: 1})
	lab24 := NewLab(Options{Seed: 16})
	r24 := lab24.RunCovertChannel(CovertOptions{Message: make([]byte, 120), Entries: 24})
	if r24.ErrorRate() <= r1.ErrorRate() {
		t.Fatalf("24-entry channel (%.1f%%) not noisier than 1-entry (%.1f%%)",
			r24.ErrorRate()*100, r1.ErrorRate()*100)
	}
	bps1 := r1.Bps(1.0 / 3e9)
	bps24 := r24.Bps(1.0 / 3e9)
	if bps24 <= bps1 {
		t.Fatalf("24 entries (%.0f bps) not faster than 1 (%.0f bps)", bps24, bps1)
	}
}

func TestRSAExtractionSmallKey(t *testing.T) {
	lab := NewLab(Options{Seed: 17})
	res := lab.ExtractRSAKey(RSAOptions{KeyBits: 64, ItersPerBit: 5, VictimIterationCycles: 6000})
	if res.BitSuccessRate() < 0.97 {
		t.Fatalf("RSA bit recovery %.2f (PSC obs %.2f)", res.BitSuccessRate(), res.PSCSuccessRate())
	}
	if res.Recovered.Cmp(res.TrueExponent) != 0 && res.BitsCorrect != res.BitsTotal {
		t.Logf("recovered %v vs %v (%d/%d bits)", res.Recovered, res.TrueExponent, res.BitsCorrect, res.BitsTotal)
	}
	if res.Decryptions != res.BitsTotal*5 {
		t.Fatalf("decryptions = %d, want %d", res.Decryptions, res.BitsTotal*5)
	}
}

func TestRSAExtractionPipelined(t *testing.T) {
	lab := NewLab(Options{Seed: 18})
	res := lab.ExtractRSAKey(RSAOptions{KeyBits: 64, ItersPerBit: 5, Pipelined: true, VictimIterationCycles: 6000})
	if res.BitSuccessRate() < 0.97 {
		t.Fatalf("pipelined RSA bit recovery %.2f", res.BitSuccessRate())
	}
	if res.Decryptions != 5 {
		t.Fatalf("pipelined mode used %d decryptions, want 5", res.Decryptions)
	}
}

func TestTrackOpenSSLOnsets(t *testing.T) {
	lab := NewLab(Options{Seed: 19})
	keyLoad, decrypt := lab.TrackOpenSSL()
	if keyLoad.OnsetIndex < 0 || decrypt.OnsetIndex < 0 {
		t.Fatalf("onsets not detected: key=%d dec=%d", keyLoad.OnsetIndex, decrypt.OnsetIndex)
	}
	if keyLoad.OnsetIndex >= decrypt.OnsetIndex {
		t.Fatalf("key load (%d) must precede decryption (%d)", keyLoad.OnsetIndex, decrypt.OnsetIndex)
	}
}

func TestRunTTestSeparation(t *testing.T) {
	aligned := RunTTest(true, 20)
	random := RunTTest(false, 20)
	fa, fr := aligned.FinalT(), random.FinalT()
	if fa > -9 && fa < 9 {
		t.Fatalf("aligned final t %.1f not decisive", fa)
	}
	if fr < -4.5 || fr > 4.5 {
		t.Fatalf("random-timing final t %.1f crossed the threshold", fr)
	}
}

func TestMitigationStudyNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("study is slow")
	}
	res, err := RunMitigationStudy(MitigationOptions{Instructions: 80_000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.AnalyticUpperBound > 0.073 {
		t.Fatalf("analytic bound %.4f above the paper's 7.3%%", res.AnalyticUpperBound)
	}
	if res.Top8Slowdown <= 0 || res.Top8Slowdown > 0.03 {
		t.Fatalf("top-8 slowdown %.4f outside the paper's regime", res.Top8Slowdown)
	}
	if res.OverallSlowdown > res.Top8Slowdown {
		t.Fatal("overall slowdown above the sensitive subset's")
	}
}

func TestSymbolsOfRoundWidth(t *testing.T) {
	syms := symbolsOf([]byte{0xFF, 0x00})
	// 16 bits → 4 symbols (last padded).
	if len(syms) != 4 {
		t.Fatalf("%d symbols", len(syms))
	}
	for _, s := range syms {
		if s >= 32 {
			t.Fatalf("symbol %d out of 5-bit range", s)
		}
	}
}

func TestBackendStrings(t *testing.T) {
	for _, b := range []Backend{FlushReload, PrimeProbe, PSC} {
		if b.String() == "" {
			t.Fatal("empty backend name")
		}
	}
}

// TestTrainingCostComparison pins the §9.2 numbers: BPU mistraining needs
// ~26 000 cycles and 256 sprayed candidates under ASLR; the prefetcher
// trains in one candidate and well under 2 000 cycles.
func TestTrainingCostComparison(t *testing.T) {
	c := CompareTrainingCosts(22)
	if c.BPUCandidates != 256 {
		t.Fatalf("BPU candidates = %d", c.BPUCandidates)
	}
	if c.BPUCycles < 20_000 || c.BPUCycles > 35_000 {
		t.Fatalf("BPU cycles = %d, want ~26 000", c.BPUCycles)
	}
	if c.PrefetcherCandidates != 1 {
		t.Fatalf("prefetcher candidates = %d", c.PrefetcherCandidates)
	}
	if c.PrefetcherCycles == 0 || c.PrefetcherCycles > 2000 {
		t.Fatalf("prefetcher training cycles = %d, want ≤ 2 000", c.PrefetcherCycles)
	}
	if c.Advantage() < 10 {
		t.Fatalf("training advantage only %.1fx", c.Advantage())
	}
}

// TestCovertChannelECC exercises the FEC extension: with Hamming(7,4) plus
// interleaving, a lossy multi-entry channel still delivers the exact
// message even when raw symbol errors occur.
func TestCovertChannelECC(t *testing.T) {
	msg := []byte("afterimage: error corrected covert payload!!")
	lab := NewLab(Options{Seed: 23})
	res := lab.RunCovertChannel(CovertOptions{Message: msg, Entries: 4, UseECC: true})
	if res.SymbolErrors == 0 {
		t.Log("note: no raw symbol errors occurred at this seed")
	}
	if res.MessageByteErrors != 0 {
		t.Fatalf("ECC failed to recover the message: %d byte errors (raw symbol errors %d, corrections %d)",
			res.MessageByteErrors, res.SymbolErrors, res.Corrections)
	}
	if string(res.DecodedMessage[:len(msg)]) != string(msg) {
		t.Fatal("decoded message mismatch")
	}
}

// TestCovertChannelECCBeatsRawUnderLoss compares raw and ECC delivery on
// the same noisy 8-entry channel.
func TestCovertChannelECCBeatsRawUnderLoss(t *testing.T) {
	msg := make([]byte, 160)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	raw := NewLab(Options{Seed: 24}).RunCovertChannel(CovertOptions{Message: msg, Entries: 8})
	eccRes := NewLab(Options{Seed: 24}).RunCovertChannel(CovertOptions{Message: msg, Entries: 8, UseECC: true})
	if raw.SymbolErrors == 0 {
		t.Skip("seed produced a clean raw channel; nothing to compare")
	}
	rawByteErr := raw.SymbolErrors * 2 // each lost symbol corrupts ≥1 byte; rough lower bound
	if eccRes.MessageByteErrors >= rawByteErr {
		t.Fatalf("ECC (%d byte errors) did not improve on raw (%d symbol errors)",
			eccRes.MessageByteErrors, raw.SymbolErrors)
	}
}

// TestTrackAES applies the §6.3 load-tracking flow to the AES victim: both
// the key-expansion slot and the encryption slot are recovered, and the
// victim's ciphertext is the FIPS-197 vector (it computed real AES-128).
func TestTrackAES(t *testing.T) {
	lab := NewLab(Options{Seed: 26})
	_, expandSlot, encryptSlot, ct := lab.TrackAES()
	if expandSlot < 0 || encryptSlot <= expandSlot {
		t.Fatalf("slots: expand=%d encrypt=%d", expandSlot, encryptSlot)
	}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	if ct != want {
		t.Fatalf("victim ciphertext % x, want FIPS-197 vector", ct)
	}
}

// TestShinBaselineTable4 pins the Table 4 comparison: the passive footprint
// attack (Shin et al.) reads a table-scanning victim but learns nothing
// from a branch-owned single load — which AfterImage leaks (Variant 1).
func TestShinBaselineTable4(t *testing.T) {
	lab := NewLab(Options{Seed: 27, Quiet: true})
	scan := lab.RunShinBaseline(9)
	if !scan.FootprintDetected || scan.Stride != 9 {
		t.Fatalf("baseline missed the table-scan footprint: %+v", scan)
	}
	branch := lab.RunShinBaselineOnBranchVictim(true)
	if branch.FootprintDetected {
		t.Fatalf("baseline claims a footprint on a single branch load: %+v", branch)
	}
	// AfterImage leaks that same branch victim.
	lab2 := NewLab(Options{Seed: 27, Quiet: true})
	res := lab2.RunVariant1(V1Options{Secret: []bool{true, false, true}})
	if res.SuccessRate() != 1.0 {
		t.Fatalf("AfterImage failed on the branch victim: %.2f", res.SuccessRate())
	}
}

// TestNoPrefetcherNoLeak is the failure-injection sanity check: on a
// machine whose IP-stride prefetcher never triggers, Variant 1 produces no
// signal at all.
func TestNoPrefetcherNoLeak(t *testing.T) {
	// Both tagging mitigations together leave no cross-context aliasing at
	// all — the strongest "no usable prefetcher" configuration.
	lab := NewLab(Options{Seed: 28, FullIPTag: true, PIDTag: true})
	res := lab.RunVariant1(V1Options{Bits: 24, CrossProcess: true})
	for _, inf := range res.Inferred {
		if inf {
			t.Fatal("leak signal without a usable prefetcher entry")
		}
	}
}

// TestLabDeterminism: identical options reproduce identical full attack
// runs, cycle for cycle.
func TestLabDeterminism(t *testing.T) {
	run := func() (LeakResult, uint64) {
		lab := NewLab(Options{Seed: 99})
		r := lab.RunVariant1(V1Options{Bits: 40, CrossProcess: true})
		return r, lab.Machine().Now()
	}
	r1, c1 := run()
	r2, c2 := run()
	if c1 != c2 {
		t.Fatalf("clock diverged: %d vs %d", c1, c2)
	}
	for i := range r1.Inferred {
		if r1.Inferred[i] != r2.Inferred[i] {
			t.Fatal("inference diverged across identical runs")
		}
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("cycle counts diverged")
	}
}

func TestDiscoverEvictionSetFacade(t *testing.T) {
	lab := NewLab(Options{Seed: 29, Quiet: true, Model: Haswell})
	lines, trials, err := lab.DiscoverEvictionSet()
	if err != nil {
		t.Fatal(err)
	}
	if lines != 16 {
		t.Fatalf("MES size %d", lines)
	}
	if trials <= 0 {
		t.Fatal("no trials counted")
	}
}

// TestFullReport runs the end-to-end report and pins every headline number
// to its expected regime — the library's own regression gate.
func TestFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	r, err := FullReport(ReportOptions{Seed: 1, Rounds: 60, MitigationInstructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	re := r.ReverseEngineering
	if re.Fig6BoundaryBits != 8 || !re.Fig7PolicyExact || re.Table1RowsMatching != 8 ||
		re.Fig8aEntries != 24 || !re.Fig8bBitPLRUMatching || !re.SGXRetention {
		t.Fatalf("reverse engineering drifted: %+v", re)
	}
	if r.Attacks.V1ThreadSuccess < 0.95 || r.Attacks.V1ProcessSuccess < 0.90 ||
		r.Attacks.V2KernelSuccess < 0.85 || r.Attacks.SGXSuccess < 0.95 || !r.Attacks.IPSearchFound {
		t.Fatalf("attack rates drifted: %+v", r.Attacks)
	}
	if r.Covert.SingleEntryBps < 700 || r.Covert.SingleEntryBps > 900 ||
		r.Covert.SingleEntryError > 0.06 {
		t.Fatalf("covert single-entry drifted: %+v", r.Covert)
	}
	if r.Covert.MaxEntriesBps < 10_000 || r.Covert.MaxEntriesError < 0.25 {
		t.Fatalf("covert max-entries drifted: %+v", r.Covert)
	}
	if r.RSA.BitSuccess < 0.97 || r.RSA.Minutes1024Budget < 150 || r.RSA.Minutes1024Budget > 230 {
		t.Fatalf("RSA budget drifted: %+v", r.RSA)
	}
	if r.Power.AlignedFinalT > -9 && r.Power.AlignedFinalT < 9 {
		t.Fatalf("aligned t-test drifted: %+v", r.Power)
	}
	if r.Power.RandomFinalT < -4.5 || r.Power.RandomFinalT > 4.5 {
		t.Fatalf("random t-test drifted: %+v", r.Power)
	}
	if r.Mitigation.Top8Slowdown <= 0 || r.Mitigation.Top8Slowdown > 0.03 ||
		r.Mitigation.AnalyticBound > 0.073 {
		t.Fatalf("mitigation drifted: %+v", r.Mitigation)
	}
	if r.Comparison.Advantage < 10 {
		t.Fatalf("comparison drifted: %+v", r.Comparison)
	}
	// JSON round-trips.
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := jsonUnmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != r.Schema || back.Attacks.V1ThreadSuccess != r.Attacks.V1ThreadSuccess {
		t.Fatal("JSON round-trip lost data")
	}
}

// TestHaswellModelRunsFullSuite exercises the Table 2 second machine: the
// reverse-engineering results and Variant 1 hold on the Haswell model too.
func TestHaswellModelRunsFullSuite(t *testing.T) {
	lab := NewLab(Options{Seed: 31, Quiet: true, Model: Haswell})
	for _, p := range lab.RevFig6() {
		if p.Triggered != (p.MatchedBits >= 8) {
			t.Fatalf("Haswell fig6 point %d wrong", p.MatchedBits)
		}
	}
	alive := 0
	for _, p := range lab.RevFig8a(26) {
		if p.Triggered {
			alive++
		}
	}
	if alive != 24 {
		t.Fatalf("Haswell table size %d", alive)
	}
	noisy := NewLab(Options{Seed: 31, Model: Haswell})
	res := noisy.RunVariant1(V1Options{Bits: 48})
	if res.SuccessRate() < 0.90 {
		t.Fatalf("Haswell V1 success %.2f", res.SuccessRate())
	}
	ppLab := NewLab(Options{Seed: 32, Model: Haswell})
	pp := ppLab.RunVariant1(V1Options{Bits: 8, Backend: PrimeProbe})
	if pp.SuccessRate() < 0.85 {
		t.Fatalf("Haswell P+P success %.2f", pp.SuccessRate())
	}
}

// TestTable3ExtractionMatrix exercises every variant × extraction-technique
// cell of Table 3: V1 with F+R, P+P and PSC; V2 with F+R and PSC.
func TestTable3ExtractionMatrix(t *testing.T) {
	cases := []struct {
		name string
		min  float64
		run  func() float64
	}{
		{"V1/F+R", 0.95, func() float64 {
			return NewLab(Options{Seed: 51}).RunVariant1(V1Options{Bits: 32}).SuccessRate()
		}},
		{"V1/P+P", 0.85, func() float64 {
			return NewLab(Options{Seed: 52}).RunVariant1(V1Options{Bits: 12, Backend: PrimeProbe}).SuccessRate()
		}},
		{"V1/PSC", 0.85, func() float64 {
			return NewLab(Options{Seed: 53}).RunVariant1(V1Options{Bits: 32, Backend: PSC}).SuccessRate()
		}},
		{"V1/PSC-cross-process", 0.80, func() float64 {
			return NewLab(Options{Seed: 54}).RunVariant1(V1Options{Bits: 32, Backend: PSC, CrossProcess: true}).SuccessRate()
		}},
		{"V2/F+R", 0.85, func() float64 {
			return NewLab(Options{Seed: 55}).RunVariant2(V2Options{Bits: 32}).SuccessRate()
		}},
		{"V2/PSC", 0.80, func() float64 {
			return NewLab(Options{Seed: 56}).RunVariant2(V2Options{Bits: 32, Backend: PSC}).SuccessRate()
		}},
	}
	for _, tc := range cases {
		if got := tc.run(); got < tc.min {
			t.Errorf("%s success %.2f below %.2f", tc.name, got, tc.min)
		} else {
			t.Logf("%s success %.2f", tc.name, got)
		}
	}
}

func TestRunCPAAttackFacade(t *testing.T) {
	aligned := RunCPAAttack(true, 2000, 5)
	if !aligned.Recovered {
		t.Fatalf("aligned CPA failed: %+v", aligned)
	}
	random := RunCPAAttack(false, 2000, 5)
	if random.PeakCorrelation > aligned.PeakCorrelation {
		t.Fatal("random timing outperformed aligned timing")
	}
}

// TestVariant1PSCNeedsNoSharedMemory pins the PSC back-end's defining
// property: the victim page is private (MapLocked, never mapped into the
// attacker), yet the branch still leaks.
func TestVariant1PSCCrossProcessPrivateMemory(t *testing.T) {
	lab := NewLab(Options{Seed: 61})
	res := lab.RunVariant1(V1Options{Bits: 32, Backend: PSC, CrossProcess: true})
	if res.SuccessRate() < 0.80 {
		t.Fatalf("cross-process PSC success %.2f", res.SuccessRate())
	}
}

// TestSGXWithMitigation: the clear-ip-prefetcher flush fires on domain
// switches, but the §5.4 PoC's ECALL round-trip happens inside one task
// slice — training and readout are separated by the enclave transition,
// not a scheduler switch, so this PoC variant survives (the paper's flush
// is specified per context switch; an SGX-aware deployment would also
// flush on EEXIT).
func TestSGXWithMitigationFlushSemantics(t *testing.T) {
	lab := NewLab(Options{Seed: 62, Quiet: true, MitigationFlush: true})
	res := lab.RunSGX(8, nil)
	if res.SuccessRate() < 0.99 {
		t.Fatalf("unexpected: enclave PoC broken by switch-scoped flush (%.2f)", res.SuccessRate())
	}
}
