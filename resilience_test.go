package afterimage

import (
	"errors"
	"reflect"
	"testing"

	"afterimage/internal/faults"
)

// TestSweepZeroIntensityMatchesDirectRuns: the zero-intensity sweep point is
// bit-for-bit the clean Table 3 run — same seed offset, same success rate
// and cycle count — for every leak attack.
func TestSweepZeroIntensityMatchesDirectRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep comparison is slow")
	}
	const seed, bits = 1, 32
	base := NewLab(Options{Seed: seed})

	cases := []struct {
		attack SweepAttack
		direct func() (rate float64, cycles uint64)
	}{
		{SweepV1Thread, func() (float64, uint64) {
			r := NewLab(Options{Seed: seed}).RunVariant1(V1Options{Bits: bits})
			return r.SuccessRate(), r.Cycles
		}},
		{SweepV1Process, func() (float64, uint64) {
			r := NewLab(Options{Seed: seed + 1}).RunVariant1(V1Options{Bits: bits, CrossProcess: true})
			return r.SuccessRate(), r.Cycles
		}},
		{SweepV2Kernel, func() (float64, uint64) {
			r := NewLab(Options{Seed: seed + 2}).RunVariant2(V2Options{Bits: bits})
			return r.SuccessRate(), r.Cycles
		}},
	}
	for _, tc := range cases {
		sweep := base.RunFaultSweep(SweepOptions{
			Attack: tc.attack, Intensities: []float64{0}, Bits: bits,
		})
		if len(sweep.Points) != 1 {
			t.Fatalf("%v: %d points", tc.attack, len(sweep.Points))
		}
		pt := sweep.Points[0]
		rate, cycles := tc.direct()
		if pt.SuccessRate != rate || pt.Cycles != cycles {
			t.Errorf("%v: zero-intensity point (%.3f, %d cycles) != direct run (%.3f, %d cycles)",
				tc.attack, pt.SuccessRate, pt.Cycles, rate, cycles)
		}
		if pt.FaultEvents != 0 || pt.Err != "" {
			t.Errorf("%v: zero-intensity point reports faults: %+v", tc.attack, pt)
		}
	}
}

// TestSweepDeterministic: the whole curve is a pure function of seed and
// options, including the faulted points.
func TestSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	opts := SweepOptions{
		Attack: SweepV1Thread, Intensities: []float64{0, 1, 4}, Bits: 24,
		Faults: faults.Config{EventsPerMCycle: 100},
	}
	a := NewLab(Options{Seed: 9}).RunFaultSweep(opts)
	b := NewLab(Options{Seed: 9}).RunFaultSweep(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different sweeps:\n%+v\nvs\n%+v", a, b)
	}
	var fired uint64
	for _, p := range a.Points {
		fired += p.FaultEvents
	}
	if fired == 0 {
		t.Fatal("no perturbations applied at non-zero intensities")
	}
}

// TestRunV1UnderInjectedFaults: the attack survives an aggressive fault
// schedule — it returns per-bit confidence and a success rate instead of
// crashing, and the engine verifiably fired.
func TestRunV1UnderInjectedFaults(t *testing.T) {
	lab := NewLab(Options{Seed: 4})
	eng := lab.InjectFaults(faults.Config{Seed: 21, Intensity: 2, EventsPerMCycle: 200})
	res, err := lab.RunVariant1E(V1Options{Bits: 32})
	if err != nil {
		t.Fatalf("faulted run errored: %v", err)
	}
	if eng.Stats().Total == 0 {
		t.Fatal("engine never fired")
	}
	if len(res.Confidence) != 32 {
		t.Fatalf("%d confidence scores for 32 bits", len(res.Confidence))
	}
	if res.SuccessRate() < 0.5 {
		t.Fatalf("success rate %.2f collapsed below coin-flip under moderate faults", res.SuccessRate())
	}
}

// TestConfidenceHighOnCleanRun: a clean run's confidence stays near 1.
func TestConfidenceHighOnCleanRun(t *testing.T) {
	res := NewLab(Options{Seed: 2}).RunVariant1(V1Options{Bits: 24})
	if len(res.Confidence) != 24 {
		t.Fatalf("%d confidence scores for 24 bits", len(res.Confidence))
	}
	if mc := res.MeanConfidence(); mc < 0.8 {
		t.Fatalf("clean-run mean confidence %.2f, want ≥ 0.8", mc)
	}
}

// TestBudgetFaultSurfacesAsTypedError: Options.MaxCycles terminates an
// experiment with a FaultBudget error through the Run*E boundary, keeping
// the bits leaked so far.
func TestBudgetFaultSurfacesAsTypedError(t *testing.T) {
	lab := NewLab(Options{Seed: 3, MaxCycles: 3_000_000})
	res, err := lab.RunVariant1E(V1Options{Bits: 1024})
	if err == nil {
		t.Fatal("1024-bit run inside a 3M-cycle budget did not fault")
	}
	var f *SimFault
	if !errors.As(err, &f) || f.Kind != FaultBudget {
		t.Fatalf("err = %v, want FaultBudget SimFault", err)
	}
	if len(res.Inferred) == 0 {
		t.Fatal("no partial bits survived the budget fault")
	}
	if len(res.Inferred) >= 1024 {
		t.Fatal("budget fault did not actually truncate the run")
	}
}

// TestNewLabEValidation: invalid geometry comes back as an error, not a
// panic.
func TestNewLabEValidation(t *testing.T) {
	if l, err := NewLabE(Options{Seed: 1}); err != nil || l == nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestZeroIntensityInjectRemovesPerturber: InjectFaults with an inert config
// uninstalls perturbation.
func TestZeroIntensityInjectRemovesPerturber(t *testing.T) {
	lab := NewLab(Options{Seed: 6})
	lab.InjectFaults(faults.Config{Seed: 1, Intensity: 5, EventsPerMCycle: 500})
	eng := lab.InjectFaults(faults.Config{})
	if eng.Enabled() {
		t.Fatal("inert engine reports enabled")
	}
	res, err := lab.RunVariant1E(V1Options{Bits: 8})
	if err != nil || eng.Stats().Total != 0 {
		t.Fatalf("residual perturbation after reset: err=%v events=%d", err, eng.Stats().Total)
	}
	if len(res.Inferred) != 8 {
		t.Fatalf("run truncated: %d bits", len(res.Inferred))
	}
}
