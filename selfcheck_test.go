package afterimage

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"afterimage/internal/faults"
	"afterimage/internal/runner"
)

// TestOptionValidationTyped: every hardened entry point rejects out-of-range
// configuration with a typed *OptionError naming the struct and field, so
// caller bugs are distinguishable from simulator faults.
func TestOptionValidationTyped(t *testing.T) {
	lab := func() *Lab { return NewLab(Options{Seed: 1, Quiet: true}) }
	cases := []struct {
		name         string
		run          func() error
		strct, field string
	}{
		{"covert-too-many-entries", func() error {
			_, err := lab().RunCovertChannelE(CovertOptions{Message: []byte("x"), Entries: MaxCovertEntries + 1})
			return err
		}, "CovertOptions", "Entries"},
		{"covert-negative-interleave", func() error {
			_, err := lab().RunCovertChannelE(CovertOptions{Message: []byte("x"), InterleaveDepth: -1})
			return err
		}, "CovertOptions", "InterleaveDepth"},
		{"v1-equal-strides", func() error {
			_, err := lab().RunVariant1E(V1Options{Bits: 2, IfStride: 7, ElseStride: 7})
			return err
		}, "V1Options", "ElseStride"},
		{"v1-stride-overflow", func() error {
			_, err := lab().RunVariant1E(V1Options{Bits: 2, IfStride: 99})
			return err
		}, "V1Options", "IfStride"},
		{"v2-stride-overflow", func() error {
			_, err := lab().RunVariant2E(V2Options{Bits: 2, Stride: 40})
			return err
		}, "V2Options", "Stride"},
		{"rsa-tiny-key", func() error {
			_, err := lab().ExtractRSAKeyE(RSAOptions{KeyBits: 8})
			return err
		}, "RSAOptions", "KeyBits"},
		{"sweep-negative-intensity", func() error {
			_, err := lab().RunFaultSweepCtx(context.Background(), SweepOptions{Intensities: []float64{0, -1}})
			return err
		}, "SweepOptions", "Intensities[1]"},
		{"lab-negative-cadence", func() error {
			_, err := NewLabE(Options{Seed: 1, AuditEvery: -1})
			return err
		}, "Options", "AuditEvery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v (%T) is not an *OptionError", err, err)
			}
			if oe.Struct != tc.strct || oe.Field != tc.field {
				t.Fatalf("error names %s.%s, want %s.%s", oe.Struct, oe.Field, tc.strct, tc.field)
			}
		})
	}
}

// TestSweepQuarantinesCorruptedPoint: a sweep whose fault engine injects only
// state-corruption classes has its dirty point caught by the final invariant
// audit, re-run from a fresh lab (transient classification), and — when every
// attempt corrupts again — recorded as degraded AND quarantined while the
// campaign completes and the clean point survives untouched.
func TestSweepQuarantinesCorruptedPoint(t *testing.T) {
	o := SweepOptions{
		Attack:      SweepV1Thread,
		Bits:        12,
		Intensities: []float64{0, 2},
		Faults:      faults.Config{EventsPerMCycle: 400, Kinds: faults.CorruptionKinds()},
		Runner:      runner.Options{Sleep: func(time.Duration) {}},
	}
	res, err := NewLab(Options{Seed: 42}).RunFaultSweepCtx(context.Background(), o)
	if err != nil {
		t.Fatalf("campaign aborted instead of quarantining: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	clean, dirty := res.Points[0], res.Points[1]
	if clean.Quarantined || clean.Degraded || clean.Err != "" {
		t.Errorf("clean point flagged: %+v", clean)
	}
	if !dirty.Quarantined {
		t.Fatalf("corrupted point not quarantined: %+v", dirty)
	}
	if dirty.Attempts <= 1 {
		t.Errorf("quarantined point was not re-run (attempts=%d)", dirty.Attempts)
	}
	if !dirty.Degraded {
		t.Errorf("point corrupting on every attempt should end degraded: %+v", dirty)
	}
	if dirty.FaultKind != FaultCorruption.String() {
		t.Errorf("fault kind %q, want %q (err %q)", dirty.FaultKind, FaultCorruption, dirty.Err)
	}
}

// tamperCheckpoint rewrites one recorded point's state hash in place,
// simulating the silent-corruption scenario the replay harness exists to
// catch.
func tamperCheckpoint(t *testing.T, path, key string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Schema      string                      `json:"schema"`
		Fingerprint string                      `json:"fingerprint"`
		Completed   map[string]runner.JobResult `json:"completed"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	jr, ok := f.Completed[key]
	if !ok {
		t.Fatalf("key %q not in checkpoint %s", key, path)
	}
	var pt SweepPoint
	if err := json.Unmarshal(jr.Value, &pt); err != nil {
		t.Fatal(err)
	}
	pt.StateHash ^= 0xdeadbeef
	jr.Value, err = json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	f.Completed[key] = jr
	out, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReplayForkedWarmupCampaign: a campaign recorded under the default
// forked execution WITH a warm prefix (template warmed once, every point a
// fork) replays divergence-free. The replay harness always re-executes
// points fresh — boot plus per-point warmup — so this round trip is a
// continuous fork-vs-fresh identity check over the full campaign stack:
// checkpointing, fault salting, warmup trace and final audit included.
func TestReplayForkedWarmupCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("replay re-runs the campaign; slow")
	}
	path := filepath.Join(t.TempDir(), "warm-sweep.ck.json")
	o := SweepOptions{
		Attack:      SweepV1Thread,
		Bits:        10,
		Intensities: []float64{0, 1},
		Warmup:      30_000,
		Execution:   SweepForked,
		Faults:      faults.Config{EventsPerMCycle: 200},
		Runner:      runner.Options{CheckpointPath: path},
	}
	if _, err := NewLab(Options{Seed: 11}).RunFaultSweepCtx(context.Background(), o); err != nil {
		t.Fatalf("recording forked warm sweep: %v", err)
	}
	o.Runner = runner.Options{}
	rep, err := NewLab(Options{Seed: 11}).ReplayFaultSweep(context.Background(), o, path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Compared != len(o.Intensities) {
		raw, _ := rep.JSON()
		t.Fatalf("replay compared %d of %d points:\n%s", rep.Compared, len(o.Intensities), raw)
	}
	if rep.Diverged() {
		raw, _ := rep.JSON()
		t.Fatalf("forked warm campaign diverged from fresh replay:\n%s", raw)
	}
}

// TestReplayFaultSweepDivergenceDetection: replaying a checkpointed sweep
// reproduces every clean point's state hash exactly; a tampered recorded hash
// is then reported as exactly one divergence.
func TestReplayFaultSweepDivergenceDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("replay re-runs the campaign; slow")
	}
	path := filepath.Join(t.TempDir(), "sweep.ck.json")
	o := SweepOptions{
		Attack:      SweepV1Thread,
		Bits:        12,
		Intensities: []float64{0, 1},
		Faults:      faults.Config{EventsPerMCycle: 200},
		Runner:      runner.Options{CheckpointPath: path},
	}
	// Record WITH an audit cadence, replay without one: audits are read-only,
	// so the cadence is excluded from the campaign fingerprint and the hashes
	// still match.
	if _, err := NewLab(Options{Seed: 5, AuditEvery: 8}).RunFaultSweepCtx(context.Background(), o); err != nil {
		t.Fatalf("recording sweep: %v", err)
	}

	o.Runner = runner.Options{} // replay reads the file directly
	rep, err := NewLab(Options{Seed: 5}).ReplayFaultSweep(context.Background(), o, path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Compared == 0 {
		t.Fatalf("replay compared nothing: %+v", rep)
	}
	if rep.Diverged() {
		raw, _ := rep.JSON()
		t.Fatalf("clean replay diverged:\n%s", raw)
	}

	tamperCheckpoint(t, path, sweepPointKey(SweepV1Thread, 0, 0))
	rep, err = NewLab(Options{Seed: 5}).ReplayFaultSweep(context.Background(), o, path)
	if err != nil {
		t.Fatalf("replay of tampered checkpoint: %v", err)
	}
	if rep.Divergences != 1 {
		raw, _ := rep.JSON()
		t.Fatalf("tampered checkpoint produced %d divergences, want 1:\n%s", rep.Divergences, raw)
	}
	for _, p := range rep.Points {
		if !p.Match && p.Key != sweepPointKey(SweepV1Thread, 0, 0) {
			t.Errorf("divergence reported on untampered point %q", p.Key)
		}
	}
}

// TestReplayTable3RoundTrip: a FullReport's Table 3 campaign, replayed from
// its checkpoint, reproduces every experiment's full-state hash point for
// point.
func TestReplayTable3RoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Table 3 campaign twice; slow")
	}
	stem := filepath.Join(t.TempDir(), "report.ck.json")
	opts := ReportOptions{
		Seed:                   3,
		Rounds:                 8,
		MitigationInstructions: 20_000,
		Runner:                 runner.Options{CheckpointPath: stem},
	}
	if _, err := FullReportCtx(context.Background(), opts); err != nil {
		t.Fatalf("recording report: %v", err)
	}
	rep, err := ReplayTable3(context.Background(), opts, stem)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if want := len(table3Specs(opts)); rep.Compared != want {
		raw, _ := rep.JSON()
		t.Fatalf("replay compared %d of %d experiments:\n%s", rep.Compared, want, raw)
	}
	if rep.Diverged() {
		raw, _ := rep.JSON()
		t.Fatalf("table 3 replay diverged:\n%s", raw)
	}
}

// TestAuditCadenceDoesNotChangeResults: the same attack with and without the
// audit cadence produces identical leak results — the read-only guarantee at
// the lab level (the sim package pins the state-hash version of this).
func TestAuditCadenceDoesNotChangeResults(t *testing.T) {
	run := func(every int) LeakResult {
		return NewLab(Options{Seed: 9, AuditEvery: every}).RunVariant1(V1Options{Bits: 16})
	}
	off, on := run(0), run(3)
	if off.SuccessRate() != on.SuccessRate() || off.Cycles != on.Cycles {
		t.Fatalf("cadence perturbed the attack: off=%.3f/%d cycles, on=%.3f/%d cycles",
			off.SuccessRate(), off.Cycles, on.SuccessRate(), on.Cycles)
	}
}
