package afterimage

import (
	"fmt"

	"afterimage/internal/core"
	"afterimage/internal/evict"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
	"afterimage/internal/victim"
)

// Backend selects the secret-extraction technique of Table 3.
type Backend int

// Extraction back-ends.
const (
	FlushReload Backend = iota // F+R
	PrimeProbe                 // P+P
	PSC                        // Prefetcher Status Checking
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case FlushReload:
		return "Flush+Reload"
	case PrimeProbe:
		return "Prime+Probe"
	case PSC:
		return "PSC"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// V1Options configures the Variant 1 proof of concept (§5.1).
type V1Options struct {
	// Bits is the number of secret branch outcomes to leak (one per round).
	Bits int
	// Secret overrides the random secret when non-nil.
	Secret []bool
	// CrossProcess places attacker and victim in separate address spaces
	// (the second §5.1 scenario); otherwise they share one (sandbox model).
	CrossProcess bool
	// Backend selects F+R (default) or P+P extraction.
	Backend Backend
	// Strides are the two trained line strides (if-path, else-path).
	IfStride, ElseStride int64
}

func (o *V1Options) fill(l *Lab) {
	if o.Bits <= 0 && o.Secret == nil {
		o.Bits = 16
	}
	if o.Secret == nil {
		o.Secret = l.randomBits(o.Bits)
	}
	o.Bits = len(o.Secret)
	if o.IfStride == 0 {
		o.IfStride = 7
	}
	if o.ElseStride == 0 {
		o.ElseStride = 13
	}
}

// LeakResult reports one control-flow-leak experiment.
type LeakResult struct {
	Secret   []bool
	Inferred []bool
	Correct  int
	// Confidence holds a per-bit evidence score in [0, 1], parallel to
	// Inferred: how unambiguous the measurement behind each decision was
	// (see core.StrideConfidence / core.LatencyConfidence). Clean runs sit
	// near 1.0; fault injection pushes affected bits toward 0.
	Confidence []float64
	// Cycles is the simulated duration of the whole run.
	Cycles uint64
	// LastProbe carries the final round's per-line observation vector
	// (reload latencies for F+R, probe deltas for P+P) for figure output.
	LastProbe []int64
}

// SuccessRate is the per-bit leak accuracy.
func (r LeakResult) SuccessRate() float64 {
	if len(r.Secret) == 0 {
		return 0
	}
	return float64(r.Correct) / float64(len(r.Secret))
}

// MeanConfidence averages the per-bit confidence scores (0 when none were
// recorded).
func (r LeakResult) MeanConfidence() float64 {
	if len(r.Confidence) == 0 {
		return 0
	}
	var sum float64
	for _, c := range r.Confidence {
		sum += c
	}
	return sum / float64(len(r.Confidence))
}

// v1Backoff / pscBackoff are the re-training schedules: base rounds match
// the historical fixed counts (so confident runs are cycle-for-cycle
// unchanged), the caps bound the fault-recovery escalation.
func v1Backoff() *core.Backoff  { return core.NewBackoff(4, 32) }
func pscBackoff() *core.Backoff { return core.NewBackoff(3, 24) }

// recalEvery is how many consecutive low-confidence readings trigger a
// threshold recalibration in the Flush+Reload runners.
const recalEvery = 3

// RunVariant1 executes the §5.1 proof of concept and returns the per-bit
// leak outcome (Figures 13a–c; success rates of §7.2). All three extraction
// back-ends of Table 3 are available: Flush+Reload (default), Prime+Probe,
// and the cache-primitive-free PSC. A simulator fault panics with the
// *SimFault; RunVariant1E is the error-returning variant.
func (l *Lab) RunVariant1(opts V1Options) LeakResult {
	res, err := l.RunVariant1E(opts)
	if err != nil {
		panic(err)
	}
	return res
}

// RunVariant1E is RunVariant1 with graceful failure: a panicking victim, a
// segfault, or the cycle-budget watchdog surfaces as a typed error (usually
// a *sim.SimFault) alongside the bits leaked before the fault.
func (l *Lab) RunVariant1E(opts V1Options) (res LeakResult, err error) {
	defer recoverAsError(&err)
	opts.fill(l)
	if verr := opts.Validate(); verr != nil {
		return LeakResult{}, verr
	}
	switch opts.Backend {
	case PrimeProbe:
		return l.runV1PrimeProbe(opts)
	case PSC:
		return l.runV1PSC(opts)
	default:
		return l.runV1FlushReload(opts)
	}
}

// runV1PSC leaks the branch direction without any cache primitive: one PSC
// chain per path; the chain whose entry the victim re-learned identifies
// the taken direction (§6.1's standalone extraction applied to Variant 1).
func (l *Lab) runV1PSC(opts V1Options) (LeakResult, error) {
	m := l.m
	attProc := m.NewProcess("attacker")
	vicProc := attProc
	if opts.CrossProcess {
		vicProc = m.NewProcess("victim")
	}
	vicEnv := m.Direct(vicProc)
	vicPage := vicEnv.Mmap(mem.PageSize, mem.MapLocked)
	vic := victim.NewBranchy(vicPage.Base) // no shared memory needed

	res := LeakResult{Secret: opts.Secret}
	start := m.Now()
	m.Spawn(attProc, "attacker", func(e *sim.Env) {
		pscIf := core.NewPSC(e, core.IPWithLow8(0x40_0000, uint8(vic.IPIf)), 11, 128)
		pscElse := core.NewPSC(e, core.IPWithLow8(0x41_0000, uint8(vic.IPElse)), 7, 128)
		pscIf.Train(e, 4)
		pscElse.Train(e, 4)
		bo := pscBackoff()
		for range opts.Secret {
			e.BeginPhase("train")
			pscIf.Train(e, bo.Rounds())
			pscElse.Train(e, bo.Rounds())
			e.BeginPhase("trigger")
			e.Yield()
			e.BeginPhase("probe")
			ifHit, ifLat := pscIf.CheckLat(e)
			elseHit, elseLat := pscElse.CheckLat(e)
			e.BeginPhase("decode")
			ifTouched := !ifHit
			elseTouched := !elseHit
			// The victim executed exactly one path; when noise blurs both
			// signals, prefer the if-path evidence.
			res.Inferred = append(res.Inferred, ifTouched && !elseTouched || ifTouched && elseTouched)
			thr := e.HitThreshold()
			conf := (core.LatencyConfidence(ifLat, thr) + core.LatencyConfidence(elseLat, thr)) / 2
			res.Confidence = append(res.Confidence, conf)
			if conf < core.LowConfidence {
				bo.Escalate()
			} else {
				bo.Reset()
			}
			e.EndPhase()
		}
	})
	m.Spawn(vicProc, "victim", func(e *sim.Env) { vic.Run(e, opts.Secret) })
	_, runErr := m.RunChecked()
	res.Cycles = m.Now() - start
	res.Correct = boolsEqual(res.Secret, res.Inferred)
	return res, runErr
}

func (l *Lab) runV1FlushReload(opts V1Options) (LeakResult, error) {
	m := l.m
	attProc := m.NewProcess("attacker")
	vicProc := attProc
	if opts.CrossProcess {
		vicProc = m.NewProcess("victim")
	}
	attEnv := m.Direct(attProc)
	shared := attEnv.Mmap(mem.PageSize, mem.MapShared)
	vicBase := shared.Base
	if opts.CrossProcess {
		vicBase = vicProc.AS.MapExisting(shared).Base
	}
	vic := victim.NewBranchy(vicBase)
	fr := core.NewFlushReload()

	res := LeakResult{Secret: opts.Secret}
	start := m.Now()
	m.Spawn(attProc, "attacker", func(e *sim.Env) {
		g := core.MustNewGadget(e, []core.TrainEntry{
			{IP: core.IPWithLow8(0x40_0000, uint8(vic.IPIf)), StrideLines: opts.IfStride},
			{IP: core.IPWithLow8(0x40_0100, uint8(vic.IPElse)), StrideLines: opts.ElseStride},
		})
		bo := v1Backoff()
		cal := core.NewCalibrator()
		var calPage *mem.Mapping
		candidates := []int64{opts.IfStride, opts.ElseStride}
		for range opts.Secret {
			e.BeginPhase("train")
			g.Train(e, bo.Rounds())
			fr.FlushPage(e, shared.Base)
			e.BeginPhase("trigger")
			e.Yield()
			e.BeginPhase("probe")
			lats, hits := fr.ReloadPage(e, shared.Base)
			e.BeginPhase("decode")
			s, ok := core.DetectStride(hits, candidates)
			res.Inferred = append(res.Inferred, ok && s == opts.IfStride)
			var conf float64
			if ok {
				conf = core.StrideConfidence(hits, s, candidates)
			} else {
				conf = core.AbsenceConfidence(hits)
			}
			res.Confidence = append(res.Confidence, conf)
			if conf < core.LowConfidence {
				if n := bo.Escalate(); n%recalEvery == 0 {
					// Persistent ambiguity: the latency split itself may have
					// drifted. Re-measure it on a private scratch line.
					if calPage == nil {
						calPage = e.Mmap(mem.PageSize, mem.MapLocked)
					}
					if thr := cal.Measure(e, calPage.Base+17*core.LineSize, 6); thr != 0 {
						fr.Threshold = thr
					}
				}
			} else {
				bo.Reset()
			}
			res.LastProbe = res.LastProbe[:0]
			for _, lat := range lats {
				res.LastProbe = append(res.LastProbe, int64(lat))
			}
			e.EndPhase()
		}
	})
	m.Spawn(vicProc, "victim", func(e *sim.Env) { vic.Run(e, opts.Secret) })
	_, runErr := m.RunChecked()
	res.Cycles = m.Now() - start
	res.Correct = boolsEqual(res.Secret, res.Inferred)
	return res, runErr
}

func (l *Lab) runV1PrimeProbe(opts V1Options) (LeakResult, error) {
	m := l.m
	proc := m.NewProcess("shared-space") // P+P demo runs in one address space (§7.2, artifact A.4)
	env := m.Direct(proc)
	page := env.Mmap(mem.PageSize, mem.MapLocked)
	vic := victim.NewBranchy(page.Base)

	poolPages := 4096
	if m.Mem.LLC.NumSlices() > 4 {
		poolPages = 8192 // Coffee Lake's 8 slices dilute the pool
	}
	builder, err := evict.NewBuilder(env, poolPages, 0x10e0, 0x20e0)
	if err != nil {
		return LeakResult{Secret: opts.Secret}, err
	}
	pa, _ := proc.AS.Translate(page.Base)
	pm, err := core.NewPageMonitor(env, builder, pa)
	if err != nil {
		return LeakResult{Secret: opts.Secret}, err
	}
	for _, s := range pm.Sets {
		for _, line := range s.Lines {
			env.WarmTLB(line)
		}
	}
	pm.Calibrate(env)

	res := LeakResult{Secret: opts.Secret}
	start := m.Now()
	m.Spawn(proc, "attacker", func(e *sim.Env) {
		g := core.MustNewGadget(e, []core.TrainEntry{
			{IP: core.IPWithLow8(0x40_0000, uint8(vic.IPIf)), StrideLines: opts.IfStride},
			{IP: core.IPWithLow8(0x40_0100, uint8(vic.IPElse)), StrideLines: opts.ElseStride},
		})
		bo := v1Backoff()
		candidates := []int64{opts.IfStride, opts.ElseStride}
		for range opts.Secret {
			e.BeginPhase("train")
			g.Train(e, bo.Rounds())
			pm.Prime(e)
			e.BeginPhase("trigger")
			e.Yield()
			e.BeginPhase("probe")
			deltas := pm.Probe(e)
			e.BeginPhase("decode")
			hits := core.HitLines(deltas, 120)
			s, ok := core.DetectStride(hits, candidates)
			res.Inferred = append(res.Inferred, ok && s == opts.IfStride)
			var conf float64
			if ok {
				conf = core.StrideConfidence(hits, s, candidates)
			} else {
				conf = core.AbsenceConfidence(hits)
			}
			res.Confidence = append(res.Confidence, conf)
			if conf < core.LowConfidence {
				bo.Escalate()
			} else {
				bo.Reset()
			}
			res.LastProbe = append(res.LastProbe[:0], deltas...)
			e.EndPhase()
		}
	})
	m.Spawn(proc, "victim", func(e *sim.Env) {
		for _, s := range opts.Secret {
			vic.Step(e, s)
			e.Yield()
		}
	})
	_, runErr := m.RunChecked()
	res.Cycles = m.Now() - start
	res.Correct = boolsEqual(res.Secret, res.Inferred)
	return res, runErr
}

// V2Options configures the user→kernel Variant 2 (§5.2).
type V2Options struct {
	Bits   int
	Secret []bool
	// UseIPSearch recovers the kernel load's low-8 IP bits with the §5.2
	// search instead of assuming disassembly.
	UseIPSearch bool
	Stride      int64
	// Backend selects F+R (default, needs the shared syscall buffer) or
	// PSC (standalone, no shared memory — Table 3's second V2 technique).
	Backend Backend
}

// V2Result extends the leak outcome with the searched IP.
type V2Result struct {
	LeakResult
	FoundIPLow8 uint8
	IPSearched  bool
}

// RunVariant2 executes the §5.2 kernel-boundary proof of concept
// (Figure 14a; the 91 % success rate of §7.2). A simulator fault panics;
// RunVariant2E is the error-returning variant.
func (l *Lab) RunVariant2(opts V2Options) V2Result {
	res, err := l.RunVariant2E(opts)
	if err != nil {
		panic(err)
	}
	return res
}

// RunVariant2E is RunVariant2 with graceful failure: the bits leaked before
// a fault are returned alongside the typed error.
func (l *Lab) RunVariant2E(opts V2Options) (res V2Result, err error) {
	start := l.m.Now()
	defer func() {
		// A fault in this direct-env path unwinds past the normal scoring
		// below; score whatever was leaked so the partial result is honest.
		if err != nil {
			res.Cycles = l.m.Now() - start
			res.Correct = boolsEqual(res.Secret, res.Inferred)
		}
	}()
	defer recoverAsError(&err)
	if opts.Bits <= 0 && opts.Secret == nil {
		opts.Bits = 16
	}
	if opts.Secret == nil {
		opts.Secret = l.randomBits(opts.Bits)
	}
	if opts.Stride == 0 {
		opts.Stride = 11
	}
	if verr := opts.Validate(); verr != nil {
		return V2Result{}, verr
	}
	m := l.m
	kv := victim.NewKernelSecret(m, 333, opts.Secret)
	env := m.Direct(m.NewProcess("attacker"))
	shared := env.Mmap(mem.PageSize, mem.MapShared)
	env.WarmTLB(shared.Base)
	fr := core.NewFlushReload()

	res = V2Result{LeakResult: LeakResult{Secret: opts.Secret}}
	low8 := uint8(kv.LoadIP)
	if opts.UseIPSearch {
		// Search against an always-taken oracle victim on syscall 334.
		searchVic := victim.NewKernelSecret(m, 334, []bool{true})
		searchVic.LoadIP = kv.LoadIP
		s := core.NewIPSearch()
		s.StrideLines = opts.Stride
		found, serr := s.Run(env, shared.Base, func(e *sim.Env) {
			e.Syscall(334, uint64(shared.Base))
		})
		if serr == nil {
			low8 = found
			res.IPSearched = true
		}
	}
	res.FoundIPLow8 = low8

	start = m.Now()
	if opts.Backend == PSC {
		// Standalone extraction: no reload sweep, a single status check per
		// syscall (§6.1's speed advantage).
		psc := core.NewPSC(env, core.IPWithLow8(0x40_0000, low8), opts.Stride, 128)
		psc.Train(env, 4)
		bo := pscBackoff()
		for range opts.Secret {
			env.BeginPhase("train")
			psc.Train(env, bo.Rounds())
			env.BeginPhase("trigger")
			env.WarmTLB(shared.Base)
			env.Syscall(333, uint64(shared.Base))
			env.BeginPhase("probe")
			hit, lat := psc.CheckLat(env)
			env.BeginPhase("decode")
			res.Inferred = append(res.Inferred, !hit)
			conf := core.LatencyConfidence(lat, env.HitThreshold())
			res.Confidence = append(res.Confidence, conf)
			if conf < core.LowConfidence {
				bo.Escalate()
			} else {
				bo.Reset()
			}
			env.EndPhase()
		}
	} else {
		g := core.MustNewGadget(env, []core.TrainEntry{
			{IP: core.IPWithLow8(0x40_0000, low8), StrideLines: opts.Stride},
		})
		bo := v1Backoff()
		cal := core.NewCalibrator()
		var calPage *mem.Mapping
		for range opts.Secret {
			env.BeginPhase("train")
			g.Train(env, bo.Rounds())
			fr.FlushPage(env, shared.Base)
			env.BeginPhase("trigger")
			env.WarmTLB(shared.Base)
			env.Syscall(333, uint64(shared.Base))
			env.BeginPhase("probe")
			lats, hits := fr.ReloadPage(env, shared.Base)
			env.BeginPhase("decode")
			_, ok := core.DetectStride(hits, []int64{opts.Stride})
			res.Inferred = append(res.Inferred, ok)
			var conf float64
			if ok {
				conf = core.StrideConfidence(hits, opts.Stride, nil)
			} else {
				conf = core.AbsenceConfidence(hits)
			}
			res.Confidence = append(res.Confidence, conf)
			if conf < core.LowConfidence {
				if n := bo.Escalate(); n%recalEvery == 0 {
					if calPage == nil {
						calPage = env.Mmap(mem.PageSize, mem.MapLocked)
					}
					if thr := cal.Measure(env, calPage.Base+17*core.LineSize, 6); thr != 0 {
						fr.Threshold = thr
					}
				}
			} else {
				bo.Reset()
			}
			res.LastProbe = res.LastProbe[:0]
			for _, lat := range lats {
				res.LastProbe = append(res.LastProbe, int64(lat))
			}
			env.EndPhase()
		}
	}
	res.Cycles = m.Now() - start
	res.Correct = boolsEqual(res.Secret, res.Inferred)
	return res, nil
}

// DiscoverEvictionSet exercises the timing-only eviction-set discovery
// (Vila et al. group testing — the pagemap-free Prime+Probe substrate):
// it finds a minimal eviction set for a fresh target line and reports its
// size and the number of evicts-target trials consumed.
func (l *Lab) DiscoverEvictionSet() (lines, trials int, err error) {
	defer recoverAsError(&err)
	m := l.m
	env := m.Direct(m.NewProcess("attacker"))
	target := env.Mmap(mem.PageSize, mem.MapLocked).Base + 5*mem.LineSize
	poolPages := 3072
	if m.Mem.LLC.NumSlices() > 4 {
		poolPages = 6144
	}
	d := evict.NewDiscoverer(env, poolPages, 0x30_10e0)
	es, err := d.Discover(target, m.Mem.LLC.Config().Ways)
	if err != nil {
		return 0, d.Tests, err
	}
	return len(es.Lines), d.Tests, nil
}

// SGXResult reports the enclave leak (§5.4, Figure 10).
type SGXResult struct {
	LeakResult
	// Time24 and Time40 are the final round's reload latencies of the two
	// telltale lines (3·8 and 5·8).
	Time24, Time40 uint64
}

// RunSGX executes the §5.4 enclave control-flow leak. A simulator fault
// panics; RunSGXE is the error-returning variant.
func (l *Lab) RunSGX(bits int, secret []bool) SGXResult {
	res, err := l.RunSGXE(bits, secret)
	if err != nil {
		panic(err)
	}
	return res
}

// RunSGXE is RunSGX with graceful failure: the bits leaked before a fault
// are returned alongside the typed error.
func (l *Lab) RunSGXE(bits int, secret []bool) (res SGXResult, err error) {
	start := l.m.Now()
	defer func() {
		if err != nil {
			res.Cycles = l.m.Now() - start
			res.Correct = boolsEqual(res.Secret, res.Inferred)
		}
	}()
	defer recoverAsError(&err)
	if bits <= 0 && secret == nil {
		bits = 16
	}
	if secret == nil {
		secret = l.randomBits(bits)
	}
	m := l.m
	env := m.Direct(m.NewProcess("app"))
	buf := env.Mmap(mem.PageSize, mem.MapShared)
	vic := victim.NewSGXSecret(buf.Base)
	fr := core.NewFlushReload()

	res = SGXResult{LeakResult: LeakResult{Secret: secret}}
	start = m.Now()
	for _, s := range secret {
		env.BeginPhase("train")
		fr.FlushPage(env, buf.Base)
		env.BeginPhase("trigger")
		vic.ECall(env, s)
		env.BeginPhase("probe")
		x1 := buf.Base + mem.VAddr(vic.StrideNotTaken*8*mem.LineSize)
		x2 := buf.Base + mem.VAddr(vic.StrideTaken*8*mem.LineSize)
		t24, hit24 := fr.ReloadLine(env, x1)
		t40, hit40 := fr.ReloadLine(env, x2)
		env.BeginPhase("decode")
		res.Time24, res.Time40 = t24, t40
		res.Inferred = append(res.Inferred, hit40 && !hit24)
		thr := env.HitThreshold()
		conf := (core.LatencyConfidence(t24, thr) + core.LatencyConfidence(t40, thr)) / 2
		res.Confidence = append(res.Confidence, conf)
		env.EndPhase()
	}
	res.Cycles = m.Now() - start
	res.Correct = boolsEqual(res.Secret, res.Inferred)
	return res, nil
}
