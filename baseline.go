package afterimage

import (
	"afterimage/internal/core"
	"afterimage/internal/mem"
	"afterimage/internal/victim"
)

// This file implements the closest prior work as a baseline — the passive
// prefetcher side channel of Shin et al. (CCS'18), the first row of
// Table 4. That attack does not train the prefetcher: it waits for a
// victim whose own algorithm performs regular strided table look-ups
// (e.g. the ECDH sliding-window multiplier), lets the victim's accesses
// train the IP-stride prefetcher naturally, and reads the resulting
// prefetch footprint off the cache. Its reach is therefore limited to
// table-look-up algorithms — exactly the "algorithm agnostic: ✗"
// cell the paper contrasts AfterImage against.

// BaselineResult reports one Shin-style observation.
type BaselineResult struct {
	// FootprintDetected reports whether a strided footprint appeared.
	FootprintDetected bool
	// Stride is the detected line stride (valid when detected).
	Stride int64
	// HitLines is the raw footprint.
	HitLines []int
}

// RunShinBaseline runs the passive footprint attack against a table-lookup
// victim: the victim scans a shared table with a secret-dependent stride;
// the attacker flushes, waits, reloads — no training, no gadget.
func (l *Lab) RunShinBaseline(secretStride int64) BaselineResult {
	m := l.m
	env := m.Direct(m.NewProcess("attacker"))
	shared := env.Mmap(mem.PageSize, mem.MapShared)
	fr := core.NewFlushReload()

	fr.FlushPage(env, shared.Base)
	// Victim: an ECDH-like window loop touching table[i·stride] — its own
	// regularity trains the prefetcher, which then overshoots the last
	// access and leaves the telltale extra line.
	env.WarmTLB(shared.Base)
	vicIP := uint64(0x0823_0055)
	for i := int64(0); i < 4; i++ {
		env.Load(vicIP, shared.Base+mem.VAddr(i*secretStride*core.LineSize))
	}
	_, hits := fr.ReloadPage(env, shared.Base)
	s, ok := core.DetectStride(hits, []int64{secretStride})
	return BaselineResult{FootprintDetected: ok, Stride: s, HitLines: hits}
}

// RunShinBaselineOnBranchVictim demonstrates the baseline's limitation: a
// Listing 1 victim (one secret-dependent load, no strided table scan)
// leaves no strided footprint, so the passive attack learns nothing —
// while AfterImage's trained entry leaks the same victim (Variant 1).
func (l *Lab) RunShinBaselineOnBranchVictim(secret bool) BaselineResult {
	m := l.m
	env := m.Direct(m.NewProcess("attacker"))
	shared := env.Mmap(mem.PageSize, mem.MapShared)
	vic := victim.NewBranchy(shared.Base)
	fr := core.NewFlushReload()

	fr.FlushPage(env, shared.Base)
	vic.Step(env, secret) // a single branch-dependent load
	_, hits := fr.ReloadPage(env, shared.Base)
	s, ok := core.DetectStride(hits, []int64{7, 11, 13})
	return BaselineResult{FootprintDetected: ok, Stride: s, HitLines: hits}
}
