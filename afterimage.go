// Package afterimage is a full reproduction of "AfterImage: Leaking Control
// Flow Data and Tracking Load Operations via the Hardware Prefetcher"
// (ASPLOS 2023) as a library. Because the attack lives in Intel silicon that
// Go cannot time with cycle accuracy, the package drives every attack,
// reverse-engineering microbenchmark and mitigation study against a
// deterministic cycle-level simulator of a Haswell / Coffee Lake memory
// subsystem (see DESIGN.md for the substitution argument).
//
// The entry point is the Lab: a simulated machine plus the attacker
// toolbox. Each Run* method reproduces one of the paper's experiments and
// returns structured results that the cmd/ binaries print as paper-style
// tables and figures.
//
//	lab := afterimage.NewLab(afterimage.Options{Model: afterimage.CoffeeLake, Seed: 1})
//	res := lab.RunVariant1(afterimage.V1Options{Bits: 64})
//	fmt.Println(res.SuccessRate)
package afterimage

import (
	"fmt"
	"math/rand"

	"afterimage/internal/detrand"
	"afterimage/internal/sim"
)

// Model selects the simulated microarchitecture (Table 2).
type Model int

// The two machines of Table 2.
const (
	CoffeeLake Model = iota // i7-9700
	Haswell                 // i7-4770
)

// String names the model.
func (m Model) String() string {
	switch m {
	case CoffeeLake:
		return "Coffee Lake i7-9700"
	case Haswell:
		return "Haswell i7-4770"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Options configures a Lab.
type Options struct {
	Model Model
	// Seed drives every pseudo-random element (noise, jitter, ASLR): equal
	// seeds reproduce runs exactly.
	Seed int64
	// Quiet removes context-switch noise — the setting for the §4
	// reverse-engineering microbenchmarks. Attack evaluations (§7) keep
	// noise on.
	Quiet bool
	// MitigationFlush enables the proposed clear-ip-prefetcher instruction
	// at every domain switch (§8.3), which should defeat every attack.
	MitigationFlush bool
	// FullIPTag / PIDTag enable the §8.2 hardware-tagging mitigations: the
	// history table verifies the whole IP, or additionally a process-ID
	// tag. Either breaks the cross-context aliasing AfterImage needs.
	FullIPTag bool
	PIDTag    bool
	// DisableNoisePrefetchers turns the DCU/DPL/streamer prefetchers off
	// (ablation: quantifies their false-positive contribution).
	DisableNoisePrefetchers bool
	// MaxCycles arms the simulator's cycle-budget watchdog: once the
	// machine clock passes it, every simulated operation faults with a
	// FaultBudget SimFault, so runaway experiments terminate with a typed
	// error (via the Run*E variants) instead of hanging. 0 disables it.
	MaxCycles uint64
	// AuditEvery enables the invariant-audit cadence: a full structural
	// audit of the machine state every N domain switches, with a failing
	// audit surfacing as a FaultCorruption SimFault through the Run*E
	// variants. 0 disables the cadence (one integer compare per switch).
	// Audits are read-only, so enabling them never changes clean-run
	// results. Campaign drivers (RunFaultSweep, FullReport) propagate this
	// into every per-point lab.
	AuditEvery int
}

// Lab is a simulated machine plus bookkeeping for the experiments.
type Lab struct {
	opts Options
	m    *sim.Machine
	// rng is detrand-backed (stream-identical to the plain source it
	// replaced) so Fork can clone it at its exact position.
	rng    *rand.Rand
	rngSrc *detrand.Source

	// traceOn / traceCap remember EnableTrace so campaign drivers
	// (RunFaultSweep) can propagate the same tracing configuration into the
	// fresh per-point labs they boot.
	traceOn  bool
	traceCap int
}

// NewLab boots a fresh simulated machine. Invalid options panic with a
// typed *OptionError; NewLabE is the error-returning variant.
func NewLab(opts Options) *Lab {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	var cfg sim.Config
	switch opts.Model {
	case Haswell:
		cfg = sim.Haswell(opts.Seed)
	default:
		cfg = sim.CoffeeLake(opts.Seed)
	}
	if opts.Quiet {
		cfg = sim.Quiet(cfg)
	}
	cfg.FlushPrefetcherOnSwitch = opts.MitigationFlush
	cfg.IPStride.FullIPTag = opts.FullIPTag
	cfg.IPStride.PIDTag = opts.PIDTag
	if opts.DisableNoisePrefetchers {
		cfg.DCUEnabled, cfg.DPLEnabled, cfg.StreamerEnabled = false, false, false
	}
	cfg.MaxCycles = opts.MaxCycles
	m := sim.NewMachine(cfg)
	m.SetAuditEvery(opts.AuditEvery)
	l := &Lab{opts: opts, m: m}
	l.rng, l.rngSrc = detrand.New(opts.Seed + 31)
	return l
}

// Fork returns an independent lab whose simulated state is bit-identical
// to the receiver's: the machine forks (see sim.Machine.Fork) and the
// lab-level RNG clones at its exact stream position. Forking a pristine
// lab is observably equivalent to NewLab with the same options — the
// property the fork-vs-fresh differential suite gates — while forking a
// warmed lab shares the warm prefix with the parent at the cost of a few
// slice copies. Tracing is re-enabled on the fork's own hub when the
// parent had it on; the retained parent trace is not carried over.
func (l *Lab) Fork() (*Lab, error) {
	fm, err := l.m.Fork()
	if err != nil {
		return nil, err
	}
	f := &Lab{opts: l.opts, m: fm, traceOn: l.traceOn, traceCap: l.traceCap}
	f.rngSrc = l.rngSrc.Clone()
	f.rng = rand.New(f.rngSrc)
	if l.traceOn {
		fm.Telemetry().EnableTrace(l.traceCap)
	}
	return f, nil
}

// MustFork is Fork that panics on failure (a mid-run fork is a programming
// error).
func (l *Lab) MustFork() *Lab {
	f, err := l.Fork()
	if err != nil {
		panic(err)
	}
	return f
}

// Machine exposes the underlying simulator for advanced use (building
// custom victims or attacks on the same substrate).
func (l *Lab) Machine() *sim.Machine { return l.m }

// ModelName reports the simulated machine's name.
func (l *Lab) ModelName() string { return l.m.Cfg.Name }

// Seconds converts simulated cycles to wall-clock seconds on the modelled
// part.
func (l *Lab) Seconds(cycles uint64) float64 { return l.m.Seconds(cycles) }

// randomBits draws n secret bits deterministically.
func (l *Lab) randomBits(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = l.rng.Intn(2) == 1
	}
	return out
}

// boolsEqual counts positions where two bit strings agree.
func boolsEqual(a, b []bool) int {
	n := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			n++
		}
	}
	return n
}
