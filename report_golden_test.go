package afterimage

import (
	"math"
	"os"
	"testing"
)

// TestReportMatchesGolden regenerates the full reproduction report at the
// committed fixture's settings (Seed 1, 60 rounds, 60k mitigation
// instructions) and compares every headline quantity against
// testdata/report_golden.json. Exact-valued fields (reverse-engineering
// structure, cycle counts) must match bit-for-bit; sampled rates and
// bandwidths get small tolerances so a legitimate model refinement shows up
// as a reviewed fixture update, not a flaky failure.
func TestReportMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full report regeneration is slow")
	}
	raw, err := os.ReadFile("testdata/report_golden.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var want Report
	if err := jsonUnmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	got, err := FullReport(ReportOptions{Seed: 1, Rounds: 60, MitigationInstructions: 60_000})
	if err != nil {
		t.Fatalf("FullReport: %v", err)
	}

	// Structural reverse-engineering results are exact.
	if got.ReverseEngineering != want.ReverseEngineering {
		t.Errorf("reverse engineering drifted:\n got %+v\nwant %+v",
			got.ReverseEngineering, want.ReverseEngineering)
	}
	if got.Schema != want.Schema || got.Model != want.Model {
		t.Errorf("schema/model drifted: got (%s, %s)", got.Schema, got.Model)
	}

	// Success rates: absolute tolerance.
	near := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %v, golden %v (tol %v)", name, got, want, tol)
		}
	}
	rel := func(name string, got, want, frac float64) {
		t.Helper()
		near(name, got, want, math.Abs(want)*frac)
	}
	near("attacks.v1_thread", got.Attacks.V1ThreadSuccess, want.Attacks.V1ThreadSuccess, 0.05)
	near("attacks.v1_process", got.Attacks.V1ProcessSuccess, want.Attacks.V1ProcessSuccess, 0.05)
	near("attacks.v2_kernel", got.Attacks.V2KernelSuccess, want.Attacks.V2KernelSuccess, 0.05)
	near("attacks.sgx", got.Attacks.SGXSuccess, want.Attacks.SGXSuccess, 0.05)
	if got.Attacks.IPSearchFound != want.Attacks.IPSearchFound {
		t.Errorf("ip_search_found = %v", got.Attacks.IPSearchFound)
	}

	rel("covert.single_entry_bps", got.Covert.SingleEntryBps, want.Covert.SingleEntryBps, 0.10)
	near("covert.single_entry_error", got.Covert.SingleEntryError, want.Covert.SingleEntryError, 0.05)
	rel("covert.max_entries_bps", got.Covert.MaxEntriesBps, want.Covert.MaxEntriesBps, 0.10)
	near("covert.max_entries_error", got.Covert.MaxEntriesError, want.Covert.MaxEntriesError, 0.10)

	near("rsa.bit_success", got.RSA.BitSuccess, want.RSA.BitSuccess, 0.05)
	near("rsa.psc_observation", got.RSA.PSCObservation, want.RSA.PSCObservation, 0.05)
	rel("rsa.minutes_1024", got.RSA.Minutes1024Budget, want.RSA.Minutes1024Budget, 0.15)

	// Power t-values only need to stay on their side of the ±4.5 leakage
	// threshold.
	if got.Power.AlignedFinalT < 4.5 {
		t.Errorf("aligned t-value %v fell below the leakage threshold", got.Power.AlignedFinalT)
	}
	if math.Abs(got.Power.RandomFinalT) > 4.5 {
		t.Errorf("random-timing t-value %v crossed the leakage threshold", got.Power.RandomFinalT)
	}

	near("mitigation.top8", got.Mitigation.Top8Slowdown, want.Mitigation.Top8Slowdown, 0.01)
	near("mitigation.overall", got.Mitigation.OverallSlowdown, want.Mitigation.OverallSlowdown, 0.01)
	near("mitigation.bound", got.Mitigation.AnalyticBound, want.Mitigation.AnalyticBound, 0.01)

	if got.Comparison.BPUCycles != want.Comparison.BPUCycles ||
		got.Comparison.PrefetcherCycles != want.Comparison.PrefetcherCycles {
		t.Errorf("comparison cycles drifted: got (%d, %d), golden (%d, %d)",
			got.Comparison.BPUCycles, got.Comparison.PrefetcherCycles,
			want.Comparison.BPUCycles, want.Comparison.PrefetcherCycles)
	}
}
