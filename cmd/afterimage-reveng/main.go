// Command afterimage-reveng runs the §4 reverse-engineering suite against
// the simulated IP-stride prefetcher: indexing (Figure 6), the
// confidence/stride policy (Figure 7), page-boundary rules (Table 1),
// capacity (Figure 8a), replacement (Figure 8b), and the SGX retention
// check (§4.6).
package main

import (
	"flag"
	"fmt"
	"os"

	"afterimage"
	"afterimage/internal/cliobs"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "deterministic seed")
		model = flag.String("model", "coffeelake", "coffeelake | haswell")
	)
	obs := cliobs.Register()
	flag.Parse()
	obs.Start()

	opts := obs.LabOptions(afterimage.Options{Seed: *seed, Quiet: true})
	if *model == "haswell" {
		opts.Model = afterimage.Haswell
	}
	lab := afterimage.NewLab(opts)
	obs.Observe(lab)
	fmt.Printf("reverse-engineering the IP-stride prefetcher on %s\n\n", lab.ModelName())

	fmt.Println("[Figure 6] index bits: access time of the prefetch target vs matched low IP bits")
	for _, p := range lab.RevFig6() {
		fmt.Printf("  %2d bits: %3d cycles (triggered=%v)\n", p.MatchedBits, p.AccessTime, p.Triggered)
	}

	fmt.Println("\n[Figure 7a] two phases with a jump: which stride fires after tr2 iterations")
	for _, p := range lab.RevFig7(true) {
		fmt.Printf("  tr2=%d: st1=%v st2=%v\n", p.SecondPhaseIters, p.OldStrideFired, p.NewStrideFired)
	}
	fmt.Println("[Figure 7b] immediate second phase")
	for _, p := range lab.RevFig7(false) {
		fmt.Printf("  tr2=%d: st1=%v st2=%v\n", p.SecondPhaseIters, p.OldStrideFired, p.NewStrideFired)
	}

	fmt.Println("\n[Table 1] page-boundary checking")
	for _, r := range lab.RevTable1() {
		fmt.Printf("  %d page(s), %s pool: share-frame=%-5v prefetchable=%v\n",
			r.PageOffset, r.Pool, r.SharePhysical, r.Prefetchable)
	}

	fmt.Println("\n[Figure 8a] capacity: trained-IP survival")
	for _, n := range []int{26, 30} {
		evicted := 0
		for _, p := range lab.RevFig8a(n) {
			if !p.Triggered {
				evicted++
			}
		}
		fmt.Printf("  %d IPs trained → %d evicted → %d entries\n", n, evicted, n-evicted)
	}

	fmt.Println("\n[Figure 8b] replacement: evicted positions after MRU refresh")
	var evicted []int
	for _, p := range lab.RevFig8b() {
		if !p.Triggered {
			evicted = append(evicted, p.Index+1)
		}
	}
	fmt.Printf("  evicted (1-indexed): %v → contiguous mid-range → Bit-PLRU\n", evicted)

	hit, at := lab.SGXRetention()
	fmt.Printf("\n[§4.6] prefetched line valid after enclave exit: %v (%d cycles)\n", hit, at)
	if err := obs.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-reveng: %v\n", err)
		os.Exit(1)
	}
}
