// Command afterimage-covert runs the §5.3 cross-process covert channel:
// the sender encodes 5-bit symbols as prefetcher strides, the receiver
// replays them from the cache echo, and the tool reports bandwidth and
// error rate (833 bps at <6 % errors single-entry; ~20 Kbps raw with 24
// parallel entries).
package main

import (
	"flag"
	"fmt"
	"os"

	"afterimage"
	"afterimage/internal/cliobs"
)

func main() {
	var (
		msg     = flag.String("message", "the afterimage prefetcher covert channel", "payload to transmit")
		entries = flag.Int("entries", 1, "parallel prefetcher entries (1..24)")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		slot    = flag.Uint64("slot", 0, "override the half-round slot in cycles (0 = 3 ms)")
	)
	obs := cliobs.Register()
	flag.Parse()
	obs.Start()

	lab := afterimage.NewLab(obs.LabOptions(afterimage.Options{Seed: *seed}))
	obs.Observe(lab)
	res := lab.RunCovertChannel(afterimage.CovertOptions{
		Message:    []byte(*msg),
		Entries:    *entries,
		SlotCycles: *slot,
	})
	perCycle := 1.0 / 3e9
	fmt.Printf("machine:      %s\n", lab.ModelName())
	fmt.Printf("payload:      %d bytes as %d 5-bit symbols over %d entr%s\n",
		len(*msg), res.SymbolsSent, *entries, plural(*entries))
	fmt.Printf("errors:       %d/%d (%.1f%%)\n", res.SymbolErrors, res.SymbolsSent, res.ErrorRate()*100)
	fmt.Printf("raw rate:     %.0f bps\n", res.RawBps(perCycle))
	fmt.Printf("goodput:      %.0f bps\n", res.Bps(perCycle))
	fmt.Printf("elapsed:      %.1f ms simulated\n", lab.Seconds(res.Cycles)*1e3)
	if err := obs.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-covert: %v\n", err)
		os.Exit(1)
	}
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
