// Command afterimage-poc runs the AfterImage proof-of-concept variants
// (§5): V1 cross-thread / cross-process control-flow leakage, V2 across the
// user-kernel boundary, and the SGX enclave channel.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"afterimage"
	"afterimage/internal/cliobs"
	"afterimage/internal/runner"
)

// pocOutcome is the JSON unit the supervised run returns: the leak result
// plus the variant-specific extras, so a -resume'd invocation reprints the
// same numbers from the checkpoint without re-simulating.
type pocOutcome struct {
	Leak        afterimage.LeakResult
	FoundIPLow8 uint8  `json:",omitempty"`
	IPSearched  bool   `json:",omitempty"`
	Time24      uint64 `json:",omitempty"`
	Time40      uint64 `json:",omitempty"`
}

func main() {
	var (
		variant   = flag.String("variant", "v1", "v1 | v1-cross | v1-pp | v1-psc | v2 | v2-psc | v2-search | sgx")
		bits      = flag.Int("bits", 32, "secret bits to leak")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		model     = flag.String("model", "coffeelake", "coffeelake | haswell")
		miti      = flag.Bool("mitigate", false, "enable the clear-ip-prefetcher mitigation")
		maxCycles = flag.Uint64("max-cycles", 0, "cycle-budget watchdog (0 = off): abort with a typed fault once exceeded")
	)
	obs := cliobs.Register()
	rflags := cliobs.RegisterRunner()
	flag.Parse()
	obs.Start()
	ctx, stop := rflags.Context(context.Background())
	defer stop()

	opts := obs.LabOptions(afterimage.Options{Seed: *seed, MitigationFlush: *miti, MaxCycles: *maxCycles})
	if *model == "haswell" {
		opts.Model = afterimage.Haswell
	}

	// The PoC is a one-job campaign: -timeout gives the run a wall deadline
	// (enforced by the simulator watchdog), ^C stops it at a clean fault
	// boundary, and -checkpoint/-resume skip an already-completed run.
	job := runner.Job{
		Key: fmt.Sprintf("poc/%s", *variant),
		Run: func(jctx context.Context, _ int) (any, error) {
			lab, err := afterimage.NewLabE(opts)
			if err != nil {
				return nil, fmt.Errorf("cannot boot the simulated machine: %w", err)
			}
			obs.Observe(lab)
			lab.ArmCancel(jctx)
			fmt.Printf("machine: %s (mitigation=%v)\n", lab.ModelName(), *miti)

			var out pocOutcome
			switch *variant {
			case "v1":
				out.Leak, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits})
			case "v1-cross":
				out.Leak, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits, CrossProcess: true})
			case "v1-pp":
				out.Leak, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits, Backend: afterimage.PrimeProbe})
			case "v1-psc":
				out.Leak, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits, Backend: afterimage.PSC})
			case "v2":
				var r afterimage.V2Result
				r, err = lab.RunVariant2E(afterimage.V2Options{Bits: *bits})
				out.Leak = r.LeakResult
			case "v2-psc":
				var r afterimage.V2Result
				r, err = lab.RunVariant2E(afterimage.V2Options{Bits: *bits, Backend: afterimage.PSC})
				out.Leak = r.LeakResult
			case "v2-search":
				var r afterimage.V2Result
				r, err = lab.RunVariant2E(afterimage.V2Options{Bits: *bits, UseIPSearch: true})
				out.Leak, out.FoundIPLow8, out.IPSearched = r.LeakResult, r.FoundIPLow8, r.IPSearched
			case "sgx":
				var r afterimage.SGXResult
				r, err = lab.RunSGXE(*bits, nil)
				out.Leak, out.Time24, out.Time40 = r.LeakResult, r.Time24, r.Time40
			default:
				return nil, fmt.Errorf("unknown variant %q", *variant)
			}
			// seconds converts on this lab; store it so a resumed print
			// does not need a machine.
			return struct {
				pocOutcome
				SimSeconds float64
			}{out, lab.Seconds(out.Leak.Cycles)}, err
		},
	}

	ropts := rflags.Options()
	ropts.MaxAttempts = 1 // a PoC run is deterministic; retrying replays the same fault
	if ropts.JobTimeout > 0 {
		ropts.MaxAttempts = 0 // timeouts are wall-clock, retries can help
	}
	ropts.Fingerprint = runner.Fingerprint(struct {
		Kind    string
		Opts    afterimage.Options
		Variant string
		Bits    int
	}{"poc/1", opts, *variant, *bits})

	jrs, rerr := runner.Run(ctx, []runner.Job{job}, ropts)
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "afterimage-poc: %v\n", rerr)
		os.Exit(2)
	}
	jr := jrs[0]
	var full struct {
		pocOutcome
		SimSeconds float64
	}
	if len(jr.Value) > 0 {
		if err := json.Unmarshal(jr.Value, &full); err != nil {
			fmt.Fprintf(os.Stderr, "afterimage-poc: corrupt result: %v\n", err)
			os.Exit(1)
		}
	}
	if jr.Resumed {
		fmt.Printf("resumed from checkpoint %s (machine not re-simulated)\n", rflags.Checkpoint)
	}

	res := full.Leak
	switch *variant {
	case "v2-search":
		fmt.Printf("IP search: low-8 bits %#02x (searched=%v)\n", full.FoundIPLow8, full.IPSearched)
	case "sgx":
		if jr.Err == "" {
			fmt.Printf("telltale lines: t(3·8)=%d t(5·8)=%d cycles\n", full.Time24, full.Time40)
		}
	}
	fmt.Printf("secret:   %s\n", bitsString(res.Secret))
	fmt.Printf("inferred: %s\n", bitsString(res.Inferred))
	fmt.Printf("success:  %.1f%% (%d/%d) in %.2f ms simulated, mean confidence %.2f\n",
		res.SuccessRate()*100, res.Correct, len(res.Secret), full.SimSeconds*1e3,
		res.MeanConfidence())

	if oerr := obs.Finish(); oerr != nil {
		fmt.Fprintf(os.Stderr, "afterimage-poc: %v\n", oerr)
		os.Exit(1)
	}
	if jr.Err != "" {
		fmt.Fprintf(os.Stderr, "afterimage-poc: experiment terminated early after %d/%d bits (attempts=%d)\n",
			len(res.Inferred), len(res.Secret), jr.Attempts)
		if jr.FaultKind != "" {
			fmt.Fprintf(os.Stderr, "afterimage-poc: simulator fault: kind=%s: %s\n", jr.FaultKind, jr.Err)
		} else {
			fmt.Fprintf(os.Stderr, "afterimage-poc: %s\n", jr.Err)
		}
		os.Exit(2)
	}
}

func bitsString(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
