// Command afterimage-poc runs the AfterImage proof-of-concept variants
// (§5): V1 cross-thread / cross-process control-flow leakage, V2 across the
// user-kernel boundary, and the SGX enclave channel.
package main

import (
	"flag"
	"fmt"
	"os"

	"afterimage"
)

func main() {
	var (
		variant = flag.String("variant", "v1", "v1 | v1-cross | v1-pp | v1-psc | v2 | v2-psc | v2-search | sgx")
		bits    = flag.Int("bits", 32, "secret bits to leak")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		model   = flag.String("model", "coffeelake", "coffeelake | haswell")
		miti    = flag.Bool("mitigate", false, "enable the clear-ip-prefetcher mitigation")
	)
	flag.Parse()

	opts := afterimage.Options{Seed: *seed, MitigationFlush: *miti}
	if *model == "haswell" {
		opts.Model = afterimage.Haswell
	}
	lab := afterimage.NewLab(opts)
	fmt.Printf("machine: %s (mitigation=%v)\n", lab.ModelName(), *miti)

	show := func(r afterimage.LeakResult) {
		fmt.Printf("secret:   %s\n", bitsString(r.Secret))
		fmt.Printf("inferred: %s\n", bitsString(r.Inferred))
		fmt.Printf("success:  %.1f%% (%d/%d) in %.2f ms simulated\n",
			r.SuccessRate()*100, r.Correct, len(r.Secret), lab.Seconds(r.Cycles)*1e3)
	}

	switch *variant {
	case "v1":
		show(lab.RunVariant1(afterimage.V1Options{Bits: *bits}))
	case "v1-cross":
		show(lab.RunVariant1(afterimage.V1Options{Bits: *bits, CrossProcess: true}))
	case "v1-pp":
		show(lab.RunVariant1(afterimage.V1Options{Bits: *bits, Backend: afterimage.PrimeProbe}))
	case "v1-psc":
		show(lab.RunVariant1(afterimage.V1Options{Bits: *bits, Backend: afterimage.PSC}))
	case "v2":
		res := lab.RunVariant2(afterimage.V2Options{Bits: *bits})
		show(res.LeakResult)
	case "v2-psc":
		res := lab.RunVariant2(afterimage.V2Options{Bits: *bits, Backend: afterimage.PSC})
		show(res.LeakResult)
	case "v2-search":
		res := lab.RunVariant2(afterimage.V2Options{Bits: *bits, UseIPSearch: true})
		fmt.Printf("IP search: low-8 bits %#02x (searched=%v)\n", res.FoundIPLow8, res.IPSearched)
		show(res.LeakResult)
	case "sgx":
		res := lab.RunSGX(*bits, nil)
		show(res.LeakResult)
		fmt.Printf("telltale lines: t(3·8)=%d t(5·8)=%d cycles\n", res.Time24, res.Time40)
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(1)
	}
}

func bitsString(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
