// Command afterimage-poc runs the AfterImage proof-of-concept variants
// (§5): V1 cross-thread / cross-process control-flow leakage, V2 across the
// user-kernel boundary, and the SGX enclave channel.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"afterimage"
	"afterimage/internal/cliobs"
)

func main() {
	var (
		variant   = flag.String("variant", "v1", "v1 | v1-cross | v1-pp | v1-psc | v2 | v2-psc | v2-search | sgx")
		bits      = flag.Int("bits", 32, "secret bits to leak")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		model     = flag.String("model", "coffeelake", "coffeelake | haswell")
		miti      = flag.Bool("mitigate", false, "enable the clear-ip-prefetcher mitigation")
		maxCycles = flag.Uint64("max-cycles", 0, "cycle-budget watchdog (0 = off): abort with a typed fault once exceeded")
	)
	obs := cliobs.Register()
	flag.Parse()
	obs.Start()

	opts := afterimage.Options{Seed: *seed, MitigationFlush: *miti, MaxCycles: *maxCycles}
	if *model == "haswell" {
		opts.Model = afterimage.Haswell
	}
	lab, err := afterimage.NewLabE(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-poc: cannot boot the simulated machine: %v\n", err)
		os.Exit(1)
	}
	obs.Observe(lab)
	fmt.Printf("machine: %s (mitigation=%v)\n", lab.ModelName(), *miti)

	// show prints whatever the run produced — on a fault these are the bits
	// leaked before the simulator stopped the experiment.
	show := func(r afterimage.LeakResult) {
		fmt.Printf("secret:   %s\n", bitsString(r.Secret))
		fmt.Printf("inferred: %s\n", bitsString(r.Inferred))
		fmt.Printf("success:  %.1f%% (%d/%d) in %.2f ms simulated, mean confidence %.2f\n",
			r.SuccessRate()*100, r.Correct, len(r.Secret), lab.Seconds(r.Cycles)*1e3,
			r.MeanConfidence())
	}

	var res afterimage.LeakResult
	switch *variant {
	case "v1":
		res, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits})
	case "v1-cross":
		res, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits, CrossProcess: true})
	case "v1-pp":
		res, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits, Backend: afterimage.PrimeProbe})
	case "v1-psc":
		res, err = lab.RunVariant1E(afterimage.V1Options{Bits: *bits, Backend: afterimage.PSC})
	case "v2":
		var r afterimage.V2Result
		r, err = lab.RunVariant2E(afterimage.V2Options{Bits: *bits})
		res = r.LeakResult
	case "v2-psc":
		var r afterimage.V2Result
		r, err = lab.RunVariant2E(afterimage.V2Options{Bits: *bits, Backend: afterimage.PSC})
		res = r.LeakResult
	case "v2-search":
		var r afterimage.V2Result
		r, err = lab.RunVariant2E(afterimage.V2Options{Bits: *bits, UseIPSearch: true})
		fmt.Printf("IP search: low-8 bits %#02x (searched=%v)\n", r.FoundIPLow8, r.IPSearched)
		res = r.LeakResult
	case "sgx":
		var r afterimage.SGXResult
		r, err = lab.RunSGXE(*bits, nil)
		res = r.LeakResult
		if err == nil {
			fmt.Printf("telltale lines: t(3·8)=%d t(5·8)=%d cycles\n", r.Time24, r.Time40)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(1)
	}

	show(res)
	if oerr := obs.Finish(); oerr != nil {
		fmt.Fprintf(os.Stderr, "afterimage-poc: %v\n", oerr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-poc: experiment terminated early after %d/%d bits\n",
			len(res.Inferred), len(res.Secret))
		var f *afterimage.SimFault
		if errors.As(err, &f) {
			fmt.Fprintf(os.Stderr, "afterimage-poc: simulator fault: kind=%s task=%q cycle=%d: %v\n",
				f.Kind, f.Task, f.Cycle, f)
		} else {
			fmt.Fprintf(os.Stderr, "afterimage-poc: %v\n", err)
		}
		os.Exit(2)
	}
}

func bitsString(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
