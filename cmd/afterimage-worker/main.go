// Command afterimage-worker runs one lab-pool execution node. It serves the
// cluster wire protocol (POST /v1/execute, GET /healthz, GET /metrics) and
// self-registers with an afterimage-serve coordinator on a timer, so a
// worker that restarts — or that the coordinator evicted while it was down —
// rejoins the pool within one registration interval.
//
//	afterimage-worker -addr 127.0.0.1:9001 -id w1 \
//	    -coordinator http://127.0.0.1:8080 -checkpoints worker1-checkpoints
//
// Campaigns are pure functions of their specs, so the bytes this worker
// returns are identical to any sibling's (or the coordinator's own local
// run). Jobs checkpoint per completed point: a SIGKILLed worker restarted
// over the same -checkpoints directory resumes interrupted campaigns instead
// of re-simulating them. SIGTERM drains gracefully (healthz goes 503, the
// coordinator's heartbeats pull the worker from rotation, in-flight jobs
// finish or checkpoint).
//
// Chaos testing: -chaos makes SIGUSR1 toggle a simulated network partition —
// the worker keeps running but every handler stalls until the partition is
// lifted or the request context dies, which is how a netsplit looks from the
// coordinator's side. The cluster soak uses this to prove byte-identity
// under mid-campaign partitions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"afterimage/internal/cliobs"
	"afterimage/internal/cluster"
	"afterimage/internal/obslog"
	"afterimage/internal/server"
	"afterimage/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:9001", "listen address (host:port; also the advertised address unless -advertise is set)")
		advertise     = flag.String("advertise", "", "base URL the coordinator should dial (default http://<addr>)")
		id            = flag.String("id", "", "worker id (required; 1..64 chars of [a-zA-Z0-9_-])")
		coordinator   = flag.String("coordinator", "", "coordinator base URL to self-register with, e.g. http://127.0.0.1:8080 (empty = no registration; register manually)")
		ckptDir       = flag.String("checkpoints", "afterimage-worker-checkpoints", "per-campaign runner checkpoint directory (persists across restarts for crash resume)")
		maxConcurrent = flag.Int("max-concurrent", 2, "jobs executing concurrently; excess is shed with 503 so the coordinator fails over")
		pointWorkers  = flag.Int("point-workers", 1, "runner workers inside each campaign (results identical for any value)")
		registerEvery = flag.Duration("register-every", time.Second, "re-registration interval (also the eviction revival latency)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs to finish or checkpoint")
		chaos         = flag.Bool("chaos", false, "SIGUSR1 toggles a simulated network partition (handlers stall until healed); for the cluster chaos harness")
	)
	obs := cliobs.Register()
	flag.Parse()
	obs.Start() // -pprof

	log, err := obs.Logger()
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-worker: %v\n", err)
		os.Exit(2)
	}
	log = log.With(obslog.F("component", "afterimage-worker"), obslog.F("worker", *id))

	reg := telemetry.NewRegistry()
	w, err := server.NewWorker(server.WorkerConfig{
		ID:            *id,
		CheckpointDir: *ckptDir,
		MaxConcurrent: *maxConcurrent,
		PointWorkers:  *pointWorkers,
		Registry:      reg,
		Logger:        log,
	})
	if err != nil {
		log.Error("worker init failed", obslog.F("err", err))
		os.Exit(1)
	}

	handler := w.Handler()
	var partitioned atomic.Bool
	if *chaos {
		handler = partitionMiddleware(handler, &partitioned)
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				now := !partitioned.Load()
				partitioned.Store(now)
				log.Warn("chaos partition toggled", obslog.F("partitioned", now))
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		log.Info("worker listening", obslog.F("addr", *addr))
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *coordinator != "" {
		self := *advertise
		if self == "" {
			self = "http://" + *addr
		}
		go server.RegisterLoop(ctx, nil, *coordinator,
			cluster.RegisterRequest{ID: *id, Addr: self}, *registerEvery, log)
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("listener failed", obslog.F("err", err))
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	// Graceful drain: healthz goes 503 (the coordinator's next heartbeat
	// pulls this worker from rotation), new jobs are shed, in-flight jobs
	// finish or checkpoint, then the listener closes. A restart resumes
	// interrupted campaigns from -checkpoints.
	log.Info("draining: in-flight jobs finish or checkpoint")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := w.Drain(drainCtx); err != nil {
		log.Warn("drain", obslog.F("err", err))
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Error("shutdown", obslog.F("err", err))
		os.Exit(1)
	}
	log.Info("drained cleanly")
}

// partitionMiddleware simulates a netsplit: while partitioned, every request
// stalls until the partition heals or the caller's context dies — exactly how
// an unreachable peer looks to the coordinator (probe timeouts, hung
// dispatches), as opposed to a crash's immediate connection refusal.
func partitionMiddleware(next http.Handler, partitioned *atomic.Bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for partitioned.Load() {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(25 * time.Millisecond):
			}
		}
		next.ServeHTTP(w, r)
	})
}
