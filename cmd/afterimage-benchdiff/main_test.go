package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: afterimage/internal/cache
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkCacheAccessHit    	33168086	         6.000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheAccessHit    	41355872	         8.000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheAccessHit    	37223868	         7.000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig13aV1PrimeProbe 	       1	  16187262 ns/op	       100.0 success-%
BenchmarkFig13aV1PrimeProbe 	       1	  10618787 ns/op	       100.0 success-%
BenchmarkRunApp-8        	      18	  13174564 ns/op	 2813808 B/op	     170 allocs/op
PASS
ok  	afterimage/internal/cache	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	samples, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkCacheAccessHit"]); got != 3 {
		t.Fatalf("CacheAccessHit samples = %d, want 3", got)
	}
	if got := len(samples["BenchmarkFig13aV1PrimeProbe"]); got != 2 {
		t.Fatalf("Fig13a samples = %d, want 2 (custom success-%% metric must not confuse the parser)", got)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	ra := samples["BenchmarkRunApp"]
	if len(ra) != 1 || ra[0].nsOp != 13174564 || !ra[0].hasAlloc || ra[0].allocsOp != 170 {
		t.Fatalf("RunApp parsed as %+v", ra)
	}

	medians := reduce(samples)
	if got := medians["BenchmarkCacheAccessHit"].nsOp; got != 7.000 {
		t.Fatalf("CacheAccessHit median = %v, want 7.000", got)
	}
	if got := medians["BenchmarkFig13aV1PrimeProbe"].nsOp; got != (16187262+10618787)/2.0 {
		t.Fatalf("Fig13a even-count median = %v", got)
	}
}

func TestCompareGeomeanAndAllocGate(t *testing.T) {
	zero := 0.0
	base := map[string]*baselineEntry{
		"BenchmarkA":    {NsOp: 100, AllocsOp: &zero},
		"BenchmarkB":    {NsOp: 200},
		"BenchmarkGone": {NsOp: 50},
	}
	run := map[string]reduced{
		"BenchmarkA":   {nsOp: 110, hasAlloc: true, allocsOp: 0, runs: 3},
		"BenchmarkB":   {nsOp: 180, runs: 3},
		"BenchmarkNew": {nsOp: 1, runs: 3},
	}
	rows, onlyBase, onlyRun := compare(base, run)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkGone" {
		t.Fatalf("onlyBase = %v", onlyBase)
	}
	if len(onlyRun) != 1 || onlyRun[0] != "BenchmarkNew" {
		t.Fatalf("onlyRun = %v", onlyRun)
	}
	// geomean(1.10, 0.90) = sqrt(0.99)
	if gm := geomean(rows); math.Abs(gm-math.Sqrt(1.10*0.90)) > 1e-12 {
		t.Fatalf("geomean = %v", gm)
	}
	for _, r := range rows {
		if r.allocBad {
			t.Fatalf("%s flagged allocBad with 0 allocs", r.name)
		}
	}

	// A benchmark whose baseline pins 0 allocs/op must trip the gate the
	// moment it allocates, regardless of timing.
	run["BenchmarkA"] = reduced{nsOp: 90, hasAlloc: true, allocsOp: 2, runs: 3}
	rows, _, _ = compare(base, run)
	tripped := false
	for _, r := range rows {
		if r.name == "BenchmarkA" && r.allocBad {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("zero-alloc gate did not trip")
	}
}
