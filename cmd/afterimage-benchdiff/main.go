// Command afterimage-benchdiff compares `go test -bench` output against the
// committed hot-path baseline (BENCH_hotpath.json) and fails on regressions.
// It exists because the CI image cannot install benchstat; the comparison it
// performs is the benchstat-shaped subset the perf gate needs:
//
//   - parse standard benchmark output lines (multiple -count runs per name),
//   - reduce each benchmark to its median ns/op, B/op and allocs/op,
//   - compute per-benchmark deltas and the geometric-mean time ratio over
//     every benchmark present in both the run and the baseline,
//   - exit 1 when the geomean regresses by more than -threshold percent, or
//     when a benchmark whose baseline pins 0 allocs/op starts allocating.
//
// A markdown delta table is written to -out for the CI artifact upload.
// With -update the baseline's measured fields (ns_op, bytes_op, allocs_op)
// are rewritten from the run's medians; the seed_* history is preserved.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineEntry mirrors one benchmark record in BENCH_hotpath.json. The
// seed_* fields are the pre-overhaul history and are carried through -update
// untouched; only the unprefixed measured fields participate in the gate.
type baselineEntry struct {
	Package     string   `json:"package,omitempty"`
	SeedNsOp    *float64 `json:"seed_ns_op,omitempty"`
	SeedBytesOp *float64 `json:"seed_bytes_op,omitempty"`
	SeedAllocs  *float64 `json:"seed_allocs_op,omitempty"`
	NsOp        float64  `json:"ns_op"`
	BytesOp     *float64 `json:"bytes_op,omitempty"`
	AllocsOp    *float64 `json:"allocs_op,omitempty"`
}

type baseline struct {
	Schema       int                       `json:"schema"`
	Updated      string                    `json:"updated,omitempty"`
	Go           string                    `json:"go,omitempty"`
	CPU          string                    `json:"cpu,omitempty"`
	ThresholdPct float64                   `json:"threshold_pct,omitempty"`
	Note         string                    `json:"note,omitempty"`
	Benchmarks   map[string]*baselineEntry `json:"benchmarks"`
}

// sample is one parsed benchmark output line.
type sample struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
	hasBytes bool
	hasAlloc bool
}

// benchLine matches "BenchmarkName-8   123   456.7 ns/op ..." — the GOMAXPROCS
// suffix is optional (root-package benchmarks here print without it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchOutput collects every benchmark sample in r, keyed by the
// benchmark name with any -N GOMAXPROCS suffix stripped. Non-benchmark lines
// (pkg headers, PASS, custom metrics on their own lines) are ignored.
func parseBenchOutput(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		s, ok := parseMetrics(m[3])
		if !ok {
			continue // a Benchmark-prefixed line with no ns/op field
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

// parseMetrics walks the "value unit value unit ..." tail of a benchmark
// line. Unknown units (custom b.ReportMetric outputs like "success-%") are
// skipped so they never corrupt the timing fields.
func parseMetrics(tail string) (sample, bool) {
	var s sample
	fields := strings.Fields(tail)
	seenNs := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return s, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsOp, seenNs = v, true
		case "B/op":
			s.bytesOp, s.hasBytes = v, true
		case "allocs/op":
			s.allocsOp, s.hasAlloc = v, true
		}
	}
	return s, seenNs
}

func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// reduced is the per-benchmark median over all -count runs.
type reduced struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
	hasBytes bool
	hasAlloc bool
	runs     int
}

func reduce(samples map[string][]sample) map[string]reduced {
	out := make(map[string]reduced, len(samples))
	for name, ss := range samples {
		var ns, by, al []float64
		r := reduced{runs: len(ss)}
		for _, s := range ss {
			ns = append(ns, s.nsOp)
			if s.hasBytes {
				by = append(by, s.bytesOp)
				r.hasBytes = true
			}
			if s.hasAlloc {
				al = append(al, s.allocsOp)
				r.hasAlloc = true
			}
		}
		r.nsOp = median(ns)
		if r.hasBytes {
			r.bytesOp = median(by)
		}
		if r.hasAlloc {
			r.allocsOp = median(al)
		}
		out[name] = r
	}
	return out
}

// row is one line of the delta table.
type row struct {
	name      string
	base, now reduced
	ratio     float64 // now/base time ratio; >1 is a regression
	allocBad  bool    // baseline pinned 0 allocs/op, run allocates
}

// compare joins the run against the baseline. Benchmarks missing on either
// side are reported by name but do not gate; the geomean covers the join.
func compare(base map[string]*baselineEntry, run map[string]reduced) (rows []row, onlyBase, onlyRun []string) {
	for name, b := range base {
		r, ok := run[name]
		if !ok {
			onlyBase = append(onlyBase, name)
			continue
		}
		rw := row{
			name:  name,
			base:  reduced{nsOp: b.NsOp},
			now:   r,
			ratio: r.nsOp / b.NsOp,
		}
		if b.BytesOp != nil {
			rw.base.bytesOp, rw.base.hasBytes = *b.BytesOp, true
		}
		if b.AllocsOp != nil {
			rw.base.allocsOp, rw.base.hasAlloc = *b.AllocsOp, true
			if *b.AllocsOp == 0 && r.hasAlloc && r.allocsOp > 0 {
				rw.allocBad = true
			}
		}
		rows = append(rows, rw)
	}
	for name := range run {
		if _, ok := base[name]; !ok {
			onlyRun = append(onlyRun, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(onlyBase)
	sort.Strings(onlyRun)
	return rows, onlyBase, onlyRun
}

func geomean(rows []row) float64 {
	if len(rows) == 0 {
		return 1
	}
	sum := 0.0
	for _, r := range rows {
		sum += math.Log(r.ratio)
	}
	return math.Exp(sum / float64(len(rows)))
}

func fmtNs(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", v/1e3)
	default:
		return fmt.Sprintf("%.2fns", v)
	}
}

func writeDelta(w io.Writer, rows []row, onlyBase, onlyRun []string, gm, thresholdPct float64, pass bool) {
	fmt.Fprintf(w, "# Hot-path benchmark delta\n\n")
	fmt.Fprintf(w, "| benchmark | baseline | run | delta | allocs (base → run) |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|\n")
	for _, r := range rows {
		allocs := "–"
		if r.base.hasAlloc || r.now.hasAlloc {
			allocs = fmt.Sprintf("%.0f → %.0f", r.base.allocsOp, r.now.allocsOp)
			if r.allocBad {
				allocs += " ⚠"
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% | %s |\n",
			r.name, fmtNs(r.base.nsOp), fmtNs(r.now.nsOp), (r.ratio-1)*100, allocs)
	}
	fmt.Fprintf(w, "\n**Geomean time ratio:** %.3f (%+.1f%%, threshold +%.0f%%) — **%s**\n",
		gm, (gm-1)*100, thresholdPct, map[bool]string{true: "PASS", false: "FAIL"}[pass])
	if !pass {
		fmt.Fprintf(w, "\nBaseline numbers are machine-relative. If the regression is expected (new runner\nhardware or an intentional trade-off), refresh the baseline from this run:\n`go run ./cmd/afterimage-benchdiff -baseline BENCH_hotpath.json -update <bench-output.txt>`\nand commit the result.\n")
	}
	if len(onlyBase) > 0 {
		fmt.Fprintf(w, "\nIn baseline but not measured: %s\n", strings.Join(onlyBase, ", "))
	}
	if len(onlyRun) > 0 {
		fmt.Fprintf(w, "\nMeasured but not in baseline: %s\n", strings.Join(onlyRun, ", "))
	}
}

func run() int {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "baseline JSON file")
	threshold := flag.Float64("threshold", 0, "max allowed geomean regression in percent (0 = use the baseline's threshold_pct)")
	out := flag.String("out", "", "write the markdown delta table to this file as well as stdout")
	update := flag.Bool("update", false, "rewrite the baseline's measured fields from this run's medians instead of gating")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: afterimage-benchdiff [-baseline BENCH_hotpath.json] [-threshold pct] [-out delta.md] [-update] bench-output.txt ...")
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}

	samples := make(map[string][]sample)
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		got, perr := parseBenchOutput(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, perr)
			return 2
		}
		for name, ss := range got {
			samples[name] = append(samples[name], ss...)
		}
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines found in input")
		return 2
	}
	medians := reduce(samples)

	if *update {
		for name, r := range medians {
			e := base.Benchmarks[name]
			if e == nil {
				e = &baselineEntry{}
				base.Benchmarks[name] = e
			}
			e.NsOp = r.nsOp
			if r.hasBytes {
				v := r.bytesOp
				e.BytesOp = &v
			}
			if r.hasAlloc {
				v := r.allocsOp
				e.AllocsOp = &v
			}
		}
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Printf("benchdiff: updated %d benchmark(s) in %s\n", len(medians), *baselinePath)
		return 0
	}

	pct := *threshold
	if pct == 0 {
		pct = base.ThresholdPct
	}
	if pct == 0 {
		pct = 10
	}

	rows, onlyBase, onlyRun := compare(base.Benchmarks, medians)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common with the baseline")
		return 2
	}
	gm := geomean(rows)
	allocFail := false
	for _, r := range rows {
		if r.allocBad {
			allocFail = true
			fmt.Fprintf(os.Stderr, "benchdiff: %s allocates %.0f/op; baseline pins 0\n", r.name, r.now.allocsOp)
		}
	}
	pass := gm <= 1+pct/100 && !allocFail

	var sb strings.Builder
	writeDelta(&sb, rows, onlyBase, onlyRun, gm, pct, pass)
	fmt.Print(sb.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
	}
	if !pass {
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
