// Command afterimage-serve runs the campaign service: an HTTP front door
// over the deterministic simulator with a persistent content-addressed
// result cache, single-flight deduplication, per-tenant admission control
// with load shedding, SSE progress streaming, and crash-safe
// checkpoint/resume.
//
//	afterimage-serve -addr :8080 -store /var/lib/afterimage/store \
//	    -checkpoints /var/lib/afterimage/checkpoints
//
// Submit a campaign:
//
//	curl -s localhost:8080/v1/campaigns -d \
//	    '{"tenant":"alice","attack":"v1-thread","bits":12,"intensities":[0,1],"seed":5}'
//
// Resubmitting the same spec is a cache hit (X-Afterimage-Cache: hit) with
// byte-identical body. SIGTERM drains gracefully: in-flight campaigns are
// checkpointed and a restarted server resumes them on their next request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"afterimage/internal/server"
	"afterimage/internal/store"
	"afterimage/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		storeDir      = flag.String("store", "afterimage-store", "content-addressed result store directory (persists across restarts)")
		ckptDir       = flag.String("checkpoints", "afterimage-checkpoints", "per-campaign runner checkpoint directory (persists across restarts)")
		maxCampaigns  = flag.Int("max-campaigns", 4, "campaigns executing concurrently")
		queueDepth    = flag.Int("queue", 8, "campaigns waiting for a slot before the server sheds with 429 + Retry-After")
		tenantQuota   = flag.Int("tenant-quota", 2, "per-tenant concurrent-campaign quota (excess is an immediate 429)")
		pointWorkers  = flag.Int("point-workers", 1, "runner workers inside each campaign (results identical for any value)")
		defaultTimout = flag.Duration("campaign-timeout", 0, "default per-campaign wall deadline when the spec sets none (0 = none); expiry checkpoints and returns 504")
		retryAfter    = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight campaigns to checkpoint and unwind")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	st, quarantined, err := store.Open(*storeDir, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-serve: open store: %v\n", err)
		os.Exit(1)
	}
	if quarantined > 0 {
		fmt.Fprintf(os.Stderr, "afterimage-serve: recovery scan quarantined %d torn/corrupt store files (see %s)\n",
			quarantined, store.QuarantineDir)
	}
	fmt.Printf("store: %s (%d entries)\n", st.Dir(), st.Len())

	srv, err := server.New(server.Config{
		Store:          st,
		CheckpointDir:  *ckptDir,
		Registry:       reg,
		MaxConcurrent:  *maxCampaigns,
		QueueDepth:     *queueDepth,
		TenantQuota:    *tenantQuota,
		PointWorkers:   *pointWorkers,
		DefaultTimeout: *defaultTimout,
		RetryAfter:     *retryAfter,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "afterimage-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	// Graceful drain: refuse new executions, cancel in-flight campaigns at
	// their next point boundary (each completed point is already
	// checkpointed), wait for them to unwind, then close the listener. A
	// restart resumes every interrupted campaign from its checkpoint.
	fmt.Fprintln(os.Stderr, "afterimage-serve: draining (in-flight campaigns checkpoint and stop)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-serve: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-serve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "afterimage-serve: drained cleanly")
}
