// Command afterimage-serve runs the campaign service: an HTTP front door
// over the deterministic simulator with a persistent content-addressed
// result cache, single-flight deduplication, per-tenant admission control
// with load shedding, SSE progress streaming, and crash-safe
// checkpoint/resume.
//
//	afterimage-serve -addr :8080 -store /var/lib/afterimage/store \
//	    -checkpoints /var/lib/afterimage/checkpoints
//
// Submit a campaign:
//
//	curl -s localhost:8080/v1/campaigns -d \
//	    '{"tenant":"alice","attack":"v1-thread","bits":12,"intensities":[0,1],"seed":5}'
//
// Resubmitting the same spec is a cache hit (X-Afterimage-Cache: hit) with
// byte-identical body. SIGTERM drains gracefully: in-flight campaigns are
// checkpointed and a restarted server resumes them on their next request.
//
// Observability: -log-format/-log-level control structured stderr logging
// (every campaign line carries its correlation ID), -span-log appends one
// JSONL span record per completed campaign (validate with
// afterimage-tracecheck -format spans), -pprof serves net/http/pprof, and
// GET /metrics serves Prometheus 0.0.4 exposition to scrapers that ask for
// it (Accept: text/plain; version=0.0.4) alongside the legacy text format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"afterimage/internal/cliobs"
	"afterimage/internal/cluster"
	"afterimage/internal/obslog"
	"afterimage/internal/server"
	"afterimage/internal/store"
	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		storeDir      = flag.String("store", "afterimage-store", "content-addressed result store directory (persists across restarts)")
		ckptDir       = flag.String("checkpoints", "afterimage-checkpoints", "per-campaign runner checkpoint directory (persists across restarts)")
		maxCampaigns  = flag.Int("max-campaigns", 4, "campaigns executing concurrently")
		queueDepth    = flag.Int("queue", 8, "campaigns waiting for a slot before the server sheds with 429 + Retry-After")
		tenantQuota   = flag.Int("tenant-quota", 2, "per-tenant concurrent-campaign quota (excess is an immediate 429)")
		pointWorkers  = flag.Int("point-workers", 1, "runner workers inside each campaign (results identical for any value)")
		defaultTimout = flag.Duration("campaign-timeout", 0, "default per-campaign wall deadline when the spec sets none (0 = none); expiry checkpoints and returns 504")
		retryAfter    = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight campaigns to checkpoint and unwind")
		spanLogPath   = flag.String("span-log", "", "append one JSONL span record per completed campaign to this file (validate with afterimage-tracecheck -format spans)")

		storeBudget   = flag.Int64("store-budget", 0, "store size budget in bytes (0 = unlimited); past it the oldest entries are evicted first, never pinned (in-flight) keys")
		scrubInterval = flag.Duration("store-scrub-interval", 0, "background store integrity-scrub cadence (0 = off; POST /v1/store/scrub always works on demand)")
		scrubRate     = flag.Int("store-scrub-rate", 0, "scrubber rate limit in entry verifications per second (0 = unlimited)")
		fsChaos       = flag.String("fs-chaos", "", `inject deterministic filesystem faults into store and checkpoint writes (chaos testing): "seed=N,enospc=R,eio=R,torn=R,rename=R" with rates in [0,1]`)

		clusterOn        = flag.Bool("cluster", false, "shard campaign execution across registered afterimage-worker nodes (degrading to local execution when none are healthy)")
		heartbeatEvery   = flag.Duration("cluster-heartbeat", 250*time.Millisecond, "worker heartbeat probe interval")
		evictAfter       = flag.Duration("cluster-evict-after", time.Second, "evict a worker unseen for this long (it rejoins by re-registering)")
		breakerThreshold = flag.Int("cluster-breaker-threshold", 3, "consecutive dispatch failures that open a worker's circuit breaker")
		breakerCooldown  = flag.Duration("cluster-breaker-cooldown", 2*time.Second, "how long an open breaker holds before the half-open probe")
		dispatchRounds   = flag.Int("cluster-dispatch-rounds", 3, "workers one campaign tries before degrading to local execution")
		dispatchTimeout  = flag.Duration("cluster-dispatch-timeout", 0, "per-attempt deadline against one worker (0 = bounded only by the campaign context); keeps a hung or partitioned worker from stalling a campaign")
		hedgeAfter       = flag.Duration("cluster-hedge-after", 0, "fixed straggler-hedging delay (0 = adaptive: p95 of recent dispatch latencies)")
	)
	obs := cliobs.Register()
	flag.Parse()
	obs.Start() // -pprof

	log, err := obs.Logger()
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-serve: %v\n", err)
		os.Exit(2)
	}
	log = log.With(obslog.F("component", "afterimage-serve"))

	var spanLog *os.File
	if *spanLogPath != "" {
		spanLog, err = os.OpenFile(*spanLogPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			log.Error("open span log", obslog.F("path", *spanLogPath), obslog.F("err", err))
			os.Exit(1)
		}
		defer spanLog.Close()
	}

	reg := telemetry.NewRegistry()

	// Optional deterministic disk-fault injection: one FaultFS shared by the
	// store and the checkpoint writer, so a chaos run exercises every
	// degradation path the service has.
	var fsys vfs.FS
	if *fsChaos != "" {
		fcfg, err := vfs.ParseFaultConfig(*fsChaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "afterimage-serve: -fs-chaos: %v\n", err)
			os.Exit(2)
		}
		fcfg.Registry = reg
		fsys = vfs.NewFaultFS(fcfg, nil)
		log.Warn("filesystem fault injection enabled", obslog.F("config", *fsChaos))
	}

	st, quarantined, err := store.OpenWith(store.Options{
		Dir:           *storeDir,
		Registry:      reg,
		FS:            fsys,
		Budget:        *storeBudget,
		ScrubInterval: *scrubInterval,
		ScrubRate:     *scrubRate,
		Logger:        log,
	})
	if err != nil {
		log.Error("open store", obslog.F("dir", *storeDir), obslog.F("err", err))
		os.Exit(1)
	}
	defer st.Close()
	if quarantined > 0 {
		log.Warn("recovery scan quarantined torn/corrupt store files",
			obslog.F("count", quarantined), obslog.F("dir", store.QuarantineDir))
	}
	log.Info("store opened", obslog.F("dir", st.Dir()), obslog.F("entries", st.Len()),
		obslog.F("budget", *storeBudget), obslog.F("scrub_interval", *scrubInterval))

	cfg := server.Config{
		Store:          st,
		FS:             fsys,
		CheckpointDir:  *ckptDir,
		Registry:       reg,
		MaxConcurrent:  *maxCampaigns,
		QueueDepth:     *queueDepth,
		TenantQuota:    *tenantQuota,
		PointWorkers:   *pointWorkers,
		DefaultTimeout: *defaultTimout,
		RetryAfter:     *retryAfter,
		Logger:         log,
	}
	if spanLog != nil {
		cfg.SpanLog = spanLog
	}
	var coord *cluster.Coordinator
	if *clusterOn {
		coord = cluster.New(cluster.Config{
			HeartbeatInterval: *heartbeatEvery,
			EvictAfter:        *evictAfter,
			BreakerThreshold:  *breakerThreshold,
			BreakerCooldown:   *breakerCooldown,
			DispatchRounds:    *dispatchRounds,
			DispatchTimeout:   *dispatchTimeout,
			HedgeAfter:        *hedgeAfter,
			Registry:          reg,
			Logger:            log,
		})
		cfg.Cluster = coord
		log.Info("cluster mode: workers register at /v1/cluster/register")
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Error("server init failed", obslog.F("err", err))
		os.Exit(1)
	}
	if coord != nil {
		coord.Start()
		defer coord.Stop()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", obslog.F("addr", *addr))
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("listener failed", obslog.F("err", err))
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	// Graceful drain: refuse new executions, cancel in-flight campaigns at
	// their next point boundary (each completed point is already
	// checkpointed), wait for them to unwind, then close the listener. A
	// restart resumes every interrupted campaign from its checkpoint.
	log.Info("draining: in-flight campaigns checkpoint and stop")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Warn("drain", obslog.F("err", err))
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Error("shutdown", obslog.F("err", err))
		os.Exit(1)
	}
	log.Info("drained cleanly")
}
