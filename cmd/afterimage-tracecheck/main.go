// Command afterimage-tracecheck validates the observability artifacts the
// other afterimage binaries produce, for CI gating:
//
//	-format chrome  (default) Chrome trace_event JSON from the -trace flag:
//	                object format, known phase types, non-negative
//	                timestamps, balanced B/E pairs per track. Exit 0 means
//	                the file loads in chrome://tracing and Perfetto.
//	-format spans   campaign span logs (afterimage-serve -span-log, or
//	                GET /v1/campaigns/{key}/trace): JSONL of schema-stamped
//	                records whose trees obey the campaign→stage→job→
//	                attempt→phase taxonomy.
//	-format prom    Prometheus 0.0.4 text exposition (GET /metrics with
//	                Accept: text/plain; version=0.0.4): TYPE-before-sample
//	                ordering, legal names, cumulative histogram buckets with
//	                +Inf == _count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"afterimage/internal/telemetry"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-file summary on success")
	format := flag.String("format", "chrome", "artifact type to validate: chrome, spans, or prom")
	flag.Parse()

	var validate func(io.Reader) (int, error)
	var unit string
	switch *format {
	case "chrome":
		validate, unit = telemetry.ValidateChromeTrace, "trace events"
	case "spans":
		validate, unit = telemetry.ValidateSpanLog, "span records"
	case "prom", "prometheus":
		validate, unit = telemetry.ValidatePrometheus, "samples"
	default:
		fmt.Fprintf(os.Stderr, "afterimage-tracecheck: unknown -format %q (want chrome, spans, or prom)\n", *format)
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: afterimage-tracecheck [-q] [-format chrome|spans|prom] file ...")
		os.Exit(2)
	}

	failed := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		n, err := validate(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: invalid %s: %v\n", path, *format, err)
			failed++
			continue
		}
		if !*quiet {
			fmt.Printf("%s: ok (%d %s)\n", path, n, unit)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
