// Command afterimage-tracecheck validates a Chrome trace_event JSON file
// produced by the -trace flag of the other afterimage binaries: the
// trace-event schema (object format, known phase types, non-negative
// timestamps, balanced B/E pairs per track). Exit status 0 means the file
// loads in chrome://tracing and Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"

	"afterimage/internal/telemetry"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-file summary on success")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: afterimage-tracecheck [-q] trace.json ...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		n, err := telemetry.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: invalid trace: %v\n", path, err)
			failed++
			continue
		}
		if !*quiet {
			fmt.Printf("%s: ok (%d trace events)\n", path, n)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
