// Command afterimage-mitigate evaluates the paper's proposed privileged
// clear-ip-prefetcher instruction (§8.3): it replays SPEC-like traces
// through the ChampSim-style model with the prefetcher flushed every 10 µs,
// prints the per-application IPC impact, compares against the analytic
// upper bound, and demonstrates that the flush actually defeats the attack.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"afterimage"
	"afterimage/internal/cliobs"
)

func main() {
	var (
		instr = flag.Int("instructions", 400_000, "instructions per application trace")
		flush = flag.Uint64("interval", 30_000, "flush interval in cycles (30 000 = 10 µs at 3 GHz)")
		seed  = flag.Int64("seed", 1, "deterministic seed")
	)
	obs := cliobs.Register()
	rflags := cliobs.RegisterRunner()
	flag.Parse()
	obs.Start()
	ctx, stop := rflags.Context(context.Background())
	defer stop()

	res, err := afterimage.RunMitigationStudyCtx(ctx, afterimage.MitigationOptions{
		Instructions:        *instr,
		FlushIntervalCycles: *flush,
		Seed:                *seed,
		Runner:              rflags.Options(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if rflags.Checkpoint != "" {
			fmt.Fprintln(os.Stderr, "completed applications are checkpointed; rerun with -resume to continue")
		}
		os.Exit(1)
	}

	fmt.Printf("clear-ip-prefetcher every %d cycles over %d-instruction SPEC-like traces\n\n", *flush, *instr)
	fmt.Println("application        sens  base-IPC  flush-IPC  no-pf-IPC  slowdown  pf-benefit")
	for _, r := range res.Rows {
		fmt.Printf("%-18s %-5v %8.3f  %9.3f  %9.3f  %7.3f%%  %8.1f%%\n",
			r.Name, r.Sensitive, r.BaseIPC, r.MitigatedIPC, r.NoPrefetchIPC,
			r.Slowdown*100, r.PrefetchBenefit*100)
	}
	if len(res.Degraded) > 0 {
		fmt.Printf("degraded (replay failed, excluded from means): %s\n", strings.Join(res.Degraded, ", "))
	}
	fmt.Printf("\ntop-8 prefetch-sensitive slowdown: %.2f%%  (paper: 0.7%%)\n", res.Top8Slowdown*100)
	fmt.Printf("overall slowdown:                  %.2f%%  (paper: 0.2%%)\n", res.OverallSlowdown*100)
	fmt.Printf("analytic upper bound:              %.2f%%  (paper: <7.3%%)\n\n", res.AnalyticUpperBound*100)

	// Security check: the mitigation must actually kill the attack. The
	// error-hardened variant keeps the table output above intact even if the
	// check itself faults.
	lab, err := afterimage.NewLabE(obs.LabOptions(afterimage.Options{Seed: *seed, MitigationFlush: true}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-mitigate: security check unavailable: %v\n", err)
		os.Exit(1)
	}
	obs.Observe(lab)
	leak, err := lab.RunVariant1E(afterimage.V1Options{Bits: 64})
	if err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-mitigate: security check faulted after %d/64 rounds: %v\n",
			len(leak.Inferred), err)
		os.Exit(1)
	}
	positives := 0
	for _, inf := range leak.Inferred {
		if inf {
			positives++
		}
	}
	fmt.Printf("attack under mitigation: %d/%d rounds produced any signal (0 = fully blocked)\n",
		positives, len(leak.Inferred))
	if err := obs.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-mitigate: %v\n", err)
		os.Exit(1)
	}
}
