// Command afterimage-rsa runs the §6.2 end-to-end key extraction against
// the timing-constant Montgomery-ladder RSA victim via AfterImage-PSC, and
// reports the recovered exponent, the per-observation accuracy, and the
// simulated attack budget (the paper's 188 minutes for 1024 bits).
package main

import (
	"flag"
	"fmt"
	"os"

	"afterimage"
	"afterimage/internal/cliobs"
)

func main() {
	var (
		keyBits = flag.Int("keybits", 96, "RSA modulus size (the paper uses 1024; larger is slower)")
		iters   = flag.Int("iters", 5, "observations per key bit (majority vote)")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		pipe    = flag.Bool("pipelined", false, "observe all bits per decryption (library extension)")
		fast    = flag.Bool("fast", false, "use a fast victim profile instead of the paper's -O0 model")
	)
	obs := cliobs.Register()
	flag.Parse()
	obs.Start()

	lab := afterimage.NewLab(obs.LabOptions(afterimage.Options{Seed: *seed}))
	obs.Observe(lab)
	opts := afterimage.RSAOptions{KeyBits: *keyBits, ItersPerBit: *iters, Pipelined: *pipe}
	if *fast {
		opts.VictimIterationCycles = 6000
	}
	res := lab.ExtractRSAKey(opts)

	fmt.Printf("machine:            %s\n", lab.ModelName())
	fmt.Printf("key size:           %d-bit modulus, %d-bit private exponent\n", res.KeyBits, res.BitsTotal)
	fmt.Printf("true exponent:      %v\n", res.TrueExponent)
	fmt.Printf("recovered exponent: %v\n", res.Recovered)
	fmt.Printf("bits correct:       %d/%d (%.1f%%)\n", res.BitsCorrect, res.BitsTotal, res.BitSuccessRate()*100)
	fmt.Printf("PSC observations:   %d, accuracy %.1f%% (paper: 82%%)\n", res.Observations, res.PSCSuccessRate()*100)
	fmt.Printf("decryptions:        %d\n", res.Decryptions)
	secs := lab.Seconds(res.Cycles)
	fmt.Printf("simulated time:     %.1f s (%.2f s/bit)\n", secs, secs/float64(res.BitsTotal))
	if !*fast && !*pipe {
		fmt.Printf("1024-bit budget:    ~%.0f minutes (paper: ~188 min)\n",
			secs/float64(res.BitsTotal)*1024/60)
	}
	if *pipe {
		fmt.Println("pipelined mode: all bits observed per decryption — the attack cost")
		fmt.Println("collapses to ItersPerBit decryptions when the attacker keeps ladder pace.")
	}
	if err := obs.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "afterimage-rsa: %v\n", err)
		os.Exit(1)
	}
}
