package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCSVsProducesAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("CSV regeneration is slow")
	}
	dir := t.TempDir()
	if err := writeCSVs(dir, 1); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{ // file -> minimum data rows
		"fig6.csv":       17,
		"fig8a.csv":      56,
		"fig8b.csv":      24,
		"fig13a.csv":     64,
		"fig15.csv":      20,
		"fig16.csv":      20,
		"mitigation.csv": 16,
	}
	for name, minRows := range want {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s unparsable: %v", name, err)
		}
		if len(rows) < minRows+1 { // +1 header
			t.Fatalf("%s has %d rows, want ≥ %d", name, len(rows)-1, minRows)
		}
		for i, r := range rows[1:] {
			if len(r) != len(rows[0]) {
				t.Fatalf("%s row %d has %d cells, header has %d", name, i, len(r), len(rows[0]))
			}
		}
	}
}
