package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"afterimage"
)

// writeCSVs regenerates the figure data series and writes one CSV per
// figure into dir — the raw numbers behind every plot, for external
// plotting or regression diffing.
func writeCSVs(dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	quiet := afterimage.NewLab(afterimage.Options{Seed: seed, Quiet: true})

	if err := writeCSV(dir, "fig6.csv", [][]string{{"matched_bits", "access_cycles", "triggered"}},
		func(rows *[][]string) {
			for _, p := range quiet.RevFig6() {
				*rows = append(*rows, []string{
					strconv.Itoa(p.MatchedBits),
					strconv.FormatUint(p.AccessTime, 10),
					strconv.FormatBool(p.Triggered),
				})
			}
		}); err != nil {
		return err
	}

	if err := writeCSV(dir, "fig8a.csv", [][]string{{"trained_ips", "index", "access_cycles", "triggered"}},
		func(rows *[][]string) {
			for _, n := range []int{26, 30} {
				for _, p := range quiet.RevFig8a(n) {
					*rows = append(*rows, []string{
						strconv.Itoa(n), strconv.Itoa(p.Index),
						strconv.FormatUint(p.AccessTime, 10),
						strconv.FormatBool(p.Triggered),
					})
				}
			}
		}); err != nil {
		return err
	}

	if err := writeCSV(dir, "fig8b.csv", [][]string{{"index", "access_cycles", "triggered"}},
		func(rows *[][]string) {
			for _, p := range quiet.RevFig8b() {
				*rows = append(*rows, []string{
					strconv.Itoa(p.Index),
					strconv.FormatUint(p.AccessTime, 10),
					strconv.FormatBool(p.Triggered),
				})
			}
		}); err != nil {
		return err
	}

	// Figure 13a: per-set Prime+Probe deltas after an if-path run.
	pp := afterimage.NewLab(afterimage.Options{Seed: seed}).
		RunVariant1(afterimage.V1Options{Secret: []bool{true}, Backend: afterimage.PrimeProbe})
	if err := writeCSV(dir, "fig13a.csv", [][]string{{"set", "probe_delta_cycles"}},
		func(rows *[][]string) {
			for i, d := range pp.LastProbe {
				*rows = append(*rows, []string{strconv.Itoa(i), strconv.FormatInt(d, 10)})
			}
		}); err != nil {
		return err
	}

	// Figure 15: PSC status timeline.
	keyLoad, decrypt := afterimage.NewLab(afterimage.Options{Seed: seed}).TrackOpenSSL()
	if err := writeCSV(dir, "fig15.csv", [][]string{{"slot", "keyload_triggered", "muladd_triggered"}},
		func(rows *[][]string) {
			for i := range keyLoad.Samples {
				*rows = append(*rows, []string{
					strconv.Itoa(i),
					strconv.FormatBool(keyLoad.Samples[i].Triggered),
					strconv.FormatBool(decrypt.Samples[i].Triggered),
				})
			}
		}); err != nil {
		return err
	}

	// Figure 16: t-test curves.
	aligned := afterimage.RunTTest(true, seed)
	random := afterimage.RunTTest(false, seed)
	if err := writeCSV(dir, "fig16.csv", [][]string{{"plaintexts", "t_aligned", "t_random"}},
		func(rows *[][]string) {
			for i := range aligned.Counts {
				*rows = append(*rows, []string{
					strconv.Itoa(aligned.Counts[i]),
					fmt.Sprintf("%.3f", aligned.TValues[i]),
					fmt.Sprintf("%.3f", random.TValues[i]),
				})
			}
		}); err != nil {
		return err
	}

	// §8.3 mitigation per-application table.
	mit, err := afterimage.RunMitigationStudy(afterimage.MitigationOptions{Instructions: 200_000, Seed: seed})
	if err != nil {
		return err
	}
	return writeCSV(dir, "mitigation.csv",
		[][]string{{"application", "sensitive", "base_ipc", "flush_ipc", "slowdown", "prefetch_benefit"}},
		func(rows *[][]string) {
			for _, r := range mit.Rows {
				*rows = append(*rows, []string{
					r.Name, strconv.FormatBool(r.Sensitive),
					fmt.Sprintf("%.4f", r.BaseIPC), fmt.Sprintf("%.4f", r.MitigatedIPC),
					fmt.Sprintf("%.5f", r.Slowdown), fmt.Sprintf("%.4f", r.PrefetchBenefit),
				})
			}
		})
}

func writeCSV(dir, name string, header [][]string, fill func(*[][]string)) error {
	rows := header
	fill(&rows)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
