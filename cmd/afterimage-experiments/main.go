// Command afterimage-experiments regenerates every table and figure of the
// AfterImage paper against the simulated machine and prints them in the
// paper's structure. Use -list to see the experiment ids and -run to select
// a subset.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"afterimage"
	"afterimage/internal/cliobs"
	"afterimage/internal/faults"
	"afterimage/internal/textplot"
)

type experiment struct {
	id    string
	title string
	run   func(seed int64)
}

// obs is shared with the lab constructors below so -trace/-metrics apply to
// the last lab an experiment builds.
var obs *cliobs.Flags

// rflags and campaignCtx give the supervised campaigns (fault-sweep,
// mitigation, -report) their worker pool, checkpoint/resume and ^C-safe
// cancellation.
var (
	rflags      *cliobs.RunnerFlags
	campaignCtx context.Context
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "master seed (equal seeds reproduce runs exactly)")
		run    = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		report = flag.String("report", "", "write the machine-readable JSON report to this file and exit")
		csvDir = flag.String("csv", "", "write per-figure CSV data series into this directory and exit")
	)
	obs = cliobs.Register()
	rflags = cliobs.RegisterRunner()
	flag.Parse()
	obs.Start()
	var stop context.CancelFunc
	campaignCtx, stop = rflags.Context(context.Background())
	defer stop()

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote figure data to %s\n", *csvDir)
		return
	}

	if *report != "" {
		r, err := afterimage.FullReportCtx(campaignCtx, afterimage.ReportOptions{
			Seed: *seed, Rounds: 200, Runner: rflags.Options(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		raw, err := r.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*report, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%.1f s simulated suite)\n", *report, r.ElapsedSeconds)
		return
	}

	exps := []experiment{
		{"fig6", "Figure 6: IP-stride prefetcher indexing (low 8 IP bits)", runFig6},
		{"fig7", "Figure 7: confidence/stride update and trigger policy", runFig7},
		{"table1", "Table 1: page-boundary checking (recl vs MAP_LOCKED)", runTable1},
		{"fig8a", "Figure 8a: number of history entries (24)", runFig8a},
		{"fig8b", "Figure 8b: Bit-PLRU replacement", runFig8b},
		{"sgx-ret", "§4.6: prefetches survive enclave exit", runSGXRetention},
		{"fig13a", "Figure 13a: V1 cross-thread Prime+Probe, if-path", runFig13a},
		{"fig13b", "Figure 13b: V1 cross-thread round-by-round (P+P)", runFig13b},
		{"fig13c", "Figure 13c: V1 cross-process round-by-round (F+R)", runFig13c},
		{"fig14a", "Figure 14a: V2 user→kernel leak (F+R + IP search)", runFig14a},
		{"fig14b", "Figure 14b: covert channel stride detection", runFig14b},
		{"fig14c", "Figure 14c: TC-RSA bit extraction via PSC", runFig14c},
		{"fig15", "Figure 15: tracking OpenSSL load timing via PSC", runFig15},
		{"fig16", "Figure 16: t-test with accurate vs random timing", runFig16},
		{"table3", "Table 3 / §7.2: variant success rates & covert channel", runTable3},
		{"rsa", "§7.3: timing-constant RSA key extraction budget", runRSABudget},
		{"mitigation", "§8.3: clear-ip-prefetcher overhead", runMitigation},
		{"compare", "§9.2: BPU mistraining vs prefetcher training cost", runCompare},
		{"baseline", "Table 4: Shin et al. passive footprint baseline", runBaseline},
		{"aes-track", "extension: §6.3 flow applied to OpenSSL-style AES", runAESTrack},
		{"ecc", "extension: error-corrected covert channel", runECC},
		{"discovery", "extension: eviction-set discovery from timing alone", runDiscovery},
		{"cpa", "extension: CPA key recovery with AfterImage-aligned traces", runCPA},
		{"fault-sweep", "robustness: success rate vs fault-injection intensity", runFaultSweep},
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	all := *run == "all"
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	var failed []string
	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("\n=== %s ===\n", e.title)
		if err := runExperiment(e, *seed); err != nil {
			failed = append(failed, e.id)
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.id, err)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; use -list\n", *run)
		os.Exit(1)
	}
	if err := obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d/%d experiments failed: %s\n",
			len(failed), ran, strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// runExperiment isolates one experiment behind a panic boundary: a
// misbehaving experiment (simulator fault, model bug) reports a structured
// error and lets the remaining experiments run, instead of killing the
// whole suite mid-output.
func runExperiment(e experiment, seed int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*afterimage.SimFault); ok {
				err = f
				return
			}
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	e.run(seed)
	return nil
}

func quietLab(seed int64) *afterimage.Lab {
	lab := afterimage.NewLab(obs.LabOptions(afterimage.Options{Seed: seed, Quiet: true}))
	obs.Observe(lab)
	return lab
}

func noisyLab(seed int64) *afterimage.Lab {
	lab := afterimage.NewLab(obs.LabOptions(afterimage.Options{Seed: seed}))
	obs.Observe(lab)
	return lab
}

func runFig6(seed int64) {
	pts := quietLab(seed).RevFig6()
	fmt.Println("matched-low-bits  access-time  triggered")
	for _, p := range pts {
		fmt.Printf("%16d  %8d     %-5v %s\n", p.MatchedBits, p.AccessTime, p.Triggered, textplot.Bar(float64(p.AccessTime), 260, 26))
	}
	fmt.Println("(>120 cycles = prefetcher not triggered; boundary at 8 matched bits)")
}

func runFig7(seed int64) {
	lab := quietLab(seed)
	fmt.Println("(a) random offset between phases (train 7, jump, train 5):")
	for _, p := range lab.RevFig7(true) {
		fmt.Printf("  phase-2 iter %d: stride-7 fired=%-5v stride-5 fired=%v\n",
			p.SecondPhaseIters, p.OldStrideFired, p.NewStrideFired)
	}
	fmt.Println("(b) second phase starts immediately after the first:")
	for _, p := range lab.RevFig7(false) {
		fmt.Printf("  phase-2 iter %d: stride-7 fired=%-5v stride-5 fired=%v\n",
			p.SecondPhaseIters, p.OldStrideFired, p.NewStrideFired)
	}
}

func runTable1(seed int64) {
	rows := quietLab(seed).RevTable1()
	fmt.Println("virtual-offset  pool  share-physical-page  prefetchable")
	for _, r := range rows {
		fmt.Printf("%8d Page   %-4s  %-19v  %v\n", r.PageOffset, r.Pool, r.SharePhysical, r.Prefetchable)
	}
}

func runFig8a(seed int64) {
	lab := quietLab(seed)
	for _, n := range []int{26, 30} {
		pts := lab.RevFig8a(n)
		evicted := 0
		fmt.Printf("%d trained IPs: ", n)
		for _, p := range pts {
			if p.Triggered {
				fmt.Print("^")
			} else {
				fmt.Print(".")
				evicted++
			}
		}
		fmt.Printf("  (%d evicted → table holds %d entries)\n", evicted, n-evicted)
	}
}

func runFig8b(seed int64) {
	pts := quietLab(seed).RevFig8b()
	fmt.Print("IPs 1-24 after re-touching 1-8 and training 8 new: ")
	var evicted []int
	for _, p := range pts {
		if p.Triggered {
			fmt.Print("^")
		} else {
			fmt.Print(".")
			evicted = append(evicted, p.Index+1)
		}
	}
	fmt.Printf("\nevicted positions (1-indexed): %v → Bit-PLRU\n", evicted)
}

func runSGXRetention(seed int64) {
	hit, at := quietLab(seed).SGXRetention()
	fmt.Printf("prefetched line after EEXIT: hit=%v (%d cycles)\n", hit, at)
}

func printProbe(probe []int64, hitThr int64) {
	var max int64
	for _, v := range probe {
		if v > max {
			max = v
		}
	}
	for i, v := range probe {
		mark := " "
		if v > hitThr {
			mark = "*"
		}
		fmt.Printf("set %2d %7d %s %s\n", i, v, mark, textplot.Bar(float64(v), float64(maxI64(max, 1)), 30))
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func runFig13a(seed int64) {
	lab := noisyLab(seed)
	res := lab.RunVariant1(afterimage.V1Options{Secret: []bool{true}, Backend: afterimage.PrimeProbe})
	fmt.Println("per-set probe time delta after the victim's if-path run (stride 7):")
	printProbe(res.LastProbe, 120)
	fmt.Printf("inferred if-path: %v\n", res.Inferred[0])
}

func runFig13b(seed int64) {
	lab := noisyLab(seed)
	secret := []bool{false, true} // b'10
	res := lab.RunVariant1(afterimage.V1Options{Secret: secret, Backend: afterimage.PrimeProbe})
	fmt.Printf("secret %v → inferred %v (success %.0f%%)\n", secret, res.Inferred, res.SuccessRate()*100)
}

func runFig13c(seed int64) {
	lab := noisyLab(seed)
	secret := []bool{false, true}
	res := lab.RunVariant1(afterimage.V1Options{Secret: secret, CrossProcess: true})
	fmt.Printf("cross-process secret %v → inferred %v\n", secret, res.Inferred)
	fmt.Println("final-round reload latencies:")
	printNegProbe(res.LastProbe)
}

func printNegProbe(probe []int64) {
	for i, v := range probe {
		mark := " "
		if v < 120 {
			mark = "*"
		}
		fmt.Printf("line %2d %5d %s %s\n", i, v, mark, textplot.Bar(float64(v), 260, 26))
	}
}

func runFig14a(seed int64) {
	lab := quietLab(seed)
	res := lab.RunVariant2(afterimage.V2Options{Secret: []bool{true}, UseIPSearch: true})
	fmt.Printf("IP search recovered low-8 bits: %#02x (searched=%v)\n", res.FoundIPLow8, res.IPSearched)
	fmt.Println("reload latencies after the syscall (stride 11 expected):")
	printNegProbe(res.LastProbe)
}

func runFig14b(seed int64) {
	lab := noisyLab(seed)
	res := lab.RunCovertChannel(afterimage.CovertOptions{Message: []byte{0xF7}}) // starts b'11110...
	fmt.Printf("sent 1 byte as 5-bit symbols; errors=%d/%d\n", res.SymbolErrors, res.SymbolsSent)
}

func runFig14c(seed int64) {
	lab := noisyLab(seed)
	res := lab.ExtractRSAKey(afterimage.RSAOptions{KeyBits: 64, ItersPerBit: 5, VictimIterationCycles: 6000})
	fmt.Printf("true exponent:      %v\n", res.TrueExponent)
	fmt.Printf("recovered exponent: %v\n", res.Recovered)
	fmt.Printf("bits %d/%d correct; per-observation PSC accuracy %.0f%%\n",
		res.BitsCorrect, res.BitsTotal, res.PSCSuccessRate()*100)
}

func runFig15(seed int64) {
	lab := noisyLab(seed)
	keyLoad, decrypt := lab.TrackOpenSSL()
	fmt.Println("prefetcher status per scheduling slot (. = triggered, X = reset):")
	fmt.Printf("key-load entry: %s  onset=slot %d\n", timeline(keyLoad.Samples), keyLoad.OnsetIndex)
	fmt.Printf("mul-add entry:  %s  onset=slot %d\n", timeline(decrypt.Samples), decrypt.OnsetIndex)
}

func runFig16(seed int64) {
	aligned := afterimage.RunTTest(true, seed)
	random := afterimage.RunTTest(false, seed)
	fmt.Println("plaintexts  t(aligned)  t(random)   (leakage threshold ±4.5)")
	for i := range aligned.Counts {
		fmt.Printf("%10d  %10.2f  %9.2f\n", aligned.Counts[i], aligned.TValues[i], random.TValues[i])
	}
}

func runTable3(seed int64) {
	type row struct {
		name string
		rate float64
	}
	var rows []row

	lab := noisyLab(seed)
	v1 := lab.RunVariant1(afterimage.V1Options{Bits: 200})
	rows = append(rows, row{"V1 cross-thread (F+R)", v1.SuccessRate()})

	lab = noisyLab(seed + 1)
	v1p := lab.RunVariant1(afterimage.V1Options{Bits: 200, CrossProcess: true})
	rows = append(rows, row{"V1 cross-process (F+R)", v1p.SuccessRate()})

	lab = noisyLab(seed + 2)
	v2 := lab.RunVariant2(afterimage.V2Options{Bits: 200})
	rows = append(rows, row{"V2 user→kernel (F+R)", v2.SuccessRate()})

	lab = noisyLab(seed + 3)
	sgx := lab.RunSGX(200, nil)
	rows = append(rows, row{"SGX enclave leak", sgx.SuccessRate()})

	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })
	fmt.Println("variant                     success (200 rounds)   paper")
	paper := map[string]string{
		"V1 cross-thread (F+R)":  "99%",
		"V1 cross-process (F+R)": "97%",
		"V2 user→kernel (F+R)":   "91%",
		"SGX enclave leak":       "--",
	}
	for _, r := range rows {
		fmt.Printf("%-26s  %6.1f%%               %s\n", r.name, r.rate*100, paper[r.name])
	}

	lab = noisyLab(seed + 4)
	cov := lab.RunCovertChannel(afterimage.CovertOptions{Message: make([]byte, 256)})
	fmt.Printf("covert 1 entry : %7.0f bps raw, error %4.1f%%   (paper: 833 bps, <6%%)\n",
		cov.RawBps(1.0/3e9), cov.ErrorRate()*100)
	lab = noisyLab(seed + 5)
	cov24 := lab.RunCovertChannel(afterimage.CovertOptions{Message: make([]byte, 256), Entries: 24})
	fmt.Printf("covert 24 entry: %7.0f bps raw, error %4.1f%%   (paper: ~20 Kbps, >25%%)\n",
		cov24.RawBps(1.0/3e9), cov24.ErrorRate()*100)
}

func runRSABudget(seed int64) {
	lab := noisyLab(seed)
	res := lab.ExtractRSAKey(afterimage.RSAOptions{KeyBits: 96, ItersPerBit: 5})
	perBit := lab.Seconds(res.Cycles) / float64(res.BitsTotal)
	fmt.Printf("%d-bit exponent: %d/%d bits correct, PSC obs accuracy %.0f%%\n",
		res.BitsTotal, res.BitsCorrect, res.BitsTotal, res.PSCSuccessRate()*100)
	fmt.Printf("simulated wall time: %.1f s (%.2f s/bit at the -O0 victim profile)\n",
		lab.Seconds(res.Cycles), perBit)
	fmt.Printf("extrapolated to a 1024-bit exponent: %.0f minutes (paper: ~188 min)\n",
		perBit*1024/60)
}

func runCompare(seed int64) {
	c := afterimage.CompareTrainingCosts(seed)
	fmt.Printf("BPU mistraining:     %d candidate branches, ~%d cycles (paper: ~26 000)\n",
		c.BPUCandidates, c.BPUCycles)
	fmt.Printf("prefetcher training: %d candidate, %d cycles (paper: 1 000–2 000 w/ page misses)\n",
		c.PrefetcherCandidates, c.PrefetcherCycles)
	fmt.Printf("AfterImage trains %.0fx cheaper and is ASLR-immune (8 < 12 page-offset bits)\n",
		c.Advantage())
}

func runBaseline(seed int64) {
	lab := quietLab(seed)
	scan := lab.RunShinBaseline(9)
	fmt.Printf("table-scan victim:  footprint=%v stride=%d (Shin et al. succeeds)\n",
		scan.FootprintDetected, scan.Stride)
	branch := lab.RunShinBaselineOnBranchVictim(true)
	fmt.Printf("branch-load victim: footprint=%v (passive baseline learns nothing)\n",
		branch.FootprintDetected)
	lab2 := quietLab(seed)
	res := lab2.RunVariant1(afterimage.V1Options{Secret: []bool{true, false, true}})
	fmt.Printf("AfterImage on the same branch victim: %.0f%% — algorithm agnostic (Table 4)\n",
		res.SuccessRate()*100)
}

func runAESTrack(seed int64) {
	lab := noisyLab(seed)
	tl, expandSlot, encryptSlot, ct := lab.TrackAES()
	fmt.Printf("S-box entry status: %s\n", timeline(tl.Samples))
	fmt.Printf("key expansion at slot %d, block encryption at slot %d\n", expandSlot, encryptSlot)
	fmt.Printf("victim ciphertext: %x (FIPS-197 vector)\n", ct)
}

func runECC(seed int64) {
	msg := []byte("afterimage forward-error-corrected covert payload")
	lab := noisyLab(seed)
	raw := lab.RunCovertChannel(afterimage.CovertOptions{Message: msg, Entries: 8})
	lab2 := noisyLab(seed)
	ecc := lab2.RunCovertChannel(afterimage.CovertOptions{Message: msg, Entries: 8, UseECC: true})
	fmt.Printf("raw 8-entry channel: %d/%d symbol errors\n", raw.SymbolErrors, raw.SymbolsSent)
	fmt.Printf("ECC 8-entry channel: %d symbol errors → %d message byte errors after %d corrections\n",
		ecc.SymbolErrors, ecc.MessageByteErrors, ecc.Corrections)
}

func runCPA(seed int64) {
	aligned := afterimage.RunCPAAttack(true, 3000, seed)
	random := afterimage.RunCPAAttack(false, 3000, seed)
	fmt.Printf("aligned timing: recovered key %#02x (true %#02x), peak |r|=%.3f vs runner-up %.3f\n",
		aligned.RecoveredKey, aligned.TrueKey, aligned.PeakCorrelation, aligned.RunnerUpCorrelation)
	fmt.Printf("random timing:  recovered=%v, peak |r|=%.3f (no separation)\n",
		random.Recovered && random.PeakCorrelation > 2*random.RunnerUpCorrelation, random.PeakCorrelation)
}

func runDiscovery(seed int64) {
	lab := quietLab(seed)
	lines, trials, err := lab.DiscoverEvictionSet()
	if err != nil {
		fmt.Printf("discovery failed: %v\n", err)
		return
	}
	fmt.Printf("minimal eviction set found from timing alone: %d lines, %d evicts-target trials\n",
		lines, trials)
	fmt.Println("(no pagemap, no slice-hash knowledge — the group-testing reduction of Vila et al.)")
}

func runMitigation(seed int64) {
	res, err := afterimage.RunMitigationStudyCtx(campaignCtx, afterimage.MitigationOptions{
		Instructions: 200_000, Seed: seed, Runner: rflags.OptionsFor("mitigation"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("application        sensitive  base-IPC  flush-IPC  slowdown  pf-benefit")
	for _, r := range res.Rows {
		fmt.Printf("%-18s %-9v  %8.3f  %9.3f  %7.3f%%  %8.1f%%\n",
			r.Name, r.Sensitive, r.BaseIPC, r.MitigatedIPC, r.Slowdown*100, r.PrefetchBenefit*100)
	}
	if len(res.Degraded) > 0 {
		fmt.Printf("degraded (replay failed, excluded from means): %s\n", strings.Join(res.Degraded, ", "))
	}
	fmt.Printf("top-8 prefetch-sensitive slowdown: %.2f%% (paper: 0.7%%)\n", res.Top8Slowdown*100)
	fmt.Printf("overall slowdown:                  %.2f%% (paper: 0.2%%)\n", res.OverallSlowdown*100)
	fmt.Printf("analytic upper bound:              %.2f%% (paper: <7.3%%)\n", res.AnalyticUpperBound*100)
}

func runFaultSweep(seed int64) {
	lab := noisyLab(seed)
	for _, att := range []afterimage.SweepAttack{afterimage.SweepV1Thread, afterimage.SweepV2Kernel} {
		res, err := lab.RunFaultSweepCtx(campaignCtx, afterimage.SweepOptions{
			Attack: att, Bits: 48,
			Intensities: []float64{0, 0.5, 1, 2, 4, 8},
			Faults:      faults.Config{EventsPerMCycle: 150},
			Runner:      rflags.OptionsFor("sweep-" + att.String()),
		})
		fmt.Printf("%s:\n  intensity  success  confidence  events\n", res.Attack)
		for _, p := range res.Points {
			note := ""
			if p.FaultKind != "" {
				note = "  [" + p.FaultKind + "]"
			} else if p.Err != "" {
				note = "  (" + p.Err + ")"
			}
			if p.Degraded {
				note += "  DEGRADED"
			}
			if p.Quarantined {
				note += "  QUARANTINED"
			}
			fmt.Printf("  %9.2f  %6.1f%%  %10.2f  %6d %s%s\n",
				p.Intensity, p.SuccessRate*100, p.MeanConfidence, p.FaultEvents,
				textplot.Bar(p.SuccessRate, 1, 24), note)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep interrupted: %v (rerun with -resume to continue)\n", err)
			return
		}
	}
	fmt.Println("(prefetcher flushes, entry evictions, TLB shootdowns, preemption storms, cache thrash;")
	fmt.Println(" deterministic per seed — rerun with the same -seed for the identical curve;")
	fmt.Println(" -jobs N parallelises the points, -checkpoint/-resume survive kills)")
}

// timeline renders a PSC sample sequence via textplot.
func timeline(samples []afterimage.TimingSample) string {
	status := make([]bool, len(samples))
	for i, s := range samples {
		status[i] = s.Triggered
	}
	return textplot.Timeline(status)
}
