package afterimage

// Fork-vs-fresh differential suite: snapshot-fork execution must be
// observationally indistinguishable from booting fresh. Every check here
// gates against the SAME seed-path goldens as the hot-path differential
// suite (testdata/hotpath_golden.json) — recorded before forking existed —
// so a fork that leaks state from its parent, shares a mutable slice, or
// perturbs an RNG stream diverges from a reference it cannot regenerate.
// Three legs mirror the hot-path suite:
//
//   - every Table 3 experiment run on a lab FORKED from a pristine template
//     must reproduce the fresh-lab machine digest bit-for-bit,
//   - the fault-sweep campaign must produce identical per-point digests
//     under Execution: SweepFresh and Execution: SweepForked (the default,
//     which TestHotPathDifferentialFaultSweep already gates),
//   - the randomized traces must digest identically when the machine is
//     forked mid-trace and the suffix replayed on the fork — and the parent,
//     continued past the fork, must digest identically too (isolation).

import (
	"context"
	"fmt"
	"testing"

	"afterimage/internal/mem"
)

// findMapping locates the fork's clone of a parent mapping by base address
// (Machine.Fork preserves bases; only the backing slices are copied).
func findMapping(as *mem.AddressSpace, base mem.VAddr, t *testing.T) *mem.Mapping {
	t.Helper()
	for _, mp := range as.Mappings() {
		if mp.Base == base {
			return mp
		}
	}
	t.Fatalf("fork lost mapping at base %#x", base)
	return nil
}

// forkTraceRig forks the rig's machine and re-binds processes, envs and
// mappings against the fork, so the trace driver can continue on it.
func forkTraceRig(t *testing.T, r *traceRig) *traceRig {
	t.Helper()
	fm, err := r.m.Fork()
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	procs := fm.Processes()
	if len(procs) != 2 {
		t.Fatalf("fork carried %d processes, want 2", len(procs))
	}
	pa, pb := procs[0], procs[1]
	return &traceRig{
		m:       fm,
		ea:      fm.Direct(pa),
		eb:      fm.Direct(pb),
		bufA:    findMapping(pa.AS, r.bufA.Base, t),
		recl:    findMapping(pa.AS, r.recl.Base, t),
		shared:  findMapping(pa.AS, r.shared.Base, t),
		sharedB: findMapping(pb.AS, r.sharedB.Base, t),
		bufB:    findMapping(pb.AS, r.bufB.Base, t),
	}
}

// TestForkDifferentialRandomTraces forks each golden trace machine at
// several points — pristine, mid-trace, late — replays the remaining steps
// on the fork, and requires the fork's final digest to equal the unbroken
// seed-path digest. The parent is then continued over the same suffix and
// must reach the identical digest: the fork observed no state the parent
// lost, and the parent observed no mutation the fork made.
func TestForkDifferentialRandomTraces(t *testing.T) {
	want := loadHotpathGolden(t).Traces
	if len(want) == 0 {
		t.Fatal("golden has no trace digests")
	}
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 99}
	const steps = 4000
	for _, seed := range seeds {
		w, ok := want[fmt.Sprint(seed)]
		if !ok {
			t.Fatalf("golden missing trace seed %d", seed)
		}
		for _, forkAt := range []int{0, steps / 2, steps - 100} {
			r := newTraceRig(seed)
			r.run(forkAt)
			f := forkTraceRig(t, r)
			f.run(steps - forkAt)
			if got := hexDigest(f.m.StateHash()); got != w {
				t.Errorf("seed %d fork@%d: forked digest %s, seed path recorded %s",
					seed, forkAt, got, w)
			}
			r.run(steps - forkAt)
			if got := hexDigest(r.m.StateHash()); got != w {
				t.Errorf("seed %d fork@%d: parent digest %s after fork, seed path recorded %s",
					seed, forkAt, got, w)
			}
		}
	}
}

// TestForkDifferentialTable3 runs every Table 3 experiment on a lab forked
// from a pristine template — the exact execution shape RunFaultSweep's
// forked mode uses — and requires each final machine digest to match the
// fresh-lab seed-path golden. The final audit runs on the forked machine,
// so the invariant registry (including mem.spaces) sees fork-built state.
func TestForkDifferentialTable3(t *testing.T) {
	opts := hotpathReportOptions()
	want := loadHotpathGolden(t).Table3
	got := map[string]string{}
	for i, spec := range table3Specs(opts) {
		tmpl := NewLab(table3LabOptions(opts, i, spec.key))
		lab := tmpl.MustFork()
		lab.ArmCancel(context.Background())
		_, err := spec.run(context.Background(), lab)
		if err == nil {
			err = lab.m.Audit()
		}
		if err != nil {
			t.Fatalf("%s (forked): %v", spec.key, err)
		}
		got[spec.key] = hexDigest(lab.m.StateHash())
	}
	for key, w := range want {
		if got[key] != w {
			t.Errorf("table3 %s: forked digest %s, seed path recorded %s", key, got[key], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("experiment set drifted: %d run forked, %d recorded", len(got), len(want))
	}
}

// TestForkDifferentialFaultSweepFresh runs the golden fault-sweep campaign
// with Execution: SweepFresh and requires every point digest to match the
// recorded seed path. Together with TestHotPathDifferentialFaultSweep —
// which runs the default SweepForked mode against the same goldens — this
// pins the two execution modes bit-identical end to end (scheduler, noise,
// fault perturbation and audit paths included).
func TestForkDifferentialFaultSweepFresh(t *testing.T) {
	o := hotpathSweepOptions()
	o.Execution = SweepFresh
	res := NewLab(Options{Seed: 42, Quiet: true}).RunFaultSweep(o)
	want := loadHotpathGolden(t).Sweep
	if len(res.Points) != len(want) {
		t.Fatalf("sweep has %d points, seed path recorded %d", len(res.Points), len(want))
	}
	for i, pt := range res.Points {
		if got := hexDigest(pt.StateHash); got != want[i] {
			t.Errorf("sweep point %d (fresh): state hash %s, seed path recorded %s", i, got, want[i])
		}
	}
}

// TestForkDifferentialWarmupSweep gates the campaign warm prefix: with
// Warmup set, the forked mode runs the preconditioning trace once on the
// template while the fresh mode replays it per point — and every point must
// still digest identically. This is the property that makes the warm-once
// amortisation (BenchmarkSweepForked vs BenchmarkSweepFresh) legitimate.
func TestForkDifferentialWarmupSweep(t *testing.T) {
	o := hotpathSweepOptions()
	o.Warmup = 20_000
	run := func(mode SweepExecMode) []string {
		oo := o
		oo.Execution = mode
		res := NewLab(Options{Seed: 42, Quiet: true}).RunFaultSweep(oo)
		got := make([]string, len(res.Points))
		for i, pt := range res.Points {
			got[i] = hexDigest(pt.StateHash)
		}
		return got
	}
	forked, fresh := run(SweepForked), run(SweepFresh)
	if len(forked) != len(fresh) || len(forked) != len(o.Intensities) {
		t.Fatalf("point counts diverged: forked %d, fresh %d, want %d",
			len(forked), len(fresh), len(o.Intensities))
	}
	for i := range forked {
		if forked[i] != fresh[i] {
			t.Errorf("warmup sweep point %d: forked %s, fresh %s", i, forked[i], fresh[i])
		}
	}
	// A warmed campaign must actually differ from an unwarmed one — if the
	// warmup trace were silently skipped, the equality above would be vacuous.
	o2 := hotpathSweepOptions()
	res := NewLab(Options{Seed: 42, Quiet: true}).RunFaultSweep(o2)
	if hexDigest(res.Points[0].StateHash) == forked[0] {
		t.Fatal("warmup had no effect on point state (trace skipped?)")
	}
}

// TestSweepForkedIsDefault pins the zero value of SweepExecMode to forked
// execution: the campaign the hot-path differential gates is the forked
// one, and a silent default flip would quietly un-gate it.
func TestSweepForkedIsDefault(t *testing.T) {
	var mode SweepExecMode
	if mode != SweepForked {
		t.Fatalf("zero SweepExecMode = %d, want SweepForked", mode)
	}
}

// TestLabForkPristine pins the Lab-level fork contract the sweep template
// relies on: a fork of an untouched lab digests identically to a fresh
// NewLab with the same options, RNG stream included.
func TestLabForkPristine(t *testing.T) {
	opts := Options{Seed: 42, Quiet: true}
	fresh := NewLab(opts)
	forked := NewLab(opts).MustFork()
	if f, g := fresh.m.StateHash(), forked.m.StateHash(); f != g {
		t.Fatalf("pristine fork digest %#x, fresh lab %#x", g, f)
	}
	// The lab RNG must continue the same stream (randomBits drives every
	// attack's secret): equal draws, fork-first to prove independence.
	fb := forked.randomBits(64)
	gb := fresh.randomBits(64)
	if boolsEqual(fb, gb) != 64 {
		t.Fatal("forked lab RNG diverged from fresh lab RNG")
	}
}
