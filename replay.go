package afterimage

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"afterimage/internal/runner"
)

// ReplayPoint is one checkpoint entry compared against a fresh re-execution
// of the same experiment.
type ReplayPoint struct {
	Key string `json:"key"`
	// CheckpointHash is the full-state hash the recorded run persisted.
	CheckpointHash uint64 `json:"checkpoint_hash,omitempty"`
	// ReplayHash is the hash the fresh re-execution produced.
	ReplayHash uint64 `json:"replay_hash,omitempty"`
	// Match is true when the hashes agree. Skipped points (see Note) report
	// Match=true so only genuine divergences count.
	Match bool `json:"match"`
	// Note explains why a point was skipped (degraded, retried, missing from
	// the checkpoint) or annotates a divergence (replay faulted).
	Note string `json:"note,omitempty"`
}

// ReplayReport is the outcome of re-executing a checkpointed campaign and
// diffing state hashes point by point. A divergence means the simulator is
// no longer deterministic relative to the recorded run — a corruption bug,
// an unseeded randomness source, or a code change that altered behaviour
// without a matching fingerprint change. See README.md for the triage
// walkthrough.
type ReplayReport struct {
	Schema string `json:"schema"`
	// Campaign names what was replayed ("table3" or "fault-sweep/<attack>").
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	// Checkpoint is the file the recorded hashes came from.
	Checkpoint string        `json:"checkpoint"`
	Points     []ReplayPoint `json:"points"`
	// Compared counts points whose hashes were actually diffed; Skipped
	// counts points excluded from comparison (degraded, retried, absent).
	Compared    int `json:"compared"`
	Skipped     int `json:"skipped"`
	Divergences int `json:"divergences"`
}

// Diverged reports whether any compared point's hashes disagreed.
func (r *ReplayReport) Diverged() bool { return r.Divergences > 0 }

// JSON renders the report with stable indentation.
func (r *ReplayReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// replayable decides whether a recorded job result is eligible for hash
// comparison. Only clean first-attempt results are: degraded or errored
// points may have died on a nondeterministic wall-clock deadline, and
// retried points ran under a salted fault schedule — re-running either at
// attempt zero would "diverge" for reasons that are not bugs.
func replayable(jr runner.JobResult) (string, bool) {
	switch {
	case jr.Skipped:
		return "recorded run was canceled before this point", false
	case jr.Degraded:
		return "recorded point degraded; outcome not deterministic", false
	case jr.Err != "":
		return "recorded point errored: " + jr.Err, false
	case jr.Attempts > 1:
		return fmt.Sprintf("recorded point needed %d attempts; replay compares first-attempt runs only", jr.Attempts), false
	}
	return "", true
}

// ReplayTable3 re-executes the Table 3 campaign recorded in the checkpoint
// a FullReport run persisted (stem is the ReportOptions.Runner.CheckpointPath
// the report was given; the table3-derived name is tried first, then the
// stem verbatim) and diffs each experiment's full-state hash against the
// recorded one. opts must match the recorded campaign — seed and rounds are
// fingerprinted, and a mismatch is an error rather than a spurious
// divergence report.
func ReplayTable3(ctx context.Context, opts ReportOptions, stem string) (*ReplayReport, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 100 // FullReportCtx's default; fingerprints must agree
	}
	path := derivedCheckpoint(stem, "table3")
	if _, err := os.Stat(path); err != nil {
		if _, err2 := os.Stat(stem); err2 == nil {
			path = stem // caller passed the derived file itself
		}
	}
	fp := table3Fingerprint(opts)
	completed, err := runner.ReadCheckpoint(path, fp)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{
		Schema:      "afterimage-replay/1",
		Campaign:    "table3",
		Fingerprint: fp,
		Checkpoint:  path,
	}
	for i, spec := range table3Specs(opts) {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		jr, ok := completed[spec.key]
		if !ok {
			rep.addSkip(spec.key, "not in checkpoint")
			continue
		}
		if note, ok := replayable(jr); !ok {
			rep.addSkip(spec.key, note)
			continue
		}
		var rec table3Val
		if uerr := json.Unmarshal(jr.Value, &rec); uerr != nil {
			return rep, fmt.Errorf("replay: corrupt checkpoint value %q: %w", spec.key, uerr)
		}
		if rec.StateHash == 0 {
			rep.addSkip(spec.key, "no recorded state hash (checkpoint predates auditing)")
			continue
		}
		fresh, rerr := runTable3Spec(ctx, table3LabOptions(opts, i, spec.key), spec)
		note := ""
		if rerr != nil {
			note = "replay faulted: " + rerr.Error()
		}
		rep.addCompare(spec.key, rec.StateHash, fresh.StateHash, note)
	}
	return rep, nil
}

// ReplayFaultSweep re-executes the fault-sweep campaign recorded in the
// checkpoint at path (the SweepOptions.Runner.CheckpointPath the sweep was
// given) and diffs each point's full-state hash against the recorded one.
// The receiver and o must match the recorded campaign — lab options, attack,
// intensities, bits and fault template are all fingerprinted.
func (l *Lab) ReplayFaultSweep(ctx context.Context, o SweepOptions, path string) (*ReplayReport, error) {
	o, labOpts := l.sweepNormalize(o)
	fp := sweepFingerprint(labOpts, o)
	completed, err := runner.ReadCheckpoint(path, fp)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{
		Schema:      "afterimage-replay/1",
		Campaign:    "fault-sweep/" + o.Attack.String(),
		Fingerprint: fp,
		Checkpoint:  path,
	}
	for i, intensity := range o.Intensities {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		key := sweepPointKey(o.Attack, i, intensity)
		jr, ok := completed[key]
		if !ok {
			rep.addSkip(key, "not in checkpoint")
			continue
		}
		if note, ok := replayable(jr); !ok {
			rep.addSkip(key, note)
			continue
		}
		var rec SweepPoint
		if uerr := json.Unmarshal(jr.Value, &rec); uerr != nil {
			return rep, fmt.Errorf("replay: corrupt checkpoint value %q: %w", key, uerr)
		}
		if rec.StateHash == 0 {
			rep.addSkip(key, "no recorded state hash (checkpoint predates auditing)")
			continue
		}
		// Replay always re-executes from a fresh boot (nil template): a
		// campaign recorded under forked execution must hash-match a fresh
		// re-run, so every replay doubles as a fork-vs-fresh identity check.
		fresh, _, rerr := runSweepPoint(ctx, nil, labOpts, o, intensity, 0, false, 0)
		note := ""
		if rerr != nil {
			note = "replay faulted: " + rerr.Error()
		}
		rep.addCompare(key, rec.StateHash, fresh.StateHash, note)
	}
	return rep, nil
}

// addSkip records a point excluded from comparison.
func (r *ReplayReport) addSkip(key, note string) {
	r.Points = append(r.Points, ReplayPoint{Key: key, Match: true, Note: note})
	r.Skipped++
}

// addCompare records a compared point and updates the divergence count.
func (r *ReplayReport) addCompare(key string, recorded, replayed uint64, note string) {
	p := ReplayPoint{
		Key:            key,
		CheckpointHash: recorded,
		ReplayHash:     replayed,
		Match:          recorded == replayed,
		Note:           note,
	}
	r.Points = append(r.Points, p)
	r.Compared++
	if !p.Match {
		r.Divergences++
	}
}
