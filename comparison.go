package afterimage

import (
	"afterimage/internal/bpu"
	"afterimage/internal/core"
	"afterimage/internal/sim"
)

// TrainingComparison quantifies the §9.2 contrast between mistraining a
// branch-predictor (the Spectre family's entry cost) and training the
// IP-stride prefetcher.
type TrainingComparison struct {
	// BPUCandidates is how many aliasing branch addresses the attacker must
	// spray because the BTB matches ~20 IP bits and ASLR randomises
	// everything above bit 11.
	BPUCandidates int
	// BPUCycles is the estimated mistraining cost (the paper cites ~26 000).
	BPUCycles uint64
	// PrefetcherCandidates is 1: the prefetcher indexes with 8 IP bits,
	// all inside the ASLR-invariant low 12.
	PrefetcherCandidates int
	// PrefetcherCycles is the measured simulated cost of training one
	// entry to saturation (the paper cites 1 000–2 000 with page misses).
	PrefetcherCycles uint64
}

// Advantage is the BPU-to-prefetcher training-cost ratio.
func (c TrainingComparison) Advantage() float64 {
	if c.PrefetcherCycles == 0 {
		return 0
	}
	return float64(c.BPUCycles) / float64(c.PrefetcherCycles)
}

// CompareTrainingCosts reproduces the §9.2 comparison. The BPU side uses
// the spray model over the 2^(20−12) ASLR-hidden candidate addresses; the
// prefetcher side measures the actual simulated cycles of a 4-round gadget
// training, cold caches and TLB included.
func CompareTrainingCosts(seed int64) TrainingComparison {
	cand, cycles := bpu.MistrainCost(bpu.DefaultConfig(), 50)

	m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(seed)))
	env := m.Direct(m.NewProcess("attacker"))
	g := core.MustNewGadget(env, []core.TrainEntry{{IP: 0x40_0034, StrideLines: 7}})
	start := m.Now()
	g.Train(env, 4)
	trained := m.Now() - start

	return TrainingComparison{
		BPUCandidates:        cand,
		BPUCycles:            cycles,
		PrefetcherCandidates: 1,
		PrefetcherCycles:     trained,
	}
}
