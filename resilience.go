package afterimage

import (
	"context"
	"fmt"

	"afterimage/internal/faults"
	"afterimage/internal/sim"
)

// SimFault re-exports the simulator's typed fault so callers can match
// failures from the Run*E variants without importing internal packages:
//
//	res, err := lab.RunVariant1E(opts)
//	var f *afterimage.SimFault
//	if errors.As(err, &f) && f.Kind == afterimage.FaultBudget { ... }
type SimFault = sim.SimFault

// FaultKind re-exports the fault classification.
type FaultKind = sim.FaultKind

// The fault classes (see sim.FaultKind).
const (
	FaultPanic      = sim.FaultPanic
	FaultSegfault   = sim.FaultSegfault
	FaultBudget     = sim.FaultBudget
	FaultBadSyscall = sim.FaultBadSyscall
	FaultAPIMisuse  = sim.FaultAPIMisuse
	FaultOOM        = sim.FaultOOM
	FaultCorruption = sim.FaultCorruption
)

// AsFault extracts a *SimFault from an error chain.
func AsFault(err error) (*SimFault, bool) { return sim.AsFault(err) }

// recoverAsError converts a panic escaping a Lab entry point into an error:
// typed simulator faults pass through unchanged, anything else is wrapped.
// It is the panic-recovery boundary of every Run*E variant — simulated code
// (and the simulator's own watchdog) may panic, the library API does not.
func recoverAsError(err *error) {
	r := recover()
	if r == nil {
		return
	}
	switch v := r.(type) {
	case *sim.SimFault:
		*err = v
	case error:
		*err = fmt.Errorf("afterimage: recovered panic: %w", v)
	default:
		*err = fmt.Errorf("afterimage: recovered panic: %v", v)
	}
}

// NewLabE is NewLab with validation errors instead of panics (bad cache
// geometry, invalid prefetcher configuration, physical-memory exhaustion).
func NewLabE(opts Options) (l *Lab, err error) {
	defer recoverAsError(&err)
	return NewLab(opts), nil
}

// InjectFaults installs a deterministic fault-injection engine on the lab's
// machine (replacing any previous one) and returns it for stats inspection.
// The engine perturbs prefetcher, TLB, cache and scheduling state on a
// seeded schedule — see internal/faults. A zero-intensity config removes
// perturbation entirely.
func (l *Lab) InjectFaults(cfg faults.Config) *faults.Engine {
	eng := faults.New(cfg)
	if eng.Enabled() {
		l.m.SetPerturber(eng)
	} else {
		l.m.SetPerturber(nil)
	}
	// Replaces any previous engine's faults.* samplers in the registry.
	eng.RegisterMetrics(l.m.Telemetry().Registry())
	return eng
}

// ArmCancel wires a context into the simulator's watchdog path: once ctx is
// done (canceled or past its deadline), every further simulated operation
// faults with a FaultBudget SimFault — the same typed, recoverable
// termination a MaxCycles overrun produces — so the Run*E variants return
// partial results plus the error instead of running to completion. A nil
// ctx disarms the probe. The supervised runner arms each job's context
// before the attack starts; per-job wall deadlines ride on the same hook.
func (l *Lab) ArmCancel(ctx context.Context) {
	if ctx == nil {
		l.m.SetCancel(nil)
		return
	}
	l.m.SetCancel(ctx.Err)
}

// RunCovertChannelE is RunCovertChannel with graceful failure: symbols
// received before a fault still count, and the fault surfaces as a typed
// error.
func (l *Lab) RunCovertChannelE(opts CovertOptions) (res CovertResult, err error) {
	defer recoverAsError(&err)
	return l.runCovertChannel(opts)
}
