package afterimage

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"afterimage/internal/faults"
	"afterimage/internal/telemetry"
)

// TestSnapshotMatchesLegacyStats pins the deprecation contract: the registry
// snapshot and the per-component Stats() accessors sample the same counters,
// so after any run they agree exactly.
func TestSnapshotMatchesLegacyStats(t *testing.T) {
	lab := NewLab(Options{Seed: 3, Quiet: true})
	res := lab.RunVariant1(V1Options{Bits: 16})
	if len(res.Secret) != 16 {
		t.Fatalf("run produced %d bits, want 16", len(res.Secret))
	}

	snap := lab.MetricsSnapshot()
	m := lab.Machine()
	want := map[string]uint64{}

	for prefix, c := range map[string]interface {
		Stats() (uint64, uint64)
		PrefetchStats() (uint64, uint64)
	}{
		"cache.l1":  m.Mem.L1,
		"cache.l2":  m.Mem.L2,
		"cache.llc": m.Mem.LLC,
	} {
		hits, misses := c.Stats()
		fills, useful := c.PrefetchStats()
		want[prefix+".hits"] = hits
		want[prefix+".misses"] = misses
		want[prefix+".prefetch_fills"] = fills
		want[prefix+".useful_prefetches"] = useful
	}

	tlbHits, tlbMisses := m.TLB.Stats()
	want["tlb.hits"] = tlbHits
	want["tlb.misses"] = tlbMisses
	want["tlb.stlb_hits"] = m.TLB.STLBHits()

	ps := m.Pref.IPStride.Stats()
	want["prefetcher.ipstride.lookups"] = ps.Lookups
	want["prefetcher.ipstride.trains"] = ps.Trains
	want["prefetcher.ipstride.allocs"] = ps.Allocs
	want["prefetcher.ipstride.evictions"] = ps.Evictions
	want["prefetcher.ipstride.prefetches"] = ps.Prefetches
	want["prefetcher.ipstride.page_drops"] = ps.PageDrops
	want["prefetcher.ipstride.tlb_skips"] = ps.TLBSkips
	want["prefetcher.ipstride.flushes"] = ps.Flushes

	want["sched.switches"] = m.DomainSwitches()

	for name, v := range want {
		got, ok := snap.Get(name)
		if !ok {
			t.Errorf("snapshot is missing %s", name)
			continue
		}
		if got != v {
			t.Errorf("%s: snapshot %d, legacy accessor %d", name, got, v)
		}
	}
	if hits, _ := snap.Get("cache.l1.hits"); hits == 0 {
		t.Error("cache.l1.hits is zero after a 16-bit Variant-1 run")
	}
	if trains, _ := snap.Get("prefetcher.ipstride.trains"); trains == 0 {
		t.Error("prefetcher.ipstride.trains is zero after a run that trains the table")
	}
}

// TestPhaseSummariesAfterVariant1 checks the attack loops mark the paper's
// train/trigger/probe/decode protocol and that span accounting works without
// tracing enabled.
func TestPhaseSummariesAfterVariant1(t *testing.T) {
	lab := NewLab(Options{Seed: 1, Quiet: true})
	lab.RunVariant1(V1Options{Bits: 8})
	phases := lab.PhaseSummaries()
	got := map[string]PhaseSummary{}
	for _, p := range phases {
		got[p.Name] = p
	}
	for _, name := range []string{"train", "trigger", "probe", "decode"} {
		p, ok := got[name]
		if !ok {
			t.Fatalf("phase %q missing from summaries %v", name, phases)
		}
		if p.Spans < 8 {
			t.Errorf("phase %q: %d spans, want >= one per bit (8)", name, p.Spans)
		}
		if p.Cycles == 0 && name != "decode" {
			t.Errorf("phase %q: zero cycles attributed", name)
		}
	}
}

// tracedEvents runs a fault-perturbed Variant-1 attack with tracing on and
// returns the retained event stream.
func tracedEvents(t *testing.T, capacity int) ([]telemetry.Event, *Lab) {
	t.Helper()
	lab := NewLab(Options{Seed: 11, Quiet: true})
	lab.EnableTrace(capacity)
	lab.InjectFaults(faults.Config{Seed: 11, Intensity: 0.5})
	lab.RunVariant1(V1Options{Bits: 8})
	return lab.Machine().Telemetry().Events(), lab
}

// TestTraceDeterministicUnderFaults: identical seeds (machine and fault
// schedule) produce byte-identical event streams — the property every
// trace-diff debugging workflow relies on.
func TestTraceDeterministicUnderFaults(t *testing.T) {
	ev1, _ := tracedEvents(t, 0)
	ev2, _ := tracedEvents(t, 0)
	if len(ev1) == 0 {
		t.Fatal("traced run recorded no events")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		n := len(ev1)
		if len(ev2) < n {
			n = len(ev2)
		}
		for i := 0; i < n; i++ {
			if ev1[i] != ev2[i] {
				t.Fatalf("event %d differs: %+v vs %+v (lens %d/%d)", i, ev1[i], ev2[i], len(ev1), len(ev2))
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d", len(ev1), len(ev2))
	}
	var faultsSeen int
	for _, ev := range ev1 {
		if ev.Kind == telemetry.EvFaultInject {
			faultsSeen++
		}
	}
	if faultsSeen == 0 {
		t.Error("intensity-0.5 run recorded no fault-inject events")
	}
}

// TestTraceRingWraparoundLive drives a real run through a tiny ring: the
// newest events are retained, the drop count is exact, and retained cycles
// stay non-decreasing across the wrap.
func TestTraceRingWraparoundLive(t *testing.T) {
	const capacity = 64
	events, lab := tracedEvents(t, capacity)
	full, _ := tracedEvents(t, 0)
	if len(full) <= capacity {
		t.Fatalf("run produced only %d events; wraparound never exercised", len(full))
	}
	if len(events) != capacity {
		t.Fatalf("ring retained %d events, want %d", len(events), capacity)
	}
	if d := lab.TraceDropped(); d != uint64(len(full)-capacity) {
		t.Errorf("dropped = %d, want %d (total %d - cap %d)", d, len(full)-capacity, len(full), capacity)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("cycle went backwards at %d: %d -> %d", i, events[i-1].Cycle, events[i].Cycle)
		}
	}
	if !reflect.DeepEqual(events, full[len(full)-capacity:]) {
		t.Error("small ring does not retain the newest events of the full stream")
	}
}

// TestWriteTraceExportsValidChromeTrace round-trips a real run through the
// exporter and the schema validator (the same check CI applies to the
// uploaded artifact).
func TestWriteTraceExportsValidChromeTrace(t *testing.T) {
	lab := NewLab(Options{Seed: 5, Quiet: true})
	lab.EnableTrace(0)
	lab.RunVariant1(V1Options{Bits: 8})

	var buf bytes.Buffer
	if err := lab.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	raw := buf.String()
	n, err := telemetry.ValidateChromeTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if n == 0 {
		t.Fatal("exported trace holds no events")
	}
	for _, want := range []string{`"train"`, `"probe"`, `"pt-insert"`, `"prefetch-issue"`, "thread_name"} {
		if !strings.Contains(raw, want) {
			t.Errorf("exported trace is missing %s", want)
		}
	}
}

// TestWriteTraceRequiresEnable: exporting without EnableTrace is an error,
// not an empty file.
func TestWriteTraceRequiresEnable(t *testing.T) {
	lab := NewLab(Options{Seed: 1, Quiet: true})
	lab.RunVariant1(V1Options{Bits: 2})
	if err := lab.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace succeeded with tracing never enabled")
	}
}
