// RSA key leak: the §6.2 end-to-end attack. A victim thread decrypts with
// a timing-constant Montgomery-ladder RSA engine (both branch directions
// perform the same arithmetic — the classic countermeasure against timing
// attacks), yet the operand-preparation loads of the two directions live at
// different instruction addresses, and the IP-stride prefetcher remembers
// which one ran. The attacker recovers the private exponent bit by bit with
// Prefetcher Status Checking — no Flush+Reload, no Prime+Probe.
package main

import (
	"fmt"

	"afterimage"
)

func main() {
	lab := afterimage.NewLab(afterimage.Options{Seed: 7})

	// The faithful per-bit flow: one victim decryption per observation,
	// five observations per bit, majority vote — the paper's 188-minute
	// budget for 1024 bits. A 96-bit exponent keeps this example snappy
	// while exercising the identical machinery.
	res := lab.ExtractRSAKey(afterimage.RSAOptions{
		KeyBits:     96,
		ItersPerBit: 5,
	})

	fmt.Printf("attacking a %d-bit timing-constant RSA decryption on %s\n\n",
		res.KeyBits, lab.ModelName())
	fmt.Printf("true private exponent: %v\n", res.TrueExponent)
	fmt.Printf("recovered exponent:    %v\n", res.Recovered)
	match := "exact match"
	if res.Recovered.Cmp(res.TrueExponent) != 0 {
		match = fmt.Sprintf("%d/%d bits", res.BitsCorrect, res.BitsTotal)
	}
	fmt.Printf("result:                %s\n\n", match)

	fmt.Printf("per-observation PSC accuracy: %.1f%% (paper: 82%%)\n", res.PSCSuccessRate()*100)
	fmt.Printf("victim decryptions consumed:  %d\n", res.Decryptions)
	secs := lab.Seconds(res.Cycles)
	fmt.Printf("simulated attack time:        %.0f s (%.1f s per bit)\n", secs, secs/float64(res.BitsTotal))
	fmt.Printf("extrapolated 1024-bit budget: %.0f minutes (paper: ~188)\n",
		secs/float64(res.BitsTotal)*1024/60)

	// Library extension: when the attacker retrains between consecutive
	// ladder iterations, every bit is observable in a single decryption
	// and the attack collapses to ItersPerBit decryptions total.
	lab2 := afterimage.NewLab(afterimage.Options{Seed: 8})
	fast := lab2.ExtractRSAKey(afterimage.RSAOptions{
		KeyBits:     96,
		ItersPerBit: 5,
		Pipelined:   true,
	})
	fmt.Printf("\npipelined variant: %d/%d bits from only %d decryptions (%.1f s simulated)\n",
		fast.BitsCorrect, fast.BitsTotal, fast.Decryptions, lab2.Seconds(fast.Cycles))
}
