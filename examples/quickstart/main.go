// Quickstart: boot a simulated Coffee Lake, leak a 32-bit branch secret
// across threads with AfterImage-Cache, and print what happened. This is
// the five-minute tour of the library's public API.
package main

import (
	"fmt"

	"afterimage"
)

func main() {
	// A Lab is one deterministic simulated machine plus the attacker
	// toolbox. Same seed → same run, bit for bit.
	lab := afterimage.NewLab(afterimage.Options{
		Model: afterimage.CoffeeLake,
		Seed:  42,
	})
	fmt.Printf("booted %s (simulated)\n\n", lab.ModelName())

	// The victim executes one branch per secret bit; each direction
	// performs one load, from a different instruction address (Listing 1
	// of the paper). The attacker trains the IP-stride prefetcher with a
	// stride of 7 lines on the if-path's low-8 IP bits and 13 lines on the
	// else-path's, flushes a shared page, lets the victim run, and reads
	// the branch direction back from which stride the prefetcher echoed.
	res := lab.RunVariant1(afterimage.V1Options{Bits: 32})

	fmt.Println("victim's secret bits:", bits(res.Secret))
	fmt.Println("leaked via prefetcher:", bits(res.Inferred))
	fmt.Printf("\nsuccess rate: %.1f%% over %d branches (paper reports 99%%)\n",
		res.SuccessRate()*100, len(res.Secret))
	fmt.Printf("simulated attack time: %.2f ms\n", lab.Seconds(res.Cycles)*1e3)

	// The same lab can run every other experiment of the paper; see the
	// sibling examples and cmd/afterimage-experiments.
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
