// Covert channel: two cooperating processes with no shared secrets, files
// or sockets — only the same logical core — move data through the IP-stride
// prefetcher's stride field (§5.3). The sender trains a history entry with
// stride = symbol; the receiver touches one line of a shared page with an
// aliasing IP and reads the symbol back as the distance to the prefetched
// line.
package main

import (
	"fmt"

	"afterimage"
)

func main() {
	message := "prefetchers remember more than they should"

	// Single-entry configuration: the paper's 833 bps at <6 % errors.
	lab := afterimage.NewLab(afterimage.Options{Seed: 3})
	res := lab.RunCovertChannel(afterimage.CovertOptions{
		Message: []byte(message),
		Entries: 1,
	})
	perCycle := 1.0 / 3e9
	fmt.Printf("single entry:  %4.0f bps raw, %4.1f%% symbol errors (paper: 833 bps, <6%%)\n",
		res.RawBps(perCycle), res.ErrorRate()*100)

	// Maximum-bandwidth configuration: all 24 history entries carry
	// symbols in parallel. The table thrashes — context switches and the
	// receiver's own probes evict entries — so errors exceed 25 %, but the
	// raw signalling rate approaches 20 Kbps, exactly the paper's
	// trade-off.
	lab24 := afterimage.NewLab(afterimage.Options{Seed: 3})
	res24 := lab24.RunCovertChannel(afterimage.CovertOptions{
		Message: []byte(message),
		Entries: 24,
	})
	fmt.Printf("24 entries:   %5.0f bps raw, %4.1f%% symbol errors (paper: ~20 Kbps, >25%%)\n",
		res24.RawBps(perCycle), res24.ErrorRate()*100)

	fmt.Printf("\n%d symbols of 5 bits each; %.1f ms simulated per configuration\n",
		res.SymbolsSent, lab.Seconds(res.Cycles)*1e3)
}
