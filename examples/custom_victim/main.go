// Custom victim: using the library as a research tool. Everything the
// shipped experiments do is built from the Lab's machine — here we write a
// brand-new victim (a password comparator with an early-exit loop whose
// per-character loads sit at one IP) and mount an AfterImage-PSC attack on
// it from scratch, without touching any of the canned Run* flows.
package main

import (
	"fmt"

	"afterimage"
	"afterimage/internal/core"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// passwordCheck models a byte-by-byte comparator: each iteration loads the
// stored secret's next byte (always, at checkIP) and the loop exits on the
// first mismatch — so the NUMBER of checkIP executions equals the length of
// the correct prefix. AfterImage counts those executions through the
// prefetcher status, one per observation round.
func passwordCheck(env *sim.Env, checkIP uint64, stored *mem.Mapping, secret, guess string) bool {
	env.WarmTLB(stored.Base)
	for i := 0; i < len(guess) && i < len(secret); i++ {
		env.Load(checkIP, stored.Base+mem.VAddr(i)) // load secret[i]
		env.Sleep(40)
		if guess[i] != secret[i] {
			return false
		}
		env.Yield() // timeslice boundary per compared character
	}
	return len(guess) == len(secret)
}

func main() {
	lab := afterimage.NewLab(afterimage.Options{Seed: 13})
	m := lab.Machine()

	secret := "hunter2"
	checkIP := uint64(0x0807_11c9) // low 8 bits 0xC9

	vicProc := m.NewProcess("login")
	attProc := m.NewProcess("attacker")
	stored := m.Direct(vicProc).Mmap(mem.PageSize, mem.MapLocked)

	fmt.Println("attacking a byte-by-byte password comparator via AfterImage-PSC")
	fmt.Printf("victim compare-loop load IP ends in %#02x\n\n", uint8(checkIP))

	// The attacker measures, per guess, how many comparator iterations ran:
	// it re-trains the aliasing entry before every victim timeslice and
	// counts the slices in which the entry was disturbed.
	prefixLenOnce := func(guess string) int {
		matched := 0
		m.Spawn(attProc, "attacker", func(e *sim.Env) {
			psc := core.NewPSC(e, core.IPWithLow8(0x40_0000, uint8(checkIP)), 11, 64)
			psc.Train(e, 4)
			for i := 0; i < len(guess); i++ {
				psc.Train(e, 3)
				e.Yield() // victim compares character i
				if !psc.Check(e) {
					matched++ // comparator executed its load: position i was reached
				}
			}
		})
		m.Spawn(vicProc, "login", func(e *sim.Env) {
			passwordCheck(e, checkIP, stored, secret, guess)
			for i := 0; i < len(guess); i++ {
				e.Yield()
			}
		})
		m.Run()
		return matched
	}

	// Context-switch noise occasionally fakes a disturbed slot, so — like
	// the paper's ≤5 observations per RSA bit — take the median of three.
	prefixLen := func(guess string) int {
		a, b, c := prefixLenOnce(guess), prefixLenOnce(guess), prefixLenOnce(guess)
		if a > b {
			a, b = b, a
		}
		if b > c {
			b = c
		}
		if a > b {
			b = a
		}
		return b
	}

	// Classic prefix-extension attack, one character per stage, using only
	// the leaked iteration count.
	alphabet := "abcdefghijklmnopqrstuvwxyz0123456789"
	recovered := ""
	for len(recovered) < len(secret) {
		found := false
		for _, c := range alphabet {
			guess := recovered + string(c) + "\x00" // padding probes one char further
			if prefixLen(guess) > len(recovered)+1 {
				recovered += string(c)
				fmt.Printf("  prefix so far: %q\n", recovered)
				found = true
				break
			}
		}
		if !found {
			// The final character loads before it is compared, so the
			// iteration count cannot distinguish it — but at this point a
			// single character is left, and the login's accept/reject
			// answer (the victim's normal interface) finishes the job.
			for _, c := range alphabet {
				env := m.Direct(vicProc)
				if passwordCheck(env, checkIP, stored, secret, recovered+string(c)) {
					recovered += string(c)
					fmt.Printf("  final character via login result: %q\n", recovered)
					break
				}
			}
			break
		}
	}
	fmt.Printf("\nrecovered password: %q (truth: %q)\n", recovered, secret)
}
