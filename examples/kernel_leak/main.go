// Kernel leak: Variant 2 (§5.2). A custom syscall guards a load into
// user-shared memory with a kernel-private secret (Listing 7 of the paper).
// The attacker cannot disassemble the kernel, so it first recovers the low
// 8 bits of the kernel load's instruction pointer with the IP-search
// technique — KASLR cannot hide them, because it randomises at page
// granularity while the prefetcher indexes with the low 8 bits only — and
// then leaks the kernel's branch decisions through the trained entry.
package main

import (
	"fmt"

	"afterimage"
)

func main() {
	lab := afterimage.NewLab(afterimage.Options{Seed: 11})
	fmt.Printf("attacking a kernel syscall on %s\n\n", lab.ModelName())

	res := lab.RunVariant2(afterimage.V2Options{
		Bits:        48,
		UseIPSearch: true,
	})

	if res.IPSearched {
		fmt.Printf("IP search over 256 candidates (groups of 24): kernel load IP ends in %#02x\n\n",
			res.FoundIPLow8)
	}

	fmt.Println("kernel secret:", bits(res.Secret))
	fmt.Println("user inferred:", bits(res.Inferred))
	fmt.Printf("\nsuccess rate: %.1f%% (paper reports 91%% for Variant 2)\n", res.SuccessRate()*100)
	fmt.Println("\nno speculation, no shared library, no kernel read primitive —")
	fmt.Println("only a trained prefetcher entry crossing the privilege boundary.")
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
