// Power marker: §6.3 / Figure 16. AfterImage is not only a direct leak —
// it is a precision trigger for other attacks. Here the attacker first uses
// Prefetcher Status Checking to recover exactly when the victim loads its
// key and when decryption begins (Figure 15), then uses that timing to
// align power traces for a TVLA t-test. Aligned traces blow past the ±4.5
// leakage threshold; randomly-timed sampling of the same traces shows
// nothing.
package main

import (
	"fmt"
	"strings"

	"afterimage"
)

func main() {
	// Step 1: track the victim's load timing through the prefetcher.
	lab := afterimage.NewLab(afterimage.Options{Seed: 5})
	keyLoad, decrypt := lab.TrackOpenSSL()
	fmt.Println("prefetcher status per scheduling slot (. triggered, X reset):")
	fmt.Printf("  key-load entry: %s\n", timeline(keyLoad.Samples))
	fmt.Printf("  mul-add entry:  %s\n", timeline(decrypt.Samples))
	fmt.Printf("recovered onsets: key load at slot %d, decryption at slot %d\n\n",
		keyLoad.OnsetIndex, decrypt.OnsetIndex)

	// Step 2: feed the recovered timing into a power side-channel.
	aligned := afterimage.RunTTest(true, 5)
	random := afterimage.RunTTest(false, 5)
	fmt.Println("TVLA fixed-vs-random t-test on AES S-box power traces:")
	fmt.Printf("  with AfterImage timing: |t| = %5.1f after %d traces (threshold 4.5)\n",
		abs(aligned.FinalT()), aligned.Counts[len(aligned.Counts)-1])
	fmt.Printf("  with random timing:     |t| = %5.1f — no detectable leakage\n",
		abs(random.FinalT()))

	// Step 3: from assessment to exploitation — CPA key recovery.
	cpa := afterimage.RunCPAAttack(true, 3000, 5)
	blind := afterimage.RunCPAAttack(false, 3000, 5)
	fmt.Println("\ncorrelation power analysis on the first-round S-box:")
	fmt.Printf("  with AfterImage timing: key byte %#02x recovered (|r| %.2f vs %.2f runner-up)\n",
		cpa.RecoveredKey, cpa.PeakCorrelation, cpa.RunnerUpCorrelation)
	fmt.Printf("  with random timing:     peak |r| %.2f — the key does not fall\n",
		blind.PeakCorrelation)
}

func timeline(samples []afterimage.TimingSample) string {
	var sb strings.Builder
	for _, s := range samples {
		if s.Triggered {
			sb.WriteByte('.')
		} else {
			sb.WriteByte('X')
		}
	}
	return sb.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
