package afterimage

import (
	"errors"
	"fmt"
	"testing"

	"afterimage/internal/runner"
)

// TestRecoverAsErrorFaultKindRoundTrip: every fault kind thrown as a panic
// crosses the recoverAsError boundary as a typed error that errors.As and
// AsFault both recover unchanged — including through additional %w wrapping —
// and the supervised runner classifies it the way the retry policy expects.
func TestRecoverAsErrorFaultKindRoundTrip(t *testing.T) {
	kinds := []struct {
		kind      FaultKind
		wantClass runner.Class
	}{
		{FaultPanic, runner.ClassTransient},
		{FaultSegfault, runner.ClassTransient},
		{FaultBudget, runner.ClassTransient},
		{FaultBadSyscall, runner.ClassTransient},
		{FaultAPIMisuse, runner.ClassPermanent},
		{FaultOOM, runner.ClassTransient},
		{FaultCorruption, runner.ClassTransient},
	}
	for _, tc := range kinds {
		t.Run(tc.kind.String(), func(t *testing.T) {
			thrown := &SimFault{Kind: tc.kind, Msg: "boundary round-trip", Cycle: 99, Task: "victim"}
			fn := func() (err error) {
				defer recoverAsError(&err)
				panic(thrown)
			}
			err := fn()
			if err == nil {
				t.Fatal("panic did not surface as an error")
			}

			var f *SimFault
			if !errors.As(err, &f) {
				t.Fatalf("errors.As failed on %v", err)
			}
			if f != thrown {
				t.Errorf("errors.As returned a different fault: %+v", f)
			}
			got, ok := AsFault(err)
			if !ok || got.Kind != tc.kind {
				t.Errorf("AsFault = %+v, %v; want kind %s", got, ok, tc.kind)
			}

			wrapped := fmt.Errorf("campaign point 3: %w", err)
			if got, ok := AsFault(wrapped); !ok || got.Kind != tc.kind {
				t.Errorf("AsFault through wrapping = %+v, %v", got, ok)
			}

			if c := runner.DefaultClassify(err); c != tc.wantClass {
				t.Errorf("DefaultClassify(%s) = %v, want %v", tc.kind, c, tc.wantClass)
			}
		})
	}
}

// TestRecoverAsErrorWrapsNonFaultPanic: a panic that is not a SimFault (a
// victim bug, a slice overrun) surfaces as a wrapped error — never a crash,
// never mistaken for a typed simulator fault — and the runner treats it as
// permanent.
func TestRecoverAsErrorWrapsNonFaultPanic(t *testing.T) {
	cases := []struct {
		name    string
		payload any
	}{
		{"string", "victim exploded"},
		{"error", errors.New("index out of range")},
		{"int", 42},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fn := func() (err error) {
				defer recoverAsError(&err)
				panic(tc.payload)
			}
			err := fn()
			if err == nil {
				t.Fatal("non-fault panic did not surface as an error")
			}
			if _, ok := AsFault(err); ok {
				t.Fatalf("non-fault panic classified as SimFault: %v", err)
			}
			if payloadErr, ok := tc.payload.(error); ok && !errors.Is(err, payloadErr) {
				t.Errorf("error payload not wrapped: %v", err)
			}
			if c := runner.DefaultClassify(err); c != runner.ClassPermanent {
				t.Errorf("DefaultClassify = %v, want permanent", c)
			}
		})
	}
}

// TestRecoverAsErrorNoPanicIsNil: the boundary is transparent on the happy
// path.
func TestRecoverAsErrorNoPanicIsNil(t *testing.T) {
	fn := func() (err error) {
		defer recoverAsError(&err)
		return nil
	}
	if err := fn(); err != nil {
		t.Fatalf("boundary invented an error: %v", err)
	}
}
