package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFIPS197Vector checks the appendix-B example of FIPS-197.
func TestFIPS197Vector(t *testing.T) {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := []byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	got, err := Encrypt(key, pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:], want) {
		t.Fatalf("got % x, want % x", got, want)
	}
}

// TestMatchesCryptoAES cross-validates against the standard library.
func TestMatchesCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		key := make([]byte, KeySize)
		pt := make([]byte, BlockSize)
		rng.Read(key)
		rng.Read(pt)
		got, err := Encrypt(key, pt, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, BlockSize)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got[:], want) {
			t.Fatalf("mismatch for key % x pt % x", key, pt)
		}
	}
}

func TestHookSeesAllLookups(t *testing.T) {
	key := make([]byte, KeySize)
	pt := make([]byte, BlockSize)
	phases := map[string]int{}
	if _, err := Encrypt(key, pt, func(phase string, idx int, in byte) {
		phases[phase]++
	}); err != nil {
		t.Fatal(err)
	}
	if phases["expand"] != 40 { // 10 SubWord applications of 4 bytes
		t.Fatalf("expand lookups = %d, want 40", phases["expand"])
	}
	if phases["round 1"] != 16 || phases["round 10"] != 16 {
		t.Fatalf("round lookups: %v", phases)
	}
	total := 0
	for _, n := range phases {
		total += n
	}
	if total != 40+16*Rounds {
		t.Fatalf("total lookups = %d", total)
	}
}

func TestBadSizesRejected(t *testing.T) {
	if _, err := ExpandKey(make([]byte, 5), nil); err == nil {
		t.Fatal("short key accepted")
	}
	keys, _ := ExpandKey(make([]byte, KeySize), nil)
	if _, err := EncryptBlock(keys, make([]byte, 3), nil); err == nil {
		t.Fatal("short block accepted")
	}
	if _, err := EncryptBlock(keys[:5], make([]byte, BlockSize), nil); err == nil {
		t.Fatal("truncated schedule accepted")
	}
}

// TestGFArithmetic pins GF(2^8) multiplication facts.
func TestGFArithmetic(t *testing.T) {
	if mul(0x57, 0x13) != 0xFE { // FIPS-197 example
		t.Fatalf("mul(0x57,0x13) = %#x", mul(0x57, 0x13))
	}
	f := func(a byte) bool { return mul(a, 1) == a && mul(a, 2) == xtime(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
