// Package aes implements AES-128 from scratch (S-box based, no lookup-table
// fusion) as the substrate for the paper's AES-related claims: §6.3 notes
// that OpenSSL-AES can be attacked with the same load-tracking flow as RSA,
// and the Figure 16 power experiment models first-round S-box leakage.
// Encryption exposes a per-S-box-lookup hook so the simulated victim can
// issue the corresponding table loads. Tests validate against crypto/aes.
package aes

import (
	"fmt"

	"afterimage/internal/power"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// Rounds is the AES-128 round count.
const Rounds = 10

// SBoxHook observes one S-box lookup: the phase ("expand" or "round N"),
// and the input byte (whose table line a real lookup would touch).
type SBoxHook func(phase string, index int, in byte)

// sbox applies the substitution, reporting to the hook.
func sbox(in byte, phase string, idx int, hook SBoxHook) byte {
	if hook != nil {
		hook(phase, idx, in)
	}
	return power.SBox[in]
}

var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}

// ExpandKey derives the 11 round keys of AES-128.
func ExpandKey(key []byte, hook SBoxHook) ([][16]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: key must be %d bytes, got %d", KeySize, len(key))
	}
	// 44 words of 4 bytes.
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{t[1], t[2], t[3], t[0]}
			for k := 0; k < 4; k++ {
				t[k] = sbox(t[k], "expand", i*4+k, hook)
			}
			t[0] ^= rcon[i/4]
		}
		for k := 0; k < 4; k++ {
			w[i][k] = w[i-4][k] ^ t[k]
		}
	}
	keys := make([][16]byte, Rounds+1)
	for r := 0; r <= Rounds; r++ {
		for c := 0; c < 4; c++ {
			copy(keys[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return keys, nil
}

// xtime is multiplication by x in GF(2^8).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1B
	}
	return b << 1
}

// mul multiplies in GF(2^8).
func mul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 == 1 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// EncryptBlock encrypts one 16-byte block with the expanded keys, calling
// the hook for every S-box lookup (16 per round).
func EncryptBlock(keys [][16]byte, block []byte, hook SBoxHook) ([BlockSize]byte, error) {
	var s [16]byte
	if len(block) != BlockSize {
		return s, fmt.Errorf("aes: block must be %d bytes, got %d", BlockSize, len(block))
	}
	if len(keys) != Rounds+1 {
		return s, fmt.Errorf("aes: need %d round keys, got %d", Rounds+1, len(keys))
	}
	copy(s[:], block)
	addRoundKey(&s, keys[0])
	for r := 1; r <= Rounds; r++ {
		phase := fmt.Sprintf("round %d", r)
		for i := range s {
			s[i] = sbox(s[i], phase, i, hook)
		}
		shiftRows(&s)
		if r != Rounds {
			mixColumns(&s)
		}
		addRoundKey(&s, keys[r])
	}
	return s, nil
}

func addRoundKey(s *[16]byte, k [16]byte) {
	for i := range s {
		s[i] ^= k[i]
	}
}

// shiftRows operates on the column-major state layout (s[r+4c]).
func shiftRows(s *[16]byte) {
	var t [16]byte
	copy(t[:], s[:])
	for r := 1; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r+4*c] = t[r+4*((c+r)%4)]
		}
	}
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = mul(a0, 2) ^ mul(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ mul(a1, 2) ^ mul(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ mul(a2, 2) ^ mul(a3, 3)
		s[4*c+3] = mul(a0, 3) ^ a1 ^ a2 ^ mul(a3, 2)
	}
}

// Encrypt is the convenience one-shot: expand and encrypt.
func Encrypt(key, block []byte, hook SBoxHook) ([BlockSize]byte, error) {
	keys, err := ExpandKey(key, hook)
	if err != nil {
		return [BlockSize]byte{}, err
	}
	return EncryptBlock(keys, block, hook)
}
