// Package faults is a deterministic fault-injection engine for the
// AfterImage simulator. It perturbs the microarchitectural state the attack
// depends on — the IP-stride history table, the dTLB, the cache hierarchy,
// and the victim's scheduling — on a seeded, reproducible schedule, so
// robustness experiments (how does the leak degrade under preemption storms
// or prefetcher-table churn?) are exactly repeatable: the same seed and
// intensity always produce the same event sequence.
//
// The engine hooks the machine through sim.Perturber: after every clock
// advance it fires all events whose scheduled cycle has passed. Event gaps
// are drawn from an exponential distribution (a Poisson process in simulated
// time) whose rate scales linearly with Config.Intensity, and every draw
// comes from one private seeded RNG, so the schedule is a pure function of
// the Config.
package faults

import (
	"fmt"
	"math/rand"

	"afterimage/internal/sim"
	"afterimage/internal/telemetry"
)

// Kind is one class of injected perturbation.
type Kind int

// The perturbation classes, ordered roughly by blast radius.
const (
	// EvictEntry invalidates one random IP-stride history-table slot — the
	// effect of a contending context allocating over the attacker's entry.
	EvictEntry Kind = iota
	// FlushTable clears the whole IP-stride history table, as the paper's
	// clear-ip-prefetcher instruction (§8.3) or a deep sleep state would.
	FlushTable
	// TLBShootdown flushes the dTLB and stalls for the IPI service cost,
	// re-triggering the §4.3 first-touch rule on every page.
	TLBShootdown
	// PreemptionStorm models an involuntary context switch: a scheduling
	// stall plus the kernel's own cache and prefetcher pollution (§5.1).
	PreemptionStorm
	// CacheThrash touches a burst of kernel cache lines, evicting attacker
	// probe lines from the LLC without disturbing the prefetcher table.
	CacheThrash

	// The corruption classes below model state-machine bugs rather than
	// contention: each silently breaks a structural invariant that the
	// machine's auditor (Machine.Audit / the audit cadence) must catch and
	// convert into a typed corruption fault. They are deliberately NOT part
	// of AllKinds — adding kinds there would shift every existing seeded
	// schedule — and are selected explicitly via CorruptionKinds.

	// CorruptStride bit-flips an IP-stride entry's stride field past the
	// 13-bit |stride| < 2 KiB bound.
	CorruptStride
	// CorruptConfidence writes a confidence value the 2-bit counter cannot
	// hold.
	CorruptConfidence
	// CorruptPLRU forces the history table's Bit-PLRU into the forbidden
	// all-ones state.
	CorruptPLRU
	// CorruptInclusivity drops an L1-resident line from the LLC only,
	// breaking L1 ⊆ LLC inclusion.
	CorruptInclusivity
	// CorruptTLB installs a dTLB translation with no page-table backing —
	// a desynchronised (stale) entry.
	CorruptTLB
	// CorruptCrossFrame records an issued prefetch whose target crosses its
	// trigger's physical page frame, violating §4.3 containment.
	CorruptCrossFrame

	kindCount = int(CorruptCrossFrame) + 1
)

// String names the kind (also the flag/CLI spelling, lower-kebab).
func (k Kind) String() string {
	switch k {
	case EvictEntry:
		return "evict-entry"
	case FlushTable:
		return "flush-table"
	case TLBShootdown:
		return "tlb-shootdown"
	case PreemptionStorm:
		return "preemption-storm"
	case CacheThrash:
		return "cache-thrash"
	case CorruptStride:
		return "corrupt-stride"
	case CorruptConfidence:
		return "corrupt-confidence"
	case CorruptPLRU:
		return "corrupt-plru"
	case CorruptInclusivity:
		return "corrupt-inclusivity"
	case CorruptTLB:
		return "corrupt-tlb"
	case CorruptCrossFrame:
		return "corrupt-cross-frame"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds returns every contention-class perturbation, in Kind order. It
// deliberately excludes the corruption classes: the default kind pool feeds
// kinds[rng.Intn(len(kinds))], so growing it would silently reshuffle every
// existing seeded schedule. Corruption faults are opt-in via CorruptionKinds.
func AllKinds() []Kind {
	return []Kind{EvictEntry, FlushTable, TLBShootdown, PreemptionStorm, CacheThrash}
}

// CorruptionKinds returns the state-corruption classes, in Kind order.
func CorruptionKinds() []Kind {
	return []Kind{CorruptStride, CorruptConfidence, CorruptPLRU, CorruptInclusivity, CorruptTLB, CorruptCrossFrame}
}

// IsCorruption reports whether k is a state-corruption class.
func IsCorruption(k Kind) bool { return k >= CorruptStride && k <= CorruptCrossFrame }

// ParseKind inverts Kind.String for every class, contention and corruption.
func ParseKind(s string) (Kind, error) {
	for _, k := range append(AllKinds(), CorruptionKinds()...) {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q", s)
}

// Config describes a fault schedule. The zero Intensity is an inert engine.
type Config struct {
	// Seed fixes the schedule; equal configs produce identical schedules.
	Seed int64
	// Intensity linearly scales the event rate: at 1.0 the engine fires
	// EventsPerMCycle events per million cycles; 0 disables injection.
	Intensity float64
	// EventsPerMCycle is the base rate at Intensity 1.0. 0 means the
	// DefaultEventsPerMCycle.
	EventsPerMCycle float64
	// Kinds restricts which perturbations may fire; nil or empty means all.
	Kinds []Kind
}

// DefaultEventsPerMCycle is the base event rate at Intensity 1.0 — chosen so
// intensity 1.0 lands several perturbations inside a single attack round
// (~100k–1M cycles).
const DefaultEventsPerMCycle = 25.0

// Event is one scheduled perturbation. Arg is a raw random parameter whose
// meaning depends on the kind (slot selector for EvictEntry, burst sizing
// for PreemptionStorm and CacheThrash); it is reduced at application time so
// the schedule itself is machine-independent.
type Event struct {
	Cycle uint64
	Kind  Kind
	Arg   int
}

// Stats counts applied perturbations.
type Stats struct {
	Total  uint64
	ByKind [kindCount]uint64
}

// Count returns how many events of kind k have been applied.
func (s Stats) Count(k Kind) uint64 {
	if int(k) < 0 || int(k) >= kindCount {
		return 0
	}
	return s.ByKind[k]
}

// Engine generates and applies a deterministic fault schedule. It implements
// sim.Perturber; install it with Machine.SetPerturber. Events are generated
// lazily — one draw per fired event — so arbitrarily long runs need no
// precomputed schedule.
type Engine struct {
	cfg     Config
	kinds   []Kind
	rng     *rand.Rand
	rate    float64 // events per cycle; 0 = disabled
	pending Event
	stats   Stats
}

// New builds an engine from the config. A non-positive intensity yields an
// engine whose Perturb is a no-op.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:   cfg,
		kinds: cfg.Kinds,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}
	if len(e.kinds) == 0 {
		e.kinds = AllKinds()
	}
	base := cfg.EventsPerMCycle
	if base == 0 {
		base = DefaultEventsPerMCycle
	}
	if cfg.Intensity > 0 && base > 0 {
		e.rate = cfg.Intensity * base / 1e6
		e.pending = e.step(0)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a copy of the applied-event counters.
func (e *Engine) Stats() Stats { return e.stats }

// RegisterMetrics exposes the applied-event counters in reg: faults.injected
// plus faults.<kind> per perturbation class. Samplers read the live counters,
// so snapshots always match Stats() exactly.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterFunc("faults.injected", func() uint64 { return e.stats.Total })
	for _, k := range append(AllKinds(), CorruptionKinds()...) {
		k := k
		reg.RegisterFunc("faults."+k.String(), func() uint64 { return e.stats.ByKind[k] })
	}
}

// Enabled reports whether the engine will ever fire.
func (e *Engine) Enabled() bool { return e.rate > 0 }

// step draws the next event strictly after the given cycle.
func (e *Engine) step(after uint64) Event {
	gap := uint64(e.rng.ExpFloat64()/e.rate) + 1
	return Event{
		Cycle: after + gap,
		Kind:  e.kinds[e.rng.Intn(len(e.kinds))],
		Arg:   e.rng.Intn(1 << 16),
	}
}

// Preview generates the first n events of the schedule cfg describes,
// without a machine — the schedule an Engine with the same config will
// apply. Useful for determinism tests and experiment logging.
func Preview(cfg Config, n int) []Event {
	e := New(cfg)
	if !e.Enabled() || n <= 0 {
		return nil
	}
	out := make([]Event, 0, n)
	ev := e.pending
	for len(out) < n {
		out = append(out, ev)
		ev = e.step(ev.Cycle)
	}
	return out
}

// Perturb fires every pending event whose cycle has passed. It runs on the
// goroutine holding the simulated core, inside the machine's perturbation
// guard, so the clock advances its own applications cause do not re-enter.
//
// The next event is scheduled relative to the clock after the application:
// perturbations cost simulated time themselves (stalls, kernel noise), and
// gaps drawn from the pre-application clock would compound — at high
// intensity each event would make more events due than it consumed and the
// machine would never get back to the workload. Anchoring the gap after the
// application bounds the injection duty cycle below 1 at any intensity.
func (e *Engine) Perturb(m *sim.Machine, now uint64) {
	for e.rate > 0 && e.pending.Cycle <= now {
		ev := e.pending
		e.apply(m, ev)
		after := ev.Cycle
		if c := m.Now(); c > after {
			after = c
		}
		e.pending = e.step(after)
	}
}

// apply mutates the machine according to one event, using only public
// machine API so the engine stays outside the simulator's trust boundary.
func (e *Engine) apply(m *sim.Machine, ev Event) {
	e.stats.Total++
	e.stats.ByKind[ev.Kind]++
	if tel := m.Telemetry(); tel.TraceEnabled() {
		tel.Emit(telemetry.Event{
			Kind: telemetry.EvFaultInject, Cycle: ev.Cycle,
			Arg1: uint64(ev.Kind), Label: ev.Kind.String(),
		})
	}
	switch ev.Kind {
	case EvictEntry:
		slots := m.Cfg.IPStride.Entries
		m.Pref.IPStride.EvictSlot(ev.Arg % slots)
	case FlushTable:
		m.Pref.IPStride.Flush()
		m.InjectStall(uint64(m.Cfg.IPStride.Entries))
	case TLBShootdown:
		m.TLB.FlushAll()
		m.InjectStall(600) // remote IPI service cost
	case PreemptionStorm:
		// 1–3 back-to-back involuntary switches.
		n := 1 + ev.Arg%3
		for i := 0; i < n; i++ {
			m.InjectStall(m.Cfg.Noise.ProcessSwitchCycles)
			m.InjectKernelNoise(m.Cfg.Noise.KernelLines, m.Cfg.Noise.KernelIPLoads)
		}
	case CacheThrash:
		// A burst of kernel-line touches; no prefetcher-visible IP loads.
		m.InjectKernelNoise(128+ev.Arg%256, 0)
	case CorruptStride:
		stride := m.Cfg.IPStride.MaxStrideBytes + 64 + int64(ev.Arg%1024)
		m.Pref.IPStride.CorruptStride(ev.Arg, stride)
	case CorruptConfidence:
		m.Pref.IPStride.CorruptConfidence(ev.Arg, m.Cfg.IPStride.MaxConfidence+1+ev.Arg%4)
	case CorruptPLRU:
		m.Pref.IPStride.CorruptPLRU()
	case CorruptInclusivity:
		m.Mem.CorruptInclusivity()
	case CorruptTLB:
		// A VPN in the guard region below any mapping base: present in the
		// TLB, never in a page table.
		m.TLB.CorruptInsert(m.Kernel.AS.ID, 3+uint64(ev.Arg%1021))
	case CorruptCrossFrame:
		m.Pref.IPStride.CorruptCrossFrame()
	}
}
