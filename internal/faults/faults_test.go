package faults

import (
	"reflect"
	"testing"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// TestPreviewDeterministic: the schedule is a pure function of the config.
func TestPreviewDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Intensity: 0.7}
	a := Preview(cfg, 200)
	b := Preview(cfg, 200)
	if len(a) != 200 {
		t.Fatalf("got %d events", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	c := Preview(Config{Seed: 43, Intensity: 0.7}, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Cycle <= a[i-1].Cycle {
			t.Fatalf("schedule not strictly increasing at %d: %d then %d",
				i, a[i-1].Cycle, a[i].Cycle)
		}
	}
}

// TestIntensityScalesRate: higher intensity packs more events into the same
// span of simulated time.
func TestIntensityScalesRate(t *testing.T) {
	span := func(intensity float64) uint64 {
		ev := Preview(Config{Seed: 7, Intensity: intensity}, 500)
		return ev[len(ev)-1].Cycle
	}
	low, high := span(0.1), span(1.0)
	if high*5 > low {
		// 10x the intensity should compress 500 events ~10x; allow 2x slack.
		t.Fatalf("intensity scaling off: 500 events span %d at 0.1 vs %d at 1.0", low, high)
	}
}

// TestZeroIntensityInert: intensity 0 never fires.
func TestZeroIntensityInert(t *testing.T) {
	e := New(Config{Seed: 1, Intensity: 0})
	if e.Enabled() {
		t.Fatal("zero-intensity engine claims to be enabled")
	}
	if ev := Preview(Config{Seed: 1}, 10); ev != nil {
		t.Fatalf("inert preview returned %v", ev)
	}
	m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(1)))
	m.SetPerturber(e)
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	for i := 0; i < 100; i++ {
		env.Load(0x40, buf.Base)
	}
	if e.Stats().Total != 0 {
		t.Fatalf("inert engine applied %d events", e.Stats().Total)
	}
}

// TestKindFilter: a restricted engine fires only the requested kinds.
func TestKindFilter(t *testing.T) {
	ev := Preview(Config{Seed: 3, Intensity: 1, Kinds: []Kind{TLBShootdown}}, 50)
	for _, e := range ev {
		if e.Kind != TLBShootdown {
			t.Fatalf("restricted schedule contains %v", e.Kind)
		}
	}
}

// TestEngineAppliesOnMachine: a driven machine accumulates perturbations that
// match the preview schedule, and two identical runs agree cycle-for-cycle.
func TestEngineAppliesOnMachine(t *testing.T) {
	run := func() (uint64, Stats) {
		m := sim.NewMachine(sim.CoffeeLake(9))
		eng := New(Config{Seed: 11, Intensity: 1.0, EventsPerMCycle: 500})
		m.SetPerturber(eng)
		env := m.Direct(m.NewProcess("p"))
		buf := env.Mmap(64*mem.PageSize, mem.MapLocked)
		env.WarmTLB(buf.Base)
		for i := 0; i < 2000; i++ {
			env.Load(0x40, buf.Base+mem.VAddr((i%512)*64))
		}
		return m.Now(), eng.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d, %+v) vs (%d, %+v)", c1, s1, c2, s2)
	}
	if s1.Total == 0 {
		t.Fatal("engine never fired on an active machine")
	}
	var sum uint64
	for _, k := range AllKinds() {
		sum += s1.Count(k)
	}
	if sum != s1.Total {
		t.Fatalf("per-kind counts sum to %d, total %d", sum, s1.Total)
	}
}

// TestFlushTableClearsEntries: the FlushTable perturbation empties the
// IP-stride history table.
func TestFlushTableClearsEntries(t *testing.T) {
	m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(2)))
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	env.Load(0x77, buf.Base)
	if _, ok := m.Pref.IPStride.Peek(0x77, 1); !ok {
		t.Fatal("training load did not allocate an entry")
	}
	eng := New(Config{Seed: 5, Intensity: 1})
	eng.apply(m, Event{Kind: FlushTable})
	if _, ok := m.Pref.IPStride.Peek(0x77, 1); ok {
		t.Fatal("entry survived a flush-table event")
	}
	if eng.Stats().Count(FlushTable) != 1 {
		t.Fatalf("stats = %+v", eng.Stats())
	}
}

// TestParseKind round-trips every kind name.
func TestParseKind(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}
