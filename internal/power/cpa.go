package power

import (
	"math/rand"

	"afterimage/internal/stats"
)

// This file extends the Figure 16 experiment from leakage *assessment*
// (the t-test) to leakage *exploitation*: classic correlation power
// analysis (CPA) against the first-round S-box. The attacker correlates
// each key-byte hypothesis' predicted Hamming weight with the measured
// power at the S-box instant — which AfterImage's load tracking provides.
// With random timing the correlation peak vanishes, quantifying exactly
// how the side channel "improves the utility of the power attack" (§6.3).

// CPAResult reports one key-recovery attempt.
type CPAResult struct {
	// RecoveredKey is the argmax-correlation key-byte hypothesis.
	RecoveredKey byte
	// TrueKey is the generator's key byte.
	TrueKey byte
	// PeakCorrelation is the winning hypothesis' |r|.
	PeakCorrelation float64
	// RunnerUpCorrelation is the second-best |r| (the margin indicates
	// confidence).
	RunnerUpCorrelation float64
	Traces              int
}

// Success reports whether the key byte was recovered.
func (r CPAResult) Success() bool { return r.RecoveredKey == r.TrueKey }

// RunCPA mounts the CPA attack over n traces. When aligned is true the
// attacker samples each trace at its true S-box offset (AfterImage-provided
// timing); otherwise at a random instant.
func RunCPA(cfg Config, n int, aligned bool) CPAResult {
	gen := NewGenerator(cfg)
	pick := rand.New(rand.NewSource(cfg.Seed + 4242))

	samples := make([]float64, 0, n)
	plaintexts := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pt := byte(pick.Intn(256))
		tr := gen.Generate(pt)
		at := tr.TrueOffset
		if !aligned {
			at = pick.Intn(cfg.Samples)
		}
		samples = append(samples, tr.Samples[at])
		plaintexts = append(plaintexts, pt)
	}

	res := CPAResult{TrueKey: cfg.Key, Traces: n}
	model := make([]float64, n)
	for guess := 0; guess < 256; guess++ {
		for i, pt := range plaintexts {
			model[i] = float64(HammingWeight(SBox[pt^byte(guess)]))
		}
		r := stats.Pearson(model, samples)
		if r < 0 {
			r = -r
		}
		switch {
		case r > res.PeakCorrelation:
			res.RunnerUpCorrelation = res.PeakCorrelation
			res.PeakCorrelation = r
			res.RecoveredKey = byte(guess)
		case r > res.RunnerUpCorrelation:
			res.RunnerUpCorrelation = r
		}
	}
	return res
}
