// Package power models the §6.3 power-analysis companion experiment
// (Figure 16): synthetic per-cycle power traces of an AES first-round S-box
// lookup with Hamming-weight leakage, and the fixed-vs-random Welch t-test
// (TVLA) that separates an attacker who knows the operation's exact timing
// (via AfterImage load tracking) from one sampling at random instants.
//
// The paper collected cycle-accurate traces from a Rocket Chip RTL power
// flow; the substitution here is the standard HW leakage model — the
// t-test's behaviour under alignment versus misalignment is a property of
// the statistics, not of the silicon.
package power

import (
	"math/rand"

	"afterimage/internal/stats"
)

// SBox is the AES forward substitution box.
var SBox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// HammingWeight counts set bits.
func HammingWeight(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Config shapes the trace model.
type Config struct {
	// Samples is the trace length in samples (cycles).
	Samples int
	// NoiseStd is the Gaussian noise standard deviation per sample.
	NoiseStd float64
	// LeakScale converts Hamming weight deviation into power units.
	LeakScale float64
	// JitterSpan is the uniform range of the S-box operation's true offset
	// within the trace (process scheduling jitter the attacker must defeat).
	JitterSpan int
	// Key is the attacked key byte.
	Key byte
	// Seed drives the deterministic trace generator.
	Seed int64
}

// DefaultConfig mirrors the experiment's shape.
func DefaultConfig() Config {
	return Config{Samples: 200, NoiseStd: 1.0, LeakScale: 1.2, JitterSpan: 120, Key: 0x6B, Seed: 1}
}

// Trace is one synthetic power trace with its hidden ground-truth offset.
type Trace struct {
	Samples []float64
	// TrueOffset is where the S-box power sample actually sits — the value
	// AfterImage's load tracking recovers for the attacker.
	TrueOffset int
}

// Generator produces traces deterministically.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator builds a generator from the config.
func NewGenerator(cfg Config) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Generate emits one trace for the given plaintext byte.
func (g *Generator) Generate(plaintext byte) Trace {
	cfg := g.cfg
	t := Trace{Samples: make([]float64, cfg.Samples)}
	for i := range t.Samples {
		t.Samples[i] = g.rng.NormFloat64() * cfg.NoiseStd
	}
	t.TrueOffset = g.rng.Intn(cfg.JitterSpan + 1)
	hw := HammingWeight(SBox[plaintext^cfg.Key])
	t.Samples[t.TrueOffset] += cfg.LeakScale * (float64(hw) - 4.0)
	return t
}

// TTestPoint accumulates the TVLA fixed-vs-random statistic at a single
// sampling strategy.
type TTestPoint struct {
	fixed, random stats.Running
}

// Add incorporates a trace into the fixed or random population, sampling at
// the supplied offset (the attacker's choice of when to measure).
func (p *TTestPoint) Add(tr Trace, isFixed bool, sampleAt int) {
	if sampleAt < 0 || sampleAt >= len(tr.Samples) {
		return
	}
	v := tr.Samples[sampleAt]
	if isFixed {
		p.fixed.Add(v)
	} else {
		p.random.Add(v)
	}
}

// T returns the current Welch t statistic.
func (p *TTestPoint) T() float64 {
	t, _ := stats.WelchT(p.fixed, p.random)
	return t
}

// CurveConfig shapes a t-vs-#plaintexts curve run.
type CurveConfig struct {
	Power Config
	// Traces is the total number of traces (half fixed, half random).
	Traces int
	// Every controls the curve's sampling granularity in traces.
	Every int
	// FixedPlaintext is the TVLA fixed-class input.
	FixedPlaintext byte
}

// DefaultCurveConfig mirrors Figure 16's axis (thousands of plaintexts).
func DefaultCurveConfig() CurveConfig {
	return CurveConfig{Power: DefaultConfig(), Traces: 4000, Every: 200, FixedPlaintext: 0x00}
}

// Curve runs the fixed-vs-random t-test and returns (traceCounts, tValues).
// When aligned is true the attacker samples every trace at its true offset
// (the AfterImage-assisted attack of Figure 16a); otherwise at a random
// offset (Figure 16b).
func Curve(cfg CurveConfig, aligned bool) (counts []int, ts []float64) {
	gen := NewGenerator(cfg.Power)
	pick := rand.New(rand.NewSource(cfg.Power.Seed + 999))
	var pt TTestPoint
	for i := 0; i < cfg.Traces; i++ {
		isFixed := i%2 == 0
		ptxt := cfg.FixedPlaintext
		if !isFixed {
			ptxt = byte(pick.Intn(256))
		}
		tr := gen.Generate(ptxt)
		at := tr.TrueOffset
		if !aligned {
			at = pick.Intn(cfg.Power.Samples)
		}
		pt.Add(tr, isFixed, at)
		if (i+1)%cfg.Every == 0 {
			counts = append(counts, i+1)
			ts = append(ts, pt.T())
		}
	}
	return counts, ts
}
