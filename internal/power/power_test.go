package power

import (
	"math"
	"testing"

	"afterimage/internal/stats"
)

func TestSBoxIsPermutation(t *testing.T) {
	seen := map[byte]bool{}
	for _, v := range SBox {
		if seen[v] {
			t.Fatal("S-box repeats a value")
		}
		seen[v] = true
	}
	if SBox[0x00] != 0x63 || SBox[0x53] != 0xed {
		t.Fatal("S-box known values wrong")
	}
}

func TestHammingWeight(t *testing.T) {
	cases := map[byte]int{0x00: 0, 0xFF: 8, 0x0F: 4, 0x80: 1, 0xA5: 4}
	for in, want := range cases {
		if got := HammingWeight(in); got != want {
			t.Fatalf("HW(%#x) = %d, want %d", in, got, want)
		}
	}
}

func TestTraceShape(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	tr := g.Generate(0x42)
	if len(tr.Samples) != DefaultConfig().Samples {
		t.Fatal("wrong trace length")
	}
	if tr.TrueOffset < 0 || tr.TrueOffset > DefaultConfig().JitterSpan {
		t.Fatalf("true offset %d out of jitter range", tr.TrueOffset)
	}
}

func TestTracesDeterministicPerSeed(t *testing.T) {
	a := NewGenerator(DefaultConfig()).Generate(7)
	b := NewGenerator(DefaultConfig()).Generate(7)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("traces differ for equal seeds")
		}
	}
}

// TestFig16Separation is the headline property: the aligned t-test crosses
// the ±4.5 TVLA threshold decisively while the random-timing one stays
// within it (Figure 16a vs 16b).
func TestFig16Separation(t *testing.T) {
	cfg := DefaultCurveConfig()
	_, aligned := Curve(cfg, true)
	_, random := Curve(cfg, false)
	finalAligned := math.Abs(aligned[len(aligned)-1])
	finalRandom := math.Abs(random[len(random)-1])
	if finalAligned < 2*stats.TTestThreshold {
		t.Fatalf("aligned |t| = %.1f, want decisively past %.1f", finalAligned, stats.TTestThreshold)
	}
	if finalRandom > stats.TTestThreshold {
		t.Fatalf("random-timing |t| = %.1f crossed the threshold", finalRandom)
	}
}

func TestCurveMonotoneGrowth(t *testing.T) {
	cfg := DefaultCurveConfig()
	counts, ts := Curve(cfg, true)
	if len(counts) != cfg.Traces/cfg.Every {
		t.Fatalf("curve has %d points", len(counts))
	}
	// |t| grows roughly with sqrt(n): the last point must beat the first.
	if math.Abs(ts[len(ts)-1]) <= math.Abs(ts[0]) {
		t.Fatalf("|t| did not grow: first %.2f last %.2f", ts[0], ts[len(ts)-1])
	}
}

func TestTTestPointIgnoresOutOfRangeSamples(t *testing.T) {
	var p TTestPoint
	tr := Trace{Samples: []float64{1, 2, 3}}
	p.Add(tr, true, -1)
	p.Add(tr, false, 99)
	if p.T() != 0 {
		t.Fatal("out-of-range samples contributed")
	}
}

// TestCPARecoversKeyWithAlignedTiming is the exploitation counterpart of
// Figure 16: with AfterImage-provided timing, CPA recovers the key byte;
// with random timing it does not.
func TestCPARecoversKeyWithAlignedTiming(t *testing.T) {
	cfg := DefaultConfig()
	aligned := RunCPA(cfg, 3000, true)
	if !aligned.Success() {
		t.Fatalf("aligned CPA recovered %#x, want %#x (peak %.3f)",
			aligned.RecoveredKey, aligned.TrueKey, aligned.PeakCorrelation)
	}
	if aligned.PeakCorrelation <= aligned.RunnerUpCorrelation*1.2 {
		t.Fatalf("aligned CPA peak %.3f barely beats runner-up %.3f",
			aligned.PeakCorrelation, aligned.RunnerUpCorrelation)
	}
	random := RunCPA(cfg, 3000, false)
	if random.Success() && random.PeakCorrelation > 2*random.RunnerUpCorrelation {
		t.Fatal("random-timing CPA confidently recovered the key — alignment should matter")
	}
	if random.PeakCorrelation > aligned.PeakCorrelation {
		t.Fatalf("random peak %.3f above aligned %.3f", random.PeakCorrelation, aligned.PeakCorrelation)
	}
}

func TestCPADeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := RunCPA(cfg, 500, true)
	b := RunCPA(cfg, 500, true)
	if a != b {
		t.Fatal("CPA not deterministic per seed")
	}
}
