package evict

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// This file implements eviction-set *discovery* from timing alone — no
// /proc/pid/pagemap, no slice-hash knowledge. It is the group-testing
// reduction of Vila, Köpf and Morales (S&P'19), which the paper cites as
// the substrate for Prime+Probe when physical addresses are unavailable:
// starting from a candidate pool known to evict the target, repeatedly
// split into associativity+1 groups and drop any group whose removal keeps
// the remainder evicting. The result is a minimal eviction set.

// Discoverer finds eviction sets by timing.
type Discoverer struct {
	env *sim.Env
	// Pool is the candidate buffer (locked pages).
	pool *mem.Mapping
	// probeIP/testIP keep the discoverer's loads on reserved low-8 values.
	probeIP uint64
	// Tests counts evicts-target trials (the algorithm's cost metric).
	Tests int
}

// NewDiscoverer allocates a candidate pool of poolPages locked pages.
func NewDiscoverer(env *sim.Env, poolPages int, probeIP uint64) *Discoverer {
	return &Discoverer{
		env:     env,
		pool:    env.Mmap(uint64(poolPages)*mem.PageSize, mem.MapLocked),
		probeIP: probeIP,
	}
}

// candidates returns all pool lines that are page-offset congruent with the
// target (same set-index bits below the page boundary), the standard
// starting pool: only those can share the target's cache set.
func (d *Discoverer) candidates(target mem.VAddr) []mem.VAddr {
	off := uint64(target) & (mem.PageSize - 1) &^ (mem.LineSize - 1)
	var out []mem.VAddr
	for page := uint64(0); page < d.pool.Length/mem.PageSize; page++ {
		out = append(out, d.pool.Base+mem.VAddr(page*mem.PageSize+off))
	}
	return out
}

// evicts reports whether accessing every line of set evicts the target:
// load target, sweep the set, time the target again.
func (d *Discoverer) evicts(set []mem.VAddr, target mem.VAddr) bool {
	d.Tests++
	env := d.env
	env.WarmTLB(target)
	env.Load(d.probeIP, target)
	// Sweep in zigzag so the discoverer's own loads cannot train the
	// IP-stride entry they run under (see evict.Set.Prime).
	order := zigzag(len(set))
	for pass := 0; pass < 2; pass++ {
		for _, i := range order {
			env.WarmTLB(set[i])
			env.Load(d.probeIP+1, set[i])
		}
	}
	env.Fence()
	lat := env.TimeLoad(d.probeIP+2, target)
	return lat >= env.HitThreshold()
}

// Discover reduces the congruent candidate pool to a minimal eviction set
// for target. ways is the LLC associativity the attacker assumes (16 on the
// modelled parts). It fails when the pool is too small to evict the target
// at all.
func (d *Discoverer) Discover(target mem.VAddr, ways int) (*Set, error) {
	cand := d.candidates(target)
	if !d.evicts(cand, target) {
		return nil, fmt.Errorf("evict: candidate pool (%d lines) does not evict the target; enlarge it", len(cand))
	}
	// Group-testing reduction: while |cand| > ways, split into ways+1
	// groups; at least one group can be removed while preserving eviction
	// (pigeonhole: the ≤ways congruent lines cannot occupy all ways+1
	// groups).
	for len(cand) > ways {
		// Split into exactly ways+1 nearly-equal groups. The pigeonhole
		// argument needs all ways+1 of them: any `ways` congruent lines
		// cover at most `ways` groups, so one group is always removable.
		groups := ways + 1
		removed := false
		for g := 0; g < groups && len(cand) > ways; g++ {
			lo := g * len(cand) / groups
			hi := (g + 1) * len(cand) / groups
			if hi <= lo {
				continue
			}
			rest := make([]mem.VAddr, 0, len(cand)-(hi-lo))
			rest = append(rest, cand[:lo]...)
			rest = append(rest, cand[hi:]...)
			if d.evicts(rest, target) {
				cand = rest
				removed = true
				break // re-split the smaller set
			}
		}
		if !removed {
			return nil, fmt.Errorf("evict: reduction stuck at %d lines (noise?)", len(cand))
		}
	}
	// Classify the discovered set for reporting using the attacker's own
	// address space (purely informational; discovery never used it).
	llc := d.env.Machine().Mem.LLC
	pa, _ := d.env.Process().AS.Translate(cand[0])
	return &Set{
		Slice: llc.SliceOf(pa),
		Index: llc.SetOf(pa),
		Lines: cand,
	}, nil
}
