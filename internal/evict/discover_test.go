package evict

import (
	"testing"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// discoverPoolPages: a target's congruent lines occur once per 24 pages per
// slice on Haswell (1536-sets folding × 4 slices = 96 pages per congruent
// line); 16 ways need ≥ 16·96 lines plus slack.
const discoverPoolPages = 3072

func TestDiscoverFindsMinimalEvictionSet(t *testing.T) {
	m := sim.NewMachine(sim.Quiet(sim.Haswell(8)))
	env := m.Direct(m.NewProcess("a"))
	target := env.Mmap(mem.PageSize, mem.MapLocked).Base + 5*mem.LineSize
	d := NewDiscoverer(env, discoverPoolPages, 0x30_10e0)
	es, err := d.Discover(target, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Lines) != 16 {
		t.Fatalf("MES has %d lines", len(es.Lines))
	}
	// Every discovered line must be congruent with the target.
	llc := m.Mem.LLC
	tpa, _ := env.Process().AS.Translate(target)
	for _, v := range es.Lines {
		pa, _ := env.Process().AS.Translate(v)
		if llc.SliceOf(pa) != llc.SliceOf(tpa) || llc.SetOf(pa) != llc.SetOf(tpa) {
			t.Fatalf("discovered line %#x not congruent with target", uint64(v))
		}
	}
	// And it must actually evict the target.
	env.Load(0x99, target)
	for _, v := range es.Lines {
		env.Load(0x98, v)
		env.Load(0x97, v)
	}
	if env.Cached(target) {
		t.Fatal("discovered MES does not evict the target")
	}
	t.Logf("discovery used %d evicts-target trials", d.Tests)
}

func TestDiscoverFailsOnTinyPool(t *testing.T) {
	m := sim.NewMachine(sim.Quiet(sim.Haswell(9)))
	env := m.Direct(m.NewProcess("a"))
	target := env.Mmap(mem.PageSize, mem.MapLocked).Base
	d := NewDiscoverer(env, 32, 0x30_10e0)
	if _, err := d.Discover(target, 16); err == nil {
		t.Fatal("tiny pool discovered a MES")
	}
}
