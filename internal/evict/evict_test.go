package evict

import (
	"testing"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// haswellQuiet keeps eviction-set pools small (4 slices, 8 MB LLC).
func haswellQuiet(seed int64) *sim.Machine {
	return sim.NewMachine(sim.Quiet(sim.Haswell(seed)))
}

const poolPages = 4096

func TestBuilderRejectsEmptyPool(t *testing.T) {
	m := haswellQuiet(1)
	env := m.Direct(m.NewProcess("a"))
	if _, err := NewBuilder(env, 0, 1, 2); err == nil {
		t.Fatal("zero pool accepted")
	}
}

func TestEvictionSetCongruence(t *testing.T) {
	m := haswellQuiet(2)
	env := m.Direct(m.NewProcess("a"))
	b, err := NewBuilder(env, poolPages, 0x10e0, 0x20e0)
	if err != nil {
		t.Fatal(err)
	}
	victim := env.Mmap(mem.PageSize, mem.MapLocked)
	pa, _ := env.Process().AS.Translate(victim.Base)
	es, err := b.ForAddress(pa)
	if err != nil {
		t.Fatal(err)
	}
	llc := m.Mem.LLC
	if len(es.Lines) != llc.Config().Ways {
		t.Fatalf("MES has %d lines, want associativity %d", len(es.Lines), llc.Config().Ways)
	}
	for _, v := range es.Lines {
		lpa, ok := env.Process().AS.Translate(v)
		if !ok {
			t.Fatal("MES line unmapped")
		}
		if llc.SliceOf(lpa) != es.Slice || llc.SetOf(lpa) != es.Index {
			t.Fatalf("line %#x not congruent with target", uint64(v))
		}
	}
	if es.Slice != llc.SliceOf(pa) || es.Index != llc.SetOf(pa) {
		t.Fatal("MES built for the wrong set")
	}
}

func TestPrimeEvictsVictimLine(t *testing.T) {
	m := haswellQuiet(3)
	env := m.Direct(m.NewProcess("a"))
	b, err := NewBuilder(env, poolPages, 0x10e0, 0x20e0)
	if err != nil {
		t.Fatal(err)
	}
	victim := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(victim.Base)
	env.Load(0x99, victim.Base) // victim line cached
	pa, _ := env.Process().AS.Translate(victim.Base)
	es, err := b.ForAddress(pa)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range es.Lines {
		env.WarmTLB(line)
	}
	es.Prime(env)
	if env.Cached(victim.Base) {
		t.Fatal("victim line survived a full prime (inclusivity should evict it)")
	}
}

func TestProbeDetectsVictimAccess(t *testing.T) {
	m := haswellQuiet(4)
	env := m.Direct(m.NewProcess("a"))
	b, err := NewBuilder(env, poolPages, 0x10e0, 0x20e0)
	if err != nil {
		t.Fatal(err)
	}
	victim := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(victim.Base)
	pa, _ := env.Process().AS.Translate(victim.Base)
	es, err := b.ForAddress(pa)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range es.Lines {
		env.WarmTLB(line)
	}
	es.Prime(env)
	quiescent := es.Probe(env)
	es.Prime(env)
	env.Load(0x99, victim.Base) // victim touches the monitored set
	disturbed := es.Probe(env)
	if disturbed <= quiescent+100 {
		t.Fatalf("probe did not see the victim: quiet=%d disturbed=%d", quiescent, disturbed)
	}
}

func TestForVictimPageCoversAllLines(t *testing.T) {
	m := haswellQuiet(5)
	env := m.Direct(m.NewProcess("a"))
	b, err := NewBuilder(env, poolPages, 0x10e0, 0x20e0)
	if err != nil {
		t.Fatal(err)
	}
	victim := env.Mmap(mem.PageSize, mem.MapLocked)
	pa, _ := env.Process().AS.Translate(victim.Base)
	sets, err := b.ForVictimPage(pa)
	if err != nil {
		t.Fatalf("pool too small for full-page coverage: %v", err)
	}
	if len(sets) != 64 {
		t.Fatalf("covered %d lines", len(sets))
	}
	llc := m.Mem.LLC
	for i, es := range sets {
		linePA := mem.PAddr(pa.Frame()<<mem.PageShift + uint64(i*mem.LineSize))
		if es.Slice != llc.SliceOf(linePA) || es.Index != llc.SetOf(linePA) {
			t.Fatalf("line %d monitored by wrong set", i)
		}
	}
	if b.PoolPages() != poolPages {
		t.Fatalf("PoolPages = %d", b.PoolPages())
	}
}

func TestTooSmallPoolErrors(t *testing.T) {
	m := haswellQuiet(6)
	env := m.Direct(m.NewProcess("a"))
	b, err := NewBuilder(env, 8, 0x10e0, 0x20e0) // far too small for 16 ways
	if err != nil {
		t.Fatal(err)
	}
	victim := env.Mmap(mem.PageSize, mem.MapLocked)
	pa, _ := env.Process().AS.Translate(victim.Base)
	if _, err := b.ForAddress(pa); err == nil {
		t.Fatal("undersized pool built a MES")
	}
}
