// Package evict constructs minimal eviction sets (MESs) for Prime+Probe on
// the sliced last-level cache. Like the paper's artifact (appendix A.4), it
// assumes the attacker can translate its own virtual addresses to physical
// ones (/proc/pid/pagemap with admin capability) and knows the slice-
// selection hash of the microarchitecture (Irazoqui et al. for Haswell), so
// eviction sets are computed, not searched.
package evict

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// Set is one minimal eviction set: exactly associativity-many lines mapping
// to a single (slice, set) pair of the LLC.
type Set struct {
	Slice int
	Index uint64
	Lines []mem.VAddr

	// order caches the zigzag visit order (derived from len(Lines) only),
	// so the prime/probe hot loops do not rebuild it every call.
	order []int
}

// Builder allocates a locked memory pool in the attacker's address space and
// carves eviction sets out of it.
type Builder struct {
	env  *sim.Env
	pool *mem.Mapping
	// groups indexes pool lines densely by global (slice, set) number
	// (slice*nsets+set): classification and lookup are pure index arithmetic
	// instead of a hashed map over a 128-bit key, which profiling showed
	// dominated the whole Prime+Probe benchmark.
	groups [][]mem.VAddr
	nsets  uint64
	primeIP uint64
	probeIP uint64
}

// NewBuilder mmaps a locked pool of the given page count and pre-classifies
// every line. Pool sizing: one line lands in a given (slice, set) with
// probability 1/(sets·slices/64), so covering a 16-way set needs a few
// thousand pages; the artifact suggests enlarging the pool when building
// fails.
func NewBuilder(env *sim.Env, poolPages int, primeIP, probeIP uint64) (*Builder, error) {
	if poolPages <= 0 {
		return nil, fmt.Errorf("evict: pool must have at least one page")
	}
	b := &Builder{
		env:     env,
		pool:    env.Mmap(uint64(poolPages)*mem.PageSize, mem.MapLocked),
		primeIP: primeIP,
		probeIP: probeIP,
	}
	llc := env.Machine().Mem.LLC
	as := env.Process().AS
	b.nsets = llc.NumSets()
	ngroups := llc.NumSlices() * int(b.nsets)
	// Two passes: count each group's population, carve one contiguous
	// backing array into per-group sub-slices, then fill. Line order within
	// a group (ascending pool offset) matches the old append order exactly.
	counts := make([]int, ngroups)
	gidx := make([]int32, b.pool.Length/mem.LineSize)
	for off, li := uint64(0), 0; off < b.pool.Length; off, li = off+mem.LineSize, li+1 {
		pa, ok := as.Translate(b.pool.Base + mem.VAddr(off))
		if !ok {
			return nil, fmt.Errorf("evict: pool page unexpectedly unmapped")
		}
		g := llc.SliceOf(pa)*int(b.nsets) + int(llc.SetOf(pa))
		gidx[li] = int32(g)
		counts[g]++
	}
	backing := make([]mem.VAddr, b.pool.Length/mem.LineSize)
	b.groups = make([][]mem.VAddr, ngroups)
	next := 0
	for g, n := range counts {
		b.groups[g] = backing[next : next : next+n]
		next += n
	}
	for off, li := uint64(0), 0; off < b.pool.Length; off, li = off+mem.LineSize, li+1 {
		g := gidx[li]
		b.groups[g] = append(b.groups[g], b.pool.Base+mem.VAddr(off))
	}
	return b, nil
}

// ForAddress returns a minimal eviction set congruent with the physical
// address pa (same LLC slice and set).
func (b *Builder) ForAddress(pa mem.PAddr) (*Set, error) {
	llc := b.env.Machine().Mem.LLC
	slice, index := llc.SliceOf(pa), llc.SetOf(pa)
	ways := llc.Config().Ways
	lines := b.groups[slice*int(b.nsets)+int(index)]
	if len(lines) < ways {
		return nil, fmt.Errorf("evict: pool has %d/%d congruent lines for slice %d set %d; enlarge the pool",
			len(lines), ways, slice, index)
	}
	return &Set{Slice: slice, Index: index, Lines: append([]mem.VAddr(nil), lines[:ways]...)}, nil
}

// ForVictimPage builds one eviction set per cache line of the page holding
// the given physical address, in line order — the monitoring configuration
// of Figure 13 (64 sets spanning a 4 KiB page).
func (b *Builder) ForVictimPage(pagePA mem.PAddr) ([]*Set, error) {
	base := mem.PAddr(pagePA.Frame() << mem.PageShift)
	sets := make([]*Set, 0, mem.PageSize/mem.LineSize)
	for off := uint64(0); off < mem.PageSize; off += mem.LineSize {
		s, err := b.ForAddress(base + mem.PAddr(off))
		if err != nil {
			return nil, fmt.Errorf("evict: line %d: %w", off/mem.LineSize, err)
		}
		sets = append(sets, s)
	}
	return sets, nil
}

// zigzag returns the indices 0..n-1 in the order 0, n-1, 1, n-2, …: every
// consecutive address delta over equally spaced lines is distinct, so the
// prime/probe loops can never saturate the IP-stride entry they run under
// (congruent lines sit at regular intervals in the pool, and a monotone
// sweep would train the prefetcher and spray phantom prefetches).
func zigzag(n int) []int {
	order := make([]int, 0, n)
	lo, hi := 0, n-1
	for lo <= hi {
		order = append(order, lo)
		if lo != hi {
			order = append(order, hi)
		}
		lo++
		hi--
	}
	return order
}

// zigzagOrder returns the set's cached zigzag visit order, rebuilding it if
// the line count changed since it was computed.
func (s *Set) zigzagOrder() []int {
	if len(s.order) != len(s.Lines) {
		s.order = zigzag(len(s.Lines))
	}
	return s.order
}

// Prime loads every line of the set, filling the monitored LLC set with
// attacker data. Lines are touched twice in zigzag order so the whole set
// survives its own insertion churn without training the prefetcher.
func (s *Set) Prime(env *sim.Env) {
	order := s.zigzagOrder()
	for _, i := range order {
		env.Load(ipFor(s, 0), s.Lines[i])
	}
	for _, i := range order {
		env.Load(ipFor(s, 1), s.Lines[i])
	}
}

// Probe re-touches every line (zigzag order, see Prime) and returns the
// summed measured latency. A large value means some lines were evicted —
// i.e. the victim touched this set.
func (s *Set) Probe(env *sim.Env) uint64 {
	var total uint64
	for _, i := range s.zigzagOrder() {
		total += env.TimeLoad(ipFor(s, 2), s.Lines[i])
	}
	return total
}

// ipFor derives distinct probe IPs per set so the attacker's own P+P loads
// do not collide with trained low-8-bit entries: bits 8+ vary per set and
// the low byte is pinned to a reserved value.
func ipFor(s *Set, role uint64) uint64 {
	return 0x40_0000 | uint64(s.Index)<<16 | uint64(s.Slice)<<9 | role<<8 | 0xE0
}

// PoolPages exposes the backing pool size (for diagnostics).
func (b *Builder) PoolPages() int { return int(b.pool.Length / mem.PageSize) }
