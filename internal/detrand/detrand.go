// Package detrand wraps math/rand sources with draw counting so RNG state
// becomes snapshottable. math/rand exposes no way to serialise a generator's
// position, but every generator here is (a) seeded from a known value and
// (b) consumed strictly sequentially, so its full state is (seed, number of
// draws): restoring is reseeding and discarding that many draws. This is what
// lets Machine.Snapshot capture the jitter/noise RNGs and Machine.Restore
// resume them mid-stream, keeping replayed runs bit-identical.
//
// The wrapper is stream-identical to rand.New(rand.NewSource(seed)): it
// implements rand.Source64 and delegates both Int63 and Uint64 to the
// underlying runtime source, so swapping it in changes no simulated outcome.
package detrand

import "math/rand"

// Source is a counting rand.Source64. Not safe for concurrent use — exactly
// like the rand.Rand values it backs.
type Source struct {
	seed  int64
	src   rand.Source64
	draws uint64
}

// NewSource builds a counting source with the given seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// New builds a rand.Rand backed by a counting source, returning both. The
// Rand's value stream is identical to rand.New(rand.NewSource(seed)).
//
// Callers must not use Rand.Read: it buffers bytes internally, which the
// (seed, draws) state does not capture. Every other Rand method consumes
// whole source draws and restores exactly.
func New(seed int64) (*rand.Rand, *Source) {
	s := NewSource(seed)
	return rand.New(s), s
}

// Int63 draws via the underlying source, counting the draw.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 draws via the underlying source, counting the draw.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed reseeds and resets the draw counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// SeedValue returns the seed the source was last seeded with.
func (s *Source) SeedValue() int64 { return s.seed }

// Draws reports how many values have been drawn since the last (re)seed —
// together with the seed, the source's complete serialisable state.
func (s *Source) Draws() uint64 { return s.draws }

// Restore rewinds (or fast-forwards) the source to an absolute position:
// reseed with the original seed, then discard draws values. Afterwards the
// stream continues exactly as it did when Draws() last reported that count.
func (s *Source) Restore(draws uint64) {
	s.src.Seed(s.seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}

// Clone returns an independent source at the same stream position: same
// seed, same draw count, separate underlying generator. The clone and the
// original produce identical subsequent streams without sharing state —
// the primitive Machine.Fork uses to make forks RNG-independent.
func (s *Source) Clone() *Source {
	c := NewSource(s.seed)
	c.Restore(s.draws)
	return c
}
