package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if got := r.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	// Unbiased variance of this classic sample is 32/7.
	if got := r.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v", got)
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var whole, left, right Running
		for _, x := range a {
			clean := math.Mod(x, 1e6)
			if math.IsNaN(clean) {
				clean = 0
			}
			whole.Add(clean)
			left.Add(clean)
		}
		for _, x := range b {
			clean := math.Mod(x, 1e6)
			if math.IsNaN(clean) {
				clean = 0
			}
			whole.Add(clean)
			right.Add(clean)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return math.Abs(left.Mean()-whole.Mean()) < 1e-6*(1+math.Abs(whole.Mean())) &&
			math.Abs(left.Variance()-whole.Variance()) < 1e-4*(1+whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTSeparatesDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b Running
	for i := 0; i < 2000; i++ {
		a.Add(10 + rng.NormFloat64())
		b.Add(10.5 + rng.NormFloat64())
	}
	tv, df := WelchT(a, b)
	if tv > -TTestThreshold {
		t.Fatalf("t = %v, want strongly negative", tv)
	}
	if df < 1000 {
		t.Fatalf("df = %v suspiciously small", df)
	}
}

func TestWelchTNullHoversNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b Running
	for i := 0; i < 5000; i++ {
		a.Add(rng.NormFloat64())
		b.Add(rng.NormFloat64())
	}
	tv, _ := WelchT(a, b)
	if math.Abs(tv) > TTestThreshold {
		t.Fatalf("null-hypothesis t = %v crossed the leakage threshold", tv)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	var a, b Running
	if tv, df := WelchT(a, b); tv != 0 || df != 0 {
		t.Fatal("empty samples must give 0,0")
	}
	a.Add(1)
	a.Add(1)
	b.Add(1)
	b.Add(1)
	if tv, _ := WelchT(a, b); tv != 0 {
		t.Fatalf("zero-variance equal means gave t=%v", tv)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 50; i++ {
		h.Add(5) // bucket 0
	}
	for i := 0; i < 50; i++ {
		h.Add(95) // bucket 9
	}
	h.Add(-3)
	h.Add(200)
	if h.Count() != 102 {
		t.Fatalf("count = %d", h.Count())
	}
	if p := h.Percentile(25); p != 5 {
		t.Fatalf("p25 = %v", p)
	}
	if p := h.Percentile(75); p != 95 {
		t.Fatalf("p75 = %v", p)
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestSuccessRate(t *testing.T) {
	var s SuccessRate
	if s.Rate() != 0 {
		t.Fatal("empty rate nonzero")
	}
	for i := 0; i < 97; i++ {
		s.Record(true)
	}
	for i := 0; i < 3; i++ {
		s.Record(false)
	}
	if s.Percent() != 97 {
		t.Fatalf("percent = %v", s.Percent())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestThreshold(t *testing.T) {
	thr := Threshold(120)
	if !thr.Hit(80) || thr.Hit(200) || thr.Hit(120) {
		t.Fatal("threshold classification wrong")
	}
}

func TestOtsuThresholdSeparatesBimodal(t *testing.T) {
	var xs []uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		xs = append(xs, uint64(40+rng.Intn(20)))  // hits
		xs = append(xs, uint64(200+rng.Intn(40))) // misses
	}
	thr := OtsuThreshold(xs)
	if thr < 60 || thr > 200 {
		t.Fatalf("threshold %v outside the gap", thr)
	}
}

func TestOtsuDegenerate(t *testing.T) {
	if OtsuThreshold(nil) != 0 {
		t.Fatal("nil input")
	}
	if OtsuThreshold([]uint64{5}) != 0 {
		t.Fatal("single sample")
	}
}

func TestMode(t *testing.T) {
	if _, ok := Mode(nil); ok {
		t.Fatal("mode of empty")
	}
	if v, _ := Mode([]int{3, 1, 3, 2, 3, 1}); v != 3 {
		t.Fatalf("mode = %d", v)
	}
	if v, _ := Mode([]int{2, 1}); v != 1 {
		t.Fatalf("tie-break mode = %d, want smaller value", v)
	}
}

func TestMeanUint64(t *testing.T) {
	if MeanUint64(nil) != 0 {
		t.Fatal("mean of empty")
	}
	if got := MeanUint64([]uint64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestPearson(t *testing.T) {
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); got < 0.999 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); got > -0.999 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch not zero")
	}
	if Pearson([]float64{5, 5, 5}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero variance not zero")
	}
	rng := rand.New(rand.NewSource(9))
	var a, b []float64
	for i := 0; i < 3000; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64())
	}
	if r := Pearson(a, b); math.Abs(r) > 0.1 {
		t.Fatalf("independent series correlate at %v", r)
	}
}
