// Package stats provides the statistical machinery shared by the AfterImage
// experiments: running moments, latency histograms, hit/miss thresholding,
// success-rate accounting and Welch's t-test as used by the leakage
// assessment of Figure 16.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming first and second moments of a sample.
// The zero value is an empty accumulator ready for use.
type Running struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the mean (Welford)
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddN incorporates every observation in xs.
func (r *Running) AddN(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N reports the number of observations seen so far.
func (r *Running) N() int { return r.n }

// Mean reports the sample mean, or 0 for an empty accumulator.
func (r *Running) Mean() float64 { return r.mean }

// Variance reports the unbiased sample variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}

// WelchT computes Welch's two-sample t statistic and the Welch–Satterthwaite
// degrees of freedom for samples summarised by a and b. It returns (0, 0)
// when either sample has fewer than two observations or both variances are
// zero.
func WelchT(a, b Running) (t, df float64) {
	if a.n < 2 || b.n < 2 {
		return 0, 0
	}
	va := a.Variance() / float64(a.n)
	vb := b.Variance() / float64(b.n)
	if va+vb == 0 {
		return 0, 0
	}
	t = (a.Mean() - b.Mean()) / math.Sqrt(va+vb)
	num := (va + vb) * (va + vb)
	den := va*va/float64(a.n-1) + vb*vb/float64(b.n-1)
	if den == 0 {
		return t, 0
	}
	return t, num / den
}

// TTestThreshold is the PASS/FAIL leakage threshold proposed by the TVLA
// methodology and used by the paper (|t| > 4.5 indicates leakage).
const TTestThreshold = 4.5

// Histogram is a fixed-width latency histogram.
type Histogram struct {
	Lo, Hi   float64 // inclusive range covered by the buckets
	Buckets  []int
	width    float64
	under    int
	over     int
	observed Running
}

// NewHistogram builds a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.observed.Add(x)
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		h.Buckets[int((x-h.Lo)/h.width)]++
	}
}

// Count reports the total number of observations, including out-of-range ones.
func (h *Histogram) Count() int { return h.observed.N() }

// Mean reports the mean of all observations.
func (h *Histogram) Mean() float64 { return h.observed.Mean() }

// Percentile returns an approximation of the p-th percentile (0..100) using
// bucket midpoints; out-of-range mass is clamped to the range edges.
func (h *Histogram) Percentile(p float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int(math.Ceil(p / 100 * float64(total)))
	if target < 1 {
		target = 1
	}
	seen := h.under
	if seen >= target {
		return h.Lo
	}
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			return h.Lo + (float64(i)+0.5)*h.width
		}
	}
	return h.Hi
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) n=%d mean=%.1f p50=%.1f p99=%.1f",
		h.Lo, h.Hi, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99))
}

// SuccessRate tracks trial outcomes and reports the empirical success ratio.
type SuccessRate struct {
	Trials, Successes int
}

// Record adds one trial outcome.
func (s *SuccessRate) Record(ok bool) {
	s.Trials++
	if ok {
		s.Successes++
	}
}

// Rate reports successes/trials, or 0 when no trial was recorded.
func (s *SuccessRate) Rate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Successes) / float64(s.Trials)
}

// Percent reports the rate as a percentage.
func (s *SuccessRate) Percent() float64 { return s.Rate() * 100 }

// String renders "97.5% (195/200)".
func (s *SuccessRate) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", s.Percent(), s.Successes, s.Trials)
}

// Threshold classifies latencies into hits (below) and misses (at or above).
type Threshold float64

// Hit reports whether the latency is classified as a cache hit.
func (t Threshold) Hit(latency uint64) bool { return float64(latency) < float64(t) }

// OtsuThreshold derives a separating threshold from a bimodal latency sample
// by exhaustive minimisation of intra-class variance (Otsu's method over the
// sorted sample). It returns the midpoint of the best split, or 0 for fewer
// than two observations.
func OtsuThreshold(latencies []uint64) Threshold {
	if len(latencies) < 2 {
		return 0
	}
	xs := make([]float64, len(latencies))
	for i, l := range latencies {
		xs[i] = float64(l)
	}
	sort.Float64s(xs)
	// Prefix sums for O(n) split evaluation.
	prefix := make([]float64, len(xs)+1)
	prefix2 := make([]float64, len(xs)+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
		prefix2[i+1] = prefix2[i] + x*x
	}
	best, bestCost := 1, math.Inf(1)
	for k := 1; k < len(xs); k++ {
		n1, n2 := float64(k), float64(len(xs)-k)
		s1, s2 := prefix[k], prefix[len(xs)]-prefix[k]
		q1, q2 := prefix2[k], prefix2[len(xs)]-prefix2[k]
		cost := (q1 - s1*s1/n1) + (q2 - s2*s2/n2)
		if cost < bestCost {
			bestCost, best = cost, k
		}
	}
	return Threshold((xs[best-1] + xs[best]) / 2)
}

// Mode returns the most frequent value of xs, breaking ties toward the
// smaller value. It returns (0, false) for an empty input.
func Mode(xs []int) (int, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	counts := make(map[int]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	bestV, bestC := 0, -1
	for v, c := range counts {
		if c > bestC || (c == bestC && v < bestV) {
			bestV, bestC = v, c
		}
	}
	return bestV, true
}

// MeanUint64 is a convenience mean over raw latency samples.
func MeanUint64(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Pearson computes the sample correlation coefficient of two equal-length
// series; it returns 0 for degenerate inputs (mismatched lengths, fewer
// than two points, or zero variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	var sx, sy Running
	sx.AddN(xs)
	sy.AddN(ys)
	mx, my := sx.Mean(), sy.Mean()
	var cov float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
	}
	den := sx.StdDev() * sy.StdDev() * float64(len(xs)-1)
	if den == 0 {
		return 0
	}
	return cov / den
}
