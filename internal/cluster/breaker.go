package cluster

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is one circuit-breaker phase.
type BreakerState int

// The breaker phases.
const (
	// BreakerClosed passes all traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome decides
	// between closing (success) and re-opening (failure).
	BreakerHalfOpen
)

// String names the state (also the status-endpoint spelling).
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a per-worker circuit breaker. Closed until Threshold
// consecutive failures, then open for Cooldown, then half-open: one probe
// request (a dispatch or a heartbeat) is admitted, and its outcome either
// closes the breaker or re-opens it for another full cooldown.
//
// Every method takes the current time explicitly, so state transitions are a
// pure function of the call sequence — the boundary tests drive the breaker
// through exact instants with no clock in the loop.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	// onTransition, when set, observes every state change (telemetry).
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a closed breaker. threshold <= 0 means 3; cooldown <= 0
// means 2s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// OnTransition installs an observer invoked (under the breaker's lock) on
// every state change — the telemetry hook for breakers embedded outside this
// package, like the store's write-health breaker.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// transition flips the state and notifies the observer. Callers hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// resolve applies the time-driven open → half-open transition. Callers hold
// b.mu.
func (b *Breaker) resolve(now time.Time) {
	if b.state == BreakerOpen && !now.Before(b.openedAt.Add(b.cooldown)) {
		b.transition(BreakerHalfOpen)
		b.probing = false
	}
}

// State reports the phase at the given instant (open breakers whose cooldown
// has elapsed report — and become — half-open).
func (b *Breaker) State(now time.Time) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolve(now)
	return b.state
}

// Allow reports whether one request may proceed now. Closed always allows;
// open never; half-open allows exactly one in-flight probe — callers that
// get true MUST report the outcome via Success or Failure, or the breaker
// stays probing forever.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolve(now)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Success records a request that completed: closed breakers reset their
// failure run, half-open breakers close.
func (b *Breaker) Success(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolve(now)
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.probing = false
		b.failures = 0
		b.transition(BreakerClosed)
	}
}

// Failure records a request that failed: closed breakers open at the
// threshold, half-open breakers re-open for a fresh cooldown.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolve(now)
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = now
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = now
		b.transition(BreakerOpen)
	}
}
