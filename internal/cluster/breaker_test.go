package cluster

import (
	"testing"
	"time"
)

// bop is one scripted breaker interaction at a fixed instant.
type bop struct {
	at        time.Duration // offset from t0
	op        string        // "fail" | "ok" | "allow" | "deny" | "state"
	wantState BreakerState  // for op "state"
}

// TestBreakerBoundaryTables drives the closed/open/half-open machine through
// exact instants — every method takes the clock explicitly, so each table is
// a pure replay with no sleeps. The boundary rows pin the edges: the
// threshold-th failure (not threshold+1) opens, the cooldown expires at
// exactly openedAt+cooldown (not a nanosecond before), and half-open admits
// exactly one probe.
func TestBreakerBoundaryTables(t *testing.T) {
	const cooldown = 100 * time.Millisecond
	cases := []struct {
		name      string
		threshold int
		script    []bop
	}{
		{
			name:      "opens at exactly threshold failures",
			threshold: 3,
			script: []bop{
				{at: 0, op: "fail"},
				{at: 1, op: "fail"},
				{at: 2, op: "state", wantState: BreakerClosed},
				{at: 3, op: "allow"},
				{at: 4, op: "fail"}, // third consecutive failure
				{at: 5, op: "state", wantState: BreakerOpen},
				{at: 6, op: "deny"},
			},
		},
		{
			name:      "success resets the consecutive-failure run",
			threshold: 2,
			script: []bop{
				{at: 0, op: "fail"},
				{at: 1, op: "ok"}, // run broken
				{at: 2, op: "fail"},
				{at: 3, op: "state", wantState: BreakerClosed},
				{at: 4, op: "fail"}, // now two consecutive
				{at: 5, op: "state", wantState: BreakerOpen},
			},
		},
		{
			name:      "cooldown boundary: open until the exact instant",
			threshold: 1,
			script: []bop{
				{at: 0, op: "fail"}, // opens at t0
				{at: cooldown - time.Nanosecond, op: "state", wantState: BreakerOpen},
				{at: cooldown - time.Nanosecond, op: "deny"},
				{at: cooldown, op: "state", wantState: BreakerHalfOpen},
			},
		},
		{
			name:      "half-open admits exactly one probe",
			threshold: 1,
			script: []bop{
				{at: 0, op: "fail"},
				{at: cooldown, op: "allow"},    // the probe
				{at: cooldown + 1, op: "deny"}, // second caller held back
				{at: cooldown + 2, op: "deny"}, // still probing
				{at: cooldown + 3, op: "ok"},   // probe succeeded
				{at: cooldown + 4, op: "state", wantState: BreakerClosed},
				{at: cooldown + 5, op: "allow"}, // closed passes freely again
				{at: cooldown + 6, op: "allow"},
			},
		},
		{
			name:      "failed probe re-opens for a fresh cooldown",
			threshold: 1,
			script: []bop{
				{at: 0, op: "fail"},
				{at: cooldown, op: "allow"}, // probe admitted
				{at: cooldown + 1, op: "fail"},
				{at: cooldown + 2, op: "state", wantState: BreakerOpen},
				// The fresh cooldown runs from the probe failure, not t0.
				{at: 2*cooldown - time.Nanosecond, op: "state", wantState: BreakerOpen},
				{at: cooldown + 1 + cooldown, op: "state", wantState: BreakerHalfOpen},
			},
		},
		{
			name:      "closed success is a no-op on state",
			threshold: 2,
			script: []bop{
				{at: 0, op: "ok"},
				{at: 1, op: "ok"},
				{at: 2, op: "state", wantState: BreakerClosed},
				{at: 3, op: "allow"},
			},
		},
	}

	t0 := time.Unix(1_700_000_000, 0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(tc.threshold, cooldown)
			for i, s := range tc.script {
				now := t0.Add(s.at)
				switch s.op {
				case "fail":
					b.Failure(now)
				case "ok":
					b.Success(now)
				case "allow":
					if !b.Allow(now) {
						t.Fatalf("step %d (t0+%s): Allow = false, want true (state %s)", i, s.at, b.State(now))
					}
				case "deny":
					if b.Allow(now) {
						t.Fatalf("step %d (t0+%s): Allow = true, want false (state %s)", i, s.at, b.State(now))
					}
				case "state":
					if got := b.State(now); got != s.wantState {
						t.Fatalf("step %d (t0+%s): state = %s, want %s", i, s.at, got, s.wantState)
					}
				default:
					t.Fatalf("bad op %q", s.op)
				}
			}
		})
	}
}

// TestBreakerTransitionObserver: every state change is reported exactly once
// with the correct from/to pair — the coordinator's telemetry hook.
func TestBreakerTransitionObserver(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	b := NewBreaker(1, cooldown)
	var got [][2]BreakerState
	b.onTransition = func(from, to BreakerState) { got = append(got, [2]BreakerState{from, to}) }

	t0 := time.Unix(1_700_000_000, 0)
	b.Failure(t0)             // closed → open
	b.State(t0.Add(cooldown)) // open → half-open (lazy resolve)
	if !b.Allow(t0.Add(cooldown)) {
		t.Fatal("half-open probe not admitted")
	}
	b.Success(t0.Add(cooldown + 1)) // half-open → closed

	want := [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(got) != len(want) {
		t.Fatalf("observed %d transitions, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d: %s→%s, want %s→%s",
				i, got[i][0], got[i][1], want[i][0], want[i][1])
		}
	}
}

// TestBreakerDefaults: out-of-range constructor arguments fall back to the
// documented defaults rather than producing a breaker that never opens.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != 3 || b.cooldown != 2*time.Second {
		t.Fatalf("defaults: threshold %d cooldown %s, want 3 / 2s", b.threshold, b.cooldown)
	}
}
