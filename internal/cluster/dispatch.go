package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"afterimage/internal/obslog"
	"afterimage/internal/runner"
)

// Attempt is one dispatch attempt's record — the failover audit trail that
// rides into the campaign's span tree, showing which worker ran each attempt
// and why the coordinator moved on.
type Attempt struct {
	// Worker is the worker id, or "local" for the degradation path.
	Worker string `json:"worker"`
	// Outcome is ok | hedge-win | error | canceled | local.
	Outcome string `json:"outcome"`
	// Hedge marks a straggler re-dispatch rather than a primary request.
	Hedge bool `json:"hedge,omitempty"`
	// Err carries the failure detail for error outcomes.
	Err string `json:"err,omitempty"`
}

// Result is one completed dispatch.
type Result struct {
	// Body is the job's result bytes — byte-identical regardless of which
	// worker (or the local path) produced them.
	Body []byte
	// Mode is "worker" or "local".
	Mode string
	// Worker is the id of the worker that produced Body ("local" when
	// degraded).
	Worker string
	// Attempts is the full per-attempt audit trail, in dispatch order.
	Attempts []Attempt
}

// dispatchError is a classified worker failure.
type dispatchError struct {
	msg       string
	permanent bool // the worker answered and rejected the job (4xx)
}

func (e *dispatchError) Error() string { return e.msg }

// isPermanent reports whether err is a worker-side rejection no other worker
// would answer differently.
func isPermanent(err error) bool {
	var de *dispatchError
	return errors.As(err, &de) && de.permanent
}

// Dispatch runs one job (key, payload) through the pool: rendezvous-ranked
// failover with deterministic jittered backoff between rounds, a hedged
// second request once the primary outlives the latency-percentile delay,
// and local degradation when no worker is dispatchable or every round
// failed. The returned Result's Body is byte-identical whichever path
// produced it; Attempts records every worker touched and why.
func (c *Coordinator) Dispatch(ctx context.Context, key string, payload []byte) (*Result, error) {
	c.dispatches.Inc()
	var attempts []Attempt
	permanentStop := false

	for round := 0; round < c.cfg.DispatchRounds && !permanentStop; round++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		cands := c.candidates(key)
		if len(cands) == 0 {
			break // nobody to try: degrade immediately
		}
		now := c.now()
		primary, idx := c.admitPrimary(cands, round, now)
		if primary == nil {
			break // breakers ate every candidate
		}
		var hedge *worker
		for off := 1; off < len(cands); off++ {
			if w := cands[(idx+off)%len(cands)]; w != primary {
				hedge = w
				break
			}
		}

		body, winner, recs, err := c.raceAttempt(ctx, key, payload, primary, hedge)
		attempts = append(attempts, recs...)
		if err == nil {
			c.dispatchOK.Inc()
			return &Result{Body: body, Mode: "worker", Worker: winner.id, Attempts: attempts}, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if isPermanent(err) {
			// A worker answered and rejected the job; no sibling will
			// disagree, so stop failing over — the local run is the
			// authoritative tiebreak (version skew on a worker must not
			// fail a campaign the coordinator can run itself).
			permanentStop = true
			c.log.Ctx(ctx).Warn("cluster: worker rejected job; degrading to local",
				obslog.F("key", key), obslog.F("err", err))
			break
		}
		c.failovers.Inc()
		c.log.Ctx(ctx).Warn("cluster: dispatch round failed; failing over",
			obslog.F("key", key), obslog.F("round", round),
			obslog.F("worker", primary.id), obslog.F("err", err))
		if round+1 < c.cfg.DispatchRounds {
			c.retryWaits.Inc()
			d := runner.Delay(c.cfg.BackoffBase, c.cfg.BackoffMax, c.cfg.Seed, key, round)
			if !sleepDispatch(ctx, d) {
				return nil, ctx.Err()
			}
		}
	}

	// Degrade to local in-process execution: zero dispatchable workers (or
	// exhausted failover) must never refuse a campaign the coordinator
	// could run alone.
	if c.cfg.Local == nil {
		c.dispatchErrors.Inc()
		return nil, fmt.Errorf("cluster: no dispatchable worker for %s and no local fallback", key)
	}
	c.degradedLocal.Inc()
	c.log.Ctx(ctx).Info("cluster: degrading to local execution",
		obslog.F("key", key), obslog.F("attempts", len(attempts)))
	body, err := c.cfg.Local(ctx, key, payload)
	if err != nil {
		c.dispatchErrors.Inc()
		return nil, err
	}
	attempts = append(attempts, Attempt{Worker: "local", Outcome: "local"})
	return &Result{Body: body, Mode: "local", Worker: "local", Attempts: attempts}, nil
}

// candidates ranks the dispatchable pool for key: healthy workers first in
// rendezvous order, then suspects (still registered but missing heartbeats)
// as the fallback tier. Workers with open breakers or an eviction are out.
func (c *Coordinator) candidates(key string) []*worker {
	now := c.now()
	var healthy, suspect []*worker
	for _, w := range c.pool.all() {
		w.mu.Lock()
		st := w.state
		w.mu.Unlock()
		if st == WorkerEvicted || w.breaker.State(now) == BreakerOpen {
			continue
		}
		if st == WorkerHealthy {
			healthy = append(healthy, w)
		} else {
			suspect = append(suspect, w)
		}
	}
	return append(rankWorkers(healthy, key), rankWorkers(suspect, key)...)
}

// admitPrimary picks the round's primary worker: scanning from the round
// offset (so consecutive rounds walk the ranking), the first candidate whose
// breaker admits a request. Half-open breakers admit exactly one probe; the
// launch goroutine reports its outcome.
func (c *Coordinator) admitPrimary(cands []*worker, round int, now time.Time) (*worker, int) {
	for off := 0; off < len(cands); off++ {
		i := (round + off) % len(cands)
		if cands[i].breaker.Allow(now) {
			return cands[i], i
		}
	}
	return nil, -1
}

// raceResult is one launched request's outcome.
type raceResult struct {
	w     *worker
	body  []byte
	err   error
	hedge bool
}

// raceAttempt runs the primary request and, once it outlives the hedge
// delay, a duplicate against the hedge worker. The first success wins and
// cancels the loser's request context; both outcomes feed the breakers
// (losers canceled by the race are not charged).
func (c *Coordinator) raceAttempt(ctx context.Context, key string, payload []byte, primary, hedge *worker) ([]byte, *worker, []Attempt, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan raceResult, 2)

	launch := func(w *worker, isHedge bool) {
		began := time.Now()
		body, err := c.execute(actx, w, key, payload)
		dur := time.Since(began)
		if err == nil {
			now := c.now()
			w.breaker.Success(now)
			w.setSeen(now)
			us := uint64(dur.Microseconds())
			w.dispatchUS.Observe(us)
			c.dispatchUS.Observe(us)
			w.lat.observe(dur)
			c.lat.observe(dur)
		} else if actx.Err() == nil {
			now := c.now()
			if isPermanent(err) {
				// The worker answered; rejecting the payload is not a
				// health signal.
				w.breaker.Success(now)
			} else {
				w.breaker.Failure(now)
			}
		}
		resc <- raceResult{w: w, body: body, err: err, hedge: isHedge}
	}
	go launch(primary, false)

	var timerC <-chan time.Time
	if hedge != nil {
		if delay, ok := c.hedgeDelay(); ok {
			t := time.NewTimer(delay)
			defer t.Stop()
			timerC = t.C
		}
	}

	var attempts []Attempt
	var firstErr error
	hedged := false
	outstanding := 1
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			// The campaign died; the launched goroutines unwind into the
			// buffered channel.
			return nil, nil, attempts, ctx.Err()
		case <-timerC:
			timerC = nil
			if !hedge.breaker.Allow(c.now()) {
				continue
			}
			hedged = true
			outstanding++
			c.hedged.Inc()
			c.log.Ctx(ctx).Info("cluster: hedging straggler dispatch",
				obslog.F("key", key), obslog.F("primary", primary.id),
				obslog.F("hedge", hedge.id))
			go launch(hedge, true)
		case r := <-resc:
			outstanding--
			if r.err == nil {
				outcome := "ok"
				if r.hedge {
					outcome = "hedge-win"
					c.hedgeWins.Inc()
				} else if hedged {
					c.hedgeLosses.Inc()
				}
				attempts = append(attempts, Attempt{Worker: r.w.id, Outcome: outcome, Hedge: r.hedge})
				if outstanding > 0 {
					// The slower twin's request context dies with cancel();
					// record that it was raced, not that it failed.
					loser := primary
					if !r.hedge {
						loser = hedge
					}
					attempts = append(attempts, Attempt{Worker: loser.id, Outcome: "canceled", Hedge: !r.hedge})
				}
				return r.body, r.w, attempts, nil
			}
			attempts = append(attempts, Attempt{Worker: r.w.id, Outcome: "error", Hedge: r.hedge, Err: r.err.Error()})
			if firstErr == nil || (isPermanent(r.err) && !isPermanent(firstErr)) {
				firstErr = r.err
			}
		}
	}
	return nil, nil, attempts, firstErr
}

// hedgeDelay picks when to launch the duplicate request: the configured
// fixed delay, or the hedge percentile of the pooled dispatch latencies once
// enough samples exist (floored so a burst of fast cache-warm dispatches
// cannot make hedging hair-triggered).
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter, true
	}
	if c.lat.count() < c.cfg.HedgeMinSamples {
		return 0, false
	}
	p, ok := c.lat.percentile(c.cfg.HedgePercentile)
	if !ok {
		return 0, false
	}
	if p < c.cfg.HedgeMin {
		p = c.cfg.HedgeMin
	}
	return p, true
}

// execute performs one HTTP job request against one worker.
func (c *Coordinator) execute(ctx context.Context, w *worker, key string, payload []byte) ([]byte, error) {
	if c.cfg.DispatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.DispatchTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+ExecutePath, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderJobKey, key)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: read worker response: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests:
		return nil, &dispatchError{
			msg:       fmt.Sprintf("worker %s rejected job: %s: %s", w.id, resp.Status, truncate(body, 256)),
			permanent: true,
		}
	default:
		return nil, &dispatchError{
			msg: fmt.Sprintf("worker %s failed: %s: %s", w.id, resp.Status, truncate(body, 256)),
		}
	}
}

// sleepDispatch waits out the failover backoff, reporting false when the
// job context dies first.
func sleepDispatch(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func truncate(b []byte, n int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
