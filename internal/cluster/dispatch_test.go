package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"afterimage/internal/telemetry"
)

// fakeWorker is an httptest-backed worker whose behaviour is swappable at
// runtime: it answers /healthz with 200 and ExecutePath with a deterministic
// body for the key, unless a failure mode is installed.
type fakeWorker struct {
	id    string
	hs    *httptest.Server
	hits  atomic.Int64 // execute requests received
	mu    sync.Mutex
	code  int           // non-zero: answer every execute with this status
	stall time.Duration // sleep (ctx-aware) before answering
}

// jobBody is the byte-identity contract every execution path must satisfy.
func jobBody(key string) string { return "result-for:" + key }

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST "+ExecutePath, func(w http.ResponseWriter, r *http.Request) {
		fw.hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fw.mu.Lock()
		code, stall := fw.code, fw.stall
		fw.mu.Unlock()
		if stall > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(stall):
			}
		}
		if code != 0 {
			http.Error(w, "induced failure", code)
			return
		}
		key := r.Header.Get(HeaderJobKey)
		w.Header().Set(HeaderJobKey, key)
		io.WriteString(w, jobBody(key))
	})
	fw.hs = httptest.NewServer(mux)
	t.Cleanup(fw.hs.Close)
	return fw
}

func (fw *fakeWorker) setCode(code int)         { fw.mu.Lock(); fw.code = code; fw.mu.Unlock() }
func (fw *fakeWorker) setStall(d time.Duration) { fw.mu.Lock(); fw.stall = d; fw.mu.Unlock() }
func (fw *fakeWorker) host() string             { return strings.TrimPrefix(fw.hs.URL, "http://") }

// testCoordinator builds an unstarted coordinator with fast failover tuning
// and the given workers registered. Tests that need heartbeats call Start.
func testCoordinator(t *testing.T, mut func(*Config), fws ...*fakeWorker) (*Coordinator, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := Config{
		Registry:    reg,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c := New(cfg)
	t.Cleanup(c.Stop)
	for _, fw := range fws {
		if err := c.Register(fw.id, fw.hs.URL); err != nil {
			t.Fatalf("register %s: %v", fw.id, err)
		}
	}
	return c, reg
}

func counterOf(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	return reg.Snapshot().Counters[name]
}

// byAddr finds the fake worker behind a ranked candidate address.
func byAddr(fws []*fakeWorker, addr string) *fakeWorker {
	for _, fw := range fws {
		if fw.hs.URL == addr {
			return fw
		}
	}
	return nil
}

// TestDispatchRendezvousStability: the same key lands on the same worker
// every time, and a spread of keys uses more than one worker — the sharding
// property that makes worker-side checkpoint reuse effective.
func TestDispatchRendezvousStability(t *testing.T) {
	fws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	c, _ := testCoordinator(t, nil, fws...)

	seen := map[string]string{} // key -> worker id
	used := map[string]bool{}
	for round := 0; round < 2; round++ {
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("campaign-%d", i)
			res, err := c.Dispatch(context.Background(), key, []byte(`{}`))
			if err != nil {
				t.Fatalf("dispatch %s: %v", key, err)
			}
			if res.Mode != "worker" {
				t.Fatalf("dispatch %s: mode %q, want worker", key, res.Mode)
			}
			if string(res.Body) != jobBody(key) {
				t.Fatalf("dispatch %s: body %q, want %q", key, res.Body, jobBody(key))
			}
			if prev, ok := seen[key]; ok && prev != res.Worker {
				t.Fatalf("key %s moved from %s to %s with stable membership", key, prev, res.Worker)
			}
			seen[key] = res.Worker
			used[res.Worker] = true
		}
	}
	if len(used) < 2 {
		t.Fatalf("12 keys all hashed to one worker: %v", used)
	}
}

// TestDispatchFailover: when the key's first-ranked worker fails, the next
// round walks the rendezvous ranking and the campaign still completes with
// identical bytes; the audit trail records the failed attempt.
func TestDispatchFailover(t *testing.T) {
	fws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	c, reg := testCoordinator(t, nil, fws...)

	const key = "failover-campaign"
	primary := byAddr(fws, c.candidates(key)[0].addr)
	primary.setCode(http.StatusInternalServerError)

	res, err := c.Dispatch(context.Background(), key, []byte(`{}`))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if string(res.Body) != jobBody(key) {
		t.Fatalf("body %q, want %q", res.Body, jobBody(key))
	}
	if res.Mode != "worker" || res.Worker == primary.id {
		t.Fatalf("result mode=%s worker=%s; want the non-failing worker", res.Mode, res.Worker)
	}
	if len(res.Attempts) != 2 || res.Attempts[0].Outcome != "error" || res.Attempts[1].Outcome != "ok" {
		t.Fatalf("attempts = %+v, want [error, ok]", res.Attempts)
	}
	if res.Attempts[0].Worker != primary.id {
		t.Fatalf("first attempt hit %s, want rendezvous primary %s", res.Attempts[0].Worker, primary.id)
	}
	if got := counterOf(t, reg, "cluster.dispatch.failovers"); got != 1 {
		t.Fatalf("failovers counter %d, want 1", got)
	}
	if got := counterOf(t, reg, "cluster.dispatch.worker_ok"); got != 1 {
		t.Fatalf("worker_ok counter %d, want 1", got)
	}
}

// TestDispatchHedgeWin: a stalled primary is hedged against the next-ranked
// worker after the fixed hedge delay; the hedge wins, the straggler is
// canceled (not charged as a failure), and the body is still byte-identical.
func TestDispatchHedgeWin(t *testing.T) {
	fws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	c, reg := testCoordinator(t, func(cfg *Config) {
		cfg.HedgeAfter = 5 * time.Millisecond
	}, fws...)

	const key = "straggler-campaign"
	primary := byAddr(fws, c.candidates(key)[0].addr)
	primary.setStall(10 * time.Second)

	start := time.Now()
	res, err := c.Dispatch(context.Background(), key, []byte(`{}`))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("hedge did not preempt the straggler: dispatch took %s", took)
	}
	if string(res.Body) != jobBody(key) {
		t.Fatalf("body %q, want %q", res.Body, jobBody(key))
	}
	if res.Worker == primary.id {
		t.Fatalf("stalled primary %s won; want the hedge worker", primary.id)
	}
	var outcomes []string
	for _, a := range res.Attempts {
		outcomes = append(outcomes, a.Outcome)
	}
	wantOutcomes := []string{"hedge-win", "canceled"}
	if len(outcomes) != 2 || outcomes[0] != wantOutcomes[0] || outcomes[1] != wantOutcomes[1] {
		t.Fatalf("attempt outcomes %v, want %v", outcomes, wantOutcomes)
	}
	if !res.Attempts[0].Hedge {
		t.Fatal("winning attempt not marked as a hedge")
	}
	if got := counterOf(t, reg, "cluster.dispatch.hedged"); got != 1 {
		t.Fatalf("hedged counter %d, want 1", got)
	}
	if got := counterOf(t, reg, "cluster.dispatch.hedge_wins"); got != 1 {
		t.Fatalf("hedge_wins counter %d, want 1", got)
	}
	// The canceled straggler must not trip the primary's breaker.
	if got := counterOf(t, reg, "cluster.breaker.opened"); got != 0 {
		t.Fatalf("breaker opened %d times after a raced cancel, want 0", got)
	}
}

// TestDispatchPermanentRejectionDegradesLocal: a 4xx from a worker means the
// payload, not the worker, is suspect — dispatch stops failing over
// immediately and runs locally, and the rejection is not charged as a breaker
// failure.
func TestDispatchPermanentRejectionDegradesLocal(t *testing.T) {
	fws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	for _, fw := range fws {
		fw.setCode(http.StatusBadRequest)
	}
	c, reg := testCoordinator(t, func(cfg *Config) {
		cfg.Local = func(ctx context.Context, key string, payload []byte) ([]byte, error) {
			return []byte(jobBody(key)), nil
		}
	}, fws...)

	const key = "skewed-campaign"
	res, err := c.Dispatch(context.Background(), key, []byte(`{}`))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if res.Mode != "local" || string(res.Body) != jobBody(key) {
		t.Fatalf("mode=%s body=%q; want local fallback with identical bytes", res.Mode, res.Body)
	}
	if n := len(res.Attempts); n != 2 || res.Attempts[n-1].Outcome != "local" {
		t.Fatalf("attempts %+v, want [error, local]", res.Attempts)
	}
	// Permanent rejection must short-circuit: exactly one worker touched once.
	if total := fws[0].hits.Load() + fws[1].hits.Load(); total != 1 {
		t.Fatalf("workers saw %d execute requests after a permanent rejection, want 1", total)
	}
	if got := counterOf(t, reg, "cluster.dispatch.failovers"); got != 0 {
		t.Fatalf("failovers counter %d, want 0 (permanent errors skip failover)", got)
	}
	if got := counterOf(t, reg, "cluster.breaker.opened"); got != 0 {
		t.Fatalf("breaker opened on a permanent rejection; rejections are not health signals")
	}
	if got := counterOf(t, reg, "cluster.dispatch.local"); got != 1 {
		t.Fatalf("local counter %d, want 1", got)
	}
}

// TestDispatchNoWorkersDegradesLocal: the never-refuse guarantee — an empty
// pool runs the campaign in-process; without a local fallback it reports a
// clean error.
func TestDispatchNoWorkersDegradesLocal(t *testing.T) {
	c, reg := testCoordinator(t, func(cfg *Config) {
		cfg.Local = func(ctx context.Context, key string, payload []byte) ([]byte, error) {
			return []byte(jobBody(key)), nil
		}
	})
	res, err := c.Dispatch(context.Background(), "lonely-campaign", []byte(`{}`))
	if err != nil {
		t.Fatalf("dispatch with empty pool: %v", err)
	}
	if res.Mode != "local" || res.Worker != "local" {
		t.Fatalf("mode=%s worker=%s, want local/local", res.Mode, res.Worker)
	}
	if string(res.Body) != jobBody("lonely-campaign") {
		t.Fatalf("body %q, want %q", res.Body, jobBody("lonely-campaign"))
	}
	if got := counterOf(t, reg, "cluster.dispatch.local"); got != 1 {
		t.Fatalf("local counter %d, want 1", got)
	}

	noLocal, _ := testCoordinator(t, nil)
	if _, err := noLocal.Dispatch(context.Background(), "k", nil); err == nil {
		t.Fatal("empty pool with nil Local returned no error")
	}
}

// TestDispatchBreakerIsolatesFailingWorker: three straight failures open the
// worker's breaker; the next dispatch never touches it and degrades straight
// to local.
func TestDispatchBreakerIsolatesFailingWorker(t *testing.T) {
	fw := newFakeWorker(t, "w1")
	fw.setCode(http.StatusInternalServerError)
	c, reg := testCoordinator(t, func(cfg *Config) {
		cfg.BreakerThreshold = 3
		cfg.DispatchRounds = 3
		cfg.Local = func(ctx context.Context, key string, payload []byte) ([]byte, error) {
			return []byte(jobBody(key)), nil
		}
	}, fw)

	res, err := c.Dispatch(context.Background(), "doomed-campaign", []byte(`{}`))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if res.Mode != "local" {
		t.Fatalf("mode %s, want local after exhausting the failing worker", res.Mode)
	}
	if got := fw.hits.Load(); got != 3 {
		t.Fatalf("worker saw %d requests, want DispatchRounds=3", got)
	}
	if got := counterOf(t, reg, "cluster.breaker.opened"); got != 1 {
		t.Fatalf("breaker.opened %d, want 1", got)
	}

	// Second dispatch: the open breaker removes the worker from candidacy —
	// local degradation without a single additional request.
	res, err = c.Dispatch(context.Background(), "doomed-campaign-2", []byte(`{}`))
	if err != nil {
		t.Fatalf("second dispatch: %v", err)
	}
	if res.Mode != "local" {
		t.Fatalf("second dispatch mode %s, want local", res.Mode)
	}
	if got := fw.hits.Load(); got != 3 {
		t.Fatalf("open-breaker worker received traffic: %d requests, want still 3", got)
	}
}

// TestDispatchChaosByteIdentity: under a seeded fault injector (drops,
// delays, duplicates) every campaign still completes and every result is
// byte-identical to the clean-network answer — whichever worker or the local
// path produced it.
func TestDispatchChaosByteIdentity(t *testing.T) {
	fws := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	reg := telemetry.NewRegistry()
	inj := NewInjector(NetFaultConfig{
		Seed:          1337,
		DropRate:      0.3,
		DelayRate:     0.3,
		MaxDelay:      5 * time.Millisecond,
		DuplicateRate: 0.2,
		Registry:      reg,
	}, http.DefaultTransport)

	c, _ := testCoordinator(t, func(cfg *Config) {
		cfg.Registry = reg
		cfg.HTTP = &http.Client{Transport: inj}
		cfg.DispatchRounds = 4
		cfg.Local = func(ctx context.Context, key string, payload []byte) ([]byte, error) {
			return []byte(jobBody(key)), nil
		}
	}, fws...)

	modes := map[string]int{}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("chaos-campaign-%d", i)
		res, err := c.Dispatch(context.Background(), key, []byte(`{}`))
		if err != nil {
			t.Fatalf("dispatch %s under chaos: %v", key, err)
		}
		if string(res.Body) != jobBody(key) {
			t.Fatalf("dispatch %s: body %q diverged from golden %q (mode %s, attempts %+v)",
				key, res.Body, jobBody(key), res.Mode, res.Attempts)
		}
		modes[res.Mode]++
	}
	if got := counterOf(t, reg, "cluster.netfault.drops"); got == 0 {
		t.Fatal("chaos run injected zero drops; seed exercises nothing")
	}
	t.Logf("chaos modes: %v, drops=%d delays=%d dups=%d",
		modes,
		counterOf(t, reg, "cluster.netfault.drops"),
		counterOf(t, reg, "cluster.netfault.delays"),
		counterOf(t, reg, "cluster.netfault.duplicates"))
}

// TestHeartbeatEvictsAndRevives: a worker that stops answering heartbeats is
// suspected, then evicted past the deadline, and receives no dispatches until
// its next registration revives it.
func TestHeartbeatEvictsAndRevives(t *testing.T) {
	fw := newFakeWorker(t, "w1")
	c, reg := testCoordinator(t, func(cfg *Config) {
		cfg.HeartbeatInterval = 10 * time.Millisecond
		cfg.HeartbeatTimeout = 100 * time.Millisecond
		cfg.EvictAfter = 40 * time.Millisecond
		cfg.Local = func(ctx context.Context, key string, payload []byte) ([]byte, error) {
			return []byte(jobBody(key)), nil
		}
	}, fw)
	c.Start()

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			ws := c.Workers()
			if len(ws) == 1 && ws[0].State == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("worker never reached state %q: %+v", want, c.Workers())
	}

	waitState("healthy")
	fw.hs.Close() // the worker dies; probes now fail
	waitState("evicted")
	if got := counterOf(t, reg, "cluster.workers.evicted"); got != 1 {
		t.Fatalf("evicted counter %d, want 1", got)
	}

	// Evicted workers get no traffic: dispatch degrades to local.
	res, err := c.Dispatch(context.Background(), "post-eviction", []byte(`{}`))
	if err != nil {
		t.Fatalf("dispatch after eviction: %v", err)
	}
	if res.Mode != "local" {
		t.Fatalf("dispatch after eviction used mode %s, want local", res.Mode)
	}

	// Re-registration (the worker's periodic self-announce) revives it.
	if err := c.Register("w1", fw.hs.URL); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if got := counterOf(t, reg, "cluster.workers.revived"); got != 1 {
		t.Fatalf("revived counter %d, want 1", got)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].State != "healthy" {
		t.Fatalf("revived worker state %+v, want healthy", ws)
	}
}

// TestRegisterValidation: worker ids are metric-name segments; junk is
// rejected before it can pollute the registry.
func TestRegisterValidation(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	for _, bad := range []string{"", "has space", "dots.bad", strings.Repeat("x", 65)} {
		if err := c.Register(bad, "http://127.0.0.1:1"); err == nil {
			t.Errorf("Register accepted invalid id %q", bad)
		}
	}
	if err := c.Register("ok-worker_1", ""); err == nil {
		t.Error("Register accepted empty addr")
	}
}
