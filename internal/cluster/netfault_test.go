package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"afterimage/internal/telemetry"
)

// TestNetFaultScheduleDeterministic: the injector's fault schedule is a pure
// function of (seed, host, sequence, rates) — two injectors with the same
// config produce byte-identical decision tables, which is what lets the chaos
// harness replay a failure by seed.
func TestNetFaultScheduleDeterministic(t *testing.T) {
	cfg := NetFaultConfig{Seed: 42, DropRate: 0.3, DelayRate: 0.4, DuplicateRate: 0.2, MaxDelay: 80 * time.Millisecond}
	a := cfg.Schedule("worker-a:9001", 256)
	b := cfg.Schedule("worker-a:9001", 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed/host/config produced different schedules")
	}
}

// TestNetFaultScheduleVariesBySeedAndHost: changing the seed or the host
// changes the schedule — faults are not synchronized across workers, and two
// seeds explore different failure interleavings.
func TestNetFaultScheduleVariesBySeedAndHost(t *testing.T) {
	base := NetFaultConfig{Seed: 1, DropRate: 0.5, DelayRate: 0.5, DuplicateRate: 0.5}
	ref := base.Schedule("worker-a:9001", 256)

	other := base
	other.Seed = 2
	if reflect.DeepEqual(ref, other.Schedule("worker-a:9001", 256)) {
		t.Error("different seeds produced identical schedules")
	}
	if reflect.DeepEqual(ref, base.Schedule("worker-b:9001", 256)) {
		t.Error("different hosts produced identical schedules")
	}
}

// TestNetFaultScheduleInvariants: table-driven over rate corners. A dropped
// request is never also delayed or duplicated; rate 0 and rate 1 behave as
// exact never/always, not approximately.
func TestNetFaultScheduleInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  NetFaultConfig
		// predicates over the 256-entry schedule
		wantAllDrop  bool
		wantNoDrop   bool
		wantAllDelay bool
		wantNoDelay  bool
		wantNoDup    bool
		wantAllDup   bool
	}{
		{
			name:        "all zero rates: clean network",
			cfg:         NetFaultConfig{Seed: 7},
			wantNoDrop:  true,
			wantNoDelay: true,
			wantNoDup:   true,
		},
		{
			name:        "drop=1 shadows delay and duplicate",
			cfg:         NetFaultConfig{Seed: 7, DropRate: 1, DelayRate: 1, DuplicateRate: 1},
			wantAllDrop: true,
			wantNoDelay: true,
			wantNoDup:   true,
		},
		{
			name:         "delay=1 dup=1 without drops",
			cfg:          NetFaultConfig{Seed: 7, DelayRate: 1, DuplicateRate: 1},
			wantNoDrop:   true,
			wantAllDelay: true,
			wantAllDup:   true,
		},
		{
			name: "mixed rates keep drop exclusive",
			cfg:  NetFaultConfig{Seed: 9, DropRate: 0.5, DelayRate: 0.9, DuplicateRate: 0.9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := tc.cfg.Schedule("w:1", 256)
			if len(sched) != 256 {
				t.Fatalf("schedule length %d, want 256", len(sched))
			}
			maxDelay := tc.cfg.MaxDelay
			if maxDelay <= 0 {
				maxDelay = 50 * time.Millisecond
			}
			for i, d := range sched {
				if d.Drop && (d.Delay > 0 || d.Duplicate) {
					t.Fatalf("entry %d: dropped request also delayed/duplicated: %+v", i, d)
				}
				if d.Delay < 0 || d.Delay > maxDelay {
					t.Fatalf("entry %d: delay %s outside [0, %s]", i, d.Delay, maxDelay)
				}
				if tc.wantAllDrop && !d.Drop {
					t.Fatalf("entry %d: want drop", i)
				}
				if tc.wantNoDrop && d.Drop {
					t.Fatalf("entry %d: unexpected drop", i)
				}
				if tc.wantAllDelay && d.Delay == 0 {
					t.Fatalf("entry %d: want delay", i)
				}
				if tc.wantNoDelay && d.Delay != 0 {
					t.Fatalf("entry %d: unexpected delay %s", i, d.Delay)
				}
				if tc.wantAllDup && !d.Duplicate {
					t.Fatalf("entry %d: want duplicate", i)
				}
				if tc.wantNoDup && d.Duplicate {
					t.Fatalf("entry %d: unexpected duplicate", i)
				}
			}
		})
	}
}

// TestNetFaultRoundTripMatchesSchedule: the live transport consumes the same
// deterministic schedule that Schedule() predicts — request n against the
// fake worker is dropped iff the table says so, and the drop counter matches.
func TestNetFaultRoundTripMatchesSchedule(t *testing.T) {
	var served atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer hs.Close()

	reg := telemetry.NewRegistry()
	cfg := NetFaultConfig{Seed: 123, DropRate: 0.4, Registry: reg}
	inj := NewInjector(cfg, http.DefaultTransport)
	httpc := &http.Client{Transport: inj}

	host := strings.TrimPrefix(hs.URL, "http://")
	sched := cfg.Schedule(host, 64)

	wantDrops := 0
	for n := 0; n < 64; n++ {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, hs.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := httpc.Do(req)
		if sched[n].Drop {
			wantDrops++
			if err == nil {
				resp.Body.Close()
				t.Fatalf("request %d: schedule says drop, transport delivered it", n)
			}
			if !errors.Is(err, ErrInjectedDrop) {
				t.Fatalf("request %d: error %v, want ErrInjectedDrop", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: schedule says deliver, got %v", n, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if wantDrops == 0 {
		t.Fatal("seed produced no drops in 64 requests; pick another seed")
	}
	if got := int(served.Load()); got != 64-wantDrops {
		t.Fatalf("server saw %d requests, want %d", got, 64-wantDrops)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cluster.netfault.drops"]; got != uint64(wantDrops) {
		t.Fatalf("drop counter %d, want %d", got, wantDrops)
	}
}

// TestNetFaultPartition: a partitioned host fails every request with
// ErrInjectedPartition until healed, independent of the random schedule; the
// reject counter tracks each refusal.
func TestNetFaultPartition(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer hs.Close()
	host := strings.TrimPrefix(hs.URL, "http://")

	reg := telemetry.NewRegistry()
	inj := NewInjector(NetFaultConfig{Seed: 5, Registry: reg}, http.DefaultTransport)
	httpc := &http.Client{Transport: inj}

	do := func() error {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, hs.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := httpc.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	if err := do(); err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	inj.Partition(host)
	if !inj.Partitioned(host) {
		t.Fatal("Partitioned() false after Partition()")
	}
	for i := 0; i < 3; i++ {
		if err := do(); !errors.Is(err, ErrInjectedPartition) {
			t.Fatalf("partitioned request %d: err %v, want ErrInjectedPartition", i, err)
		}
	}
	inj.Heal(host)
	if inj.Partitioned(host) {
		t.Fatal("Partitioned() true after Heal()")
	}
	if err := do(); err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
	if got := reg.Snapshot().Counters["cluster.netfault.partition_rejects"]; got != 3 {
		t.Fatalf("partition_rejects %d, want 3", got)
	}
}

// TestNetFaultDuplicateDelivers: with DuplicateRate 1 and a rewindable body,
// the origin sees each POST twice — exercising the worker-side idempotency
// that dispatch relies on — while the caller still gets exactly one response.
func TestNetFaultDuplicateDelivers(t *testing.T) {
	var served atomic.Int64
	var bodies atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		b, _ := io.ReadAll(r.Body)
		if string(b) == "payload" {
			bodies.Add(1)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer hs.Close()

	reg := telemetry.NewRegistry()
	inj := NewInjector(NetFaultConfig{Seed: 5, DuplicateRate: 1, Registry: reg}, http.DefaultTransport)
	httpc := &http.Client{Transport: inj}

	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, hs.URL, bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		t.Fatalf("duplicated request failed: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for served.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := served.Load(); got != 2 {
		t.Fatalf("origin saw %d requests, want 2 (original + duplicate)", got)
	}
	if got := bodies.Load(); got != 2 {
		t.Fatalf("origin saw %d intact bodies, want 2", got)
	}
	if got := reg.Snapshot().Counters["cluster.netfault.duplicates"]; got != 1 {
		t.Fatalf("duplicates counter %d, want 1", got)
	}
}
