package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"afterimage/internal/telemetry"
)

// Injected network-fault errors. They satisfy errors.Is so tests and the
// dispatcher's failure classification can tell an injected fault from a real
// transport error.
var (
	// ErrInjectedDrop is a request the injector discarded without sending.
	ErrInjectedDrop = errors.New("cluster: injected network drop")
	// ErrInjectedPartition is a request to a host the injector has
	// partitioned away.
	ErrInjectedPartition = errors.New("cluster: injected network partition")
)

// NetFaultConfig parameterises the deterministic network-fault injector.
// Like internal/faults, the whole schedule is a pure function of the config:
// the decision for the n-th request to a host is derived from (Seed, host, n)
// by FNV-1a hashing, so two injectors with equal configs fault the identical
// requests in the identical ways — every failover path a chaos run takes is
// reproducible from its seed.
type NetFaultConfig struct {
	// Seed drives every fault decision. Equal seeds replay equal schedules.
	Seed int64
	// DropRate is the probability a request is discarded before sending
	// (the coordinator sees a transport error).
	DropRate float64
	// DelayRate is the probability a request is delayed before sending.
	DelayRate float64
	// MaxDelay bounds an injected delay; the actual delay is a deterministic
	// fraction of it (default 50ms when DelayRate > 0).
	MaxDelay time.Duration
	// DuplicateRate is the probability a request is transmitted twice (the
	// first response is discarded) — the retransmission a flaky network
	// produces. Requests without a rewindable body are never duplicated.
	DuplicateRate float64
	// Registry, when set, receives the cluster.netfault.* counters.
	Registry *telemetry.Registry
}

// Injector is a deterministic fault-injecting http.RoundTripper: it wraps a
// real transport and drops, delays, or duplicates requests on a seeded
// per-host schedule, plus explicit partitions toggled at runtime (a
// partitioned host is unreachable until healed). It is safe for concurrent
// use; each host has its own request sequence counter, so concurrency across
// hosts never perturbs a host's schedule.
type Injector struct {
	cfg  NetFaultConfig
	next http.RoundTripper

	mu          sync.Mutex
	seq         map[string]uint64 // per-host request counter
	partitioned map[string]bool

	drops, delays, duplicates, partitions *telemetry.Counter
}

// NewInjector wraps next (nil means http.DefaultTransport) with the fault
// schedule cfg describes.
func NewInjector(cfg NetFaultConfig, next http.RoundTripper) *Injector {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	in := &Injector{
		cfg:         cfg,
		next:        next,
		seq:         make(map[string]uint64),
		partitioned: make(map[string]bool),
	}
	if reg := cfg.Registry; reg != nil {
		in.drops = reg.Counter("cluster.netfault.drops")
		in.delays = reg.Counter("cluster.netfault.delays")
		in.duplicates = reg.Counter("cluster.netfault.duplicates")
		in.partitions = reg.Counter("cluster.netfault.partition_rejects")
	}
	return in
}

// Partition makes host (a "host:port") unreachable: every request to it
// fails with ErrInjectedPartition until Heal.
func (in *Injector) Partition(host string) {
	in.mu.Lock()
	in.partitioned[host] = true
	in.mu.Unlock()
}

// Heal reconnects a partitioned host.
func (in *Injector) Heal(host string) {
	in.mu.Lock()
	delete(in.partitioned, host)
	in.mu.Unlock()
}

// Partitioned reports whether host is currently cut off.
func (in *Injector) Partitioned(host string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.partitioned[host]
}

// netFaultDecision is the schedule entry for one request: what the injector
// will do with the n-th request to a host.
type netFaultDecision struct {
	Drop      bool
	Delay     time.Duration
	Duplicate bool
}

// decide computes the deterministic fault decision for the n-th request to
// host. Exported through Schedule for the determinism tests.
func (cfg NetFaultConfig) decide(host string, n uint64) netFaultDecision {
	var d netFaultDecision
	if chance(cfg.Seed, host, n, "drop") < cfg.DropRate {
		d.Drop = true
		return d // a dropped request is never also delayed or duplicated
	}
	if chance(cfg.Seed, host, n, "delay") < cfg.DelayRate {
		frac := chance(cfg.Seed, host, n, "delay-amount")
		d.Delay = time.Duration(float64(cfg.MaxDelay) * frac)
	}
	if chance(cfg.Seed, host, n, "dup") < cfg.DuplicateRate {
		d.Duplicate = true
	}
	return d
}

// Schedule materialises the first n decisions for host — the determinism
// tests' window into the schedule without performing any I/O. It applies the
// same MaxDelay default as NewInjector so the prediction matches the live
// transport.
func (cfg NetFaultConfig) Schedule(host string, n int) []netFaultDecision {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	out := make([]netFaultDecision, n)
	for i := range out {
		out[i] = cfg.decide(host, uint64(i))
	}
	return out
}

// chance maps (seed, host, n, salt) to a uniform [0, 1) — the same FNV-1a
// construction as the runner's backoff jitter, salted per decision so the
// drop, delay, and duplicate draws for one request are independent.
func chance(seed int64, host string, n uint64, salt string) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], n)
	h.Write(buf[:])
	io.WriteString(h, host)
	io.WriteString(h, salt)
	return float64(h.Sum64()%(1<<20)) / float64(1<<20)
}

// RoundTrip applies the schedule: partition check, then the seeded
// drop/delay/duplicate decision, then the wrapped transport.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	in.mu.Lock()
	if in.partitioned[host] {
		in.mu.Unlock()
		incIf(in.partitions)
		drainBody(req)
		return nil, fmt.Errorf("%w: %s", ErrInjectedPartition, host)
	}
	n := in.seq[host]
	in.seq[host] = n + 1
	in.mu.Unlock()

	d := in.cfg.decide(host, n)
	if d.Drop {
		incIf(in.drops)
		drainBody(req)
		return nil, fmt.Errorf("%w: %s request %d", ErrInjectedDrop, host, n)
	}
	if d.Delay > 0 {
		incIf(in.delays)
		if err := sleepInjected(req.Context(), d.Delay); err != nil {
			drainBody(req)
			return nil, err
		}
	}
	if d.Duplicate && req.GetBody != nil {
		if first, err := in.next.RoundTrip(cloneRequest(req)); err == nil {
			// The duplicate's response is the one the network "lost".
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
			incIf(in.duplicates)
		}
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		req.Body = body
	}
	return in.next.RoundTrip(req)
}

// cloneRequest copies req with a fresh body for the duplicate transmission.
func cloneRequest(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			c.Body = body
		}
	}
	return c
}

// drainBody releases a request body the injector decided never to send.
func drainBody(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// sleepInjected waits out an injected delay, aborting on context expiry as a
// real stalled connection would.
func sleepInjected(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func incIf(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}
