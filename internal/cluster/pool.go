package cluster

import (
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"afterimage/internal/obslog"
	"afterimage/internal/telemetry"
)

// WorkerState is one worker's health phase in the pool.
type WorkerState int

// The health phases.
const (
	// WorkerHealthy answers heartbeats within the probe deadline.
	WorkerHealthy WorkerState = iota
	// WorkerSuspect has missed at least one heartbeat but not yet the
	// eviction deadline; it is dispatched to only when no healthy worker is
	// available.
	WorkerSuspect
	// WorkerEvicted missed heartbeats past the eviction deadline; it
	// receives no traffic until it re-registers.
	WorkerEvicted
)

// String names the state (also the status-endpoint spelling).
func (s WorkerState) String() string {
	switch s {
	case WorkerHealthy:
		return "healthy"
	case WorkerSuspect:
		return "suspect"
	case WorkerEvicted:
		return "evicted"
	default:
		return "unknown"
	}
}

// worker is one pool member.
type worker struct {
	id   string // metric-safe name ([a-zA-Z0-9_-])
	addr string // base URL, e.g. "http://127.0.0.1:9001"

	mu       sync.Mutex
	state    WorkerState
	lastSeen time.Time // last successful probe or dispatch

	breaker    *Breaker
	lat        *latencyRing
	dispatchUS *telemetry.Histogram // cluster.worker.<id>.dispatch.us
}

// setSeen marks a successful interaction (probe or dispatch) at now.
func (w *worker) setSeen(now time.Time) {
	w.mu.Lock()
	w.state = WorkerHealthy
	w.lastSeen = now
	w.mu.Unlock()
}

// WorkerStatus is the observable snapshot of one pool member, served by
// GET /v1/cluster/workers.
type WorkerStatus struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	State    string    `json:"state"`
	Breaker  string    `json:"breaker"`
	LastSeen time.Time `json:"last_seen"`
}

// pool is the coordinator's membership table.
type pool struct {
	mu      sync.Mutex
	workers map[string]*worker // by addr

	registered, evicted, revived *telemetry.Counter
	healthyGauge                 *telemetry.Gauge
}

func newPool(reg *telemetry.Registry) *pool {
	p := &pool{workers: make(map[string]*worker)}
	if reg != nil {
		p.registered = reg.Counter("cluster.workers.registered")
		p.evicted = reg.Counter("cluster.workers.evicted")
		p.revived = reg.Counter("cluster.workers.revived")
		p.healthyGauge = reg.Gauge("cluster.workers.healthy")
	}
	return p
}

// all snapshots the membership slice (the *worker pointers are shared).
func (p *pool) all() []*worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*worker, 0, len(p.workers))
	for _, w := range p.workers {
		out = append(out, w)
	}
	return out
}

// updateHealthyGauge recounts dispatchable workers. Callers need not hold
// p.mu.
func (p *pool) updateHealthyGauge() {
	if p.healthyGauge == nil {
		return
	}
	n := int64(0)
	for _, w := range p.all() {
		w.mu.Lock()
		if w.state == WorkerHealthy {
			n++
		}
		w.mu.Unlock()
	}
	p.healthyGauge.Set(n)
}

// rankWorkers orders candidates for a key by rendezvous (highest-random-
// weight) hashing: every (worker, key) pair gets an FNV-1a score and workers
// are sorted descending. Each campaign key therefore has a stable preferred
// worker for any given membership, shards spread uniformly, and membership
// changes only remap the keys that hashed to the departed worker.
func rankWorkers(workers []*worker, key string) []*worker {
	type scored struct {
		w     *worker
		score uint64
	}
	ranked := make([]scored, 0, len(workers))
	for _, w := range workers {
		h := fnv.New64a()
		io.WriteString(h, w.addr)
		io.WriteString(h, "|")
		io.WriteString(h, key)
		ranked = append(ranked, scored{w, h.Sum64()})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].w.addr < ranked[j].w.addr
	})
	out := make([]*worker, len(ranked))
	for i, s := range ranked {
		out[i] = s.w
	}
	return out
}

// latencyRing keeps the most recent dispatch durations for the hedging
// percentile. Fixed capacity; concurrent-safe.
type latencyRing struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int // total observed
	idx int
}

func newLatencyRing(capacity int) *latencyRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &latencyRing{buf: make([]time.Duration, 0, capacity)}
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.idx] = d
	}
	r.idx = (r.idx + 1) % cap(r.buf)
	r.n++
}

// count reports how many durations have been observed in total.
func (r *latencyRing) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// percentile reports the p-th percentile (0 < p <= 1) of the retained
// window; ok is false when the window is empty.
func (r *latencyRing) percentile(p float64) (time.Duration, bool) {
	r.mu.Lock()
	window := append([]time.Duration(nil), r.buf...)
	r.mu.Unlock()
	if len(window) == 0 {
		return 0, false
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	i := int(p*float64(len(window))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(window) {
		i = len(window) - 1
	}
	return window[i], true
}

// probe checks one worker's /healthz within the heartbeat deadline. Any
// non-200 answer (including a draining worker's 503) is a failed probe, so
// draining workers fall out of rotation before they stop answering at all.
func (c *Coordinator) probe(w *worker) bool {
	ctx, cancel := contextWithTimeout(c.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// probeAll runs one heartbeat round: every non-evicted worker is probed;
// successes refresh lastSeen (and count as the half-open breaker's probe
// request), failures age the worker toward suspicion and, past EvictAfter,
// eviction.
func (c *Coordinator) probeAll() {
	now := c.now()
	for _, w := range c.pool.all() {
		w.mu.Lock()
		state := w.state
		w.mu.Unlock()
		if state == WorkerEvicted {
			continue // only re-registration revives an evicted worker
		}
		c.heartbeatProbes.Inc()
		ok := c.probe(w)
		now = c.now()
		if ok {
			w.setSeen(now)
			// A healthy heartbeat is the cheapest possible half-open probe:
			// it closes a recovering worker's breaker without risking a
			// real campaign on it.
			if w.breaker.State(now) == BreakerHalfOpen && w.breaker.Allow(now) {
				w.breaker.Success(now)
			}
			continue
		}
		c.heartbeatFailures.Inc()
		w.mu.Lock()
		w.state = WorkerSuspect
		evict := now.Sub(w.lastSeen) > c.cfg.EvictAfter
		if evict {
			w.state = WorkerEvicted
		}
		w.mu.Unlock()
		if evict {
			c.pool.evicted.Inc()
			c.log.Warn("cluster: worker evicted",
				obslog.F("worker", w.id), obslog.F("addr", w.addr),
				obslog.F("last_seen", w.lastSeen.Format(time.RFC3339Nano)))
		}
	}
	c.pool.updateHealthyGauge()
}
