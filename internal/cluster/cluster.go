// Package cluster shards campaign jobs across a pool of worker processes
// and keeps campaigns completing when those workers crash, hang, or
// partition — the multi-node growth path of the campaign service.
//
// The Coordinator embeds in afterimage-serve. Workers (cmd/afterimage-worker)
// self-register over HTTP and are health-checked by heartbeat probes with
// deadline-based eviction; each worker sits behind its own circuit breaker
// (closed/open/half-open with probe requests). A campaign dispatch walks the
// key's rendezvous-hash worker ranking with jittered-exponential retry
// (reusing the runner's deterministic backoff), hedges straggler requests
// against the next-ranked worker after a latency-percentile delay (first
// result wins, the loser's request context is canceled), and — whenever zero
// workers are dispatchable — degrades to local in-process execution: the
// service never refuses a campaign it could have run alone.
//
// The package is payload-agnostic: a job is (key, payload bytes) → result
// bytes. Campaign results are pure functions of their specs, so the bytes a
// worker returns are identical to a local run's — every failover path
// preserves the service's byte-identity guarantee, which the chaos harness
// verifies under seeded worker kills and injected netsplits (see Injector,
// the deterministic drop/delay/duplicate/partition fault layer).
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"afterimage/internal/obslog"
	"afterimage/internal/telemetry"
)

// The worker wire protocol. A worker serves POST ExecutePath taking the
// payload as the request body (the campaign key rides HeaderJobKey) and
// answering 200 with the result bytes, plus GET /healthz for heartbeats.
const (
	// ExecutePath is the worker's job-execution endpoint.
	ExecutePath = "/v1/execute"
	// RegisterPath is the coordinator's registration endpoint (served by
	// afterimage-serve, not by this package).
	RegisterPath = "/v1/cluster/register"
	// HeaderJobKey carries the job's campaign key on execute requests and
	// responses.
	HeaderJobKey = "X-Afterimage-Key"
)

// RegisterRequest is the body a worker POSTs to RegisterPath.
type RegisterRequest struct {
	// ID is the worker's metric-safe name (1..64 chars of [a-zA-Z0-9_-]).
	ID string `json:"id"`
	// Addr is the worker's base URL, e.g. "http://127.0.0.1:9001".
	Addr string `json:"addr"`
}

// LocalFunc executes one job in-process — the degradation path when no
// worker is dispatchable. It must produce bytes identical to what a worker
// would return for the same payload.
type LocalFunc func(ctx context.Context, key string, payload []byte) ([]byte, error)

// Config assembles a Coordinator.
type Config struct {
	// HeartbeatInterval is the pause between heartbeat rounds (default
	// 250ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the per-probe deadline (default 1s).
	HeartbeatTimeout time.Duration
	// EvictAfter evicts a worker whose last successful contact is older
	// than this (default 4 × HeartbeatInterval). Evicted workers get no
	// traffic until they re-register.
	EvictAfter time.Duration

	// BreakerThreshold opens a worker's breaker after this many consecutive
	// dispatch failures (default 3).
	BreakerThreshold int
	// BreakerCooldown holds an open breaker before the half-open probe
	// (default 2s).
	BreakerCooldown time.Duration

	// DispatchRounds bounds how many workers one job tries before degrading
	// to local execution (default 3).
	DispatchRounds int
	// DispatchTimeout is the per-attempt request deadline (default 0 =
	// bounded only by the job context).
	DispatchTimeout time.Duration
	// BackoffBase/BackoffMax shape the deterministic jittered-exponential
	// pause between failover rounds (defaults 25ms / 1s; the jitter is the
	// runner's (seed, key, round) construction, so retry timing replays).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter.
	Seed int64

	// HedgeAfter, when positive, hedges every dispatch at this fixed delay.
	// When zero, the hedge delay is the HedgePercentile of recent dispatch
	// latencies (floored at HedgeMin), and hedging waits until
	// HedgeMinSamples dispatches have been observed.
	HedgeAfter      time.Duration
	HedgePercentile float64 // default 0.95
	HedgeMin        time.Duration
	HedgeMinSamples int // default 8

	// Local is the in-process degradation path (required for the
	// never-refuse guarantee; a nil Local turns exhaustion into an error).
	Local LocalFunc
	// HTTP is the transport for probes and dispatches (default
	// http.DefaultClient); chaos tests wrap it around an Injector.
	HTTP *http.Client
	// Registry receives the cluster.* counters and per-worker dispatch
	// histograms; nil creates a private one.
	Registry *telemetry.Registry
	// Logger receives structured membership and failover logs; the nil
	// *Logger is safe.
	Logger *obslog.Logger

	// now overrides the clock (tests).
	now func() time.Time
}

// Coordinator owns the worker pool and dispatches jobs across it.
type Coordinator struct {
	cfg  Config
	pool *pool
	reg  *telemetry.Registry
	log  *obslog.Logger

	started  atomic.Bool
	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}

	lat *latencyRing // pooled dispatch latencies, feeds the hedge delay

	dispatches, dispatchOK, dispatchErrors        *telemetry.Counter
	failovers, retryWaits                         *telemetry.Counter
	hedged, hedgeWins, hedgeLosses                *telemetry.Counter
	degradedLocal                                 *telemetry.Counter
	heartbeatProbes, heartbeatFailures            *telemetry.Counter
	breakerOpened, breakerHalfOpen, breakerClosed *telemetry.Counter
	dispatchUS                                    *telemetry.Histogram
}

// dispatchBounds bucket one dispatch round trip in µs: LAN-local workers
// answer small campaigns in milliseconds, big ones in tens of seconds.
var dispatchBounds = []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000}

// New builds a coordinator. Call Start to begin heartbeating, Register (or
// serve RegisterPath into HandleRegister) to add workers.
func New(cfg Config) *Coordinator {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 250 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = time.Second
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = 4 * cfg.HeartbeatInterval
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.DispatchRounds <= 0 {
		cfg.DispatchRounds = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.HedgePercentile <= 0 || cfg.HedgePercentile > 1 {
		cfg.HedgePercentile = 0.95
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 20 * time.Millisecond
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	reg := cfg.Registry
	c := &Coordinator{
		cfg:   cfg,
		pool:  newPool(reg),
		reg:   reg,
		log:   cfg.Logger,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
		lat:   newLatencyRing(128),

		dispatches:        reg.Counter("cluster.dispatch.requests"),
		dispatchOK:        reg.Counter("cluster.dispatch.worker_ok"),
		dispatchErrors:    reg.Counter("cluster.dispatch.errors"),
		failovers:         reg.Counter("cluster.dispatch.failovers"),
		retryWaits:        reg.Counter("cluster.dispatch.retry_waits"),
		hedged:            reg.Counter("cluster.dispatch.hedged"),
		hedgeWins:         reg.Counter("cluster.dispatch.hedge_wins"),
		hedgeLosses:       reg.Counter("cluster.dispatch.hedge_losses"),
		degradedLocal:     reg.Counter("cluster.dispatch.local"),
		heartbeatProbes:   reg.Counter("cluster.heartbeat.probes"),
		heartbeatFailures: reg.Counter("cluster.heartbeat.failures"),
		breakerOpened:     reg.Counter("cluster.breaker.opened"),
		breakerHalfOpen:   reg.Counter("cluster.breaker.half_open"),
		breakerClosed:     reg.Counter("cluster.breaker.closed"),
		dispatchUS:        reg.Histogram("cluster.dispatch.us", dispatchBounds),
	}
	return c
}

func (c *Coordinator) now() time.Time { return c.cfg.now() }

// SetLocal installs the in-process degradation path after construction —
// the embedding server builds the coordinator first, then hands it the local
// executor once the server exists. Call before Start/Dispatch.
func (c *Coordinator) SetLocal(fn LocalFunc) { c.cfg.Local = fn }

func (c *Coordinator) httpClient() *http.Client {
	if c.cfg.HTTP != nil {
		return c.cfg.HTTP
	}
	return http.DefaultClient
}

// Registry exposes the coordinator's metric registry.
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// validWorkerID bounds worker names so they are safe as metric-name
// segments (same alphabet as server tenants).
func validWorkerID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Register adds (or revives) a worker at addr. Registration is idempotent:
// workers re-register on a timer, which both survives coordinator restarts
// and revives workers the pool evicted while they were down.
func (c *Coordinator) Register(id, addr string) error {
	if !validWorkerID(id) {
		return fmt.Errorf("cluster: invalid worker id %q: want 1..64 chars of [a-zA-Z0-9_-]", id)
	}
	if addr == "" {
		return fmt.Errorf("cluster: worker %q registered with an empty addr", id)
	}
	now := c.now()
	p := c.pool
	p.mu.Lock()
	w, known := p.workers[addr]
	if !known {
		w = &worker{
			id:      id,
			addr:    addr,
			breaker: NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown),
			lat:     newLatencyRing(64),
			dispatchUS: c.reg.Histogram("cluster.worker."+id+".dispatch.us",
				dispatchBounds),
		}
		w.breaker.onTransition = c.breakerTransition(w)
		w.lastSeen = now
		p.workers[addr] = w
		p.mu.Unlock()
		p.registered.Inc()
		c.log.Info("cluster: worker registered",
			obslog.F("worker", id), obslog.F("addr", addr))
		p.updateHealthyGauge()
		return nil
	}
	p.mu.Unlock()
	w.mu.Lock()
	revived := w.state == WorkerEvicted
	w.state = WorkerHealthy
	w.lastSeen = now
	w.mu.Unlock()
	if revived {
		p.revived.Inc()
		c.log.Info("cluster: evicted worker re-registered",
			obslog.F("worker", w.id), obslog.F("addr", addr))
	}
	p.updateHealthyGauge()
	return nil
}

// breakerTransition wires one worker's breaker state changes into the
// cluster counters and the log.
func (c *Coordinator) breakerTransition(w *worker) func(from, to BreakerState) {
	return func(from, to BreakerState) {
		switch to {
		case BreakerOpen:
			c.breakerOpened.Inc()
		case BreakerHalfOpen:
			c.breakerHalfOpen.Inc()
		case BreakerClosed:
			c.breakerClosed.Inc()
		}
		c.log.Info("cluster: breaker transition", obslog.F("worker", w.id),
			obslog.F("from", from.String()), obslog.F("to", to.String()))
	}
}

// Workers snapshots the pool for the status endpoint, sorted by id.
func (c *Coordinator) Workers() []WorkerStatus {
	now := c.now()
	all := c.pool.all()
	out := make([]WorkerStatus, 0, len(all))
	for _, w := range all {
		w.mu.Lock()
		st := WorkerStatus{
			ID:       w.id,
			Addr:     w.addr,
			State:    w.state.String(),
			LastSeen: w.lastSeen,
		}
		w.mu.Unlock()
		st.Breaker = w.breaker.State(now).String()
		out = append(out, st)
	}
	sortWorkerStatus(out)
	return out
}

// HealthyWorkers counts workers currently in the healthy state.
func (c *Coordinator) HealthyWorkers() int {
	n := 0
	for _, w := range c.pool.all() {
		w.mu.Lock()
		if w.state == WorkerHealthy {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// Start launches the heartbeat loop. Stop ends it.
func (c *Coordinator) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stopc:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop ends the heartbeat loop (if running) and waits for it to exit.
// Idempotent; safe without a prior Start.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopc) })
	if c.started.Load() {
		<-c.done
	}
}

// contextWithTimeout is context.WithTimeout from Background, split out so
// probe call sites stay short.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func sortWorkerStatus(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
