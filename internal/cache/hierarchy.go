package cache

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// Level identifies where an access was served.
type Level int

// Hierarchy levels, ordered from fastest to slowest.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Latencies carries the load-to-use latency (cycles) of each level.
type Latencies struct {
	L1, L2, LLC, DRAM uint64
}

// Of returns the latency for a level.
func (l Latencies) Of(level Level) uint64 {
	switch level {
	case LevelL1:
		return l.L1
	case LevelL2:
		return l.L2
	case LevelLLC:
		return l.LLC
	default:
		return l.DRAM
	}
}

// HierarchyConfig describes the full three-level hierarchy.
type HierarchyConfig struct {
	L1, L2, LLC Config
	Lat         Latencies
}

// Hierarchy is an inclusive L1D/L2/LLC stack. Inclusivity means every line
// in L1 or L2 is also in the LLC, so evicting an LLC line back-invalidates
// the inner levels — the property Prime+Probe on the LLC relies on.
type Hierarchy struct {
	L1, L2, LLC *Cache
	Lat         Latencies
}

// NewHierarchy builds the stack from a config.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	llc, err := New(cfg.LLC)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: l2, LLC: llc, Lat: cfg.Lat}, nil
}

// Load performs a demand load of the line containing p: it reports the level
// that served it and its latency, and fills all levels on the way in.
func (h *Hierarchy) Load(p mem.PAddr) (Level, uint64) {
	// Each miss branch fills via fillMissed: the Access that just missed
	// proved the line absent from that level, and nothing on the way here
	// re-inserts it (outer-level fills and back-invalidations never add
	// lines to an inner level), so the residency re-scan Fill would do is
	// skipped. The mutations are identical to Fill's for an absent line.
	switch {
	case h.L1.Access(p):
		return LevelL1, h.Lat.L1
	case h.L2.Access(p):
		h.L1.fillMissed(h.L1.lineOf(p), false)
		return LevelL2, h.Lat.L2
	case h.LLC.Access(p):
		h.L2.fillMissed(h.L2.lineOf(p), false)
		h.L1.fillMissed(h.L1.lineOf(p), false)
		return LevelLLC, h.Lat.LLC
	default:
		if ev, ok := h.LLC.fillMissed(h.LLC.lineOf(p), false); ok {
			// Inclusive: a line leaving the LLC leaves the inner levels too.
			// The evicted line is never p's own line, so p stays absent.
			h.L2.RemoveLine(ev)
			h.L1.RemoveLine(ev)
		}
		h.L2.fillMissed(h.L2.lineOf(p), false)
		h.L1.fillMissed(h.L1.lineOf(p), false)
		return LevelDRAM, h.Lat.DRAM
	}
}

// Probe reports the level that would serve p without disturbing any state.
func (h *Hierarchy) Probe(p mem.PAddr) Level {
	switch {
	case h.L1.Contains(p):
		return LevelL1
	case h.L2.Contains(p):
		return LevelL2
	case h.LLC.Contains(p):
		return LevelLLC
	default:
		return LevelDRAM
	}
}

// ProbeLatency reports the latency a load of p would observe, without
// changing state.
func (h *Hierarchy) ProbeLatency(p mem.PAddr) uint64 { return h.Lat.Of(h.Probe(p)) }

// Fill installs the line of p into every level, maintaining inclusivity.
// Prefetchers use this as the fill path for prefetch requests.
func (h *Hierarchy) Fill(p mem.PAddr) {
	if ev, ok := h.LLC.Fill(p); ok {
		// Inclusive: a line leaving the LLC must leave the inner levels too.
		h.L2.RemoveLine(ev)
		h.L1.RemoveLine(ev)
	}
	h.fillL2(p)
	h.fillL1(p)
}

// Prefetch installs the line of p into every level as a prefetch fill:
// identical to Fill for the cache contents, but the line participates in
// the usefulness accounting until its first demand hit.
func (h *Hierarchy) Prefetch(p mem.PAddr) {
	if ev, ok := h.LLC.FillPrefetch(p); ok {
		h.L2.RemoveLine(ev)
		h.L1.RemoveLine(ev)
	}
	h.L2.FillPrefetch(p)
	h.L1.FillPrefetch(p)
}

// FillLLCOnly installs into the LLC only (used by streamer-style prefetchers
// configured to fill the outer level).
func (h *Hierarchy) FillLLCOnly(p mem.PAddr) {
	if ev, ok := h.LLC.Fill(p); ok {
		h.L2.RemoveLine(ev)
		h.L1.RemoveLine(ev)
	}
}

func (h *Hierarchy) fillL1(p mem.PAddr) {
	h.L1.Fill(p) // L1 evictions fall back to L2/LLC which already hold the line
}

func (h *Hierarchy) fillL2(p mem.PAddr) {
	h.L2.Fill(p)
}

// RegisterMetrics exposes all three levels in reg under the cache.l1,
// cache.l2 and cache.llc namespaces.
func (h *Hierarchy) RegisterMetrics(reg *telemetry.Registry) {
	h.L1.RegisterMetrics(reg, "cache.l1")
	h.L2.RegisterMetrics(reg, "cache.l2")
	h.LLC.RegisterMetrics(reg, "cache.llc")
}

// ResetStats clears the counters of every level.
func (h *Hierarchy) ResetStats() {
	h.L1.ResetStats()
	h.L2.ResetStats()
	h.LLC.ResetStats()
}

// Flush removes the line of p from every level (clflush).
func (h *Hierarchy) Flush(p mem.PAddr) {
	h.L1.Remove(p)
	h.L2.Remove(p)
	h.LLC.Remove(p)
}

// Contains reports whether any level holds the line of p.
func (h *Hierarchy) Contains(p mem.PAddr) bool { return h.Probe(p) != LevelDRAM }

// Audit deep-checks every level plus the cross-level inclusivity invariant:
// each valid L1 or L2 line must also be resident in the LLC. It returns
// every broken rule.
func (h *Hierarchy) Audit() []error {
	errs := h.L1.Audit()
	errs = append(errs, h.L2.Audit()...)
	errs = append(errs, h.LLC.Audit()...)
	for _, inner := range []*Cache{h.L1, h.L2} {
		c := inner
		c.VisitLines(func(line uint64) bool {
			if !h.LLC.Contains(lineAddr(line, h.LLC.cfg.LineSize)) {
				errs = append(errs, fmt.Errorf("hierarchy: %s line %#x not present in LLC (inclusivity broken)", c.cfg.Name, line))
			}
			return true
		})
	}
	return errs
}

// HierarchySnapshot captures all three levels.
type HierarchySnapshot struct {
	L1, L2, LLC Snapshot
}

// Snapshot captures the full hierarchy state.
func (h *Hierarchy) Snapshot() HierarchySnapshot {
	return HierarchySnapshot{L1: h.L1.Snapshot(), L2: h.L2.Snapshot(), LLC: h.LLC.Snapshot()}
}

// Restore adopts a hierarchy snapshot.
func (h *Hierarchy) Restore(snap HierarchySnapshot) error {
	if err := h.L1.Restore(snap.L1); err != nil {
		return err
	}
	if err := h.L2.Restore(snap.L2); err != nil {
		return err
	}
	return h.LLC.Restore(snap.LLC)
}

// CorruptInclusivity silently drops the first valid L1 line from the LLC
// only, breaking the inclusion invariant without touching the inner levels
// — the kind of desync a back-invalidation bug would cause. It reports
// whether a line was found to corrupt.
func (h *Hierarchy) CorruptInclusivity() bool {
	var victim uint64
	found := false
	h.L1.VisitLines(func(line uint64) bool {
		victim = line
		found = true
		return false
	})
	if !found {
		return false
	}
	return h.LLC.Remove(lineAddr(victim, h.LLC.cfg.LineSize))
}
