package cache

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/statehash"
)

// lineAddr converts a physical line address back to a byte address for the
// slice/set mapping functions.
func lineAddr(line, lineSize uint64) mem.PAddr { return mem.PAddr(line * lineSize) }

// SetSnapshot captures one associative set: line addresses, valid and
// prefetched bits, and the replacement policy's opaque state.
type SetSnapshot struct {
	Lines      []uint64
	Valid      []bool
	Prefetched []bool
	Policy     []uint64
}

// Snapshot captures a full cache level: every set of every slice plus the
// cumulative counters (the counters feed reports, so a restored machine must
// reproduce them too).
type Snapshot struct {
	Sets           [][]SetSnapshot // [slice][set]
	Hits           uint64
	Misses         uint64
	PrefetchFills  uint64
	UsefulPrefetch uint64
}

// Snapshot captures the cache's complete state.
func (c *Cache) Snapshot() Snapshot {
	snap := Snapshot{
		Sets:           make([][]SetSnapshot, len(c.sets)),
		Hits:           c.hits,
		Misses:         c.misses,
		PrefetchFills:  c.prefetchFills,
		UsefulPrefetch: c.usefulPrefetch,
	}
	for si, slice := range c.sets {
		snap.Sets[si] = make([]SetSnapshot, len(slice))
		for i, s := range slice {
			snap.Sets[si][i] = SetSnapshot{
				Lines:      append([]uint64(nil), s.lines...),
				Valid:      append([]bool(nil), s.valid...),
				Prefetched: append([]bool(nil), s.prefetched...),
				Policy:     s.policy.Save(),
			}
		}
	}
	return snap
}

// Restore adopts a snapshot previously taken from a cache with the same
// geometry. State is adopted verbatim (no sanitisation), so a snapshot of a
// corrupted cache restores as corrupted and Audit still flags it.
func (c *Cache) Restore(snap Snapshot) error {
	if len(snap.Sets) != len(c.sets) {
		return fmt.Errorf("cache %q: snapshot has %d slices, cache has %d", c.cfg.Name, len(snap.Sets), len(c.sets))
	}
	for si, slice := range c.sets {
		if len(snap.Sets[si]) != len(slice) {
			return fmt.Errorf("cache %q: snapshot slice %d has %d sets, cache has %d", c.cfg.Name, si, len(snap.Sets[si]), len(slice))
		}
		for i, s := range slice {
			ss := snap.Sets[si][i]
			if len(ss.Lines) != len(s.lines) {
				return fmt.Errorf("cache %q: snapshot set %d/%d has %d ways, cache has %d", c.cfg.Name, si, i, len(ss.Lines), len(s.lines))
			}
			copy(s.lines, ss.Lines)
			copy(s.valid, ss.Valid)
			copy(s.prefetched, ss.Prefetched)
			s.policy.Load(ss.Policy)
		}
	}
	c.hits = snap.Hits
	c.misses = snap.Misses
	c.prefetchFills = snap.PrefetchFills
	c.usefulPrefetch = snap.UsefulPrefetch
	return nil
}

// StateHash folds the cache's complete state — contents, replacement state
// and counters — into a stable 64-bit digest.
func (c *Cache) StateHash() uint64 {
	h := statehash.New()
	h.Str(c.cfg.Name)
	for _, slice := range c.sets {
		for _, s := range slice {
			h.U64s(s.lines).Bools(s.valid).Bools(s.prefetched).U64s(s.policy.Save())
		}
	}
	h.U64(c.hits).U64(c.misses).U64(c.prefetchFills).U64(c.usefulPrefetch)
	return h.Sum()
}

// Audit deep-checks the level's structural invariants: no duplicate valid
// lines within a set, every valid line resident in the slice/set its address
// maps to, and the per-set replacement policy internally consistent. It
// returns every broken rule.
func (c *Cache) Audit() []error {
	var errs []error
	for si, slice := range c.sets {
		for i, s := range slice {
			for w, valid := range s.valid {
				if !valid {
					continue
				}
				line := s.lines[w]
				p := lineAddr(line, c.cfg.LineSize)
				if got := c.SliceOf(p); got != si {
					errs = append(errs, fmt.Errorf("cache %q: slice %d set %d way %d holds line %#x which maps to slice %d", c.cfg.Name, si, i, w, line, got))
				}
				if got := c.SetOf(p); got != uint64(i) {
					errs = append(errs, fmt.Errorf("cache %q: slice %d set %d way %d holds line %#x which maps to set %d", c.cfg.Name, si, i, w, line, got))
				}
				for w2 := w + 1; w2 < len(s.valid); w2++ {
					if s.valid[w2] && s.lines[w2] == line {
						errs = append(errs, fmt.Errorf("cache %q: slice %d set %d holds line %#x in ways %d and %d", c.cfg.Name, si, i, line, w, w2))
					}
				}
			}
			if err := s.policy.Audit(); err != nil {
				errs = append(errs, fmt.Errorf("cache %q: slice %d set %d policy: %w", c.cfg.Name, si, i, err))
			}
		}
	}
	return errs
}

// VisitLines calls fn for every valid physical line address in the cache,
// stopping early if fn returns false. Iteration order is slice-major and
// deterministic.
func (c *Cache) VisitLines(fn func(line uint64) bool) {
	for _, slice := range c.sets {
		for _, s := range slice {
			for w, valid := range s.valid {
				if valid && !fn(s.lines[w]) {
					return
				}
			}
		}
	}
}

// PolicyAt exposes the replacement policy of one set (slice-major indexing)
// so fault injection can corrupt replacement state directly.
func (c *Cache) PolicyAt(slice int, set uint64) Policy {
	return c.sets[slice][set].policy
}
