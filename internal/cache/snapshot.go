package cache

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/statehash"
)

// lineAddr converts a physical line address back to a byte address for the
// slice/set mapping functions.
func lineAddr(line, lineSize uint64) mem.PAddr { return mem.PAddr(line * lineSize) }

// SetSnapshot captures one associative set: line addresses, valid and
// prefetched bits, and the replacement policy's opaque state.
type SetSnapshot struct {
	Lines      []uint64
	Valid      []bool
	Prefetched []bool
	Policy     []uint64
}

// Snapshot captures a full cache level: every set of every slice plus the
// cumulative counters (the counters feed reports, so a restored machine must
// reproduce them too).
type Snapshot struct {
	Sets           [][]SetSnapshot // [slice][set]
	Hits           uint64
	Misses         uint64
	PrefetchFills  uint64
	UsefulPrefetch uint64
}

// Snapshot captures the cache's complete state. The external layout is the
// seed's nested [slice][set] shape, carved out of the flat arrays, so
// snapshots from before and after the flattening are interchangeable.
func (c *Cache) Snapshot() Snapshot {
	snap := Snapshot{
		Sets:           make([][]SetSnapshot, c.nslices),
		Hits:           c.hits,
		Misses:         c.misses,
		PrefetchFills:  c.prefetchFills,
		UsefulPrefetch: c.usefulPrefetch,
	}
	for si := range snap.Sets {
		snap.Sets[si] = make([]SetSnapshot, c.nsets)
		for i := range snap.Sets[si] {
			g := si*int(c.nsets) + i
			base := g * c.ways
			snap.Sets[si][i] = SetSnapshot{
				Lines:      append([]uint64(nil), c.lines[base:base+c.ways]...),
				Valid:      append([]bool(nil), c.valid[base:base+c.ways]...),
				Prefetched: append([]bool(nil), c.prefetched[base:base+c.ways]...),
				Policy:     c.pol.save(g),
			}
		}
	}
	return snap
}

// Restore adopts a snapshot previously taken from a cache with the same
// geometry. State is adopted verbatim (no sanitisation), so a snapshot of a
// corrupted cache restores as corrupted and Audit still flags it.
func (c *Cache) Restore(snap Snapshot) error {
	if len(snap.Sets) != c.nslices {
		return fmt.Errorf("cache %q: snapshot has %d slices, cache has %d", c.cfg.Name, len(snap.Sets), c.nslices)
	}
	for si := range snap.Sets {
		if uint64(len(snap.Sets[si])) != c.nsets {
			return fmt.Errorf("cache %q: snapshot slice %d has %d sets, cache has %d", c.cfg.Name, si, len(snap.Sets[si]), c.nsets)
		}
		for i := range snap.Sets[si] {
			ss := snap.Sets[si][i]
			if len(ss.Lines) != c.ways {
				return fmt.Errorf("cache %q: snapshot set %d/%d has %d ways, cache has %d", c.cfg.Name, si, i, len(ss.Lines), c.ways)
			}
			g := si*int(c.nsets) + i
			base := g * c.ways
			copy(c.lines[base:base+c.ways], ss.Lines)
			copy(c.valid[base:base+c.ways], ss.Valid)
			copy(c.prefetched[base:base+c.ways], ss.Prefetched)
			c.pol.load(g, ss.Policy)
		}
	}
	c.hits = snap.Hits
	c.misses = snap.Misses
	c.prefetchFills = snap.PrefetchFills
	c.usefulPrefetch = snap.UsefulPrefetch
	// The restored contents need not match the predictor's cached location
	// (the snapshot may even be deliberately corrupted), so forget it.
	c.predOK = false
	// Rebuild the derived per-set valid counts from the adopted valid bits.
	for g := range c.vcnt {
		base := g * c.ways
		n := int32(0)
		for _, v := range c.valid[base : base+c.ways] {
			if v {
				n++
			}
		}
		c.vcnt[g] = n
	}
	return nil
}

// StateHash folds the cache's complete state — contents, replacement state
// and counters — into a stable 64-bit digest. The fold order (set contents
// then policy words, slice-major over sets) matches the seed implementation
// word for word.
func (c *Cache) StateHash() uint64 {
	h := statehash.New()
	h.Str(c.cfg.Name)
	gsets := c.nslices * int(c.nsets)
	scratch := make([]uint64, 0, c.ways+2)
	for g := 0; g < gsets; g++ {
		base := g * c.ways
		scratch = c.pol.saveInto(scratch[:0], g)
		h.U64s(c.lines[base : base+c.ways]).
			Bools(c.valid[base : base+c.ways]).
			Bools(c.prefetched[base : base+c.ways]).
			U64s(scratch)
	}
	h.U64(c.hits).U64(c.misses).U64(c.prefetchFills).U64(c.usefulPrefetch)
	return h.Sum()
}

// Audit deep-checks the level's structural invariants: no duplicate valid
// lines within a set, every valid line resident in the slice/set its address
// maps to, and the per-set replacement policy internally consistent. It
// returns every broken rule.
func (c *Cache) Audit() []error {
	var errs []error
	gsets := c.nslices * int(c.nsets)
	for g := 0; g < gsets; g++ {
		si, i := g/int(c.nsets), g%int(c.nsets)
		base := g * c.ways
		for w := 0; w < c.ways; w++ {
			if !c.valid[base+w] {
				continue
			}
			line := c.lines[base+w]
			p := lineAddr(line, c.cfg.LineSize)
			if got := c.SliceOf(p); got != si {
				errs = append(errs, fmt.Errorf("cache %q: slice %d set %d way %d holds line %#x which maps to slice %d", c.cfg.Name, si, i, w, line, got))
			}
			if got := c.SetOf(p); got != uint64(i) {
				errs = append(errs, fmt.Errorf("cache %q: slice %d set %d way %d holds line %#x which maps to set %d", c.cfg.Name, si, i, w, line, got))
			}
			for w2 := w + 1; w2 < c.ways; w2++ {
				if c.valid[base+w2] && c.lines[base+w2] == line {
					errs = append(errs, fmt.Errorf("cache %q: slice %d set %d holds line %#x in ways %d and %d", c.cfg.Name, si, i, line, w, w2))
				}
			}
		}
		if err := c.pol.audit(g); err != nil {
			errs = append(errs, fmt.Errorf("cache %q: slice %d set %d policy: %w", c.cfg.Name, si, i, err))
		}
	}
	return errs
}

// VisitLines calls fn for every valid physical line address in the cache,
// stopping early if fn returns false. Iteration order is slice-major and
// deterministic.
func (c *Cache) VisitLines(fn func(line uint64) bool) {
	for i, v := range c.valid {
		if v && !fn(c.lines[i]) {
			return
		}
	}
}

// PolicyAt exposes the replacement policy of one set (slice-major indexing)
// so fault injection can corrupt replacement state directly. The returned
// view mutates the cache's flat policy engine in place.
func (c *Cache) PolicyAt(slice int, set uint64) Policy {
	return &setPolicyView{pa: c.pol, g: slice*int(c.nsets) + int(set)}
}
