package cache

import (
	"fmt"
	"math/bits"

	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// Config shapes one cache level.
type Config struct {
	Name       string
	SizeBytes  uint64
	Ways       int
	LineSize   uint64
	Policy     PolicyKind
	PolicySeed int64
	Slices     int // 0 or 1: unsliced
}

// Sets computes the number of sets per slice.
func (c Config) Sets() uint64 {
	slices := c.Slices
	if slices < 1 {
		slices = 1
	}
	return c.SizeBytes / (c.LineSize * uint64(c.Ways) * uint64(slices))
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	if c.LineSize == 0 || c.Ways <= 0 || c.SizeBytes == 0 {
		return fmt.Errorf("cache %q: size, ways and line size must be positive", c.Name)
	}
	slices := c.Slices
	if slices < 1 {
		slices = 1
	}
	per := c.LineSize * uint64(c.Ways) * uint64(slices)
	if c.SizeBytes%per != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line*slices", c.Name, c.SizeBytes)
	}
	return nil
}

// Cache is one level: optionally sliced, set-associative, physically
// indexed by cache-line address.
//
// All per-way state lives in three contiguous arrays indexed by
// (slice*nsets + set)*ways + way, and all replacement state lives in one
// flat policyArray, so an access is pure index arithmetic: no per-set heap
// objects, no interface dispatch, no pointer chasing. The "global set"
// number g = slice*nsets + set is the unit the policy engine and the
// snapshot/audit code agree on; iteration over g visits sets in exactly the
// slice-major order the seed implementation used, which keeps StateHash,
// Snapshot and VisitLines bit-identical.
type Cache struct {
	cfg     Config
	nslices int
	nsets   uint64
	ways    int

	setsPow2  bool
	setMask   uint64
	setMagic  uint64 // Lemire fastmod magic for non-power-of-two set counts
	linePow2  bool
	lineShift uint

	lines      []uint64 // [gset*ways+way] physical line address
	valid      []bool   // [gset*ways+way]
	prefetched []bool   // [gset*ways+way] prefetch-installed, not yet demand-hit
	vcnt       []int32  // [gset] popcount of valid (derived, not snapshotted)
	pol        *policyArray

	// One-entry direct-mapped way predictor: the flat index where predLine
	// was last seen. It caches only a LOCATION — every use re-verifies the
	// tag and then performs the identical state mutations the full lookup
	// would, so it can never change observable state, only skip the scan.
	predLine uint64
	predIdx  int
	predG    int // global set of predIdx (avoids a divide on the hit path)
	predOK   bool

	hits   uint64
	misses uint64
	// Prefetch usefulness accounting: lines installed by prefetch, and how
	// many of those received a demand hit before eviction.
	prefetchFills  uint64
	usefulPrefetch uint64
}

// New constructs a cache from its config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	slices := cfg.Slices
	if slices < 1 {
		slices = 1
	}
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, nslices: slices, nsets: nsets, ways: cfg.Ways}
	if nsets&(nsets-1) == 0 {
		c.setsPow2, c.setMask = true, nsets-1
	} else {
		c.setMagic = ^uint64(0)/nsets + 1
	}
	if cfg.LineSize&(cfg.LineSize-1) == 0 {
		c.linePow2 = true
		c.lineShift = uint(bits.TrailingZeros64(cfg.LineSize))
	}
	gsets := slices * int(nsets)
	c.lines = make([]uint64, gsets*cfg.Ways)
	c.valid = make([]bool, gsets*cfg.Ways)
	c.prefetched = make([]bool, gsets*cfg.Ways)
	c.vcnt = make([]int32, gsets)
	// Per-set seeds reproduce the seed code's newSet(…, PolicySeed+s*1000+i).
	c.pol = newPolicyArray(cfg.Policy, gsets, cfg.Ways, func(g int) int64 {
		s, i := g/int(nsets), g%int(nsets)
		return cfg.PolicySeed + int64(s*1000+i)
	})
	return c, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSlices reports the slice count (≥ 1).
func (c *Cache) NumSlices() int { return c.nslices }

// NumSets reports sets per slice.
func (c *Cache) NumSets() uint64 { return c.nsets }

// lineOf converts a physical address to its line address.
func (c *Cache) lineOf(p mem.PAddr) uint64 {
	if c.linePow2 {
		return uint64(p) >> c.lineShift
	}
	return uint64(p) / c.cfg.LineSize
}

// SliceOf computes the slice index for a physical address using the
// XOR-folding hash reverse-engineered for Haswell-class parts (Irazoqui et
// al., DSD'15): each slice-selection bit is the parity of a subset of the
// physical address bits. With one slice it returns 0.
func (c *Cache) SliceOf(p mem.PAddr) int {
	if c.nslices <= 1 {
		return 0
	}
	return SliceHash(uint64(p), c.nslices)
}

// SetOf computes the set index of a physical address. Power-of-two set
// counts index by masking like real hardware; other counts (e.g. the 1536
// sets per Coffee Lake LLC slice) fold by modulo.
func (c *Cache) SetOf(p mem.PAddr) uint64 {
	return c.setIndex(c.lineOf(p))
}

// setIndex folds a line address onto a set number. The non-power-of-two
// fold uses Lemire's fastmod (two multiplies) for line addresses below
// 2^32 — every reachable physical address qualifies, but snapshots can
// carry arbitrary line words, so larger values fall back to the divide.
// Both branches compute exactly line % nsets.
func (c *Cache) setIndex(line uint64) uint64 {
	if c.setsPow2 {
		return line & c.setMask
	}
	if line < 1<<32 {
		hi, _ := bits.Mul64(c.setMagic*line, c.nsets)
		return hi
	}
	return line % c.nsets
}

// gsetOfLine computes the global set number of a line address: the
// slice-major flat index slice*nsets + set.
func (c *Cache) gsetOfLine(line uint64) int {
	set := c.setIndex(line)
	if c.nslices <= 1 {
		return int(set)
	}
	var p uint64
	if c.linePow2 {
		p = line << c.lineShift
	} else {
		p = line * c.cfg.LineSize
	}
	return SliceHash(p, c.nslices)*int(c.nsets) + int(set)
}

// lookupLine scans the line's set, returning the flat way index. The
// subslices let the compiler drop per-way bounds checks.
func (c *Cache) lookupLine(line uint64) (g, idx int, ok bool) {
	g = c.gsetOfLine(line)
	base := g * c.ways
	lines := c.lines[base : base+c.ways]
	if int(c.vcnt[g]) == c.ways {
		// Full set (the steady state): every way is valid, so the tag
		// compare alone decides and the valid-bit load is dropped.
		for w := range lines {
			if lines[w] == line {
				return g, base + w, true
			}
		}
		return g, 0, false
	}
	valid := c.valid[base : base+c.ways]
	for w := range lines {
		if valid[w] && lines[w] == line {
			return g, base + w, true
		}
	}
	return g, 0, false
}

// Contains reports whether the line of p is resident (no state change).
func (c *Cache) Contains(p mem.PAddr) bool {
	_, _, ok := c.lookupLine(c.lineOf(p))
	return ok
}

// Access touches the line of p. On a hit the replacement state is updated;
// on a miss nothing is filled (use Fill). It reports the hit.
func (c *Cache) Access(p mem.PAddr) bool {
	line := c.lineOf(p)
	// Way-predictor fast path: a line address maps to exactly one set, so a
	// verified tag match at the predicted index IS the set's hit way and the
	// scan below would find the same one.
	if c.predOK && c.predLine == line {
		i := c.predIdx
		if c.valid[i] && c.lines[i] == line {
			g := c.predG
			c.pol.touch(g, i-g*c.ways)
			c.hits++
			if c.prefetched[i] {
				c.prefetched[i] = false
				c.usefulPrefetch++
			}
			return true
		}
	}
	g, i, ok := c.lookupLine(line)
	if ok {
		c.pol.touch(g, i-g*c.ways)
		c.hits++
		if c.prefetched[i] {
			c.prefetched[i] = false
			c.usefulPrefetch++
		}
		c.predLine, c.predIdx, c.predG, c.predOK = line, i, g, true
		return true
	}
	c.misses++
	return false
}

// insert fills the line, returning the evicted line if a valid one was
// displaced. Filling a line that is already resident (e.g. a prefetch of a
// cached line) refreshes its replacement state in place — it must never
// create a duplicate way, or a later flush would only remove one copy.
func (c *Cache) insert(line uint64, asPrefetch bool) (evicted uint64, wasValid bool) {
	g := c.gsetOfLine(line)
	base := g * c.ways
	lines := c.lines[base : base+c.ways]
	if int(c.vcnt[g]) == c.ways {
		// Full set: no empty way to track and every way valid, so the scan
		// reduces to the tag compare; a miss goes straight to the victim.
		for w := range lines {
			if lines[w] == line {
				c.pol.touch(g, w)
				c.predLine, c.predIdx, c.predG, c.predOK = line, base+w, g, true
				return 0, false
			}
		}
		w := c.pol.victim(g)
		i := base + w
		evicted, wasValid = c.lines[i], true
		c.lines[i] = line
		c.prefetched[i] = asPrefetch
		c.pol.insert(g, w)
		c.predLine, c.predIdx, c.predG, c.predOK = line, i, g, true
		return evicted, wasValid
	}
	valid := c.valid[base : base+c.ways]
	// One pass finds both the resident way (which wins, exactly as the
	// separate lookup-then-empty scans did) and the first empty way.
	empty := -1
	for w := range lines {
		if !valid[w] {
			if empty < 0 {
				empty = w
			}
			continue
		}
		if lines[w] == line {
			c.pol.touch(g, w)
			c.predLine, c.predIdx, c.predG, c.predOK = line, base+w, g, true
			return 0, false
		}
	}
	if empty >= 0 {
		i := base + empty
		c.lines[i] = line
		c.valid[i] = true
		c.vcnt[g]++
		c.prefetched[i] = asPrefetch
		c.pol.insert(g, empty)
		c.predLine, c.predIdx, c.predG, c.predOK = line, i, g, true
		return 0, false
	}
	w := c.pol.victim(g)
	i := base + w
	evicted, wasValid = c.lines[i], true
	c.lines[i] = line
	c.prefetched[i] = asPrefetch
	c.pol.insert(g, w)
	c.predLine, c.predIdx, c.predG, c.predOK = line, i, g, true
	return evicted, wasValid
}

// fillMissed is the demand-fill path for a line the caller has just proven
// absent (its Access missed and nothing inserted it since — Hierarchy.Load's
// miss branches). Skipping the residency scan lets a full set (the steady
// state, tracked by vcnt) go straight to victim selection; the state
// mutations are exactly those insert would perform for an absent line.
func (c *Cache) fillMissed(line uint64, asPrefetch bool) (evicted uint64, wasValid bool) {
	g := c.gsetOfLine(line)
	base := g * c.ways
	if int(c.vcnt[g]) < c.ways {
		valid := c.valid[base : base+c.ways]
		for w := range valid {
			if !valid[w] {
				i := base + w
				c.lines[i] = line
				c.valid[i] = true
				c.vcnt[g]++
				c.prefetched[i] = asPrefetch
				c.pol.insert(g, w)
				c.predLine, c.predIdx, c.predG, c.predOK = line, i, g, true
				return 0, false
			}
		}
	}
	w := c.pol.victim(g)
	i := base + w
	evicted, wasValid = c.lines[i], true
	c.lines[i] = line
	c.prefetched[i] = asPrefetch
	c.pol.insert(g, w)
	c.predLine, c.predIdx, c.predG, c.predOK = line, i, g, true
	return evicted, wasValid
}

// Fill inserts the line of p as a demand fill, returning the physical line
// address it evicted (valid only when evicted==true).
func (c *Cache) Fill(p mem.PAddr) (evictedLine uint64, evicted bool) {
	return c.insert(c.lineOf(p), false)
}

// FillPrefetch inserts the line of p as a prefetch fill, participating in
// the usefulness accounting (a later demand hit marks it useful).
func (c *Cache) FillPrefetch(p mem.PAddr) (evictedLine uint64, evicted bool) {
	c.prefetchFills++
	return c.insert(c.lineOf(p), true)
}

// PrefetchStats reports prefetch fills and how many were demand-hit before
// eviction (the coverage/accuracy inputs of a prefetcher study).
func (c *Cache) PrefetchStats() (fills, useful uint64) {
	return c.prefetchFills, c.usefulPrefetch
}

// Remove invalidates the line of p if present (clflush / back-invalidate).
func (c *Cache) Remove(p mem.PAddr) bool {
	if g, i, ok := c.lookupLine(c.lineOf(p)); ok {
		c.valid[i] = false
		c.vcnt[g]--
		if c.predOK && c.predIdx == i {
			c.predOK = false
		}
		return true
	}
	return false
}

// RemoveLine invalidates by physical line address (for back-invalidation of
// lines reported by Fill).
func (c *Cache) RemoveLine(line uint64) bool {
	p := mem.PAddr(line * c.cfg.LineSize)
	return c.Remove(p)
}

// Stats reports cumulative hits and misses observed by Access.
//
// Deprecated: read the same values from the machine's telemetry registry
// (<prefix>.hits / <prefix>.misses, via RegisterMetrics). Kept so existing
// callers and the golden report stay stable; both views sample the same
// counters and always agree.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats clears every cumulative counter: hits, misses, prefetch fills
// and useful-prefetch credits. (It previously left the prefetch counters
// running, which skewed any accuracy ratio computed after a reset.)
func (c *Cache) ResetStats() {
	c.hits, c.misses = 0, 0
	c.prefetchFills, c.usefulPrefetch = 0, 0
}

// RegisterMetrics exposes the cache's counters in reg under prefix
// (e.g. "cache.l1"): <prefix>.hits, .misses, .prefetch_fills,
// .useful_prefetches. Samplers read the live counters, so snapshots always
// match Stats()/PrefetchStats() exactly and the hot path pays nothing.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.RegisterFunc(prefix+".hits", func() uint64 { return c.hits })
	reg.RegisterFunc(prefix+".misses", func() uint64 { return c.misses })
	reg.RegisterFunc(prefix+".prefetch_fills", func() uint64 { return c.prefetchFills })
	reg.RegisterFunc(prefix+".useful_prefetches", func() uint64 { return c.usefulPrefetch })
}

// SliceHash is the standalone XOR-folding slice hash: it computes, for a
// power-of-two slice count, each selection bit as the parity of a fixed
// subset of physical address bits (the published Haswell functions); for
// non-power-of-two counts it folds the same parities modulo n.
func SliceHash(paddr uint64, n int) int {
	// Published XOR masks for the first three selection bits (o0..o2).
	h := int(parity(paddr & 0x1b5f575440))
	h |= int(parity(paddr&0x2eb5faa880)) << 1
	h |= int(parity(paddr&0x3cccc93100)) << 2
	if n&(n-1) == 0 {
		return h & (n - 1)
	}
	return h % n
}

func parity(x uint64) uint64 {
	return uint64(bits.OnesCount64(x)) & 1
}
