package cache

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// Config shapes one cache level.
type Config struct {
	Name       string
	SizeBytes  uint64
	Ways       int
	LineSize   uint64
	Policy     PolicyKind
	PolicySeed int64
	Slices     int // 0 or 1: unsliced
}

// Sets computes the number of sets per slice.
func (c Config) Sets() uint64 {
	slices := c.Slices
	if slices < 1 {
		slices = 1
	}
	return c.SizeBytes / (c.LineSize * uint64(c.Ways) * uint64(slices))
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	if c.LineSize == 0 || c.Ways <= 0 || c.SizeBytes == 0 {
		return fmt.Errorf("cache %q: size, ways and line size must be positive", c.Name)
	}
	slices := c.Slices
	if slices < 1 {
		slices = 1
	}
	per := c.LineSize * uint64(c.Ways) * uint64(slices)
	if c.SizeBytes%per != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line*slices", c.Name, c.SizeBytes)
	}
	return nil
}

// set is one associative set.
type set struct {
	lines []uint64 // physical line address per way
	valid []bool
	// prefetched marks lines installed by a prefetch and not yet demand-
	// hit (for usefulness accounting).
	prefetched []bool
	policy     Policy
}

func newSet(ways int, kind PolicyKind, seed int64) *set {
	return &set{
		lines:      make([]uint64, ways),
		valid:      make([]bool, ways),
		prefetched: make([]bool, ways),
		policy:     NewPolicy(kind, ways, seed),
	}
}

func (s *set) lookup(line uint64) (way int, ok bool) {
	for i, l := range s.lines {
		if s.valid[i] && l == line {
			return i, true
		}
	}
	return 0, false
}

// insert fills the line, returning the evicted line if a valid one was
// displaced. Filling a line that is already resident (e.g. a prefetch of a
// cached line) refreshes its replacement state in place — it must never
// create a duplicate way, or a later flush would only remove one copy.
func (s *set) insert(line uint64, asPrefetch bool) (evicted uint64, wasValid bool) {
	if w, ok := s.lookup(line); ok {
		s.policy.Touch(w)
		return 0, false
	}
	for i, v := range s.valid {
		if !v {
			s.lines[i] = line
			s.valid[i] = true
			s.prefetched[i] = asPrefetch
			s.policy.Insert(i)
			return 0, false
		}
	}
	w := s.policy.Victim()
	evicted, wasValid = s.lines[w], true
	s.lines[w] = line
	s.prefetched[w] = asPrefetch
	s.policy.Insert(w)
	return evicted, wasValid
}

func (s *set) remove(line uint64) bool {
	if w, ok := s.lookup(line); ok {
		s.valid[w] = false
		return true
	}
	return false
}

// Cache is one level: optionally sliced, set-associative, physically
// indexed by cache-line address.
type Cache struct {
	cfg    Config
	sets   [][]*set // [slice][set]
	nsets  uint64
	hits   uint64
	misses uint64
	// Prefetch usefulness accounting: lines installed by prefetch, and how
	// many of those received a demand hit before eviction.
	prefetchFills  uint64
	usefulPrefetch uint64
}

// New constructs a cache from its config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	slices := cfg.Slices
	if slices < 1 {
		slices = 1
	}
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, nsets: nsets}
	c.sets = make([][]*set, slices)
	for s := range c.sets {
		c.sets[s] = make([]*set, nsets)
		for i := range c.sets[s] {
			c.sets[s][i] = newSet(cfg.Ways, cfg.Policy, cfg.PolicySeed+int64(s*1000+i))
		}
	}
	return c, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSlices reports the slice count (≥ 1).
func (c *Cache) NumSlices() int { return len(c.sets) }

// NumSets reports sets per slice.
func (c *Cache) NumSets() uint64 { return c.nsets }

// SliceOf computes the slice index for a physical address using the
// XOR-folding hash reverse-engineered for Haswell-class parts (Irazoqui et
// al., DSD'15): each slice-selection bit is the parity of a subset of the
// physical address bits. With one slice it returns 0.
func (c *Cache) SliceOf(p mem.PAddr) int {
	n := len(c.sets)
	if n <= 1 {
		return 0
	}
	return SliceHash(uint64(p), n)
}

// SetOf computes the set index of a physical address. Power-of-two set
// counts index by masking like real hardware; other counts (e.g. the 1536
// sets per Coffee Lake LLC slice) fold by modulo.
func (c *Cache) SetOf(p mem.PAddr) uint64 {
	line := uint64(p) / c.cfg.LineSize
	if c.nsets&(c.nsets-1) == 0 {
		return line & (c.nsets - 1)
	}
	return line % c.nsets
}

func (c *Cache) setFor(p mem.PAddr) *set {
	return c.sets[c.SliceOf(p)][c.SetOf(p)]
}

// Contains reports whether the line of p is resident (no state change).
func (c *Cache) Contains(p mem.PAddr) bool {
	_, ok := c.setFor(p).lookup(uint64(p) / c.cfg.LineSize)
	return ok
}

// Access touches the line of p. On a hit the replacement state is updated;
// on a miss nothing is filled (use Fill). It reports the hit.
func (c *Cache) Access(p mem.PAddr) bool {
	s := c.setFor(p)
	if w, ok := s.lookup(uint64(p) / c.cfg.LineSize); ok {
		s.policy.Touch(w)
		c.hits++
		if s.prefetched[w] {
			s.prefetched[w] = false
			c.usefulPrefetch++
		}
		return true
	}
	c.misses++
	return false
}

// Fill inserts the line of p as a demand fill, returning the physical line
// address it evicted (valid only when evicted==true).
func (c *Cache) Fill(p mem.PAddr) (evictedLine uint64, evicted bool) {
	return c.setFor(p).insert(uint64(p)/c.cfg.LineSize, false)
}

// FillPrefetch inserts the line of p as a prefetch fill, participating in
// the usefulness accounting (a later demand hit marks it useful).
func (c *Cache) FillPrefetch(p mem.PAddr) (evictedLine uint64, evicted bool) {
	c.prefetchFills++
	return c.setFor(p).insert(uint64(p)/c.cfg.LineSize, true)
}

// PrefetchStats reports prefetch fills and how many were demand-hit before
// eviction (the coverage/accuracy inputs of a prefetcher study).
func (c *Cache) PrefetchStats() (fills, useful uint64) {
	return c.prefetchFills, c.usefulPrefetch
}

// Remove invalidates the line of p if present (clflush / back-invalidate).
func (c *Cache) Remove(p mem.PAddr) bool {
	return c.setFor(p).remove(uint64(p) / c.cfg.LineSize)
}

// RemoveLine invalidates by physical line address (for back-invalidation of
// lines reported by Fill).
func (c *Cache) RemoveLine(line uint64) bool {
	p := mem.PAddr(line * c.cfg.LineSize)
	return c.Remove(p)
}

// Stats reports cumulative hits and misses observed by Access.
//
// Deprecated: read the same values from the machine's telemetry registry
// (<prefix>.hits / <prefix>.misses, via RegisterMetrics). Kept so existing
// callers and the golden report stay stable; both views sample the same
// counters and always agree.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats clears every cumulative counter: hits, misses, prefetch fills
// and useful-prefetch credits. (It previously left the prefetch counters
// running, which skewed any accuracy ratio computed after a reset.)
func (c *Cache) ResetStats() {
	c.hits, c.misses = 0, 0
	c.prefetchFills, c.usefulPrefetch = 0, 0
}

// RegisterMetrics exposes the cache's counters in reg under prefix
// (e.g. "cache.l1"): <prefix>.hits, .misses, .prefetch_fills,
// .useful_prefetches. Samplers read the live counters, so snapshots always
// match Stats()/PrefetchStats() exactly and the hot path pays nothing.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.RegisterFunc(prefix+".hits", func() uint64 { return c.hits })
	reg.RegisterFunc(prefix+".misses", func() uint64 { return c.misses })
	reg.RegisterFunc(prefix+".prefetch_fills", func() uint64 { return c.prefetchFills })
	reg.RegisterFunc(prefix+".useful_prefetches", func() uint64 { return c.usefulPrefetch })
}

// SliceHash is the standalone XOR-folding slice hash: it computes, for a
// power-of-two slice count, each selection bit as the parity of a fixed
// subset of physical address bits (the published Haswell functions); for
// non-power-of-two counts it folds the same parities modulo n.
func SliceHash(paddr uint64, n int) int {
	// Published XOR masks for the first three selection bits (o0..o2).
	masks := [3]uint64{
		0x1b5f575440, // bit 0
		0x2eb5faa880, // bit 1
		0x3cccc93100, // bit 2
	}
	h := 0
	for b := 0; b < 3; b++ {
		h |= int(parity(paddr&masks[b])) << b
	}
	if n&(n-1) == 0 {
		return h & (n - 1)
	}
	return h % n
}

func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}
