package cache

import (
	"testing"

	"afterimage/internal/mem"
)

// Boundary tests for the one-entry way predictor in front of the set scan.
// The predictor only caches a location — every use re-verifies tag and
// validity and performs the same mutations the scan would — so these tests
// pin the hazard cases: stale predictions after removal, restore, and
// conflict eviction, and behaviour under deliberately corrupted (duplicate)
// state.

// aliasAddrs returns n addresses that all map to the same slice/set as p.
func aliasAddrs(c *Cache, p mem.PAddr, n int) []mem.PAddr {
	var out []mem.PAddr
	stride := mem.PAddr(uint64(c.NumSets()) * c.Config().LineSize)
	for a := p + stride; len(out) < n; a += stride {
		if c.SliceOf(a) == c.SliceOf(p) && c.SetOf(a) == c.SetOf(p) {
			out = append(out, a)
		}
	}
	return out
}

func TestWayPredictorBoundaries(t *testing.T) {
	const p = mem.PAddr(0x4000)

	cases := []struct {
		name string
		run  func(t *testing.T, c *Cache)
	}{
		{"stale after remove", func(t *testing.T, c *Cache) {
			c.Fill(p)
			if !c.Access(p) || !c.Access(p) {
				t.Fatal("warm access missed")
			}
			c.Remove(p)
			if c.Access(p) {
				t.Fatal("predictor resurrected a removed line")
			}
			c.Fill(p)
			if !c.Access(p) {
				t.Fatal("refilled line missed")
			}
		}},
		{"stale after restore", func(t *testing.T, c *Cache) {
			empty := c.Snapshot()
			c.Fill(p)
			c.Access(p) // trains the predictor on p's way
			if err := c.Restore(empty); err != nil {
				t.Fatal(err)
			}
			if c.predOK {
				t.Fatal("predictor survived Restore")
			}
			if c.Access(p) {
				t.Fatal("hit in a restored-empty cache")
			}
		}},
		{"stale after conflict eviction", func(t *testing.T, c *Cache) {
			c.Fill(p)
			c.Access(p)
			// Evict p by filling the whole set with aliases, then keep going.
			for _, a := range aliasAddrs(c, p, 2*c.Config().Ways) {
				c.Fill(a)
				c.Access(a)
			}
			if c.Contains(p) {
				t.Fatal("alias pressure did not evict p")
			}
			if c.Access(p) {
				t.Fatal("predictor hit an evicted line")
			}
		}},
		{"prediction follows the line across refills", func(t *testing.T, c *Cache) {
			c.Fill(p)
			c.Access(p)
			c.Fill(p) // resident refresh must not duplicate
			if errs := c.Audit(); len(errs) != 0 {
				t.Fatalf("audit after refill: %v", errs)
			}
			c.Remove(p)
			if c.Contains(p) {
				t.Fatal("duplicate way survived a single remove")
			}
		}},
		{"alternating aliases in one set", func(t *testing.T, c *Cache) {
			b := aliasAddrs(c, p, 1)[0]
			c.Fill(p)
			c.Fill(b)
			for i := 0; i < 8; i++ {
				if !c.Access(p) || !c.Access(b) {
					t.Fatalf("iteration %d: alias access missed", i)
				}
			}
			hits, misses := c.Stats()
			if hits != 16 || misses != 0 {
				t.Fatalf("hits=%d misses=%d, want 16/0", hits, misses)
			}
		}},
		{"restored duplicate state keeps first-way semantics", func(t *testing.T, c *Cache) {
			c.Fill(p)
			snap := c.Snapshot()
			// Corrupt the snapshot: duplicate p's line into a second way of
			// its set (what a corrupted restore could legally carry).
			si, set := c.SliceOf(p), c.SetOf(p)
			ss := &snap.Sets[si][set]
			var src int
			for w, v := range ss.Valid {
				if v {
					src = w
					break
				}
			}
			dst := (src + 1) % len(ss.Lines)
			ss.Lines[dst] = ss.Lines[src]
			ss.Valid[dst] = true
			if err := c.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if errs := c.Audit(); len(errs) == 0 {
				t.Fatal("audit missed the duplicate ways")
			}
			// The predictor was reset by Restore, so accesses resolve by scan
			// order (first matching way) — and stay consistent when repeated.
			if !c.Access(p) || !c.Access(p) {
				t.Fatal("duplicate-state access missed")
			}
			// Removing once drops only the first copy, exactly like the scan.
			if !c.Remove(p) {
				t.Fatal("remove failed")
			}
			if !c.Contains(p) {
				t.Fatal("remove dropped both duplicate ways at once")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, MustNew(small(LRU)))
		})
	}
}
