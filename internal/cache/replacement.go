// Package cache implements the memory-hierarchy substrate of the AfterImage
// simulator: set-associative caches with pluggable replacement policies, a
// sliced last-level cache with a Haswell-style XOR slice hash, and an
// inclusive three-level hierarchy offering the access, flush and fill
// operations the attacks build on.
package cache

import (
	"fmt"
	"math/rand"
)

// Policy is a per-set replacement policy over a fixed number of ways.
//
// The same interface backs both cache sets and the IP-stride prefetcher's
// history table (§4.5 of the paper concludes the latter uses Bit-PLRU).
type Policy interface {
	// Touch records a hit on the given way.
	Touch(way int)
	// Victim selects the way to evict when the set is full. It must not
	// change the policy state; the subsequent Insert does.
	Victim() int
	// Insert records that the way was (re)filled.
	Insert(way int)
	// Name identifies the policy.
	Name() string
}

// PolicyKind enumerates the built-in replacement policies.
type PolicyKind int

const (
	// LRU is true least-recently-used.
	LRU PolicyKind = iota
	// FIFO evicts in insertion order, ignoring hits.
	FIFO
	// BitPLRU is the MRU-bit approximation of LRU that §4.5 identifies in
	// the IP-stride prefetcher.
	BitPLRU
	// TreePLRU is the binary-tree approximation common in cache ways.
	TreePLRU
	// RandomPolicy evicts a pseudo-random way (seeded, deterministic).
	RandomPolicy
)

// String names the kind.
func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case BitPLRU:
		return "Bit-PLRU"
	case TreePLRU:
		return "Tree-PLRU"
	case RandomPolicy:
		return "Random"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// NewPolicy constructs a policy of the given kind for w ways. The seed is
// only used by RandomPolicy.
func NewPolicy(kind PolicyKind, w int, seed int64) Policy {
	switch kind {
	case LRU:
		return newLRU(w)
	case FIFO:
		return newFIFO(w)
	case BitPLRU:
		return NewBitPLRU(w)
	case TreePLRU:
		return newTreePLRU(w)
	case RandomPolicy:
		return &randomPolicy{ways: w, rng: rand.New(rand.NewSource(seed))}
	default:
		panic(fmt.Sprintf("cache: unknown policy kind %v", kind))
	}
}

// lru keeps an exact recency ordering; stamps[i] is the virtual time of the
// last touch of way i.
type lru struct {
	clock  uint64
	stamps []uint64
}

func newLRU(w int) *lru { return &lru{stamps: make([]uint64, w)} }

func (p *lru) Touch(way int) { p.clock++; p.stamps[way] = p.clock }

func (p *lru) Victim() int {
	best, bestStamp := 0, p.stamps[0]
	for i, s := range p.stamps[1:] {
		if s < bestStamp {
			best, bestStamp = i+1, s
		}
	}
	return best
}

func (p *lru) Insert(way int) { p.Touch(way) }
func (p *lru) Name() string   { return "LRU" }

// fifo evicts in insertion order; Touch is a no-op.
type fifo struct {
	order []uint64
	clock uint64
}

func newFIFO(w int) *fifo { return &fifo{order: make([]uint64, w)} }

func (p *fifo) Touch(int) {}

func (p *fifo) Victim() int {
	best, bestStamp := 0, p.order[0]
	for i, s := range p.order[1:] {
		if s < bestStamp {
			best, bestStamp = i+1, s
		}
	}
	return best
}

func (p *fifo) Insert(way int) { p.clock++; p.order[way] = p.clock }
func (p *fifo) Name() string   { return "FIFO" }

// bitPLRU keeps one MRU bit per way. A touch sets the way's bit; when that
// would make all bits one, every other bit is cleared first. The victim is
// the lowest-indexed way whose bit is clear. This is the textbook Bit-PLRU
// and reproduces the eviction patterns of Figures 8a and 8b.
type bitPLRU struct {
	mru  []bool
	ones int
}

// NewBitPLRU builds a Bit-PLRU policy over w ways. It is exported because
// the prefetcher package reuses it directly for its history table.
func NewBitPLRU(w int) Policy { return &bitPLRU{mru: make([]bool, w)} }

func (p *bitPLRU) Touch(way int) {
	if !p.mru[way] {
		p.ones++
		p.mru[way] = true
	}
	if p.ones == len(p.mru) {
		for i := range p.mru {
			p.mru[i] = false
		}
		p.mru[way] = true
		p.ones = 1
	}
}

func (p *bitPLRU) Victim() int {
	for i, b := range p.mru {
		if !b {
			return i
		}
	}
	return 0 // unreachable: Touch never leaves all bits set
}

func (p *bitPLRU) Insert(way int) { p.Touch(way) }
func (p *bitPLRU) Name() string   { return "Bit-PLRU" }

// treePLRU is the classic binary-tree pseudo-LRU (ways must be a power of 2;
// other widths are rounded up internally and out-of-range victims re-walked).
type treePLRU struct {
	ways int
	bits []bool // internal nodes of a complete binary tree
}

func newTreePLRU(w int) *treePLRU {
	n := 1
	for n < w {
		n <<= 1
	}
	return &treePLRU{ways: w, bits: make([]bool, n)} // bits[1..n-1] used
}

func (p *treePLRU) Touch(way int) {
	n := len(p.bits)
	idx := n + way
	for idx > 1 {
		parent := idx / 2
		p.bits[parent] = idx%2 == 0 // point away from the touched child
		idx = parent
	}
}

func (p *treePLRU) Victim() int {
	n := len(p.bits)
	idx := 1
	for idx < n {
		if p.bits[idx] {
			idx = 2*idx + 1
		} else {
			idx = 2 * idx
		}
	}
	v := idx - n
	if v >= p.ways {
		v = p.ways - 1
	}
	return v
}

func (p *treePLRU) Insert(way int) { p.Touch(way) }
func (p *treePLRU) Name() string   { return "Tree-PLRU" }

type randomPolicy struct {
	ways int
	rng  *rand.Rand
}

func (p *randomPolicy) Touch(int)      {}
func (p *randomPolicy) Victim() int    { return p.rng.Intn(p.ways) }
func (p *randomPolicy) Insert(way int) {}
func (p *randomPolicy) Name() string   { return "Random" }
