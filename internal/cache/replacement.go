// Package cache implements the memory-hierarchy substrate of the AfterImage
// simulator: set-associative caches with pluggable replacement policies, a
// sliced last-level cache with a Haswell-style XOR slice hash, and an
// inclusive three-level hierarchy offering the access, flush and fill
// operations the attacks build on.
package cache

import (
	"fmt"

	"afterimage/internal/detrand"
)

// Policy is a per-set replacement policy over a fixed number of ways.
//
// The same interface backs both cache sets and the IP-stride prefetcher's
// history table (§4.5 of the paper concludes the latter uses Bit-PLRU).
type Policy interface {
	// Touch records a hit on the given way.
	Touch(way int)
	// Victim selects the way to evict when the set is full. It must not
	// change the policy state; the subsequent Insert does.
	Victim() int
	// Insert records that the way was (re)filled.
	Insert(way int)
	// Name identifies the policy.
	Name() string
	// Save serialises the policy's replacement state as a flat word slice
	// whose layout is private to the policy. Load(Save()) must restore an
	// equivalent policy.
	Save() []uint64
	// Load adopts previously saved state verbatim — no sanitisation, so a
	// corrupted save sticks and Audit can observe it.
	Load(state []uint64)
	// Audit checks the policy's structural invariants (e.g. Bit-PLRU never
	// holds all MRU bits set) and returns a description of the first
	// violation, or nil.
	Audit() error
}

// PolicyKind enumerates the built-in replacement policies.
type PolicyKind int

const (
	// LRU is true least-recently-used.
	LRU PolicyKind = iota
	// FIFO evicts in insertion order, ignoring hits.
	FIFO
	// BitPLRU is the MRU-bit approximation of LRU that §4.5 identifies in
	// the IP-stride prefetcher.
	BitPLRU
	// TreePLRU is the binary-tree approximation common in cache ways.
	TreePLRU
	// RandomPolicy evicts a pseudo-random way (seeded, deterministic).
	RandomPolicy
)

// String names the kind.
func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case BitPLRU:
		return "Bit-PLRU"
	case TreePLRU:
		return "Tree-PLRU"
	case RandomPolicy:
		return "Random"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// NewPolicy constructs a policy of the given kind for w ways. The seed is
// only used by RandomPolicy.
func NewPolicy(kind PolicyKind, w int, seed int64) Policy {
	switch kind {
	case LRU:
		return newLRU(w)
	case FIFO:
		return newFIFO(w)
	case BitPLRU:
		return NewBitPLRU(w)
	case TreePLRU:
		return newTreePLRU(w)
	case RandomPolicy:
		return newRandomPolicy(w, seed)
	default:
		panic(fmt.Sprintf("cache: unknown policy kind %v", kind))
	}
}

// lru keeps an exact recency ordering; stamps[i] is the virtual time of the
// last touch of way i.
type lru struct {
	clock  uint64
	stamps []uint64
}

func newLRU(w int) *lru { return &lru{stamps: make([]uint64, w)} }

func (p *lru) Touch(way int) { p.clock++; p.stamps[way] = p.clock }

func (p *lru) Victim() int {
	best, bestStamp := 0, p.stamps[0]
	for i, s := range p.stamps[1:] {
		if s < bestStamp {
			best, bestStamp = i+1, s
		}
	}
	return best
}

func (p *lru) Insert(way int) { p.Touch(way) }
func (p *lru) Name() string   { return "LRU" }

// Save layout: [clock, stamps...].
func (p *lru) Save() []uint64 {
	return append([]uint64{p.clock}, p.stamps...)
}

func (p *lru) Load(state []uint64) {
	p.clock = state[0]
	copy(p.stamps, state[1:])
}

func (p *lru) Audit() error {
	for i, s := range p.stamps {
		if s > p.clock {
			return fmt.Errorf("LRU: way %d stamp %d ahead of clock %d", i, s, p.clock)
		}
	}
	return nil
}

// fifo evicts in insertion order; Touch is a no-op.
type fifo struct {
	order []uint64
	clock uint64
}

func newFIFO(w int) *fifo { return &fifo{order: make([]uint64, w)} }

func (p *fifo) Touch(int) {}

func (p *fifo) Victim() int {
	best, bestStamp := 0, p.order[0]
	for i, s := range p.order[1:] {
		if s < bestStamp {
			best, bestStamp = i+1, s
		}
	}
	return best
}

func (p *fifo) Insert(way int) { p.clock++; p.order[way] = p.clock }
func (p *fifo) Name() string   { return "FIFO" }

// Save layout: [clock, order...].
func (p *fifo) Save() []uint64 {
	return append([]uint64{p.clock}, p.order...)
}

func (p *fifo) Load(state []uint64) {
	p.clock = state[0]
	copy(p.order, state[1:])
}

func (p *fifo) Audit() error {
	for i, s := range p.order {
		if s > p.clock {
			return fmt.Errorf("FIFO: way %d stamp %d ahead of clock %d", i, s, p.clock)
		}
	}
	return nil
}

// bitPLRU keeps one MRU bit per way. A touch sets the way's bit; when that
// would make all bits one, every other bit is cleared first. The victim is
// the lowest-indexed way whose bit is clear. This is the textbook Bit-PLRU
// and reproduces the eviction patterns of Figures 8a and 8b.
type bitPLRU struct {
	mru  []bool
	ones int
}

// NewBitPLRU builds a Bit-PLRU policy over w ways. It is exported because
// the prefetcher package reuses it directly for its history table.
func NewBitPLRU(w int) Policy { return &bitPLRU{mru: make([]bool, w)} }

func (p *bitPLRU) Touch(way int) {
	if !p.mru[way] {
		p.ones++
		p.mru[way] = true
	}
	if p.ones == len(p.mru) {
		for i := range p.mru {
			p.mru[i] = false
		}
		p.mru[way] = true
		p.ones = 1
	}
}

func (p *bitPLRU) Victim() int {
	for i, b := range p.mru {
		if !b {
			return i
		}
	}
	return 0 // unreachable: Touch never leaves all bits set
}

func (p *bitPLRU) Insert(way int) { p.Touch(way) }
func (p *bitPLRU) Name() string   { return "Bit-PLRU" }

// Save layout: [ones, bits...].
func (p *bitPLRU) Save() []uint64 {
	out := make([]uint64, 1+len(p.mru))
	out[0] = uint64(p.ones)
	for i, b := range p.mru {
		if b {
			out[1+i] = 1
		}
	}
	return out
}

func (p *bitPLRU) Load(state []uint64) {
	p.ones = int(state[0])
	for i := range p.mru {
		p.mru[i] = state[1+i] != 0
	}
}

// Audit enforces the two Bit-PLRU invariants Touch maintains: the ones
// counter matches the population count, and at least one MRU bit is always
// clear (the all-ones state is reset eagerly, never stored).
func (p *bitPLRU) Audit() error {
	pop := 0
	for _, b := range p.mru {
		if b {
			pop++
		}
	}
	if pop != p.ones {
		return fmt.Errorf("Bit-PLRU: ones counter %d != popcount %d", p.ones, pop)
	}
	if pop == len(p.mru) && len(p.mru) > 0 {
		return fmt.Errorf("Bit-PLRU: all %d MRU bits set (all-ones state must never persist)", pop)
	}
	return nil
}

// CorruptBitPLRU forces a Bit-PLRU policy into the forbidden all-ones state
// (every MRU bit set, counter agreeing), which Touch can never produce and
// Audit must flag. It reports false when the policy is not Bit-PLRU.
func CorruptBitPLRU(p Policy) bool {
	if v, ok := p.(*setPolicyView); ok {
		return corruptViewBitPLRU(v)
	}
	bp, ok := p.(*bitPLRU)
	if !ok || len(bp.mru) == 0 {
		return false
	}
	for i := range bp.mru {
		bp.mru[i] = true
	}
	bp.ones = len(bp.mru)
	return true
}

// treePLRU is the classic binary-tree pseudo-LRU (ways must be a power of 2;
// other widths are rounded up internally and out-of-range victims re-walked).
type treePLRU struct {
	ways int
	bits []bool // internal nodes of a complete binary tree
}

func newTreePLRU(w int) *treePLRU {
	n := 1
	for n < w {
		n <<= 1
	}
	return &treePLRU{ways: w, bits: make([]bool, n)} // bits[1..n-1] used
}

func (p *treePLRU) Touch(way int) {
	n := len(p.bits)
	idx := n + way
	for idx > 1 {
		parent := idx / 2
		p.bits[parent] = idx%2 == 0 // point away from the touched child
		idx = parent
	}
}

func (p *treePLRU) Victim() int {
	n := len(p.bits)
	idx := 1
	for idx < n {
		if p.bits[idx] {
			idx = 2*idx + 1
		} else {
			idx = 2 * idx
		}
	}
	v := idx - n
	if v >= p.ways {
		v = p.ways - 1
	}
	return v
}

func (p *treePLRU) Insert(way int) { p.Touch(way) }
func (p *treePLRU) Name() string   { return "Tree-PLRU" }

// Save layout: [bits...] (any bit pattern is a legal tree state).
func (p *treePLRU) Save() []uint64 {
	out := make([]uint64, len(p.bits))
	for i, b := range p.bits {
		if b {
			out[i] = 1
		}
	}
	return out
}

func (p *treePLRU) Load(state []uint64) {
	for i := range p.bits {
		p.bits[i] = state[i] != 0
	}
}

func (p *treePLRU) Audit() error { return nil }

// randomPolicy evicts pseudo-randomly from a counting source so its RNG
// position snapshots alongside the rest of the policy state.
type randomPolicy struct {
	ways int
	src  *detrand.Source
}

func newRandomPolicy(w int, seed int64) *randomPolicy {
	return &randomPolicy{ways: w, src: detrand.NewSource(seed)}
}

func (p *randomPolicy) Touch(int) {}
func (p *randomPolicy) Victim() int {
	// rand.Rand.Intn for small n reduces to one Int63 draw; inline the
	// equivalent so the draw count maps one-to-one onto source positions.
	return int(p.src.Int63() % int64(p.ways))
}
func (p *randomPolicy) Insert(way int) {}
func (p *randomPolicy) Name() string   { return "Random" }

// Save layout: [draws] — the RNG position is the policy's only state.
func (p *randomPolicy) Save() []uint64      { return []uint64{p.src.Draws()} }
func (p *randomPolicy) Load(state []uint64) { p.src.Restore(state[0]) }
func (p *randomPolicy) Audit() error        { return nil }
