package cache

import "afterimage/internal/detrand"

// Fork support: deep-copy a cache level (and the whole hierarchy) so a
// forked machine can diverge from a warmed parent without sharing mutable
// state. The flat-slice layout (PR 5) makes this a handful of bulk slice
// copies — no per-set objects to walk. Profiling note: a full-slice copy of
// a warmed Coffee Lake hierarchy is a few hundred KiB of memmove, far below
// the cost of re-warming, and avoids any copy-on-write bookkeeping on the
// per-access hot path, so the "cheap full-slice copy" arm of the fork
// design wins outright.

// clone deep-copies the replacement engine. Immutable precomputed tables
// (tsetM/tclrM — Tree-PLRU touch masks, fixed at construction) are shared;
// everything mutable is copied, and RandomPolicy sources are cloned at
// their exact stream position so parent and fork draw identical victims.
func (pa *policyArray) clone() *policyArray {
	c := &policyArray{
		kind:    pa.kind,
		ways:    pa.ways,
		tsetM:   pa.tsetM,
		tclrM:   pa.tclrM,
		tpacked: pa.tpacked,
		tnodes:  pa.tnodes,
	}
	if pa.clocks != nil {
		c.clocks = append([]uint64(nil), pa.clocks...)
		c.stamps = append([]uint64(nil), pa.stamps...)
	}
	if pa.mru != nil {
		c.mru = append([]bool(nil), pa.mru...)
		c.ones = append([]int32(nil), pa.ones...)
	}
	if pa.tbits != nil {
		c.tbits = append([]bool(nil), pa.tbits...)
	}
	if pa.twords != nil {
		c.twords = append([]uint64(nil), pa.twords...)
	}
	if pa.srcs != nil {
		c.srcs = make([]*detrand.Source, len(pa.srcs))
		for g, s := range pa.srcs {
			c.srcs[g] = s.Clone()
		}
	}
	return c
}

// Fork returns an independent deep copy of the cache. Tag/valid/prefetched
// arrays, replacement state and counters are copied; the way predictor is
// dropped (predOK=false) exactly as Restore drops it — it caches only a
// location, so clearing it never changes observable state.
func (c *Cache) Fork() *Cache {
	f := *c
	f.lines = append([]uint64(nil), c.lines...)
	f.valid = append([]bool(nil), c.valid...)
	f.prefetched = append([]bool(nil), c.prefetched...)
	f.vcnt = append([]int32(nil), c.vcnt...)
	f.pol = c.pol.clone()
	f.predLine, f.predIdx, f.predG, f.predOK = 0, 0, 0, false
	return &f
}

// Fork returns an independent deep copy of the whole hierarchy.
func (h *Hierarchy) Fork() *Hierarchy {
	return &Hierarchy{L1: h.L1.Fork(), L2: h.L2.Fork(), LLC: h.LLC.Fork(), Lat: h.Lat}
}
