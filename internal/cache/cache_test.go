package cache

import (
	"testing"
	"testing/quick"

	"afterimage/internal/mem"
)

func small(policy PolicyKind) Config {
	return Config{Name: "t", SizeBytes: 4 << 10, Ways: 4, LineSize: 64, Policy: policy}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero config validated")
	}
	bad := small(LRU)
	bad.SizeBytes = 4<<10 + 64
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible size validated")
	}
	if err := small(LRU).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestFillAndLookup(t *testing.T) {
	c := MustNew(small(LRU))
	p := mem.PAddr(0x1000)
	if c.Access(p) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(p)
	if !c.Access(p) {
		t.Fatal("miss after fill")
	}
	if !c.Contains(p) {
		t.Fatal("Contains false after fill")
	}
	if !c.Remove(p) {
		t.Fatal("Remove failed")
	}
	if c.Contains(p) {
		t.Fatal("Contains true after remove")
	}
}

func TestSameLineDifferentBytes(t *testing.T) {
	c := MustNew(small(LRU))
	c.Fill(0x1000)
	if !c.Access(0x103F) {
		t.Fatal("same-line different-offset access missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(small(LRU)) // 16 sets, 4 ways
	// Five lines mapping to set 0: line addresses are multiples of 16 lines.
	setStride := uint64(16 * 64)
	for i := uint64(0); i < 4; i++ {
		c.Fill(mem.PAddr(i * setStride))
	}
	// Touch line 0 to make it MRU; fill a fifth line.
	c.Access(0)
	ev, ok := c.Fill(mem.PAddr(4 * setStride))
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev != 1*16 { // line address of the LRU victim (i=1)
		t.Fatalf("evicted line %d, want %d", ev, 16)
	}
	if !c.Contains(0) {
		t.Fatal("MRU line evicted")
	}
}

func TestSliceHashStability(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for pa := uint64(0); pa < 1<<20; pa += 4096 + 64 {
			h1 := SliceHash(pa, n)
			h2 := SliceHash(pa, n)
			if h1 != h2 {
				t.Fatalf("hash unstable for %#x", pa)
			}
			if h1 < 0 || h1 >= n {
				t.Fatalf("hash %d out of range for n=%d", h1, n)
			}
		}
	}
}

func TestSliceHashSpreads(t *testing.T) {
	counts := make([]int, 8)
	for pa := uint64(0); pa < 1<<24; pa += 64 {
		counts[SliceHash(pa, 8)]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	for s, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.08 || frac > 0.18 {
			t.Fatalf("slice %d holds %.1f%% of lines; want near 12.5%%", s, frac*100)
		}
	}
}

func TestHierarchyInclusive(t *testing.T) {
	cfg := HierarchyConfig{
		L1:  Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		L2:  Config{Name: "L2", SizeBytes: 2 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		LLC: Config{Name: "LLC", SizeBytes: 4 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		Lat: Latencies{L1: 4, L2: 12, LLC: 40, DRAM: 200},
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := mem.PAddr(0x4000)
	if lvl, lat := h.Load(p); lvl != LevelDRAM || lat != 200 {
		t.Fatalf("cold load: %v/%d", lvl, lat)
	}
	if lvl, lat := h.Load(p); lvl != LevelL1 || lat != 4 {
		t.Fatalf("warm load: %v/%d", lvl, lat)
	}
	// Evict p from the LLC by filling its set (2 ways, 32 sets/LLC).
	llcSetStride := uint64(h.LLC.NumSets() * 64)
	for i := uint64(1); i <= 2; i++ {
		h.Fill(p + mem.PAddr(i*llcSetStride))
	}
	if h.L1.Contains(p) || h.L2.Contains(p) {
		t.Fatal("inclusivity violated: inner levels kept an LLC-evicted line")
	}
}

func TestHierarchyFlush(t *testing.T) {
	cfg := HierarchyConfig{
		L1:  Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		L2:  Config{Name: "L2", SizeBytes: 2 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		LLC: Config{Name: "LLC", SizeBytes: 4 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		Lat: Latencies{L1: 4, L2: 12, LLC: 40, DRAM: 200},
	}
	h, _ := NewHierarchy(cfg)
	p := mem.PAddr(0x8000)
	h.Load(p)
	h.Flush(p)
	if h.Contains(p) {
		t.Fatal("line survived clflush")
	}
	if lvl := h.Probe(p); lvl != LevelDRAM {
		t.Fatalf("probe after flush: %v", lvl)
	}
}

func TestProbeIsNonDestructive(t *testing.T) {
	c := MustNew(small(LRU))
	c.Fill(0x1000)
	h0, m0 := c.Stats()
	c.Contains(0x1000)
	c.Contains(0x2000)
	if h, m := c.Stats(); h != h0 || m != m0 {
		t.Fatal("Contains changed stats")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	cfg := Config{Name: "cfl-llc", SizeBytes: 12 << 20, Ways: 16, LineSize: 64, Policy: LRU, Slices: 8}
	c := MustNew(cfg)
	if c.NumSets() != 1536 {
		t.Fatalf("sets = %d, want 1536", c.NumSets())
	}
	// Fill and find lines across the modulo boundary.
	for i := uint64(0); i < 4000; i++ {
		p := mem.PAddr(i * 64)
		c.Fill(p)
		if !c.Contains(p) {
			t.Fatalf("line %d lost right after fill", i)
		}
	}
}

// TestPoliciesQuick property-tests every replacement policy: victims are
// always in range and a freshly touched way is never the immediate victim
// (except for FIFO and Random, which ignore recency).
func TestPoliciesQuick(t *testing.T) {
	kinds := []PolicyKind{LRU, FIFO, BitPLRU, TreePLRU, RandomPolicy}
	for _, k := range kinds {
		k := k
		f := func(touches []uint8) bool {
			const ways = 8
			p := NewPolicy(k, ways, 42)
			for i := 0; i < ways; i++ {
				p.Insert(i)
			}
			for _, x := range touches {
				way := int(x) % ways
				p.Touch(way)
				v := p.Victim()
				if v < 0 || v >= ways {
					return false
				}
				if (k == LRU || k == BitPLRU) && v == way {
					return false // just-touched way must not be the victim
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestBitPLRUResetSemantics(t *testing.T) {
	p := NewBitPLRU(4)
	for i := 0; i < 4; i++ {
		p.Insert(i)
	}
	// Inserting way 3 saturated the bits and reset all but 3.
	if v := p.Victim(); v != 0 {
		t.Fatalf("victim after saturation = %d, want 0", v)
	}
	p.Touch(0)
	if v := p.Victim(); v != 1 {
		t.Fatalf("victim after touch(0) = %d, want 1", v)
	}
}

func TestTreePLRUCycles(t *testing.T) {
	p := NewPolicy(TreePLRU, 4, 0)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		v := p.Victim()
		seen[v] = true
		p.Insert(v)
	}
	if len(seen) != 4 {
		t.Fatalf("tree-PLRU visited %d/4 ways over 16 evictions", len(seen))
	}
}

func TestPolicyNames(t *testing.T) {
	for _, k := range []PolicyKind{LRU, FIFO, BitPLRU, TreePLRU, RandomPolicy} {
		if NewPolicy(k, 4, 0).Name() == "" {
			t.Fatalf("%v has empty name", k)
		}
		if k.String() == "" {
			t.Fatalf("%v has empty kind string", k)
		}
	}
}

func TestLatenciesOf(t *testing.T) {
	l := Latencies{L1: 1, L2: 2, LLC: 3, DRAM: 4}
	cases := []struct {
		level Level
		want  uint64
	}{
		{LevelL1, 1},
		{LevelL2, 2},
		{LevelLLC, 3},
		{LevelDRAM, 4},
	}
	for _, tc := range cases {
		t.Run(tc.level.String(), func(t *testing.T) {
			if got := l.Of(tc.level); got != tc.want {
				t.Fatalf("Of(%v) = %d, want %d", tc.level, got, tc.want)
			}
		})
	}
}

func TestLevelString(t *testing.T) {
	for _, lvl := range []Level{LevelL1, LevelL2, LevelLLC, LevelDRAM} {
		if lvl.String() == "" {
			t.Fatal("empty level string")
		}
	}
}

func TestFillIsIdempotent(t *testing.T) {
	c := MustNew(small(LRU))
	c.Fill(0x1000)
	c.Fill(0x1000) // duplicate fill (e.g. prefetch of a resident line)
	if !c.Remove(0x1000) {
		t.Fatal("remove failed")
	}
	if c.Contains(0x1000) {
		t.Fatal("duplicate way survived a flush")
	}
}

func TestHierarchyPrefetchOfResidentLineThenFlush(t *testing.T) {
	cfg := HierarchyConfig{
		L1:  Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		L2:  Config{Name: "L2", SizeBytes: 2 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		LLC: Config{Name: "LLC", SizeBytes: 4 << 10, Ways: 2, LineSize: 64, Policy: LRU},
		Lat: Latencies{L1: 4, L2: 12, LLC: 40, DRAM: 200},
	}
	h, _ := NewHierarchy(cfg)
	p := mem.PAddr(0x9000)
	h.Load(p)
	h.Fill(p) // a prefetcher re-fills the already-cached line
	h.Fill(p)
	h.Flush(p)
	if h.Contains(p) {
		t.Fatal("line survived clflush after redundant prefetch fills")
	}
}

func TestPrefetchUsefulnessAccounting(t *testing.T) {
	c := MustNew(small(LRU))
	c.FillPrefetch(0x1000)
	c.FillPrefetch(0x2000)
	if fills, useful := c.PrefetchStats(); fills != 2 || useful != 0 {
		t.Fatalf("fills=%d useful=%d", fills, useful)
	}
	c.Access(0x1000) // demand hit marks the line useful, once
	c.Access(0x1000)
	if _, useful := c.PrefetchStats(); useful != 1 {
		t.Fatalf("useful=%d after demand hits", useful)
	}
	// Demand fills never count as prefetches.
	c.Fill(0x3000)
	c.Access(0x3000)
	if fills, useful := c.PrefetchStats(); fills != 2 || useful != 1 {
		t.Fatalf("demand fill contaminated stats: %d/%d", fills, useful)
	}
}

// TestResetStatsClearsAllCounters pins the fix for the reset asymmetry:
// ResetStats used to clear hits/misses but leave the prefetch-fill and
// useful-prefetch counters running, so any accuracy ratio computed after a
// reset mixed epochs.
func TestResetStatsClearsAllCounters(t *testing.T) {
	c := MustNew(small(LRU))
	c.Fill(0x1000)
	c.Access(0x1000) // hit
	c.Access(0x8000) // miss
	c.FillPrefetch(0x2000)
	c.Access(0x2000) // useful prefetch (and a hit)

	if h, m := c.Stats(); h == 0 || m == 0 {
		t.Fatalf("setup: hits=%d misses=%d", h, m)
	}
	if f, u := c.PrefetchStats(); f != 1 || u != 1 {
		t.Fatalf("setup: fills=%d useful=%d", f, u)
	}

	c.ResetStats()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("after reset: hits=%d misses=%d", h, m)
	}
	if f, u := c.PrefetchStats(); f != 0 || u != 0 {
		t.Fatalf("after reset prefetch counters survived: fills=%d useful=%d", f, u)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h, _ := NewHierarchy(HierarchyConfig{
		L1: small(LRU), L2: small(LRU), LLC: small(LRU),
		Lat: Latencies{L1: 4, L2: 12, LLC: 40, DRAM: 200},
	})
	h.Load(0x1000)
	h.Prefetch(0x2000)
	h.ResetStats()
	for _, c := range []*Cache{h.L1, h.L2, h.LLC} {
		if hits, misses := c.Stats(); hits != 0 || misses != 0 {
			t.Fatalf("%s: hits=%d misses=%d after reset", c.Config().Name, hits, misses)
		}
		if f, u := c.PrefetchStats(); f != 0 || u != 0 {
			t.Fatalf("%s: fills=%d useful=%d after reset", c.Config().Name, f, u)
		}
	}
}
