package cache

import (
	"testing"

	"afterimage/internal/mem"
)

func BenchmarkCacheAccessHit(b *testing.B) {
	c := MustNew(Config{Name: "b", SizeBytes: 32 << 10, Ways: 8, LineSize: 64, Policy: TreePLRU})
	c.Fill(0x1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkCacheFillEvict(b *testing.B) {
	c := MustNew(Config{Name: "b", SizeBytes: 32 << 10, Ways: 8, LineSize: 64, Policy: TreePLRU})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(mem.PAddr(uint64(i) * 64))
	}
}

func BenchmarkHierarchyLoadMiss(b *testing.B) {
	cfg := HierarchyConfig{
		L1:  Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineSize: 64, Policy: TreePLRU},
		L2:  Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4, LineSize: 64, Policy: TreePLRU},
		LLC: Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, LineSize: 64, Policy: LRU},
		Lat: Latencies{L1: 4, L2: 14, LLC: 44, DRAM: 200},
	}
	h, _ := NewHierarchy(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(mem.PAddr(uint64(i) * 64))
	}
}

func BenchmarkSliceHash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SliceHash(uint64(i)*64, 8)
	}
}
