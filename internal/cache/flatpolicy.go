package cache

import (
	"fmt"

	"afterimage/internal/detrand"
)

// policyArray is the flattened per-set replacement state of one cache
// level: one engine instance holds the state of EVERY set in contiguous
// slices, indexed by global set number (slice-major, g = slice*nsets+set).
// It replaces the seed layout of one heap-allocated Policy object per set,
// eliminating both the per-set allocations and the per-access interface
// dispatch, while implementing the exact same state machines — Save/Load
// layouts, victim choice and audit rules are bit-compatible with the
// standalone policies in replacement.go (which remain the reference
// implementations, still used by the prefetcher's history table and by the
// equivalence tests).
type policyArray struct {
	kind PolicyKind
	ways int

	// LRU and FIFO: a virtual clock per set and one stamp per way
	// (last-touch time for LRU, insertion time for FIFO).
	clocks []uint64 // [gset]
	stamps []uint64 // [gset*ways+way]

	// BitPLRU: one MRU bit per way plus the ones count per set.
	mru  []bool  // [gset*ways+way]
	ones []int32 // [gset]

	// TreePLRU: the internal nodes of a complete binary tree per set;
	// tnodes is the round-up power of two of ways (bits 1..tnodes-1 used).
	// When the tree fits a machine word (tnodes ≤ 64, i.e. ways ≤ 64 —
	// every modelled cache), the nodes are packed one word per set with
	// node i at bit i, and a touch is two precomputed masks instead of a
	// root walk; larger trees fall back to the per-node bool slice.
	tbits   []bool   // [gset*tnodes+node] (only when !tpacked)
	twords  []uint64 // [gset] packed tree (only when tpacked)
	tsetM   []uint64 // [way] bits a touch of this way sets
	tclrM   []uint64 // [way] bits a touch of this way clears
	tpacked bool
	tnodes  int

	// Random: one counting source per set, seeded exactly as the seed code
	// seeded its per-set randomPolicy instances.
	srcs []*detrand.Source // [gset]
}

// newPolicyArray builds the flat engine for gsets sets of the given kind.
// seedOf must reproduce the per-set seed the seed implementation used
// (PolicySeed + slice*1000 + set); only RandomPolicy consumes it.
func newPolicyArray(kind PolicyKind, gsets, ways int, seedOf func(g int) int64) *policyArray {
	pa := &policyArray{kind: kind, ways: ways}
	switch kind {
	case LRU, FIFO:
		pa.clocks = make([]uint64, gsets)
		pa.stamps = make([]uint64, gsets*ways)
	case BitPLRU:
		pa.mru = make([]bool, gsets*ways)
		pa.ones = make([]int32, gsets)
	case TreePLRU:
		n := 1
		for n < ways {
			n <<= 1
		}
		pa.tnodes = n
		if n <= 64 {
			pa.tpacked = true
			pa.twords = make([]uint64, gsets)
			pa.tsetM = make([]uint64, ways)
			pa.tclrM = make([]uint64, ways)
			for w := 0; w < ways; w++ {
				idx := n + w
				for idx > 1 {
					parent := idx / 2
					if idx%2 == 0 {
						pa.tsetM[w] |= 1 << uint(parent)
					} else {
						pa.tclrM[w] |= 1 << uint(parent)
					}
					idx = parent
				}
			}
		} else {
			pa.tbits = make([]bool, gsets*n)
		}
	case RandomPolicy:
		pa.srcs = make([]*detrand.Source, gsets)
		for g := range pa.srcs {
			pa.srcs[g] = detrand.NewSource(seedOf(g))
		}
	default:
		panic(fmt.Sprintf("cache: unknown policy kind %v", kind))
	}
	return pa
}

func (pa *policyArray) name() string { return PolicyKind(pa.kind).String() }

// touch records a hit on way w of global set g.
func (pa *policyArray) touch(g, w int) {
	switch pa.kind {
	case LRU:
		pa.clocks[g]++
		pa.stamps[g*pa.ways+w] = pa.clocks[g]
	case BitPLRU:
		mru := pa.mru[g*pa.ways : (g+1)*pa.ways]
		if !mru[w] {
			pa.ones[g]++
			mru[w] = true
		}
		if int(pa.ones[g]) == pa.ways {
			for i := range mru {
				mru[i] = false
			}
			mru[w] = true
			pa.ones[g] = 1
		}
	case TreePLRU:
		if pa.tpacked {
			pa.twords[g] = (pa.twords[g] &^ pa.tclrM[w]) | pa.tsetM[w]
			return
		}
		tbits := pa.tbits[g*pa.tnodes : (g+1)*pa.tnodes]
		idx := pa.tnodes + w
		for idx > 1 {
			parent := idx / 2
			tbits[parent] = idx%2 == 0
			idx = parent
		}
	case FIFO, RandomPolicy:
		// recency-blind
	}
}

// victim selects the way to evict from global set g without changing state
// (except RandomPolicy, which consumes one source draw like the seed code).
func (pa *policyArray) victim(g int) int {
	switch pa.kind {
	case LRU, FIFO:
		stamps := pa.stamps[g*pa.ways : (g+1)*pa.ways]
		best, bestStamp := 0, stamps[0]
		for i := 1; i < len(stamps); i++ {
			if s := stamps[i]; s < bestStamp {
				best, bestStamp = i, s
			}
		}
		return best
	case BitPLRU:
		mru := pa.mru[g*pa.ways : (g+1)*pa.ways]
		for i := range mru {
			if !mru[i] {
				return i
			}
		}
		return 0 // unreachable: touch never leaves all bits set
	case TreePLRU:
		var v int
		if pa.tpacked {
			word := pa.twords[g]
			idx := 1
			for idx < pa.tnodes {
				idx = 2*idx + int((word>>uint(idx))&1)
			}
			v = idx - pa.tnodes
		} else {
			tbits := pa.tbits[g*pa.tnodes : (g+1)*pa.tnodes]
			idx := 1
			for idx < pa.tnodes {
				if tbits[idx] {
					idx = 2*idx + 1
				} else {
					idx = 2 * idx
				}
			}
			v = idx - pa.tnodes
		}
		if v >= pa.ways {
			v = pa.ways - 1
		}
		return v
	default: // RandomPolicy
		return int(pa.srcs[g].Int63() % int64(pa.ways))
	}
}

// insert records that way w of global set g was (re)filled.
func (pa *policyArray) insert(g, w int) {
	switch pa.kind {
	case FIFO:
		pa.clocks[g]++
		pa.stamps[g*pa.ways+w] = pa.clocks[g]
	case RandomPolicy:
		// stateless
	default:
		pa.touch(g, w)
	}
}

// save serialises set g's replacement state in the layout of the matching
// standalone policy, so snapshots taken before and after the flattening are
// interchangeable and StateHash digests stay bit-identical.
func (pa *policyArray) save(g int) []uint64 {
	switch pa.kind {
	case LRU, FIFO:
		out := make([]uint64, 1+pa.ways)
		out[0] = pa.clocks[g]
		copy(out[1:], pa.stamps[g*pa.ways:(g+1)*pa.ways])
		return out
	case BitPLRU:
		out := make([]uint64, 1+pa.ways)
		out[0] = uint64(pa.ones[g])
		base := g * pa.ways
		for i := 0; i < pa.ways; i++ {
			if pa.mru[base+i] {
				out[1+i] = 1
			}
		}
		return out
	case TreePLRU:
		out := make([]uint64, pa.tnodes)
		if pa.tpacked {
			word := pa.twords[g]
			for i := range out {
				out[i] = (word >> uint(i)) & 1
			}
			return out
		}
		base := g * pa.tnodes
		for i := range out {
			if pa.tbits[base+i] {
				out[i] = 1
			}
		}
		return out
	default: // RandomPolicy
		return []uint64{pa.srcs[g].Draws()}
	}
}

// saveInto is save without the allocation: it appends set g's state to dst
// (for the hash path, which discards the words immediately).
func (pa *policyArray) saveInto(dst []uint64, g int) []uint64 {
	switch pa.kind {
	case LRU, FIFO:
		dst = append(dst, pa.clocks[g])
		return append(dst, pa.stamps[g*pa.ways:(g+1)*pa.ways]...)
	case BitPLRU:
		dst = append(dst, uint64(pa.ones[g]))
		base := g * pa.ways
		for i := 0; i < pa.ways; i++ {
			if pa.mru[base+i] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		return dst
	case TreePLRU:
		if pa.tpacked {
			word := pa.twords[g]
			for i := 0; i < pa.tnodes; i++ {
				dst = append(dst, (word>>uint(i))&1)
			}
			return dst
		}
		base := g * pa.tnodes
		for i := 0; i < pa.tnodes; i++ {
			if pa.tbits[base+i] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		return dst
	default: // RandomPolicy
		return append(dst, pa.srcs[g].Draws())
	}
}

// load adopts previously saved state for set g verbatim — like the
// standalone policies, no sanitisation, so corrupted saves stick and audit
// observes them.
func (pa *policyArray) load(g int, state []uint64) {
	switch pa.kind {
	case LRU, FIFO:
		pa.clocks[g] = state[0]
		copy(pa.stamps[g*pa.ways:(g+1)*pa.ways], state[1:])
	case BitPLRU:
		pa.ones[g] = int32(state[0])
		base := g * pa.ways
		for i := 0; i < pa.ways; i++ {
			pa.mru[base+i] = state[1+i] != 0
		}
	case TreePLRU:
		if pa.tpacked {
			var word uint64
			for i := 0; i < pa.tnodes; i++ {
				if state[i] != 0 {
					word |= 1 << uint(i)
				}
			}
			pa.twords[g] = word
			return
		}
		base := g * pa.tnodes
		for i := 0; i < pa.tnodes; i++ {
			pa.tbits[base+i] = state[i] != 0
		}
	default: // RandomPolicy
		pa.srcs[g].Restore(state[0])
	}
}

// audit checks set g's structural invariants, mirroring the standalone
// policies' Audit rules (including the exact error strings, which the
// fault-injection tests match on).
func (pa *policyArray) audit(g int) error {
	switch pa.kind {
	case LRU, FIFO:
		base := g * pa.ways
		for i := 0; i < pa.ways; i++ {
			if pa.stamps[base+i] > pa.clocks[g] {
				return fmt.Errorf("%s: way %d stamp %d ahead of clock %d", pa.name(), i, pa.stamps[base+i], pa.clocks[g])
			}
		}
		return nil
	case BitPLRU:
		base := g * pa.ways
		pop := 0
		for i := 0; i < pa.ways; i++ {
			if pa.mru[base+i] {
				pop++
			}
		}
		if pop != int(pa.ones[g]) {
			return fmt.Errorf("Bit-PLRU: ones counter %d != popcount %d", pa.ones[g], pop)
		}
		if pop == pa.ways && pa.ways > 0 {
			return fmt.Errorf("Bit-PLRU: all %d MRU bits set (all-ones state must never persist)", pop)
		}
		return nil
	default:
		return nil
	}
}

// setPolicyView adapts one global set of a policyArray to the Policy
// interface, so PolicyAt keeps handing fault injection and tests a mutable
// per-set policy object after the flattening.
type setPolicyView struct {
	pa *policyArray
	g  int
}

func (v *setPolicyView) Touch(way int)       { v.pa.touch(v.g, way) }
func (v *setPolicyView) Victim() int         { return v.pa.victim(v.g) }
func (v *setPolicyView) Insert(way int)      { v.pa.insert(v.g, way) }
func (v *setPolicyView) Name() string        { return v.pa.name() }
func (v *setPolicyView) Save() []uint64      { return v.pa.save(v.g) }
func (v *setPolicyView) Load(state []uint64) { v.pa.load(v.g, state) }
func (v *setPolicyView) Audit() error        { return v.pa.audit(v.g) }

// corruptViewBitPLRU is CorruptBitPLRU for a flattened set view.
func corruptViewBitPLRU(v *setPolicyView) bool {
	if v.pa.kind != BitPLRU || v.pa.ways == 0 {
		return false
	}
	base := v.g * v.pa.ways
	for i := 0; i < v.pa.ways; i++ {
		v.pa.mru[base+i] = true
	}
	v.pa.ones[v.g] = int32(v.pa.ways)
	return true
}
