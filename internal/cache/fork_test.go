package cache

import (
	"testing"

	"afterimage/internal/mem"
)

func forkTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		L1: Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8,
			LineSize: mem.LineSize, Policy: TreePLRU},
		L2: Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4,
			LineSize: mem.LineSize, Policy: TreePLRU},
		LLC: Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16,
			LineSize: mem.LineSize, Policy: LRU},
		Lat: Latencies{L1: 4, L2: 14, LLC: 44, DRAM: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func hierarchyHash(h *Hierarchy) [3]uint64 {
	return [3]uint64{h.L1.StateHash(), h.L2.StateHash(), h.LLC.StateHash()}
}

// TestHierarchyForkBitIdentical: a fork hashes identically to its parent at
// every level, and an identical load stream applied to both keeps them
// identical — hit levels, latencies and final hashes.
func TestHierarchyForkBitIdentical(t *testing.T) {
	h := forkTestHierarchy(t)
	for i := 0; i < 4096; i++ {
		h.Load(mem.PAddr(i%1500) * mem.LineSize)
	}
	f := h.Fork()
	if hierarchyHash(f) != hierarchyHash(h) {
		t.Fatal("fork hashes differ from parent at rest")
	}
	for i := 0; i < 2048; i++ {
		pa := mem.PAddr((i*7)%3000) * mem.LineSize
		la, ca := h.Load(pa)
		lb, cb := f.Load(pa)
		if la != lb || ca != cb {
			t.Fatalf("load %d: parent (%v,%d), fork (%v,%d)", i, la, ca, lb, cb)
		}
	}
	if hierarchyHash(f) != hierarchyHash(h) {
		t.Fatal("fork diverged from parent under an identical load stream")
	}
}

// TestCacheForkDropsWayPredictor: Fork resets the one-entry way-predictor
// memo exactly as Restore does. The memo caches only a location, so its
// absence must not change observable state — verified by the hash equality
// in TestHierarchyForkBitIdentical; here we pin the reset itself.
func TestCacheForkDropsWayPredictor(t *testing.T) {
	h := forkTestHierarchy(t)
	pa := mem.PAddr(64) * mem.LineSize
	h.Load(pa)
	h.Load(pa) // hit: arms the L1 predictor
	if !h.L1.predOK {
		t.Fatal("parent predictor not armed (test substrate broken)")
	}
	f := h.Fork()
	for name, c := range map[string]*Cache{"L1": f.L1, "L2": f.L2, "LLC": f.LLC} {
		if c.predOK {
			t.Fatalf("%s fork carried the way-predictor memo", name)
		}
	}
	if !h.L1.predOK {
		t.Fatal("forking cleared the parent's predictor")
	}
}

// TestCacheForkIndependence: loads and flushes on the fork leave the parent
// byte-identical, and vice versa — the slices must be copies, the policy
// state per-fork, and only the tree tables (immutable) shared.
func TestCacheForkIndependence(t *testing.T) {
	h := forkTestHierarchy(t)
	for i := 0; i < 1024; i++ {
		h.Load(mem.PAddr(i) * mem.LineSize)
	}
	before := hierarchyHash(h)
	f := h.Fork()
	for i := 1024; i < 4096; i++ {
		f.Load(mem.PAddr(i) * mem.LineSize)
	}
	f.Flush(mem.PAddr(512) * mem.LineSize)
	if hierarchyHash(h) != before {
		t.Fatal("fork activity mutated the parent")
	}
	fAfter := hierarchyHash(f)
	h.Load(mem.PAddr(9000) * mem.LineSize)
	if hierarchyHash(f) != fAfter {
		t.Fatal("parent activity mutated the fork")
	}
}
