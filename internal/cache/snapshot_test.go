package cache

import (
	"testing"

	"afterimage/internal/mem"
)

func TestCacheSnapshotRoundTrip(t *testing.T) {
	for _, pol := range []PolicyKind{LRU, FIFO, BitPLRU, TreePLRU, RandomPolicy} {
		t.Run(pol.String(), func(t *testing.T) {
			c := MustNew(small(pol))
			for i := uint64(0); i < 40; i++ {
				p := mem.PAddr(i * 0x240)
				if !c.Access(p) {
					c.Fill(p)
				}
			}
			if errs := c.Audit(); len(errs) != 0 {
				t.Fatalf("populated cache fails audit: %v", errs)
			}
			snap := c.Snapshot()
			h := c.StateHash()

			for i := uint64(0); i < 16; i++ {
				c.Fill(mem.PAddr(0x80000 + i*0x40))
			}
			if c.StateHash() == h {
				t.Fatal("hash unchanged after mutation")
			}
			if err := c.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if got := c.StateHash(); got != h {
				t.Fatalf("restored hash %#x, want %#x", got, h)
			}
			if errs := c.Audit(); len(errs) != 0 {
				t.Fatalf("restored cache fails audit: %v", errs)
			}
		})
	}
}

func TestCacheRestoreRejectsGeometryMismatch(t *testing.T) {
	c := MustNew(small(LRU))
	snap := c.Snapshot()
	other := MustNew(Config{Name: "t2", SizeBytes: 8 << 10, Ways: 4, LineSize: 64, Policy: LRU})
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot with mismatched geometry")
	}
}

// hierHash folds the three level hashes, the way sim's component map does.
func hierHash(h *Hierarchy) [3]uint64 {
	return [3]uint64{h.L1.StateHash(), h.L2.StateHash(), h.LLC.StateHash()}
}

func TestHierarchySnapshotRoundTripAndInclusivityAudit(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1:  Config{Name: "l1", SizeBytes: 8 << 10, Ways: 4, LineSize: 64, Policy: BitPLRU},
		L2:  Config{Name: "l2", SizeBytes: 32 << 10, Ways: 4, LineSize: 64, Policy: LRU},
		LLC: Config{Name: "llc", SizeBytes: 128 << 10, Ways: 8, LineSize: 64, Policy: LRU},
		Lat: Latencies{L1: 4, L2: 12, LLC: 40, DRAM: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		h.Load(mem.PAddr(i * 0x1040))
	}
	if errs := h.Audit(); len(errs) != 0 {
		t.Fatalf("hierarchy fails audit after loads: %v", errs)
	}
	snap := h.Snapshot()
	hash := hierHash(h)

	for i := uint64(0); i < 32; i++ {
		h.Load(mem.PAddr(0x200000 + i*0x40))
	}
	if hierHash(h) == hash {
		t.Fatal("hierarchy hash unchanged after mutation")
	}
	if err := h.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := hierHash(h); got != hash {
		t.Fatalf("restored hierarchy hash %#x, want %#x", got, hash)
	}

	// Breaking inclusivity (an L1-resident line removed from the LLC) must
	// show up in the audit.
	if !h.CorruptInclusivity() {
		t.Fatal("CorruptInclusivity found no line to break")
	}
	if errs := h.Audit(); len(errs) == 0 {
		t.Fatal("audit missed the inclusivity break")
	}
}

// TestBitPLRUCorruptionCaught: the all-ones MRU state Bit-PLRU can never
// reach legally must fail the policy audit.
func TestBitPLRUCorruptionCaught(t *testing.T) {
	c := MustNew(small(BitPLRU))
	for i := uint64(0); i < 8; i++ {
		c.Fill(mem.PAddr(i * 0x40))
	}
	if errs := c.Audit(); len(errs) != 0 {
		t.Fatalf("clean Bit-PLRU fails audit: %v", errs)
	}
	if !CorruptBitPLRU(c.PolicyAt(0, 0)) {
		t.Skip("set 0 policy not Bit-PLRU")
	}
	if errs := c.Audit(); len(errs) == 0 {
		t.Fatal("audit missed the Bit-PLRU corruption")
	}
}
