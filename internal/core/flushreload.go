package core

import (
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// ReloadOrder selects the line-visit order of the reload sweep.
type ReloadOrder int

const (
	// OrderZigzag visits 0, 63, 1, 62, …: every consecutive delta is
	// distinct, so the reload loop can never train the IP-stride entry it
	// runs under (two equal consecutive deltas are required), and the few
	// small-delta steps at the end only touch lines that were already
	// measured. This improves on the artifact's shuffled order, which
	// leaves ~1 self-inflicted false hit per sweep.
	OrderZigzag ReloadOrder = iota
	// OrderShuffle is the artifact's Fisher–Yates randomised order
	// (appendix A.6) — defeats the stream prefetchers, but consecutive
	// equal deltas occasionally occur and echo a phantom line.
	OrderShuffle
	// OrderSequential is the naive ascending sweep; it triggers the stream
	// prefetchers constantly and exists for the ablation benchmarks.
	OrderSequential
)

// FlushReload is the shared-memory secret-extraction back-end (§3.1, §5.1).
// The attacker flushes a shared page before the victim runs and afterwards
// reloads it line by line; lines the victim (or the prefetcher it
// triggered) touched come back fast.
type FlushReload struct {
	// ReloadIP is the instruction pointer of the reload loads; its low 8
	// bits are reserved so the reload loop cannot alias a trained entry.
	ReloadIP uint64
	// Order is the reload sweep order.
	Order ReloadOrder
	// Threshold, when non-zero, overrides the machine's static hit
	// threshold — set by Calibrator-driven recalibration when fault
	// pressure moves the latency populations.
	Threshold uint64
}

// threshold resolves the active hit threshold.
func (fr *FlushReload) threshold(env *sim.Env) uint64 {
	if fr.Threshold != 0 {
		return fr.Threshold
	}
	return env.HitThreshold()
}

// NewFlushReload returns the default configuration (zigzag order).
func NewFlushReload() *FlushReload {
	return &FlushReload{ReloadIP: IPWithLow8(0x70_0000, ReloadIPLow8), Order: OrderZigzag}
}

// FlushPage clflushes all 64 lines of the page at base.
func (fr *FlushReload) FlushPage(env *sim.Env, base mem.VAddr) {
	for l := 0; l < LinesPerPage; l++ {
		env.Flush(base + mem.VAddr(l*LineSize))
	}
	env.Fence()
}

// reloadOrder materialises the configured visit order.
func (fr *FlushReload) reloadOrder(env *sim.Env) []int {
	switch fr.Order {
	case OrderShuffle:
		return env.Shuffle(LinesPerPage)
	case OrderSequential:
		seq := make([]int, LinesPerPage)
		for i := range seq {
			seq[i] = i
		}
		return seq
	default:
		order := make([]int, 0, LinesPerPage)
		lo, hi := 0, LinesPerPage-1
		for lo <= hi {
			order = append(order, lo)
			if lo != hi {
				order = append(order, hi)
			}
			lo++
			hi--
		}
		return order
	}
}

// ReloadPage times a load of every line of the page at base and returns the
// 64 measured latencies plus the indices classified as hits.
func (fr *FlushReload) ReloadPage(env *sim.Env, base mem.VAddr) (latencies []uint64, hits []int) {
	latencies = make([]uint64, LinesPerPage)
	env.WarmTLB(base)
	for _, l := range fr.reloadOrder(env) {
		latencies[l] = env.TimeLoad(fr.ReloadIP, base+mem.VAddr(l*LineSize))
		env.Fence()
	}
	thr := fr.threshold(env)
	for l, lat := range latencies {
		if lat < thr {
			hits = append(hits, l)
		}
	}
	return latencies, hits
}

// ReloadLine times a single line (PSC-style single-destination check).
func (fr *FlushReload) ReloadLine(env *sim.Env, addr mem.VAddr) (latency uint64, hit bool) {
	latency = env.TimeLoad(fr.ReloadIP, addr)
	return latency, latency < fr.threshold(env)
}
