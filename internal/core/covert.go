package core

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// The covert channel (§5.3) transmits the stride value itself: the sender
// trains a protocol entry with stride = symbol; the receiver issues one
// matching-IP load on a shared page, lets the prefetcher echo the stride,
// and reads it back as the distance between the two cached lines. One round
// moves 5 bits (strides are observable at cache-line granularity and must
// stay below 2 KiB, footnote 5).

// SymbolBits is the payload width per round.
const SymbolBits = 5

// symbolStride maps a 5-bit symbol to a signed line stride. The encoding
// must respect two hardware constraints: |stride| stays below 2 KiB (32
// lines, §4.2) and above 4 lines so the noise prefetchers cannot fake it
// (§7.1). Symbols 0..15 map to strides +5..+20, symbols 16..31 to -5..-20.
func symbolStride(sym uint8) int64 {
	if sym < 16 {
		return int64(sym) + 5
	}
	return -(int64(sym) - 16 + 5)
}

func strideSymbol(stride int64) (uint8, bool) {
	switch {
	case stride >= 5 && stride <= 20:
		return uint8(stride - 5), true
	case stride <= -5 && stride >= -20:
		return uint8(16 + (-stride - 5)), true
	default:
		return 0, false
	}
}

// CovertConfig fixes the protocol parameters both sides agree on offline.
type CovertConfig struct {
	// ProtocolIPLow8 is the shared entry's low-8 index.
	ProtocolIPLow8 uint8
	// TriggerLine is the shared-page line the receiver touches each round.
	TriggerLine int
	// TrainRounds is the sender's training length per symbol.
	TrainRounds int
}

// DefaultCovertConfig mirrors the paper's setup (stride b'11110 in the
// demonstration, training in a handful of iterations). The trigger line
// sits mid-page so both positive and negative echoes stay inside it.
func DefaultCovertConfig() CovertConfig {
	return CovertConfig{ProtocolIPLow8: 0x5A, TriggerLine: 32, TrainRounds: 4}
}

// CovertSender encodes symbols by training the protocol entry in its own
// address space.
type CovertSender struct {
	cfg CovertConfig
	buf *mem.Mapping
}

// NewCovertSender allocates the sender's private training buffer: several
// physically sequential locked pages so even the largest symbol's training
// ramp (TrainRounds × 36 lines) runs as a clean arithmetic sequence.
func NewCovertSender(env *sim.Env, cfg CovertConfig) *CovertSender {
	rounds := cfg.TrainRounds
	if rounds < 3 {
		rounds = 3
	}
	maxSpan := uint64(rounds) * 20 * LineSize // largest |stride| is 20 lines
	pages := maxSpan/mem.PageSize + 2
	s := &CovertSender{cfg: cfg, buf: env.Mmap(pages*mem.PageSize, mem.MapLocked)}
	for off := uint64(0); off < s.buf.Length; off += mem.PageSize {
		env.WarmTLB(s.buf.Base + mem.VAddr(off))
	}
	return s
}

// Send trains the protocol entry with the symbol's stride. The entry's
// confidence saturates, priming it to echo the stride at the receiver's
// next trigger.
func (s *CovertSender) Send(env *sim.Env, sym uint8) error {
	if sym >= 1<<SymbolBits {
		return fmt.Errorf("core: symbol %d exceeds %d bits", sym, SymbolBits)
	}
	stride := symbolStride(sym) * LineSize
	ip := IPWithLow8(0x50_0000, s.cfg.ProtocolIPLow8)
	start := int64(0)
	if stride < 0 {
		// Descend from the top of the buffer for negative strides.
		start = int64(s.buf.Length) - LineSize
	}
	for i := int64(0); i < int64(s.cfg.TrainRounds); i++ {
		env.Load(ip, s.buf.Base+mem.VAddr(start+i*stride))
	}
	return nil
}

// CovertReceiver decodes symbols from the prefetcher echo on a shared page.
type CovertReceiver struct {
	cfg    CovertConfig
	fr     *FlushReload
	shared mem.VAddr
}

// NewCovertReceiver builds the receiver over its mapping of the shared page.
func NewCovertReceiver(env *sim.Env, cfg CovertConfig, sharedPage mem.VAddr) *CovertReceiver {
	return &CovertReceiver{cfg: cfg, fr: NewFlushReload(), shared: sharedPage}
}

// Prepare flushes the shared page before yielding to the sender.
func (r *CovertReceiver) Prepare(env *sim.Env) { r.fr.FlushPage(env, r.shared) }

// Receive triggers the trained entry with one matching-IP load on the shared
// page and recovers the stride from the cached-line distance.
func (r *CovertReceiver) Receive(env *sim.Env) (uint8, bool) {
	trigger := r.shared + mem.VAddr(r.cfg.TriggerLine*LineSize)
	env.WarmTLB(trigger)
	env.Load(IPWithLow8(0x51_0000, r.cfg.ProtocolIPLow8), trigger)
	_, hits := r.fr.ReloadPage(env, r.shared)
	// Remove the trigger line itself, then measure the echo distance.
	var echo []int
	for _, h := range hits {
		if h != r.cfg.TriggerLine {
			echo = append(echo, h)
		}
	}
	for _, h := range echo {
		if sym, ok := strideSymbol(int64(h - r.cfg.TriggerLine)); ok {
			return sym, true
		}
	}
	return 0, false
}
