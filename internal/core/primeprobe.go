package core

import (
	"fmt"

	"afterimage/internal/evict"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// PageMonitor is the Prime+Probe back-end of AfterImage-Cache (§5.1): one
// minimal eviction set per cache line of a monitored victim page, so a
// probe sweep yields a 64-point "which line did the victim (or its
// prefetch) touch" vector, exactly the x-axis of Figure 13.
type PageMonitor struct {
	Sets     []*evict.Set
	baseline []uint64 // per-set probe latency with no victim activity
}

// NewPageMonitor builds eviction sets covering the page that holds the
// physical address pagePA.
func NewPageMonitor(env *sim.Env, b *evict.Builder, pagePA mem.PAddr) (*PageMonitor, error) {
	sets, err := b.ForVictimPage(pagePA)
	if err != nil {
		return nil, fmt.Errorf("core: building page monitor: %w", err)
	}
	return &PageMonitor{Sets: sets}, nil
}

// Calibrate primes and immediately probes each set with no victim in
// between, recording the quiescent probe latency that Probe subtracts.
func (pm *PageMonitor) Calibrate(env *sim.Env) {
	pm.baseline = make([]uint64, len(pm.Sets))
	for i, s := range pm.Sets {
		s.Prime(env)
		pm.baseline[i] = s.Probe(env)
	}
	// Probing filled the sets again, leaving them primed.
}

// Prime fills every monitored set with attacker lines.
func (pm *PageMonitor) Prime(env *sim.Env) {
	for _, s := range pm.Sets {
		s.Prime(env)
	}
}

// Probe measures every set and returns the per-line time delta versus the
// calibrated baseline (the y-axis of Figure 13a/13b). Positive spikes mean
// the victim evicted attacker lines from that set.
func (pm *PageMonitor) Probe(env *sim.Env) []int64 {
	deltas := make([]int64, len(pm.Sets))
	for i, s := range pm.Sets {
		t := s.Probe(env)
		var base uint64
		if pm.baseline != nil {
			base = pm.baseline[i]
		}
		deltas[i] = int64(t) - int64(base)
	}
	return deltas
}

// HitLines classifies a probe delta vector: a line counts as touched when
// its delta exceeds perLineThreshold (cycles; the LLC-versus-DRAM gap times
// the number of evicted ways, ~120 for a single line).
func HitLines(deltas []int64, perLineThreshold int64) []int {
	var hits []int
	for i, d := range deltas {
		if d > perLineThreshold {
			hits = append(hits, i)
		}
	}
	return hits
}
