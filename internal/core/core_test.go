package core

import (
	"testing"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
	"afterimage/internal/victim"
)

func quiet(seed int64) *sim.Machine { return sim.NewMachine(sim.Quiet(sim.CoffeeLake(seed))) }

func TestIPWithLow8(t *testing.T) {
	ip := IPWithLow8(0x123456, 0x9A)
	if ip&0xFF != 0x9A || ip>>8 != 0x1234 {
		t.Fatalf("IPWithLow8 = %#x", ip)
	}
}

func TestGadgetSaturatesEntries(t *testing.T) {
	m := quiet(1)
	env := m.Direct(m.NewProcess("attacker"))
	g := MustNewGadget(env, []TrainEntry{
		{IP: IPWithLow8(0x40_0000, 0x34), StrideLines: 7},
		{IP: IPWithLow8(0x40_0100, 0xC2), StrideLines: 13},
	})
	g.Train(env, 4)
	for i, e := range g.Entries {
		got, ok := m.Pref.IPStride.Peek(e.IP, env.PID())
		if !ok {
			t.Fatalf("entry %d missing", i)
		}
		if got.Confidence < 2 {
			t.Fatalf("entry %d confidence = %d", i, got.Confidence)
		}
		if got.Stride != e.StrideBytes() {
			t.Fatalf("entry %d stride = %d, want %d", i, got.Stride, e.StrideBytes())
		}
	}
}

func TestGadgetRejectsBadEntries(t *testing.T) {
	m := quiet(1)
	env := m.Direct(m.NewProcess("a"))
	if _, err := NewGadget(env, nil); err == nil {
		t.Fatal("empty gadget accepted")
	}
	if _, err := NewGadget(env, []TrainEntry{{IP: 1, StrideLines: 0}}); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestNegativeStrideGadgetStaysInPage(t *testing.T) {
	m := quiet(2)
	env := m.Direct(m.NewProcess("a"))
	g := MustNewGadget(env, []TrainEntry{{IP: 0x77, StrideLines: -7}})
	g.Train(env, 5) // would fault if the ramp left the page
	e, ok := m.Pref.IPStride.Peek(0x77, env.PID())
	if !ok || e.Stride != -7*LineSize {
		t.Fatalf("negative stride entry: %+v ok=%v", e, ok)
	}
}

func TestFlushReloadRoundtrip(t *testing.T) {
	m := quiet(3)
	env := m.Direct(m.NewProcess("a"))
	page := env.Mmap(mem.PageSize, mem.MapShared)
	fr := NewFlushReload()
	fr.FlushPage(env, page.Base)
	// Touch two lines like a victim would.
	env.WarmTLB(page.Base)
	env.Load(0x90, page.Base+9*LineSize)
	env.Load(0x91, page.Base+30*LineSize)
	_, hits := fr.ReloadPage(env, page.Base)
	want := map[int]bool{9: true, 30: true}
	for _, h := range hits {
		if !want[h] {
			t.Fatalf("unexpected hit line %d (hits %v)", h, hits)
		}
		delete(want, h)
	}
	if len(want) != 0 {
		t.Fatalf("missed lines: %v", want)
	}
}

func TestDetectStride(t *testing.T) {
	if s, ok := DetectStride([]int{3, 10}, []int64{7, 13}); !ok || s != 7 {
		t.Fatalf("DetectStride = %d,%v", s, ok)
	}
	if s, ok := DetectStride([]int{3, 16}, []int64{7, 13}); !ok || s != 13 {
		t.Fatalf("DetectStride = %d,%v", s, ok)
	}
	if _, ok := DetectStride([]int{3, 11}, []int64{7, 13}); ok {
		t.Fatal("false positive")
	}
	if _, ok := DetectStride(nil, []int64{7}); ok {
		t.Fatal("empty hits matched")
	}
}

func TestBestStride(t *testing.T) {
	if s, ok := BestStride([]int{2, 32}); !ok || s != 30 {
		t.Fatalf("BestStride = %d,%v", s, ok)
	}
	if _, ok := BestStride([]int{5}); ok {
		t.Fatal("single hit produced a stride")
	}
	// Adjacent noise (≤4 lines) is skipped in favour of the real echo.
	if s, ok := BestStride([]int{2, 3, 13}); !ok || s != 10 {
		t.Fatalf("BestStride with noise = %d,%v", s, ok)
	}
}

// variant1Round runs one attacker/victim Flush+Reload round in a scheduled
// two-task setup and returns the inferred secret (if-path = true).
func variant1FR(t *testing.T, seed int64, secret []bool, crossProcess bool) []bool {
	t.Helper()
	cfg := sim.CoffeeLake(seed)
	m := sim.NewMachine(cfg)
	attProc := m.NewProcess("attacker")
	vicProc := attProc
	if crossProcess {
		vicProc = m.NewProcess("victim")
	}

	// Shared page: allocated by the attacker, mapped into the victim.
	attEnv := m.Direct(attProc)
	sharedA := attEnv.Mmap(mem.PageSize, mem.MapShared)
	sharedVBase := sharedA.Base
	if crossProcess {
		sharedVBase = vicProc.AS.MapExisting(sharedA).Base
	}

	vic := victim.NewBranchy(sharedVBase)
	inferred := make([]bool, 0, len(secret))
	fr := NewFlushReload()

	m.Spawn(attProc, "attacker", func(e *sim.Env) {
		g := MustNewGadget(e, []TrainEntry{
			{IP: IPWithLow8(0x40_0000, uint8(vic.IPIf)), StrideLines: 7},
			{IP: IPWithLow8(0x40_0100, uint8(vic.IPElse)), StrideLines: 13},
		})
		for range secret {
			g.Train(e, 4)
			fr.FlushPage(e, sharedA.Base)
			e.Yield() // victim runs its branch
			_, hits := fr.ReloadPage(e, sharedA.Base)
			s, ok := DetectStride(hits, []int64{7, 13})
			inferred = append(inferred, ok && s == 7)
		}
	})
	m.Spawn(vicProc, "victim", func(e *sim.Env) {
		vic.Run(e, secret)
	})
	m.Run()
	return inferred
}

func TestVariant1CrossThreadFlushReload(t *testing.T) {
	secret := []bool{true, false, true, true, false, false, true, false}
	got := variant1FR(t, 11, secret, false)
	for i := range secret {
		if got[i] != secret[i] {
			t.Fatalf("bit %d: inferred %v, want %v (all %v)", i, got[i], secret[i], got)
		}
	}
}

func TestVariant1CrossProcessFlushReload(t *testing.T) {
	secret := []bool{false, true, true, false, true, false, false, true}
	got := variant1FR(t, 12, secret, true)
	correct := 0
	for i := range secret {
		if got[i] == secret[i] {
			correct++
		}
	}
	// Cross-process rounds suffer context-switch noise; demand ≥ 7/8 here.
	if correct < len(secret)-1 {
		t.Fatalf("cross-process leak: %d/%d correct (%v vs %v)", correct, len(secret), got, secret)
	}
}

// TestVariant2KernelLeak reproduces the §5.2 user→kernel attack with a
// known IP (the IP-search path has its own test).
func TestVariant2KernelLeak(t *testing.T) {
	m := quiet(13)
	secrets := []bool{true, false, true, true, false, true, false, false}
	kv := victim.NewKernelSecret(m, 333, secrets)
	env := m.Direct(m.NewProcess("attacker"))
	shared := env.Mmap(mem.PageSize, mem.MapShared)
	env.WarmTLB(shared.Base)
	fr := NewFlushReload()
	g := MustNewGadget(env, []TrainEntry{
		{IP: IPWithLow8(0x40_0000, uint8(kv.LoadIP)), StrideLines: 11},
	})
	for i, want := range secrets {
		g.Train(env, 4)
		fr.FlushPage(env, shared.Base)
		env.WarmTLB(shared.Base)
		env.Syscall(333, uint64(shared.Base))
		_, hits := fr.ReloadPage(env, shared.Base)
		_, ok := DetectStride(hits, []int64{11})
		if ok != want {
			t.Fatalf("call %d: inferred %v, want %v (hits %v)", i, ok, want, hits)
		}
	}
}

func TestIPSearchFindsKernelLoadIP(t *testing.T) {
	m := quiet(14)
	kv := victim.NewKernelSecret(m, 333, []bool{true}) // always taken
	env := m.Direct(m.NewProcess("attacker"))
	shared := env.Mmap(mem.PageSize, mem.MapShared)
	env.WarmTLB(shared.Base)
	s := NewIPSearch()
	got, err := s.Run(env, shared.Base, func(e *sim.Env) {
		e.Syscall(333, uint64(shared.Base))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != uint8(kv.LoadIP) {
		t.Fatalf("IP search found %#x, want %#x", got, uint8(kv.LoadIP))
	}
}

// TestSGXSecretLeak reproduces §5.4 / Figure 10: the enclave's stride
// betrays its secret through lines 24 (stride 3) vs 40 (stride 5).
func TestSGXSecretLeak(t *testing.T) {
	for _, secret := range []bool{false, true} {
		m := quiet(15)
		env := m.Direct(m.NewProcess("app"))
		buf := env.Mmap(mem.PageSize, mem.MapShared)
		vic := victim.NewSGXSecret(buf.Base)
		fr := NewFlushReload()
		fr.FlushPage(env, buf.Base)
		vic.ECall(env, secret)
		x1 := buf.Base + mem.VAddr(3*8*LineSize) // line 24
		x2 := buf.Base + mem.VAddr(5*8*LineSize) // line 40
		_, hit24 := fr.ReloadLine(env, x1)
		_, hit40 := fr.ReloadLine(env, x2)
		if secret && (!hit40 || hit24) {
			t.Fatalf("secret=1: hit24=%v hit40=%v", hit24, hit40)
		}
		if !secret && (!hit24 || hit40) {
			t.Fatalf("secret=0: hit24=%v hit40=%v", hit24, hit40)
		}
	}
}

func TestPSCObservesVictimTouch(t *testing.T) {
	m := quiet(16)
	env := m.Direct(m.NewProcess("attacker"))
	vicEnv := m.Direct(m.NewProcess("victim"))
	vicPage := vicEnv.Mmap(mem.PageSize, mem.MapLocked)
	vicEnv.WarmTLB(vicPage.Base)

	psc := NewPSC(env, IPWithLow8(0x40_0000, 0x19), 11, 64)
	psc.Train(env, 4)
	// No victim activity: the entry still triggers.
	if !psc.Check(env) {
		t.Fatal("undisturbed entry reported as touched")
	}
	// Victim executes a load whose IP shares the low 8 bits.
	vicEnv.Load(IPWithLow8(0x0870_5100, 0x19), vicPage.Base+2*LineSize)
	if psc.Check(env) {
		t.Fatal("victim touch not detected")
	}
}

// TestPSCTwoMissRetrainSignature pins the Figure 15 shape: after a victim
// touch the chain misses exactly twice, then triggers again.
func TestPSCTwoMissRetrainSignature(t *testing.T) {
	m := quiet(17)
	env := m.Direct(m.NewProcess("attacker"))
	vicEnv := m.Direct(m.NewProcess("victim"))
	vicPage := vicEnv.Mmap(mem.PageSize, mem.MapLocked)
	vicEnv.WarmTLB(vicPage.Base)

	psc := NewPSC(env, IPWithLow8(0x40_0000, 0x19), 7, 64)
	psc.Train(env, 4)
	vicEnv.Load(IPWithLow8(0x0870_5100, 0x19), vicPage.Base+2*LineSize)
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, psc.Check(env))
	}
	want := []bool{false, false, true, true, true, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("check %d = %v, want %v (pattern %v)", i, pattern[i], want[i], pattern)
		}
	}
}

func TestPSCRejectsBadStride(t *testing.T) {
	m := quiet(18)
	env := m.Direct(m.NewProcess("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPSC(env, 0x19, 30, 4)
}

func TestPSCChainSurvivesManyChecks(t *testing.T) {
	m := quiet(19)
	env := m.Direct(m.NewProcess("attacker"))
	psc := NewPSC(env, IPWithLow8(0x40_0000, 0x21), 11, 8)
	psc.Train(env, 4)
	// Many checks spanning several page hops and a buffer wrap must all
	// report "still triggering".
	for i := 0; i < 200; i++ {
		if !psc.Check(env) {
			t.Fatalf("check %d reported a phantom disturbance", i)
		}
	}
}

func TestCovertChannelRoundtrip(t *testing.T) {
	m := quiet(20)
	sndProc := m.NewProcess("sender")
	rcvProc := m.NewProcess("receiver")
	rcvEnv := m.Direct(rcvProc)
	shared := rcvEnv.Mmap(mem.PageSize, mem.MapShared)
	sndView := sndProc.AS.MapExisting(shared)
	_ = sndView // the sender trains in its own space; the page is the echo surface

	cfg := DefaultCovertConfig()
	msg := []uint8{0, 1, 7, 16, 30, 31, 12, 25}
	var got []uint8
	// The receiver runs first each round: it prepares (flush), yields to the
	// sender's training, then reads the echo.
	m.Spawn(rcvProc, "receiver", func(e *sim.Env) {
		r := NewCovertReceiver(e, cfg, shared.Base)
		for range msg {
			r.Prepare(e)
			e.Yield() // sender trains
			sym, ok := r.Receive(e)
			if !ok {
				sym = 0xFF
			}
			got = append(got, sym)
		}
	})
	m.Spawn(sndProc, "sender", func(e *sim.Env) {
		s := NewCovertSender(e, cfg)
		for _, sym := range msg {
			if err := s.Send(e, sym); err != nil {
				t.Errorf("send: %v", err)
			}
			e.Yield()
		}
	})
	m.Run()
	if len(got) != len(msg) {
		t.Fatalf("received %d symbols", len(got))
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("symbol %d: got %d want %d (all %v)", i, got[i], msg[i], got)
		}
	}
}

func TestCovertRejectsWideSymbol(t *testing.T) {
	m := quiet(21)
	env := m.Direct(m.NewProcess("s"))
	s := NewCovertSender(env, DefaultCovertConfig())
	if err := s.Send(env, 32); err == nil {
		t.Fatal("6-bit symbol accepted")
	}
}

// TestSMTAttackWithoutVictimCooperation exercises the §6.2 alternative
// synchronisation: under SMT co-residence the attacker shares the core at
// instruction granularity, so a victim that never calls sched_yield is
// still observable. The attacker samples PSC status continuously; a victim
// whose load aliases the trained entry produces disturbance events, a
// control victim with a different IP produces none. (SMT interleaving can
// mask an event when the victim load lands between the chain load and its
// measurement — detection is statistical, as on real SMT parts.)
func TestSMTAttackWithoutVictimCooperation(t *testing.T) {
	run := func(victimIP uint64) int {
		cfg := sim.Quiet(sim.CoffeeLake(41))
		cfg.SMT.Enabled = true
		cfg.SMT.OpsPerSlice = 2
		m := sim.NewMachine(cfg)
		attProc := m.NewProcess("attacker")
		vicProc := m.NewProcess("victim")
		vicPage := m.Direct(vicProc).Mmap(mem.PageSize, mem.MapLocked)

		const ifLoads = 5
		var timeline []bool
		m.Spawn(attProc, "attacker", func(e *sim.Env) {
			psc := NewPSC(e, IPWithLow8(0x40_0000, 0x34), 11, 128)
			psc.Train(e, 4)
			for i := 0; i < 400; i++ {
				timeline = append(timeline, psc.Check(e))
			}
		})
		m.Spawn(vicProc, "victim", func(e *sim.Env) {
			e.WarmTLB(vicPage.Base)
			for k := 0; k < ifLoads; k++ {
				for i := 0; i < 60; i++ {
					e.Sleep(50) // compute gap; never yields
				}
				e.Load(victimIP, vicPage.Base+3*LineSize)
			}
		})
		m.Run()
		events, inRun := 0, false
		for _, ok := range timeline {
			if !ok && !inRun {
				events++
				inRun = true
			} else if ok {
				inRun = false
			}
		}
		return events
	}
	aliased := run(0x0804_8634) // low 8 bits 0x34 — aliases the trained entry
	control := run(0x0804_86c2) // different low 8 bits
	if aliased < 3 {
		t.Fatalf("SMT sampling saw only %d events for 5 aliased loads", aliased)
	}
	if control > 1 {
		t.Fatalf("control victim produced %d phantom events", control)
	}
	if aliased <= control {
		t.Fatalf("no separation: aliased=%d control=%d", aliased, control)
	}
}
