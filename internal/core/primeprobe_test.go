package core

import (
	"testing"

	"afterimage/internal/evict"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
	"afterimage/internal/victim"
)

// primeProbeSetup builds the Figure 13a configuration: a same-address-space
// attacker monitoring the victim page with one eviction set per line.
func primeProbeSetup(t *testing.T, seed int64) (*sim.Machine, *sim.Env, *victim.Branchy, *PageMonitor) {
	t.Helper()
	m := sim.NewMachine(sim.Quiet(sim.Haswell(seed)))
	proc := m.NewProcess("shared-space")
	env := m.Direct(proc)
	page := env.Mmap(mem.PageSize, mem.MapLocked)
	vic := victim.NewBranchy(page.Base)
	b, err := evict.NewBuilder(env, 4096, 0x10e0, 0x20e0)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := proc.AS.Translate(page.Base)
	pm, err := NewPageMonitor(env, b, pa)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pm.Sets {
		for _, l := range s.Lines {
			env.WarmTLB(l)
		}
	}
	pm.Calibrate(env)
	return m, env, vic, pm
}

// TestVariant1PrimeProbeIfPath reproduces Figure 13a: after the victim takes
// the if-path, exactly the trigger line and the line stride-7 away spike.
func TestVariant1PrimeProbeIfPath(t *testing.T) {
	_, env, vic, pm := primeProbeSetup(t, 31)
	g := MustNewGadget(env, []TrainEntry{
		{IP: IPWithLow8(0x40_0000, uint8(vic.IPIf)), StrideLines: 7},
		{IP: IPWithLow8(0x40_0100, uint8(vic.IPElse)), StrideLines: 13},
	})
	g.Train(env, 4)
	pm.Prime(env)
	vic.Step(env, true) // if-path
	deltas := pm.Probe(env)
	hits := HitLines(deltas, 120)
	s, ok := DetectStride(hits, []int64{7, 13})
	if !ok || s != 7 {
		t.Fatalf("if-path probe: stride=%d ok=%v hits=%v", s, ok, hits)
	}
	// The two hot sets must be the trigger line and trigger+7.
	want := map[int]bool{vic.Line: true, vic.Line + 7: true}
	for _, h := range hits {
		if !want[h] {
			t.Fatalf("unexpected hot set %d (hits %v)", h, hits)
		}
	}
}

// TestVariant1PrimeProbeRoundByRound reproduces Figure 13b: consecutive
// rounds recover the victim's execution flow (secret b'10: else then if).
func TestVariant1PrimeProbeRoundByRound(t *testing.T) {
	_, env, vic, pm := primeProbeSetup(t, 32)
	g := MustNewGadget(env, []TrainEntry{
		{IP: IPWithLow8(0x40_0000, uint8(vic.IPIf)), StrideLines: 7},
		{IP: IPWithLow8(0x40_0100, uint8(vic.IPElse)), StrideLines: 13},
	})
	secret := []bool{false, true} // b'10 read LSB-first as in §7.2
	var inferred []bool
	for _, bit := range secret {
		g.Train(env, 4)
		pm.Prime(env)
		vic.Step(env, bit)
		hits := HitLines(pm.Probe(env), 120)
		s, ok := DetectStride(hits, []int64{7, 13})
		inferred = append(inferred, ok && s == 7)
	}
	for i := range secret {
		if inferred[i] != secret[i] {
			t.Fatalf("round %d: inferred %v, want %v", i, inferred[i], secret[i])
		}
	}
}

func TestHitLinesThreshold(t *testing.T) {
	deltas := []int64{5, 180, -20, 121, 120}
	got := HitLines(deltas, 120)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("HitLines = %v", got)
	}
}
