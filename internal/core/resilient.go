package core

import (
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// LowConfidence is the per-bit confidence below which an attack runner
// escalates: more training rounds via Backoff, and eventually a threshold
// recalibration. Readings at or above it keep the base schedule, so clean
// (fault-free) runs never pay for the resilience machinery.
const LowConfidence = 0.5

// CalIPLow8 is the reserved low-8 IP value for calibration loads (alongside
// ReloadIPLow8 / ProbeIPLow8 / PSCIPLow8 — trained entries must avoid it).
const CalIPLow8 = 0xE4

// Backoff schedules re-training rounds with capped exponential growth: while
// readings stay confident it reports the base round count, and every
// low-confidence reading doubles the next schedule up to the cap. A good
// reading resets it. This is the graceful-degradation loop: under prefetcher
// churn or preemption storms the attacker retrains harder instead of
// emitting garbage at the clean-run cadence.
type Backoff struct {
	Base, Cap int
	cur       int
	streak    int // consecutive escalations since the last reset
}

// NewBackoff returns a schedule starting (and resetting) to base rounds and
// never exceeding cap.
func NewBackoff(base, cap int) *Backoff {
	if base < 1 {
		base = 1
	}
	if cap < base {
		cap = base
	}
	return &Backoff{Base: base, Cap: cap, cur: base}
}

// Rounds reports the training rounds to use for the next attempt.
func (b *Backoff) Rounds() int { return b.cur }

// Escalate doubles the schedule (capped) after a low-confidence reading and
// returns the consecutive-escalation count, so callers can trigger deeper
// recovery (threshold recalibration) every few failures.
func (b *Backoff) Escalate() int {
	b.cur *= 2
	if b.cur > b.Cap {
		b.cur = b.Cap
	}
	b.streak++
	return b.streak
}

// Reset restores the base schedule after a confident reading.
func (b *Backoff) Reset() {
	b.cur = b.Base
	b.streak = 0
}

// Calibrator tracks hit/miss latency estimates with an exponentially
// weighted moving average and derives a refreshed hit threshold. Attack
// runners invoke it only after repeated low-confidence readings, when the
// static MeasureConfig threshold may have drifted from reality (e.g. under
// injected cache thrash the "hit" population moves toward LLC latency).
type Calibrator struct {
	Hit, Miss float64 // EWMA latency estimates; zero until observed
	Alpha     float64 // EWMA weight of a new sample (default 0.25)
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator { return &Calibrator{Alpha: 0.25} }

func (c *Calibrator) observe(est *float64, lat uint64) {
	if *est == 0 {
		*est = float64(lat)
		return
	}
	*est += c.Alpha * (float64(lat) - *est)
}

// ObserveHit folds one known-hit latency sample into the estimate.
func (c *Calibrator) ObserveHit(lat uint64) { c.observe(&c.Hit, lat) }

// ObserveMiss folds one known-miss latency sample into the estimate.
func (c *Calibrator) ObserveMiss(lat uint64) { c.observe(&c.Miss, lat) }

// Threshold returns the recalibrated hit threshold: the hit/miss midpoint,
// clamped to stay strictly between the two estimates. Zero (no usable
// estimates yet) means "keep the current threshold".
func (c *Calibrator) Threshold() uint64 {
	if c.Hit == 0 || c.Miss == 0 || c.Miss <= c.Hit+2 {
		return 0
	}
	return uint64((c.Hit + c.Miss) / 2)
}

// Measure refreshes the estimates on a scratch line the caller owns: each
// sample flushes the line, times the (miss) reload, and times it again (hit).
// It returns the refreshed threshold, or zero when the populations did not
// separate (keep the previous threshold).
func (c *Calibrator) Measure(env *sim.Env, addr mem.VAddr, samples int) uint64 {
	ip := IPWithLow8(0x72_0000, CalIPLow8)
	env.WarmTLB(addr)
	for i := 0; i < samples; i++ {
		env.Flush(addr)
		env.Fence()
		c.ObserveMiss(env.TimeLoad(ip, addr))
		c.ObserveHit(env.TimeLoad(ip, addr))
	}
	return c.Threshold()
}

// strideVotes counts the evidence pairs for stride s in a hit-line set: the
// number of lines l such that both l and l+s were observed hot.
func strideVotes(hits []int, s int64) int {
	present := make(map[int]bool, len(hits))
	for _, l := range hits {
		present[l] = true
	}
	v := 0
	for _, l := range hits {
		if t := int64(l) + s; t >= 0 && t < LinesPerPage && present[int(t)] {
			v++
		}
	}
	return v
}

// StrideConfidence scores (0–1) the evidence that stride s — rather than any
// rival stride or noise — explains the observed hit lines. A clean reading
// (exactly the trigger line plus its prefetched partner) scores 1.0; rival-
// stride votes and surplus hot lines (cache thrash, kernel pollution) erode
// the score toward 0.
func StrideConfidence(hits []int, s int64, rivals []int64) float64 {
	v := strideVotes(hits, s)
	if v == 0 {
		return 0
	}
	r := 0
	for _, q := range rivals {
		if q != s {
			r += strideVotes(hits, q)
		}
	}
	surplus := float64(len(hits) - 2) // a lone clean pair is 2 hot lines
	if surplus < 0 {
		surplus = 0
	}
	return float64(v) / (float64(v+r) + surplus/8)
}

// AbsenceConfidence scores a negative reading: a sweep that came back fully
// cold is a confident "victim did not execute the load"; stray hot lines
// make the absence ambiguous (the signal may have been evicted, not absent).
func AbsenceConfidence(hits []int) float64 {
	return 1 / (1 + float64(len(hits)))
}

// LatencyConfidence scores a single timed load by its margin from the hit
// threshold, clamped to [0, 1]: measurements far from the decision boundary
// are trustworthy, ones near it are coin flips.
func LatencyConfidence(lat, thr uint64) float64 {
	if thr == 0 {
		return 0
	}
	var m float64
	if lat < thr {
		m = float64(thr-lat) / float64(thr)
	} else {
		m = float64(lat-thr) / float64(thr)
	}
	if m > 1 {
		m = 1
	}
	return m
}
