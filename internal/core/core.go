// Package core implements the AfterImage attack primitives on top of the
// simulated machine: the training gadget of Listing 6, the two secret-
// extraction back-ends (AfterImage-Cache via Flush+Reload and Prime+Probe,
// §5; AfterImage-PSC via Prefetcher Status Checking, §6.1), the IP-search
// technique for unknown victim IPs (§5.2), and the cross-process covert
// channel (§5.3).
package core

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// LineSize re-exports the cache line size for stride arithmetic.
const LineSize = mem.LineSize

// LinesPerPage is the number of cache lines in one 4 KiB page.
const LinesPerPage = mem.PageSize / mem.LineSize

// Reserved low-8 IP values for the attacker's own measurement loads, chosen
// so they never collide with trained entries (trained low-8 values must
// avoid these).
const (
	ReloadIPLow8 = 0xE8 // Flush+Reload reload loop
	ProbeIPLow8  = 0xE0 // Prime+Probe probe loop
	PSCIPLow8    = 0xEC // PSC measurement load
)

// IPWithLow8 builds an instruction pointer whose least-significant 8 bits
// are the given value — the only bits the IP-stride prefetcher indexes with
// (§4.1). The high bits distinguish the attacker's own code locations.
func IPWithLow8(base uint64, low8 uint8) uint64 {
	return (base &^ 0xFF) | uint64(low8)
}

// TrainEntry is one (IP, stride) pair of the Listing 6 gadget.
type TrainEntry struct {
	IP          uint64
	StrideLines int64 // stride in cache lines (must be non-zero, |s| < 32 to stay in-page over 3 rounds)
}

// StrideBytes converts the line stride to bytes.
func (t TrainEntry) StrideBytes() int64 { return t.StrideLines * LineSize }

// Gadget is the attacker's local masquerade of the victim's loads: one
// training page per entry, loads issued from IPs whose low 8 bits match the
// victim's (Listing 6).
type Gadget struct {
	Entries []TrainEntry
	pages   []*mem.Mapping
}

// NewGadget allocates one locked training page per entry.
func NewGadget(env *sim.Env, entries []TrainEntry) (*Gadget, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: gadget needs at least one entry")
	}
	g := &Gadget{Entries: append([]TrainEntry(nil), entries...)}
	for _, e := range entries {
		if e.StrideLines == 0 {
			return nil, fmt.Errorf("core: zero stride for IP %#x", e.IP)
		}
		g.pages = append(g.pages, env.Mmap(mem.PageSize, mem.MapLocked))
	}
	return g, nil
}

// MustNewGadget panics on error (tests, examples).
func MustNewGadget(env *sim.Env, entries []TrainEntry) *Gadget {
	g, err := NewGadget(env, entries)
	if err != nil {
		panic(err)
	}
	return g
}

// Train executes the gadget for the given number of rounds (≥ 3 to saturate
// the 2-bit confidence counter, §4.2). Strided offsets are kept inside one
// page; overly long training for a large stride wraps to a fresh ramp.
func (g *Gadget) Train(env *sim.Env, rounds int) {
	for i := 0; i < rounds; i++ {
		for j, e := range g.Entries {
			stride := e.StrideBytes()
			span := int64(mem.PageSize) - abs64(stride)
			if span <= 0 {
				span = 1
			}
			steps := span/abs64(stride) + 1 // offsets per in-page ramp
			k := int64(i) % steps
			off := k * stride
			if stride < 0 {
				off = int64(mem.PageSize) - LineSize + k*stride
			}
			env.WarmTLB(g.pages[j].Base) // threat model: pages TLB-resident
			env.Load(e.IP, g.pages[j].Base+mem.VAddr(off))
		}
	}
}

// TrainOne is a convenience for single-entry training.
func TrainOne(env *sim.Env, ip uint64, strideLines int64, rounds int) *Gadget {
	g := MustNewGadget(env, []TrainEntry{{IP: ip, StrideLines: strideLines}})
	g.Train(env, rounds)
	return g
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// DetectStride inspects the cached-line indices of one page and reports
// which of the candidate line-strides appears as the distance between two
// hits. The boolean is false when no candidate matches.
func DetectStride(hitLines []int, candidates []int64) (int64, bool) {
	present := make(map[int]bool, len(hitLines))
	for _, l := range hitLines {
		present[l] = true
	}
	for _, s := range candidates {
		for _, l := range hitLines {
			if t := int64(l) + s; t >= 0 && t < LinesPerPage && present[int(t)] {
				return s, true
			}
		}
	}
	return 0, false
}

// BestStride returns the most plausible stride among all pairwise hit
// distances, preferring candidate strides; used by the covert-channel
// receiver where the symbol *is* the stride.
func BestStride(hitLines []int) (int64, bool) {
	if len(hitLines) < 2 {
		return 0, false
	}
	// The trigger line and the prefetched line are usually the only hits;
	// with noise, take the distance between the two strongest adjacent
	// hits: smallest positive distance > 4 lines (noise prefetchers cover
	// ≤ 4, §7.1), falling back to the largest distance.
	best := int64(-1)
	for i := 0; i < len(hitLines); i++ {
		for j := i + 1; j < len(hitLines); j++ {
			d := int64(hitLines[j] - hitLines[i])
			if d < 0 {
				d = -d
			}
			if d > 4 && (best == -1 || d < best) {
				best = d
			}
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}
