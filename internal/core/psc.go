package core

import (
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// PSC implements Prefetcher Status Checking (§6.1): instead of scanning
// shared memory with cache primitives, the attacker keeps one trained entry
// alive along a private strided chain and, per observation, re-executes the
// trained IP once and times a single destination address. A hit means the
// entry is still triggering (the victim did not execute the matching load);
// a miss means the victim's load re-learned the entry (§6.2).
//
// Following §6.3, every check continues the arithmetic chain
// (current_address + N) so the attacker's own detection loads never reset
// the entry. After a genuine victim disturbance the chain shows the
// characteristic two-miss re-training signature of Figure 15.
type PSC struct {
	// IP is the attacker's trained load IP; its low 8 bits match the
	// victim's target load.
	IP uint64
	// StrideLines is the training stride N in cache lines. It must satisfy
	// 5·N ≤ 64 (N ≤ 12): a page hop re-saturates with three chained loads
	// ending at 3N, and the next check needs room up to 5N within the same
	// 64-line page — otherwise every check would hop-and-retrain before
	// measuring and the status could never be observed.
	StrideLines int64
	// MeasureIP times the destination address (reserved low-8 value).
	MeasureIP uint64

	buf    *mem.Mapping
	cursor mem.VAddr // address of the next trained-IP load
	page   int       // page index of the cursor within buf
}

// NewPSC allocates a locked probe buffer of the given number of pages
// (sequential physical frames, so page hops ride the next-page assist).
func NewPSC(env *sim.Env, ip uint64, strideLines int64, pages int) *PSC {
	if pages < 1 {
		pages = 1
	}
	if strideLines <= 0 || strideLines > 12 {
		panic(&sim.SimFault{
			Kind: sim.FaultAPIMisuse, Cycle: env.Now(),
			Msg: "core: PSC stride must be in 1..12 lines (5 chain steps must fit a page)",
		})
	}
	p := &PSC{
		IP:          ip,
		StrideLines: strideLines,
		MeasureIP:   IPWithLow8(0x71_0000, PSCIPLow8),
		buf:         env.Mmap(uint64(pages)*mem.PageSize, mem.MapLocked),
	}
	p.cursor = p.buf.Base
	env.WarmTLB(p.cursor)
	return p
}

// strideBytes is the chain step in bytes.
func (p *PSC) strideBytes() mem.VAddr { return mem.VAddr(p.StrideLines * LineSize) }

func (p *PSC) pageEnd() mem.VAddr {
	return p.buf.Base + mem.VAddr((p.page+1)*mem.PageSize)
}

// ensureRoom hops to the next page when a trained load plus its prefetch
// target would no longer fit, then re-saturates confidence with three
// chained loads so the hop can never masquerade as a victim disturbance.
// (Evidence arriving exactly during a hop is lost — one contributor to the
// 82 % PSC success rate of §7.3.)
func (p *PSC) ensureRoom(env *sim.Env) {
	s := p.strideBytes()
	if p.cursor+2*s <= p.pageEnd() {
		return
	}
	p.page++
	if p.page >= int(p.buf.Length/mem.PageSize) {
		// Wrap: recycle the buffer after flushing stale lines so future
		// timed targets start uncached.
		p.page = 0
		for off := uint64(0); off < p.buf.Length; off += LineSize {
			env.Flush(p.buf.Base + mem.VAddr(off))
		}
	}
	p.cursor = p.buf.Base + mem.VAddr(p.page*mem.PageSize)
	env.WarmTLB(p.cursor)
	for i := 0; i < 3; i++ {
		env.WarmTLB(p.cursor)
		env.Load(p.IP, p.cursor)
		p.cursor += s
	}
}

// Train saturates the entry's confidence with rounds (≥ 3) chained loads.
// On return the chain always has room for the next Check, so a victim
// disturbance arriving after Train is never masked by a page hop.
func (p *PSC) Train(env *sim.Env, rounds int) {
	if rounds < 3 {
		rounds = 3
	}
	for i := 0; i < rounds; i++ {
		p.ensureRoom(env)
		env.WarmTLB(p.cursor) // the chain is attacker memory; keep it TLB-resident
		env.Load(p.IP, p.cursor)
		p.cursor += p.strideBytes()
	}
	p.ensureRoom(env)
}

// Check performs one §6.3 detection step: a trained-IP load at the chain
// cursor, then one timed load of cursor+N. It reports whether the
// prefetcher triggered (true = entry undisturbed since the last step).
// Room for the next step is secured before returning, so hops only ever
// happen inside the attacker's own turn.
func (p *PSC) Check(env *sim.Env) bool {
	hit, _ := p.CheckLat(env)
	return hit
}

// CheckLat is Check, additionally reporting the raw measured latency so
// callers can score the decision margin (see LatencyConfidence).
func (p *PSC) CheckLat(env *sim.Env) (hit bool, lat uint64) {
	p.ensureRoom(env)
	// Domain switches may have flushed the TLB; re-warm the chain page so
	// the first-touch rule cannot mask the status check (the chain is the
	// attacker's own memory).
	env.WarmTLB(p.cursor)
	env.Load(p.IP, p.cursor)
	target := p.cursor + p.strideBytes()
	lat = env.TimeLoad(p.MeasureIP, target)
	p.cursor = target
	hit = lat < env.HitThreshold()
	p.ensureRoom(env)
	return hit, lat
}

// Observe runs a full train-yield-check round against a victim scheduled
// during the yield: it returns true when the victim executed the targeted
// load (i.e. the prefetcher no longer triggers).
func (p *PSC) Observe(env *sim.Env, rounds int) bool {
	p.Train(env, rounds)
	env.Yield()
	return !p.Check(env)
}

// DebugCursor exposes the chain cursor for diagnostics.
func (p *PSC) DebugCursor() mem.VAddr { return p.cursor }
