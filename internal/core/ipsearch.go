package core

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// IPSearch implements the §5.2 technique for targets whose IPs cannot be
// disassembled (kernel functions): because the prefetcher indexes with only
// the least-significant 8 bits of the IP — and ASLR/KASLR cannot change the
// low 12 bits — the search space is 256 values. Candidates are trained in
// groups of table size (24) so the whole group fits the history table; the
// group whose training produces a strided footprint in shared memory after
// invoking the victim contains the target, which a per-candidate pass then
// pins down.
type IPSearch struct {
	// StrideLines is the training stride (choose > 4 lines and uncommon,
	// §7.1 — the experiments use 11).
	StrideLines int64
	// GroupSize defaults to the prefetcher entry count (24, §4.4).
	GroupSize int
	// Rounds is how many train-invoke-reload repetitions each trial runs;
	// Confirm is how many of them must show the footprint for a positive.
	// Requiring two concordant rounds suppresses the rare false echoes the
	// attacker's own reload churn can produce, while the victim branch
	// being not-taken on some invocations only costs extra rounds (§5.2).
	Rounds  int
	Confirm int
	// IPBase provides the attacker-code high IP bits.
	IPBase uint64

	fr *FlushReload
}

// NewIPSearch returns a searcher with the paper's parameters.
func NewIPSearch() *IPSearch {
	return &IPSearch{
		StrideLines: 11,
		GroupSize:   24,
		Rounds:      6,
		Confirm:     2,
		IPBase:      0x60_0000,
		fr:          NewFlushReload(),
	}
}

// reserved reports low-8 values the attacker must not train (its own
// measurement loads live there).
func reserved(low8 int) bool {
	switch uint8(low8) {
	case ReloadIPLow8, ProbeIPLow8, PSCIPLow8:
		return true
	}
	return false
}

// trial trains the given candidate low-8 values, flushes the shared page,
// invokes the victim, and reloads: it reports whether the trained stride
// footprint appeared.
func (s *IPSearch) trial(env *sim.Env, candidates []int, sharedPage mem.VAddr, invoke func(*sim.Env)) (bool, error) {
	entries := make([]TrainEntry, 0, len(candidates))
	for _, c := range candidates {
		entries = append(entries, TrainEntry{
			IP:          IPWithLow8(s.IPBase, uint8(c)),
			StrideLines: s.StrideLines,
		})
	}
	g, err := NewGadget(env, entries)
	if err != nil {
		return false, err
	}
	confirm := s.Confirm
	if confirm < 1 {
		confirm = 1
	}
	positives := 0
	for r := 0; r < s.Rounds; r++ {
		g.Train(env, 4)
		s.fr.FlushPage(env, sharedPage)
		invoke(env)
		_, hits := s.fr.ReloadPage(env, sharedPage)
		if _, ok := DetectStride(hits, []int64{s.StrideLines}); ok {
			positives++
			if positives >= confirm {
				return true, nil
			}
		}
	}
	return false, nil
}

// Run locates the low 8 IP bits of the victim's branch-guarded load,
// repeating the whole search when noise spoils a pass (§5.2: "this process
// can be repeated multiple times until the IP is found"). The invoke
// callback triggers the victim (e.g. issues the syscall of Listing 7);
// sharedPage is the attacker-visible page the victim's load touches.
func (s *IPSearch) Run(env *sim.Env, sharedPage mem.VAddr, invoke func(*sim.Env)) (uint8, error) {
	var err error
	var found uint8
	for attempt := 0; attempt < 4; attempt++ {
		found, err = s.runOnce(env, sharedPage, invoke)
		if err == nil {
			return found, nil
		}
	}
	return 0, err
}

func (s *IPSearch) runOnce(env *sim.Env, sharedPage mem.VAddr, invoke func(*sim.Env)) (uint8, error) {
	var all []int
	for c := 0; c < 256; c++ {
		if !reserved(c) {
			all = append(all, c)
		}
	}
	// Phase 1: group scan.
	var hot []int
	for lo := 0; lo < len(all); lo += s.GroupSize {
		hi := lo + s.GroupSize
		if hi > len(all) {
			hi = len(all)
		}
		group := all[lo:hi]
		ok, err := s.trial(env, group, sharedPage, invoke)
		if err != nil {
			return 0, err
		}
		if ok {
			hot = group
			break
		}
	}
	if hot == nil {
		return 0, fmt.Errorf("core: IP search found no responsive group")
	}
	// Phase 2: pin down the candidate inside the hot group.
	for _, c := range hot {
		ok, err := s.trial(env, []int{c}, sharedPage, invoke)
		if err != nil {
			return 0, err
		}
		if ok {
			return uint8(c), nil
		}
	}
	return 0, fmt.Errorf("core: IP search group %v did not confirm a single candidate", hot)
}
