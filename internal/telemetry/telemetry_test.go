package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after reset = %d", c.Value())
	}

	var g Gauge
	g.Set(7)
	g.Add(-10)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}

	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{3, 10, 11, 500} {
		h.Observe(v)
	}
	s := h.snapshot()
	if want := []uint64{2, 1, 1}; !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("buckets = %v, want %v", s.Counts, want)
	}
	if s.Count != 4 || s.Sum != 524 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 131 {
		t.Fatalf("mean = %v", got)
	}
}

func TestRegistrySnapshotMergesFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("owned.hits").Add(3)
	r.Gauge("g").Set(-1)
	r.Histogram("lat", []uint64{10}).Observe(5)
	legacy := uint64(42)
	r.RegisterFunc("sampled.hits", func() uint64 { return legacy })

	s := r.Snapshot()
	if v, _ := s.Get("owned.hits"); v != 3 {
		t.Fatalf("owned.hits = %d", v)
	}
	if v, _ := s.Get("sampled.hits"); v != 42 {
		t.Fatalf("sampled.hits = %d", v)
	}
	legacy = 100
	if v, _ := r.Snapshot().Get("sampled.hits"); v != 100 {
		t.Fatalf("sampler not live: %d", v)
	}
	if !strings.Contains(s.String(), "owned.hits") {
		t.Fatalf("String() missing metric:\n%s", s.String())
	}
	// Get-or-create returns the same instance.
	if r.Counter("owned.hits") != r.Counter("owned.hits") {
		t.Fatal("Counter not idempotent")
	}
}

func TestBusWraparound(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 20; i++ {
		b.Emit(Event{Cycle: uint64(i), Kind: EvDemandAccess, Arg1: uint64(i)})
	}
	if b.Len() != 8 || b.Cap() != 8 {
		t.Fatalf("len/cap = %d/%d", b.Len(), b.Cap())
	}
	if b.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", b.Dropped())
	}
	evs := b.Events()
	for i, ev := range evs {
		if want := uint64(12 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first after wrap)", i, ev.Cycle, want)
		}
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatalf("reset failed: len=%d dropped=%d", b.Len(), b.Dropped())
	}
}

func TestHubPhases(t *testing.T) {
	h := NewHub()
	clock := uint64(0)
	h.SetClock(func() uint64 { return clock })
	h.EnableTrace(64)

	h.BeginPhase("train")
	clock = 100
	h.Emit(Event{Kind: EvPrefetchIssue})
	// Implicit end: beginning "probe" closes "train" at cycle 100.
	h.BeginPhase("probe")
	clock = 150
	h.EndPhase()
	h.BeginPhase("train")
	clock = 175
	h.EndPhase()
	h.EndPhase() // no active span: no-op

	sums := h.PhaseSummaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	train, probe := sums[0], sums[1]
	if train.Name != "train" || train.Spans != 2 || train.Cycles != 125 {
		t.Fatalf("train = %+v", train)
	}
	if probe.Name != "probe" || probe.Spans != 1 || probe.Cycles != 50 {
		t.Fatalf("probe = %+v", probe)
	}
	if train.Events != 1 {
		t.Fatalf("train.Events = %d, want 1", train.Events)
	}

	// The emitted event carries its phase.
	for _, ev := range h.Events() {
		if ev.Kind == EvPrefetchIssue && ev.Phase != "train" {
			t.Fatalf("issue event phase = %q", ev.Phase)
		}
	}
}

func TestHubDisabledIsCheap(t *testing.T) {
	h := NewHub()
	if h.TraceEnabled() {
		t.Fatal("fresh hub traces")
	}
	allocs := testing.AllocsPerRun(100, func() {
		h.Emit(Event{Kind: EvDemandAccess, Arg1: 1, Arg2: 2})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v times", allocs)
	}
	var nilHub *Hub
	if nilHub.TraceEnabled() || nilHub.CurrentPhase() != "" {
		t.Fatal("nil hub misbehaves")
	}
	nilHub.Emit(Event{})
	nilHub.BeginPhase("x")
	nilHub.EndPhase()
}

func TestChromeTraceRoundTrip(t *testing.T) {
	h := NewHub()
	clock := uint64(0)
	h.SetClock(func() uint64 { return clock })
	h.EnableTrace(1024)
	h.BeginPhase("train")
	clock = 10
	h.Emit(Event{Kind: EvPTInsert, Arg1: 3, Arg2: 0xA7})
	clock = 20
	h.Emit(Event{Kind: EvPrefetchIssue, Arg1: 0x1000, Label: "ip-stride"})
	h.BeginPhase("probe")
	clock = 30
	h.Emit(Event{Kind: EvDemandAccess, Arg1: 0, Arg2: 4})
	h.Emit(Event{Kind: EvFaultInject, Arg1: 1, Label: "flush-table"})
	// Leave "probe" open: the exporter must close it.

	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, h.Events(), TraceMeta{Process: "test", GHz: 3.0})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace fails validation: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("no trace events")
	}
	for _, want := range []string{`"pt-insert"`, `"prefetch-issue"`, `"train"`, `"fault-inject"`, `"thread_name"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"no traceEvents": `{"foo": 1}`,
		"bad phase":      `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]}`,
		"no name":        `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"i","ts":-5,"pid":1,"tid":1}]}`,
		"unbalanced B":   `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"E without B":    `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
	}
	for name, raw := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if n, err := ValidateChromeTrace(strings.NewReader(`{"traceEvents":[]}`)); err != nil || n != 0 {
		t.Errorf("empty trace: n=%d err=%v", n, err)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	h := NewHub()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if h.TraceEnabled() {
			h.Emit(Event{Kind: EvDemandAccess, Arg1: 1, Arg2: 2})
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	h := NewHub()
	h.EnableTrace(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if h.TraceEnabled() {
			h.Emit(Event{Kind: EvDemandAccess, Arg1: 1, Arg2: 2})
		}
	}
}
