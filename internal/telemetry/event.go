package telemetry

import "fmt"

// EventKind classifies one traced microarchitectural event. Kinds map onto
// exporter tracks (prefetch table, prefetch issue, cache, TLB, scheduler,
// faults, phases) — see chrometrace.go.
type EventKind uint8

// The event taxonomy. Arg1/Arg2 meanings are per kind.
const (
	// EvDemandAccess is one demand load: Arg1 = serving cache level
	// (0 L1, 1 L2, 2 LLC, 3 DRAM), Arg2 = latency in cycles.
	EvDemandAccess EventKind = iota
	// EvTLBMiss is a full dTLB+STLB miss (page walk): Arg1 = walk latency.
	EvTLBMiss
	// EvPTInsert is an IP-stride history-table allocation: Arg1 = slot,
	// Arg2 = IP tag.
	EvPTInsert
	// EvPTEvict is a history-entry invalidation (replacement victim,
	// targeted eviction, or fault injection): Arg1 = slot, Arg2 = IP tag.
	EvPTEvict
	// EvPTConfidence is a confidence-counter change on an existing entry:
	// Arg1 = slot, Arg2 = new confidence.
	EvPTConfidence
	// EvPTFlush is a whole-table clear (clear-ip-prefetcher / fault).
	EvPTFlush
	// EvPrefetchIssue is an issued prefetch: Arg1 = target physical address,
	// Label = originating prefetcher.
	EvPrefetchIssue
	// EvPrefetchDrop is a prefetch suppressed at a page boundary:
	// Arg1 = base physical address.
	EvPrefetchDrop
	// EvDomainSwitch is a context/domain switch: Arg1 = 1 for cross-process,
	// 0 for same-process (thread) switches.
	EvDomainSwitch
	// EvTaskStart / EvTaskDone bracket one scheduled task's lifetime;
	// Label = task name.
	EvTaskStart
	EvTaskDone
	// EvFaultInject is one applied fault-injection event: Arg1 = fault kind
	// ordinal, Label = kind name.
	EvFaultInject
	// EvPhaseBegin / EvPhaseEnd bracket an attack-phase span; Label = phase.
	EvPhaseBegin
	EvPhaseEnd

	eventKindCount = int(EvPhaseEnd) + 1
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvDemandAccess:
		return "demand-access"
	case EvTLBMiss:
		return "tlb-miss"
	case EvPTInsert:
		return "pt-insert"
	case EvPTEvict:
		return "pt-evict"
	case EvPTConfidence:
		return "pt-confidence"
	case EvPTFlush:
		return "pt-flush"
	case EvPrefetchIssue:
		return "prefetch-issue"
	case EvPrefetchDrop:
		return "prefetch-drop"
	case EvDomainSwitch:
		return "domain-switch"
	case EvTaskStart:
		return "task-start"
	case EvTaskDone:
		return "task-done"
	case EvFaultInject:
		return "fault-inject"
	case EvPhaseBegin:
		return "phase-begin"
	case EvPhaseEnd:
		return "phase-end"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one cycle-stamped, phase-attributed trace record. It is a plain
// value — emitting one allocates nothing — and Label, when set, is expected
// to be a constant or long-lived string (task name, prefetcher source).
type Event struct {
	Cycle uint64
	Kind  EventKind
	Phase string // active attack phase at emit time ("" outside any span)
	Arg1  uint64
	Arg2  uint64
	Label string
}
