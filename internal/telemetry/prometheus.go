package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition format
// this package writes, suitable for HTTP content negotiation.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported family so a shared Prometheus server
// can tell this service's metrics from everyone else's.
const promPrefix = "afterimage_"

// tenantCounterPrefix marks the per-tenant counters the registry stores as
// dotted names ("server.tenant.<tenant>.<rest>"); the exposition re-encodes
// the tenant segment as a proper label so dashboards can aggregate across
// tenants instead of pattern-matching metric names.
const tenantCounterPrefix = "server.tenant."

// promHelp curates HELP text for the operationally important families — the
// durability and resilience counters an operator alerts on. Every name here
// is the dotted registry spelling; anything absent falls back to the generic
// "Counter <name>." / "Gauge <name>." / "Histogram <name>." help.
var promHelp = map[string]string{
	"store.corrupt":              "Store reads that failed content verification and were quarantined.",
	"store.recovery.quarantined": "Torn or corrupt store files quarantined by the startup recovery scan.",
	"store.recovery.entries":     "Valid entries indexed by the startup recovery scan.",
	"runner.checkpoint.writes":   "Atomic+durable runner checkpoint writes (one per completed point).",
	"runner.checkpoint.corrupt":  "Unparseable runner checkpoints quarantined as .corrupt; the campaign recomputed identical results from scratch.",
	"runner.checkpoint.degraded": "Campaigns that lost checkpointing to a disk fault and ran to completion without resume protection.",
	"store.degraded.writes":      "Result-cache writes shed by a disk fault or open write-health breaker; the campaign was served uncached.",
	"store.breaker.opened":       "Store write-health breaker trips: consecutive write failures crossed the threshold, so writes shed without touching the disk until the cooldown probe succeeds.",
	"store.quarantine.failed":    "Corrupt entries that could not be renamed into quarantine and were deleted in place as a fallback.",
	"store.scrub.passes":         "Completed store integrity-scrub passes (background cadence or POST /v1/store/scrub).",
	"store.scrub.corrupt":        "Entries a scrub pass found failing content verification and quarantined before any read hit them.",
	"store.gc.evictions":         "Entries evicted oldest-first to hold the store under its size budget.",
	"store.gc.bytes_reclaimed":   "Bytes reclaimed by budget evictions.",
	"server.campaigns.degraded":  "Campaigns served successfully with their result-cache write shed (X-Afterimage-Cache: degraded).",
	"cluster.dispatch.requests":  "Campaign jobs entering cluster dispatch.",
	"cluster.dispatch.worker_ok": "Dispatches completed by a pool worker.",
	"cluster.dispatch.local":     "Dispatches degraded to local in-process execution (no dispatchable worker).",
	"cluster.dispatch.failovers": "Dispatch rounds that failed over to another worker.",
	"cluster.dispatch.hedged":    "Straggler dispatches hedged with a duplicate request.",
	"cluster.workers.evicted":    "Workers evicted for missing heartbeats past the deadline.",
	"cluster.workers.healthy":    "Workers currently passing heartbeat probes.",
	"cluster.breaker.opened":     "Worker circuit breakers tripped open by consecutive dispatch failures.",
}

// helpFor resolves a family's HELP text: curated when known, generic
// otherwise.
func helpFor(kind, name string) string {
	if h, ok := promHelp[name]; ok {
		return h
	}
	return kind + " " + name + "."
}

// promSample is one labelled sample of a family.
type promSample struct {
	labels string // rendered label set, "" or `{tenant="alice"}`
	value  string
}

// promFamily is one exposition family: HELP + TYPE + samples. Histogram
// families carry their snapshot instead of flat samples.
type promFamily struct {
	name    string
	typ     string // counter | gauge | histogram
	help    string
	samples []promSample
	hist    *HistogramSnapshot
}

// promName mangles a dotted registry name into a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text (backslash and newline).
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value (backslash, quote, newline).
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// tenantSplit recognises a per-tenant counter name and splits it into the
// tenant and the family suffix ("server.tenant.alice.requests" → "alice",
// "requests").
func tenantSplit(name string) (tenant, rest string, ok bool) {
	if !strings.HasPrefix(name, tenantCounterPrefix) {
		return "", "", false
	}
	tail := name[len(tenantCounterPrefix):]
	i := strings.IndexByte(tail, '.')
	if i <= 0 || i == len(tail)-1 {
		return "", "", false
	}
	return tail[:i], tail[i+1:], true
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): every family gets `# HELP` and `# TYPE` lines,
// counters gain the conventional `_total` suffix, histograms expand into
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, and the
// per-tenant counters collapse into one family with a `tenant` label.
// Output is deterministic: families and label sets are sorted.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := make(map[string]*promFamily)
	family := func(name, typ, help string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ, help: help}
			fams[name] = f
		}
		return f
	}

	for name, v := range s.Counters {
		val := strconv.FormatUint(v, 10)
		if tenant, rest, ok := tenantSplit(name); ok {
			f := family(promPrefix+"server_tenant_"+promName(rest)+"_total", "counter",
				"Per-tenant counter "+tenantCounterPrefix+"*."+rest+".")
			f.samples = append(f.samples, promSample{
				labels: `{tenant="` + promEscapeLabel(tenant) + `"}`, value: val,
			})
			continue
		}
		f := family(promPrefix+promName(name)+"_total", "counter", helpFor("Counter", name))
		f.samples = append(f.samples, promSample{value: val})
	}
	for name, v := range s.Gauges {
		f := family(promPrefix+promName(name), "gauge", helpFor("Gauge", name))
		f.samples = append(f.samples, promSample{value: strconv.FormatInt(v, 10)})
	}
	for name, h := range s.Histograms {
		h := h
		family(promPrefix+promName(name), "histogram", helpFor("Histogram", name)).hist = &h
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, promEscapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		if f.hist != nil {
			writePromHistogram(bw, f.name, *f.hist)
			continue
		}
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		for _, sm := range f.samples {
			fmt.Fprintf(bw, "%s%s %s\n", f.name, sm.labels, sm.value)
		}
	}
	return bw.Flush()
}

// writePromHistogram expands one snapshot into the cumulative-bucket
// encoding. The +Inf bucket and _count are both derived from the bucket
// counts, so the exposition is self-consistent even if the snapshot was
// taken mid-observation.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) {
	cum := uint64(0)
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum)
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1] // overflow bucket
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// promHistState accumulates one histogram family's series while validating.
type promHistState struct {
	lastLe    float64
	lastCum   float64
	buckets   int
	infBucket float64
	hasInf    bool
	count     float64
	hasCount  bool
	hasSum    bool
}

// ValidatePrometheus checks that r holds well-formed Prometheus text
// exposition (version 0.0.4) as this package emits it: legal metric and
// label names, a `# TYPE` line preceding each family's samples, parseable
// float values, and — for histogram families — cumulative non-decreasing
// `_bucket` counts in increasing `le` order with a `+Inf` bucket equal to
// `_count`. It returns the number of samples on success.
func ValidatePrometheus(r io.Reader) (int, error) {
	types := make(map[string]string)
	hists := make(map[string]*promHistState) // keyed by family + non-le labels
	samples := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, fmt.Errorf("prom: line %d: malformed comment %q", lineNo, line)
			}
			if !validPromName(fields[2]) {
				return 0, fmt.Errorf("prom: line %d: illegal metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, fmt.Errorf("prom: line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("prom: line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return 0, fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return 0, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		samples++

		family, component := name, ""
		if typ, ok := types[name]; ok && typ != "histogram" {
			// plain counter/gauge sample; nothing more to track
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				family, component = strings.TrimSuffix(name, suffix), suffix
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			return 0, fmt.Errorf("prom: line %d: sample %s before any TYPE for %s", lineNo, name, family)
		}
		if typ != "histogram" {
			// e.g. a counter that happens to end in _count — allowed.
			continue
		}
		if component == "" {
			return 0, fmt.Errorf("prom: line %d: bare sample %s of histogram family %s", lineNo, name, family)
		}
		le, rest := extractLe(labels)
		key := family + "|" + rest
		st, ok := hists[key]
		if !ok {
			st = &promHistState{lastLe: -1}
			hists[key] = st
		}
		switch component {
		case "_bucket":
			if le == "" {
				return 0, fmt.Errorf("prom: line %d: histogram bucket of %s without an le label", lineNo, family)
			}
			if le == "+Inf" {
				st.hasInf, st.infBucket = true, value
				if value < st.lastCum {
					return 0, fmt.Errorf("prom: line %d: %s +Inf bucket %v below prior bucket %v", lineNo, family, value, st.lastCum)
				}
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return 0, fmt.Errorf("prom: line %d: bad le %q: %v", lineNo, le, err)
			}
			if st.hasInf {
				return 0, fmt.Errorf("prom: line %d: %s bucket after +Inf", lineNo, family)
			}
			if st.buckets > 0 && bound <= st.lastLe {
				return 0, fmt.Errorf("prom: line %d: %s buckets out of order (le %v after %v)", lineNo, family, bound, st.lastLe)
			}
			if value < st.lastCum {
				return 0, fmt.Errorf("prom: line %d: %s bucket counts not cumulative (%v after %v)", lineNo, family, value, st.lastCum)
			}
			st.lastLe, st.lastCum = bound, value
			st.buckets++
		case "_sum":
			st.hasSum = true
		case "_count":
			st.hasCount, st.count = true, value
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("prom: read: %w", err)
	}
	for key, st := range hists {
		family := key[:strings.IndexByte(key, '|')]
		if !st.hasInf {
			return 0, fmt.Errorf("prom: histogram %s has no +Inf bucket", family)
		}
		if !st.hasSum || !st.hasCount {
			return 0, fmt.Errorf("prom: histogram %s missing _sum or _count", family)
		}
		if st.infBucket != st.count {
			return 0, fmt.Errorf("prom: histogram %s +Inf bucket %v != _count %v", family, st.infBucket, st.count)
		}
	}
	return samples, nil
}

// parsePromSample splits one sample line into name, raw label block, value.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("illegal metric name %q", name)
	}
	if labels != "" {
		for _, pair := range splitPromLabels(labels) {
			eq := strings.IndexByte(pair, '=')
			if eq <= 0 {
				return "", "", 0, fmt.Errorf("malformed label %q", pair)
			}
			if !validPromName(pair[:eq]) {
				return "", "", 0, fmt.Errorf("illegal label name %q", pair[:eq])
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", 0, fmt.Errorf("unquoted label value in %q", pair)
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", 0, fmt.Errorf("sample %q has no value", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// splitPromLabels splits a raw label block on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// extractLe pulls the le label out of a raw label block, returning its value
// and the remaining labels (normalised, for series grouping).
func extractLe(labels string) (le, rest string) {
	var others []string
	for _, pair := range splitPromLabels(labels) {
		if strings.HasPrefix(pair, "le=") {
			le = strings.Trim(pair[len("le="):], `"`)
			continue
		}
		others = append(others, pair)
	}
	sort.Strings(others)
	return le, strings.Join(others, ",")
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
