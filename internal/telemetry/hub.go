package telemetry

// PhaseSummary aggregates one attack phase across all of its spans: how many
// times the phase ran, the simulated cycles spent inside it, and how many
// trace events were attributed to it (0 unless tracing was enabled).
type PhaseSummary struct {
	Name   string `json:"name"`
	Spans  int    `json:"spans"`
	Cycles uint64 `json:"cycles"`
	Events uint64 `json:"events"`
}

// Hub bundles one machine's observability state: the metrics registry, the
// (initially disabled) event bus, and the attack-phase tracker. Phase spans
// are always accounted (they cost a map lookup per transition); event
// recording costs nothing until EnableTrace.
//
// Phases do not nest: beginning a phase implicitly ends the active one, which
// makes interleaved spans from cooperating tasks (attacker trains, yields,
// victim triggers) well-defined — events emitted while the victim holds the
// core attribute to the attacker's still-open phase, which is exactly the
// attribution the train/trigger/probe protocol wants.
type Hub struct {
	reg   *Registry
	bus   *Bus
	clock func() uint64 // cycle source for stamping events and spans

	phase      string // active phase name ("" = none)
	phaseStart uint64
	phaseAgg   *PhaseSummary
	summaries  []*PhaseSummary
	byName     map[string]*PhaseSummary

	// absorbNext is the cycle offset the next AbsorbEvents call starts at,
	// so traces absorbed from several child machines stay disjoint and
	// monotonic on this hub's timeline.
	absorbNext uint64
}

// NewHub builds a hub with a fresh registry, tracing disabled, and a zero
// clock (the owning machine installs the real one via SetClock).
func NewHub() *Hub {
	return &Hub{
		reg:    NewRegistry(),
		clock:  func() uint64 { return 0 },
		byName: make(map[string]*PhaseSummary),
	}
}

// Registry returns the hub's metrics registry.
func (h *Hub) Registry() *Registry { return h.reg }

// SetClock installs the cycle source used to stamp events and phase spans.
func (h *Hub) SetClock(fn func() uint64) { h.clock = fn }

// EnableTrace turns event recording on with the given ring capacity
// (DefaultBusCapacity when non-positive). Calling it again replaces the ring.
func (h *Hub) EnableTrace(capacity int) { h.bus = NewBus(capacity) }

// DisableTrace stops event recording and discards the ring.
func (h *Hub) DisableTrace() { h.bus = nil }

// TraceEnabled reports whether Emit records anything. It is the hot-path
// guard: a nil hub or disabled bus costs two compares and no allocation.
func (h *Hub) TraceEnabled() bool { return h != nil && h.bus != nil }

// Bus exposes the ring (nil while tracing is disabled).
func (h *Hub) Bus() *Bus { return h.bus }

// Events returns the retained trace oldest-first (nil while disabled).
func (h *Hub) Events() []Event {
	if h == nil || h.bus == nil {
		return nil
	}
	return h.bus.Events()
}

// Emit records one event, stamping the current cycle and active phase. It is
// a no-op while tracing is disabled; callers on hot paths should still guard
// with TraceEnabled to avoid constructing the Event at all.
func (h *Hub) Emit(ev Event) {
	if h == nil || h.bus == nil {
		return
	}
	if ev.Cycle == 0 {
		ev.Cycle = h.clock()
	}
	ev.Phase = h.phase
	if h.phaseAgg != nil {
		h.phaseAgg.Events++
	}
	h.bus.Emit(ev)
}

// BeginPhase opens an attack-phase span at the current cycle, implicitly
// ending any active span. Safe (and cheap) whether or not tracing is on.
func (h *Hub) BeginPhase(name string) {
	if h == nil {
		return
	}
	now := h.clock()
	h.endPhaseAt(now)
	agg, ok := h.byName[name]
	if !ok {
		agg = &PhaseSummary{Name: name}
		h.byName[name] = agg
		h.summaries = append(h.summaries, agg)
	}
	h.phase, h.phaseStart, h.phaseAgg = name, now, agg
	if h.bus != nil {
		h.bus.Emit(Event{Cycle: now, Kind: EvPhaseBegin, Phase: name, Label: name})
	}
}

// EndPhase closes the active span (no-op when none is open).
func (h *Hub) EndPhase() {
	if h == nil {
		return
	}
	h.endPhaseAt(h.clock())
}

func (h *Hub) endPhaseAt(now uint64) {
	if h.phaseAgg == nil {
		return
	}
	h.phaseAgg.Spans++
	h.phaseAgg.Cycles += now - h.phaseStart
	if h.bus != nil {
		h.bus.Emit(Event{Cycle: now, Kind: EvPhaseEnd, Phase: h.phase, Label: h.phase})
	}
	h.phase, h.phaseAgg = "", nil
}

// CurrentPhase reports the open span's name ("" when none).
func (h *Hub) CurrentPhase() string {
	if h == nil {
		return ""
	}
	return h.phase
}

// AbsorbSummaries folds phase aggregates measured on another machine (a
// sweep-point lab, or a checkpointed record of one) into this hub's
// accounting, preserving first-appearance order. A campaign driver calls it
// once per completed point, in point order, so the parent lab's
// PhaseSummaries cover the whole campaign deterministically.
func (h *Hub) AbsorbSummaries(sums []PhaseSummary) {
	if h == nil {
		return
	}
	for _, s := range sums {
		agg, ok := h.byName[s.Name]
		if !ok {
			agg = &PhaseSummary{Name: s.Name}
			h.byName[s.Name] = agg
			h.summaries = append(h.summaries, agg)
		}
		agg.Spans += s.Spans
		agg.Cycles += s.Cycles
		agg.Events += s.Events
	}
}

// AbsorbEvents appends another machine's retained trace to this hub's ring,
// shifting cycles so the absorbed span begins after everything recorded or
// absorbed so far (child clocks all start at zero and would otherwise
// interleave). Events keep their phase attribution from the source machine.
// No-op while tracing is disabled here.
func (h *Hub) AbsorbEvents(events []Event) {
	if h == nil || h.bus == nil || len(events) == 0 {
		return
	}
	base := h.absorbNext
	if now := h.clock(); now > base {
		base = now
	}
	last := events[len(events)-1].Cycle
	for _, ev := range events {
		ev.Cycle += base
		h.bus.Emit(ev)
	}
	h.absorbNext = base + last + 1
}

// PhaseSummaries returns per-phase aggregates in order of first appearance,
// as copies.
func (h *Hub) PhaseSummaries() []PhaseSummary {
	if h == nil {
		return nil
	}
	out := make([]PhaseSummary, len(h.summaries))
	for i, p := range h.summaries {
		out[i] = *p
	}
	return out
}
