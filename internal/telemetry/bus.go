package telemetry

// Bus is a fixed-capacity ring buffer of Events. Once full, the oldest event
// is overwritten and counted as dropped, so tracing an arbitrarily long run
// retains the most recent window. The simulator runs tasks under strict
// handoff (one goroutine holds the core at a time), so the bus needs no
// locking: emits are serialised by the same happens-before edges that order
// the simulated clock itself.
type Bus struct {
	buf     []Event
	start   int // index of the oldest retained event
	n       int // retained events
	dropped uint64
}

// DefaultBusCapacity bounds a trace at ~256k events (~16 MB) unless the
// caller asks for more.
const DefaultBusCapacity = 1 << 18

// NewBus builds a ring with the given capacity (DefaultBusCapacity when
// non-positive).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{buf: make([]Event, capacity)}
}

// Emit appends one event, overwriting the oldest when full.
func (b *Bus) Emit(ev Event) {
	if b.n < len(b.buf) {
		b.buf[(b.start+b.n)%len(b.buf)] = ev
		b.n++
		return
	}
	b.buf[b.start] = ev
	b.start = (b.start + 1) % len(b.buf)
	b.dropped++
}

// Events returns the retained events oldest-first.
func (b *Bus) Events() []Event {
	out := make([]Event, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.buf[(b.start+i)%len(b.buf)]
	}
	return out
}

// Len reports how many events are retained.
func (b *Bus) Len() int { return b.n }

// Cap reports the ring capacity.
func (b *Bus) Cap() int { return len(b.buf) }

// Dropped reports how many events were overwritten by wraparound.
func (b *Bus) Dropped() uint64 { return b.dropped }

// Reset discards all retained events and the drop count.
func (b *Bus) Reset() {
	b.start, b.n, b.dropped = 0, 0, 0
}
