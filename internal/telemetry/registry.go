package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is the namespaced metric store. Components either create owned
// metrics (Counter/Gauge/Histogram, get-or-create by name) or register a
// pull-sampler over an existing component-local counter (RegisterFunc) —
// the sampler path keeps the simulator's hot loops free of any extra write
// while still exposing every legacy Stats() quantity under one namespace
// (cache.l1.hits, prefetcher.ipstride.trains, sched.switches, ...).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() uint64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs a pull-sampler: the function is invoked at snapshot
// time and its value reported under the given name. Registering a name twice
// replaces the sampler (a rebuilt component re-registers cleanly).
func (r *Registry) RegisterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of every registered metric. Sampled
// (RegisterFunc) and owned counters share the Counters namespace.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Samplers run on the calling goroutine, so
// take snapshots between runs (the simulator's strict-handoff scheduler makes
// any quiescent point safe).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)+len(r.funcs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fn := range r.funcs {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Get reads one counter (owned or sampled) from the snapshot.
func (s Snapshot) Get(name string) (uint64, bool) {
	v, ok := s.Counters[name]
	return v, ok
}

// String renders the snapshot as sorted "name value" lines, histograms last.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %s\n", n, s.Histograms[n])
	}
	return b.String()
}
