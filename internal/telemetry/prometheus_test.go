package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrometheusHistogramEncoding pins the cumulative-bucket encoding:
// _bucket counts accumulate, the +Inf bucket equals _count, and _sum is the
// raw observation sum. Table-driven over bucket shapes, including the
// zero-bound histogram the String() regression concerns.
func TestPrometheusHistogramEncoding(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []uint64
		observe []uint64
		want    []string // exact sample lines, in order
	}{
		{
			name:    "spread",
			bounds:  []uint64{10, 100, 1000},
			observe: []uint64{5, 7, 50, 99, 500, 5000, 6000},
			want: []string{
				`afterimage_h_bucket{le="10"} 2`,
				`afterimage_h_bucket{le="100"} 4`,
				`afterimage_h_bucket{le="1000"} 5`,
				`afterimage_h_bucket{le="+Inf"} 7`,
				`afterimage_h_sum 11661`,
				`afterimage_h_count 7`,
			},
		},
		{
			name:    "empty",
			bounds:  []uint64{1, 2},
			observe: nil,
			want: []string{
				`afterimage_h_bucket{le="1"} 0`,
				`afterimage_h_bucket{le="2"} 0`,
				`afterimage_h_bucket{le="+Inf"} 0`,
				`afterimage_h_sum 0`,
				`afterimage_h_count 0`,
			},
		},
		{
			name:    "all-overflow",
			bounds:  []uint64{4},
			observe: []uint64{9, 9, 9},
			want: []string{
				`afterimage_h_bucket{le="4"} 0`,
				`afterimage_h_bucket{le="+Inf"} 3`,
				`afterimage_h_sum 27`,
				`afterimage_h_count 3`,
			},
		},
		{
			name:    "zero-bounds",
			bounds:  nil,
			observe: []uint64{3, 4},
			want: []string{
				`afterimage_h_bucket{le="+Inf"} 2`,
				`afterimage_h_sum 7`,
				`afterimage_h_count 2`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.Histogram("h", tc.bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			var got []string
			for _, line := range strings.Split(out, "\n") {
				if line != "" && !strings.HasPrefix(line, "#") {
					got = append(got, line)
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d sample lines, want %d:\n%s", len(got), len(tc.want), out)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("line %d:\n got %q\nwant %q", i, got[i], tc.want[i])
				}
			}
			if !strings.Contains(out, "# TYPE afterimage_h histogram") {
				t.Errorf("missing TYPE line:\n%s", out)
			}
			if _, err := ValidatePrometheus(strings.NewReader(out)); err != nil {
				t.Errorf("validator rejects own output: %v", err)
			}
		})
	}
}

// TestPrometheusTenantLabels: the dotted per-tenant counters collapse into
// one family with a sorted tenant label, while plain counters keep the
// _total suffix and full mangled name.
func TestPrometheusTenantLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.tenant.zoe.requests").Add(3)
	reg.Counter("server.tenant.alice.requests").Add(7)
	reg.Counter("server.requests").Add(10)
	reg.Gauge("server.admission.queued").Set(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# TYPE afterimage_server_tenant_requests_total counter",
		`afterimage_server_tenant_requests_total{tenant="alice"} 7`,
		`afterimage_server_tenant_requests_total{tenant="zoe"} 3`,
		"# TYPE afterimage_server_requests_total counter",
		"afterimage_server_requests_total 10",
		"# TYPE afterimage_server_admission_queued gauge",
		"afterimage_server_admission_queued 2",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// The two tenants share one family: exactly one TYPE line for it.
	if strings.Count(out, "# TYPE afterimage_server_tenant_requests_total") != 1 {
		t.Errorf("tenant family declared more than once:\n%s", out)
	}
	// alice sorts before zoe.
	if strings.Index(out, `tenant="alice"`) > strings.Index(out, `tenant="zoe"`) {
		t.Errorf("tenant samples not sorted:\n%s", out)
	}
	if _, err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("validator rejects own output: %v", err)
	}
}

// TestPrometheusCuratedHelp pins the exposition encoding of the curated
// recovery/resilience families: the HELP text an operator's dashboards key
// on must not drift, and names outside the curated map must keep the generic
// fallback. Exact-line regression, not substring-of-substring.
func TestPrometheusCuratedHelp(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("store.recovery.quarantined").Add(2)
	reg.Counter("store.recovery.entries").Add(40)
	reg.Counter("store.corrupt").Add(1)
	reg.Counter("runner.checkpoint.writes").Add(9)
	reg.Counter("runner.checkpoint.corrupt").Add(3)
	reg.Counter("cluster.dispatch.local").Add(1)
	reg.Counter("cluster.workers.evicted").Add(1)
	reg.Gauge("cluster.workers.healthy").Set(2)
	reg.Counter("store.degraded.writes").Add(4)
	reg.Counter("store.breaker.opened").Add(1)
	reg.Counter("store.quarantine.failed").Add(1)
	reg.Counter("store.scrub.passes").Add(6)
	reg.Counter("store.scrub.corrupt").Add(1)
	reg.Counter("store.gc.evictions").Add(7)
	reg.Counter("store.gc.bytes_reclaimed").Add(4096)
	reg.Counter("runner.checkpoint.degraded").Add(2)
	reg.Counter("server.campaigns.degraded").Add(4)
	reg.Counter("some.other.counter").Add(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# HELP afterimage_store_recovery_quarantined_total Torn or corrupt store files quarantined by the startup recovery scan.",
		"afterimage_store_recovery_quarantined_total 2",
		"# HELP afterimage_store_recovery_entries_total Valid entries indexed by the startup recovery scan.",
		"# HELP afterimage_store_corrupt_total Store reads that failed content verification and were quarantined.",
		"# HELP afterimage_runner_checkpoint_writes_total Atomic+durable runner checkpoint writes (one per completed point).",
		"# HELP afterimage_runner_checkpoint_corrupt_total Unparseable runner checkpoints quarantined as .corrupt; the campaign recomputed identical results from scratch.",
		"afterimage_runner_checkpoint_corrupt_total 3",
		"# HELP afterimage_cluster_dispatch_local_total Dispatches degraded to local in-process execution (no dispatchable worker).",
		"# HELP afterimage_cluster_workers_evicted_total Workers evicted for missing heartbeats past the deadline.",
		"# HELP afterimage_cluster_workers_healthy Workers currently passing heartbeat probes.",
		"afterimage_cluster_workers_healthy 2",
		"# HELP afterimage_store_degraded_writes_total Result-cache writes shed by a disk fault or open write-health breaker; the campaign was served uncached.",
		"afterimage_store_degraded_writes_total 4",
		"# HELP afterimage_store_breaker_opened_total Store write-health breaker trips: consecutive write failures crossed the threshold, so writes shed without touching the disk until the cooldown probe succeeds.",
		"# HELP afterimage_store_quarantine_failed_total Corrupt entries that could not be renamed into quarantine and were deleted in place as a fallback.",
		"# HELP afterimage_store_scrub_passes_total Completed store integrity-scrub passes (background cadence or POST /v1/store/scrub).",
		"# HELP afterimage_store_scrub_corrupt_total Entries a scrub pass found failing content verification and quarantined before any read hit them.",
		"# HELP afterimage_store_gc_evictions_total Entries evicted oldest-first to hold the store under its size budget.",
		"# HELP afterimage_store_gc_bytes_reclaimed_total Bytes reclaimed by budget evictions.",
		"afterimage_store_gc_bytes_reclaimed_total 4096",
		"# HELP afterimage_runner_checkpoint_degraded_total Campaigns that lost checkpointing to a disk fault and ran to completion without resume protection.",
		"# HELP afterimage_server_campaigns_degraded_total Campaigns served successfully with their result-cache write shed (X-Afterimage-Cache: degraded).",
		// Uncurated names keep the generic fallback.
		"# HELP afterimage_some_other_counter_total Counter some.other.counter.",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("output missing exact line %q:\n%s", w, out)
		}
	}
	if _, err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("validator rejects curated-help output: %v", err)
	}
}

// TestPrometheusDeterministic: two renders of the same snapshot are
// byte-identical (families and label sets are sorted, no map-order leaks).
func TestPrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"b.two", "a.one", "c.three", "server.tenant.t9.requests", "server.tenant.t1.requests"} {
		reg.Counter(n).Add(uint64(len(n)))
	}
	reg.Histogram("lat.us", []uint64{1, 10, 100}).Observe(42)
	snap := reg.Snapshot()
	var one, two bytes.Buffer
	if err := WritePrometheus(&one, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&two, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("nondeterministic exposition:\n%s\nvs\n%s", one.String(), two.String())
	}
}

// TestValidatePrometheusRejects: structurally broken exposition fails with a
// diagnostic instead of passing silently.
func TestValidatePrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample before TYPE", "afterimage_x_total 1\n"},
		{"unknown type", "# TYPE x frobnicator\nx 1\n"},
		{"bad metric name", "# TYPE 9bad counter\n9bad 1\n"},
		{"bad value", "# TYPE x counter\nx one\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n"},
		{"buckets out of order", "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"+Inf != count", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n, err := ValidatePrometheus(strings.NewReader(tc.text)); err == nil {
				t.Fatalf("validator accepted %q (%d samples)", tc.text, n)
			}
		})
	}
}

// TestValidatePrometheusAcceptsFullRegistry: a registry shaped like the
// live server's (counters, gauges, tenant counters, histograms) renders to
// validator-clean exposition.
func TestValidatePrometheusAcceptsFullRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(12)
	reg.Counter("server.tenant.alice.requests").Add(4)
	reg.Counter("runner.jobs.completed").Add(8)
	reg.Gauge("server.admission.queued").Set(1)
	reg.RegisterFunc("cache.l1.hits", func() uint64 { return 99 })
	h := reg.Histogram("server.queue.wait.us", []uint64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidatePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validator rejected live-shaped registry: %v\n%s", err, buf.String())
	}
	// 4 counters + 1 gauge + (3 buckets + Inf + sum + count) = 11 samples.
	if n != 11 {
		t.Fatalf("validator counted %d samples, want 11:\n%s", n, buf.String())
	}
}
