// Package telemetry is the unified observability layer of the AfterImage
// simulator: a namespaced metrics registry (cheap atomic counters, gauges and
// fixed-bucket latency histograms, plus pull-samplers over component-local
// counters), a cycle-stamped event bus backed by a fixed-capacity ring buffer
// that costs nothing when disabled, attack-phase span tracking, and a Chrome
// trace_event JSON exporter so any run opens in chrome://tracing or Perfetto.
//
// Every machine owns one Hub; components register metric samplers at
// construction and emit typed events on their hot paths guarded by
// Hub.TraceEnabled, so an untraced run pays only a nil-and-bool check.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing (but resettable) atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic signed instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram: observations are counted
// into the first bucket whose upper bound is >= the value, with one implicit
// overflow bucket. Bounds are fixed at construction, so Observe is a short
// linear scan plus three atomic adds — cheap enough for the simulator's
// per-load hot path.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64
	count  atomic.Uint64
}

// NewHistogram builds a histogram from ascending bucket upper bounds.
func NewHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1, last = overflow
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Mean is the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// String renders the snapshot as one line of bucket counts.
func (s HistogramSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.1f", s.Count, s.Mean())
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		switch {
		case i < len(s.Bounds):
			fmt.Fprintf(&b, " ≤%d:%d", s.Bounds[i], c)
		case len(s.Bounds) > 0:
			fmt.Fprintf(&b, " >%d:%d", s.Bounds[len(s.Bounds)-1], c)
		default:
			// A zero-bound histogram has only the overflow bucket; there is
			// no finite bound to render the label against.
			fmt.Fprintf(&b, " all:%d", c)
		}
	}
	return b.String()
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
