package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestHistogramZeroBoundsString is the regression for the overflow-label
// panic: a histogram built with no bounds puts every observation in the
// implicit overflow bucket, and String() used to index Bounds[-1].
func TestHistogramZeroBoundsString(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(7)
	h.Observe(9)
	s := h.snapshot()
	got := s.String() // must not panic
	if !strings.Contains(got, "count=2") || !strings.Contains(got, "all:2") {
		t.Fatalf("zero-bound snapshot rendered %q", got)
	}
	// The empty zero-bound histogram renders too.
	if got := NewHistogram(nil).snapshot().String(); !strings.Contains(got, "count=0") {
		t.Fatalf("empty zero-bound snapshot rendered %q", got)
	}
}

// TestHistogramConcurrentObserveSnapshot hammers Observe from many
// goroutines while snapshots are taken concurrently; run under -race this
// pins the atomicity of the histogram, and the final totals must balance.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	const writers, perWriter = 8, 2000

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := h.snapshot()
				_ = s.String()
				_ = s.Mean()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(uint64(w*1000+i) % 2000)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	s := h.snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

// TestRegistryConcurrentRegistration: get-or-create of counters, gauges,
// histograms and samplers from many goroutines — including hitting the same
// names — is race-free and converges to one metric per name.
func TestRegistryConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("shared.counter").Inc()
				reg.Counter(fmt.Sprintf("own.counter.%d", w)).Inc()
				reg.Gauge("shared.gauge").Add(1)
				reg.Histogram("shared.hist", []uint64{10, 100}).Observe(uint64(i))
				reg.RegisterFunc("shared.func", func() uint64 { return 42 })
				_ = reg.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if got, _ := s.Get("shared.counter"); got != workers*200 {
		t.Fatalf("shared.counter = %d, want %d", got, workers*200)
	}
	if s.Gauges["shared.gauge"] != workers*200 {
		t.Fatalf("shared.gauge = %d, want %d", s.Gauges["shared.gauge"], workers*200)
	}
	if s.Histograms["shared.hist"].Count != workers*200 {
		t.Fatalf("shared.hist count = %d, want %d", s.Histograms["shared.hist"].Count, workers*200)
	}
	if got, _ := s.Get("shared.func"); got != 42 {
		t.Fatalf("shared.func = %d, want 42", got)
	}
}
