package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// testSpanRecord builds a small but complete campaign tree: stages, two
// jobs, a retried attempt, and phases.
func testSpanRecord() SpanRecord {
	root := NewSpan("campaign", SpanKindCampaign).Attr("tenant", "t1").Attr("attack", "v1-thread")
	root.Child(NewSpan("queued", SpanKindStage))
	root.Child(NewSpan("admitted", SpanKindStage))
	flight := root.Child(NewSpan("flight", SpanKindStage))

	j0 := flight.Child(NewSpan("job[0]", SpanKindJob).Attr("intensity", "0"))
	j0.Cycles = 1000
	a0 := j0.Child(NewSpan("attempt[0]", SpanKindAttempt).Attr("outcome", "ok"))
	a0.Cycles = 1000
	a0.Child(&Span{Name: "train", Kind: SpanKindPhase, Cycles: 600})
	a0.Child(&Span{Name: "probe", Kind: SpanKindPhase, Cycles: 400})

	j1 := flight.Child(NewSpan("job[1]", SpanKindJob).Attr("intensity", "1"))
	j1.Cycles = 2000
	j1.Child(NewSpan("attempt[0]", SpanKindAttempt).Attr("outcome", "retried").Attr("fault_kind", "segfault"))
	a1 := j1.Child(NewSpan("attempt[1]", SpanKindAttempt).Attr("outcome", "ok"))
	a1.Cycles = 2000
	a1.Child(&Span{Name: "train", Kind: SpanKindPhase, Cycles: 2000})

	root.Cycles = 3000
	return NewSpanRecord("corr-123", strings.Repeat("ab", 32), root)
}

func TestSpanRecordRoundTripAndValidate(t *testing.T) {
	rec := testSpanRecord()
	if err := ValidateSpanRecord(rec); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	line, err := rec.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) || bytes.Count(line, []byte("\n")) != 1 {
		t.Fatalf("MarshalLine is not a single JSONL line: %q", line)
	}
	// A log of three records validates and counts correctly.
	log := append(append(append([]byte(nil), line...), line...), line...)
	n, err := ValidateSpanLog(bytes.NewReader(log))
	if err != nil {
		t.Fatalf("ValidateSpanLog: %v", err)
	}
	if n != 3 {
		t.Fatalf("ValidateSpanLog counted %d records, want 3", n)
	}
	// Marshalling twice is byte-identical (ordered attrs, no maps).
	line2, _ := rec.MarshalLine()
	if !bytes.Equal(line, line2) {
		t.Fatal("span record serialisation is nondeterministic")
	}
}

func TestSpanValidationRejects(t *testing.T) {
	base := func() SpanRecord { return testSpanRecord() }
	cases := []struct {
		name string
		mut  func(*SpanRecord)
	}{
		{"wrong schema", func(r *SpanRecord) { r.Schema = "afterimage-spanlog/999" }},
		{"no correlation id", func(r *SpanRecord) { r.CorrelationID = "" }},
		{"no key", func(r *SpanRecord) { r.Key = "" }},
		{"nil tree", func(r *SpanRecord) { r.Span = nil }},
		{"root not campaign", func(r *SpanRecord) { r.Span.Kind = SpanKindJob }},
		{"unknown kind", func(r *SpanRecord) { r.Span.Children[0].Kind = "interpretive-dance" }},
		{"phase under campaign", func(r *SpanRecord) {
			r.Span.Children = append(r.Span.Children, &Span{Name: "rogue", Kind: SpanKindPhase})
		}},
		{"empty attr key", func(r *SpanRecord) { r.Span.Attrs[0].Key = "" }},
		{"empty child name", func(r *SpanRecord) { r.Span.Children[0].Name = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := base()
			tc.mut(&rec)
			if err := ValidateSpanRecord(rec); err == nil {
				t.Fatal("mutated record validated")
			}
		})
	}
	if _, err := ValidateSpanLog(strings.NewReader("")); err == nil {
		t.Fatal("empty span log validated")
	}
	if _, err := ValidateSpanLog(strings.NewReader("{\"schema\":\"x\"}\n")); err == nil {
		t.Fatal("bad-schema span log validated")
	}
}

// TestSpanChromeTraceExport: the span tree exports through the Chrome
// trace_event pipeline and passes the same validator the -trace files do —
// balanced B/E pairs, monotone nesting.
func TestSpanChromeTraceExport(t *testing.T) {
	rec := testSpanRecord()
	var buf bytes.Buffer
	if err := WriteSpanChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("span chrome trace invalid: %v\n%s", err, buf.String())
	}
	// 2 metadata + one B/E pair per span: campaign + 3 stages + 2 jobs +
	// 3 attempts + 3 phases = 12 spans → 24 + 2 events.
	if n != 26 {
		t.Fatalf("exported %d events, want 26", n)
	}
	if !strings.Contains(buf.String(), `"correlation_id":"corr-123"`) {
		t.Fatal("chrome export lost the correlation id")
	}
}
