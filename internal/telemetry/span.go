package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SpanLogSchema versions the span-log record encoding. A record carrying a
// different schema token is rejected by the validator instead of misread.
const SpanLogSchema = "afterimage-spanlog/1"

// The span kinds of the campaign trace taxonomy. A campaign span tree is
//
//	campaign → stage (queued, admitted, flight)
//	flight   → job[i]        (one per sweep point)
//	job      → attempt[k]    (one per supervised run, retries included)
//	attempt  → phase         (train / trigger / probe / decode)
//
// enforced by ValidateSpanRecord so consumers can rely on the shape.
const (
	SpanKindCampaign = "campaign"
	SpanKindStage    = "stage"
	SpanKindJob      = "job"
	SpanKindAttempt  = "attempt"
	SpanKindPhase    = "phase"
)

// spanChildKinds is the allowed parent→child kind relation.
var spanChildKinds = map[string]map[string]bool{
	SpanKindCampaign: {SpanKindStage: true},
	SpanKindStage:    {SpanKindJob: true},
	SpanKindJob:      {SpanKindAttempt: true},
	SpanKindAttempt:  {SpanKindPhase: true},
	SpanKindPhase:    {},
}

// SpanAttr is one key/value annotation on a span. Attributes are an ordered
// slice — not a map — so a span tree always serialises to the same bytes.
type SpanAttr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one node of a campaign span tree. Durations are simulated cycles,
// not wall time: wall time is nondeterministic and lives in the registry's
// latency histograms, while the span log is byte-stable — a campaign resumed
// after a drain or crash reports the identical tree an uninterrupted run
// would have.
type Span struct {
	Name     string     `json:"name"`
	Kind     string     `json:"kind"`
	Cycles   uint64     `json:"cycles,omitempty"`
	Attrs    []SpanAttr `json:"attrs,omitempty"`
	Children []*Span    `json:"children,omitempty"`
}

// NewSpan builds a span node.
func NewSpan(name, kind string) *Span { return &Span{Name: name, Kind: kind} }

// Attr appends one attribute and returns the span for chaining.
func (s *Span) Attr(key, value string) *Span {
	s.Attrs = append(s.Attrs, SpanAttr{Key: key, Value: value})
	return s
}

// Child appends a child span and returns the child.
func (s *Span) Child(c *Span) *Span {
	s.Children = append(s.Children, c)
	return c
}

// SpanRecord is one campaign's complete trace: the correlation ID the client
// supplied (or the server minted), the campaign's content address, and the
// span tree.
type SpanRecord struct {
	Schema        string `json:"schema"`
	CorrelationID string `json:"correlation_id"`
	Key           string `json:"key"`
	Span          *Span  `json:"span"`
}

// NewSpanRecord assembles a schema-stamped record.
func NewSpanRecord(correlationID, key string, root *Span) SpanRecord {
	return SpanRecord{Schema: SpanLogSchema, CorrelationID: correlationID, Key: key, Span: root}
}

// MarshalLine renders the record as one compact JSON line (newline
// terminated) — the span-log (JSONL) encoding.
func (r SpanRecord) MarshalLine() ([]byte, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("spanlog: encode record: %w", err)
	}
	return append(raw, '\n'), nil
}

// ValidateSpanRecord checks one record against the schema: the schema token,
// a non-empty correlation ID and key, a campaign root, and — recursively —
// known kinds, non-empty names, non-empty attribute keys, and the
// parent→child kind relation.
func ValidateSpanRecord(r SpanRecord) error {
	if r.Schema != SpanLogSchema {
		return fmt.Errorf("spanlog: schema %q, want %q", r.Schema, SpanLogSchema)
	}
	if r.CorrelationID == "" {
		return fmt.Errorf("spanlog: record has no correlation_id")
	}
	if r.Key == "" {
		return fmt.Errorf("spanlog: record has no campaign key")
	}
	if r.Span == nil {
		return fmt.Errorf("spanlog: record has no span tree")
	}
	if r.Span.Kind != SpanKindCampaign {
		return fmt.Errorf("spanlog: root span kind %q, want %q", r.Span.Kind, SpanKindCampaign)
	}
	return validateSpan(r.Span, "")
}

func validateSpan(s *Span, path string) error {
	path += "/" + s.Name
	if s.Name == "" {
		return fmt.Errorf("spanlog: span at %q has no name", path)
	}
	allowed, known := spanChildKinds[s.Kind]
	if !known {
		return fmt.Errorf("spanlog: span %q has unknown kind %q", path, s.Kind)
	}
	for _, a := range s.Attrs {
		if a.Key == "" {
			return fmt.Errorf("spanlog: span %q has an attribute with an empty key", path)
		}
	}
	for _, c := range s.Children {
		if c == nil {
			return fmt.Errorf("spanlog: span %q has a nil child", path)
		}
		if !allowed[c.Kind] {
			return fmt.Errorf("spanlog: span %q (kind %s) may not contain kind %q child %q",
				path, s.Kind, c.Kind, c.Name)
		}
		if err := validateSpan(c, path); err != nil {
			return err
		}
	}
	return nil
}

// ValidateSpanLog checks a JSONL span log: every line must decode into a
// valid SpanRecord. It returns the number of records on success.
func ValidateSpanLog(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return 0, fmt.Errorf("spanlog: line %d: %w", line, err)
		}
		if err := ValidateSpanRecord(rec); err != nil {
			return 0, fmt.Errorf("spanlog: line %d: %w", line, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("spanlog: read: %w", err)
	}
	if n == 0 {
		return 0, fmt.Errorf("spanlog: no records")
	}
	return n, nil
}

// WriteSpanChromeTrace renders one span record through the existing Chrome
// trace_event pipeline: every span becomes a B/E duration pair on a single
// nested track, with children laid out sequentially inside their parent and
// the parent extended to cover them. Cycle durations export as µs, so the
// tree opens directly in chrome://tracing and Perfetto.
func WriteSpanChromeTrace(w io.Writer, rec SpanRecord) error {
	if err := ValidateSpanRecord(rec); err != nil {
		return err
	}
	out := traceFile{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents,
		traceEvent{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]interface{}{"name": "afterimage-campaign " + rec.Key[:min(12, len(rec.Key))]}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]interface{}{"name": "campaign " + rec.CorrelationID}},
	)

	var emit func(sp *Span, start uint64) uint64
	emit = func(sp *Span, start uint64) uint64 {
		args := map[string]interface{}{"kind": sp.Kind, "correlation_id": rec.CorrelationID}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: sp.Name, Cat: "span", Ph: "B", Ts: float64(start), Pid: 1, Tid: 1, Args: args,
		})
		cur := start
		for _, c := range sp.Children {
			cur = emit(c, cur)
		}
		end := start + sp.Cycles
		if cur > end {
			end = cur
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: sp.Name, Cat: "span", Ph: "E", Ts: float64(end), Pid: 1, Tid: 1,
		})
		return end
	}
	emit(rec.Span, 0)

	out.OtherData = map[string]interface{}{
		"generator":      "afterimage internal/telemetry (span log)",
		"correlation_id": rec.CorrelationID,
		"campaign_key":   rec.Key,
	}
	return json.NewEncoder(w).Encode(out)
}
