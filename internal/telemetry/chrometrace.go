package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// The exporter lays tracks out as one thread per event family inside a
// single process, which is how chrome://tracing and Perfetto group them.
const (
	trackPhases    = 1
	trackPrefTable = 2
	trackPrefetch  = 3
	trackCache     = 4
	trackTLB       = 5
	trackSched     = 6
	trackFaults    = 7
)

var trackNames = map[int]string{
	trackPhases:    "attack phases",
	trackPrefTable: "prefetch table",
	trackPrefetch:  "prefetch issue",
	trackCache:     "cache",
	trackTLB:       "tlb",
	trackSched:     "scheduler",
	trackFaults:    "faults",
}

func trackOf(k EventKind) int {
	switch k {
	case EvPhaseBegin, EvPhaseEnd:
		return trackPhases
	case EvPTInsert, EvPTEvict, EvPTConfidence, EvPTFlush:
		return trackPrefTable
	case EvPrefetchIssue, EvPrefetchDrop:
		return trackPrefetch
	case EvDemandAccess:
		return trackCache
	case EvTLBMiss:
		return trackTLB
	case EvDomainSwitch, EvTaskStart, EvTaskDone:
		return trackSched
	case EvFaultInject:
		return trackFaults
	default:
		return trackSched
	}
}

// traceEvent is one record of the Chrome trace_event format (JSON Array
// Format fields inside the JSON Object Format container).
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	OtherData       interface{}  `json:"otherData,omitempty"`
}

// TraceMeta labels an exported trace.
type TraceMeta struct {
	Process string  // process_name metadata (e.g. the simulated machine name)
	GHz     float64 // cycle→µs conversion; 0 exports raw cycles as µs
	Dropped uint64  // ring-buffer drop count, recorded in otherData
}

// WriteChromeTrace renders events (oldest-first, as Bus.Events returns them)
// as Chrome trace_event JSON loadable by chrome://tracing and Perfetto.
// Phase spans become B/E duration pairs on their own track; every other
// event becomes a thread-scoped instant with its arguments attached.
func WriteChromeTrace(w io.Writer, events []Event, meta TraceMeta) error {
	perCycle := 1.0
	if meta.GHz > 0 {
		perCycle = 1.0 / (meta.GHz * 1000) // cycles → µs
	}
	ts := func(cycle uint64) float64 { return float64(cycle) * perCycle }

	out := traceFile{DisplayTimeUnit: "ms"}
	name := meta.Process
	if name == "" {
		name = "afterimage-sim"
	}
	out.TraceEvents = append(out.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]interface{}{"name": name},
	})
	// Fixed tid order keeps the exported bytes deterministic (map iteration
	// order is not).
	for tid := trackPhases; tid <= trackFaults; tid++ {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]interface{}{"name": trackNames[tid]},
		})
	}

	openPhase := ""
	var lastTs float64
	for _, ev := range events {
		t := ts(ev.Cycle)
		if t > lastTs {
			lastTs = t
		}
		switch ev.Kind {
		case EvPhaseBegin:
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: ev.Label, Cat: "phase", Ph: "B", Ts: t, Pid: 1, Tid: trackPhases,
			})
			openPhase = ev.Label
		case EvPhaseEnd:
			if openPhase == "" {
				continue // ring wrapped past the matching B; drop the dangler
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: ev.Label, Cat: "phase", Ph: "E", Ts: t, Pid: 1, Tid: trackPhases,
			})
			openPhase = ""
		default:
			te := traceEvent{
				Name: ev.Kind.String(), Cat: "sim", Ph: "i", Ts: t,
				Pid: 1, Tid: trackOf(ev.Kind), S: "t",
				Args: map[string]interface{}{"arg1": ev.Arg1, "arg2": ev.Arg2},
			}
			if ev.Label != "" {
				te.Args["label"] = ev.Label
			}
			if ev.Phase != "" {
				te.Args["phase"] = ev.Phase
			}
			out.TraceEvents = append(out.TraceEvents, te)
		}
	}
	if openPhase != "" {
		// Close a span left dangling at the end of the run so B/E stay paired.
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: openPhase, Cat: "phase", Ph: "E", Ts: lastTs, Pid: 1, Tid: trackPhases,
		})
	}
	out.OtherData = map[string]interface{}{
		"generator": "afterimage internal/telemetry",
		"dropped":   meta.Dropped,
		"events":    len(events),
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateChromeTrace checks that r holds JSON conforming to the Chrome
// trace-event object format as this exporter emits it: a traceEvents array
// whose records carry a known phase type, a name, numeric non-negative
// timestamps and pid/tid, with B/E duration events balanced per thread.
// It returns the number of trace events on success.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var f struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	known := map[string]bool{
		"B": true, "E": true, "X": true, "i": true, "I": true, "M": true,
		"C": true, "b": true, "e": true, "n": true, "s": true, "t": true, "f": true,
	}
	depth := map[string]int{} // per (pid,tid) open B count
	for i, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		if !known[ph] {
			return 0, fmt.Errorf("trace: event %d: unknown phase type %q", i, ph)
		}
		if _, ok := ev["name"].(string); !ok {
			return 0, fmt.Errorf("trace: event %d: missing name", i)
		}
		if ph != "M" {
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return 0, fmt.Errorf("trace: event %d: missing or negative ts", i)
			}
		}
		key := fmt.Sprintf("%v/%v", ev["pid"], ev["tid"])
		switch ph {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				return 0, fmt.Errorf("trace: event %d: E without matching B on %s", i, key)
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			return 0, fmt.Errorf("trace: %d unclosed B event(s) on %s", d, key)
		}
	}
	return len(f.TraceEvents), nil
}
