// Package champsim is a trace-driven performance model in the spirit of the
// ChampSim simulator the paper uses for its §8.3 mitigation study: it
// replays memory-instruction traces through the real cache hierarchy, TLB
// and prefetcher suite of this repository, charges an out-of-order-aware
// cost per load, and reports IPC. The clear-ip-prefetcher mitigation is
// modelled as a periodic full flush of the IP-stride history table (the
// paper emulates flushing every 10 µs).
package champsim

import (
	"fmt"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
	"afterimage/internal/prefetcher"
	"afterimage/internal/tlb"
	"afterimage/internal/trace"
)

// Config shapes the modelled core.
type Config struct {
	Hierarchy cache.HierarchyConfig
	TLB       tlb.Config
	IPStride  prefetcher.IPStrideConfig
	// Width is the superscalar issue width for non-memory instructions.
	Width int
	// MLP is the memory-level parallelism divisor applied to independent
	// load misses (an OOO core overlaps them); dependent (pointer-chase)
	// loads pay the full latency.
	MLP int
	// FlushIntervalCycles enables the clear-ip-prefetcher mitigation when
	// non-zero: the IP-stride table is flushed every interval, charging
	// one cycle per entry (§8.3's C_clear).
	FlushIntervalCycles uint64
	// GHz converts cycles to time for reporting.
	GHz float64
}

// DefaultConfig models the paper's Coffee Lake-like ChampSim setup.
func DefaultConfig() Config {
	return Config{
		Hierarchy: cache.HierarchyConfig{
			L1: cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8,
				LineSize: mem.LineSize, Policy: cache.TreePLRU},
			L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4,
				LineSize: mem.LineSize, Policy: cache.TreePLRU},
			LLC: cache.Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16,
				LineSize: mem.LineSize, Policy: cache.LRU}, // single-core slice share
			Lat: cache.Latencies{L1: 4, L2: 14, LLC: 44, DRAM: 200},
		},
		TLB:      tlb.DefaultConfig(),
		IPStride: prefetcher.DefaultIPStrideConfig(),
		Width:    4,
		MLP:      4,
		GHz:      3.0,
	}
}

// Result summarises one trace replay.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	LoadMisses   uint64 // demand loads served beyond the L1
	Prefetches   uint64
	Flushes      uint64
	// L1 prefetch-usefulness accounting (fills vs demand-hit-before-
	// eviction) — the coverage/accuracy view of a prefetcher study.
	PrefetchFills  uint64
	UsefulPrefetch uint64
}

// PrefetchAccuracy is the fraction of prefetch fills that saw a demand hit.
func (r Result) PrefetchAccuracy() float64 {
	if r.PrefetchFills == 0 {
		return 0
	}
	return float64(r.UsefulPrefetch) / float64(r.PrefetchFills)
}

// IPC is instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("instr=%d cycles=%d IPC=%.3f loads=%d misses=%d prefetches=%d flushes=%d",
		r.Instructions, r.Cycles, r.IPC(), r.Loads, r.LoadMisses, r.Prefetches, r.Flushes)
}

// Simulator replays records.
type Simulator struct {
	cfg  Config
	mem  *cache.Hierarchy
	tlb  *tlb.TLB
	pref *prefetcher.Suite

	nextFlush uint64
	res       Result
}

// New builds a simulator. The DCU/DPL/streamer prefetchers run enabled, as
// on the real parts.
func New(cfg Config) (*Simulator, error) {
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	if cfg.Width <= 0 || cfg.MLP <= 0 {
		return nil, fmt.Errorf("champsim: width and MLP must be positive")
	}
	suite := &prefetcher.Suite{
		IPStride: prefetcher.NewIPStride(cfg.IPStride),
		DCU:      &prefetcher.DCU{Enabled: true},
		DPL:      &prefetcher.DPL{Enabled: true},
		Streamer: prefetcher.NewStreamer(2),
	}
	suite.Streamer.Enabled = true
	s := &Simulator{cfg: cfg, mem: h, tlb: tlb.New(cfg.TLB), pref: suite}
	if cfg.FlushIntervalCycles > 0 {
		s.nextFlush = cfg.FlushIntervalCycles
	}
	return s, nil
}

// Fork returns an independent deep copy of the simulator: caches, TLB and
// prefetcher suite fork (see their Fork methods), the accumulated result
// and flush schedule copy. Replaying the same records on the fork and on
// an identically configured fresh simulator produces identical results.
func (s *Simulator) Fork() *Simulator {
	return &Simulator{
		cfg:       s.cfg,
		mem:       s.mem.Fork(),
		tlb:       s.tlb.Fork(nil),
		pref:      s.pref.Fork(),
		nextFlush: s.nextFlush,
		res:       s.res,
	}
}

// SetFlushInterval reconfigures the periodic clear-ip-prefetcher
// mitigation (0 disables it), scheduling the next flush one interval past
// the cycles accumulated so far — on a pristine simulator this is exactly
// the schedule New(cfg) would have installed.
func (s *Simulator) SetFlushInterval(interval uint64) {
	s.cfg.FlushIntervalCycles = interval
	s.nextFlush = 0
	if interval > 0 {
		s.nextFlush = s.res.Cycles + interval
	}
}

// DisableIPStride turns the IP-stride prefetcher off entirely (the
// "disable the prefetcher" baseline of §8.2).
func (s *Simulator) DisableIPStride() {
	s.pref.IPStride = prefetcher.NewIPStride(prefetcher.IPStrideConfig{
		Entries: 1, IndexBits: 8, MaxConfidence: 3,
		TriggerThreshold: 1 << 30, // never fires
		MaxStrideBytes:   2048,
		Policy:           cache.BitPLRU,
	})
}

// Run replays the records and returns the result.
func (s *Simulator) Run(records []trace.Record) Result {
	for _, r := range records {
		s.step(r)
	}
	s.res.PrefetchFills, s.res.UsefulPrefetch = s.mem.L1.PrefetchStats()
	return s.res
}

func (s *Simulator) step(r trace.Record) {
	// Non-memory instructions retire Width per cycle. (Read the two scalar
	// knobs directly — copying the whole nested Config per record is
	// measurable at this call rate.)
	width, mlp := s.cfg.Width, s.cfg.MLP
	s.res.Instructions += uint64(r.Gap) + 1
	s.res.Cycles += uint64((r.Gap + width - 1) / width)

	pa := mem.PAddr(r.Addr) // traces use physical==virtual (ChampSim style)
	tlbHit, walk := s.tlb.Lookup(0, mem.VAddr(r.Addr))
	level, lat := s.mem.Load(pa)
	s.res.Loads++
	if level != cache.LevelL1 {
		s.res.LoadMisses++
	}
	cost := lat + walk
	if !r.Dependent && level != cache.LevelL1 {
		// Independent misses overlap on an OOO core.
		cost = cost/uint64(mlp) + 1
	}
	s.res.Cycles += cost

	before := s.pref.IPStride.PrefetchCount()
	reqs := s.pref.OnLoad(prefetcher.Access{
		IP: r.IP, PA: pa, PID: 0, TLBHit: tlbHit, Level: level,
	})
	for _, q := range reqs {
		s.mem.Prefetch(q.Target)
	}
	s.res.Prefetches += s.pref.IPStride.PrefetchCount() - before

	if s.cfg.FlushIntervalCycles > 0 && s.res.Cycles >= s.nextFlush {
		s.pref.IPStride.Flush()
		s.res.Cycles += uint64(s.cfg.IPStride.Entries) // C_clear: 1 cycle/entry
		s.res.Flushes++
		s.nextFlush = s.res.Cycles + s.cfg.FlushIntervalCycles
	}
}

// AnalyticUpperBound computes the paper's closed-form worst-case penalty
// (§8.3): (C_clear + C_miss·3·entries) / domain-switch period, as a
// fraction of time on a core at the given frequency.
func AnalyticUpperBound(entries int, cMiss uint64, switchPeriodSeconds float64, ghz float64) float64 {
	cClear := float64(entries) // one cycle per entry
	penaltyCycles := cClear + float64(cMiss)*3*float64(entries)
	periodCycles := switchPeriodSeconds * ghz * 1e9
	return penaltyCycles / periodCycles
}

// AppResult pairs a profile with its measured IPCs.
type AppResult struct {
	Profile    trace.Profile
	Base       Result // prefetcher on, no mitigation
	Mitigated  Result // prefetcher on, periodic flush
	NoPrefetch Result // IP-stride disabled
}

// Slowdown is the mitigation's relative IPC loss versus base.
func (a AppResult) Slowdown() float64 {
	if a.Base.IPC() == 0 {
		return 0
	}
	return 1 - a.Mitigated.IPC()/a.Base.IPC()
}

// PrefetchBenefit is the IPC gain the IP-stride prefetcher provides.
func (a AppResult) PrefetchBenefit() float64 {
	if a.NoPrefetch.IPC() == 0 {
		return 0
	}
	return a.Base.IPC()/a.NoPrefetch.IPC() - 1
}

// RunApp replays one profile three ways (base, mitigated, no-prefetch) over
// n instructions and returns its study row. It is the per-application unit of
// RunStudy, exposed so a supervised campaign can run applications as
// independent jobs; the result depends only on the arguments.
func RunApp(cfg Config, p trace.Profile, n int, flushInterval uint64, seed int64) (AppResult, error) {
	records := trace.NewGenerator(p, seed).Generate(n)

	// Build the hierarchy/TLB/suite once and fork the two variants off the
	// pristine base — bit-identical to three New(cfg) calls (the property
	// the fork-equivalence suite gates) at a third of the setup cost. The
	// forks must happen before base.Run mutates any shared-at-build state.
	base, err := New(cfg)
	if err != nil {
		return AppResult{}, err
	}
	mit := base.Fork()
	mit.SetFlushInterval(flushInterval)
	nop := base.Fork()
	nop.DisableIPStride()

	return AppResult{
		Profile:    p,
		Base:       base.Run(records),
		Mitigated:  mit.Run(records),
		NoPrefetch: nop.Run(records),
	}, nil
}

// RunStudy replays every profile three ways (base, mitigated, no-prefetch)
// over n instructions each and returns per-app results.
func RunStudy(cfg Config, profiles []trace.Profile, n int, flushInterval uint64, seed int64) ([]AppResult, error) {
	out := make([]AppResult, 0, len(profiles))
	for _, p := range profiles {
		r, err := RunApp(cfg, p, n, flushInterval, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Summary aggregates a study: the mean slowdown over the top-k prefetch-
// sensitive apps (by measured prefetcher benefit) and over all apps —
// the two numbers §8.3 reports (0.7 % and 0.2 %).
func Summary(results []AppResult, topK int) (topSlowdown, allSlowdown float64) {
	if len(results) == 0 {
		return 0, 0
	}
	sorted := append([]AppResult(nil), results...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].PrefetchBenefit() > sorted[i].PrefetchBenefit() {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	if topK > len(sorted) {
		topK = len(sorted)
	}
	var top, all float64
	for i, r := range sorted {
		if i < topK {
			top += r.Slowdown()
		}
		all += r.Slowdown()
	}
	return top / float64(topK), all / float64(len(sorted))
}
