package champsim

import (
	"testing"

	"afterimage/internal/trace"
)

// BenchmarkRunApp is the per-application unit of the §8.3 mitigation study:
// one profile replayed three ways (base, mitigated, no-prefetch). It is one
// of the pinned hot-path benchmarks tracked in BENCH_hotpath.json.
func BenchmarkRunApp(b *testing.B) {
	cfg := DefaultConfig()
	prof := trace.SPECLike()[0] // libquantum-like: prefetch-sensitive
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunApp(cfg, prof, 20_000, 30_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStep measures the steady-state per-record cost of the
// trace replay loop with all prefetchers enabled.
func BenchmarkSimulatorStep(b *testing.B) {
	cfg := DefaultConfig()
	records := trace.NewGenerator(trace.SPECLike()[0], 1).Generate(4096)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(records[i%len(records)])
	}
}
