package champsim

import (
	"math"
	"testing"

	"afterimage/internal/trace"
)

func TestBadConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestPrefetcherHelpsStridedWorkload(t *testing.T) {
	p := trace.SPECLike()[0] // libquantum-like
	records := trace.NewGenerator(p, 1).Generate(60_000)

	base, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rb := base.Run(records)

	nop, _ := New(DefaultConfig())
	nop.DisableIPStride()
	rn := nop.Run(records)

	if rb.IPC() <= rn.IPC() {
		t.Fatalf("IP-stride prefetcher did not help a strided app: %.3f vs %.3f", rb.IPC(), rn.IPC())
	}
	if rb.Prefetches == 0 {
		t.Fatal("no prefetches issued on a strided trace")
	}
}

func TestPrefetcherIrrelevantForPointerChase(t *testing.T) {
	p := trace.SPECLike()[8] // mcf-like
	records := trace.NewGenerator(p, 2).Generate(60_000)
	base, _ := New(DefaultConfig())
	rb := base.Run(records)
	nop, _ := New(DefaultConfig())
	nop.DisableIPStride()
	rn := nop.Run(records)
	gain := rb.IPC()/rn.IPC() - 1
	if gain > 0.05 {
		t.Fatalf("pointer-chase app gained %.1f%% from the prefetcher", gain*100)
	}
}

func TestMitigationFlushesAndCostsLittle(t *testing.T) {
	p := trace.SPECLike()[0]
	records := trace.NewGenerator(p, 3).Generate(120_000)
	cfg := DefaultConfig()
	base, _ := New(cfg)
	rb := base.Run(records)

	mitCfg := cfg
	mitCfg.FlushIntervalCycles = 30_000 // 10 µs at 3 GHz
	mit, _ := New(mitCfg)
	rm := mit.Run(records)

	if rm.Flushes == 0 {
		t.Fatal("mitigated run never flushed")
	}
	slow := 1 - rm.IPC()/rb.IPC()
	if slow < 0 {
		t.Fatalf("mitigation sped the core up (%.4f)", slow)
	}
	if slow > 0.05 {
		t.Fatalf("mitigation slowdown %.2f%% far above the paper's regime", slow*100)
	}
}

func TestAnalyticUpperBoundMatchesPaper(t *testing.T) {
	// §8.3: 24 entries, ~300-cycle miss, 100 µs syscall period, 3 GHz →
	// "less than 7.3 %".
	got := AnalyticUpperBound(24, 300, 100e-6, 3.0)
	if got > 0.073 || got < 0.05 {
		t.Fatalf("upper bound = %.4f, want ~0.072 (<7.3%%)", got)
	}
}

func TestStudySummaryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("study is slow")
	}
	cfg := DefaultConfig()
	results, err := RunStudy(cfg, trace.SPECLike(), 60_000, 30_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("%d results", len(results))
	}
	top, all := Summary(results, 8)
	// The paper reports 0.7 % (top 8) and 0.2 % (all): demand the same
	// order of magnitude and ordering.
	if top < all {
		t.Fatalf("top-8 slowdown %.4f below overall %.4f", top, all)
	}
	if top <= 0 || top > 0.03 {
		t.Fatalf("top-8 slowdown %.4f outside the sub-3%% regime", top)
	}
	if all > 0.02 {
		t.Fatalf("overall slowdown %.4f too large", all)
	}
	for _, r := range results {
		if math.IsNaN(r.Slowdown()) {
			t.Fatalf("%s: NaN slowdown", r.Profile.Name)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Instructions: 10, Cycles: 5}
	if r.IPC() != 2 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
	var zero Result
	if zero.IPC() != 0 {
		t.Fatal("zero-cycle IPC")
	}
}

// TestPrefetchAccuracyByWorkload: the IP-stride prefetcher is accurate on
// strided traces and near-useless on pointer chases.
func TestPrefetchAccuracyByWorkload(t *testing.T) {
	strided := trace.NewGenerator(trace.SPECLike()[0], 4).Generate(40_000)
	s, _ := New(DefaultConfig())
	rs := s.Run(strided)
	if rs.PrefetchFills == 0 {
		t.Fatal("no prefetch fills on a strided trace")
	}
	if rs.PrefetchAccuracy() < 0.5 {
		t.Fatalf("strided prefetch accuracy %.2f", rs.PrefetchAccuracy())
	}
	chase := trace.NewGenerator(trace.SPECLike()[8], 4).Generate(40_000)
	c, _ := New(DefaultConfig())
	rc := c.Run(chase)
	if rc.PrefetchAccuracy() > rs.PrefetchAccuracy() {
		t.Fatalf("pointer chase (%.2f) beat strided (%.2f) accuracy",
			rc.PrefetchAccuracy(), rs.PrefetchAccuracy())
	}
}

func TestPrefetchAccuracyZeroWhenNoFills(t *testing.T) {
	var r Result
	if r.PrefetchAccuracy() != 0 {
		t.Fatal("empty result accuracy nonzero")
	}
}
