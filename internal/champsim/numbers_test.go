package champsim

import (
	"testing"

	"afterimage/internal/trace"
)

// TestPrintStudyNumbers is a diagnostic; run with -v to see the table.
func TestPrintStudyNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	results, err := RunStudy(DefaultConfig(), trace.SPECLike(), 120_000, 30_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-18s benefit=%6.2f%% slowdown=%6.3f%% (base IPC %.3f)",
			r.Profile.Name, r.PrefetchBenefit()*100, r.Slowdown()*100, r.Base.IPC())
	}
	top, all := Summary(results, 8)
	t.Logf("top-8 slowdown: %.3f%%  overall: %.3f%%", top*100, all*100)
}
