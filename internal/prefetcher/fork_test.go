package prefetcher

import (
	"testing"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
)

func forkTestSuite() *Suite {
	s := &Suite{
		IPStride: NewIPStride(DefaultIPStrideConfig()),
		DCU:      &DCU{Enabled: true},
		DPL:      &DPL{Enabled: true},
		Streamer: NewStreamer(2),
	}
	s.Streamer.Enabled = true
	return s
}

func warmSuite(s *Suite, n int) {
	for i := 0; i < n; i++ {
		s.OnLoad(Access{
			IP:     0x400000 + uint64(i%20)*0x40,
			PA:     mem.PAddr(0x10000 + (i%20)*4096 + (i/20)*192),
			TLBHit: i%9 != 0,
			Level:  cache.LevelDRAM,
		})
	}
}

// TestSuiteForkBitIdentical: a forked suite hashes identically to its
// parent and stays identical under an identical access stream — including
// the issued prefetch requests.
func TestSuiteForkBitIdentical(t *testing.T) {
	s := forkTestSuite()
	warmSuite(s, 500)
	f := s.Fork()
	if f.StateHash() != s.StateHash() {
		t.Fatal("fork hash differs from parent at rest")
	}
	for i := 0; i < 300; i++ {
		a := Access{
			IP:     0x400000 + uint64(i%24)*0x40,
			PA:     mem.PAddr(0x40000 + (i%24)*4096 + i*64),
			TLBHit: i%7 != 0,
			Level:  cache.LevelL2,
		}
		ra := s.OnLoad(a)
		rb := f.OnLoad(a)
		if len(ra) != len(rb) {
			t.Fatalf("access %d: parent issued %d requests, fork %d", i, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("access %d request %d: parent %+v, fork %+v", i, j, ra[j], rb[j])
			}
		}
	}
	if f.StateHash() != s.StateHash() {
		t.Fatal("fork diverged from parent under an identical access stream")
	}
}

// TestSuiteForkScratchReset: the fork gets a FRESH request scratch buffer
// sized to the parent's capacity — empty (no stale requests) but
// allocation-free from the first OnLoad, exactly like a restored suite.
func TestSuiteForkScratchReset(t *testing.T) {
	s := forkTestSuite()
	warmSuite(s, 500) // grows the scratch to its steady-state capacity
	if cap(s.scratch) == 0 {
		t.Fatal("parent scratch never grew (test substrate broken)")
	}
	f := s.Fork()
	if len(f.scratch) != 0 {
		t.Fatalf("fork scratch carries %d stale requests", len(f.scratch))
	}
	if cap(f.scratch) != cap(s.scratch) {
		t.Fatalf("fork scratch capacity %d, parent %d", cap(f.scratch), cap(s.scratch))
	}
	// Sharing the backing array would let the parent's next OnLoad overwrite
	// requests the fork just returned.
	pr := s.OnLoad(Access{IP: 0x400040, PA: 0x51000, TLBHit: true, Level: cache.LevelDRAM})
	fr := f.OnLoad(Access{IP: 0x400040, PA: 0x51000, TLBHit: true, Level: cache.LevelDRAM})
	if len(pr) > 0 && len(fr) > 0 && &pr[0] == &fr[0] {
		t.Fatal("fork shares the parent's scratch backing array")
	}
}

// TestIPStrideForkIndependence: training the fork leaves the parent's
// table, policy and counters untouched, and vice versa.
func TestIPStrideForkIndependence(t *testing.T) {
	s := forkTestSuite()
	warmSuite(s, 200)
	before := s.IPStride.StateHash()
	f := s.Fork()
	for i := 0; i < 400; i++ {
		f.IPStride.OnLoad(Access{
			IP: 0x900000 + uint64(i%24)*0x40, PA: mem.PAddr(0x80000 + i*128),
			TLBHit: true, Level: cache.LevelDRAM,
		})
	}
	f.IPStride.Flush()
	if s.IPStride.StateHash() != before {
		t.Fatal("fork training mutated the parent table")
	}
	fBefore := f.IPStride.StateHash()
	s.IPStride.OnLoad(Access{IP: 0x400000, PA: 0x999000, TLBHit: true, Level: cache.LevelDRAM})
	if f.IPStride.StateHash() != fBefore {
		t.Fatal("parent training mutated the fork table")
	}
}
