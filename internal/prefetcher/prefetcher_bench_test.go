package prefetcher

import (
	"testing"

	"afterimage/internal/mem"
)

func BenchmarkIPStrideOnLoadStrided(b *testing.B) {
	p := NewIPStride(DefaultIPStrideConfig())
	reqs := make([]Request, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := uint64(0x10000 + (i%8)*7*64)
		reqs = p.AppendOnLoad(Access{IP: 0x42, PA: mem.PAddr(pa), PID: 1, TLBHit: true}, reqs[:0])
	}
	_ = reqs
}

func BenchmarkIPStrideOnLoadThrash(b *testing.B) {
	p := NewIPStride(DefaultIPStrideConfig())
	reqs := make([]Request, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs = p.AppendOnLoad(Access{IP: uint64(i % 256), PA: mem.PAddr(uint64(i) * 64), PID: 1, TLBHit: true}, reqs[:0])
	}
	_ = reqs
}

func BenchmarkSuiteOnLoad(b *testing.B) {
	s := NewSuite()
	s.DCU.Enabled, s.DPL.Enabled, s.Streamer.Enabled = true, true, true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnLoad(Access{IP: uint64(i % 64), PA: mem.PAddr(uint64(i%4096) * 64), PID: 1, TLBHit: true})
	}
}
