package prefetcher

import "testing"

// TestAuditStrideFieldEdges pins the audit's stride bound to the field
// truncStride actually produces: two's-complement [-max, max). The
// fork-isolation property test originally caught Audit rejecting a
// legitimately learned stride of exactly -max.
func TestAuditStrideFieldEdges(t *testing.T) {
	cfg := DefaultIPStrideConfig()
	if got := truncStride(-cfg.MaxStrideBytes, cfg.MaxStrideBytes); got != -cfg.MaxStrideBytes {
		t.Fatalf("truncStride(-max) = %d, want %d", got, -cfg.MaxStrideBytes)
	}

	p := NewIPStride(cfg)
	p.CorruptStride(0, -cfg.MaxStrideBytes) // representable field edge
	if errs := p.Audit(); len(errs) != 0 {
		t.Fatalf("stride -max flagged as corruption: %v", errs)
	}
	p.CorruptStride(0, cfg.MaxStrideBytes) // +max wraps in hardware, never stored
	if errs := p.Audit(); len(errs) == 0 {
		t.Fatal("stride +max not flagged as corruption")
	}
	p.CorruptStride(0, -cfg.MaxStrideBytes-1)
	if errs := p.Audit(); len(errs) == 0 {
		t.Fatal("stride below -max not flagged as corruption")
	}
}
