package prefetcher

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
)

// This file checks the IP-stride implementation against an independent,
// spec-level oracle of the paper's Algorithm 1, on randomized load streams.
// The oracle is written straight from the prose spec — 24 fully-associative
// entries, low-8-bit IP index, 2-bit confidence with threshold 2, 13-bit
// signed stride, Bit-PLRU replacement, 4 KiB frame containment, first-touch
// TLB rule with the next-page assist — sharing no code with the production
// table. A divergence is shrunk to a minimal trace and written under
// testdata/ for replay; any counterexample files already there run first as
// regression cases.

const (
	oracleEntries   = 24
	oracleIndexMask = 0xff // low 8 IP bits
	oracleMaxConf   = 3    // 2-bit saturating counter
	oracleThreshold = 2
	oracleMaxStride = 2048 // |stride| < 2 KiB (13-bit signed field)
	oracleFrameSize = 4096
)

// oracleAccess is one load of a property trace, JSON-encodable so shrunk
// counterexamples can be stored and replayed.
type oracleAccess struct {
	IP      uint64 `json:"ip"`
	Addr    uint64 `json:"addr"`
	TLBMiss bool   `json:"tlbMiss,omitempty"`
}

type oracleEntry struct {
	valid  bool
	tag    uint64
	last   uint64
	stride int64
	conf   int
}

// oracle is the reference model. State is a fixed-size value type; the
// Bit-PLRU bits are tracked inline.
type oracle struct {
	e    [oracleEntries]oracleEntry
	mru  [oracleEntries]bool
	ones int
}

func (o *oracle) plruTouch(i int) {
	if !o.mru[i] {
		o.mru[i] = true
		o.ones++
	}
	if o.ones == oracleEntries {
		o.mru = [oracleEntries]bool{}
		o.mru[i] = true
		o.ones = 1
	}
}

func (o *oracle) plruVictim() int {
	for i, b := range o.mru {
		if !b {
			return i
		}
	}
	return 0
}

func oracleFrame(a uint64) uint64 { return a / oracleFrameSize }

// trunc13 wraps a distance into the 13-bit signed stride field, the
// (-2048, 2048) range of §4.2.
func trunc13(d int64) int64 {
	d %= 2 * oracleMaxStride
	if d >= oracleMaxStride {
		d -= 2 * oracleMaxStride
	} else if d < -oracleMaxStride {
		d += 2 * oracleMaxStride
	}
	return d
}

// step runs Algorithm 1 for one load and returns the prefetch target, if one
// fires (the IP-stride prefetcher issues at most one request per load).
func (o *oracle) step(a oracleAccess) (uint64, bool) {
	idx := -1
	tag := a.IP & oracleIndexMask
	for i := range o.e {
		if o.e[i].valid && o.e[i].tag == tag {
			idx = i
			break
		}
	}

	// First-touch rule (§4.3): a TLB-missing load installs its translation
	// and skips the prefetcher — unless the next-page assist recognises the
	// successor frame of a trained entry.
	if a.TLBMiss {
		assisted := idx >= 0 &&
			oracleFrame(a.Addr) == oracleFrame(o.e[idx].last)+1 &&
			o.e[idx].conf >= oracleThreshold
		if !assisted {
			return 0, false
		}
	}

	if idx < 0 {
		// Allocate (Algorithm 1 line 24): first free slot, else Bit-PLRU victim.
		slot := -1
		for i := range o.e {
			if !o.e[i].valid {
				slot = i
				break
			}
		}
		if slot < 0 {
			slot = o.plruVictim()
		}
		o.e[slot] = oracleEntry{valid: true, tag: tag, last: a.Addr}
		o.plruTouch(slot)
		return 0, false
	}

	e := &o.e[idx]
	o.plruTouch(idx)
	d := int64(a.Addr) - int64(e.last)

	var target uint64
	fired := false
	fire := func(base uint64, stride int64) {
		// §4.3 containment: never cross the trigger's 4 KiB frame; a zero
		// stride never fires.
		if stride == 0 {
			return
		}
		t := uint64(int64(base) + stride)
		if oracleFrame(t) != oracleFrame(base) {
			return
		}
		target, fired = t, true
	}

	if e.conf >= oracleThreshold {
		// Key component (§4.2): saturated confidence fires current+stride
		// before the stride comparison.
		fire(a.Addr, e.stride)
		if d != e.stride {
			e.stride = trunc13(d)
			e.conf = 1
		} else if e.conf < oracleMaxConf {
			e.conf++
		}
	} else {
		if d != e.stride {
			e.stride = trunc13(d)
			e.conf = 1
		} else {
			e.conf++
			if e.conf == oracleThreshold {
				fire(a.Addr, e.stride)
			}
		}
	}
	e.last = a.Addr
	return target, fired
}

// runTrace replays a trace through a fresh production prefetcher and a fresh
// oracle, returning the index of the first diverging step and a description,
// or -1 when they agree end to end. Divergence covers both the issued
// requests and the full history-table state after every step.
func runTrace(trace []oracleAccess) (int, string) {
	p := NewIPStride(DefaultIPStrideConfig())
	var o oracle
	var reqs []Request
	for i, a := range trace {
		reqs = p.AppendOnLoad(Access{
			IP: a.IP, PA: mem.PAddr(a.Addr), TLBHit: !a.TLBMiss,
			Level: cache.LevelDRAM,
		}, reqs[:0])
		wantT, wantFired := o.step(a)
		if len(reqs) > 1 {
			return i, fmt.Sprintf("impl issued %d requests (max is 1)", len(reqs))
		}
		gotFired := len(reqs) == 1
		if gotFired != wantFired {
			return i, fmt.Sprintf("impl fired=%v, oracle fired=%v", gotFired, wantFired)
		}
		if gotFired && uint64(reqs[0].Target) != wantT {
			return i, fmt.Sprintf("impl target %#x, oracle target %#x", uint64(reqs[0].Target), wantT)
		}
		if diff := diffTables(p, &o); diff != "" {
			return i, "table divergence: " + diff
		}
	}
	return -1, ""
}

func diffTables(p *IPStride, o *oracle) string {
	got := p.Entries()
	for i := range o.e {
		w := o.e[i]
		g := got[i]
		if g.Valid != w.valid {
			return fmt.Sprintf("slot %d valid: impl %v oracle %v", i, g.Valid, w.valid)
		}
		if !w.valid {
			continue
		}
		if g.Tag != w.tag || uint64(g.LastAddr) != w.last || g.Stride != w.stride || g.Confidence != w.conf {
			return fmt.Sprintf("slot %d: impl {tag:%#x last:%#x stride:%d conf:%d} oracle {tag:%#x last:%#x stride:%d conf:%d}",
				i, g.Tag, uint64(g.LastAddr), g.Stride, g.Confidence, w.tag, w.last, w.stride, w.conf)
		}
	}
	return ""
}

// genTrace builds a randomized load stream biased toward the interesting
// regimes: colliding 8-bit tags, per-IP stride walks, stride breaks, page
// crossings and TLB misses.
func genTrace(rng *rand.Rand, n int) []oracleAccess {
	// A small IP pool with deliberate 8-bit aliases (same low byte, different
	// upper bits) plus enough distinct tags to force Bit-PLRU evictions.
	ips := make([]uint64, 0, 32)
	for i := 0; i < 28; i++ {
		ips = append(ips, 0x400000+uint64(i)*0x11)
	}
	ips = append(ips, 0x400000+0x100, 0x400000+0x11+0x300) // tag aliases
	cursor := make(map[uint64]uint64, len(ips))
	trace := make([]oracleAccess, n)
	for i := range trace {
		ip := ips[rng.Intn(len(ips))]
		cur, ok := cursor[ip]
		switch {
		case !ok || rng.Intn(10) == 0:
			// (Re)seed the walk somewhere random, occasionally near a frame
			// edge so strides cross pages.
			cur = uint64(rng.Intn(1<<24))*8 + uint64(rng.Intn(oracleFrameSize))
			if rng.Intn(3) == 0 {
				cur = (cur &^ (oracleFrameSize - 1)) + oracleFrameSize - uint64(rng.Intn(256))
			}
		case rng.Intn(6) == 0:
			// Break the stride with a random jump, sometimes beyond the
			// 13-bit field to exercise truncation.
			cur = uint64(int64(cur) + int64(rng.Intn(16384)-8192))
		default:
			// Continue a stride walk; strides cluster under 2 KiB with some
			// negatives.
			stride := int64(rng.Intn(512)*8 - 1024)
			cur = uint64(int64(cur) + stride)
		}
		cursor[ip] = cur
		trace[i] = oracleAccess{IP: ip, Addr: cur, TLBMiss: rng.Intn(12) == 0}
	}
	return trace
}

// shrinkTrace minimises a failing trace with delta debugging (chunk removal
// down to single elements), keeping any failure — not necessarily the
// original divergence — so the result is a minimal counterexample.
func shrinkTrace(trace []oracleAccess) []oracleAccess {
	fails := func(t []oracleAccess) bool {
		i, _ := runTrace(t)
		return i >= 0
	}
	cur := trace
	for chunk := len(cur) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start < len(cur); {
			cand := make([]oracleAccess, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand = append(cand, cur[end:]...)
			if fails(cand) {
				cur = cand
				removedAny = true
			} else {
				start += chunk
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return cur
}

const counterexampleDir = "testdata/ipstride_counterexamples"

// TestIPStrideMatchesAlgorithm1Oracle is the property test: randomized
// streams across many seeds, with failures shrunk and persisted.
func TestIPStrideMatchesAlgorithm1Oracle(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(1800)
		trace := genTrace(rng, n)
		step, desc := runTrace(trace)
		if step < 0 {
			continue
		}
		min := shrinkTrace(trace)
		minStep, minDesc := runTrace(min)
		path := saveCounterexample(t, min, seed)
		t.Fatalf("seed %d: impl diverges from Algorithm 1 oracle at step %d (%s); shrunk to %d accesses diverging at step %d (%s), saved to %s",
			seed, step, desc, len(min), minStep, minDesc, path)
	}
}

func saveCounterexample(t *testing.T, trace []oracleAccess, seed int64) string {
	t.Helper()
	if err := os.MkdirAll(counterexampleDir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", counterexampleDir, err)
		return "(unsaved)"
	}
	path := filepath.Join(counterexampleDir, fmt.Sprintf("seed%d.json", seed))
	data, err := json.MarshalIndent(trace, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		t.Logf("cannot save counterexample: %v", err)
		return "(unsaved)"
	}
	return path
}

// TestIPStrideCounterexampleRegressions replays every stored (previously
// shrunk) counterexample, so a fixed divergence stays fixed.
func TestIPStrideCounterexampleRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(counterexampleDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no stored counterexamples")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var trace []oracleAccess
			if err := json.Unmarshal(data, &trace); err != nil {
				t.Fatal(err)
			}
			if step, desc := runTrace(trace); step >= 0 {
				t.Fatalf("stored counterexample still diverges at step %d: %s", step, desc)
			}
		})
	}
}

// TestOracleSelfCheck pins the oracle itself on the paper's canonical
// training sequence (Figure 7): three loads at a constant stride train the
// entry to the threshold and the third fires current+stride; a fourth load
// at the same stride keeps firing.
func TestOracleSelfCheck(t *testing.T) {
	var o oracle
	base := uint64(0x1000)
	const stride = 0x40
	if _, fired := o.step(oracleAccess{IP: 0x400080, Addr: base}); fired {
		t.Fatal("fired on allocation")
	}
	if _, fired := o.step(oracleAccess{IP: 0x400080, Addr: base + stride}); fired {
		t.Fatal("fired at confidence 1")
	}
	target, fired := o.step(oracleAccess{IP: 0x400080, Addr: base + 2*stride})
	if !fired || target != base+3*stride {
		t.Fatalf("third access: fired=%v target=%#x, want %#x", fired, target, base+3*stride)
	}
	target, fired = o.step(oracleAccess{IP: 0x400080, Addr: base + 3*stride})
	if !fired || target != base+4*stride {
		t.Fatalf("fourth access: fired=%v target=%#x, want %#x", fired, target, base+4*stride)
	}
}
