package prefetcher

import "afterimage/internal/cache"

// Fork support: deep-copy the prefetcher suite for Machine.Fork. Every
// copy routes through the same representations Snapshot/Restore use, so a
// fork is provably state-equivalent to a restore — including deliberately
// corrupted state, which must survive for the auditor to flag.

// Fork returns an independent deep copy of the IP-stride prefetcher. The
// telemetry hub is NOT carried over (emits would land in the parent's
// trace); the forked machine attaches its own hub via SetTelemetry.
func (p *IPStride) Fork() *IPStride {
	f := &IPStride{
		cfg:      p.cfg,
		entries:  append([]Entry(nil), p.entries...),
		policy:   cache.NewPolicy(p.cfg.Policy, p.cfg.Entries, 1),
		mask:     p.mask,
		NextPage: p.NextPage,
		stats:    p.stats,
	}
	f.policy.Load(p.policy.Save())
	f.lastIssue = p.lastIssue
	return f
}

// Fork returns an independent deep copy of the suite with a fresh scratch
// buffer sized to the parent's capacity, so the fork's OnLoad path is
// allocation-free from the first call just like the warmed parent's.
func (s *Suite) Fork() *Suite {
	dcu, dpl := *s.DCU, *s.DPL
	streamer := *s.Streamer
	streamer.table = append([]streamEntry(nil), s.Streamer.table...)
	return &Suite{
		IPStride: s.IPStride.Fork(),
		DCU:      &dcu,
		DPL:      &dpl,
		Streamer: &streamer,
		scratch:  make([]Request, 0, cap(s.scratch)),
	}
}
