package prefetcher

import (
	"afterimage/internal/cache"
	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// DCU is the data-cache-unit next-line prefetcher (§3.2): when it detects an
// ascending streaming access (two loads touching consecutive cache lines in
// a page), it prefetches the single next line. The artifact's Fisher–Yates
// shuffled reload defeats exactly this trigger condition.
type DCU struct {
	Enabled  bool
	lastLine uint64
	seen     bool
	stats    uint64
}

// OnLoad observes one demand load and returns at most one next-line request.
func (d *DCU) OnLoad(a Access) []Request { return d.AppendOnLoad(a, nil) }

// AppendOnLoad is OnLoad in append style (see Suite.OnLoad).
func (d *DCU) AppendOnLoad(a Access, reqs []Request) []Request {
	if !d.Enabled {
		return reqs
	}
	line := a.PA.Line()
	trigger := d.seen && line == d.lastLine+1
	d.lastLine, d.seen = line, true
	if !trigger {
		return reqs
	}
	target := mem.PAddr((line + 1) * mem.LineSize)
	if !samePage(a.PA, target) {
		return reqs
	}
	d.stats++
	return append(reqs, Request{Target: target, Source: "dcu"})
}

// Issued reports how many prefetches the DCU has emitted.
func (d *DCU) Issued() uint64 { return d.stats }

// Reset clears the stream-detection state (a serialising fence stops the
// detector, per the Intel manual note quoted in appendix A.6).
func (d *DCU) Reset() { d.seen = false }

// DPL is the data-prefetch-logic "adjacent line" prefetcher (§3.2): memory is
// viewed as 128-byte aligned pairs of lines; a demand miss fetches the pair
// line, but — like the hardware, which throttles on non-streaming patterns —
// only when the previous miss landed in the same or an adjacent 128-byte
// block. An isolated random miss (a shuffled, fenced reload) never triggers
// it.
type DPL struct {
	Enabled  bool
	lastMiss uint64
	seen     bool
	stats    uint64
}

// OnLoad emits the pair line on a streaming demand miss (any level beyond L1).
func (d *DPL) OnLoad(a Access) []Request { return d.AppendOnLoad(a, nil) }

// AppendOnLoad is OnLoad in append style (see Suite.OnLoad).
func (d *DPL) AppendOnLoad(a Access, reqs []Request) []Request {
	if !d.Enabled || a.Level == cache.LevelL1 {
		return reqs
	}
	line := a.PA.Line()
	block := line >> 1
	trigger := d.seen && diffAbs(block, d.lastMiss) <= 1
	d.lastMiss, d.seen = block, true
	if !trigger {
		return reqs
	}
	pair := line ^ 1 // buddy within the 128-byte block
	target := mem.PAddr(pair * mem.LineSize)
	if !samePage(a.PA, target) {
		return reqs
	}
	d.stats++
	return append(reqs, Request{Target: target, Source: "dpl"})
}

// Reset clears the miss-stream state.
func (d *DPL) Reset() { d.seen = false }

func diffAbs(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Issued reports how many prefetches the DPL has emitted.
func (d *DPL) Issued() uint64 { return d.stats }

// Streamer tracks per-page access streams and prefetches a few lines ahead
// in the detected direction (§3.2). It keeps a small table of recently
// touched pages with the last line and a direction estimate.
type Streamer struct {
	Enabled bool
	Degree  int // lines prefetched per trigger (2 is a reasonable default)
	table   []streamEntry
	stats   uint64
}

type streamEntry struct {
	frame    uint64
	lastLine uint64
	dir      int // +1 ascending, -1 descending, 0 unknown
	valid    bool
}

const streamerEntries = 16

// NewStreamer builds a streamer with the given prefetch degree.
func NewStreamer(degree int) *Streamer {
	if degree <= 0 {
		degree = 2
	}
	return &Streamer{Degree: degree, table: make([]streamEntry, streamerEntries)}
}

// OnLoad observes one load; consecutive same-direction accesses within a
// page trigger Degree prefetches ahead.
func (s *Streamer) OnLoad(a Access) []Request { return s.AppendOnLoad(a, nil) }

// AppendOnLoad is OnLoad in append style (see Suite.OnLoad).
func (s *Streamer) AppendOnLoad(a Access, reqs []Request) []Request {
	if !s.Enabled {
		return reqs
	}
	frame := a.PA.Frame()
	line := a.PA.Line()
	e := s.entryFor(frame)
	if !e.valid || e.frame != frame {
		*e = streamEntry{frame: frame, lastLine: line, valid: true}
		return reqs
	}
	var dir int
	switch {
	case line > e.lastLine:
		dir = 1
	case line < e.lastLine:
		dir = -1
	default:
		return reqs
	}
	// A stream means same-direction, near-sequential progress: the hardware
	// does not chase large or erratic jumps (which is also why the attacks
	// pick strides beyond four lines, §7.1).
	near := diffAbs(line, e.lastLine) <= 4
	trigger := e.dir == dir && near
	e.dir = dir
	e.lastLine = line
	if !trigger {
		return reqs
	}
	for i := 1; i <= s.Degree; i++ {
		t := int64(line) + int64(dir*i)
		if t < 0 {
			break
		}
		target := mem.PAddr(uint64(t) * mem.LineSize)
		if !samePage(a.PA, target) {
			break
		}
		s.stats++
		reqs = append(reqs, Request{Target: target, Source: "streamer"})
	}
	return reqs
}

func (s *Streamer) entryFor(frame uint64) *streamEntry {
	// Direct-mapped small table; collisions simply restart detection.
	return &s.table[frame%streamerEntries]
}

// Reset clears every stream detector.
func (s *Streamer) Reset() {
	for i := range s.table {
		s.table[i] = streamEntry{}
	}
}

// Issued reports how many line prefetches the streamer has emitted.
func (s *Streamer) Issued() uint64 { return s.stats }

// Suite bundles the four hardware prefetchers of one logical core in the
// order the paper lists them, sharing a single OnLoad feed.
type Suite struct {
	IPStride *IPStride
	DCU      *DCU
	DPL      *DPL
	Streamer *Streamer

	// scratch is the reusable request buffer behind OnLoad: at most a
	// handful of requests per access, so after the first few calls the whole
	// suite runs allocation-free.
	scratch []Request
}

// NewSuite builds a suite with the default IP-stride configuration. The
// noise prefetchers start disabled; machine configs enable them.
func NewSuite() *Suite {
	return &Suite{
		IPStride: NewIPStride(DefaultIPStrideConfig()),
		DCU:      &DCU{},
		DPL:      &DPL{},
		Streamer: NewStreamer(2),
	}
}

// OnLoad feeds the access to every enabled prefetcher and concatenates the
// requests. The returned slice aliases the suite's internal scratch buffer
// and is only valid until the next OnLoad call; every caller consumes the
// requests immediately, and the reuse is what keeps the steady-state load
// path at zero allocations.
func (s *Suite) OnLoad(a Access) []Request {
	reqs := s.scratch[:0]
	reqs = s.IPStride.AppendOnLoad(a, reqs)
	reqs = s.DCU.AppendOnLoad(a, reqs)
	reqs = s.DPL.AppendOnLoad(a, reqs)
	reqs = s.Streamer.AppendOnLoad(a, reqs)
	s.scratch = reqs
	return reqs
}

// SetTelemetry attaches the machine's hub to the prefetchers that trace
// (currently the IP-stride table; the noise prefetchers only keep counters).
func (s *Suite) SetTelemetry(h *telemetry.Hub) {
	s.IPStride.SetTelemetry(h)
}

// RegisterMetrics exposes every prefetcher's counters in reg under the
// prefetcher.* namespace: prefetcher.ipstride.* plus the issue counts of the
// three noise prefetchers.
func (s *Suite) RegisterMetrics(reg *telemetry.Registry) {
	s.IPStride.RegisterMetrics(reg, "prefetcher.ipstride")
	reg.RegisterFunc("prefetcher.dcu.issued", s.DCU.Issued)
	reg.RegisterFunc("prefetcher.dpl.issued", s.DPL.Issued)
	reg.RegisterFunc("prefetcher.streamer.issued", s.Streamer.Issued)
}

// FenceReset models a serialising fence: the stream-based detectors (DCU,
// DPL, streamer) lose their in-flight state; the IP-stride history table is
// unaffected (it is not a stream detector, and the attack's trained entries
// demonstrably survive fences on real hardware).
func (s *Suite) FenceReset() {
	s.DCU.Reset()
	s.DPL.Reset()
	s.Streamer.Reset()
}
