package prefetcher

import (
	"testing"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
)

func missAcc(ip, pa uint64) Access {
	return Access{IP: ip, PA: mem.PAddr(pa), PID: 1, TLBHit: true, Level: cache.LevelDRAM}
}

func TestDCUTriggersOnConsecutiveLines(t *testing.T) {
	d := &DCU{Enabled: true}
	if got := d.OnLoad(missAcc(1, 0x1000)); got != nil {
		t.Fatal("first access triggered")
	}
	got := d.OnLoad(missAcc(1, 0x1040)) // next line
	if len(got) != 1 || got[0].Target != 0x1080 {
		t.Fatalf("next-line prefetch wrong: %v", got)
	}
	if d.Issued() != 1 {
		t.Fatalf("Issued = %d", d.Issued())
	}
}

func TestDCUIgnoresJumps(t *testing.T) {
	d := &DCU{Enabled: true}
	d.OnLoad(missAcc(1, 0x1000))
	if got := d.OnLoad(missAcc(1, 0x1400)); got != nil {
		t.Fatalf("jump triggered DCU: %v", got)
	}
}

func TestDCUResetBreaksStream(t *testing.T) {
	d := &DCU{Enabled: true}
	d.OnLoad(missAcc(1, 0x1000))
	d.Reset() // mfence
	if got := d.OnLoad(missAcc(1, 0x1040)); got != nil {
		t.Fatalf("post-fence consecutive access triggered: %v", got)
	}
}

func TestDCUDisabled(t *testing.T) {
	d := &DCU{}
	d.OnLoad(missAcc(1, 0x1000))
	if got := d.OnLoad(missAcc(1, 0x1040)); got != nil {
		t.Fatal("disabled DCU fired")
	}
}

func TestDCURespectsPageBoundary(t *testing.T) {
	d := &DCU{Enabled: true}
	d.OnLoad(missAcc(1, 0xF80)) // second-to-last line of page 0
	if got := d.OnLoad(missAcc(1, 0xFC0)); got != nil {
		t.Fatalf("DCU prefetched across the page: %v", got)
	}
}

func TestDPLTriggersOnMissStream(t *testing.T) {
	d := &DPL{Enabled: true}
	if got := d.OnLoad(missAcc(1, 0x2000)); got != nil {
		t.Fatal("isolated miss triggered DPL")
	}
	got := d.OnLoad(missAcc(1, 0x2080))           // adjacent 128-byte block
	if len(got) != 1 || got[0].Target != 0x20C0 { // buddy of line 0x2080
		t.Fatalf("pair prefetch wrong: %v", got)
	}
	if d.Issued() != 1 {
		t.Fatalf("Issued = %d", d.Issued())
	}
}

func TestDPLIgnoresL1HitsAndRandomMisses(t *testing.T) {
	d := &DPL{Enabled: true}
	hit := missAcc(1, 0x2000)
	hit.Level = cache.LevelL1
	if got := d.OnLoad(hit); got != nil {
		t.Fatal("L1 hit drove DPL")
	}
	d.OnLoad(missAcc(1, 0x2000))
	if got := d.OnLoad(missAcc(1, 0x5000)); got != nil {
		t.Fatal("distant miss triggered DPL")
	}
}

func TestDPLResetBreaksStream(t *testing.T) {
	d := &DPL{Enabled: true}
	d.OnLoad(missAcc(1, 0x2000))
	d.Reset()
	if got := d.OnLoad(missAcc(1, 0x2080)); got != nil {
		t.Fatal("post-fence adjacent miss triggered")
	}
}

func TestStreamerTriggersOnNearSequential(t *testing.T) {
	s := NewStreamer(2)
	s.Enabled = true
	s.OnLoad(missAcc(1, 0x3000))
	s.OnLoad(missAcc(1, 0x3040)) // establishes ascending direction
	got := s.OnLoad(missAcc(1, 0x3080))
	if len(got) != 2 || got[0].Target != 0x30C0 || got[1].Target != 0x3100 {
		t.Fatalf("streamer prefetches wrong: %v", got)
	}
	if s.Issued() != 2 {
		t.Fatalf("Issued = %d", s.Issued())
	}
}

func TestStreamerIgnoresLargeStrides(t *testing.T) {
	s := NewStreamer(2)
	s.Enabled = true
	// Ascending but 7 lines apart — the IP-stride prefetcher's territory.
	s.OnLoad(missAcc(1, 0x3000))
	s.OnLoad(missAcc(1, 0x3000+7*64))
	if got := s.OnLoad(missAcc(1, 0x3000+14*64)); got != nil {
		t.Fatalf("streamer chased a 7-line stride: %v", got)
	}
}

func TestStreamerDescending(t *testing.T) {
	s := NewStreamer(2)
	s.Enabled = true
	s.OnLoad(missAcc(1, 0x3100))
	s.OnLoad(missAcc(1, 0x30C0))
	got := s.OnLoad(missAcc(1, 0x3080))
	if len(got) != 2 || got[0].Target != 0x3040 {
		t.Fatalf("descending stream prefetches wrong: %v", got)
	}
}

func TestStreamerDirectionFlipSuppresses(t *testing.T) {
	s := NewStreamer(2)
	s.Enabled = true
	s.OnLoad(missAcc(1, 0x3000))
	s.OnLoad(missAcc(1, 0x3040))
	if got := s.OnLoad(missAcc(1, 0x3000)); got != nil {
		t.Fatal("direction flip triggered")
	}
}

func TestStreamerPerPageTracking(t *testing.T) {
	s := NewStreamer(2)
	s.Enabled = true
	// Interleave two pages: each keeps its own detector (frames 3 and 4
	// map to different table slots).
	s.OnLoad(missAcc(1, 3*4096))
	s.OnLoad(missAcc(1, 4*4096))
	s.OnLoad(missAcc(1, 3*4096+64))
	s.OnLoad(missAcc(1, 4*4096+64))
	gotA := s.OnLoad(missAcc(1, 3*4096+128))
	if len(gotA) == 0 {
		t.Fatal("page A stream lost to interleaving")
	}
}

func TestStreamerReset(t *testing.T) {
	s := NewStreamer(2)
	s.Enabled = true
	s.OnLoad(missAcc(1, 0x3000))
	s.OnLoad(missAcc(1, 0x3040))
	s.Reset()
	if got := s.OnLoad(missAcc(1, 0x3080)); got != nil {
		t.Fatal("post-reset access triggered")
	}
}

func TestSuiteCombinesAndFenceResets(t *testing.T) {
	suite := NewSuite()
	suite.DCU.Enabled = true
	suite.DPL.Enabled = true
	suite.Streamer.Enabled = true
	suite.OnLoad(missAcc(0x10, 0x4000))
	reqs := suite.OnLoad(missAcc(0x10, 0x4040))
	if len(reqs) == 0 {
		t.Fatal("suite produced nothing on a consecutive access")
	}
	sources := map[string]bool{}
	for _, r := range reqs {
		sources[r.Source] = true
	}
	if !sources["dcu"] && !sources["dpl"] {
		t.Fatalf("expected stream-prefetcher requests, got %v", reqs)
	}
	suite.FenceReset()
	if got := suite.OnLoad(missAcc(0x20, 0x4080)); len(got) != 0 {
		t.Fatalf("post-fence access still triggered: %v", got)
	}
}

func TestStreamerDefaultDegree(t *testing.T) {
	s := NewStreamer(0)
	if s.Degree != 2 {
		t.Fatalf("default degree = %d", s.Degree)
	}
}
