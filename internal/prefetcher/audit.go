package prefetcher

import (
	"fmt"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
	"afterimage/internal/statehash"
)

// Audit deep-checks the history table against the structural rules of
// Algorithm 1: confidence within the saturating-counter range, |stride|
// strictly inside the 13-bit field, tags within the IndexBits mask, no two
// valid entries sharing a lookup key, the replacement policy internally
// consistent, and the most recent issued prefetch contained in its trigger's
// physical frame (§4.3). It returns every broken rule.
func (p *IPStride) Audit() []error {
	var errs []error
	for i := range p.entries {
		e := &p.entries[i]
		if !e.Valid {
			continue
		}
		if e.Confidence < 0 || e.Confidence > p.cfg.MaxConfidence {
			errs = append(errs, fmt.Errorf("ipstride: slot %d confidence %d outside [0,%d]", i, e.Confidence, p.cfg.MaxConfidence))
		}
		// truncStride wraps into the two's-complement field [-max, max):
		// exactly -max is representable (the fork-isolation property test
		// caught this edge), only values beyond the field are corruption.
		if e.Stride < -p.cfg.MaxStrideBytes || e.Stride >= p.cfg.MaxStrideBytes {
			errs = append(errs, fmt.Errorf("ipstride: slot %d stride %d outside [-%d,%d)", i, e.Stride, p.cfg.MaxStrideBytes, p.cfg.MaxStrideBytes))
		}
		if e.Tag&^p.mask != 0 {
			errs = append(errs, fmt.Errorf("ipstride: slot %d tag %#x exceeds %d index bits", i, e.Tag, p.cfg.IndexBits))
		}
		for j := i + 1; j < len(p.entries); j++ {
			o := &p.entries[j]
			if !o.Valid || o.Tag != e.Tag {
				continue
			}
			if p.cfg.FullIPTag && o.FullIP != e.FullIP {
				continue
			}
			if p.cfg.PIDTag && o.PID != e.PID {
				continue
			}
			errs = append(errs, fmt.Errorf("ipstride: slots %d and %d share lookup key (tag %#x)", i, j, e.Tag))
		}
	}
	if err := p.policy.Audit(); err != nil {
		errs = append(errs, fmt.Errorf("ipstride: policy: %w", err))
	}
	if p.lastIssue.valid && p.lastIssue.base.Frame() != p.lastIssue.target.Frame() {
		errs = append(errs, fmt.Errorf("ipstride: issued prefetch %#x crosses frame of trigger %#x", uint64(p.lastIssue.target), uint64(p.lastIssue.base)))
	}
	return errs
}

// CorruptStride overwrites slot i's stride with an out-of-range value, as a
// bit flip in the stride field's sign-extension logic would. An invalid slot
// is fabricated first so the corruption always lands.
func (p *IPStride) CorruptStride(i int, stride int64) {
	i = p.forceValid(i)
	p.entries[i].Stride = stride
}

// CorruptConfidence overwrites slot i's confidence counter with a value the
// 2-bit field cannot hold.
func (p *IPStride) CorruptConfidence(i int, conf int) {
	i = p.forceValid(i)
	p.entries[i].Confidence = conf
}

// CorruptPLRU forces the history table's Bit-PLRU into the forbidden
// all-ones state. It reports false when the table uses another policy.
func (p *IPStride) CorruptPLRU() bool { return cache.CorruptBitPLRU(p.policy) }

// CorruptCrossFrame poisons the issued-prefetch record with a target in the
// frame after its trigger — the §4.3 containment violation.
func (p *IPStride) CorruptCrossFrame() {
	base := mem.PAddr(mem.PageSize * 40)
	p.lastIssue.base = base
	p.lastIssue.target = base + mem.PAddr(mem.PageSize)
	p.lastIssue.valid = true
}

// forceValid ensures slot i (mod table size) holds a valid entry, fabricating
// a plausible one when necessary, and returns the slot index.
func (p *IPStride) forceValid(i int) int {
	if len(p.entries) == 0 {
		panic("ipstride: empty table")
	}
	i %= len(p.entries)
	if i < 0 {
		i += len(p.entries)
	}
	if !p.entries[i].Valid {
		ip := uint64(0x400000 + i)
		p.entries[i] = Entry{Tag: p.tagOf(ip), FullIP: ip, LastAddr: mem.PAddr(mem.PageSize * 32), Valid: true}
	}
	return i
}

// IPStrideSnapshot captures the prefetcher's complete state: table, policy,
// issue record and counters.
type IPStrideSnapshot struct {
	Entries   []Entry
	Policy    []uint64
	LastBase  mem.PAddr
	LastTgt   mem.PAddr
	LastValid bool
	Stats     Stats
}

// Snapshot captures the IP-stride prefetcher's state.
func (p *IPStride) Snapshot() IPStrideSnapshot {
	return IPStrideSnapshot{
		Entries:   append([]Entry(nil), p.entries...),
		Policy:    p.policy.Save(),
		LastBase:  p.lastIssue.base,
		LastTgt:   p.lastIssue.target,
		LastValid: p.lastIssue.valid,
		Stats:     p.stats,
	}
}

// Restore adopts a snapshot from a prefetcher with the same table size.
func (p *IPStride) Restore(snap IPStrideSnapshot) error {
	if len(snap.Entries) != len(p.entries) {
		return fmt.Errorf("ipstride: snapshot has %d entries, table has %d", len(snap.Entries), len(p.entries))
	}
	copy(p.entries, snap.Entries)
	p.policy.Load(snap.Policy)
	p.lastIssue.base, p.lastIssue.target, p.lastIssue.valid = snap.LastBase, snap.LastTgt, snap.LastValid
	p.stats = snap.Stats
	return nil
}

// StateHash folds the prefetcher's complete state into a stable digest.
func (p *IPStride) StateHash() uint64 {
	h := statehash.New()
	for i := range p.entries {
		e := &p.entries[i]
		h.Bool(e.Valid)
		if e.Valid {
			h.U64(e.Tag).U64(e.FullIP).Int(e.PID).U64(uint64(e.LastAddr)).I64(e.Stride).Int(e.Confidence)
		}
	}
	h.U64s(p.policy.Save())
	h.Bool(p.lastIssue.valid).U64(uint64(p.lastIssue.base)).U64(uint64(p.lastIssue.target))
	h.U64(p.stats.Lookups).U64(p.stats.Trains).U64(p.stats.Allocs).U64(p.stats.Evictions)
	h.U64(p.stats.Prefetches).U64(p.stats.PageDrops).U64(p.stats.Relearns).U64(p.stats.TLBSkips).U64(p.stats.Flushes)
	return h.Sum()
}

// DCUSnapshot, DPLSnapshot and StreamerSnapshot capture the noise
// prefetchers' small detector states.
type DCUSnapshot struct {
	Enabled  bool
	LastLine uint64
	Seen     bool
	Stats    uint64
}

type DPLSnapshot struct {
	Enabled  bool
	LastMiss uint64
	Seen     bool
	Stats    uint64
}

type StreamerSnapshot struct {
	Enabled bool
	Degree  int
	Table   []streamEntry
	Stats   uint64
}

// SuiteSnapshot captures all four prefetchers of a core.
type SuiteSnapshot struct {
	IPStride IPStrideSnapshot
	DCU      DCUSnapshot
	DPL      DPLSnapshot
	Streamer StreamerSnapshot
}

// Snapshot captures the full suite state.
func (s *Suite) Snapshot() SuiteSnapshot {
	return SuiteSnapshot{
		IPStride: s.IPStride.Snapshot(),
		DCU:      DCUSnapshot{Enabled: s.DCU.Enabled, LastLine: s.DCU.lastLine, Seen: s.DCU.seen, Stats: s.DCU.stats},
		DPL:      DPLSnapshot{Enabled: s.DPL.Enabled, LastMiss: s.DPL.lastMiss, Seen: s.DPL.seen, Stats: s.DPL.stats},
		Streamer: StreamerSnapshot{
			Enabled: s.Streamer.Enabled,
			Degree:  s.Streamer.Degree,
			Table:   append([]streamEntry(nil), s.Streamer.table...),
			Stats:   s.Streamer.stats,
		},
	}
}

// Restore adopts a suite snapshot.
func (s *Suite) Restore(snap SuiteSnapshot) error {
	if err := s.IPStride.Restore(snap.IPStride); err != nil {
		return err
	}
	s.DCU.Enabled, s.DCU.lastLine, s.DCU.seen, s.DCU.stats = snap.DCU.Enabled, snap.DCU.LastLine, snap.DCU.Seen, snap.DCU.Stats
	s.DPL.Enabled, s.DPL.lastMiss, s.DPL.seen, s.DPL.stats = snap.DPL.Enabled, snap.DPL.LastMiss, snap.DPL.Seen, snap.DPL.Stats
	if len(snap.Streamer.Table) != len(s.Streamer.table) {
		return fmt.Errorf("streamer: snapshot has %d entries, table has %d", len(snap.Streamer.Table), len(s.Streamer.table))
	}
	s.Streamer.Enabled, s.Streamer.Degree, s.Streamer.stats = snap.Streamer.Enabled, snap.Streamer.Degree, snap.Streamer.Stats
	copy(s.Streamer.table, snap.Streamer.Table)
	return nil
}

// StateHash folds the full suite state into one digest.
func (s *Suite) StateHash() uint64 {
	h := statehash.New()
	h.Combine(s.IPStride.StateHash())
	h.Bool(s.DCU.Enabled).U64(s.DCU.lastLine).Bool(s.DCU.seen).U64(s.DCU.stats)
	h.Bool(s.DPL.Enabled).U64(s.DPL.lastMiss).Bool(s.DPL.seen).U64(s.DPL.stats)
	h.Bool(s.Streamer.Enabled).Int(s.Streamer.Degree).U64(s.Streamer.stats)
	for _, e := range s.Streamer.table {
		h.Bool(e.valid)
		if e.valid {
			h.U64(e.frame).U64(e.lastLine).Int(e.dir)
		}
	}
	return h.Sum()
}

// Audit deep-checks the suite (only the IP-stride table has structural
// invariants; the noise detectors hold arbitrary stream state).
func (s *Suite) Audit() []error { return s.IPStride.Audit() }
