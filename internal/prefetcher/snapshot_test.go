package prefetcher

import "testing"

// trainSome walks three distinct IPs far enough to allocate, confirm and
// fire their entries, leaving a populated table, live Bit-PLRU state and a
// recorded last issue.
func trainSome(p *IPStride) {
	feed(p, 0x400100, 0x10000, 0x10000+7*line, 0x10000+14*line, 0x10000+21*line)
	feed(p, 0x400200, 0x20000, 0x20000+3*line, 0x20000+6*line)
	feed(p, 0x400300, 0x30000, 0x30000+5*line)
}

func TestIPStrideSnapshotRoundTrip(t *testing.T) {
	p := newDefault()
	trainSome(p)
	if errs := p.Audit(); len(errs) != 0 {
		t.Fatalf("trained table fails audit: %v", errs)
	}
	snap := p.Snapshot()
	h := p.StateHash()

	// Diverge, then restore: the hash must return to the snapshot's value.
	feed(p, 0x400400, 0x40000, 0x40000+9*line, 0x40000+18*line)
	p.Flush()
	if p.StateHash() == h {
		t.Fatal("state hash did not change after mutation")
	}
	if err := p.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := p.StateHash(); got != h {
		t.Fatalf("restored hash %#x, want %#x", got, h)
	}
	if errs := p.Audit(); len(errs) != 0 {
		t.Fatalf("restored table fails audit: %v", errs)
	}

	// The restored table must behave identically, not just hash equally:
	// the same next access issues the same requests on both copies.
	q := newDefault()
	trainSome(q)
	want := q.OnLoad(acc(0x400100, 0x10000+28*line))
	got := p.OnLoad(acc(0x400100, 0x10000+28*line))
	if len(want) != len(got) {
		t.Fatalf("restored table diverges: %d reqs vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored table req %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestIPStrideRestoreRejectsGeometryMismatch(t *testing.T) {
	p := newDefault()
	snap := p.Snapshot()
	snap.Entries = snap.Entries[:len(snap.Entries)-1]
	if err := p.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot with the wrong entry count")
	}
}

func TestSuiteSnapshotRoundTrip(t *testing.T) {
	s := NewSuite()
	s.DCU.Enabled, s.DPL.Enabled, s.Streamer.Enabled = true, true, true
	for i := uint64(0); i < 24; i++ {
		s.OnLoad(acc(0x400500+i%3, 0x50000+i*line))
	}
	snap := s.Snapshot()
	h := s.StateHash()
	for i := uint64(0); i < 8; i++ {
		s.OnLoad(acc(0x400600, 0x60000+i*2*line))
	}
	if s.StateHash() == h {
		t.Fatal("suite hash did not change after mutation")
	}
	if err := s.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := s.StateHash(); got != h {
		t.Fatalf("restored suite hash %#x, want %#x", got, h)
	}
}

func TestIPStrideAuditCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *IPStride)
	}{
		{"stride-overflow", func(p *IPStride) { p.CorruptStride(0, p.cfg.MaxStrideBytes+64) }},
		{"confidence-out-of-range", func(p *IPStride) { p.CorruptConfidence(1, p.cfg.MaxConfidence+3) }},
		{"plru-all-ones", func(p *IPStride) {
			if !p.CorruptPLRU() {
				t.Skip("policy not Bit-PLRU")
			}
		}},
		{"cross-frame-issue", func(p *IPStride) { p.CorruptCrossFrame() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newDefault()
			trainSome(p)
			if errs := p.Audit(); len(errs) != 0 {
				t.Fatalf("pre-corruption audit dirty: %v", errs)
			}
			tc.corrupt(p)
			if errs := p.Audit(); len(errs) == 0 {
				t.Fatal("audit missed the corruption")
			}
		})
	}
}
