// Package prefetcher implements the hardware prefetchers of a Haswell /
// Coffee Lake–class Intel core as reverse-engineered by the AfterImage paper:
// the IP-stride prefetcher (the attack surface, §4), and the DCU next-line,
// DPL adjacent-line and streamer prefetchers (noise sources, §3.2/§7.1),
// plus the Haswell next-page assist observed in §4.3.
//
// The IP-stride prefetcher follows the paper's Algorithm 1 exactly:
//
//   - 24 fully-associative entries replaced with Bit-PLRU (§4.4, §4.5),
//   - indexed by the least-significant 8 bits of the load IP, with no
//     further tag (§4.1),
//   - a 2-bit confidence counter with prefetch threshold 2 (§4.2),
//   - a 13-bit signed byte stride, |stride| < 2 KiB (§4.2),
//   - once confidence ≥ 2, every access fires a prefetch of
//     current+stride before the stride check — the "key component" that
//     lets a victim trigger an attacker-trained entry (§4.2, Figure 7),
//   - physical page-frame boundary checking with a next-page exception and
//     a TLB first-touch rule (§4.3).
package prefetcher

import (
	"fmt"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// Access describes one demand load as seen by the prefetchers.
type Access struct {
	IP     uint64    // instruction pointer of the load
	PA     mem.PAddr // physical address requested
	PID    int       // process/context ID (only used by tagging mitigations)
	TLBHit bool      // whether the page translation hit the dTLB
	Level  cache.Level
}

// Request is one prefetch the hardware wants to issue.
type Request struct {
	Target mem.PAddr
	Source string // originating prefetcher, e.g. "ip-stride"
}

// IPStrideConfig parameterises the IP-stride prefetcher. The zero value is
// not valid; use DefaultIPStrideConfig.
type IPStrideConfig struct {
	Entries          int   // history table size (24 on CFL/HSW, §4.4)
	IndexBits        int   // low IP bits forming the tag (8, §4.1)
	MaxConfidence    int   // saturating counter ceiling (3 = 2 bits, §4.2)
	TriggerThreshold int   // confidence needed to prefetch (2, §4.2)
	MaxStrideBytes   int64 // |stride| strictly below this (2048, §4.2)
	Policy           cache.PolicyKind

	// Mitigation knobs (§8.2): FullIPTag verifies the entire IP; PIDTag adds
	// a process-ID tag. Both break cross-context sharing when enabled.
	FullIPTag bool
	PIDTag    bool
}

// DefaultIPStrideConfig is the Coffee Lake / Haswell configuration the paper
// reverse-engineered.
func DefaultIPStrideConfig() IPStrideConfig {
	return IPStrideConfig{
		Entries:          24,
		IndexBits:        8,
		MaxConfidence:    3,
		TriggerThreshold: 2,
		MaxStrideBytes:   2048,
		Policy:           cache.BitPLRU,
	}
}

// Entry is one history-table row (Figure 5: IP tag, Last Addr, Stride,
// Confidence — extended with the physical frame used for §4.3 checks).
type Entry struct {
	Tag        uint64 // low IndexBits of the IP (plus full IP / PID when tagged)
	FullIP     uint64
	PID        int
	LastAddr   mem.PAddr
	Stride     int64
	Confidence int
	Valid      bool
}

// IPStride is the IP-stride prefetcher.
type IPStride struct {
	cfg     IPStrideConfig
	entries []Entry
	policy  cache.Policy
	mask    uint64

	// NextPage enables the Haswell next-page assist: an access whose frame
	// is exactly the successor of the entry's last frame keeps the entry
	// alive and may trigger immediately (§4.3, Table 1 row 1).
	NextPage bool

	// lastIssue records the most recent prefetch decision so the auditor can
	// re-check §4.3 target containment after the fact: an issued target must
	// share its trigger's physical frame.
	lastIssue struct {
		base   mem.PAddr
		target mem.PAddr
		valid  bool
	}

	stats Stats
	tel   *telemetry.Hub // nil unless SetTelemetry; emits are trace-guarded
}

// Stats counts prefetcher activity.
type Stats struct {
	Lookups    uint64
	Trains     uint64 // updates of an existing history entry
	Allocs     uint64
	Evictions  uint64
	Prefetches uint64
	PageDrops  uint64 // prefetches dropped at a page boundary
	Relearns   uint64 // entries reset by non-sequential frame crossings
	TLBSkips   uint64 // accesses ignored due to the first-touch rule
	Flushes    uint64 // clear-ip-prefetcher invocations
}

// Validate reports whether the configuration describes a buildable
// prefetcher; NewIPStride panics on exactly the configs Validate rejects.
func (c IPStrideConfig) Validate() error {
	if c.Entries <= 0 || c.IndexBits <= 0 || c.IndexBits > 64 {
		return fmt.Errorf("prefetcher: invalid config %+v", c)
	}
	return nil
}

// NewIPStride builds the prefetcher.
func NewIPStride(cfg IPStrideConfig) *IPStride {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &IPStride{
		cfg:      cfg,
		entries:  make([]Entry, cfg.Entries),
		policy:   cache.NewPolicy(cfg.Policy, cfg.Entries, 1),
		mask:     (1 << uint(cfg.IndexBits)) - 1,
		NextPage: true,
	}
}

// Config returns the active configuration.
func (p *IPStride) Config() IPStrideConfig { return p.cfg }

// Stats returns a copy of the activity counters.
//
// Deprecated: read the same values from the machine's telemetry registry
// (prefetcher.ipstride.*, via RegisterMetrics). Kept so existing callers
// stay stable; both views sample the same counters and always agree.
func (p *IPStride) Stats() Stats { return p.stats }

// PrefetchCount returns just the issued-prefetch counter, without copying the
// whole Stats struct — the per-step accounting in hot simulation loops reads
// this twice per record.
func (p *IPStride) PrefetchCount() uint64 { return p.stats.Prefetches }

// ResetStats clears every activity counter.
func (p *IPStride) ResetStats() { p.stats = Stats{} }

// SetTelemetry attaches the machine's hub so table mutations and issued
// prefetches are traced. All emits are guarded by TraceEnabled, so a nil or
// trace-disabled hub costs two compares per guarded site.
func (p *IPStride) SetTelemetry(h *telemetry.Hub) { p.tel = h }

// RegisterMetrics exposes the activity counters in reg under prefix
// (e.g. "prefetcher.ipstride"): .lookups, .trains, .allocs, .evictions,
// .prefetches, .page_drops, .tlb_skips, .flushes. Samplers read the live
// counters, so snapshots always match Stats() exactly.
func (p *IPStride) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.RegisterFunc(prefix+".lookups", func() uint64 { return p.stats.Lookups })
	reg.RegisterFunc(prefix+".trains", func() uint64 { return p.stats.Trains })
	reg.RegisterFunc(prefix+".allocs", func() uint64 { return p.stats.Allocs })
	reg.RegisterFunc(prefix+".evictions", func() uint64 { return p.stats.Evictions })
	reg.RegisterFunc(prefix+".prefetches", func() uint64 { return p.stats.Prefetches })
	reg.RegisterFunc(prefix+".page_drops", func() uint64 { return p.stats.PageDrops })
	reg.RegisterFunc(prefix+".tlb_skips", func() uint64 { return p.stats.TLBSkips })
	reg.RegisterFunc(prefix+".flushes", func() uint64 { return p.stats.Flushes })
}

// tagOf derives the lookup tag for an access.
func (p *IPStride) tagOf(ip uint64) uint64 { return ip & p.mask }

func (p *IPStride) match(e *Entry, ip uint64, pid int) bool {
	if !e.Valid || e.Tag != p.tagOf(ip) {
		return false
	}
	if p.cfg.FullIPTag && e.FullIP != ip {
		return false
	}
	if p.cfg.PIDTag && e.PID != pid {
		return false
	}
	return true
}

// lookup finds the entry index for the access, or -1.
func (p *IPStride) lookup(ip uint64, pid int) int {
	for i := range p.entries {
		if p.match(&p.entries[i], ip, pid) {
			return i
		}
	}
	return -1
}

// Peek exposes the entry that would serve the given IP (for tests and the
// reverse-engineering harness); ok is false when none matches.
func (p *IPStride) Peek(ip uint64, pid int) (Entry, bool) {
	if i := p.lookup(ip, pid); i >= 0 {
		return p.entries[i], true
	}
	return Entry{}, false
}

// Entries returns a snapshot of the history table in physical slot order.
func (p *IPStride) Entries() []Entry { return append([]Entry(nil), p.entries...) }

// Flush clears the whole history table — the paper's proposed privileged
// clear-ip-prefetcher mitigation instruction (§8.3).
func (p *IPStride) Flush() {
	for i := range p.entries {
		p.entries[i] = Entry{}
	}
	p.stats.Flushes++
	if p.tel.TraceEnabled() {
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvPTFlush})
	}
}

// EvictSlot invalidates the history entry in physical slot i — a targeted
// single-entry eviction, as a contending context's allocations (or a
// fault-injection event) would cause. It reports whether a valid entry was
// dropped.
func (p *IPStride) EvictSlot(i int) bool {
	if i < 0 || i >= len(p.entries) || !p.entries[i].Valid {
		return false
	}
	if p.tel.TraceEnabled() {
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvPTEvict, Arg1: uint64(i), Arg2: p.entries[i].Tag})
	}
	p.entries[i] = Entry{}
	p.stats.Evictions++
	return true
}

// Invalidate drops the entry matching the access context, if any.
func (p *IPStride) Invalidate(ip uint64, pid int) bool {
	if i := p.lookup(ip, pid); i >= 0 {
		p.entries[i] = Entry{}
		return true
	}
	return false
}

// samePage reports whether two physical addresses share a 4 KiB frame.
func samePage(a, b mem.PAddr) bool { return a.Frame() == b.Frame() }

// truncStride wraps a raw distance into the signed stride field, whose
// representable range is (-max, max) with max = 2 KiB (§4.2, footnote 5).
// Hardware stores only those bits, so larger jumps alias; the accompanying
// confidence reset makes the aliased value harmless.
func truncStride(d, max int64) int64 {
	span := 2 * max
	d %= span
	if d >= max {
		d -= span
	} else if d < -max {
		d += span
	}
	return d
}

// OnLoad feeds one demand load through Algorithm 1 and returns the prefetch
// requests to issue (at most one for the IP-stride prefetcher).
//
// Two §4.3 page rules wrap the algorithm:
//
//   - First-touch rule: a TLB-missing access spends itself installing the
//     translation and does not touch the prefetcher — with one exception:
//     when the new physical frame immediately follows the entry's last
//     frame, the Haswell next-page assist keeps the entry live and can
//     trigger on that very first access (Table 1, row "1 Page"/locked).
//   - Target containment: an issued prefetch never crosses the current
//     4 KiB frame (see issue).
//
// Within Algorithm 1, a cross-frame demand access with saturated confidence
// still fires the prefetch of current+stride first (the paper's "key
// component" — this is what lets a victim in a different page, process or
// privilege domain trigger an attacker-trained entry), and then the stride
// mismatch re-learns stride and confidence, which is §4.3's "invalidate the
// entry and re-learn" as observed from software.
func (p *IPStride) OnLoad(a Access) []Request {
	return p.AppendOnLoad(a, nil)
}

// AppendOnLoad is OnLoad in append style: the whole table update — lookup,
// first-touch gate, train-or-allocate, trigger — runs as one straight-line
// function and any issued request is appended to reqs, so a caller reusing
// its buffer pays zero allocations in steady state.
func (p *IPStride) AppendOnLoad(a Access, reqs []Request) []Request {
	p.stats.Lookups++

	idx := p.lookup(a.IP, a.PID)
	if !a.TLBHit {
		assisted := false
		if idx >= 0 && p.NextPage {
			e := &p.entries[idx]
			if a.PA.Frame() == e.LastAddr.Frame()+1 && e.Confidence >= p.cfg.TriggerThreshold {
				assisted = true // next-page assist: proceed as a normal activation
			}
		}
		if !assisted {
			p.stats.TLBSkips++
			return reqs
		}
	}

	if idx < 0 {
		p.allocate(a)
		return reqs
	}
	e := &p.entries[idx]
	p.policy.Touch(idx)
	p.stats.Trains++

	distance := int64(a.PA) - int64(e.LastAddr)
	prevConf := e.Confidence

	if e.Confidence >= p.cfg.TriggerThreshold {
		// Key component (§4.2): with saturated confidence the prefetch of
		// current+stride fires unconditionally, before any stride check.
		reqs = p.issue(a.PA, e.Stride, reqs)
		if distance != e.Stride {
			e.Stride = p.learn(distance)
			e.Confidence = 1
		} else if e.Confidence < p.cfg.MaxConfidence {
			e.Confidence++
		}
	} else {
		if distance != e.Stride {
			e.Stride = p.learn(distance)
			e.Confidence = 1
		} else {
			e.Confidence++
			if e.Confidence == p.cfg.TriggerThreshold {
				reqs = p.issue(a.PA, e.Stride, reqs)
			}
		}
	}
	if e.Confidence != prevConf && p.tel.TraceEnabled() {
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvPTConfidence, Arg1: uint64(idx), Arg2: uint64(e.Confidence)})
	}
	e.LastAddr = a.PA
	return reqs
}

// learn stores a new stride, truncated to the hardware stride field.
func (p *IPStride) learn(distance int64) int64 {
	return truncStride(distance, p.cfg.MaxStrideBytes)
}

// issue emits the prefetch of base+stride unless it would cross the current
// physical page frame (§4.3) or the stride is zero.
func (p *IPStride) issue(base mem.PAddr, stride int64, reqs []Request) []Request {
	if stride == 0 {
		return reqs
	}
	target := mem.PAddr(int64(base) + stride)
	if !samePage(base, target) {
		p.stats.PageDrops++
		if p.tel.TraceEnabled() {
			p.tel.Emit(telemetry.Event{Kind: telemetry.EvPrefetchDrop, Arg1: uint64(base), Label: "ip-stride"})
		}
		return reqs
	}
	p.stats.Prefetches++
	p.lastIssue.base, p.lastIssue.target, p.lastIssue.valid = base, target, true
	if p.tel.TraceEnabled() {
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvPrefetchIssue, Arg1: uint64(target), Label: "ip-stride"})
	}
	return append(reqs, Request{Target: target, Source: "ip-stride"})
}

// allocate creates a fresh entry for the access (Algorithm 1 line 24:
// confidence 0, stride 0).
func (p *IPStride) allocate(a Access) {
	slot := -1
	for i := range p.entries {
		if !p.entries[i].Valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = p.policy.Victim()
		p.stats.Evictions++
		if p.tel.TraceEnabled() {
			p.tel.Emit(telemetry.Event{Kind: telemetry.EvPTEvict, Arg1: uint64(slot), Arg2: p.entries[slot].Tag})
		}
	}
	p.entries[slot] = Entry{
		Tag:      p.tagOf(a.IP),
		FullIP:   a.IP,
		PID:      a.PID,
		LastAddr: a.PA,
		Valid:    true,
	}
	p.policy.Insert(slot)
	p.stats.Allocs++
	if p.tel.TraceEnabled() {
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvPTInsert, Arg1: uint64(slot), Arg2: p.entries[slot].Tag})
	}
}
