package prefetcher

import (
	"testing"
	"testing/quick"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
)

const line = mem.LineSize

// acc builds a TLB-hitting user access.
func acc(ip uint64, pa uint64) Access {
	return Access{IP: ip, PA: mem.PAddr(pa), PID: 1, TLBHit: true, Level: cache.LevelDRAM}
}

// feed pushes a sequence of (ip, pa) pairs and returns the requests of the
// last access.
func feed(p *IPStride, ip uint64, pas ...uint64) []Request {
	var last []Request
	for _, pa := range pas {
		last = p.OnLoad(acc(ip, pa))
	}
	return last
}

func newDefault() *IPStride { return NewIPStride(DefaultIPStrideConfig()) }

func TestThirdAccessIssuesFirstPrefetch(t *testing.T) {
	p := newDefault()
	base := uint64(0x10000)
	if got := feed(p, 0x1234, base); got != nil {
		t.Fatalf("first access prefetched: %v", got)
	}
	if got := feed(p, 0x1234, base+7*line); got != nil {
		t.Fatalf("second access prefetched: %v", got)
	}
	got := feed(p, 0x1234, base+14*line)
	if len(got) != 1 {
		t.Fatalf("third access: want 1 prefetch, got %v", got)
	}
	if want := mem.PAddr(base + 21*line); got[0].Target != want {
		t.Fatalf("prefetch target = %#x, want %#x", uint64(got[0].Target), uint64(want))
	}
}

func TestConfidenceSaturatesAtThree(t *testing.T) {
	p := newDefault()
	base := uint64(0x10000)
	for i := uint64(0); i < 8; i++ {
		feed(p, 0x42, base+i*7*line)
	}
	e, ok := p.Peek(0x42, 1)
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Confidence != 3 {
		t.Fatalf("confidence = %d, want saturated 3", e.Confidence)
	}
	if e.Stride != 7*line {
		t.Fatalf("stride = %d, want %d", e.Stride, 7*line)
	}
}

// TestFig7aTwoPhaseTraining reproduces Figure 7a / Listing 3: phase 1 with
// stride 7, a jump, then phase 2 with stride 5. The jump access still fires
// the stride-7 prefetch (the "key component"); the next access is silent;
// the one after re-triggers with stride 5.
func TestFig7aTwoPhaseTraining(t *testing.T) {
	p := newDefault()
	ip := uint64(0xA1)
	// Phase 1: saturate with stride 7 lines.
	for i := uint64(0); i < 4; i++ {
		feed(p, ip, 0x20000+i*7*line)
	}
	// First iteration of the second loop: arbitrary offset.
	off := uint64(0x20000 + 40*line)
	got := feed(p, ip, off)
	if len(got) != 1 || got[0].Target != mem.PAddr(off+7*line) {
		t.Fatalf("offset access: want stride-7 prefetch at %#x, got %v", off+7*line, got)
	}
	// Second iteration: stride 5 — neither stride triggers.
	if got := feed(p, ip, off+5*line); got != nil {
		t.Fatalf("second iteration unexpectedly prefetched: %v", got)
	}
	// Third iteration: stride 5 becomes active.
	got = feed(p, ip, off+10*line)
	if len(got) != 1 || got[0].Target != mem.PAddr(off+15*line) {
		t.Fatalf("third iteration: want stride-5 prefetch at %#x, got %v", off+15*line, got)
	}
}

// TestFig7bImmediateSecondPhase reproduces Figure 7b: when phase 2 starts
// exactly one new-stride step after phase 1, the second phase-2 access
// already triggers.
func TestFig7bImmediateSecondPhase(t *testing.T) {
	p := newDefault()
	ip := uint64(0xA2)
	last := uint64(0x30000)
	for i := uint64(0); i < 4; i++ {
		last = 0x30000 + i*7*line
		feed(p, ip, last)
	}
	// Phase 2 starts immediately: first access at last+5 fires stride 7...
	got := feed(p, ip, last+5*line)
	if len(got) != 1 || got[0].Target != mem.PAddr(last+5*line+7*line) {
		t.Fatalf("first phase-2 access: want stride-7 prefetch, got %v", got)
	}
	// ...and the second phase-2 access is already fully trained on 5.
	got = feed(p, ip, last+10*line)
	if len(got) != 1 || got[0].Target != mem.PAddr(last+15*line) {
		t.Fatalf("second phase-2 access: want stride-5 prefetch at %#x, got %v",
			last+15*line, got)
	}
}

// TestIndexLow8NoTag reproduces §4.1 / Figure 6: an IP matching the trained
// one in its low 8 bits hits the same entry; any low-8 mismatch does not.
func TestIndexLow8NoTag(t *testing.T) {
	p := newDefault()
	trained := uint64(0x7f_1234_5678)
	for i := uint64(0); i < 4; i++ {
		feed(p, trained, 0x40000+i*9*line)
	}
	alias := uint64(0x11_0000_0078) // same low 8 bits only
	got := feed(p, alias, 0x40000)
	if len(got) != 1 {
		t.Fatalf("8-bit alias did not trigger: %v", got)
	}
	other := trained ^ 0x01 // differs in bit 0
	if got := feed(p, other, 0x40000+line); got != nil {
		t.Fatalf("non-aliasing IP triggered: %v", got)
	}
}

// trainIPs trains n distinct-low-8 IPs, each on its own frame, and returns
// the IPs and their training bases.
func trainIPs(p *IPStride, n int, rounds int) ([]uint64, []uint64) {
	ips := make([]uint64, n)
	bases := make([]uint64, n)
	for i := 0; i < n; i++ {
		ips[i] = 0x9000_0000 + uint64(i) // distinct low-8 for i < 256
		bases[i] = uint64(0x100000 + i*mem.PageSize)
		for r := uint64(0); r < uint64(rounds); r++ {
			p.OnLoad(acc(ips[i], bases[i]+r*7*line))
		}
	}
	return ips, bases
}

// triggerPoint reports whether the i-th trained IP still fires a prefetch
// when re-accessed at a fresh offset on its own page. Each point uses a
// fresh machine and a full re-run of the training schedule, exactly like
// the per-point runs behind Figure 8 (measuring an evicted IP would itself
// allocate an entry and perturb later points otherwise).
func triggerPoint(t *testing.T, schedule func(p *IPStride) (ips, bases []uint64), i int) bool {
	t.Helper()
	p := newDefault()
	ips, bases := schedule(p)
	reqs := p.OnLoad(acc(ips[i], bases[i]+45*line))
	return len(reqs) > 0
}

// TestFig8aEntryCount reproduces Figure 8a: with 26 trained IPs the first
// 2 no longer trigger; with 30, the first 6 — i.e. the table has 24 entries.
func TestFig8aEntryCount(t *testing.T) {
	for _, tc := range []struct{ n, evicted int }{{26, 2}, {30, 6}} {
		schedule := func(p *IPStride) ([]uint64, []uint64) { return trainIPs(p, tc.n, 5) }
		for i := 0; i < tc.n; i++ {
			got := triggerPoint(t, schedule, i)
			want := i >= tc.evicted
			if got != want {
				t.Fatalf("n=%d: IP %d triggered=%v, want %v", tc.n, i, got, want)
			}
		}
	}
}

// TestFig8bBitPLRUReplacement reproduces Figure 8b: fill the 24 entries,
// re-touch IPs 1–8, then train 8 new IPs — the evicted entries are 9–16.
func TestFig8bBitPLRUReplacement(t *testing.T) {
	schedule := func(p *IPStride) ([]uint64, []uint64) {
		ips, bases := trainIPs(p, 24, 5)
		// Re-train the first 8 to make them most-recently used.
		for i := 0; i < 8; i++ {
			for r := uint64(0); r < 5; r++ {
				p.OnLoad(acc(ips[i], bases[i]+r*7*line+5*line))
			}
		}
		// Train 8 new IPs on fresh frames.
		for i := 0; i < 8; i++ {
			ip := 0x9000_0000 + uint64(24+i)
			base := uint64(0x100000 + (24+i)*mem.PageSize)
			for r := uint64(0); r < 5; r++ {
				p.OnLoad(acc(ip, base+r*7*line))
			}
		}
		return ips, bases
	}
	for i := 0; i < 24; i++ {
		got := triggerPoint(t, schedule, i)
		want := i < 8 || i >= 16 // positions 9..16 (1-indexed) evicted
		if got != want {
			t.Fatalf("IP %d (1-indexed %d): triggered=%v, want %v", i, i+1, got, want)
		}
	}
}

func TestPrefetchDroppedAtPageBoundary(t *testing.T) {
	p := newDefault()
	ip := uint64(0xB0)
	// Train with stride 13 lines near the end of a page: the trigger whose
	// target crosses the 4 KiB frame must be dropped.
	base := uint64(0x50000)
	feed(p, ip, base+20*line, base+33*line, base+46*line) // 46+13=59 in page: fires
	before := p.Stats().PageDrops
	got := feed(p, ip, base+59*line) // target 72 crosses the frame
	if got != nil {
		t.Fatalf("cross-page prefetch not dropped: %v", got)
	}
	if p.Stats().PageDrops != before+1 {
		t.Fatalf("PageDrops = %d, want %d", p.Stats().PageDrops, before+1)
	}
}

func TestTLBMissSkipsPrefetcher(t *testing.T) {
	p := newDefault()
	ip := uint64(0xB1)
	feed(p, ip, 0x60000, 0x60000+7*line, 0x60000+14*line)
	a := acc(ip, 0x90000) // far frame
	a.TLBHit = false
	if got := p.OnLoad(a); got != nil {
		t.Fatalf("TLB-missing access prefetched: %v", got)
	}
	e, _ := p.Peek(ip, 1)
	if e.LastAddr != mem.PAddr(0x60000+14*line) {
		t.Fatalf("TLB-missing access mutated entry: last=%#x", uint64(e.LastAddr))
	}
	if p.Stats().TLBSkips != 1 {
		t.Fatalf("TLBSkips = %d, want 1", p.Stats().TLBSkips)
	}
}

// TestNextPageAssist reproduces Table 1 row "1 Page"/locked: a TLB-missing
// first access whose frame is exactly the successor of the trained frame
// still triggers.
func TestNextPageAssist(t *testing.T) {
	p := newDefault()
	ip := uint64(0xB2)
	base := uint64(0x70000) // frame 0x70
	feed(p, ip, base, base+7*line, base+14*line)
	a := acc(ip, base+mem.PageSize+3*line) // next frame, first touch
	a.TLBHit = false
	got := p.OnLoad(a)
	if len(got) != 1 || got[0].Target != mem.PAddr(base+mem.PageSize+10*line) {
		t.Fatalf("next-page assist: want prefetch at +10 lines, got %v", got)
	}
	// A non-adjacent frame must stay suppressed.
	p2 := newDefault()
	feed(p2, ip, base, base+7*line, base+14*line)
	a2 := acc(ip, base+3*mem.PageSize)
	a2.TLBHit = false
	if got := p2.OnLoad(a2); got != nil {
		t.Fatalf("non-adjacent TLB-missing access triggered: %v", got)
	}
}

func TestVictimCrossFrameAccessFiresThenRelearns(t *testing.T) {
	p := newDefault()
	ip := uint64(0x34) // victim shares these low 8 bits
	attacker := uint64(0x7000_0034)
	base := uint64(0x80000)
	feed(p, attacker, base, base+11*line, base+22*line, base+33*line)
	// Victim load, different process, different frame, TLB warm.
	victimPA := uint64(0x555000 + 9*line)
	got := p.OnLoad(Access{IP: 0xffffffff81000034, PA: mem.PAddr(victimPA), PID: 2, TLBHit: true})
	if len(got) != 1 || got[0].Target != mem.PAddr(victimPA+11*line) {
		t.Fatalf("victim access: want stride echo at %#x, got %v", victimPA+11*line, got)
	}
	e, ok := p.Peek(ip, 1)
	if !ok {
		t.Fatal("entry vanished")
	}
	if e.Confidence != 1 {
		t.Fatalf("confidence after victim access = %d, want re-learned 1", e.Confidence)
	}
}

func TestStrideFieldTruncation(t *testing.T) {
	if got := truncStride(2048, 2048); got != -2048 {
		t.Fatalf("truncStride(2048) = %d, want -2048 (field wrap)", got)
	}
	if got := truncStride(-5000, 2048); got != truncStride(-5000+4096, 2048) {
		t.Fatalf("truncation not congruent mod 4096")
	}
	if got := truncStride(100, 2048); got != 100 {
		t.Fatalf("in-range stride altered: %d", got)
	}
	if got := truncStride(-2048, 2048); got != -2048 {
		t.Fatalf("truncStride(-2048) = %d, want -2048", got)
	}
}

func TestFullIPTagMitigationBlocksAliasing(t *testing.T) {
	cfg := DefaultIPStrideConfig()
	cfg.FullIPTag = true
	p := NewIPStride(cfg)
	trained := uint64(0x7f_0000_0078)
	feed(p, trained, 0x40000, 0x40000+9*line, 0x40000+18*line)
	alias := uint64(0x11_0000_0078)
	if got := feed(p, alias, 0x40000+27*line); got != nil {
		t.Fatalf("full-IP tag failed to block alias: %v", got)
	}
}

func TestPIDTagMitigationBlocksCrossProcess(t *testing.T) {
	cfg := DefaultIPStrideConfig()
	cfg.PIDTag = true
	p := NewIPStride(cfg)
	for i := uint64(0); i < 3; i++ {
		p.OnLoad(acc(0x78, 0x40000+i*9*line))
	}
	a := Access{IP: 0x78, PA: mem.PAddr(0x40000 + 27*line), PID: 99, TLBHit: true}
	if got := p.OnLoad(a); got != nil {
		t.Fatalf("PID tag failed to block cross-process trigger: %v", got)
	}
}

func TestFlushClearsEverything(t *testing.T) {
	p := newDefault()
	trainIPs(p, 10, 4)
	p.Flush()
	for _, e := range p.Entries() {
		if e.Valid {
			t.Fatal("entry survived Flush")
		}
	}
	if p.Stats().Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", p.Stats().Flushes)
	}
}

func TestInvalidate(t *testing.T) {
	p := newDefault()
	feed(p, 0x11, 0x40000, 0x40000+7*line)
	if !p.Invalidate(0x11, 1) {
		t.Fatal("Invalidate missed existing entry")
	}
	if _, ok := p.Peek(0x11, 1); ok {
		t.Fatal("entry still visible after Invalidate")
	}
	if p.Invalidate(0x11, 1) {
		t.Fatal("Invalidate reported success on missing entry")
	}
}

// TestInvariantsQuick property-tests Algorithm 1: confidence stays within
// the 2-bit range, the stride stays within the 13-bit field, and the entry
// count never exceeds the table size.
func TestInvariantsQuick(t *testing.T) {
	f := func(ips []uint8, offsets []uint16) bool {
		p := newDefault()
		n := len(ips)
		if len(offsets) < n {
			n = len(offsets)
		}
		for i := 0; i < n; i++ {
			pa := uint64(0x100000) + uint64(offsets[i])*8
			p.OnLoad(acc(uint64(ips[i]), pa))
		}
		valid := 0
		for _, e := range p.Entries() {
			if !e.Valid {
				continue
			}
			valid++
			if e.Confidence < 0 || e.Confidence > 3 {
				return false
			}
			if e.Stride > 2048 || e.Stride < -2048 {
				return false
			}
		}
		return valid <= p.Config().Entries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSameAddressRepetition pins the corner case of a repeated identical
// address: stride 0 never issues a prefetch.
func TestSameAddressRepetition(t *testing.T) {
	p := newDefault()
	for i := 0; i < 6; i++ {
		if got := feed(p, 0x22, 0x40040); got != nil {
			t.Fatalf("zero-stride prefetch issued: %v", got)
		}
	}
}

func TestNegativeStride(t *testing.T) {
	p := newDefault()
	base := uint64(0x51000)
	feed(p, 0x23, base+40*line, base+33*line) // stride -7 lines
	got := feed(p, 0x23, base+26*line)
	if len(got) != 1 || got[0].Target != mem.PAddr(base+19*line) {
		t.Fatalf("negative stride: want prefetch at %#x, got %v", base+19*line, got)
	}
}

// TestByteGranularStride pins footnote 5 / §4.2: the stride field is byte-
// granular (it "does not need to align to a cache line"), so a 100-byte
// stride trains and prefetches exactly.
func TestByteGranularStride(t *testing.T) {
	p := newDefault()
	base := uint64(0x90000)
	feed(p, 0x61, base, base+100, base+200)
	got := feed(p, 0x61, base+300)
	if len(got) != 1 || got[0].Target != mem.PAddr(base+400) {
		t.Fatalf("byte stride: %v", got)
	}
	e, _ := p.Peek(0x61, 1)
	if e.Stride != 100 {
		t.Fatalf("stride = %d, want 100 bytes", e.Stride)
	}
}

// TestLineGranularObservationLosesLowBits demonstrates the footnote's
// limit: a receiver reloading at cache-line granularity sees two byte-
// strides that share their upper bits as the same signal — the low 6 bits
// of a 12-bit stride payload are unobservable.
func TestLineGranularObservationLosesLowBits(t *testing.T) {
	lineOf := func(stride int64) uint64 {
		p := newDefault()
		base := uint64(0xA0000)
		for i := int64(0); i < 3; i++ {
			feed(p, 0x62, uint64(int64(base)+i*stride))
		}
		reqs := feed(p, 0x62, uint64(int64(base)+3*stride))
		if len(reqs) != 1 {
			t.Fatalf("stride %d did not trigger", stride)
		}
		return reqs[0].Target.Line()
	}
	// Strides 7·64 and 7·64+5 differ only below line granularity.
	if lineOf(7*64) != lineOf(7*64+5) {
		t.Fatal("sub-line stride bits observable at line granularity")
	}
	if lineOf(7*64) == lineOf(8*64) {
		t.Fatal("full-line stride bits lost")
	}
}

// TestResetStatsZeroesEveryCounter: the prefetcher's activity counters gained
// a reset alongside the cache's (same deprecation cycle); it must clear every
// field, including the newer Trains counter.
func TestResetStatsZeroesEveryCounter(t *testing.T) {
	p := newDefault()
	base := uint64(0x30000)
	for i := uint64(0); i < 6; i++ {
		feed(p, 0x77, base+i*7*line)
	}
	p.Flush()
	s := p.Stats()
	if s.Lookups == 0 || s.Trains == 0 || s.Allocs == 0 || s.Prefetches == 0 || s.Flushes == 0 {
		t.Fatalf("setup left counters zero: %+v", s)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatalf("counters survived reset: %+v", p.Stats())
	}
}
