package victim

import (
	"testing"

	"afterimage/internal/bignum"
	"afterimage/internal/mem"
	"afterimage/internal/rsa"
	"afterimage/internal/sim"
)

func quiet(seed int64) *sim.Machine { return sim.NewMachine(sim.Quiet(sim.CoffeeLake(seed))) }

func TestBranchyLoadsCorrectIP(t *testing.T) {
	m := quiet(1)
	env := m.Direct(m.NewProcess("v"))
	page := env.Mmap(mem.PageSize, mem.MapLocked)
	v := NewBranchy(page.Base)
	v.Step(env, true)
	if _, ok := m.Pref.IPStride.Peek(v.IPIf, env.PID()); !ok {
		t.Fatal("if-path IP not seen by prefetcher")
	}
	if _, ok := m.Pref.IPStride.Peek(v.IPElse, env.PID()); ok {
		t.Fatal("else-path IP seen on an if-path step")
	}
	if uint8(v.IPIf) == uint8(v.IPElse) {
		t.Fatal("demo IPs alias in their low 8 bits")
	}
}

func TestBranchyRunYieldsPerBit(t *testing.T) {
	m := quiet(2)
	proc := m.NewProcess("v")
	page := m.Direct(proc).Mmap(mem.PageSize, mem.MapLocked)
	v := NewBranchy(page.Base)
	steps := 0
	m.Spawn(proc, "victim", func(e *sim.Env) {
		v.Run(e, []bool{true, false, true})
	})
	m.Spawn(proc, "observer", func(e *sim.Env) {
		for i := 0; i < 3; i++ {
			steps++
			e.Yield()
		}
	})
	m.Run()
	if steps != 3 {
		t.Fatalf("observer interleaved %d times", steps)
	}
}

func TestKernelSecretHandler(t *testing.T) {
	m := quiet(3)
	kv := NewKernelSecret(m, 333, []bool{true, false})
	env := m.Direct(m.NewProcess("u"))
	shared := env.Mmap(mem.PageSize, mem.MapShared)
	env.WarmTLB(shared.Base)
	if got := env.Syscall(333, uint64(shared.Base)); got != 1 {
		t.Fatalf("taken call returned %d", got)
	}
	line := shared.Base + mem.VAddr(kv.Line*mem.LineSize)
	if !env.Cached(line) {
		t.Fatal("kernel load did not cache the shared line")
	}
	env.Flush(line)
	if got := env.Syscall(333, uint64(shared.Base)); got != 0 {
		t.Fatalf("not-taken call returned %d", got)
	}
	if env.Cached(line) {
		t.Fatal("not-taken branch touched the shared line")
	}
	if kv.Calls() != 2 {
		t.Fatalf("Calls = %d", kv.Calls())
	}
	if env.Syscall(333) != ^uint64(0) {
		t.Fatal("missing argument not rejected")
	}
}

func TestSGXStrideSelection(t *testing.T) {
	for _, secret := range []bool{true, false} {
		m := quiet(4)
		env := m.Direct(m.NewProcess("app"))
		buf := env.Mmap(mem.PageSize, mem.MapShared)
		v := NewSGXSecret(buf.Base)
		v.ECall(env, secret)
		e, ok := m.Pref.IPStride.Peek(v.LoadIP, env.PID())
		if !ok {
			t.Fatal("enclave loads not observed")
		}
		want := v.StrideNotTaken
		if secret {
			want = v.StrideTaken
		}
		if e.Stride != want*mem.LineSize {
			t.Fatalf("secret=%v: stride=%d want %d lines", secret, e.Stride, want)
		}
		if e.Confidence < 2 {
			t.Fatalf("enclave training left confidence %d", e.Confidence)
		}
	}
}

func TestRSALadderDecryptsCorrectly(t *testing.T) {
	m := quiet(5)
	env := m.Direct(m.NewProcess("v"))
	key := rsa.TestKey(128)
	v := NewRSALadder(env, key)
	v.YieldPerBit = false // direct env
	msg := bignum.New(987654321)
	c, err := key.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Decrypt(env, c); got.Cmp(msg) != 0 {
		t.Fatal("instrumented decryption corrupted the plaintext")
	}
}

func TestRSALadderIssuesBranchLoads(t *testing.T) {
	m := quiet(6)
	env := m.Direct(m.NewProcess("v"))
	v := NewRSALadder(env, rsa.TestKey(128))
	v.YieldPerBit = false
	v.LadderStep(env, 0, 1)
	if _, ok := m.Pref.IPStride.Peek(v.IPIf, env.PID()); !ok {
		t.Fatal("bit=1 step missed the if-path IP")
	}
	v.LadderStep(env, 1, 0)
	if _, ok := m.Pref.IPStride.Peek(v.IPElse, env.PID()); !ok {
		t.Fatal("bit=0 step missed the else-path IP")
	}
}

// TestRSALadderIsLoadBalanced pins the timing-constant property: both
// directions perform exactly one workspace load plus the same sleep.
func TestRSALadderIsLoadBalanced(t *testing.T) {
	m := quiet(7)
	env := m.Direct(m.NewProcess("v"))
	v := NewRSALadder(env, rsa.TestKey(128))
	v.YieldPerBit = false
	// Warm both paths' lines first so both steps run from equal cache state.
	v.LadderStep(env, 0, 1)
	v.LadderStep(env, 3, 0)
	t0 := env.Now()
	v.LadderStep(env, 6, 1)
	d1 := env.Now() - t0
	t1 := env.Now()
	v.LadderStep(env, 9, 0)
	d0 := env.Now() - t1
	diff := int64(d1) - int64(d0)
	if diff < 0 {
		diff = -diff
	}
	if diff > 64 {
		t.Fatalf("ladder step timing unbalanced: bit1=%d bit0=%d", d1, d0)
	}
}

func TestOpenSSLRSAPhases(t *testing.T) {
	m := quiet(8)
	proc := m.NewProcess("v")
	var v *OpenSSLRSA
	yields := 0
	m.Spawn(proc, "victim", func(e *sim.Env) {
		v = NewOpenSSLRSA(e)
		v.Run(e)
	})
	m.Spawn(proc, "sampler", func(e *sim.Env) {
		for {
			yields++
			e.Yield()
			if yields > 200 {
				return
			}
		}
	})
	m.Run()
	wantYields := v.IdleBeforeKeyLoad + v.KeyLines + v.IdleBeforeDecrypt + v.MulAddIters
	if yields < wantYields {
		t.Fatalf("sampler saw %d slots, want ≥ %d", yields, wantYields)
	}
	if _, ok := m.Pref.IPStride.Peek(v.IPKeyLoad, proc.PID); !ok {
		t.Fatal("key-load IP never executed")
	}
	if _, ok := m.Pref.IPStride.Peek(v.IPMulAdd, proc.PID); !ok {
		t.Fatal("mul-add IP never executed")
	}
}

func TestAESEncryptorComputesFIPSVector(t *testing.T) {
	m := quiet(9)
	proc := m.NewProcess("v")
	var ct [16]byte
	var runErr error
	m.Spawn(proc, "victim", func(e *sim.Env) {
		v := NewAESEncryptor(e)
		ct, runErr = v.Run(e, []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
			0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34})
	})
	m.Spawn(proc, "pump", func(e *sim.Env) {
		for i := 0; i < 64; i++ {
			e.Yield()
		}
	})
	m.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	if ct != want {
		t.Fatalf("ciphertext % x", ct)
	}
}

func TestAESEncryptorTouchesSBoxIP(t *testing.T) {
	m := quiet(10)
	proc := m.NewProcess("v")
	var v *AESEncryptor
	m.Spawn(proc, "victim", func(e *sim.Env) {
		v = NewAESEncryptor(e)
		v.IdleBeforeExpand, v.IdleBeforeEncrypt = 0, 0
		_, _ = v.Run(e, make([]byte, 16))
	})
	m.Spawn(proc, "pump", func(e *sim.Env) {
		for i := 0; i < 8; i++ {
			e.Yield()
		}
	})
	m.Run()
	if _, ok := m.Pref.IPStride.Peek(v.IPSBox, proc.PID); !ok {
		t.Fatal("S-box IP never reached the prefetcher")
	}
}

func TestBranchyCustomLine(t *testing.T) {
	m := quiet(11)
	env := m.Direct(m.NewProcess("v"))
	page := env.Mmap(mem.PageSize, mem.MapLocked)
	v := NewBranchy(page.Base)
	v.Line = 42
	v.Step(env, false)
	if !env.Cached(page.Base + mem.VAddr(42*mem.LineSize)) {
		t.Fatal("custom line not touched")
	}
}
