// Package victim implements the vulnerable programs the paper attacks: the
// branch-dependent-load user victim of Listing 1, the custom kernel syscall
// of Listing 7, the SGX enclave of Listing 8, the timing-constant
// Montgomery-ladder RSA engine of Figures 3/4 (§6.2), and the OpenSSL-style
// RSA decryption whose load timing Figure 15 tracks (§6.3).
package victim

import (
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// Branchy is the Listing 1 victim: a secret decides which of two load
// instructions executes. The two loads sit at different IPs (if-path and
// else-path), which is all AfterImage needs — even when both paths perform
// the same number of loads (timing-constant style).
type Branchy struct {
	// IPIf and IPElse are the load IPs of the two paths; the attacker's
	// gadget matches their low 8 bits.
	IPIf, IPElse uint64
	// Array is the buffer both paths load from (a shared page for
	// Flush+Reload, any page for Prime+Probe).
	Array mem.VAddr
	// Line is the array line index the victim dereferences.
	Line int
}

// NewBranchy places the victim's loads at the canonical demo IPs.
func NewBranchy(array mem.VAddr) *Branchy {
	return &Branchy{
		IPIf:   0x0804_8634, // low 8 bits 0x34
		IPElse: 0x0804_86c2, // low 8 bits 0xC2
		Array:  array,
		Line:   3,
	}
}

// Step executes one secret-dependent branch: exactly one load, from the
// if-path IP when secret is true, from the else-path IP otherwise.
func (v *Branchy) Step(env *sim.Env, secret bool) {
	addr := v.Array + mem.VAddr(v.Line*mem.LineSize)
	env.WarmTLB(addr)
	env.Sleep(30) // branch resolution and surrounding code
	if secret {
		env.Load(v.IPIf, addr)
	} else {
		env.Load(v.IPElse, addr)
	}
	env.Sleep(30)
}

// Run executes one Step per secret bit, yielding to the attacker between
// branches (the paper's sched_yield synchronisation).
func (v *Branchy) Run(env *sim.Env, secret []bool) {
	for _, s := range secret {
		v.Step(env, s)
		env.Yield()
	}
}

// KernelSecret is the Listing 7 victim: a custom syscall whose kernel-side
// secret guards a load into user-shared memory.
type KernelSecret struct {
	// SyscallNum is the installed syscall number (333 in the artifact).
	SyscallNum int
	// LoadIP is the kernel load's instruction pointer; only its low 8 bits
	// matter and KASLR cannot change the low 12 (§5.2).
	LoadIP uint64
	// Line is the shared-memory line the kernel dereferences.
	Line int
	// Secrets yields the kernel's secret for each invocation, in order
	// (ground truth for evaluation).
	Secrets []bool
	calls   int
}

// NewKernelSecret installs the syscall on the machine. The user passes the
// shared buffer's address as the syscall argument, exactly as
// vulnerable_syscall(memory_space) does.
func NewKernelSecret(m *sim.Machine, num int, secrets []bool) *KernelSecret {
	v := &KernelSecret{
		SyscallNum: num,
		LoadIP:     0xffffffff8112_34a7, // low 8 bits 0xA7
		Line:       5,
		Secrets:    secrets,
	}
	m.RegisterSyscall(num, v.handler)
	return v
}

// Calls reports how many times the syscall has run.
func (v *KernelSecret) Calls() int { return v.calls }

func (v *KernelSecret) handler(e *sim.Env, args ...uint64) uint64 {
	if len(args) < 1 {
		return ^uint64(0)
	}
	secret := v.Secrets[v.calls%len(v.Secrets)]
	v.calls++
	// Kernel prologue: a couple of unrelated kernel-data loads.
	e.Load(0xffffffff8100_0011, mem.VAddr(0)+kernelScratch(e))
	e.Sleep(120)
	if secret {
		addr := mem.VAddr(args[0]) + mem.VAddr(v.Line*mem.LineSize)
		e.LoadUser(v.LoadIP, addr)
		return 1
	}
	return 0
}

// kernelScratch returns a kernel-owned address for incidental handler loads.
func kernelScratch(e *sim.Env) mem.VAddr {
	return e.Machine().Kernel.AS.Mappings()[0].Base
}

// SGXSecret is the Listing 8 enclave: the secret selects a stride (3 or 5
// lines) and the enclave walks the untrusted buffer with it, training the
// shared prefetcher that survives EEXIT (§4.6, §5.4).
type SGXSecret struct {
	// LoadIP is the in-enclave load IP.
	LoadIP uint64
	// Buffer is the untrusted-zone buffer passed into the ECALL.
	Buffer mem.VAddr
	// StrideTaken and StrideNotTaken are the two strides (5 and 3 in §7.2).
	StrideTaken, StrideNotTaken int64
	// Iterations is the in-enclave loop length (8 in Listing 8).
	Iterations int
}

// NewSGXSecret mirrors the PoC parameters.
func NewSGXSecret(buffer mem.VAddr) *SGXSecret {
	return &SGXSecret{
		LoadIP:         0x7ff0_0000_2143,
		Buffer:         buffer,
		StrideTaken:    5,
		StrideNotTaken: 3,
		Iterations:     8,
	}
}

// ECall runs the enclave body with the given secret.
func (v *SGXSecret) ECall(env *sim.Env, secret bool) {
	env.EnclaveCall(func(e *sim.Env) {
		stride := v.StrideNotTaken
		if secret {
			stride = v.StrideTaken
		}
		e.WarmTLB(v.Buffer)
		for i := 0; i < v.Iterations; i++ {
			off := int64(i) * stride * mem.LineSize
			if off+stride*mem.LineSize >= mem.PageSize {
				break // stay within the 4 KiB ECALL buffer
			}
			e.Load(v.LoadIP, v.Buffer+mem.VAddr(off))
		}
	})
}
