package victim

import (
	"afterimage/internal/aes"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// AESEncryptor is the §6.3 companion victim: an OpenSSL-style AES-128
// encryption whose S-box lookups go through a 256-byte table in memory.
// The paper notes that "OpenSSL-AES can also be attacked using the same
// attack flow" — AfterImage tracks *when* the S-box loads of the key
// schedule and of each encryption run happen, which is the timing input
// the Figure 16 power attack needs.
type AESEncryptor struct {
	// IPSBox is the S-box lookup load IP (one hot load in the inner loop).
	IPSBox uint64
	// Table is the in-memory S-box (4 cache lines).
	Table *mem.Mapping
	// Key is the secret key.
	Key []byte
	// IdleBeforeExpand / IdleBeforeEncrypt shape the timeline in
	// scheduling slots, like the RSA victim of Figure 15.
	IdleBeforeExpand, IdleBeforeEncrypt int

	keys [][16]byte
}

// NewAESEncryptor allocates the table and fixes the demo key.
func NewAESEncryptor(env *sim.Env) *AESEncryptor {
	return &AESEncryptor{
		IPSBox: 0x0811_7c42, // low 8 bits 0x42
		Table:  env.Mmap(mem.PageSize, mem.MapLocked),
		Key: []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
			0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c},
		IdleBeforeExpand:  5,
		IdleBeforeEncrypt: 5,
	}
}

// hook issues the simulated table load for one S-box lookup.
func (v *AESEncryptor) hook(env *sim.Env) aes.SBoxHook {
	return func(phase string, idx int, in byte) {
		env.Load(v.IPSBox, v.Table.Base+mem.VAddr(in))
	}
}

// Run executes idle / key-expansion / idle / one block encryption, yielding
// once per slot so an attacker can sample the prefetcher status. It returns
// the ciphertext.
func (v *AESEncryptor) Run(env *sim.Env, plaintext []byte) ([aes.BlockSize]byte, error) {
	env.WarmTLB(v.Table.Base)
	for i := 0; i < v.IdleBeforeExpand; i++ {
		env.Sleep(800)
		env.Yield()
	}
	keys, err := aes.ExpandKey(v.Key, v.hook(env))
	if err != nil {
		return [aes.BlockSize]byte{}, err
	}
	v.keys = keys
	env.Yield()
	for i := 0; i < v.IdleBeforeEncrypt; i++ {
		env.Sleep(800)
		env.Yield()
	}
	ct, err := aes.EncryptBlock(v.keys, plaintext, v.hook(env))
	env.Yield()
	return ct, err
}

// Slots reports how many scheduling slots one Run spans.
func (v *AESEncryptor) Slots() int {
	return v.IdleBeforeExpand + 1 + v.IdleBeforeEncrypt + 1
}
