package victim

import (
	"afterimage/internal/bignum"
	"afterimage/internal/mem"
	"afterimage/internal/rsa"
	"afterimage/internal/sim"
)

// RSALadder is the §6.2 victim: a timing-constant Montgomery-ladder RSA
// decryption (Figure 3/4 pattern). Both branch directions perform the same
// multiply-add sequence, but each direction prepares its operands with
// loads at direction-specific IPs — the leak AfterImage-PSC exploits.
type RSALadder struct {
	Key *rsa.PrivateKey
	// IPIf / IPElse are the operand-preparation load IPs of the taken
	// (bit=1) and not-taken (bit=0) directions.
	IPIf, IPElse uint64
	// IPMulLoop is the multiply-add inner loop's limb-load IP: it executes
	// identically on both directions (the timing-constant property) and
	// models the real engine's streaming limb traffic.
	IPMulLoop uint64
	// Workspace is the victim's own operand memory.
	Workspace *mem.Mapping
	// IterationCycles models the multiply-add arithmetic cost per ladder
	// step on the simulated core (a few thousand cycles for 1024-bit
	// limbs at -O0, per the paper's ~10 s per 5-iteration observation).
	IterationCycles uint64
	// LimbLoads is how many limb-array loads each multiply-add issues
	// (direction-independent).
	LimbLoads int
	// YieldPerBit inserts the victim-side sched_yield after each branch
	// (§6.2's simplified synchronisation).
	YieldPerBit bool
}

// NewRSALadder allocates the victim workspace.
func NewRSALadder(env *sim.Env, key *rsa.PrivateKey) *RSALadder {
	return &RSALadder{
		Key:             key,
		IPIf:            0x0870_5119, // low 8 bits 0x19
		IPElse:          0x0870_51d3, // low 8 bits 0xD3
		IPMulLoop:       0x0870_5240, // low 8 bits 0x40
		Workspace:       env.Mmap(4*mem.PageSize, mem.MapLocked),
		IterationCycles: 6000,
		LimbLoads:       16, // 1024-bit operands in 64-bit limbs
		YieldPerBit:     true,
	}
}

// Decrypt performs the full private-key operation, issuing the per-bit
// branch-dependent loads and yields. It returns the plaintext.
func (v *RSALadder) Decrypt(env *sim.Env, c bignum.Nat) bignum.Nat {
	iteration := 0
	return v.Key.DecryptWithHook(c, func(bitIndex int, bit uint) {
		v.LadderStep(env, iteration, bit)
		iteration++
	})
}

// LadderStep issues one iteration's microarchitectural activity without the
// bignum arithmetic — used by tests and by the covert-timing experiments
// that only need the load behaviour.
func (v *RSALadder) LadderStep(env *sim.Env, iteration int, bit uint) {
	// Operand pointers live on a handful of workspace lines; the accessed
	// line varies slowly with the iteration, like real limb buffers.
	line := (iteration * 3) % (LinesPerMapping(v.Workspace) - 1)
	addr := v.Workspace.Base + mem.VAddr(line*mem.LineSize)
	env.WarmTLB(addr)
	if bit == 1 {
		env.Load(v.IPIf, addr) // X->s = s path
	} else {
		env.Load(v.IPElse, addr) // X->s = -s path
	}
	// The multiply-add itself: identical limb traffic on both directions
	// (this is exactly why the engine defeats timing attacks but not
	// AfterImage — the direction-specific IPs above already leaked).
	limbBase := v.Workspace.Base + mem.VAddr(2*mem.PageSize)
	env.WarmTLB(limbBase)
	for l := 0; l < v.LimbLoads; l++ {
		env.Load(v.IPMulLoop, limbBase+mem.VAddr((l%(mem.PageSize/mem.LineSize))*mem.LineSize))
	}
	env.Sleep(v.IterationCycles) // balanced multiply_add arithmetic
	if v.YieldPerBit {
		env.Yield()
	}
}

// LinesPerMapping reports how many cache lines a mapping spans.
func LinesPerMapping(m *mem.Mapping) int { return int(m.Length / mem.LineSize) }

// OpenSSLRSA is the §6.3 victim: a commercial-grade-style decryption with
// two tracked phases — private-key loading, then the multiplication-addition
// loop — whose onset times Figure 15 recovers via AfterImage-PSC.
type OpenSSLRSA struct {
	// IPKeyLoad is the IP of the key-limb loads; IPMulAdd of the loop loads.
	IPKeyLoad, IPMulAdd uint64
	// KeyBuf holds the private key limbs.
	KeyBuf *mem.Mapping
	// IdleBeforeKeyLoad / IdleBeforeDecrypt are quiet slots (in yields)
	// before each phase, so the timeline has distinguishable onsets.
	IdleBeforeKeyLoad, IdleBeforeDecrypt int
	// KeyLines is how many limb lines the key-load phase touches.
	KeyLines int
	// MulAddIters is the decryption loop length.
	MulAddIters int
}

// NewOpenSSLRSA builds the victim with Figure 15-ish phase shapes.
func NewOpenSSLRSA(env *sim.Env) *OpenSSLRSA {
	return &OpenSSLRSA{
		IPKeyLoad:         0x0822_4e2b, // low 8 bits 0x2B
		IPMulAdd:          0x0822_4f66, // low 8 bits 0x66
		KeyBuf:            env.Mmap(mem.PageSize, mem.MapLocked),
		IdleBeforeKeyLoad: 6,
		IdleBeforeDecrypt: 6,
		KeyLines:          4,
		MulAddIters:       10,
	}
}

// Run executes idle / key-load / idle / decrypt, yielding once per step so
// the attacker samples the prefetcher status at a fine granularity (§6.3
// "calling sched_yield() more frequently").
func (v *OpenSSLRSA) Run(env *sim.Env) {
	env.WarmTLB(v.KeyBuf.Base)
	for i := 0; i < v.IdleBeforeKeyLoad; i++ {
		env.Sleep(800)
		env.Yield()
	}
	for i := 0; i < v.KeyLines; i++ {
		env.Load(v.IPKeyLoad, v.KeyBuf.Base+mem.VAddr(i*mem.LineSize))
		env.Sleep(400)
		env.Yield()
	}
	for i := 0; i < v.IdleBeforeDecrypt; i++ {
		env.Sleep(800)
		env.Yield()
	}
	for i := 0; i < v.MulAddIters; i++ {
		line := 8 + i%8
		env.Load(v.IPMulAdd, v.KeyBuf.Base+mem.VAddr(line*mem.LineSize))
		env.Sleep(600)
		env.Yield()
	}
}
