// Package statehash provides the canonical state-hash encoder used by every
// simulator component's StateHash method. A component folds its state into a
// Hash field by field; because the encoding is length-prefixed and
// type-tagged, two different state layouts cannot collide by concatenation
// (e.g. []uint64{1,2} vs []uint64{1},[]uint64{2}), and the resulting 64-bit
// digest is stable across processes and platforms — the property the replay
// harness relies on when diffing checkpointed hashes against re-executed
// ones.
//
// The fold is FNV-1a at WORD granularity: one xor-multiply per uint64 field
// (bool slices are bit-packed into words first) instead of the classical
// per-octet fold. State hashing sits on the per-point campaign path — a
// sweep digests the multi-megabyte LLC arrays once per point — and the
// octet fold's serial multiply chain made that the single most expensive
// step of a sweep point. Word folding is 8× fewer multiplies for identical
// structure. Each fold step (h ^ v) * prime is bijective in either operand,
// so the word variant loses none of the mixing structure equality gating
// relies on. Changing the fold redefines every digest, so pinned goldens
// (TestStateHashGolden, testdata/hotpath_golden.json) were regenerated when
// it landed and recorded replay checkpoints from before it do not resume.
package statehash

// FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is an incremental FNV-1a 64 digest over typed, length-prefixed
// fields. The zero value is NOT ready to use; call New.
type Hash struct {
	h uint64
}

// New returns a Hash seeded with the FNV-1a offset basis.
func New() *Hash { return &Hash{h: offset64} }

// byte folds one byte.
func (h *Hash) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= prime64
}

// word folds one uint64 in a single xor-multiply step.
func (h *Hash) word(v uint64) {
	h.h = (h.h ^ v) * prime64
}

// Field type tags keep differently-typed encodings disjoint.
const (
	tagU64 byte = iota + 1
	tagI64
	tagBool
	tagStr
	tagSlice
)

// U64 folds one unsigned word.
func (h *Hash) U64(v uint64) *Hash {
	h.byte(tagU64)
	h.word(v)
	return h
}

// I64 folds one signed word.
func (h *Hash) I64(v int64) *Hash {
	h.byte(tagI64)
	h.word(uint64(v))
	return h
}

// Int folds an int.
func (h *Hash) Int(v int) *Hash { return h.I64(int64(v)) }

// Bool folds a bool.
func (h *Hash) Bool(v bool) *Hash {
	h.byte(tagBool)
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
	return h
}

// U64s folds a slice of words with a length prefix. The loop runs on a
// local accumulator so the multiply chain stays in registers — this is the
// hot path under the cache arrays.
func (h *Hash) U64s(vs []uint64) *Hash {
	h.byte(tagSlice)
	acc := (h.h ^ uint64(len(vs))) * prime64
	for _, v := range vs {
		acc = (acc ^ v) * prime64
	}
	h.h = acc
	return h
}

// Bools folds a slice of bools with a length prefix, bit-packed 64 per
// word (the length prefix makes the packing injective).
func (h *Hash) Bools(vs []bool) *Hash {
	h.byte(tagSlice)
	acc := (h.h ^ uint64(len(vs))) * prime64
	var packed uint64
	n := 0
	for _, v := range vs {
		if v {
			packed |= 1 << uint(n)
		}
		if n++; n == 64 {
			acc = (acc ^ packed) * prime64
			packed, n = 0, 0
		}
	}
	if n > 0 {
		acc = (acc ^ packed) * prime64
	}
	h.h = acc
	return h
}

// Str folds a string with a length prefix.
func (h *Hash) Str(s string) *Hash {
	h.byte(tagStr)
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	return h
}

// Sum returns the current digest. The hash remains usable afterwards.
func (h *Hash) Sum() uint64 { return h.h }

// Combine folds an already-computed component digest into a parent hash —
// how Machine.StateHash merges its per-component hashes in a fixed order.
func (h *Hash) Combine(sub uint64) *Hash { return h.U64(sub) }
