// Package statehash provides the canonical FNV-1a state-hash encoder used by
// every simulator component's StateHash method. A component folds its state
// into a Hash field by field; because the encoding is length-prefixed and
// type-tagged, two different state layouts cannot collide by concatenation
// (e.g. []uint64{1,2} vs []uint64{1},[]uint64{2}), and the resulting 64-bit
// digest is stable across processes and platforms — the property the replay
// harness relies on when diffing checkpointed hashes against re-executed
// ones.
package statehash

// FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is an incremental FNV-1a 64 digest over typed, length-prefixed
// fields. The zero value is NOT ready to use; call New.
type Hash struct {
	h uint64
}

// New returns a Hash seeded with the FNV-1a offset basis.
func New() *Hash { return &Hash{h: offset64} }

// byte folds one byte.
func (h *Hash) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= prime64
}

// word folds one uint64 little-endian.
func (h *Hash) word(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// Field type tags keep differently-typed encodings disjoint.
const (
	tagU64 byte = iota + 1
	tagI64
	tagBool
	tagStr
	tagSlice
)

// U64 folds one unsigned word.
func (h *Hash) U64(v uint64) *Hash {
	h.byte(tagU64)
	h.word(v)
	return h
}

// I64 folds one signed word.
func (h *Hash) I64(v int64) *Hash {
	h.byte(tagI64)
	h.word(uint64(v))
	return h
}

// Int folds an int.
func (h *Hash) Int(v int) *Hash { return h.I64(int64(v)) }

// Bool folds a bool.
func (h *Hash) Bool(v bool) *Hash {
	h.byte(tagBool)
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
	return h
}

// U64s folds a slice of words with a length prefix.
func (h *Hash) U64s(vs []uint64) *Hash {
	h.byte(tagSlice)
	h.word(uint64(len(vs)))
	for _, v := range vs {
		h.word(v)
	}
	return h
}

// Bools folds a slice of bools with a length prefix.
func (h *Hash) Bools(vs []bool) *Hash {
	h.byte(tagSlice)
	h.word(uint64(len(vs)))
	for _, v := range vs {
		if v {
			h.byte(1)
		} else {
			h.byte(0)
		}
	}
	return h
}

// Str folds a string with a length prefix.
func (h *Hash) Str(s string) *Hash {
	h.byte(tagStr)
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	return h
}

// Sum returns the current digest. The hash remains usable afterwards.
func (h *Hash) Sum() uint64 { return h.h }

// Combine folds an already-computed component digest into a parent hash —
// how Machine.StateHash merges its per-component hashes in a fixed order.
func (h *Hash) Combine(sub uint64) *Hash { return h.U64(sub) }
