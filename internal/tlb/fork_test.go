package tlb

import (
	"testing"

	"afterimage/internal/mem"
)

// Fork regression suite: Fork must remap valid entries through the
// parent→child ASID table, drop the way-predictor memo exactly as Restore
// does, and share nothing mutable with the parent.

func TestForkRemapsValidEntries(t *testing.T) {
	tl := New(DefaultConfig())
	va := mem.VAddr(0x40_0000)
	tl.Warm(5, va)
	if hit, _ := tl.Lookup(5, va); !hit {
		t.Fatal("warmed parent entry missing")
	}

	f := tl.Fork(func(asid uint64) uint64 {
		if asid == 5 {
			return 9
		}
		return asid
	})
	if !f.Contains(9, va) {
		t.Fatal("fork did not remap ASID 5 -> 9")
	}
	if f.Contains(5, va) {
		t.Fatal("fork kept the parent's raw ASID")
	}
	if !tl.Contains(5, va) {
		t.Fatal("forking rewrote the parent's entries")
	}
}

func TestForkDropsWayPredictor(t *testing.T) {
	tl := New(DefaultConfig())
	va := mem.VAddr(0x40_0000)
	tl.Lookup(5, va) // install
	tl.Lookup(5, va) // arm the predictor
	if !tl.predOK {
		t.Fatal("parent predictor not armed (test substrate broken)")
	}
	f := tl.Fork(nil)
	if f.predOK {
		t.Fatal("fork carried the way-predictor memo")
	}
	// The memo is location-only: the parent serves the next lookup through
	// the predictor fast path, the fork through the full scan, and both must
	// perform the exact same mutations (clock bump, stamp, hit count).
	if hit, _ := f.Lookup(5, va); !hit {
		t.Fatal("fork lost the installed entry")
	}
	if hit, _ := tl.Lookup(5, va); !hit {
		t.Fatal("parent lost the installed entry")
	}
	id := func(a uint64) uint64 { return a }
	if got, want := f.StateHash(id), tl.StateHash(id); got != want {
		t.Fatalf("fork hash %#x, parent %#x after identical lookups", got, want)
	}
}

func TestForkIndependence(t *testing.T) {
	tl := New(DefaultConfig())
	for i := 0; i < 64; i++ {
		tl.Lookup(7, mem.VAddr(i)*mem.PageSize)
	}
	id := func(a uint64) uint64 { return a }
	before := tl.StateHash(id)
	f := tl.Fork(nil)
	for i := 64; i < 256; i++ {
		f.Lookup(7, mem.VAddr(i)*mem.PageSize)
	}
	f.FlushAll()
	if got := tl.StateHash(id); got != before {
		t.Fatalf("fork activity mutated the parent: %#x -> %#x", before, got)
	}
}

// TestForkPreservesInvalidSlots: invalid ways keep their stale tags raw
// (no remap), byte-identical to the parent — so a fork's hash matches the
// parent's under the identity remap even where slots are dead.
func TestForkPreservesInvalidSlots(t *testing.T) {
	tl := New(DefaultConfig())
	for i := 0; i < 32; i++ {
		tl.Lookup(3, mem.VAddr(i)*mem.PageSize)
	}
	tl.FlushAll() // leaves stale tags in invalid slots
	id := func(a uint64) uint64 { return a }
	f := tl.Fork(nil)
	if got, want := f.StateHash(id), tl.StateHash(id); got != want {
		t.Fatalf("fork hash %#x, parent %#x (invalid-slot bytes drifted)", got, want)
	}
}
