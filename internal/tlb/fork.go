package tlb

// Fork support: deep-copy the TLB for Machine.Fork. Forked address spaces
// get fresh ASIDs (the allocator is process-global), so the copied entries
// must be re-tagged from parent ASIDs to the fork's — otherwise the warmed
// translations would be invisible to the forked processes and the fork's
// first loads would take page walks the parent didn't.

// fork deep-copies one translation array, rewriting the ASID of every
// VALID entry through remap. Invalid slots keep their stale tags verbatim
// (they are unobservable, and the hash skips them), and remap is expected
// to pass unknown ASIDs through unchanged so audit-visible corruption —
// e.g. a CorruptInsert entry tagged with a dead ASID — survives the fork
// for the coherence checker to flag.
func (l *level) fork(remap func(asid uint64) uint64) *level {
	c := &level{
		ways:    l.ways,
		setMask: l.setMask,
		asids:   append([]uint64(nil), l.asids...),
		vpns:    append([]uint64(nil), l.vpns...),
		valid:   append([]bool(nil), l.valid...),
		stamps:  append([]uint64(nil), l.stamps...),
		clocks:  append([]uint64(nil), l.clocks...),
	}
	for i, v := range c.valid {
		if v {
			c.asids[i] = remap(c.asids[i])
		}
	}
	return c
}

// Fork returns an independent deep copy with valid entries re-tagged
// through remap (nil means identity). The way predictor is dropped exactly
// as Restore drops it: it caches only a location, and the remap invalidates
// its (asid, vpn) key anyway.
func (t *TLB) Fork(remap func(asid uint64) uint64) *TLB {
	if remap == nil {
		remap = func(a uint64) uint64 { return a }
	}
	f := &TLB{
		cfg:      t.cfg,
		l1:       t.l1.fork(remap),
		hits:     t.hits,
		misses:   t.misses,
		stlbHits: t.stlbHits,
	}
	if t.stlb != nil {
		f.stlb = t.stlb.fork(remap)
	}
	return f
}
