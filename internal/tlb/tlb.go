// Package tlb models a two-level data-TLB with PCID/ASID-tagged entries
// (translations survive context switches, as the paper's threat model
// assumes). Its role in AfterImage is the §4.3 first-touch rule: a load
// whose page misses the whole TLB spends its access walking the page table
// and does not update the IP-stride prefetcher; an access whose translation
// is resident (in either level) trains or triggers it normally.
package tlb

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/statehash"
	"afterimage/internal/telemetry"
)

// Config shapes the TLB.
type Config struct {
	Entries     int
	Ways        int
	HitLatency  uint64 // extra cycles on a TLB hit (usually folded into L1)
	WalkLatency uint64 // page-walk penalty on a miss

	// STLBEntries/STLBWays add a unified second-level TLB: a first-level
	// miss that hits the STLB costs STLBLatency instead of a full walk and
	// still counts as "TLB resident" for the prefetcher's first-touch rule
	// (the translation exists; no page-table walk installs state). Zero
	// disables the STLB.
	STLBEntries int
	STLBWays    int
	STLBLatency uint64
}

// DefaultConfig models a 64-entry, 4-way dTLB backed by a 1536-entry
// 12-way STLB with a 9-cycle fill — the Coffee Lake arrangement.
func DefaultConfig() Config {
	return Config{
		Entries: 64, Ways: 4, WalkLatency: 7,
		STLBEntries: 1536, STLBWays: 12, STLBLatency: 9,
	}
}

type entry struct {
	asid  uint64
	vpn   uint64
	valid bool
}

type tlbSet struct {
	entries []entry
	stamps  []uint64 // LRU stamps per way
	clock   uint64
}

// level is one set-associative translation array.
type level struct {
	sets    []*tlbSet
	setMask uint64
}

func newLevel(entries, ways int) *level {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	l := &level{setMask: uint64(nsets - 1)}
	l.sets = make([]*tlbSet, nsets)
	for i := range l.sets {
		l.sets[i] = &tlbSet{
			entries: make([]entry, ways),
			stamps:  make([]uint64, ways),
		}
	}
	return l
}

func (l *level) setFor(vpn uint64) *tlbSet { return l.sets[vpn&l.setMask] }

// touch looks up and refreshes an entry; it reports a hit.
func (l *level) touch(asid, vpn uint64) bool {
	s := l.setFor(vpn)
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].vpn == vpn && s.entries[i].asid == asid {
			s.clock++
			s.stamps[i] = s.clock
			return true
		}
	}
	return false
}

func (l *level) contains(asid, vpn uint64) bool {
	s := l.setFor(vpn)
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].vpn == vpn && s.entries[i].asid == asid {
			return true
		}
	}
	return false
}

func (l *level) install(asid, vpn uint64) {
	s := l.setFor(vpn)
	victim := 0
	for i := range s.entries {
		if !s.entries[i].valid {
			victim = i
			goto place
		}
	}
	for i := 1; i < len(s.entries); i++ {
		if s.stamps[i] < s.stamps[victim] {
			victim = i
		}
	}
place:
	s.clock++
	s.entries[victim] = entry{asid: asid, vpn: vpn, valid: true}
	s.stamps[victim] = s.clock
}

func (l *level) flush() {
	for _, s := range l.sets {
		for i := range s.entries {
			s.entries[i].valid = false
		}
	}
}

// TLB is the two-level translation cache keyed by (ASID, virtual page
// number). Entries from different address spaces coexist, competing only
// for capacity — the PCID behaviour of modern kernels.
type TLB struct {
	cfg      Config
	l1       *level
	stlb     *level // nil when disabled
	hits     uint64
	misses   uint64
	stlbHits uint64
}

// New builds a TLB; entries must divide evenly into ways at each level.
func New(cfg Config) *TLB {
	t := &TLB{cfg: cfg, l1: newLevel(cfg.Entries, cfg.Ways)}
	if cfg.STLBEntries > 0 {
		t.stlb = newLevel(cfg.STLBEntries, cfg.STLBWays)
	}
	return t
}

// Lookup touches the translation for v in the given address space. It
// reports whether the translation was resident (dTLB or STLB) and the
// added latency: 0-ish on a dTLB hit, the STLB fill cost on a dTLB miss
// that the STLB covers, or the full walk penalty — which also installs the
// entry at both levels.
func (t *TLB) Lookup(asid uint64, v mem.VAddr) (hit bool, extraLatency uint64) {
	vpn := v.PageNumber()
	if t.l1.touch(asid, vpn) {
		t.hits++
		return true, t.cfg.HitLatency
	}
	if t.stlb != nil && t.stlb.touch(asid, vpn) {
		t.stlbHits++
		t.l1.install(asid, vpn)
		return true, t.cfg.STLBLatency
	}
	t.misses++
	t.l1.install(asid, vpn)
	if t.stlb != nil {
		t.stlb.install(asid, vpn)
	}
	return false, t.cfg.WalkLatency
}

// Contains reports residency at either level without touching replacement
// state.
func (t *TLB) Contains(asid uint64, v mem.VAddr) bool {
	vpn := v.PageNumber()
	if t.l1.contains(asid, vpn) {
		return true
	}
	return t.stlb != nil && t.stlb.contains(asid, vpn)
}

// Warm pre-installs the translation for v at both levels without counting
// a miss — the paper's threat model assumes victim pages are TLB-resident.
func (t *TLB) Warm(asid uint64, v mem.VAddr) {
	vpn := v.PageNumber()
	if !t.l1.contains(asid, vpn) {
		t.l1.install(asid, vpn)
	}
	if t.stlb != nil && !t.stlb.contains(asid, vpn) {
		t.stlb.install(asid, vpn)
	}
}

// FlushAll invalidates every translation at both levels (a full shootdown;
// per-switch flushes are not used because entries are PCID-tagged).
func (t *TLB) FlushAll() {
	t.l1.flush()
	if t.stlb != nil {
		t.stlb.flush()
	}
}

// Stats reports cumulative dTLB hits, full misses and STLB hits.
//
// Deprecated: read tlb.hits / tlb.misses from the machine's telemetry
// registry (via RegisterMetrics); both views sample the same counters.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// STLBHits reports how many first-level misses the STLB covered.
func (t *TLB) STLBHits() uint64 { return t.stlbHits }

// ResetStats clears the hit, miss and STLB-hit counters.
func (t *TLB) ResetStats() { t.hits, t.misses, t.stlbHits = 0, 0, 0 }

// RegisterMetrics exposes the TLB counters in reg: tlb.hits, tlb.misses,
// tlb.stlb_hits. Samplers read the live counters, so snapshots always match
// Stats()/STLBHits() exactly.
func (t *TLB) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterFunc("tlb.hits", func() uint64 { return t.hits })
	reg.RegisterFunc("tlb.misses", func() uint64 { return t.misses })
	reg.RegisterFunc("tlb.stlb_hits", func() uint64 { return t.stlbHits })
}

// Audit deep-checks both levels: LRU stamps never ahead of the set clock and
// no duplicate valid (asid, vpn) pairs within a set. It returns every broken
// rule.
func (t *TLB) Audit() []error {
	errs := t.l1.audit("dtlb")
	if t.stlb != nil {
		errs = append(errs, t.stlb.audit("stlb")...)
	}
	return errs
}

func (l *level) audit(name string) []error {
	var errs []error
	for si, s := range l.sets {
		for i := range s.entries {
			if s.stamps[i] > s.clock {
				errs = append(errs, fmt.Errorf("tlb %s: set %d way %d stamp %d ahead of clock %d", name, si, i, s.stamps[i], s.clock))
			}
			if !s.entries[i].valid {
				continue
			}
			if vpnSet := s.entries[i].vpn & l.setMask; vpnSet != uint64(si) {
				errs = append(errs, fmt.Errorf("tlb %s: set %d way %d holds vpn %#x which maps to set %d", name, si, i, s.entries[i].vpn, vpnSet))
			}
			for j := i + 1; j < len(s.entries); j++ {
				if s.entries[j].valid && s.entries[j].vpn == s.entries[i].vpn && s.entries[j].asid == s.entries[i].asid {
					errs = append(errs, fmt.Errorf("tlb %s: set %d holds duplicate (asid %d, vpn %#x) in ways %d and %d", name, si, s.entries[i].asid, s.entries[i].vpn, i, j))
				}
			}
		}
	}
	return errs
}

// VisitEntries calls fn for every valid (asid, vpn) translation at either
// level, in deterministic order. The machine's TLB↔page-table coherence
// checker walks these against the address spaces' page tables.
func (t *TLB) VisitEntries(fn func(asid, vpn uint64)) {
	t.l1.visit(fn)
	if t.stlb != nil {
		t.stlb.visit(fn)
	}
}

func (l *level) visit(fn func(asid, vpn uint64)) {
	for _, s := range l.sets {
		for i := range s.entries {
			if s.entries[i].valid {
				fn(s.entries[i].asid, s.entries[i].vpn)
			}
		}
	}
}

// CorruptInsert force-installs a translation at the first level without any
// page-table backing — the desync a missed shootdown would leave behind. The
// coherence audit must flag it.
func (t *TLB) CorruptInsert(asid, vpn uint64) { t.l1.install(asid, vpn) }

// LevelSnapshot captures one translation array.
type LevelSnapshot struct {
	ASIDs  []uint64 // flattened set-major: entries
	VPNs   []uint64
	Valid  []bool
	Stamps []uint64
	Clocks []uint64 // one per set
}

// TLBSnapshot captures both levels plus counters.
type TLBSnapshot struct {
	L1, STLB LevelSnapshot // STLB empty when disabled
	Hits     uint64
	Misses   uint64
	STLBHits uint64
}

func (l *level) snapshot() LevelSnapshot {
	var snap LevelSnapshot
	for _, s := range l.sets {
		snap.Clocks = append(snap.Clocks, s.clock)
		for i := range s.entries {
			snap.ASIDs = append(snap.ASIDs, s.entries[i].asid)
			snap.VPNs = append(snap.VPNs, s.entries[i].vpn)
			snap.Valid = append(snap.Valid, s.entries[i].valid)
			snap.Stamps = append(snap.Stamps, s.stamps[i])
		}
	}
	return snap
}

func (l *level) restore(snap LevelSnapshot) error {
	ways := len(l.sets[0].entries)
	if len(snap.Clocks) != len(l.sets) || len(snap.ASIDs) != len(l.sets)*ways {
		return fmt.Errorf("tlb: snapshot geometry mismatch (%d sets x %d ways vs %d clocks, %d entries)",
			len(l.sets), ways, len(snap.Clocks), len(snap.ASIDs))
	}
	k := 0
	for si, s := range l.sets {
		s.clock = snap.Clocks[si]
		for i := range s.entries {
			s.entries[i] = entry{asid: snap.ASIDs[k], vpn: snap.VPNs[k], valid: snap.Valid[k]}
			s.stamps[i] = snap.Stamps[k]
			k++
		}
	}
	return nil
}

// Snapshot captures the TLB's complete state.
func (t *TLB) Snapshot() TLBSnapshot {
	snap := TLBSnapshot{L1: t.l1.snapshot(), Hits: t.hits, Misses: t.misses, STLBHits: t.stlbHits}
	if t.stlb != nil {
		snap.STLB = t.stlb.snapshot()
	}
	return snap
}

// Restore adopts a snapshot taken from a TLB with the same geometry.
func (t *TLB) Restore(snap TLBSnapshot) error {
	if err := t.l1.restore(snap.L1); err != nil {
		return err
	}
	if t.stlb != nil {
		if err := t.stlb.restore(snap.STLB); err != nil {
			return err
		}
	}
	t.hits, t.misses, t.stlbHits = snap.Hits, snap.Misses, snap.STLBHits
	return nil
}

// StateHash folds the TLB's complete state into a stable digest. ASIDs are
// allocated from a process-global counter, so the caller supplies normalize
// to map raw ASIDs onto process-independent values; nil means identity.
func (t *TLB) StateHash(normalize func(asid uint64) uint64) uint64 {
	if normalize == nil {
		normalize = func(a uint64) uint64 { return a }
	}
	h := statehash.New()
	t.l1.hashInto(h, normalize)
	if t.stlb != nil {
		t.stlb.hashInto(h, normalize)
	}
	h.U64(t.hits).U64(t.misses).U64(t.stlbHits)
	return h.Sum()
}

func (l *level) hashInto(h *statehash.Hash, normalize func(uint64) uint64) {
	for _, s := range l.sets {
		h.U64(s.clock)
		for i := range s.entries {
			h.Bool(s.entries[i].valid)
			if s.entries[i].valid {
				h.U64(normalize(s.entries[i].asid)).U64(s.entries[i].vpn)
			}
			h.U64(s.stamps[i])
		}
	}
}
