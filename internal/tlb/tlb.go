// Package tlb models a two-level data-TLB with PCID/ASID-tagged entries
// (translations survive context switches, as the paper's threat model
// assumes). Its role in AfterImage is the §4.3 first-touch rule: a load
// whose page misses the whole TLB spends its access walking the page table
// and does not update the IP-stride prefetcher; an access whose translation
// is resident (in either level) trains or triggers it normally.
package tlb

import (
	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// Config shapes the TLB.
type Config struct {
	Entries     int
	Ways        int
	HitLatency  uint64 // extra cycles on a TLB hit (usually folded into L1)
	WalkLatency uint64 // page-walk penalty on a miss

	// STLBEntries/STLBWays add a unified second-level TLB: a first-level
	// miss that hits the STLB costs STLBLatency instead of a full walk and
	// still counts as "TLB resident" for the prefetcher's first-touch rule
	// (the translation exists; no page-table walk installs state). Zero
	// disables the STLB.
	STLBEntries int
	STLBWays    int
	STLBLatency uint64
}

// DefaultConfig models a 64-entry, 4-way dTLB backed by a 1536-entry
// 12-way STLB with a 9-cycle fill — the Coffee Lake arrangement.
func DefaultConfig() Config {
	return Config{
		Entries: 64, Ways: 4, WalkLatency: 7,
		STLBEntries: 1536, STLBWays: 12, STLBLatency: 9,
	}
}

type entry struct {
	asid  uint64
	vpn   uint64
	valid bool
}

type tlbSet struct {
	entries []entry
	stamps  []uint64 // LRU stamps per way
	clock   uint64
}

// level is one set-associative translation array.
type level struct {
	sets    []*tlbSet
	setMask uint64
}

func newLevel(entries, ways int) *level {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	l := &level{setMask: uint64(nsets - 1)}
	l.sets = make([]*tlbSet, nsets)
	for i := range l.sets {
		l.sets[i] = &tlbSet{
			entries: make([]entry, ways),
			stamps:  make([]uint64, ways),
		}
	}
	return l
}

func (l *level) setFor(vpn uint64) *tlbSet { return l.sets[vpn&l.setMask] }

// touch looks up and refreshes an entry; it reports a hit.
func (l *level) touch(asid, vpn uint64) bool {
	s := l.setFor(vpn)
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].vpn == vpn && s.entries[i].asid == asid {
			s.clock++
			s.stamps[i] = s.clock
			return true
		}
	}
	return false
}

func (l *level) contains(asid, vpn uint64) bool {
	s := l.setFor(vpn)
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].vpn == vpn && s.entries[i].asid == asid {
			return true
		}
	}
	return false
}

func (l *level) install(asid, vpn uint64) {
	s := l.setFor(vpn)
	victim := 0
	for i := range s.entries {
		if !s.entries[i].valid {
			victim = i
			goto place
		}
	}
	for i := 1; i < len(s.entries); i++ {
		if s.stamps[i] < s.stamps[victim] {
			victim = i
		}
	}
place:
	s.clock++
	s.entries[victim] = entry{asid: asid, vpn: vpn, valid: true}
	s.stamps[victim] = s.clock
}

func (l *level) flush() {
	for _, s := range l.sets {
		for i := range s.entries {
			s.entries[i].valid = false
		}
	}
}

// TLB is the two-level translation cache keyed by (ASID, virtual page
// number). Entries from different address spaces coexist, competing only
// for capacity — the PCID behaviour of modern kernels.
type TLB struct {
	cfg      Config
	l1       *level
	stlb     *level // nil when disabled
	hits     uint64
	misses   uint64
	stlbHits uint64
}

// New builds a TLB; entries must divide evenly into ways at each level.
func New(cfg Config) *TLB {
	t := &TLB{cfg: cfg, l1: newLevel(cfg.Entries, cfg.Ways)}
	if cfg.STLBEntries > 0 {
		t.stlb = newLevel(cfg.STLBEntries, cfg.STLBWays)
	}
	return t
}

// Lookup touches the translation for v in the given address space. It
// reports whether the translation was resident (dTLB or STLB) and the
// added latency: 0-ish on a dTLB hit, the STLB fill cost on a dTLB miss
// that the STLB covers, or the full walk penalty — which also installs the
// entry at both levels.
func (t *TLB) Lookup(asid uint64, v mem.VAddr) (hit bool, extraLatency uint64) {
	vpn := v.PageNumber()
	if t.l1.touch(asid, vpn) {
		t.hits++
		return true, t.cfg.HitLatency
	}
	if t.stlb != nil && t.stlb.touch(asid, vpn) {
		t.stlbHits++
		t.l1.install(asid, vpn)
		return true, t.cfg.STLBLatency
	}
	t.misses++
	t.l1.install(asid, vpn)
	if t.stlb != nil {
		t.stlb.install(asid, vpn)
	}
	return false, t.cfg.WalkLatency
}

// Contains reports residency at either level without touching replacement
// state.
func (t *TLB) Contains(asid uint64, v mem.VAddr) bool {
	vpn := v.PageNumber()
	if t.l1.contains(asid, vpn) {
		return true
	}
	return t.stlb != nil && t.stlb.contains(asid, vpn)
}

// Warm pre-installs the translation for v at both levels without counting
// a miss — the paper's threat model assumes victim pages are TLB-resident.
func (t *TLB) Warm(asid uint64, v mem.VAddr) {
	vpn := v.PageNumber()
	if !t.l1.contains(asid, vpn) {
		t.l1.install(asid, vpn)
	}
	if t.stlb != nil && !t.stlb.contains(asid, vpn) {
		t.stlb.install(asid, vpn)
	}
}

// FlushAll invalidates every translation at both levels (a full shootdown;
// per-switch flushes are not used because entries are PCID-tagged).
func (t *TLB) FlushAll() {
	t.l1.flush()
	if t.stlb != nil {
		t.stlb.flush()
	}
}

// Stats reports cumulative dTLB hits, full misses and STLB hits.
//
// Deprecated: read tlb.hits / tlb.misses from the machine's telemetry
// registry (via RegisterMetrics); both views sample the same counters.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// STLBHits reports how many first-level misses the STLB covered.
func (t *TLB) STLBHits() uint64 { return t.stlbHits }

// ResetStats clears the hit, miss and STLB-hit counters.
func (t *TLB) ResetStats() { t.hits, t.misses, t.stlbHits = 0, 0, 0 }

// RegisterMetrics exposes the TLB counters in reg: tlb.hits, tlb.misses,
// tlb.stlb_hits. Samplers read the live counters, so snapshots always match
// Stats()/STLBHits() exactly.
func (t *TLB) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterFunc("tlb.hits", func() uint64 { return t.hits })
	reg.RegisterFunc("tlb.misses", func() uint64 { return t.misses })
	reg.RegisterFunc("tlb.stlb_hits", func() uint64 { return t.stlbHits })
}
