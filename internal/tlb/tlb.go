// Package tlb models a two-level data-TLB with PCID/ASID-tagged entries
// (translations survive context switches, as the paper's threat model
// assumes). Its role in AfterImage is the §4.3 first-touch rule: a load
// whose page misses the whole TLB spends its access walking the page table
// and does not update the IP-stride prefetcher; an access whose translation
// is resident (in either level) trains or triggers it normally.
package tlb

import (
	"fmt"

	"afterimage/internal/mem"
	"afterimage/internal/statehash"
	"afterimage/internal/telemetry"
)

// Config shapes the TLB.
type Config struct {
	Entries     int
	Ways        int
	HitLatency  uint64 // extra cycles on a TLB hit (usually folded into L1)
	WalkLatency uint64 // page-walk penalty on a miss

	// STLBEntries/STLBWays add a unified second-level TLB: a first-level
	// miss that hits the STLB costs STLBLatency instead of a full walk and
	// still counts as "TLB resident" for the prefetcher's first-touch rule
	// (the translation exists; no page-table walk installs state). Zero
	// disables the STLB.
	STLBEntries int
	STLBWays    int
	STLBLatency uint64
}

// DefaultConfig models a 64-entry, 4-way dTLB backed by a 1536-entry
// 12-way STLB with a 9-cycle fill — the Coffee Lake arrangement.
func DefaultConfig() Config {
	return Config{
		Entries: 64, Ways: 4, WalkLatency: 7,
		STLBEntries: 1536, STLBWays: 12, STLBLatency: 9,
	}
}

// level is one set-associative translation array. All per-way state lives
// in contiguous slices indexed set*ways+way (set-major, the order every
// iteration — snapshot, audit, hash, visit — has always used), so a lookup
// is index arithmetic over four flat arrays instead of chasing per-set heap
// objects.
type level struct {
	ways    int
	setMask uint64
	asids   []uint64 // [set*ways+way]
	vpns    []uint64
	valid   []bool
	stamps  []uint64 // LRU stamps per way
	clocks  []uint64 // virtual clock per set
}

func newLevel(entries, ways int) *level {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	return &level{
		ways:    ways,
		setMask: uint64(nsets - 1),
		asids:   make([]uint64, entries),
		vpns:    make([]uint64, entries),
		valid:   make([]bool, entries),
		stamps:  make([]uint64, entries),
		clocks:  make([]uint64, nsets),
	}
}

func (l *level) nsets() int { return int(l.setMask) + 1 }

// touch looks up and refreshes an entry; it reports the flat index hit.
func (l *level) touch(asid, vpn uint64) (int, bool) {
	set := int(vpn & l.setMask)
	base := set * l.ways
	vpns := l.vpns[base : base+l.ways]
	valid := l.valid[base : base+l.ways]
	asids := l.asids[base : base+l.ways]
	for w := range vpns {
		if valid[w] && vpns[w] == vpn && asids[w] == asid {
			i := base + w
			l.clocks[set]++
			l.stamps[i] = l.clocks[set]
			return i, true
		}
	}
	return 0, false
}

func (l *level) contains(asid, vpn uint64) bool {
	base := int(vpn&l.setMask) * l.ways
	vpns := l.vpns[base : base+l.ways]
	valid := l.valid[base : base+l.ways]
	asids := l.asids[base : base+l.ways]
	for w := range vpns {
		if valid[w] && vpns[w] == vpn && asids[w] == asid {
			return true
		}
	}
	return false
}

// install places the translation in its set — empty way first, else the
// LRU-stamped victim — and returns the flat index used.
func (l *level) install(asid, vpn uint64) int {
	set := int(vpn & l.setMask)
	base := set * l.ways
	victim := -1
	for w := 0; w < l.ways; w++ {
		if !l.valid[base+w] {
			victim = base + w
			break
		}
	}
	if victim < 0 {
		victim = base
		for w := 1; w < l.ways; w++ {
			if l.stamps[base+w] < l.stamps[victim] {
				victim = base + w
			}
		}
	}
	l.clocks[set]++
	l.asids[victim], l.vpns[victim], l.valid[victim] = asid, vpn, true
	l.stamps[victim] = l.clocks[set]
	return victim
}

func (l *level) flush() {
	for i := range l.valid {
		l.valid[i] = false
	}
}

// TLB is the two-level translation cache keyed by (ASID, virtual page
// number). Entries from different address spaces coexist, competing only
// for capacity — the PCID behaviour of modern kernels.
type TLB struct {
	cfg      Config
	l1       *level
	stlb     *level // nil when disabled
	hits     uint64
	misses   uint64
	stlbHits uint64

	// One-entry direct-mapped way predictor over the dTLB: the flat index
	// where (predAsid, predVpn) was last seen. It caches only a LOCATION —
	// a use re-verifies set, tag and validity and then performs the exact
	// mutations the full set scan would, so it can only skip the scan,
	// never change observable state.
	predAsid uint64
	predVpn  uint64
	predIdx  int
	predOK   bool
}

// New builds a TLB; entries must divide evenly into ways at each level.
func New(cfg Config) *TLB {
	t := &TLB{cfg: cfg, l1: newLevel(cfg.Entries, cfg.Ways)}
	if cfg.STLBEntries > 0 {
		t.stlb = newLevel(cfg.STLBEntries, cfg.STLBWays)
	}
	return t
}

// Lookup touches the translation for v in the given address space. It
// reports whether the translation was resident (dTLB or STLB) and the
// added latency: 0-ish on a dTLB hit, the STLB fill cost on a dTLB miss
// that the STLB covers, or the full walk penalty — which also installs the
// entry at both levels.
func (t *TLB) Lookup(asid uint64, v mem.VAddr) (hit bool, extraLatency uint64) {
	vpn := v.PageNumber()
	if t.predOK && t.predVpn == vpn && t.predAsid == asid {
		i := t.predIdx
		set := int(vpn & t.l1.setMask)
		// Verify the predicted slot still holds this translation in the set
		// the VPN maps to; the scan below would find exactly this way (the
		// predictor is reset whenever duplicates could be introduced).
		if i >= set*t.l1.ways && i < (set+1)*t.l1.ways &&
			t.l1.valid[i] && t.l1.vpns[i] == vpn && t.l1.asids[i] == asid {
			t.l1.clocks[set]++
			t.l1.stamps[i] = t.l1.clocks[set]
			t.hits++
			return true, t.cfg.HitLatency
		}
	}
	if i, ok := t.l1.touch(asid, vpn); ok {
		t.hits++
		t.predAsid, t.predVpn, t.predIdx, t.predOK = asid, vpn, i, true
		return true, t.cfg.HitLatency
	}
	if t.stlb != nil {
		if _, ok := t.stlb.touch(asid, vpn); ok {
			t.stlbHits++
			i := t.l1.install(asid, vpn)
			t.predAsid, t.predVpn, t.predIdx, t.predOK = asid, vpn, i, true
			return true, t.cfg.STLBLatency
		}
	}
	t.misses++
	i := t.l1.install(asid, vpn)
	t.predAsid, t.predVpn, t.predIdx, t.predOK = asid, vpn, i, true
	if t.stlb != nil {
		t.stlb.install(asid, vpn)
	}
	return false, t.cfg.WalkLatency
}

// Contains reports residency at either level without touching replacement
// state.
func (t *TLB) Contains(asid uint64, v mem.VAddr) bool {
	vpn := v.PageNumber()
	if t.l1.contains(asid, vpn) {
		return true
	}
	return t.stlb != nil && t.stlb.contains(asid, vpn)
}

// Warm pre-installs the translation for v at both levels without counting
// a miss — the paper's threat model assumes victim pages are TLB-resident.
func (t *TLB) Warm(asid uint64, v mem.VAddr) {
	vpn := v.PageNumber()
	if !t.l1.contains(asid, vpn) {
		t.l1.install(asid, vpn)
	}
	if t.stlb != nil && !t.stlb.contains(asid, vpn) {
		t.stlb.install(asid, vpn)
	}
}

// FlushAll invalidates every translation at both levels (a full shootdown;
// per-switch flushes are not used because entries are PCID-tagged).
func (t *TLB) FlushAll() {
	t.l1.flush()
	if t.stlb != nil {
		t.stlb.flush()
	}
	t.predOK = false
}

// Stats reports cumulative dTLB hits, full misses and STLB hits.
//
// Deprecated: read tlb.hits / tlb.misses from the machine's telemetry
// registry (via RegisterMetrics); both views sample the same counters.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// STLBHits reports how many first-level misses the STLB covered.
func (t *TLB) STLBHits() uint64 { return t.stlbHits }

// ResetStats clears the hit, miss and STLB-hit counters.
func (t *TLB) ResetStats() { t.hits, t.misses, t.stlbHits = 0, 0, 0 }

// RegisterMetrics exposes the TLB counters in reg: tlb.hits, tlb.misses,
// tlb.stlb_hits. Samplers read the live counters, so snapshots always match
// Stats()/STLBHits() exactly.
func (t *TLB) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterFunc("tlb.hits", func() uint64 { return t.hits })
	reg.RegisterFunc("tlb.misses", func() uint64 { return t.misses })
	reg.RegisterFunc("tlb.stlb_hits", func() uint64 { return t.stlbHits })
}

// Audit deep-checks both levels: LRU stamps never ahead of the set clock and
// no duplicate valid (asid, vpn) pairs within a set. It returns every broken
// rule.
func (t *TLB) Audit() []error {
	errs := t.l1.audit("dtlb")
	if t.stlb != nil {
		errs = append(errs, t.stlb.audit("stlb")...)
	}
	return errs
}

func (l *level) audit(name string) []error {
	var errs []error
	for si := 0; si < l.nsets(); si++ {
		base := si * l.ways
		for i := 0; i < l.ways; i++ {
			if l.stamps[base+i] > l.clocks[si] {
				errs = append(errs, fmt.Errorf("tlb %s: set %d way %d stamp %d ahead of clock %d", name, si, i, l.stamps[base+i], l.clocks[si]))
			}
			if !l.valid[base+i] {
				continue
			}
			if vpnSet := l.vpns[base+i] & l.setMask; vpnSet != uint64(si) {
				errs = append(errs, fmt.Errorf("tlb %s: set %d way %d holds vpn %#x which maps to set %d", name, si, i, l.vpns[base+i], vpnSet))
			}
			for j := i + 1; j < l.ways; j++ {
				if l.valid[base+j] && l.vpns[base+j] == l.vpns[base+i] && l.asids[base+j] == l.asids[base+i] {
					errs = append(errs, fmt.Errorf("tlb %s: set %d holds duplicate (asid %d, vpn %#x) in ways %d and %d", name, si, l.asids[base+i], l.vpns[base+i], i, j))
				}
			}
		}
	}
	return errs
}

// VisitEntries calls fn for every valid (asid, vpn) translation at either
// level, in deterministic order. The machine's TLB↔page-table coherence
// checker walks these against the address spaces' page tables.
func (t *TLB) VisitEntries(fn func(asid, vpn uint64)) {
	t.l1.visit(fn)
	if t.stlb != nil {
		t.stlb.visit(fn)
	}
}

func (l *level) visit(fn func(asid, vpn uint64)) {
	for i, v := range l.valid {
		if v {
			fn(l.asids[i], l.vpns[i])
		}
	}
}

// CorruptInsert force-installs a translation at the first level without any
// page-table backing — the desync a missed shootdown would leave behind. The
// coherence audit must flag it. It can create in-set duplicates, so the way
// predictor is reset (its verification assumes a translation occupies at
// most one way).
func (t *TLB) CorruptInsert(asid, vpn uint64) {
	t.l1.install(asid, vpn)
	t.predOK = false
}

// LevelSnapshot captures one translation array.
type LevelSnapshot struct {
	ASIDs  []uint64 // flattened set-major: entries
	VPNs   []uint64
	Valid  []bool
	Stamps []uint64
	Clocks []uint64 // one per set
}

// TLBSnapshot captures both levels plus counters.
type TLBSnapshot struct {
	L1, STLB LevelSnapshot // STLB empty when disabled
	Hits     uint64
	Misses   uint64
	STLBHits uint64
}

func (l *level) snapshot() LevelSnapshot {
	return LevelSnapshot{
		ASIDs:  append([]uint64(nil), l.asids...),
		VPNs:   append([]uint64(nil), l.vpns...),
		Valid:  append([]bool(nil), l.valid...),
		Stamps: append([]uint64(nil), l.stamps...),
		Clocks: append([]uint64(nil), l.clocks...),
	}
}

func (l *level) restore(snap LevelSnapshot) error {
	if len(snap.Clocks) != l.nsets() || len(snap.ASIDs) != len(l.asids) {
		return fmt.Errorf("tlb: snapshot geometry mismatch (%d sets x %d ways vs %d clocks, %d entries)",
			l.nsets(), l.ways, len(snap.Clocks), len(snap.ASIDs))
	}
	copy(l.asids, snap.ASIDs)
	copy(l.vpns, snap.VPNs)
	copy(l.valid, snap.Valid)
	copy(l.stamps, snap.Stamps)
	copy(l.clocks, snap.Clocks)
	return nil
}

// Snapshot captures the TLB's complete state.
func (t *TLB) Snapshot() TLBSnapshot {
	snap := TLBSnapshot{L1: t.l1.snapshot(), Hits: t.hits, Misses: t.misses, STLBHits: t.stlbHits}
	if t.stlb != nil {
		snap.STLB = t.stlb.snapshot()
	}
	return snap
}

// Restore adopts a snapshot taken from a TLB with the same geometry. The
// restored contents need not match the predictor's cached location (the
// snapshot may even be deliberately corrupted), so the predictor forgets.
func (t *TLB) Restore(snap TLBSnapshot) error {
	if err := t.l1.restore(snap.L1); err != nil {
		return err
	}
	if t.stlb != nil {
		if err := t.stlb.restore(snap.STLB); err != nil {
			return err
		}
	}
	t.hits, t.misses, t.stlbHits = snap.Hits, snap.Misses, snap.STLBHits
	t.predOK = false
	return nil
}

// StateHash folds the TLB's complete state into a stable digest. ASIDs are
// allocated from a process-global counter, so the caller supplies normalize
// to map raw ASIDs onto process-independent values; nil means identity.
func (t *TLB) StateHash(normalize func(asid uint64) uint64) uint64 {
	if normalize == nil {
		normalize = func(a uint64) uint64 { return a }
	}
	h := statehash.New()
	t.l1.hashInto(h, normalize)
	if t.stlb != nil {
		t.stlb.hashInto(h, normalize)
	}
	h.U64(t.hits).U64(t.misses).U64(t.stlbHits)
	return h.Sum()
}

func (l *level) hashInto(h *statehash.Hash, normalize func(uint64) uint64) {
	for si := 0; si < l.nsets(); si++ {
		h.U64(l.clocks[si])
		base := si * l.ways
		for i := 0; i < l.ways; i++ {
			h.Bool(l.valid[base+i])
			if l.valid[base+i] {
				h.U64(normalize(l.asids[base+i])).U64(l.vpns[base+i])
			}
			h.U64(l.stamps[base+i])
		}
	}
}
