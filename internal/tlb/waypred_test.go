package tlb

import (
	"testing"

	"afterimage/internal/mem"
)

// Boundary tests for the TLB's one-entry translation predictor: predictions
// must never survive a context switch (different ASID), a flush, a restore,
// or deliberately corrupted duplicate state, and the VPN extremes must
// behave like any other page.
func TestTLBPredictorBoundaries(t *testing.T) {
	const va = mem.VAddr(0x5555_0000_0000)

	cases := []struct {
		name string
		run  func(t *testing.T, tl *TLB)
	}{
		{"context switch misses on the other asid", func(t *testing.T, tl *TLB) {
			tl.Lookup(1, va) // walk + install
			if hit, _ := tl.Lookup(1, va); !hit {
				t.Fatal("second lookup missed")
			}
			// Same VPN, different address space: the predictor's cached slot
			// holds ASID 1 and must not leak across the switch.
			if hit, _ := tl.Lookup(2, va); hit {
				t.Fatal("asid 2 hit asid 1's translation")
			}
			if hit, _ := tl.Lookup(1, va); !hit {
				t.Fatal("asid 1 lost its translation after the switch")
			}
		}},
		{"flush kills the prediction", func(t *testing.T, tl *TLB) {
			tl.Lookup(1, va)
			if hit, _ := tl.Lookup(1, va); !hit {
				t.Fatal("warm lookup missed")
			}
			tl.FlushAll()
			if tl.predOK {
				t.Fatal("predictor survived FlushAll")
			}
			if hit, _ := tl.Lookup(1, va); hit {
				t.Fatal("hit after FlushAll")
			}
		}},
		{"restore kills the prediction", func(t *testing.T, tl *TLB) {
			empty := tl.Snapshot()
			tl.Lookup(1, va)
			tl.Lookup(1, va)
			if err := tl.Restore(empty); err != nil {
				t.Fatal(err)
			}
			if tl.predOK {
				t.Fatal("predictor survived Restore")
			}
			if hit, _ := tl.Lookup(1, va); hit {
				t.Fatal("hit in a restored-empty TLB")
			}
		}},
		{"corrupt insert resets the predictor", func(t *testing.T, tl *TLB) {
			tl.Lookup(1, va)
			tl.Lookup(1, va) // predictor now points at va's way
			// CorruptInsert can duplicate the translation within the set; the
			// predictor must be dropped so lookups keep first-way semantics.
			tl.CorruptInsert(1, va.PageNumber())
			if tl.predOK {
				t.Fatal("predictor survived CorruptInsert")
			}
			if hit, _ := tl.Lookup(1, va); !hit {
				t.Fatal("translation lost after CorruptInsert")
			}
		}},
		{"vpn zero", func(t *testing.T, tl *TLB) {
			if hit, _ := tl.Lookup(1, 0); hit {
				t.Fatal("cold hit at vpn 0")
			}
			if hit, _ := tl.Lookup(1, mem.VAddr(mem.PageSize-1)); !hit {
				t.Fatal("same-page offset missed at vpn 0")
			}
		}},
		{"top of address space", func(t *testing.T, tl *TLB) {
			top := mem.VAddr(^uint64(0) &^ (mem.PageSize - 1))
			tl.Lookup(7, top)
			if hit, _ := tl.Lookup(7, top+mem.VAddr(mem.PageSize-1)); !hit {
				t.Fatal("top-page translation missed")
			}
			// The page below must be distinct despite sharing the set region.
			if hit, _ := tl.Lookup(7, top-mem.VAddr(mem.PageSize)); hit {
				t.Fatal("adjacent page aliased the top page")
			}
		}},
		{"eviction invalidates the prediction", func(t *testing.T, tl *TLB) {
			cfg := Config{Entries: 8, Ways: 2, WalkLatency: 7} // no STLB backing
			tl = New(cfg)
			tl.Lookup(1, va)
			tl.Lookup(1, va)
			// Thrash va's set until its translation is LRU-evicted.
			nsets := uint64(cfg.Entries / cfg.Ways)
			for i := uint64(1); i <= 4; i++ {
				tl.Lookup(1, va+mem.VAddr(i*nsets*mem.PageSize))
			}
			if hit, _ := tl.Lookup(1, va); hit {
				t.Fatal("predictor hit an evicted translation")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, New(DefaultConfig()))
		})
	}
}
