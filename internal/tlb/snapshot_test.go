package tlb

import (
	"testing"

	"afterimage/internal/mem"
)

func TestTLBSnapshotRoundTrip(t *testing.T) {
	tl := New(DefaultConfig())
	for i := uint64(0); i < 48; i++ {
		tl.Lookup(1+i%3, mem.VAddr(0x5000_0000+i*mem.PageSize))
	}
	if errs := tl.Audit(); len(errs) != 0 {
		t.Fatalf("populated TLB fails audit: %v", errs)
	}
	snap := tl.Snapshot()
	h := tl.StateHash(nil)

	for i := uint64(0); i < 16; i++ {
		tl.Lookup(7, mem.VAddr(0x9000_0000+i*mem.PageSize))
	}
	if tl.StateHash(nil) == h {
		t.Fatal("hash unchanged after mutation")
	}
	if err := tl.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := tl.StateHash(nil); got != h {
		t.Fatalf("restored hash %#x, want %#x", got, h)
	}
	if errs := tl.Audit(); len(errs) != 0 {
		t.Fatalf("restored TLB fails audit: %v", errs)
	}
}

// TestTLBStateHashNormalization: two TLBs holding the same translations
// under different raw ASIDs hash identically once the normalizer maps them
// to the same stable IDs — the property that makes machine hashes
// comparable across process-global ASID allocation order.
func TestTLBStateHashNormalization(t *testing.T) {
	a, b := New(DefaultConfig()), New(DefaultConfig())
	for i := uint64(0); i < 8; i++ {
		a.Lookup(101, mem.VAddr(0x5000_0000+i*mem.PageSize))
		b.Lookup(202, mem.VAddr(0x5000_0000+i*mem.PageSize))
	}
	if a.StateHash(nil) == b.StateHash(nil) {
		t.Fatal("distinct raw ASIDs hashed identically without normalization")
	}
	norm := func(want uint64) func(uint64) uint64 {
		return func(asid uint64) uint64 {
			if asid == want {
				return 1
			}
			return asid
		}
	}
	if a.StateHash(norm(101)) != b.StateHash(norm(202)) {
		t.Fatal("normalized hashes differ for identical translation state")
	}
}

func TestTLBRestoreRejectsGeometryMismatch(t *testing.T) {
	tl := New(DefaultConfig())
	snap := tl.Snapshot()
	other := New(Config{Entries: 8, Ways: 2, WalkLatency: 7})
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot with mismatched geometry")
	}
}
