package tlb

import (
	"testing"

	"afterimage/internal/mem"
)

func TestHitAfterMiss(t *testing.T) {
	tl := New(DefaultConfig())
	v := mem.VAddr(0x5000)
	hit, lat := tl.Lookup(1, v)
	if hit || lat != DefaultConfig().WalkLatency {
		t.Fatalf("first lookup: hit=%v lat=%d", hit, lat)
	}
	hit, lat = tl.Lookup(1, v)
	if !hit || lat != 0 {
		t.Fatalf("second lookup: hit=%v lat=%d", hit, lat)
	}
}

func TestSamePageDifferentOffsets(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Lookup(1, 0x7123)
	if hit, _ := tl.Lookup(1, 0x7FFF); !hit {
		t.Fatal("same-page offset missed")
	}
	if hit, _ := tl.Lookup(1, 0x8000); hit {
		t.Fatal("next page hit spuriously")
	}
}

func TestWarmInstallsWithoutMissCount(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Warm(1, 0x9000)
	if _, misses := tl.Stats(); misses != 0 {
		t.Fatalf("Warm counted a miss")
	}
	if hit, _ := tl.Lookup(1, 0x9000); !hit {
		t.Fatal("warmed page missed")
	}
	if !tl.Contains(1, 0x9000) {
		t.Fatal("Contains false after warm")
	}
}

func TestFlushAll(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Warm(1, 0x9000)
	tl.FlushAll()
	if tl.Contains(1, 0x9000) {
		t.Fatal("entry survived FlushAll")
	}
}

func TestCapacityEviction(t *testing.T) {
	cfg := Config{Entries: 8, Ways: 2, WalkLatency: 7}
	tl := New(cfg)
	// Fill one set (pages congruent mod 4 sets) beyond capacity.
	for i := uint64(0); i < 3; i++ {
		tl.Warm(1, mem.VAddr(i*4*mem.PageSize))
	}
	evicted := 0
	for i := uint64(0); i < 3; i++ {
		if !tl.Contains(1, mem.VAddr(i*4*mem.PageSize)) {
			evicted++
		}
	}
	if evicted != 1 {
		t.Fatalf("evicted %d entries from a 2-way set holding 3, want 1", evicted)
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := Config{Entries: 8, Ways: 2, WalkLatency: 7}
	tl := New(cfg)
	a := mem.VAddr(0 * 4 * mem.PageSize)
	b := mem.VAddr(1 * 4 * mem.PageSize)
	c := mem.VAddr(2 * 4 * mem.PageSize)
	tl.Lookup(1, a)
	tl.Lookup(1, b)
	tl.Lookup(1, a) // a MRU
	tl.Lookup(1, c) // evicts b
	if !tl.Contains(1, a) || tl.Contains(1, b) || !tl.Contains(1, c) {
		t.Fatalf("LRU violated: a=%v b=%v c=%v", tl.Contains(1, a), tl.Contains(1, b), tl.Contains(1, c))
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	New(Config{Entries: 7, Ways: 2})
}

func TestSTLBCoversL1Evictions(t *testing.T) {
	cfg := Config{Entries: 8, Ways: 2, WalkLatency: 7, STLBEntries: 64, STLBWays: 4, STLBLatency: 9}
	tl := New(cfg)
	// Three pages congruent in the 4-set dTLB: the third evicts the first
	// from the dTLB, but the STLB still covers it.
	a := mem.VAddr(0 * 4 * mem.PageSize)
	b := mem.VAddr(1 * 4 * mem.PageSize)
	c := mem.VAddr(2 * 4 * mem.PageSize)
	tl.Lookup(1, a)
	tl.Lookup(1, b)
	tl.Lookup(1, c) // a evicted from dTLB
	hit, lat := tl.Lookup(1, a)
	if !hit {
		t.Fatal("STLB did not cover a dTLB eviction")
	}
	if lat != cfg.STLBLatency {
		t.Fatalf("STLB hit latency = %d, want %d", lat, cfg.STLBLatency)
	}
	if tl.STLBHits() != 1 {
		t.Fatalf("STLBHits = %d", tl.STLBHits())
	}
}

func TestSTLBDisabledFallsBackToWalk(t *testing.T) {
	cfg := Config{Entries: 8, Ways: 2, WalkLatency: 7}
	tl := New(cfg)
	a := mem.VAddr(0 * 4 * mem.PageSize)
	tl.Lookup(1, a)
	tl.Lookup(1, mem.VAddr(1*4*mem.PageSize))
	tl.Lookup(1, mem.VAddr(2*4*mem.PageSize))
	if hit, lat := tl.Lookup(1, a); hit || lat != cfg.WalkLatency {
		t.Fatalf("no-STLB eviction: hit=%v lat=%d", hit, lat)
	}
}

func TestSTLBFlushedByFlushAll(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Warm(1, 0x9000)
	tl.FlushAll()
	if tl.Contains(1, 0x9000) {
		t.Fatal("translation survived FlushAll with STLB enabled")
	}
}

func TestDefaultConfigHasSTLB(t *testing.T) {
	if DefaultConfig().STLBEntries != 1536 {
		t.Fatal("default config lost its STLB")
	}
}
