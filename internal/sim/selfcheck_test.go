package sim

import (
	"strings"
	"testing"

	"afterimage/internal/mem"
)

// warmMachine boots a noisy Coffee Lake machine and runs a small direct-env
// workload that populates every audited component: cache lines at all
// levels, TLB entries, and a trained (and fired) IP-stride entry.
func warmMachine(t *testing.T) (*Machine, *Env, *mem.Mapping) {
	t.Helper()
	m := NewMachine(CoffeeLake(1))
	env := m.Direct(m.NewProcess("attacker"))
	buf := env.Mmap(4*mem.PageSize, mem.MapLocked)
	for i := 0; i < 3; i++ {
		env.Load(0x40_0100, buf.Base+mem.VAddr(i*7*mem.LineSize))
	}
	for i := 0; i < 8; i++ {
		env.Load(0x40_0200+uint64(i), buf.Base+mem.VAddr(2*mem.PageSize+i*mem.LineSize))
	}
	return m, env, buf
}

func TestAuditCleanMachine(t *testing.T) {
	m, _, _ := warmMachine(t)
	if err := m.Audit(); err != nil {
		t.Fatalf("clean machine fails audit: %v", err)
	}
	if v := m.AuditViolations(); len(v) != 0 {
		t.Fatalf("clean audit left recorded violations: %v", v)
	}
	if comps := m.AuditComponents(); len(comps) < 4 {
		t.Fatalf("registry has %d checkers, want >= 4 (%v)", len(comps), comps)
	}
}

// corruptionCases enumerates every corruption class the fault engine can
// inject — plus the TLB desync — with the audited component each names.
// Shared between the fresh-machine and forked-machine selfcheck suites.
var corruptionCases = []struct {
	name      string
	corrupt   func(t *testing.T, m *Machine)
	component string
}{
	{"stride-overflow", func(t *testing.T, m *Machine) {
		m.Pref.IPStride.CorruptStride(0, m.Cfg.IPStride.MaxStrideBytes+512)
	}, "prefetcher"},
	{"confidence-out-of-range", func(t *testing.T, m *Machine) {
		m.Pref.IPStride.CorruptConfidence(1, m.Cfg.IPStride.MaxConfidence+2)
	}, "prefetcher"},
	{"plru-all-ones", func(t *testing.T, m *Machine) {
		if !m.Pref.IPStride.CorruptPLRU() {
			t.Skip("prefetcher policy not Bit-PLRU")
		}
	}, "prefetcher"},
	{"cross-frame-prefetch", func(t *testing.T, m *Machine) {
		m.Pref.IPStride.CorruptCrossFrame()
	}, "prefetcher"},
	{"inclusivity-break", func(t *testing.T, m *Machine) {
		if !m.Mem.CorruptInclusivity() {
			t.Fatal("no L1 line to corrupt")
		}
	}, "cache"},
	{"tlb-desync", func(t *testing.T, m *Machine) {
		m.TLB.CorruptInsert(m.Kernel.AS.ID, 0x3) // VPN no space ever maps
	}, "tlb"},
}

// auditMustCatch runs one corruption class against the machine and checks
// the audit surfaces it as a typed FaultCorruption naming the component.
func auditMustCatch(t *testing.T, m *Machine, tc struct {
	name      string
	corrupt   func(t *testing.T, m *Machine)
	component string
}) {
	t.Helper()
	if err := m.Audit(); err != nil {
		t.Fatalf("pre-corruption audit dirty: %v", err)
	}
	tc.corrupt(t, m)
	err := m.Audit()
	if err == nil {
		t.Fatal("audit missed the corruption")
	}
	f, ok := AsFault(err)
	if !ok {
		t.Fatalf("audit error not a SimFault: %v", err)
	}
	if f.Kind != FaultCorruption {
		t.Fatalf("fault kind %v, want corruption", f.Kind)
	}
	if !strings.Contains(err.Error(), tc.component) {
		t.Errorf("fault %q does not name component %q", err, tc.component)
	}
}

// TestAuditCatchesCorruptionClasses: every corruption class is caught by
// Machine.Audit on a fresh warmed machine.
func TestAuditCatchesCorruptionClasses(t *testing.T) {
	for _, tc := range corruptionCases {
		t.Run(tc.name, func(t *testing.T) {
			m, _, _ := warmMachine(t)
			auditMustCatch(t, m, tc)
		})
	}
}

// TestAuditCadenceThrowsOnTaskGoroutine: with AuditEvery=1, state corrupted
// mid-run is detected at the next domain switch and the fault surfaces
// through RunChecked — on the task, not the scheduler goroutine.
func TestAuditCadenceThrowsOnTaskGoroutine(t *testing.T) {
	m := NewMachine(Quiet(CoffeeLake(1)))
	m.SetAuditEvery(1)
	p := m.NewProcess("p")
	buf := m.Direct(p).Mmap(mem.PageSize, mem.MapLocked)
	m.Spawn(p, "corruptor", func(e *Env) {
		e.Load(0x100, buf.Base)
		m.Pref.IPStride.CorruptStride(0, m.Cfg.IPStride.MaxStrideBytes+512)
		for i := 0; i < 50; i++ {
			e.Yield()
			e.Load(0x101, buf.Base+mem.VAddr(i%8*mem.LineSize))
		}
	})
	m.Spawn(p, "bystander", func(e *Env) {
		for i := 0; i < 50; i++ {
			e.Yield()
		}
	})
	_, err := m.RunChecked()
	if err == nil {
		t.Fatal("cadence audit did not surface the corruption")
	}
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultCorruption {
		t.Fatalf("got %v, want a corruption SimFault", err)
	}
}

// TestAuditCadenceIsReadOnly: a clean run with the cadence enabled ends in
// exactly the state a cadence-free run reaches — audits never perturb.
func TestAuditCadenceIsReadOnly(t *testing.T) {
	run := func(every int) uint64 {
		m := NewMachine(CoffeeLake(7))
		m.SetAuditEvery(every)
		p := m.NewProcess("p")
		buf := m.Direct(p).Mmap(mem.PageSize, mem.MapLocked)
		for task := 0; task < 2; task++ {
			task := task
			m.Spawn(p, "t", func(e *Env) {
				for i := 0; i < 30; i++ {
					e.Load(0x200+uint64(task), buf.Base+mem.VAddr(i%16*mem.LineSize))
					e.Yield()
				}
			})
		}
		m.Run()
		return m.StateHash()
	}
	if off, on := run(0), run(1); off != on {
		t.Fatalf("cadence changed the final state: %#x (off) vs %#x (every=1)", off, on)
	}
}

func TestMachineSnapshotRoundTrip(t *testing.T) {
	m, env, buf := warmMachine(t)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	h := m.StateHash()

	// Diverge — no Mmap here: address spaces and physical frames are not
	// part of a machine snapshot, only re-derivable microarchitectural and
	// clock state is.
	w2 := func() {
		for i := 0; i < 12; i++ {
			env.Load(0x40_0300, buf.Base+mem.VAddr(3*mem.PageSize+i%5*3*mem.LineSize))
		}
	}
	w2()
	h2 := m.StateHash()
	if h2 == h {
		t.Fatal("hash unchanged after extra workload")
	}

	if err := m.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := m.StateHash(); got != h {
		t.Fatalf("restored hash %#x, want %#x", got, h)
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("restored machine fails audit: %v", err)
	}

	// Replaying the same continuation from the restored state reproduces
	// the diverged hash exactly — the property the replay harness rests on.
	w2()
	if got := m.StateHash(); got != h2 {
		t.Fatalf("replayed continuation hash %#x, want %#x", got, h2)
	}
}

// TestStateHashComparableAcrossMachines: two machines with the same seed
// and workload hash identically even though their raw ASIDs differ (the
// process-global allocator keeps counting) — the normalization contract.
func TestStateHashComparableAcrossMachines(t *testing.T) {
	build := func() *Machine {
		m, _, _ := warmMachine(t)
		return m
	}
	a, b := build(), build()
	if a.Kernel.AS.ID == b.Kernel.AS.ID {
		t.Fatal("test broken: both machines share raw ASIDs")
	}
	ha, hb := a.ComponentHashes(), b.ComponentHashes()
	for name, va := range ha {
		if vb, ok := hb[name]; !ok || va != vb {
			t.Errorf("component %s: %#x vs %#x", name, va, vb)
		}
	}
	if a.StateHash() != b.StateHash() {
		t.Fatal("machine hashes differ for identical seed and workload")
	}
}

func TestSnapshotRefusedWhileRunning(t *testing.T) {
	m := NewMachine(Quiet(CoffeeLake(1)))
	p := m.NewProcess("p")
	var snapErr, restoreErr error
	m.Spawn(p, "t", func(e *Env) {
		_, snapErr = m.Snapshot()
		restoreErr = m.Restore(&MachineSnapshot{})
	})
	m.Run()
	for _, err := range []error{snapErr, restoreErr} {
		f, ok := AsFault(err)
		if !ok || f.Kind != FaultAPIMisuse {
			t.Fatalf("snapshot/restore while running: got %v, want api-misuse fault", err)
		}
	}
}

// TestStateHashGolden pins the full-state digest of a fixed seed and
// workload. A change here without an intentional simulator change is a
// determinism regression; an intentional change must update the constant
// (and invalidates recorded replay checkpoints).
func TestStateHashGolden(t *testing.T) {
	m, _, _ := warmMachine(t)
	// Updated when statehash moved to word-granularity FNV folding (the
	// octet fold dominated sweep-point cost); the digest definition change
	// was intentional and invalidates checkpoints recorded before it.
	const golden = uint64(0x57f7191f26856d34)
	got := m.StateHash()
	if got != golden {
		t.Fatalf("state hash %#x, want golden %#x", got, golden)
	}
}
