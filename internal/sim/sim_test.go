package sim

import (
	"testing"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
)

func quietMachine() *Machine { return NewMachine(Quiet(CoffeeLake(1))) }

func TestLoadLatencyLevels(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("p")
	env := m.Direct(p)
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	cold := env.Load(0x100, buf.Base)
	warm := env.Load(0x101, buf.Base)
	if cold <= warm {
		t.Fatalf("cold=%d warm=%d", cold, warm)
	}
	if warm != m.Cfg.Hierarchy.Lat.L1+1 {
		t.Fatalf("warm latency = %d, want L1+issue", warm)
	}
}

func TestTimeLoadThresholdSeparation(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("p")
	env := m.Direct(p)
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	miss := env.TimeLoad(0x100, buf.Base)
	hit := env.TimeLoad(0x101, buf.Base)
	thr := env.HitThreshold()
	if hit >= thr {
		t.Fatalf("hit %d above threshold %d", hit, thr)
	}
	if miss < thr {
		t.Fatalf("miss %d below threshold %d", miss, thr)
	}
}

func TestFlushEvictsLine(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	env.Load(0x100, buf.Base)
	if !env.Cached(buf.Base) {
		t.Fatal("line not cached after load")
	}
	env.Flush(buf.Base)
	if env.Cached(buf.Base) {
		t.Fatal("line cached after clflush")
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	last := env.Now()
	for i := 0; i < 10; i++ {
		env.Load(0x100, buf.Base+mem.VAddr(i*64))
		if env.Now() <= last {
			t.Fatal("clock did not advance")
		}
		last = env.Now()
	}
}

func TestSchedulerRoundRobinDeterministic(t *testing.T) {
	run := func() (order []string, cycles uint64) {
		m := quietMachine()
		p1 := m.NewProcess("a")
		p2 := m.NewProcess("b")
		body := func(name string) func(*Env) {
			return func(e *Env) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					e.Yield()
				}
			}
		}
		m.Spawn(p1, "t1", body("a"))
		m.Spawn(p2, "t2", body("b"))
		cycles = m.Run()
		return order, cycles
	}
	o1, c1 := run()
	o2, c2 := run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(o1) != len(want) {
		t.Fatalf("order %v", o1)
	}
	for i := range want {
		if o1[i] != want[i] {
			t.Fatalf("order %v, want %v", o1, want)
		}
	}
	if c1 != c2 {
		t.Fatalf("nondeterministic cycles: %d vs %d", c1, c2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestProcessSwitchKeepsPCIDTaggedTLB(t *testing.T) {
	m := NewMachine(CoffeeLake(2))
	p1 := m.NewProcess("a")
	p2 := m.NewProcess("b")
	var survived, crossVisible bool
	var base mem.VAddr
	m.Spawn(p1, "t1", func(e *Env) {
		buf := e.Mmap(mem.PageSize, mem.MapLocked)
		base = buf.Base
		e.WarmTLB(buf.Base)
		e.Yield() // PCID-tagged entries survive the switch
		survived = m.TLB.Contains(p1.AS.ID, buf.Base)
	})
	m.Spawn(p2, "t2", func(e *Env) {
		// The same virtual address under another ASID must not hit.
		crossVisible = m.TLB.Contains(p2.AS.ID, base)
		e.Yield()
	})
	m.Run()
	if !survived {
		t.Fatal("PCID-tagged TLB entry lost across a process switch")
	}
	if crossVisible {
		t.Fatal("TLB entry visible under a foreign ASID")
	}
	if m.DomainSwitches() == 0 {
		t.Fatal("no domain switches counted")
	}
}

func TestSyscallRunsInKernelDomain(t *testing.T) {
	m := quietMachine()
	var dom Domain
	var pid int
	m.RegisterSyscall(333, func(e *Env, args ...uint64) uint64 {
		dom = e.Domain()
		pid = e.PID()
		return 42
	})
	env := m.Direct(m.NewProcess("p"))
	if got := env.Syscall(333); got != 42 {
		t.Fatalf("syscall returned %d", got)
	}
	if dom != DomainKernel || pid != KernelPID {
		t.Fatalf("handler ran as %v pid %d", dom, pid)
	}
}

func TestSyscallLoadUserTranslatesCallerSpace(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapShared)
	env.WarmTLB(buf.Base)
	m.RegisterSyscall(1, func(e *Env, args ...uint64) uint64 {
		e.LoadUser(0xffffffff81000040, mem.VAddr(args[0]))
		return 0
	})
	env.Syscall(1, uint64(buf.Base))
	if !env.Cached(buf.Base) {
		t.Fatal("kernel's user-space load did not cache the user line")
	}
}

func TestUnknownSyscallPanics(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	env.Syscall(999)
}

func TestSegfaultPanics(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	env.Load(0x1, 0xdeadbeef)
}

// TestSGXPrefetchSurvivesExit reproduces §4.6: strided loads inside the
// enclave trigger the shared prefetcher, and the prefetched line is still a
// cache hit in the untrusted zone after EEXIT.
func TestSGXPrefetchSurvivesExit(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	stride := mem.VAddr(5 * 64)
	var last mem.VAddr
	env.EnclaveCall(func(ee *Env) {
		if ee.Domain() != DomainEnclave {
			t.Fatal("not in enclave domain")
		}
		for i := 0; i < 8; i++ {
			last = buf.Base + mem.VAddr(i)*stride
			ee.Load(0x7ff0_0000_0010, last)
		}
	})
	target := last + stride
	if lat := env.TimeLoad(0x33, target); lat >= env.HitThreshold() {
		t.Fatalf("prefetched enclave line missed after exit: %d cycles", lat)
	}
}

func TestSecondsConversion(t *testing.T) {
	m := quietMachine()
	if got := m.Seconds(3_000_000_000); got != 1.0 {
		t.Fatalf("3G cycles at 3GHz = %v s", got)
	}
}

func TestQuietConfigSuppressesNoise(t *testing.T) {
	cfg := Quiet(CoffeeLake(1))
	if cfg.Noise.KernelLines != 0 || cfg.Noise.KernelIPLoads != 0 {
		t.Fatal("Quiet kept kernel noise")
	}
}

func TestTable2Configs(t *testing.T) {
	cl := CoffeeLake(1)
	hw := Haswell(1)
	if cl.Cores != 8 || hw.Cores != 4 {
		t.Fatal("core counts do not match Table 2")
	}
	if cl.Hierarchy.LLC.SizeBytes != 12<<20 || hw.Hierarchy.LLC.SizeBytes != 8<<20 {
		t.Fatal("LLC sizes do not match Table 2")
	}
	if cl.ASLRSeed == 0 || hw.ASLRSeed == 0 {
		t.Fatal("ASLR must be enabled as in Table 2")
	}
	for _, cfg := range []Config{cl, hw} {
		m := NewMachine(cfg)
		if m.Mem.LLC.NumSlices() != cfg.Cores {
			t.Fatalf("%s: slices=%d, want one per core", cfg.Name, m.Mem.LLC.NumSlices())
		}
	}
}

func TestMitigationFlushOnSwitch(t *testing.T) {
	cfg := Quiet(CoffeeLake(3))
	cfg.FlushPrefetcherOnSwitch = true
	m := NewMachine(cfg)
	p1 := m.NewProcess("a")
	p2 := m.NewProcess("b")
	var entriesAfter int
	m.Spawn(p1, "t1", func(e *Env) {
		buf := e.Mmap(mem.PageSize, mem.MapLocked)
		e.WarmTLB(buf.Base)
		for i := 0; i < 4; i++ {
			e.Load(0x42, buf.Base+mem.VAddr(i*7*64))
		}
		e.Yield()
	})
	m.Spawn(p2, "t2", func(e *Env) {
		for _, en := range m.Pref.IPStride.Entries() {
			if en.Valid {
				entriesAfter++
			}
		}
	})
	m.Run()
	if entriesAfter != 0 {
		t.Fatalf("%d prefetcher entries survived a mitigated switch", entriesAfter)
	}
}

func TestDomainStrings(t *testing.T) {
	for _, d := range []Domain{DomainUser, DomainKernel, DomainEnclave} {
		if d.String() == "" {
			t.Fatal("empty domain string")
		}
	}
}

func TestProbeOracleMatchesLatency(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	if env.Probe(buf.Base) != cache.LevelDRAM {
		t.Fatal("cold probe not DRAM")
	}
	env.Load(0x9, buf.Base)
	if env.Probe(buf.Base) != cache.LevelL1 {
		t.Fatal("warm probe not L1")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	perm := env.Shuffle(64)
	seen := make([]bool, 64)
	for _, v := range perm {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
}

func TestSyscallNoiseDisturbsPrefetcher(t *testing.T) {
	m := NewMachine(CoffeeLake(5)) // noisy config
	m.RegisterSyscall(7, func(e *Env, args ...uint64) uint64 { return 0 })
	env := m.Direct(m.NewProcess("p"))
	before := m.Pref.IPStride.Stats().Allocs
	for i := 0; i < 4; i++ {
		env.Syscall(7)
	}
	if after := m.Pref.IPStride.Stats().Allocs; after == before {
		t.Fatal("syscall path produced no prefetcher activity (noise model dead)")
	}
}

func TestQuietSyscallIsSilent(t *testing.T) {
	m := quietMachine()
	m.RegisterSyscall(7, func(e *Env, args ...uint64) uint64 { return 0 })
	env := m.Direct(m.NewProcess("p"))
	before := m.Pref.IPStride.Stats().Allocs
	env.Syscall(7)
	if after := m.Pref.IPStride.Stats().Allocs; after != before {
		t.Fatal("quiet machine's syscall touched the prefetcher")
	}
}

func TestFlushRange(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	for i := 0; i < 4; i++ {
		env.Load(0x9, buf.Base+mem.VAddr(i*64))
	}
	env.FlushRange(buf.Base, 4*64)
	for i := 0; i < 4; i++ {
		if env.Cached(buf.Base + mem.VAddr(i*64)) {
			t.Fatalf("line %d survived FlushRange", i)
		}
	}
}

func TestLoadUserOutsideKernelPanics(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	env.LoadUser(0x1, 0x1000)
}

func TestDirectYieldAdvancesTime(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	t0 := env.Now()
	env.Yield()
	if env.Now() <= t0 {
		t.Fatal("direct yield did not advance the clock")
	}
}

func TestEnclavePIDMatchesProcess(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("app")
	env := m.Direct(p)
	var pid int
	env.EnclaveCall(func(e *Env) { pid = e.PID() })
	if pid != p.PID {
		t.Fatalf("enclave PID %d, want %d (prefetcher sharing per §4.6)", pid, p.PID)
	}
}

// TestRandomScheduleInvariants property-tests the machine under random
// attacker/victim-style op sequences: the clock is monotone, no operation
// panics on mapped memory, and two identical machines stay in lock-step.
func TestRandomScheduleInvariants(t *testing.T) {
	run := func(seed int64) uint64 {
		m := NewMachine(CoffeeLake(seed))
		pa := m.NewProcess("a")
		pb := m.NewProcess("b")
		bufA := m.Direct(pa).Mmap(4*mem.PageSize, mem.MapLocked)
		bufB := m.Direct(pb).Mmap(4*mem.PageSize, mem.MapLocked)
		body := func(buf mem.VAddr, ipBase uint64) func(*Env) {
			return func(e *Env) {
				last := e.Now()
				for i := 0; i < 200; i++ {
					// Deterministic pseudo-random op mix derived from i.
					op := (i*2654435761 + int(ipBase)) % 5
					addr := buf + mem.VAddr((i*37%256)*64)
					switch op {
					case 0:
						e.WarmTLB(addr)
						e.Load(ipBase+uint64(i%256), addr)
					case 1:
						e.TimeLoad(ipBase+uint64(i%16), addr)
					case 2:
						e.Flush(addr)
					case 3:
						e.Fence()
					default:
						e.Yield()
					}
					if e.Now() < last {
						t.Error("clock went backwards")
						return
					}
					last = e.Now()
				}
			}
		}
		m.Spawn(pa, "a", body(bufA.Base, 0x1000))
		m.Spawn(pb, "b", body(bufB.Base, 0x2000))
		m.Run()
		return m.Now()
	}
	for seed := int64(0); seed < 5; seed++ {
		c1 := run(seed)
		c2 := run(seed)
		if c1 != c2 {
			t.Fatalf("seed %d: nondeterministic final clock %d vs %d", seed, c1, c2)
		}
	}
}

// TestSMTSliceGranularity checks the implicit interleave fires at the
// configured operation count.
func TestSMTSliceGranularity(t *testing.T) {
	cfg := Quiet(CoffeeLake(6))
	cfg.SMT.Enabled = true
	cfg.SMT.OpsPerSlice = 3
	m := NewMachine(cfg)
	pa := m.NewProcess("a")
	pb := m.NewProcess("b")
	bufA := m.Direct(pa).Mmap(mem.PageSize, mem.MapLocked)
	var order []string
	m.Spawn(pa, "a", func(e *Env) {
		e.WarmTLB(bufA.Base)
		for i := 0; i < 9; i++ {
			order = append(order, "a")
			e.Load(0x1, bufA.Base+mem.VAddr(i*64))
		}
	})
	m.Spawn(pb, "b", func(e *Env) {
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			e.Sleep(10)
		}
	})
	m.Run()
	// With 3 ops per slice, task a runs 3 loads, then b runs its 3 sleeps
	// (its whole body), then a finishes alone.
	want := []string{"a", "a", "a", "b", "b", "b", "a", "a", "a", "a", "a", "a"}
	if len(order) != len(want) {
		t.Fatalf("interleave %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleave %v, want %v", order, want)
		}
	}
}
