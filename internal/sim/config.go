// Package sim is the execution engine of the AfterImage simulator: a cycle-
// counting single-logical-core machine with an inclusive cache hierarchy, a
// dTLB, the four hardware prefetchers, cooperative threads and processes, a
// kernel with syscalls, an SGX-style enclave domain, and a context-switch
// noise model. Attacker and victim code are plain Go functions driven
// through an Env, whose every operation advances the simulated clock and
// touches the simulated microarchitecture.
package sim

import (
	"afterimage/internal/cache"
	"afterimage/internal/mem"
	"afterimage/internal/prefetcher"
	"afterimage/internal/tlb"
)

// NoiseConfig models the microarchitectural pollution caused by domain
// switches (§5.1 and §7.2 observe that context switches touch over half of
// the eviction sets and disturb the 24-entry prefetcher table).
type NoiseConfig struct {
	// ProcessSwitchCycles is the direct cost of a process context switch.
	ProcessSwitchCycles uint64
	// ThreadSwitchCycles is the (smaller) cost of a same-process switch.
	ThreadSwitchCycles uint64
	// KernelLines is how many scheduler-owned cache lines a process switch
	// touches (polluting LLC sets).
	KernelLines int
	// KernelIPLoads is how many of those loads also pass through the
	// prefetcher with distinct kernel IPs, disturbing history entries.
	KernelIPLoads int
	// ThreadKernelLines / ThreadKernelIPLoads are the same for same-process
	// (sched_yield style) switches.
	ThreadKernelLines   int
	ThreadKernelIPLoads int
	// SyscallCycles is the bare user→kernel→user round-trip cost.
	SyscallCycles uint64
	// SyscallKernelLines / SyscallKernelIPLoads model the kernel entry
	// path's own memory activity (entry trampolines, audit, accounting),
	// which pollutes caches and occasionally the prefetcher — the noise
	// behind Variant 2's 91 % (vs. cross-thread's 99 %) success rate.
	SyscallKernelLines   int
	SyscallKernelIPLoads int
	// EnclaveSwitchCycles is the EENTER/EEXIT round-trip cost.
	EnclaveSwitchCycles uint64
}

// SMTConfig enables simultaneous-multithreading co-residence: tasks share
// the logical core at instruction granularity instead of scheduling-quantum
// granularity. §6.2 lists SMT as an alternative synchronisation channel for
// the attacker — no sched_yield cooperation from the victim is needed.
type SMTConfig struct {
	Enabled bool
	// OpsPerSlice is how many memory operations a task executes before the
	// hardware thread implicitly hands over (fetch-interleaving model).
	OpsPerSlice int
}

// MeasureConfig models timing-measurement overheads (serialising rdtscp
// pairs) and jitter.
type MeasureConfig struct {
	Overhead     uint64 // constant added to every timed load
	JitterSpan   uint64 // uniform jitter in [0, JitterSpan)
	HitThreshold uint64 // latency below this is treated as an LLC-or-better hit
}

// Config is the full machine description. Table 2 of the paper maps to the
// Haswell and CoffeeLake constructors.
type Config struct {
	Name      string
	Cores     int
	GHz       float64
	Hierarchy cache.HierarchyConfig
	TLB       tlb.Config
	IPStride  prefetcher.IPStrideConfig
	// Noise prefetchers on/off (§7.1: they stay enabled on real machines;
	// the attack chooses strides > 4 lines to sidestep them).
	DCUEnabled, DPLEnabled, StreamerEnabled bool
	Noise                                   NoiseConfig
	Measure                                 MeasureConfig
	SMT                                     SMTConfig
	PhysMem                                 uint64
	ASLRSeed                                int64 // 0 disables ASLR (the paper keeps it enabled; so do we)
	Seed                                    int64 // master seed for jitter and noise
	// FlushPrefetcherOnSwitch enables the paper's proposed
	// clear-ip-prefetcher mitigation at every domain switch (§8.3).
	FlushPrefetcherOnSwitch bool
	// MaxCycles is the machine-lifetime cycle budget: once the clock passes
	// it, every Env operation faults with a FaultBudget SimFault, so a
	// runaway or never-yielding task terminates deterministically instead
	// of hanging Run forever. 0 disables the watchdog; RunBudget installs a
	// per-run budget on top.
	MaxCycles uint64
}

func defaultNoise() NoiseConfig {
	return NoiseConfig{
		ProcessSwitchCycles:  4200,
		ThreadSwitchCycles:   1400,
		KernelLines:          48,
		KernelIPLoads:        2,
		ThreadKernelLines:    6,
		ThreadKernelIPLoads:  1,
		SyscallCycles:        900,
		SyscallKernelLines:   32,
		SyscallKernelIPLoads: 16,
		EnclaveSwitchCycles:  7000,
	}
}

func defaultMeasure() MeasureConfig {
	return MeasureConfig{Overhead: 26, JitterSpan: 9, HitThreshold: 120}
}

// CoffeeLake returns the i7-9700 configuration of Table 2: 8 cores, 12 MB
// 16-way sliced LLC, 256 KiB 4-way L2, 32 KiB 8-way L1D.
func CoffeeLake(seed int64) Config {
	return Config{
		Name:  "Coffee Lake i7-9700",
		Cores: 8,
		GHz:   3.0,
		Hierarchy: cache.HierarchyConfig{
			L1: cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8,
				LineSize: mem.LineSize, Policy: cache.TreePLRU},
			L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4,
				LineSize: mem.LineSize, Policy: cache.TreePLRU},
			LLC: cache.Config{Name: "LLC", SizeBytes: 12 << 20, Ways: 16,
				LineSize: mem.LineSize, Policy: cache.LRU, Slices: 8},
			Lat: cache.Latencies{L1: 4, L2: 14, LLC: 44, DRAM: 200},
		},
		TLB:             tlb.DefaultConfig(),
		IPStride:        prefetcher.DefaultIPStrideConfig(),
		DCUEnabled:      true,
		DPLEnabled:      true,
		StreamerEnabled: true,
		Noise:           defaultNoise(),
		Measure:         defaultMeasure(),
		PhysMem:         2 << 30,
		ASLRSeed:        seed + 101,
		Seed:            seed,
	}
}

// Haswell returns the i7-4770 configuration of Table 2: 4 cores, 8 MB
// 16-way sliced LLC, 256 KiB 8-way L2.
func Haswell(seed int64) Config {
	cfg := CoffeeLake(seed)
	cfg.Name = "Haswell i7-4770"
	cfg.Cores = 4
	cfg.Hierarchy.L2.Ways = 8
	cfg.Hierarchy.LLC.SizeBytes = 8 << 20
	cfg.Hierarchy.LLC.Slices = 4
	cfg.Hierarchy.Lat = cache.Latencies{L1: 4, L2: 12, LLC: 40, DRAM: 210}
	return cfg
}

// Quiet returns cfg with all domain-switch noise removed — useful for the
// reverse-engineering microbenchmarks, which run attacker-only code.
func Quiet(cfg Config) Config {
	cfg.Noise.KernelLines = 0
	cfg.Noise.KernelIPLoads = 0
	cfg.Noise.ThreadKernelLines = 0
	cfg.Noise.ThreadKernelIPLoads = 0
	cfg.Noise.SyscallKernelLines = 0
	cfg.Noise.SyscallKernelIPLoads = 0
	cfg.Measure.JitterSpan = 1
	return cfg
}
