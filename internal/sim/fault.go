package sim

import (
	"errors"
	"fmt"

	"afterimage/internal/mem"
)

// FaultKind classifies a simulator fault.
type FaultKind int

// Fault classes. FaultPanic covers arbitrary panics escaping a task body;
// the rest are raised by the simulator itself.
const (
	// FaultPanic is a recovered panic from simulated code (a misbehaving
	// victim or attacker body).
	FaultPanic FaultKind = iota
	// FaultSegfault is an access to an unmapped virtual address.
	FaultSegfault
	// FaultBudget is the cycle-budget watchdog: the machine clock passed
	// the configured MaxCycles / RunBudget limit.
	FaultBudget
	// FaultBadSyscall is a syscall with no registered handler.
	FaultBadSyscall
	// FaultAPIMisuse is an Env/Machine API contract violation (LoadUser
	// outside a handler, yield from a non-current task, re-entrant Run,
	// invalid primitive parameters).
	FaultAPIMisuse
	// FaultOOM is physical-frame exhaustion on mmap.
	FaultOOM
	// FaultCorruption is an invariant-audit failure: a structural rule of
	// the microarchitectural state (stride bounds, PLRU consistency, cache
	// inclusivity, TLB↔page-table coherence) was found violated, typically
	// by an injected corruption fault. The Msg lists every violation.
	FaultCorruption
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultSegfault:
		return "segfault"
	case FaultBudget:
		return "cycle-budget"
	case FaultBadSyscall:
		return "bad-syscall"
	case FaultAPIMisuse:
		return "api-misuse"
	case FaultOOM:
		return "oom"
	case FaultCorruption:
		return "corruption"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// SimFault is the typed error carried out of the simulator when a task
// misbehaves: what happened, which task, in which privilege domain, at which
// cycle, and — when the faulting operation was a memory access — the load IP
// and virtual address involved. Task bodies that panic, segfault, exceed the
// cycle budget or violate the Env contract terminate with a SimFault instead
// of deadlocking the scheduler or killing the process.
type SimFault struct {
	Kind   FaultKind
	Task   string // faulting task name ("" for Direct envs)
	Domain Domain
	Cycle  uint64
	IP     uint64    // load IP of the faulting access, when applicable
	Addr   mem.VAddr // virtual address of the faulting access, when applicable
	Space  string    // address-space name of the faulting access, when applicable
	Msg    string
	Panic  interface{} // recovered value for FaultPanic
}

// Error renders the fault with its execution context.
func (f *SimFault) Error() string {
	who := f.Task
	if who == "" {
		who = "direct"
	}
	s := fmt.Sprintf("sim: %s fault in task %q (%s domain, cycle %d)", f.Kind, who, f.Domain, f.Cycle)
	if f.Kind == FaultSegfault {
		s += fmt.Sprintf(": %s accessed unmapped %#x (IP %#x)", f.Space, uint64(f.Addr), f.IP)
	}
	if f.Msg != "" {
		s += ": " + f.Msg
	}
	if f.Panic != nil {
		s += fmt.Sprintf(": %v", f.Panic)
	}
	return s
}

// Is lets errors.Is match any SimFault against another by kind.
func (f *SimFault) Is(target error) bool {
	t, ok := target.(*SimFault)
	return ok && t.Kind == f.Kind
}

// AsFault extracts a *SimFault from an error chain.
func AsFault(err error) (*SimFault, bool) {
	var f *SimFault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// IsBudgetFault reports whether err is a cycle-budget watchdog fault.
func IsBudgetFault(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Kind == FaultBudget
}

// faultFrom normalises a recovered panic value into a *SimFault, attaching
// the task context when the fault does not already carry one.
func faultFrom(r interface{}, taskName string, cycle uint64) *SimFault {
	if f, ok := r.(*SimFault); ok {
		if f.Task == "" {
			f.Task = taskName
		}
		return f
	}
	return &SimFault{Kind: FaultPanic, Task: taskName, Domain: DomainUser, Cycle: cycle, Panic: r}
}
