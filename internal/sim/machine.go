package sim

import (
	"fmt"
	"math/rand"

	"afterimage/internal/cache"
	"afterimage/internal/detrand"
	"afterimage/internal/invariant"
	"afterimage/internal/mem"
	"afterimage/internal/prefetcher"
	"afterimage/internal/telemetry"
	"afterimage/internal/tlb"
)

// Domain is the privilege domain a task executes in.
type Domain int

// Privilege domains.
const (
	DomainUser Domain = iota
	DomainKernel
	DomainEnclave
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainUser:
		return "user"
	case DomainKernel:
		return "kernel"
	case DomainEnclave:
		return "enclave"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// KernelPID is the context ID used for kernel-mode accesses.
const KernelPID = -1

// Process owns an address space.
type Process struct {
	PID  int
	Name string
	AS   *mem.AddressSpace
}

// SyscallHandler services one syscall number. The Env it receives executes
// in the kernel domain but can still translate the calling process's
// addresses via LoadUser/FlushUser (the kernel may touch user pages, as
// copy_from_user does).
type SyscallHandler func(e *Env, args ...uint64) uint64

// Machine is one simulated logical core plus its memory system.
type Machine struct {
	Cfg  Config
	Mem  *cache.Hierarchy
	TLB  *tlb.TLB
	Pref *prefetcher.Suite
	Phys *mem.PhysMemory

	Kernel *Process

	clock    uint64
	nextPID  int
	procs    []*Process
	syscalls map[int]SyscallHandler

	// jitter/noise are counting-source RNGs so their positions snapshot
	// (detrand is stream-identical to the plain sources they replaced).
	jitter    *rand.Rand
	noise     *rand.Rand
	jitterSrc *detrand.Source
	noiseSrc  *detrand.Source
	smtOps    int

	// noiseRegion backs the kernel lines touched on context switches.
	noiseRegion *mem.Mapping

	sched *scheduler

	// budgetLimit is the absolute clock value past which Env operations
	// fault with FaultBudget (0 = no watchdog). Set from Config.MaxCycles
	// and overridden for the duration of a RunBudget call.
	budgetLimit uint64

	// cancel, when installed, is polled on the budget-watchdog path: a
	// non-nil return faults the current operation with FaultBudget, so a
	// revoked context (campaign cancellation, per-job wall deadline)
	// terminates a run the same deterministic way a cycle overrun does.
	// cancelTick throttles the poll to every cancelPollMask+1 operations.
	cancel     func() error
	cancelTick uint64

	// pert receives control after every clock advance (fault injection);
	// inPerturb guards against recursion while a perturbation itself
	// advances the clock.
	pert      Perturber
	inPerturb bool

	// tel is the machine's observability hub: registry samplers over every
	// component's counters, the (off-by-default) event bus, and phase spans.
	tel     *telemetry.Hub
	latHist *telemetry.Histogram // demand-load latency distribution

	// inv is the invariant registry behind Audit; built at construction.
	inv *invariant.Registry

	// auditEvery enables the audit cadence: a full Audit every N domain
	// switches (0 = disabled). sinceAudit counts switches since the last one.
	auditEvery     int
	sinceAudit     int
	auditRuns      uint64
	auditViolation uint64

	// lastViolations holds the violations of the most recent failing audit,
	// for diagnosis after the fault surfaces.
	lastViolations []invariant.Violation

	// pendingFault carries an audit fault raised on the scheduler's run-loop
	// goroutine (inside domainSwitch) to a task goroutine: checkBudget
	// throws it at the next Env operation, so it routes through the normal
	// task-fault recovery instead of unwinding the scheduler loop itself.
	pendingFault *SimFault

	// Counters.
	domainSwitches uint64
	syscallCount   uint64
}

// Perturber is a fault-injection hook: Perturb is invoked after every clock
// advance with the new cycle count, on whichever goroutine holds the core.
// Implementations may mutate microarchitectural state (flush the prefetcher
// table, shoot down the TLB, inject kernel noise) through the machine's
// public API; clock advances they cause do not re-enter the hook.
type Perturber interface {
	Perturb(m *Machine, now uint64)
}

// SetPerturber installs (or, with nil, removes) the fault-injection hook.
func (m *Machine) SetPerturber(p Perturber) { m.pert = p }

// NewMachine builds a machine from its config, panicking on an invalid
// configuration; NewMachineChecked is the error-returning variant.
func NewMachine(cfg Config) *Machine {
	m, err := NewMachineChecked(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewMachineChecked builds a machine from its config, returning an error for
// invalid cache or prefetcher geometry instead of panicking.
func NewMachineChecked(cfg Config) (*Machine, error) {
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, fmt.Errorf("sim: invalid hierarchy: %w", err)
	}
	if err := cfg.IPStride.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid IP-stride config: %w", err)
	}
	suite := &prefetcher.Suite{
		IPStride: prefetcher.NewIPStride(cfg.IPStride),
		DCU:      &prefetcher.DCU{Enabled: cfg.DCUEnabled},
		DPL:      &prefetcher.DPL{Enabled: cfg.DPLEnabled},
		Streamer: prefetcher.NewStreamer(2),
	}
	suite.Streamer.Enabled = cfg.StreamerEnabled
	m := &Machine{
		Cfg:      cfg,
		Mem:      h,
		TLB:      tlb.New(cfg.TLB),
		Pref:     suite,
		Phys:     mem.NewPhysMemory(cfg.PhysMem),
		syscalls: make(map[int]SyscallHandler),
	}
	m.jitter, m.jitterSrc = detrand.New(cfg.Seed + 7)
	m.noise, m.noiseSrc = detrand.New(cfg.Seed + 13)
	m.budgetLimit = cfg.MaxCycles
	m.Kernel = &Process{PID: KernelPID, Name: "kernel",
		AS: mem.NewAddressSpace("kernel", m.Phys, kaslrSeed(cfg))}
	noiseRegion, err := m.Kernel.AS.Mmap(64*mem.PageSize, mem.MapLocked)
	if err != nil {
		return nil, fmt.Errorf("sim: kernel noise region: %w", err)
	}
	m.noiseRegion = noiseRegion
	m.sched = newScheduler(m)

	m.tel = telemetry.NewHub()
	m.tel.SetClock(func() uint64 { return m.clock })
	reg := m.tel.Registry()
	m.Mem.RegisterMetrics(reg)
	m.TLB.RegisterMetrics(reg)
	m.Pref.RegisterMetrics(reg)
	m.Pref.SetTelemetry(m.tel)
	reg.RegisterFunc("sched.switches", func() uint64 { return m.domainSwitches })
	reg.RegisterFunc("sched.syscalls", func() uint64 { return m.syscallCount })
	reg.RegisterFunc("audit.runs", func() uint64 { return m.auditRuns })
	reg.RegisterFunc("audit.violations", func() uint64 { return m.auditViolation })
	m.inv = m.buildInvariants()
	// Bucket bounds straddle the configured level latencies and the hit/miss
	// threshold, so the histogram separates L1/L2/LLC/DRAM populations.
	m.latHist = reg.Histogram("mem.load.latency", []uint64{
		cfg.Hierarchy.Lat.L1 + 1, cfg.Hierarchy.Lat.L2 + 1, cfg.Hierarchy.Lat.LLC + 1,
		cfg.Measure.HitThreshold, cfg.Hierarchy.Lat.DRAM + cfg.TLB.WalkLatency + 1,
	})
	return m, nil
}

// Telemetry returns the machine's observability hub.
func (m *Machine) Telemetry() *telemetry.Hub { return m.tel }

func kaslrSeed(cfg Config) int64 {
	if cfg.ASLRSeed == 0 {
		return 0
	}
	return cfg.ASLRSeed + 1
}

// NewProcess creates a user process with its own (ASLR-randomised) address
// space.
func (m *Machine) NewProcess(name string) *Process {
	m.nextPID++
	var seed int64
	if m.Cfg.ASLRSeed != 0 {
		seed = m.Cfg.ASLRSeed + int64(m.nextPID)*997
	}
	p := &Process{PID: m.nextPID, Name: name,
		AS: mem.NewAddressSpace(name, m.Phys, seed)}
	m.procs = append(m.procs, p)
	return p
}

// RegisterSyscall installs a kernel service routine.
func (m *Machine) RegisterSyscall(num int, h SyscallHandler) {
	m.syscalls[num] = h
}

// Now reports the current cycle count.
func (m *Machine) Now() uint64 { return m.clock }

// Seconds converts a cycle count to wall-clock seconds at the configured
// frequency.
func (m *Machine) Seconds(cycles uint64) float64 {
	return float64(cycles) / (m.Cfg.GHz * 1e9)
}

// DomainSwitches reports how many domain/context switches have occurred.
func (m *Machine) DomainSwitches() uint64 { return m.domainSwitches }

// advance moves the clock forward and hands control to the fault-injection
// hook, if any.
func (m *Machine) advance(cycles uint64) {
	m.clock += cycles
	if m.pert != nil && !m.inPerturb {
		m.inPerturb = true
		m.pert.Perturb(m, m.clock)
		m.inPerturb = false
	}
}

// checkBudget enforces the cycle watchdog: once the clock is past the budget
// limit, the calling Env operation faults. The panic is recovered at the
// task-goroutine boundary (or the Lab API boundary for Direct envs) and
// surfaces as a typed *SimFault, so runaway and never-yielding tasks
// terminate deterministically.
func (m *Machine) checkBudget(e *Env) {
	if m.pendingFault != nil {
		f := m.pendingFault
		m.pendingFault = nil
		if f.Task == "" && e.task != nil {
			f.Task = e.task.name
		}
		panic(f)
	}
	if m.budgetLimit != 0 && m.clock > m.budgetLimit {
		f := &SimFault{
			Kind: FaultBudget, Domain: e.domain, Cycle: m.clock, IP: e.lastIP,
			Msg: fmt.Sprintf("cycle budget %d exceeded", m.budgetLimit),
		}
		if e.task != nil {
			f.Task = e.task.name
		}
		panic(f)
	}
	if m.cancel != nil {
		if m.cancelTick++; m.cancelTick&cancelPollMask == 0 {
			if cerr := m.cancel(); cerr != nil {
				f := &SimFault{
					Kind: FaultBudget, Domain: e.domain, Cycle: m.clock, IP: e.lastIP,
					Msg: "run canceled: " + cerr.Error(),
				}
				if e.task != nil {
					f.Task = e.task.name
				}
				panic(f)
			}
		}
	}
}

// cancelPollMask throttles the cancellation poll to one context check per
// 256 simulated operations — cheap enough for the hot path while still
// reacting to a revoked deadline within microseconds of wall time.
const cancelPollMask = 255

// SetCancel installs (or, with nil, removes) a cancellation probe on the
// budget-watchdog path. The probe returns a non-nil error once the run
// should stop — typically context.Context.Err — and the next polled
// operation then faults with a FaultBudget SimFault, terminating the run
// through the same recover boundary as a cycle overrun.
func (m *Machine) SetCancel(fn func() error) {
	m.cancel = fn
	m.cancelTick = 0
}

// load performs one demand load in the context (pid, as) and returns its
// latency. It drives the TLB, the hierarchy and the prefetchers, and fills
// prefetch targets.
func (m *Machine) load(ip uint64, v mem.VAddr, pid int, as *mem.AddressSpace) uint64 {
	pa, ok := as.Translate(v)
	if !ok {
		panic(&SimFault{
			Kind: FaultSegfault, Cycle: m.clock, IP: ip, Addr: v, Space: as.Name,
		})
	}
	tlbHit, walk := m.TLB.Lookup(as.ID, v)
	level, lat := m.Mem.Load(pa)
	latency := lat + walk + 1 // +1 issue cycle
	m.latHist.Observe(latency)
	if m.tel.TraceEnabled() {
		if !tlbHit {
			m.tel.Emit(telemetry.Event{Kind: telemetry.EvTLBMiss, Arg1: walk})
		}
		m.tel.Emit(telemetry.Event{Kind: telemetry.EvDemandAccess, Arg1: uint64(level), Arg2: latency})
	}
	reqs := m.Pref.OnLoad(prefetcher.Access{
		IP: ip, PA: pa, PID: pid, TLBHit: tlbHit, Level: level,
	})
	for _, r := range reqs {
		m.Mem.Prefetch(r.Target)
	}
	m.advance(latency)
	return latency
}

// timedLoad is load plus measurement overhead and jitter — what an attacker
// sees from an rdtscp-fenced load.
func (m *Machine) timedLoad(ip uint64, v mem.VAddr, pid int, as *mem.AddressSpace) uint64 {
	lat := m.load(ip, v, pid, as)
	meas := lat + m.Cfg.Measure.Overhead
	if span := m.Cfg.Measure.JitterSpan; span > 0 {
		meas += uint64(m.jitter.Int63n(int64(span)))
	}
	m.advance(m.Cfg.Measure.Overhead)
	return meas
}

// flush performs clflush of the line containing v.
func (m *Machine) flush(v mem.VAddr, as *mem.AddressSpace) {
	if pa, ok := as.Translate(v); ok {
		m.Mem.Flush(pa)
	}
	m.advance(40) // clflush is slow
}

// domainSwitch applies the cost and microarchitectural pollution of moving
// between execution contexts.
func (m *Machine) domainSwitch(sameProcess bool) {
	m.domainSwitches++
	if m.tel.TraceEnabled() {
		cross := uint64(1)
		if sameProcess {
			cross = 0
		}
		m.tel.Emit(telemetry.Event{Kind: telemetry.EvDomainSwitch, Arg1: cross})
	}
	n := m.Cfg.Noise
	if sameProcess {
		m.advance(n.ThreadSwitchCycles)
		m.kernelNoise(n.ThreadKernelLines, n.ThreadKernelIPLoads)
	} else {
		// TLB entries are PCID-tagged and survive the switch; processes
		// only contend for TLB capacity.
		m.advance(n.ProcessSwitchCycles)
		m.kernelNoise(n.KernelLines, n.KernelIPLoads)
	}
	if m.Cfg.FlushPrefetcherOnSwitch {
		m.Pref.IPStride.Flush()
		m.advance(uint64(m.Cfg.IPStride.Entries)) // one cycle per cleared entry (§8.3)
	}
	if m.auditEvery > 0 {
		if m.sinceAudit++; m.sinceAudit >= m.auditEvery {
			m.sinceAudit = 0
			m.auditCadence()
		}
	}
}

// auditCadence runs a full audit from the domain-switch hook. The check is
// read-only (no clock advance, no RNG draws), so enabling the cadence never
// changes a clean run's results or state hashes. A failing audit cannot
// panic here — domainSwitch executes on the scheduler's run-loop goroutine —
// so the fault is parked in pendingFault for the next Env operation (or the
// end-of-run drain) to throw on a recoverable boundary.
func (m *Machine) auditCadence() {
	if err := m.Audit(); err != nil && m.pendingFault == nil {
		if f, ok := err.(*SimFault); ok {
			m.pendingFault = f
		}
	}
}

// InjectKernelNoise exposes the context-switch noise model for fault
// injection and custom scenarios: `lines` kernel cache lines are touched, of
// which the first `ipLoads` also pass through the prefetchers.
func (m *Machine) InjectKernelNoise(lines, ipLoads int) { m.kernelNoise(lines, ipLoads) }

// InjectStall advances the clock by the given number of cycles — an
// injected pipeline stall (IPI service, interrupt, SMM excursion).
func (m *Machine) InjectStall(cycles uint64) { m.advance(cycles) }

// kernelNoise models the scheduler's own memory activity: `lines` cache
// lines touched in kernel data (evicting attacker lines) of which
// `ipLoads` also train/disturb the prefetcher under kernel IPs.
func (m *Machine) kernelNoise(lines, ipLoads int) {
	if lines <= 0 {
		return
	}
	base := m.noiseRegion.Base
	span := int64(m.noiseRegion.Length)
	for i := 0; i < lines; i++ {
		off := m.noise.Int63n(span/mem.LineSize) * mem.LineSize
		v := base + mem.VAddr(off)
		pa, _ := m.Kernel.AS.Translate(v)
		level, _ := m.Mem.Load(pa)
		if i < ipLoads {
			// Kernel scheduler loads pass through the prefetcher with
			// miscellaneous kernel IPs, occasionally evicting entries.
			ip := 0xffffffff81000000 + uint64(m.noise.Int63n(256))
			reqs := m.Pref.OnLoad(prefetcher.Access{
				IP: ip, PA: pa, PID: KernelPID, TLBHit: true, Level: level,
			})
			for _, r := range reqs {
				m.Mem.Prefetch(r.Target)
			}
		}
	}
	m.advance(uint64(lines) * 8)
}

// tick is called after every memory operation of a scheduled task; under
// SMT it hands the core to the sibling thread every OpsPerSlice operations
// (no context-switch cost or noise — the threads co-reside).
func (m *Machine) tick(e *Env) {
	if !m.Cfg.SMT.Enabled || e.task == nil || m.sched.current != e.task {
		return
	}
	m.smtOps++
	slice := m.Cfg.SMT.OpsPerSlice
	if slice <= 0 {
		slice = 1
	}
	if m.smtOps >= slice {
		m.smtOps = 0
		m.sched.smtSwitch = true
		m.sched.yield(e.task)
	}
}

// Direct returns an Env for synchronous, schedulerless use (micro-
// benchmarks and tests). Yield on a direct Env advances time without
// switching.
func (m *Machine) Direct(p *Process) *Env {
	return &Env{m: m, proc: p, domain: DomainUser}
}

// Rand exposes the machine's deterministic auxiliary RNG (for shuffled
// reloads à la Fisher–Yates in the artifact).
func (m *Machine) Rand() *rand.Rand { return m.noise }
