package sim

import (
	"testing"

	"afterimage/internal/mem"
)

// Forked-machine selfcheck suite: Machine.Fork must hand back a machine the
// full invariant registry accepts (TLB coherence under remapped ASIDs,
// noise-region identity, distinct spaces) and on which every corruption
// class is still caught — with corruption on either side of the fork
// invisible to the other.

// TestForkedMachineAuditsClean: a fork of a warmed machine passes the full
// audit, and so does a fork of a fork.
func TestForkedMachineAuditsClean(t *testing.T) {
	m, _, _ := warmMachine(t)
	f := m.MustFork()
	if err := f.Audit(); err != nil {
		t.Fatalf("forked machine fails audit: %v", err)
	}
	if err := f.MustFork().Audit(); err != nil {
		t.Fatalf("fork of a fork fails audit: %v", err)
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("parent fails audit after forking: %v", err)
	}
}

// TestAuditCatchesCorruptionClassesOnFork re-runs the whole corruption
// selfcheck suite against forked machines, and checks the parent stays
// audit-clean through every injected fault.
func TestAuditCatchesCorruptionClassesOnFork(t *testing.T) {
	for _, tc := range corruptionCases {
		t.Run(tc.name, func(t *testing.T) {
			m, _, _ := warmMachine(t)
			f := m.MustFork()
			auditMustCatch(t, f, tc)
			if err := m.Audit(); err != nil {
				t.Fatalf("corrupting the fork dirtied the parent: %v", err)
			}
		})
	}
}

// TestForkIsolatedFromParentCorruption: the mirror direction — corrupting
// the parent after forking leaves the fork audit-clean.
func TestForkIsolatedFromParentCorruption(t *testing.T) {
	m, _, _ := warmMachine(t)
	f := m.MustFork()
	m.Pref.IPStride.CorruptStride(0, m.Cfg.IPStride.MaxStrideBytes+512)
	m.TLB.CorruptInsert(m.Kernel.AS.ID, 0x3)
	if err := m.Audit(); err == nil {
		t.Fatal("parent corruption not caught")
	}
	if err := f.Audit(); err != nil {
		t.Fatalf("parent corruption leaked into the fork: %v", err)
	}
}

// TestForkPreservesCorruptTLBEntries: Fork's ASID remap rewrites only VALID
// entries through the parent→child table and passes unknown ASIDs raw, so
// an injected desync survives the fork and the fork's own coherence audit
// still catches it — forking never launders corruption.
func TestForkPreservesCorruptTLBEntries(t *testing.T) {
	m, _, _ := warmMachine(t)
	m.TLB.CorruptInsert(m.Kernel.AS.ID, 0x3)
	f := m.MustFork()
	if err := f.Audit(); err == nil {
		t.Fatal("fork laundered the corrupt TLB entry")
	}
}

// TestForkMatchesSnapshotRestore ties Fork to the long-gated Restore
// semantics: a fork and a snapshot/restore round trip of the same machine
// hash identically, and replaying the same continuation on both reproduces
// the same final hash.
func TestForkMatchesSnapshotRestore(t *testing.T) {
	m, env, buf := warmMachine(t)
	f := m.MustFork()
	if got, want := f.StateHash(), m.StateHash(); got != want {
		t.Fatalf("fork hash %#x, parent %#x", got, want)
	}

	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	cont := func(e *Env, b *mem.Mapping) {
		for i := 0; i < 12; i++ {
			e.Load(0x40_0300, b.Base+mem.VAddr(3*mem.PageSize+i%5*3*mem.LineSize))
		}
	}
	cont(env, buf)
	want := m.StateHash()
	if err := m.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}

	fp := f.Processes()
	if len(fp) != 1 {
		t.Fatalf("fork has %d processes, want 1", len(fp))
	}
	var fbuf *mem.Mapping
	for _, mp := range fp[0].AS.Mappings() {
		if mp.Base == buf.Base {
			fbuf = mp
		}
	}
	if fbuf == nil {
		t.Fatal("fork lost the warm buffer mapping")
	}
	cont(f.Direct(fp[0]), fbuf)
	if got := f.StateHash(); got != want {
		t.Fatalf("forked continuation hash %#x, restored-path continuation %#x", got, want)
	}
}

// TestForkSeparatesTelemetry: spans and metrics recorded on a fork land on
// the fork's own hub, not the parent's.
func TestForkSeparatesTelemetry(t *testing.T) {
	m, _, _ := warmMachine(t)
	f := m.MustFork()
	if m.Telemetry() == f.Telemetry() {
		t.Fatal("fork shares the parent's telemetry hub")
	}
	fp := f.Processes()[0]
	fe := f.Direct(fp)
	fe.BeginPhase("fork-only")
	fe.Sleep(100)
	fe.EndPhase()
	for _, ph := range m.Telemetry().PhaseSummaries() {
		if ph.Name == "fork-only" {
			t.Fatal("fork phase recorded on the parent hub")
		}
	}
	found := false
	for _, ph := range f.Telemetry().PhaseSummaries() {
		if ph.Name == "fork-only" {
			found = true
		}
	}
	if !found {
		t.Fatal("fork phase missing from the fork hub")
	}
}
