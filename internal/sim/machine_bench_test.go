package sim

import (
	"testing"

	"afterimage/internal/mem"
)

// benchMachine builds a quiet Coffee Lake machine with a warmed 16-page
// buffer: the steady-state configuration of the attack hot loops.
func benchMachine(b *testing.B) (*Machine, *Env, *mem.Mapping) {
	b.Helper()
	m := NewMachine(Quiet(CoffeeLake(1)))
	env := m.Direct(m.NewProcess("bench"))
	buf := env.Mmap(16*mem.PageSize, mem.MapLocked)
	for i := 0; i < 16; i++ {
		env.Load(0x400000, buf.Base+mem.VAddr(i)*mem.PageSize)
	}
	return m, env, buf
}

// BenchmarkMachineLoadSteadyState measures the full demand-load path —
// translate, TLB, hierarchy, prefetcher suite, latency histogram — with a
// hot working set. This is the per-access unit every attack and campaign
// multiplies by millions, and the path TestHotPathZeroAlloc pins at zero
// allocations.
func BenchmarkMachineLoadSteadyState(b *testing.B) {
	_, env, buf := benchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Load(0x400040, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
	}
}

// BenchmarkMachineLoadStrided measures the load path while the IP-stride
// prefetcher continuously trains and fires (prefetch fills included).
func BenchmarkMachineLoadStrided(b *testing.B) {
	_, env, buf := benchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := mem.VAddr(i%8) * 7 * mem.LineSize
		env.Load(0x400080, buf.Base+off)
	}
}

// BenchmarkMachineTimedLoad includes the measurement overhead and jitter
// draw of the attacker's rdtscp-fenced load.
func BenchmarkMachineTimedLoad(b *testing.B) {
	_, env, buf := benchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.TimeLoad(0x4000c0, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
	}
}

// BenchmarkLoadBatch drives the batched load API with 64 ops per call into
// a reused latency buffer — the trace-replay configuration. Each b.N
// iteration is one 64-load batch, so compare ns/op against 64× the
// steady-state single-load number to see what hoisting the per-load
// dispatch buys.
func BenchmarkLoadBatch(b *testing.B) {
	_, env, buf := benchMachine(b)
	ops := make([]LoadOp, 64)
	for i := range ops {
		ops[i] = LoadOp{IP: 0x400040, VA: buf.Base + mem.VAddr(i%(16*64))*mem.LineSize}
	}
	lats := make([]uint64, 0, len(ops))
	for i := 0; i < 64; i++ {
		env.LoadBatch(ops, lats[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.LoadBatch(ops, lats[:0])
	}
}

// BenchmarkMachineFork measures one deep-copy fork of a warmed machine —
// the per-point cost the forked sweep mode pays instead of a full boot
// (BenchmarkNewMachine plus campaign warmup).
func BenchmarkMachineFork(b *testing.B) {
	m, env, buf := benchMachine(b)
	for i := 0; i < 4096; i++ {
		env.Load(0x400040, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MustFork()
	}
}

// BenchmarkNewMachine measures construction cost: campaign drivers boot a
// fresh machine per experiment point, so this rides every sweep.
func BenchmarkNewMachine(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMachine(Quiet(CoffeeLake(1)))
	}
}
