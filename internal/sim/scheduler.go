package sim

import "fmt"

// task is one cooperative thread of execution. Tasks run one at a time —
// all on the same logical core, as the paper's threat model requires — and
// hand off explicitly via Yield, mirroring the sched_yield synchronisation
// the paper uses (§6.2).
type task struct {
	name   string
	proc   *Process
	body   func(*Env)
	resume chan struct{}
	done   bool
}

// Task is the public handle for a spawned task.
type Task struct{ t *task }

// Done reports whether the task body has returned.
func (t *Task) Done() bool { return t.t.done }

// Name returns the task's name.
func (t *Task) Name() string { return t.t.name }

type schedEvent struct {
	from *task
	done bool
}

// scheduler drives cooperative round-robin execution with strict handoff:
// exactly one task goroutine runs at a time, so execution is deterministic.
type scheduler struct {
	m       *Machine
	tasks   []*task
	events  chan schedEvent
	running bool
	current *task
	// smtSwitch marks the next handoff as an SMT thread interleave: no
	// context-switch cost, no kernel noise (the threads co-reside).
	smtSwitch bool
}

func newScheduler(m *Machine) *scheduler {
	return &scheduler{m: m, events: make(chan schedEvent)}
}

// Spawn registers a task. Tasks start when Run is called, in spawn order.
func (m *Machine) Spawn(p *Process, name string, body func(*Env)) *Task {
	t := &task{name: name, proc: p, body: body, resume: make(chan struct{})}
	m.sched.tasks = append(m.sched.tasks, t)
	return &Task{t: t}
}

// Run executes all spawned tasks to completion under cooperative
// round-robin scheduling and returns the total cycles elapsed.
func (m *Machine) Run() uint64 {
	return m.sched.run()
}

func (s *scheduler) run() uint64 {
	if s.running {
		panic("sim: Run called re-entrantly")
	}
	if len(s.tasks) == 0 {
		return 0
	}
	s.running = true
	start := s.m.Now()

	// Launch every task goroutine parked on its resume channel.
	for _, t := range s.tasks {
		t := t
		go func() {
			<-t.resume
			env := &Env{m: s.m, proc: t.proc, domain: DomainUser, task: t}
			t.body(env)
			t.done = true
			s.events <- schedEvent{from: t, done: true}
		}()
	}

	s.current = s.tasks[0]
	s.current.resume <- struct{}{}
	for {
		ev := <-s.events
		next := s.next(ev.from)
		if next == nil {
			break // all done
		}
		if next != ev.from || ev.done {
			s.switchTo(ev.from, next)
		}
		s.current = next
		next.resume <- struct{}{}
	}
	s.running = false
	s.tasks = nil
	return s.m.Now() - start
}

// yield is called from a task goroutine: it notifies the scheduler and
// blocks until resumed.
func (s *scheduler) yield(t *task) {
	if s.current != t {
		panic(fmt.Sprintf("sim: yield from non-current task %q", t.name))
	}
	s.events <- schedEvent{from: t}
	<-t.resume
}

// next picks the next runnable task after `from` in round-robin order, or
// nil when none remain.
func (s *scheduler) next(from *task) *task {
	idx := 0
	for i, t := range s.tasks {
		if t == from {
			idx = i
			break
		}
	}
	for off := 1; off <= len(s.tasks); off++ {
		t := s.tasks[(idx+off)%len(s.tasks)]
		if !t.done {
			return t
		}
	}
	return nil
}

// switchTo applies the microarchitectural cost of handing the core from one
// task to another. SMT interleaves are free: both hardware threads already
// share the core's TLB, caches and prefetchers.
func (s *scheduler) switchTo(from, to *task) {
	if from == nil || to == nil || from == to {
		return
	}
	if s.smtSwitch {
		s.smtSwitch = false
		s.m.advance(1)
		return
	}
	s.m.domainSwitch(from.proc == to.proc)
}
