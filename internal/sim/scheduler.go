package sim

import (
	"fmt"

	"afterimage/internal/telemetry"
)

// task is one cooperative thread of execution. Tasks run one at a time —
// all on the same logical core, as the paper's threat model requires — and
// hand off explicitly via Yield, mirroring the sched_yield synchronisation
// the paper uses (§6.2).
type task struct {
	name   string
	proc   *Process
	body   func(*Env)
	resume chan struct{}
	done   bool
	fault  *SimFault
}

// Task is the public handle for a spawned task.
type Task struct{ t *task }

// Done reports whether the task body has returned.
func (t *Task) Done() bool { return t.t.done }

// Name returns the task's name.
func (t *Task) Name() string { return t.t.name }

// Fault returns the fault that terminated the task, or nil if it completed
// normally (or has not finished yet).
func (t *Task) Fault() *SimFault { return t.t.fault }

type schedEvent struct {
	from  *task
	done  bool
	fault *SimFault
}

// scheduler drives cooperative round-robin execution with strict handoff:
// exactly one task goroutine runs at a time, so execution is deterministic.
type scheduler struct {
	m       *Machine
	tasks   []*task
	events  chan schedEvent
	running bool
	current *task
	faults  []*SimFault
	// smtSwitch marks the next handoff as an SMT thread interleave: no
	// context-switch cost, no kernel noise (the threads co-reside).
	smtSwitch bool
}

func newScheduler(m *Machine) *scheduler {
	return &scheduler{m: m, events: make(chan schedEvent)}
}

// Spawn registers a task. Tasks start when Run is called, in spawn order.
func (m *Machine) Spawn(p *Process, name string, body func(*Env)) *Task {
	t := &task{name: name, proc: p, body: body, resume: make(chan struct{})}
	m.sched.tasks = append(m.sched.tasks, t)
	return &Task{t: t}
}

// Run executes all spawned tasks to completion under cooperative
// round-robin scheduling and returns the total cycles elapsed. A task fault
// (panic, segfault, budget overrun) terminates that task and, once the
// remaining tasks have drained, Run panics with the *SimFault; use
// RunChecked or RunBudget for an error-returning path.
func (m *Machine) Run() uint64 {
	cycles, err := m.RunChecked()
	if err != nil {
		panic(err)
	}
	return cycles
}

// RunChecked is Run with errors instead of panics: every spawned task runs
// until it completes or faults, faulting tasks are terminated and recorded
// (see Faults), and the first fault — if any — is returned as a *SimFault.
// Calling it re-entrantly (from inside a task body) returns an api-misuse
// fault instead of deadlocking.
func (m *Machine) RunChecked() (uint64, error) {
	return m.sched.run()
}

// RunBudget is RunChecked under a cycle watchdog: once the machine clock has
// advanced by more than maxCycles past the start of the run, every further
// Env operation faults with a FaultBudget SimFault, deterministically
// terminating runaway or never-yielding tasks. A zero budget disables the
// watchdog for this run (Config.MaxCycles still applies if set).
func (m *Machine) RunBudget(maxCycles uint64) (uint64, error) {
	if maxCycles > 0 {
		saved := m.budgetLimit
		m.budgetLimit = m.clock + maxCycles
		defer func() { m.budgetLimit = saved }()
	}
	return m.sched.run()
}

// Faults returns the faults collected during the last run, in the order
// the tasks died.
func (m *Machine) Faults() []*SimFault {
	return append([]*SimFault(nil), m.sched.faults...)
}

func (s *scheduler) run() (uint64, error) {
	if s.running {
		return 0, &SimFault{
			Kind: FaultAPIMisuse, Domain: DomainUser, Cycle: s.m.Now(),
			Msg: "Run called re-entrantly",
		}
	}
	if len(s.tasks) == 0 {
		return 0, nil
	}
	s.running = true
	s.faults = nil
	start := s.m.Now()

	// Launch every task goroutine parked on its resume channel. A panic
	// escaping the body — a misbehaving victim, a segfault, the budget
	// watchdog — is recovered and forwarded as a normal "task done" event
	// carrying the fault, so the scheduler never blocks on a dead task.
	for _, t := range s.tasks {
		t := t
		go func() {
			defer func() {
				if r := recover(); r != nil {
					f := faultFrom(r, t.name, s.m.Now())
					t.fault = f
					t.done = true
					s.events <- schedEvent{from: t, done: true, fault: f}
				}
			}()
			<-t.resume
			env := &Env{m: s.m, proc: t.proc, domain: DomainUser, task: t}
			t.body(env)
			t.done = true
			s.events <- schedEvent{from: t, done: true}
		}()
	}

	if s.m.tel.TraceEnabled() {
		for _, t := range s.tasks {
			s.m.tel.Emit(telemetry.Event{Kind: telemetry.EvTaskStart, Label: t.name})
		}
	}
	s.current = s.tasks[0]
	s.current.resume <- struct{}{}
	for {
		ev := <-s.events
		if ev.fault != nil {
			s.faults = append(s.faults, ev.fault)
		}
		if ev.done && s.m.tel.TraceEnabled() {
			s.m.tel.Emit(telemetry.Event{Kind: telemetry.EvTaskDone, Label: ev.from.name})
		}
		next := s.next(ev.from)
		if next == nil {
			break // all done
		}
		// Commit the handoff before paying the switch cost: a cadence
		// audit fired by domainSwitch must observe the incoming task as
		// current, not the one that just yielded or finished.
		s.current = next
		if next != ev.from || ev.done {
			s.switchTo(ev.from, next)
		}
		next.resume <- struct{}{}
	}
	s.running = false
	s.tasks = nil
	// A cadence audit that fired on the run's final domain switch has no
	// later Env operation to throw through; drain it here so the fault
	// still surfaces as this run's error.
	if f := s.m.pendingFault; f != nil {
		s.m.pendingFault = nil
		s.faults = append(s.faults, f)
	}
	var err error
	if len(s.faults) > 0 {
		err = s.faults[0]
	}
	return s.m.Now() - start, err
}

// yield is called from a task goroutine: it notifies the scheduler and
// blocks until resumed.
func (s *scheduler) yield(t *task) {
	if s.current != t {
		panic(&SimFault{
			Kind: FaultAPIMisuse, Task: t.name, Domain: DomainUser, Cycle: s.m.Now(),
			Msg: fmt.Sprintf("yield from non-current task %q", t.name),
		})
	}
	s.events <- schedEvent{from: t}
	<-t.resume
}

// next picks the next runnable task after `from` in round-robin order, or
// nil when none remain.
func (s *scheduler) next(from *task) *task {
	idx := 0
	for i, t := range s.tasks {
		if t == from {
			idx = i
			break
		}
	}
	for off := 1; off <= len(s.tasks); off++ {
		t := s.tasks[(idx+off)%len(s.tasks)]
		if !t.done {
			return t
		}
	}
	return nil
}

// switchTo applies the microarchitectural cost of handing the core from one
// task to another. SMT interleaves are free: both hardware threads already
// share the core's TLB, caches and prefetchers.
func (s *scheduler) switchTo(from, to *task) {
	if from == nil || to == nil || from == to {
		return
	}
	if s.smtSwitch {
		s.smtSwitch = false
		s.m.advance(1)
		return
	}
	s.m.domainSwitch(from.proc == to.proc)
}
