package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"afterimage/internal/mem"
)

// Fork-isolation property test: N machines forked from one warmed parent,
// each driven by its own randomized program of loads, batched loads,
// flushes, fences, timed loads, syscalls (kernel-domain switches) and
// enclave calls, with execution interleaved across the forks in randomized
// chunks. Two properties must hold for every seed:
//
//   - isolation: no fork observes another fork's (or the parent's)
//     mutations — each fork's final state hash equals the hash of the SAME
//     program run alone on a machine restored from a snapshot of the same
//     warmed parent, and the parent's own hash is unchanged;
//   - equivalence: fork + program ≡ snapshot/restore + program, tying the
//     fork implementation to the long-gated restore semantics.
//
// A violation is shrunk with delta debugging (chunk removal down to single
// ops, holding the other forks' programs fixed) and written under
// testdata/ for replay; stored counterexamples run first as regressions.

// forkOp is one operation of a property program, JSON-encodable so shrunk
// counterexamples can be stored and replayed.
type forkOp struct {
	Kind string `json:"kind"`           // load|batch|flush|fence|timeload|sleep|syscall|enclave
	IP   uint64 `json:"ip,omitempty"`   // load IP (offset into a small pool)
	Page int    `json:"page,omitempty"` // page index into the rig buffer
	Line int    `json:"line,omitempty"` // line index within the page / batch stride
	N    int    `json:"n,omitempty"`    // batch length / sleep cycles
}

type forkProgram []forkOp

// forkPropCase is the persisted counterexample unit: everything needed to
// re-run one failing seed, with the shrunk program in place.
type forkPropCase struct {
	Seed     int64         `json:"seed"`
	Bad      int           `json:"bad"` // index of the diverging fork
	Programs []forkProgram `json:"programs"`
}

const forkRigPages = 32

// forkRig binds a machine, a process env and the property buffer. The same
// binder rebuilds it over a fork or after a snapshot restore, so programs
// address state by (page, line) rather than by pointer.
type forkRig struct {
	m   *Machine
	env *Env
	buf *mem.Mapping
}

// newForkRig boots a NOISY machine (context-switch noise, jitter and
// kernel-noise RNGs all live, so the test proves Fork clones every stream)
// with one process, one locked buffer and a V2-style kernel syscall that
// loads a caller-supplied user address from the kernel domain.
func newForkRig(seed int64) *forkRig {
	m := NewMachine(CoffeeLake(seed))
	m.RegisterSyscall(1, func(e *Env, args ...uint64) uint64 {
		e.LoadUser(0xffffffff81000040, mem.VAddr(args[0]))
		return 0
	})
	p := m.NewProcess("prop")
	env := m.Direct(p)
	buf := env.Mmap(forkRigPages*mem.PageSize, mem.MapLocked)
	r := &forkRig{m: m, env: env, buf: buf}
	// Warm prefix: train several stride walks and touch the kernel path so
	// forks inherit non-trivial cache/TLB/prefetcher/RNG state.
	for i := 0; i < 24; i++ {
		r.exec(forkOp{Kind: "load", IP: uint64(i % 5), Page: i % forkRigPages, Line: (i * 3) % 64})
	}
	r.exec(forkOp{Kind: "batch", IP: 1, Page: 2, Line: 1, N: 48})
	r.exec(forkOp{Kind: "syscall", Page: 7, Line: 9})
	r.exec(forkOp{Kind: "timeload", IP: 2, Page: 1, Line: 5})
	return r
}

// rebind rebuilds the rig bindings over a machine that shares the original
// topology — a fork of it, or the original after a restore.
func (r *forkRig) rebind(m *Machine) (*forkRig, error) {
	procs := m.Processes()
	if len(procs) != 1 {
		return nil, fmt.Errorf("rig machine has %d processes, want 1", len(procs))
	}
	for _, mp := range procs[0].AS.Mappings() {
		if mp.Base == r.buf.Base {
			return &forkRig{m: m, env: m.Direct(procs[0]), buf: mp}, nil
		}
	}
	return nil, fmt.Errorf("rig buffer at %#x lost", r.buf.Base)
}

// propIP maps the program's small IP index into a realistic text-segment
// pool with deliberate low-8-bit aliases (the prefetcher's index width).
func propIP(i uint64) uint64 { return 0x400000 + (i%8)*0x40 + (i%3)*0x100 }

// exec runs one op against the rig.
func (r *forkRig) exec(op forkOp) {
	page := ((op.Page % forkRigPages) + forkRigPages) % forkRigPages
	line := ((op.Line % 64) + 64) % 64
	va := r.buf.Base + mem.VAddr(page)*mem.PageSize + mem.VAddr(line)*mem.LineSize
	switch op.Kind {
	case "batch":
		n := op.N % 96
		if n < 1 {
			n = 1
		}
		stride := mem.VAddr(line%8+1) * mem.LineSize
		ops := make([]LoadOp, n)
		v := r.buf.Base + mem.VAddr(page)*mem.PageSize
		for i := range ops {
			ops[i] = LoadOp{IP: propIP(op.IP), VA: v}
			v += stride
			if v >= r.buf.End() {
				v = r.buf.Base
			}
		}
		r.env.LoadBatch(ops, nil)
	case "flush":
		r.env.Flush(va)
	case "fence":
		r.env.Fence()
	case "timeload":
		r.env.TimeLoad(propIP(op.IP), va)
	case "sleep":
		r.env.Sleep(uint64(op.N%500) + 1)
	case "syscall":
		r.env.Syscall(1, uint64(va))
	case "enclave":
		ip := propIP(op.IP)
		r.env.EnclaveCall(func(ee *Env) { ee.Load(ip, va) })
	default: // "load"
		r.env.Load(propIP(op.IP), va)
	}
}

// genForkProgram builds a randomized program biased toward loads and
// batches (the paths forks share the most warmed state on).
func genForkProgram(rng *rand.Rand, n int) forkProgram {
	kinds := []string{"load", "load", "load", "batch", "flush", "fence",
		"timeload", "sleep", "syscall", "enclave"}
	prog := make(forkProgram, n)
	for i := range prog {
		prog[i] = forkOp{
			Kind: kinds[rng.Intn(len(kinds))],
			IP:   uint64(rng.Intn(24)),
			Page: rng.Intn(forkRigPages),
			Line: rng.Intn(64),
			N:    rng.Intn(96),
		}
	}
	return prog
}

// runForkIsolation executes the full property for one program set: fork
// len(programs) machines from one warmed parent, interleave the programs
// across the forks in seed-derived chunks, and compare every fork's final
// hash against a solo run of the same program on a restore of the same
// parent. Returns the index of the first diverging fork and a description,
// or -1 when the property holds.
func runForkIsolation(seed int64, programs []forkProgram) (int, string) {
	parent := newForkRig(seed)
	parentHash := parent.m.StateHash()

	forks := make([]*forkRig, len(programs))
	for i := range programs {
		fm, err := parent.m.Fork()
		if err != nil {
			return i, "fork refused: " + err.Error()
		}
		fr, err := parent.rebind(fm)
		if err != nil {
			return i, err.Error()
		}
		forks[i] = fr
	}

	// Interleaved execution: randomized round-robin chunks, deterministic
	// per seed so failures replay exactly.
	irng := rand.New(rand.NewSource(seed*1000 + 7))
	cursors := make([]int, len(programs))
	for {
		remaining := false
		for i, prog := range programs {
			if cursors[i] >= len(prog) {
				continue
			}
			remaining = true
			chunk := 1 + irng.Intn(4)
			for n := 0; n < chunk && cursors[i] < len(prog); n++ {
				forks[i].exec(prog[cursors[i]])
				cursors[i]++
			}
		}
		if !remaining {
			break
		}
	}

	// Reference: the same programs, each alone on a restore of an
	// identically warmed machine.
	ref := newForkRig(seed)
	snap, err := ref.m.Snapshot()
	if err != nil {
		return 0, "snapshot: " + err.Error()
	}
	for i, prog := range programs {
		if err := ref.m.Restore(snap); err != nil {
			return i, "restore: " + err.Error()
		}
		rr, err := ref.rebind(ref.m)
		if err != nil {
			return i, err.Error()
		}
		for _, op := range prog {
			rr.exec(op)
		}
		if got, want := forks[i].m.StateHash(), ref.m.StateHash(); got != want {
			return i, fmt.Sprintf("fork %d hash %#016x, solo restore run %#016x", i, got, want)
		}
		if err := forks[i].m.Audit(); err != nil {
			return i, fmt.Sprintf("fork %d failed final audit: %v", i, err)
		}
	}

	if got := parent.m.StateHash(); got != parentHash {
		return 0, fmt.Sprintf("parent hash mutated by fork runs: %#016x -> %#016x", parentHash, got)
	}
	return -1, ""
}

// shrinkForkProgram minimises the diverging fork's program with delta
// debugging (chunk removal down to single ops), holding the other forks'
// programs fixed; any surviving failure counts, so the result is a minimal
// counterexample for the seed.
func shrinkForkProgram(seed int64, programs []forkProgram, bad int) []forkProgram {
	fails := func(cand []forkProgram) bool {
		i, _ := runForkIsolation(seed, cand)
		return i >= 0
	}
	cur := programs[bad]
	rebuild := func(p forkProgram) []forkProgram {
		out := append([]forkProgram(nil), programs...)
		out[bad] = p
		return out
	}
	for chunk := len(cur) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start < len(cur); {
			cand := make(forkProgram, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand = append(cand, cur[end:]...)
			if fails(rebuild(cand)) {
				cur = cand
				removedAny = true
			} else {
				start += chunk
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return rebuild(cur)
}

const forkPropCaseDir = "testdata/fork_counterexamples"

// TestForkIsolationProperty is the property test: randomized program sets
// over many seeds, three forks each, with failures shrunk and persisted.
func TestForkIsolationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short")
	}
	const nForks = 3
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		programs := make([]forkProgram, nForks)
		for i := range programs {
			programs[i] = genForkProgram(rng, 30+rng.Intn(90))
		}
		bad, desc := runForkIsolation(seed, programs)
		if bad < 0 {
			continue
		}
		min := shrinkForkProgram(seed, programs, bad)
		minBad, minDesc := runForkIsolation(seed, min)
		path := saveForkPropCase(t, forkPropCase{Seed: seed, Bad: minBad, Programs: min})
		t.Fatalf("seed %d: fork isolation violated at fork %d (%s); shrunk program %d to %d ops (%s), saved to %s",
			seed, bad, desc, minBad, len(min[minBad]), minDesc, path)
	}
}

func saveForkPropCase(t *testing.T, c forkPropCase) string {
	t.Helper()
	if err := os.MkdirAll(forkPropCaseDir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", forkPropCaseDir, err)
		return "(unsaved)"
	}
	path := filepath.Join(forkPropCaseDir, fmt.Sprintf("seed%d.json", c.Seed))
	data, err := json.MarshalIndent(c, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		t.Logf("cannot save counterexample: %v", err)
		return "(unsaved)"
	}
	return path
}

// TestForkIsolationRegressions replays every stored (previously shrunk)
// counterexample, so a fixed fork-isolation bug stays fixed.
func TestForkIsolationRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(forkPropCaseDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no stored counterexamples")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var c forkPropCase
			if err := json.Unmarshal(data, &c); err != nil {
				t.Fatal(err)
			}
			if bad, desc := runForkIsolation(c.Seed, c.Programs); bad >= 0 {
				t.Fatalf("stored counterexample still diverges at fork %d: %s", bad, desc)
			}
		})
	}
}

// TestForkRefusedMidSchedulerRun pins Fork's one refusal: forking while the
// scheduler is mid-run would capture a half-applied context switch.
func TestForkRefusedMidSchedulerRun(t *testing.T) {
	m := NewMachine(Quiet(CoffeeLake(3)))
	var ferr error
	m.Spawn(m.NewProcess("p"), "t", func(e *Env) {
		_, ferr = m.Fork()
	})
	m.Run()
	if ferr == nil {
		t.Fatal("Fork inside a scheduler run did not refuse")
	}
}
