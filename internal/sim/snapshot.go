package sim

import (
	"fmt"

	"afterimage/internal/cache"
	"afterimage/internal/prefetcher"
	"afterimage/internal/statehash"
	"afterimage/internal/tlb"
)

// MachineSnapshot is a deterministic full-state capture of one machine:
// every microarchitectural component plus the clock, counters and RNG
// positions. Restoring it onto the machine it was taken from (or an
// identically configured one mid-equivalent run) reproduces the exact
// simulated state, hash-identically.
type MachineSnapshot struct {
	Clock          uint64
	DomainSwitches uint64
	SyscallCount   uint64
	SMTOps         int
	SinceAudit     int
	JitterDraws    uint64
	NoiseDraws     uint64

	Cache cache.HierarchySnapshot
	TLB   tlb.TLBSnapshot
	Pref  prefetcher.SuiteSnapshot
}

// Snapshot captures the machine's complete state. It refuses to run while
// the scheduler is mid-run: parked task goroutines hold unserialisable
// execution state, so a snapshot there could never restore faithfully.
func (m *Machine) Snapshot() (*MachineSnapshot, error) {
	if m.sched.running {
		return nil, &SimFault{
			Kind: FaultAPIMisuse, Domain: DomainUser, Cycle: m.clock,
			Msg: "Snapshot during an active scheduler run",
		}
	}
	return &MachineSnapshot{
		Clock:          m.clock,
		DomainSwitches: m.domainSwitches,
		SyscallCount:   m.syscallCount,
		SMTOps:         m.smtOps,
		SinceAudit:     m.sinceAudit,
		JitterDraws:    m.jitterSrc.Draws(),
		NoiseDraws:     m.noiseSrc.Draws(),
		Cache:          m.Mem.Snapshot(),
		TLB:            m.TLB.Snapshot(),
		Pref:           m.Pref.Snapshot(),
	}, nil
}

// Restore adopts a snapshot previously taken from this machine (or one with
// identical configuration). State is adopted verbatim — a snapshot of a
// corrupted machine restores corrupted, and Audit still flags it.
func (m *Machine) Restore(snap *MachineSnapshot) error {
	if m.sched.running {
		return &SimFault{
			Kind: FaultAPIMisuse, Domain: DomainUser, Cycle: m.clock,
			Msg: "Restore during an active scheduler run",
		}
	}
	if snap == nil {
		return fmt.Errorf("sim: nil snapshot")
	}
	if err := m.Mem.Restore(snap.Cache); err != nil {
		return fmt.Errorf("sim: restore cache: %w", err)
	}
	if err := m.TLB.Restore(snap.TLB); err != nil {
		return fmt.Errorf("sim: restore tlb: %w", err)
	}
	if err := m.Pref.Restore(snap.Pref); err != nil {
		return fmt.Errorf("sim: restore prefetcher: %w", err)
	}
	m.clock = snap.Clock
	m.domainSwitches = snap.DomainSwitches
	m.syscallCount = snap.SyscallCount
	m.smtOps = snap.SMTOps
	m.sinceAudit = snap.SinceAudit
	m.jitterSrc.Restore(snap.JitterDraws)
	m.noiseSrc.Restore(snap.NoiseDraws)
	return nil
}

// asidNormalize maps the machine's raw ASIDs (allocated from a process-
// global counter, so not reproducible across processes) onto stable values:
// the kernel space becomes 1 and user processes 2, 3, ... in creation order.
// Unknown ASIDs (a corrupted TLB entry) pass through raw.
func (m *Machine) asidNormalize() func(uint64) uint64 {
	table := map[uint64]uint64{m.Kernel.AS.ID: 1}
	for i, p := range m.procs {
		table[p.AS.ID] = uint64(i + 2)
	}
	return func(asid uint64) uint64 {
		if n, ok := table[asid]; ok {
			return n
		}
		return asid
	}
}

// Component-hash keys, in the fixed order StateHash combines them.
var componentOrder = []string{"cache.l1", "cache.l2", "cache.llc", "tlb", "prefetcher", "machine"}

// ComponentHashes returns the stable per-component state digests. The
// "machine" component covers the clock, scheduler counters, RNG positions
// and the address-space layouts of the kernel plus every process.
func (m *Machine) ComponentHashes() map[string]uint64 {
	return map[string]uint64{
		"cache.l1":   m.Mem.L1.StateHash(),
		"cache.l2":   m.Mem.L2.StateHash(),
		"cache.llc":  m.Mem.LLC.StateHash(),
		"tlb":        m.TLB.StateHash(m.asidNormalize()),
		"prefetcher": m.Pref.StateHash(),
		"machine":    m.machineHash(),
	}
}

// machineHash digests the machine-level scalar state.
func (m *Machine) machineHash() uint64 {
	h := statehash.New()
	h.U64(m.clock).U64(m.domainSwitches).U64(m.syscallCount).Int(m.smtOps)
	h.U64(m.jitterSrc.Draws()).U64(m.noiseSrc.Draws())
	spaces := append([]*Process{m.Kernel}, m.procs...)
	h.Int(len(spaces))
	for _, p := range spaces {
		h.Str(p.Name)
		maps := p.AS.Mappings()
		h.Int(len(maps))
		for _, mp := range maps {
			h.U64(uint64(mp.Base)).U64(mp.Length).Int(int(mp.Kind)).U64s(mp.Frames())
		}
	}
	return h.Sum()
}

// StateHash folds every component digest, in fixed order, into one 64-bit
// machine-state hash — the value the replay harness compares point by point.
func (m *Machine) StateHash() uint64 {
	hashes := m.ComponentHashes()
	h := statehash.New()
	for _, name := range componentOrder {
		h.Str(name).Combine(hashes[name])
	}
	return h.Sum()
}
