package sim

import (
	"fmt"

	"afterimage/internal/cache"
	"afterimage/internal/mem"
)

// Env is the instruction-level API handed to simulated code. Every method
// advances the machine clock and exercises the simulated hardware, so a Go
// function driving an Env behaves like a program on the modelled core.
type Env struct {
	m      *Machine
	proc   *Process
	domain Domain
	task   *task    // nil for Direct envs
	caller *Process // for kernel envs: the syscall-issuing process
	lastIP uint64   // IP of the most recent load (fault diagnostics)
}

// Machine returns the underlying machine.
func (e *Env) Machine() *Machine { return e.m }

// Process returns the owning process.
func (e *Env) Process() *Process { return e.proc }

// Domain reports the current privilege domain.
func (e *Env) Domain() Domain { return e.domain }

// PID reports the context ID used for prefetcher tagging.
func (e *Env) PID() int {
	if e.domain == DomainKernel {
		return KernelPID
	}
	return e.proc.PID
}

// Now reports the machine clock.
func (e *Env) Now() uint64 { return e.m.Now() }

// addressSpace picks the translation context for regular accesses.
func (e *Env) addressSpace() *mem.AddressSpace {
	if e.domain == DomainKernel {
		return e.m.Kernel.AS
	}
	return e.proc.AS
}

// Load executes a load instruction at the given IP touching virtual address
// v; it returns the raw latency in cycles.
func (e *Env) Load(ip uint64, v mem.VAddr) uint64 {
	e.m.checkBudget(e)
	e.lastIP = ip
	lat := e.m.load(ip, v, e.PID(), e.addressSpace())
	e.m.tick(e)
	return lat
}

// LoadBatch executes a chunk of load instructions back to back, appending
// each load's raw latency to lats and returning the extended slice (pass
// a reused buffer — or nil — exactly like append). The batch is equivalent
// to calling Load per element: same state transitions, same latencies,
// same faults at the same element; only the per-load dispatch is amortised
// across the chunk. A caller reusing lats' capacity pays zero allocations
// in steady state.
func (e *Env) LoadBatch(ops []LoadOp, lats []uint64) []uint64 {
	return e.m.loadBatch(e, ops, lats)
}

// TimeLoad executes a load bracketed by serialising timestamp reads and
// returns the measured latency (true latency + overhead + jitter).
func (e *Env) TimeLoad(ip uint64, v mem.VAddr) uint64 {
	e.m.checkBudget(e)
	e.lastIP = ip
	lat := e.m.timedLoad(ip, v, e.PID(), e.addressSpace())
	e.m.tick(e)
	return lat
}

// LoadUser is a kernel-mode load that translates through the syscall
// caller's address space (copy_from_user-style access to user memory).
func (e *Env) LoadUser(ip uint64, v mem.VAddr) uint64 {
	e.m.checkBudget(e)
	if e.domain != DomainKernel || e.caller == nil {
		panic(&SimFault{
			Kind: FaultAPIMisuse, Task: e.taskName(), Domain: e.domain,
			Cycle: e.m.Now(), IP: ip, Addr: v,
			Msg: "LoadUser outside a syscall handler",
		})
	}
	e.lastIP = ip
	return e.m.load(ip, v, KernelPID, e.caller.AS)
}

// taskName reports the owning task's name, or "" for Direct envs.
func (e *Env) taskName() string {
	if e.task == nil {
		return ""
	}
	return e.task.name
}

// Flush issues clflush for the line containing v.
func (e *Env) Flush(v mem.VAddr) {
	e.m.checkBudget(e)
	e.m.flush(v, e.addressSpace())
	e.m.tick(e)
}

// FlushRange clflushes every line of [v, v+n).
func (e *Env) FlushRange(v mem.VAddr, n uint64) {
	for off := uint64(0); off < n; off += mem.LineSize {
		e.Flush(v + mem.VAddr(off))
	}
}

// Fence executes a serialising memory fence (mfence). Per the Intel manual
// note the artifact relies on (appendix A.6), the barrier stops in-flight
// stream detection, so the DCU/DPL/streamer detectors reset; the IP-stride
// history table survives.
func (e *Env) Fence() {
	e.m.checkBudget(e)
	e.m.Pref.FenceReset()
	e.m.advance(20)
	e.m.tick(e)
}

// Probe inspects, without architectural effect, which level would serve v.
// It models an oracle used only by tests and figure annotation — attacks
// must use TimeLoad.
func (e *Env) Probe(v mem.VAddr) cache.Level {
	pa, ok := e.addressSpace().Translate(v)
	if !ok {
		return cache.LevelDRAM
	}
	return e.m.Mem.Probe(pa)
}

// Cached reports whether v is resident in any cache level (oracle; tests
// and harness annotation only).
func (e *Env) Cached(v mem.VAddr) bool { return e.Probe(v) != cache.LevelDRAM }

// WarmTLB pre-installs the translation of v, matching the paper's threat-
// model assumption that victim pages are TLB-resident.
func (e *Env) WarmTLB(v mem.VAddr) { e.m.TLB.Warm(e.addressSpace().ID, v) }

// Mmap maps fresh memory into the current process.
func (e *Env) Mmap(length uint64, kind mem.MapKind) *mem.Mapping {
	e.m.checkBudget(e)
	e.m.advance(600) // syscall-ish cost
	mp, err := e.proc.AS.Mmap(length, kind)
	if err != nil {
		panic(&SimFault{
			Kind: FaultOOM, Task: e.taskName(), Domain: e.domain,
			Cycle: e.m.Now(), Msg: err.Error(),
		})
	}
	return mp
}

// Sleep advances the clock by the given number of cycles (computation that
// does not touch memory).
func (e *Env) Sleep(cycles uint64) {
	e.m.checkBudget(e)
	e.m.advance(cycles)
	e.m.tick(e)
}

// Yield gives up the CPU (sched_yield): the scheduler picks the next
// runnable task and applies domain-switch costs and noise. On a Direct env
// it only advances time.
func (e *Env) Yield() {
	e.m.checkBudget(e)
	if e.task == nil {
		e.m.advance(e.m.Cfg.Noise.ThreadSwitchCycles)
		return
	}
	e.m.sched.yield(e.task)
}

// Syscall transfers control to the registered kernel handler. The handler
// runs synchronously in the kernel domain on this core, sharing the
// prefetcher and caches — Observation 2 of the paper.
func (e *Env) Syscall(num int, args ...uint64) uint64 {
	e.m.checkBudget(e)
	h, ok := e.m.syscalls[num]
	if !ok {
		panic(&SimFault{
			Kind: FaultBadSyscall, Task: e.taskName(), Domain: e.domain,
			Cycle: e.m.Now(), Msg: fmt.Sprintf("unknown syscall %d", num),
		})
	}
	e.m.syscallCount++
	e.m.advance(e.m.Cfg.Noise.SyscallCycles / 2)
	e.m.kernelNoise(e.m.Cfg.Noise.SyscallKernelLines, e.m.Cfg.Noise.SyscallKernelIPLoads)
	kenv := &Env{m: e.m, proc: e.m.Kernel, domain: DomainKernel, task: e.task, caller: e.proc}
	ret := h(kenv, args...)
	e.m.advance(e.m.Cfg.Noise.SyscallCycles / 2)
	return ret
}

// EnclaveCall runs fn inside an SGX-style enclave domain: entry and exit
// cost EENTER/EEXIT cycles, but — as §4.6 established — the prefetcher state
// and any prefetched lines survive the transition.
func (e *Env) EnclaveCall(fn func(*Env)) {
	e.m.checkBudget(e)
	e.m.advance(e.m.Cfg.Noise.EnclaveSwitchCycles / 2)
	eenv := &Env{m: e.m, proc: e.proc, domain: DomainEnclave, task: e.task}
	fn(eenv)
	e.m.advance(e.m.Cfg.Noise.EnclaveSwitchCycles / 2)
}

// BeginPhase opens an attack-phase span (train/trigger/probe/decode) on the
// machine's telemetry hub at the current cycle. Phases do not nest: beginning
// one implicitly ends the active one, so interleaved attacker/victim tasks
// keep a single well-defined phase. Always cheap; tracing need not be on.
func (e *Env) BeginPhase(name string) { e.m.tel.BeginPhase(name) }

// EndPhase closes the active attack-phase span (no-op when none is open).
func (e *Env) EndPhase() { e.m.tel.EndPhase() }

// HitThreshold exposes the configured hit/miss latency threshold (the
// paper's 120-cycle rule).
func (e *Env) HitThreshold() uint64 { return e.m.Cfg.Measure.HitThreshold }

// Shuffle returns a deterministic Fisher–Yates permutation of [0, n) using
// the machine RNG — the artifact's randomised reload order (appendix A.6).
func (e *Env) Shuffle(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := e.m.noise
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
