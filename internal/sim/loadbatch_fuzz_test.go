package sim

import (
	"testing"

	"afterimage/internal/mem"
)

// FuzzLoadBatchEquivalence checks the batched load API against the one-call
// path it amortizes: an arbitrary trace chunk, decoded from the fuzz input
// and split into arbitrary batch boundaries, must produce the same latency
// for every element and leave the machine in a bit-identical state (full
// state hash, RNG positions included) as the same trace fed through
// Env.Load one call at a time on an identically seeded machine.
func FuzzLoadBatchEquivalence(f *testing.F) {
	f.Add(int64(1), byte(4), []byte{0, 0, 0, 1, 2, 3, 7, 31, 63})
	f.Add(int64(42), byte(1), []byte{9, 9, 9, 9, 9, 9})
	f.Add(int64(-7), byte(0), []byte{255, 254, 253, 1, 1, 1, 128, 64, 32, 16, 8, 4})
	f.Fuzz(func(t *testing.T, seed int64, chunk byte, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		const pages = 32
		boot := func() (*Machine, *Env, *mem.Mapping) {
			m := NewMachine(CoffeeLake(seed)) // noisy: jitter/noise RNGs live
			env := m.Direct(m.NewProcess("fuzz"))
			return m, env, env.Mmap(pages*mem.PageSize, mem.MapLocked)
		}
		ma, ea, bufA := boot()
		mb, eb, bufB := boot()
		if bufA.Base != bufB.Base {
			t.Fatalf("identically seeded machines mapped at %#x vs %#x", bufA.Base, bufB.Base)
		}

		// Decode: three bytes per load — IP selector, page, line.
		var ops []LoadOp
		for i := 0; i+3 <= len(data); i += 3 {
			ip := 0x400000 + uint64(data[i]%24)*0x40
			va := bufA.Base + mem.VAddr(data[i+1]%pages)*mem.PageSize +
				mem.VAddr(data[i+2]%64)*mem.LineSize
			ops = append(ops, LoadOp{IP: ip, VA: va})
		}

		latsA := make([]uint64, 0, len(ops))
		for _, op := range ops {
			latsA = append(latsA, ea.Load(op.IP, op.VA))
		}

		// Batched: the same ops split at arbitrary boundaries, reusing one
		// result buffer across calls as the sweep hot loop does.
		per := int(chunk%16) + 1
		latsB := make([]uint64, 0, len(ops))
		for start := 0; start < len(ops); start += per {
			end := start + per
			if end > len(ops) {
				end = len(ops)
			}
			latsB = eb.LoadBatch(ops[start:end], latsB)
		}

		if len(latsA) != len(latsB) {
			t.Fatalf("per-load path returned %d latencies, batch %d", len(latsA), len(latsB))
		}
		for i := range latsA {
			if latsA[i] != latsB[i] {
				t.Fatalf("load %d (ip %#x va %#x): per-load latency %d, batched %d",
					i, ops[i].IP, uint64(ops[i].VA), latsA[i], latsB[i])
			}
		}
		if ha, hb := ma.StateHash(), mb.StateHash(); ha != hb {
			t.Fatalf("state diverged after %d loads: per-load %#016x, batched %#016x", len(ops), ha, hb)
		}
	})
}
