package sim

import (
	"errors"
	"testing"
	"time"

	"afterimage/internal/mem"
)

// TestPanickingTaskDoesNotDeadlock is the regression test for the scheduler
// deadlock: a panicking task body used to kill its goroutine without sending
// a schedEvent, blocking Run on <-s.events forever. Now the panic is
// recovered, forwarded as a typed SimFault, and the surviving tasks drain.
func TestPanickingTaskDoesNotDeadlock(t *testing.T) {
	m := quietMachine()
	p1 := m.NewProcess("a")
	p2 := m.NewProcess("b")
	victimSteps := 0
	m.Spawn(p1, "bomber", func(e *Env) {
		e.Yield()
		panic("victim body misbehaved")
	})
	m.Spawn(p2, "survivor", func(e *Env) {
		for i := 0; i < 3; i++ {
			victimSteps++
			e.Yield()
		}
	})
	done := make(chan struct{})
	var cycles uint64
	var err error
	go func() {
		cycles, err = m.RunChecked()
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("RunChecked deadlocked on a panicking task")
	}
	if err == nil {
		t.Fatal("no fault reported")
	}
	f, ok := AsFault(err)
	if !ok {
		t.Fatalf("error %v is not a SimFault", err)
	}
	if f.Kind != FaultPanic || f.Task != "bomber" {
		t.Fatalf("fault = %+v, want panic fault in task bomber", f)
	}
	if victimSteps != 3 {
		t.Fatalf("surviving task ran %d/3 steps", victimSteps)
	}
	if cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	if len(m.Faults()) != 1 {
		t.Fatalf("Faults() = %v", m.Faults())
	}
}

// timeoutC returns a channel that fires after a generous wall-clock bound.
// The sim is fast; hitting this means a real deadlock, not a slow machine.
func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(30 * time.Second)
}

// TestSegfaultFaultCarriesContext: an unmapped access inside a scheduled
// task terminates it with a segfault SimFault naming the task, IP, address
// and cycle instead of crashing the process.
func TestSegfaultFaultCarriesContext(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("proc")
	m.Spawn(p, "wild", func(e *Env) {
		e.Load(0xBEEF, 0xdead0000)
	})
	_, err := m.RunChecked()
	f, ok := AsFault(err)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if f.Kind != FaultSegfault || f.Task != "wild" || f.IP != 0xBEEF || f.Addr != 0xdead0000 {
		t.Fatalf("fault = %+v", f)
	}
	if f.Space != "proc" {
		t.Fatalf("fault space = %q", f.Space)
	}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
}

// TestWatchdogBudget: a task that never yields hits the cycle budget and
// terminates with a diagnosable budget fault instead of hanging Run forever.
func TestWatchdogBudget(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("p")
	m.Spawn(p, "spinner", func(e *Env) {
		for { // never yields, never returns
			e.Sleep(1000)
		}
	})
	done := make(chan struct{})
	var err error
	go func() {
		_, err = m.RunBudget(2_000_000)
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("RunBudget did not terminate a never-yielding task")
	}
	if !IsBudgetFault(err) {
		t.Fatalf("err = %v, want budget fault", err)
	}
	f, _ := AsFault(err)
	if f.Task != "spinner" {
		t.Fatalf("budget fault names task %q", f.Task)
	}
	if m.Now() > 2_010_000 {
		t.Fatalf("clock ran to %d, far past the 2M budget", m.Now())
	}
}

// TestWatchdogTerminatesAllTasks: when the budget trips, every remaining
// task is terminated (each faults on its next operation) and Run returns.
func TestWatchdogTerminatesAllTasks(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("p")
	spin := func(e *Env) {
		for {
			e.Sleep(500)
			e.Yield()
		}
	}
	m.Spawn(p, "s1", spin)
	m.Spawn(p, "s2", spin)
	_, err := m.RunBudget(1_000_000)
	if !IsBudgetFault(err) {
		t.Fatalf("err = %v", err)
	}
	if n := len(m.Faults()); n != 2 {
		t.Fatalf("%d faults, want 2 (one per spinning task)", n)
	}
}

// TestConfigMaxCycles: the watchdog can be armed at machine construction.
func TestConfigMaxCycles(t *testing.T) {
	cfg := Quiet(CoffeeLake(1))
	cfg.MaxCycles = 500_000
	m := NewMachine(cfg)
	p := m.NewProcess("p")
	m.Spawn(p, "spinner", func(e *Env) {
		for {
			e.Sleep(100)
		}
	})
	_, err := m.RunChecked()
	if !IsBudgetFault(err) {
		t.Fatalf("err = %v, want budget fault from Config.MaxCycles", err)
	}
}

// TestReentrantRunReturnsError: calling Run from inside a task body returns
// an api-misuse fault instead of panicking.
func TestReentrantRunReturnsError(t *testing.T) {
	m := quietMachine()
	p := m.NewProcess("p")
	var reErr error
	m.Spawn(p, "outer", func(e *Env) {
		_, reErr = m.RunChecked()
	})
	if _, err := m.RunChecked(); err != nil {
		t.Fatalf("outer run failed: %v", err)
	}
	f, ok := AsFault(reErr)
	if !ok || f.Kind != FaultAPIMisuse {
		t.Fatalf("re-entrant RunChecked returned %v, want api-misuse fault", reErr)
	}
}

// TestFaultDeterminism: a run containing a faulting task is just as
// reproducible as a clean one.
func TestFaultDeterminism(t *testing.T) {
	run := func() (uint64, string) {
		m := NewMachine(CoffeeLake(3))
		p := m.NewProcess("p")
		buf := m.Direct(p).Mmap(mem.PageSize, mem.MapLocked)
		m.Spawn(p, "worker", func(e *Env) {
			for i := 0; i < 50; i++ {
				e.WarmTLB(buf.Base)
				e.Load(0x40, buf.Base+mem.VAddr((i%64)*64))
				e.Yield()
			}
		})
		m.Spawn(p, "bomber", func(e *Env) {
			for i := 0; i < 10; i++ {
				e.Yield()
			}
			e.Load(0x41, 0xbad00000) // segfault
		})
		cycles, err := m.RunChecked()
		return cycles, err.Error()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("nondeterministic fault run: (%d, %q) vs (%d, %q)", c1, e1, c2, e2)
	}
}

// TestUnknownSyscallFaultTyped: the unknown-syscall panic now carries a
// typed fault.
func TestUnknownSyscallFaultTyped(t *testing.T) {
	m := quietMachine()
	env := m.Direct(m.NewProcess("p"))
	defer func() {
		r := recover()
		f, ok := r.(*SimFault)
		if !ok || f.Kind != FaultBadSyscall {
			t.Fatalf("recovered %v, want bad-syscall SimFault", r)
		}
	}()
	env.Syscall(999)
}

// TestDirectEnvBudgetFault: the watchdog also guards schedulerless Direct
// envs (the panic propagates to the caller as a typed fault).
func TestDirectEnvBudgetFault(t *testing.T) {
	cfg := Quiet(CoffeeLake(1))
	cfg.MaxCycles = 10_000
	m := NewMachine(cfg)
	env := m.Direct(m.NewProcess("p"))
	defer func() {
		f, ok := recover().(*SimFault)
		if !ok || f.Kind != FaultBudget {
			t.Fatalf("want budget fault, got %v", f)
		}
	}()
	for {
		env.Sleep(1000)
	}
}

// TestErrorsIsMatchesKind: errors.Is matches SimFaults by kind.
func TestErrorsIsMatchesKind(t *testing.T) {
	err := error(&SimFault{Kind: FaultBudget, Task: "x"})
	if !errors.Is(err, &SimFault{Kind: FaultBudget}) {
		t.Fatal("errors.Is failed to match by kind")
	}
	if errors.Is(err, &SimFault{Kind: FaultSegfault}) {
		t.Fatal("errors.Is matched the wrong kind")
	}
}

// TestFaultKindStrings covers the diagnostic names.
func TestFaultKindStrings(t *testing.T) {
	kinds := []FaultKind{FaultPanic, FaultSegfault, FaultBudget, FaultBadSyscall, FaultAPIMisuse, FaultOOM}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
	}
}
