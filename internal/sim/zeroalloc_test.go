package sim

import (
	"testing"

	"afterimage/internal/mem"
)

// TestHotPathZeroAlloc pins the steady-state load path — translate, TLB,
// cache hierarchy, prefetcher suite, telemetry counters — at zero heap
// allocations per access. Any allocation creeping into this path multiplies
// by the millions of loads per experiment, so a regression here fails
// loudly rather than showing up as a silent slowdown.
func TestHotPathZeroAlloc(t *testing.T) {
	m := NewMachine(Quiet(CoffeeLake(1)))
	env := m.Direct(m.NewProcess("zeroalloc"))
	buf := env.Mmap(16*mem.PageSize, mem.MapLocked)
	for i := 0; i < 16; i++ {
		env.Load(0x400000, buf.Base+mem.VAddr(i)*mem.PageSize)
	}
	// Warm every path the measured loop takes: demand hits, strided loads
	// that keep the IP-stride prefetcher firing, and timed loads. The first
	// few prefetcher calls may grow the suite's scratch buffer; after the
	// warmup it is at capacity.
	for i := 0; i < 4096; i++ {
		env.Load(0x400040, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
		env.Load(0x400080, buf.Base+mem.VAddr(i%8)*7*mem.LineSize)
		env.TimeLoad(0x4000c0, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
	}

	// The batched path shares the per-load core with Env.Load, so the same
	// warmup covers it; the ops and latency buffers are caller-owned and
	// reused, which is what keeps the batch itself allocation-free.
	ops := make([]LoadOp, 64)
	for i := range ops {
		ops[i] = LoadOp{IP: 0x400040, VA: buf.Base + mem.VAddr(i%(16*64))*mem.LineSize}
	}
	lats := make([]uint64, 0, len(ops))
	env.LoadBatch(ops, lats)

	cases := []struct {
		name string
		op   func(i int)
	}{
		{"demand load", func(i int) {
			env.Load(0x400040, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
		}},
		{"strided load with prefetches", func(i int) {
			env.Load(0x400080, buf.Base+mem.VAddr(i%8)*7*mem.LineSize)
		}},
		{"timed load", func(i int) {
			env.TimeLoad(0x4000c0, buf.Base+mem.VAddr(i%(16*64))*mem.LineSize)
		}},
		{"batched load", func(i int) {
			env.LoadBatch(ops, lats[:0])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := 0
			allocs := testing.AllocsPerRun(2000, func() {
				tc.op(i)
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s allocates %.2f times per op, want 0", tc.name, allocs)
			}
		})
	}
}
