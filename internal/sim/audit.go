package sim

import (
	"fmt"
	"strings"

	"afterimage/internal/invariant"
	"afterimage/internal/mem"
)

// buildInvariants wires the per-component structural checkers into the
// machine's registry. Component names are stable: prefetcher.ipstride,
// cache.hierarchy, tlb, sched.
func (m *Machine) buildInvariants() *invariant.Registry {
	reg := invariant.New()
	reg.Register("prefetcher.ipstride", func() []invariant.Violation {
		return asViolations("prefetcher.ipstride", m.Pref.Audit())
	})
	reg.Register("cache.hierarchy", func() []invariant.Violation {
		return asViolations("cache.hierarchy", m.Mem.Audit())
	})
	reg.Register("tlb", func() []invariant.Violation {
		vs := asViolations("tlb", m.TLB.Audit())
		return append(vs, m.auditTLBCoherence()...)
	})
	reg.Register("sched", m.auditScheduler)
	reg.Register("mem.spaces", m.auditSpaces)
	return reg
}

// auditSpaces checks machine↔address-space wiring: every space (kernel plus
// processes) carries a distinct ASID, and the kernel noise region is one of
// THIS machine's kernel mappings with a live translation. The pointer
// identity check is what catches a botched fork: a forked machine whose
// noiseRegion still aims at the parent's mapping would silently read the
// parent's layout.
func (m *Machine) auditSpaces() []invariant.Violation {
	var vs []invariant.Violation
	seen := map[uint64]string{m.Kernel.AS.ID: m.Kernel.Name}
	for _, p := range m.procs {
		if prev, dup := seen[p.AS.ID]; dup {
			vs = append(vs, invariant.Violationf("mem.spaces", "address spaces %q and %q share ASID %d", prev, p.Name, p.AS.ID))
		}
		seen[p.AS.ID] = p.Name
	}
	owned := false
	for _, mp := range m.Kernel.AS.Mappings() {
		if mp == m.noiseRegion {
			owned = true
			break
		}
	}
	if !owned {
		vs = append(vs, invariant.Violationf("mem.spaces", "kernel noise region %#x not among this machine's kernel mappings", uint64(m.noiseRegion.Base)))
	} else if _, ok := m.Kernel.AS.Translate(m.noiseRegion.Base); !ok {
		vs = append(vs, invariant.Violationf("mem.spaces", "kernel noise region base %#x has no translation", uint64(m.noiseRegion.Base)))
	}
	return vs
}

func asViolations(component string, errs []error) []invariant.Violation {
	var vs []invariant.Violation
	for _, err := range errs {
		vs = append(vs, invariant.Violation{Component: component, Detail: err.Error()})
	}
	return vs
}

// auditTLBCoherence walks every valid TLB entry and checks it is backed by a
// page-table translation in the address space owning that ASID: a cached
// translation with no backing page is the desync a missed shootdown leaves.
func (m *Machine) auditTLBCoherence() []invariant.Violation {
	spaces := map[uint64]*mem.AddressSpace{m.Kernel.AS.ID: m.Kernel.AS}
	for _, p := range m.procs {
		spaces[p.AS.ID] = p.AS
	}
	var vs []invariant.Violation
	m.TLB.VisitEntries(func(asid, vpn uint64) {
		as, ok := spaces[asid]
		if !ok {
			vs = append(vs, invariant.Violationf("tlb", "entry (asid %d, vpn %#x) references unknown address space", asid, vpn))
			return
		}
		if _, ok := as.Translate(mem.VAddr(vpn << mem.PageShift)); !ok {
			vs = append(vs, invariant.Violationf("tlb", "entry (asid %d, vpn %#x) has no page-table backing in %q (stale translation)", asid, vpn, as.Name))
		}
	})
	return vs
}

// auditScheduler checks run-loop bookkeeping: while a run is active the
// current task must exist, be registered and not be done.
func (m *Machine) auditScheduler() []invariant.Violation {
	s := m.sched
	if !s.running {
		return nil
	}
	var vs []invariant.Violation
	if s.current == nil {
		return append(vs, invariant.Violationf("sched", "running with no current task"))
	}
	if s.current.done {
		vs = append(vs, invariant.Violationf("sched", "current task %q already done", s.current.name))
	}
	found := false
	for _, t := range s.tasks {
		if t == s.current {
			found = true
			break
		}
	}
	if !found {
		vs = append(vs, invariant.Violationf("sched", "current task %q not registered", s.current.name))
	}
	return vs
}

// Audit runs every registered invariant checker over the machine's state.
// It returns nil when the state is structurally sound, or a FaultCorruption
// *SimFault whose message lists every violation. The check is read-only:
// the clock does not advance and no RNG is drawn, so auditing never changes
// simulated outcomes.
func (m *Machine) Audit() error {
	m.auditRuns++
	vs := m.inv.Audit()
	if len(vs) == 0 {
		m.lastViolations = nil
		return nil
	}
	m.auditViolation += uint64(len(vs))
	m.lastViolations = vs
	details := make([]string, len(vs))
	for i, v := range vs {
		details[i] = v.String()
	}
	return &SimFault{
		Kind:  FaultCorruption,
		Cycle: m.clock,
		Msg:   fmt.Sprintf("%d invariant violation(s): %s", len(vs), strings.Join(details, "; ")),
	}
}

// AuditViolations returns the violations found by the most recent failing
// Audit (nil after a clean one).
func (m *Machine) AuditViolations() []invariant.Violation {
	return append([]invariant.Violation(nil), m.lastViolations...)
}

// AuditComponents lists the registered checker names.
func (m *Machine) AuditComponents() []string { return m.inv.Components() }

// SetAuditEvery enables the audit cadence: a full invariant audit every n
// domain switches, with a failing audit surfacing as a FaultCorruption task
// fault. Zero disables the cadence (the disabled path costs one integer
// compare per switch).
func (m *Machine) SetAuditEvery(n int) {
	if n < 0 {
		n = 0
	}
	m.auditEvery = n
	m.sinceAudit = 0
}

// AuditEvery reports the configured cadence (0 = disabled).
func (m *Machine) AuditEvery() int { return m.auditEvery }
