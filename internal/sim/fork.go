package sim

import (
	"fmt"
	"math/rand"

	"afterimage/internal/mem"
	"afterimage/internal/telemetry"
)

// Fork produces an independent machine whose simulated state is
// bit-identical to the receiver's: same clock, same warmed caches, TLB and
// prefetcher tables, same RNG stream positions, same address-space layouts.
// Campaign drivers warm one template machine per configuration and fork
// every sweep point's divergent suffix from it instead of re-running the
// shared warm prefix — forking is a few slice copies, orders of magnitude
// below machine construction plus warmup.
//
// Copied (deep): cache hierarchy (tags, replacement state, counters), TLB
// (entries re-tagged to the fork's fresh ASIDs), prefetcher suite, physical
// frame allocator, every address space (page tables, mappings, ASLR stream
// position), jitter/noise RNGs at their exact draw counts, clock and all
// scalar counters.
//
// Rebuilt fresh (per-machine identity, never shared): the scheduler, the
// telemetry hub with its registry samplers and latency histogram (samplers
// are closures over live counters — sharing them would let one machine's
// metrics read another's state), the invariant registry, and the way
// predictors and scratch buffers, which reset exactly as they do on
// Restore.
//
// Not carried over: the perturber, cancellation probe, pending fault and
// last-audit diagnostics — per-run harness attachments, installed by the
// driver on whichever machine it runs.
//
// Fork refuses while the scheduler is mid-run, for the same reason
// Snapshot does: parked task goroutines hold unserialisable state.
func (m *Machine) Fork() (*Machine, error) {
	if m.sched.running {
		return nil, &SimFault{
			Kind: FaultAPIMisuse, Domain: DomainUser, Cycle: m.clock,
			Msg: "Fork during an active scheduler run",
		}
	}
	f := &Machine{
		Cfg:  m.Cfg,
		Mem:  m.Mem.Fork(),
		Pref: m.Pref.Fork(),
		Phys: m.Phys.Clone(),

		clock:    m.clock,
		nextPID:  m.nextPID,
		syscalls: make(map[int]SyscallHandler, len(m.syscalls)),

		smtOps:      m.smtOps,
		budgetLimit: m.budgetLimit,

		auditEvery:     m.auditEvery,
		sinceAudit:     m.sinceAudit,
		auditRuns:      m.auditRuns,
		auditViolation: m.auditViolation,

		domainSwitches: m.domainSwitches,
		syscallCount:   m.syscallCount,
	}
	for num, h := range m.syscalls {
		f.syscalls[num] = h
	}
	f.jitterSrc = m.jitterSrc.Clone()
	f.jitter = rand.New(f.jitterSrc)
	f.noiseSrc = m.noiseSrc.Clone()
	f.noise = rand.New(f.noiseSrc)

	// Address spaces clone in creation order (kernel first, then processes),
	// so asidNormalize assigns the same stable numbers on both machines and
	// their state hashes agree. The clones draw fresh ASIDs from the global
	// allocator; remap re-tags the copied TLB entries so the fork's warmed
	// translations stay visible to its own processes. ASIDs outside the
	// table — e.g. a CorruptInsert entry referencing a dead space — pass
	// through raw, keeping audit-visible corruption audit-visible.
	remap := make(map[uint64]uint64, len(m.procs)+1)
	f.Kernel = &Process{PID: KernelPID, Name: m.Kernel.Name, AS: m.Kernel.AS.Clone(f.Phys)}
	remap[m.Kernel.AS.ID] = f.Kernel.AS.ID
	f.procs = make([]*Process, len(m.procs))
	for i, p := range m.procs {
		f.procs[i] = &Process{PID: p.PID, Name: p.Name, AS: p.AS.Clone(f.Phys)}
		remap[p.AS.ID] = f.procs[i].AS.ID
	}
	f.TLB = m.TLB.Fork(func(asid uint64) uint64 {
		if n, ok := remap[asid]; ok {
			return n
		}
		return asid
	})

	// Re-point the kernel noise region at the fork's own copy of the same
	// mapping (matched by position — Mappings preserves creation order).
	for i, mp := range m.Kernel.AS.Mappings() {
		if mp == m.noiseRegion {
			f.noiseRegion = f.Kernel.AS.Mappings()[i]
			break
		}
	}
	if f.noiseRegion == nil {
		return nil, fmt.Errorf("sim: fork: kernel noise region not found among kernel mappings")
	}

	f.sched = newScheduler(f)

	// Fresh hub + metric registration, mirroring NewMachineChecked: every
	// sampler closes over the FORK's counters.
	f.tel = telemetry.NewHub()
	f.tel.SetClock(func() uint64 { return f.clock })
	reg := f.tel.Registry()
	f.Mem.RegisterMetrics(reg)
	f.TLB.RegisterMetrics(reg)
	f.Pref.RegisterMetrics(reg)
	f.Pref.SetTelemetry(f.tel)
	reg.RegisterFunc("sched.switches", func() uint64 { return f.domainSwitches })
	reg.RegisterFunc("sched.syscalls", func() uint64 { return f.syscallCount })
	reg.RegisterFunc("audit.runs", func() uint64 { return f.auditRuns })
	reg.RegisterFunc("audit.violations", func() uint64 { return f.auditViolation })
	f.inv = f.buildInvariants()
	cfg := f.Cfg
	f.latHist = reg.Histogram("mem.load.latency", []uint64{
		cfg.Hierarchy.Lat.L1 + 1, cfg.Hierarchy.Lat.L2 + 1, cfg.Hierarchy.Lat.LLC + 1,
		cfg.Measure.HitThreshold, cfg.Hierarchy.Lat.DRAM + cfg.TLB.WalkLatency + 1,
	})
	return f, nil
}

// MustFork is Fork that panics on failure — for tests and drivers where a
// mid-run fork is a programming error.
func (m *Machine) MustFork() *Machine {
	f, err := m.Fork()
	if err != nil {
		panic(err)
	}
	return f
}

// Processes returns the machine's user processes in creation order — the
// handle a driver needs to resume work on a forked machine, whose Process
// structs are its own copies of the parent's.
func (m *Machine) Processes() []*Process {
	return append([]*Process(nil), m.procs...)
}

// LoadOp is one element of a batched trace chunk: a load instruction at IP
// touching virtual address VA.
type LoadOp struct {
	IP uint64
	VA mem.VAddr
}

// loadBatch replays a trace chunk through the per-load hot path with the
// dispatch hoisted out of the loop: the PID and translation context are
// fixed per Env (they depend only on the domain and owning process), so
// they are resolved once instead of per load. Each element then performs
// exactly the Env.Load sequence — budget check, lastIP, load, tick — so a
// batch is observationally identical to the per-load loop, element for
// element, fault for fault.
func (m *Machine) loadBatch(e *Env, ops []LoadOp, lats []uint64) []uint64 {
	pid := e.PID()
	as := e.addressSpace()
	for i := range ops {
		m.checkBudget(e)
		e.lastIP = ops[i].IP
		lat := m.load(ops[i].IP, ops[i].VA, pid, as)
		m.tick(e)
		lats = append(lats, lat)
	}
	return lats
}
