package cliobs

import (
	"context"
	"flag"
	"os/signal"
	"syscall"
	"time"

	"afterimage/internal/runner"
)

// RunnerFlags holds the supervised-campaign options every cmd/ binary
// shares: worker count, checkpoint/resume, and the per-job wall deadline.
type RunnerFlags struct {
	Jobs       int
	Checkpoint string
	Resume     bool
	Timeout    time.Duration
}

// RegisterRunner installs -jobs, -checkpoint, -resume and -timeout on the
// default flag set. Call before flag.Parse.
func RegisterRunner() *RunnerFlags {
	f := &RunnerFlags{}
	flag.IntVar(&f.Jobs, "jobs", 1, "parallel workers for supervised campaigns (results are identical for any value)")
	flag.StringVar(&f.Checkpoint, "checkpoint", "", "persist completed campaign points to this file (atomic write; campaigns derive per-name files from this stem)")
	flag.BoolVar(&f.Resume, "resume", false, "resume from the -checkpoint file, skipping already-completed points")
	flag.DurationVar(&f.Timeout, "timeout", 0, "per-point wall deadline (e.g. 30s); an overrunning point faults, is retried, and degrades if it keeps timing out (0 = none)")
	return f
}

// Context wraps ctx so SIGINT/SIGTERM cancel it: in-flight campaign points
// stop at the next watchdog poll, completed ones stay checkpointed, and a
// rerun with -resume picks up exactly where the signal landed. Callers must
// invoke the returned stop function.
func (f *RunnerFlags) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
}

// Options builds the runner options for a single-campaign binary.
func (f *RunnerFlags) Options() runner.Options {
	return runner.Options{
		Workers:        f.Jobs,
		JobTimeout:     f.Timeout,
		CheckpointPath: f.Checkpoint,
		Resume:         f.Resume,
	}
}

// OptionsFor namespaces the checkpoint per campaign tag, so a binary that
// runs several supervised campaigns (two sweep attacks, report plus
// mitigation) gives each its own resumable file derived from the one
// -checkpoint stem.
func (f *RunnerFlags) OptionsFor(tag string) runner.Options {
	o := f.Options()
	if o.CheckpointPath != "" && tag != "" {
		o.CheckpointPath += "." + tag
	}
	return o
}
