// Package cliobs gives every cmd/ binary the same observability surface:
// -trace exports a Chrome trace_event JSON of the run (chrome://tracing /
// Perfetto), -metrics prints the machine-wide registry snapshot, and -pprof
// serves the standard net/http/pprof endpoints while the simulation runs.
//
// Usage in a main:
//
//	obs := cliobs.Register()
//	flag.Parse()
//	obs.Start()
//	lab := afterimage.NewLab(...)
//	obs.Observe(lab)
//	... run experiments ...
//	obs.Finish()
package cliobs

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"

	"afterimage"
	"afterimage/internal/obslog"
)

// Flags holds the parsed observability options and the lab under
// observation.
type Flags struct {
	TracePath string
	TraceCap  int
	Metrics   bool
	PprofAddr string
	// AuditEvery is the invariant-audit cadence (Options.AuditEvery):
	// audit the full machine state every N domain switches, 0 = off.
	AuditEvery int
	// LogFormat selects the structured-log encoding: text (default) or json.
	LogFormat string
	// LogLevel is the minimum severity emitted: debug, info (default),
	// warn, or error.
	LogLevel string

	lab *afterimage.Lab
}

// Register installs -trace, -trace-cap, -metrics and -pprof on the default
// flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TracePath, "trace", "", "write a Chrome trace-event JSON of the run to this file (view in chrome://tracing or ui.perfetto.dev)")
	flag.IntVar(&f.TraceCap, "trace-cap", 0, "trace ring capacity in events (0 = default 256k; oldest events drop when exceeded)")
	flag.BoolVar(&f.Metrics, "metrics", false, "print the telemetry registry snapshot after the run")
	flag.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	flag.IntVar(&f.AuditEvery, "audit", 0, "audit the simulator's structural invariants every N domain switches; a failing audit aborts the experiment with a corruption fault (0 = off)")
	flag.StringVar(&f.LogFormat, "log-format", "text", "structured log encoding: text or json (one object per line, stable field order)")
	flag.StringVar(&f.LogLevel, "log-level", "info", "minimum log severity: debug, info, warn, or error")
	return f
}

// Logger builds the structured stderr logger the -log-format/-log-level
// flags describe. Call after flag.Parse; flag errors are reported rather
// than silently defaulted.
func (f *Flags) Logger() (*obslog.Logger, error) {
	level, err := obslog.ParseLevel(f.LogLevel)
	if err != nil {
		return nil, err
	}
	format, err := obslog.ParseFormat(f.LogFormat)
	if err != nil {
		return nil, err
	}
	return obslog.New(os.Stderr, level, format), nil
}

// LabOptions folds the observability flags that configure the lab itself
// (currently the audit cadence) into an options value. Mains pass their
// hand-built Options through this before NewLab.
func (f *Flags) LabOptions(opts afterimage.Options) afterimage.Options {
	opts.AuditEvery = f.AuditEvery
	return opts
}

// Start launches the pprof server, if requested. Call after flag.Parse.
func (f *Flags) Start() {
	if f.PprofAddr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(f.PprofAddr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", f.PprofAddr)
}

// Observe attaches the flags to a lab, enabling tracing when -trace was
// given. Binaries that build several labs observe the one whose run should
// be exported (trace and metrics apply to the last Observe'd lab).
func (f *Flags) Observe(lab *afterimage.Lab) {
	f.lab = lab
	if f.TracePath != "" {
		lab.EnableTrace(f.TraceCap)
	}
}

// Finish writes the trace file and prints the metrics snapshot and phase
// summaries, as requested. It returns an error instead of exiting so mains
// control their own status codes.
func (f *Flags) Finish() error {
	if f.lab == nil {
		return nil
	}
	if f.Metrics {
		fmt.Println("--- metrics ---")
		fmt.Print(f.lab.MetricsSnapshot().String())
		if phases := f.lab.PhaseSummaries(); len(phases) > 0 {
			fmt.Println("--- phases ---")
			for _, p := range phases {
				fmt.Printf("%-10s spans=%d cycles=%d events=%d\n", p.Name, p.Spans, p.Cycles, p.Events)
			}
		}
	}
	if f.TracePath == "" {
		return nil
	}
	out, err := os.Create(f.TracePath)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer out.Close()
	if err := f.lab.WriteTrace(out); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if d := f.lab.TraceDropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring overflowed, oldest %d events dropped (raise -trace-cap to keep more)\n", d)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", f.TracePath)
	return nil
}
