package trace

import "testing"

func TestSPECLikeSplit(t *testing.T) {
	profiles := SPECLike()
	if len(profiles) != 16 {
		t.Fatalf("%d profiles", len(profiles))
	}
	sensitive := 0
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.PrefetchSensitive() {
			sensitive++
		}
		total := p.StridedFrac + p.SequentialFrac + p.RandomFrac + p.PointerFrac
		if total < 0.99 || total > 1.01 {
			t.Fatalf("%s: load mix sums to %v", p.Name, total)
		}
		if p.LoadsPerKilo <= 0 || p.WorkingSetPages <= 0 {
			t.Fatalf("%s: degenerate intensity", p.Name)
		}
	}
	if sensitive != 8 {
		t.Fatalf("%d prefetch-sensitive profiles, want 8", sensitive)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := SPECLike()[0]
	a := NewGenerator(p, 42).Generate(1000)
	b := NewGenerator(p, 42).Generate(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := NewGenerator(p, 43).Generate(1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestStridedStreamsAreStrided(t *testing.T) {
	p := Profile{
		Name: "pure-stride", StridedStreams: 1, StrideLines: 7,
		StridedFrac: 1.0, WorkingSetPages: 64, LoadsPerKilo: 500,
	}
	recs := NewGenerator(p, 7).Generate(100)
	for i := 1; i < len(recs); i++ {
		d := int64(recs[i].Addr) - int64(recs[i-1].Addr)
		if d != 7*64 && d >= 0 { // wrap produces one negative jump
			t.Fatalf("record %d: delta %d, want %d", i, d, 7*64)
		}
	}
}

func TestPointerLoadsAreDependent(t *testing.T) {
	p := Profile{
		Name: "pure-chase", PointerFrac: 1.0,
		WorkingSetPages: 64, LoadsPerKilo: 100,
	}
	for _, r := range NewGenerator(p, 9).Generate(50) {
		if !r.Dependent {
			t.Fatal("pointer-chase record not marked dependent")
		}
	}
}

func TestGapMatchesIntensity(t *testing.T) {
	p := SPECLike()[0]
	r := NewGenerator(p, 1).Next()
	want := 1000/p.LoadsPerKilo - 1
	if r.Gap != want {
		t.Fatalf("gap = %d, want %d", r.Gap, want)
	}
}
