// Package trace generates synthetic SPEC CPU–like instruction traces for
// the §8.3 mitigation evaluation. The paper replays 1B-instruction SPEC
// CPU2006/2017 traces through ChampSim; we have no SPEC licence or traces,
// so each workload is modelled by the properties that matter to an
// IP-stride prefetcher study: how many concurrent strided load streams it
// has, how much of its load mix is sequential, random, or pointer-chasing,
// its working-set size, and its memory intensity. The generated record
// streams are deterministic per seed.
package trace

import "math/rand"

// Record is one memory instruction plus the count of non-memory
// instructions preceding it (the ChampSim trace shape).
type Record struct {
	Gap  int    // non-memory instructions before this load
	IP   uint64 // load instruction pointer
	Addr uint64 // virtual byte address
	// Dependent marks pointer-chase loads whose latency cannot overlap
	// with other misses (MLP = 1).
	Dependent bool
}

// Profile characterises one synthetic application.
type Profile struct {
	Name string
	// StridedStreams is the number of concurrent constant-stride load
	// streams (IP-stride prefetcher food).
	StridedStreams int
	// StrideLines is the stream stride in cache lines (> 4 so only the
	// IP-stride prefetcher covers it).
	StrideLines int
	// SequentialFrac / RandomFrac / PointerFrac partition the non-strided
	// loads: next-line streams, uniform random within the working set, and
	// dependent pointer chases.
	SequentialFrac, RandomFrac, PointerFrac float64
	// StridedFrac is the share of loads belonging to the strided streams.
	StridedFrac float64
	// WorkingSetPages bounds the random-access footprint.
	WorkingSetPages int
	// LoadsPerKilo is the memory intensity (loads per 1000 instructions).
	LoadsPerKilo int
}

// PrefetchSensitive reports whether the profile's load mix gives a stride
// prefetcher real work (the paper's "top 8 prefetching-sensitive
// applications" grouping).
func (p Profile) PrefetchSensitive() bool { return p.StridedFrac >= 0.30 }

// SPECLike returns 16 profiles spanning the SPEC-like behaviour space:
// eight prefetch-sensitive (large strided share) and eight insensitive.
func SPECLike() []Profile {
	mk := func(name string, streams, strideLines int, strided, seq, rnd, ptr float64, ws, lpk int) Profile {
		return Profile{
			Name: name, StridedStreams: streams, StrideLines: strideLines,
			StridedFrac: strided, SequentialFrac: seq, RandomFrac: rnd, PointerFrac: ptr,
			WorkingSetPages: ws, LoadsPerKilo: lpk,
		}
	}
	return []Profile{
		// Prefetch-sensitive: regular, strided, memory-hungry.
		mk("libquantum-like", 4, 7, 0.70, 0.15, 0.10, 0.05, 4096, 320),
		mk("lbm-like", 6, 5, 0.60, 0.25, 0.10, 0.05, 8192, 350),
		mk("milc-like", 4, 9, 0.55, 0.15, 0.20, 0.10, 8192, 300),
		mk("leslie3d-like", 5, 7, 0.50, 0.20, 0.20, 0.10, 4096, 280),
		mk("GemsFDTD-like", 6, 11, 0.55, 0.15, 0.20, 0.10, 8192, 310),
		mk("bwaves-like", 4, 5, 0.60, 0.20, 0.15, 0.05, 8192, 330),
		mk("sphinx3-like", 3, 7, 0.45, 0.20, 0.25, 0.10, 2048, 260),
		mk("cactuBSSN-like", 5, 9, 0.50, 0.20, 0.20, 0.10, 8192, 290),
		// Prefetch-insensitive: irregular, latency-bound or compute-bound.
		mk("mcf-like", 1, 7, 0.05, 0.05, 0.40, 0.50, 16384, 300),
		mk("omnetpp-like", 1, 7, 0.05, 0.10, 0.45, 0.40, 16384, 250),
		mk("gcc-like", 1, 7, 0.10, 0.20, 0.50, 0.20, 8192, 180),
		mk("perlbench-like", 1, 7, 0.10, 0.25, 0.45, 0.20, 4096, 150),
		mk("povray-like", 0, 7, 0.00, 0.30, 0.50, 0.20, 1024, 90),
		mk("namd-like", 1, 7, 0.15, 0.30, 0.40, 0.15, 2048, 120),
		mk("deepsjeng-like", 1, 7, 0.05, 0.15, 0.55, 0.25, 4096, 170),
		mk("xalancbmk-like", 1, 7, 0.10, 0.15, 0.45, 0.30, 8192, 220),
	}
}

// Generator emits a deterministic record stream for one profile.
type Generator struct {
	prof Profile
	rng  *rand.Rand

	strideCursors []uint64
	seqCursor     uint64
	ptrCursor     uint64
}

// NewGenerator builds a generator.
func NewGenerator(prof Profile, seed int64) *Generator {
	g := &Generator{prof: prof, rng: rand.New(rand.NewSource(seed))}
	g.strideCursors = make([]uint64, prof.StridedStreams)
	for i := range g.strideCursors {
		// Each stream starts on its own region, far apart.
		g.strideCursors[i] = uint64(0x1000_0000 + i*0x40_0000)
	}
	g.seqCursor = 0x4000_0000
	g.ptrCursor = 0x8000_0000
	return g
}

const lineSize = 64

// Next produces the next record.
func (g *Generator) Next() Record {
	p := g.prof
	gap := 1000/p.LoadsPerKilo - 1
	if gap < 0 {
		gap = 0
	}
	r := Record{Gap: gap}
	x := g.rng.Float64()
	switch {
	case p.StridedStreams > 0 && x < p.StridedFrac:
		i := g.rng.Intn(p.StridedStreams)
		g.strideCursors[i] += uint64(p.StrideLines * lineSize)
		// Wrap each stream within a 1 MiB region so pages are revisited.
		base := uint64(0x1000_0000 + i*0x40_0000)
		if g.strideCursors[i] > base+1<<20 {
			g.strideCursors[i] = base
		}
		r.IP = 0x400100 + uint64(i)*0x30 // one IP per stream
		r.Addr = g.strideCursors[i]
	case x < p.StridedFrac+p.SequentialFrac:
		g.seqCursor += lineSize
		if g.seqCursor > 0x4000_0000+1<<20 {
			g.seqCursor = 0x4000_0000
		}
		r.IP = 0x400800
		r.Addr = g.seqCursor
	case x < p.StridedFrac+p.SequentialFrac+p.RandomFrac:
		page := uint64(g.rng.Intn(p.WorkingSetPages))
		r.IP = 0x400900 + uint64(g.rng.Intn(16))*0x10
		r.Addr = 0x6000_0000 + page*4096 + uint64(g.rng.Intn(64))*lineSize
	default:
		// Pointer chase: serially dependent, random target.
		page := uint64(g.rng.Intn(p.WorkingSetPages))
		g.ptrCursor = 0x8000_0000 + page*4096 + uint64(g.rng.Intn(64))*lineSize
		r.IP = 0x400A00
		r.Addr = g.ptrCursor
		r.Dependent = true
	}
	return r
}

// Generate materialises n records.
func (g *Generator) Generate(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
