// Package mem models the memory-management substrate of the AfterImage
// simulator: a physical frame allocator, per-address-space page tables,
// mmap-style mappings with the two pool behaviours exploited by the paper's
// page-boundary experiment (Table 1) — a reclaimable pool whose virtual pages
// alias a shared physical frame, and a MAP_LOCKED pool with pinned unique
// frames — shared mappings for Flush+Reload, and user-space ASLR with page
// granularity (so the low 12 address bits survive, as §5.2 relies on).
package mem

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"afterimage/internal/detrand"
)

// PageSize is the (only) supported page size, 4 KiB.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// LineSize is the cache line size in bytes.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// PageNumber returns the virtual page number of a.
func (a VAddr) PageNumber() uint64 { return uint64(a) >> PageShift }

// PageOffset returns the offset of a within its page.
func (a VAddr) PageOffset() uint64 { return uint64(a) & (PageSize - 1) }

// Line returns the cache line index of the physical address.
func (a PAddr) Line() uint64 { return uint64(a) >> LineShift }

// Frame returns the physical frame number of a.
func (a PAddr) Frame() uint64 { return uint64(a) >> PageShift }

// MapKind selects the pool behaviour of a mapping.
type MapKind int

const (
	// MapReclaimable models the paper's resource-saving pool: the OS is free
	// to reclaim untouched frames, so every page of the region aliases one
	// shared physical frame ("many pages have the same physical address",
	// artifact appendix A.4).
	MapReclaimable MapKind = iota
	// MapLocked models mmap(MAP_LOCKED): each virtual page owns a distinct
	// pinned physical frame.
	MapLocked
	// MapShared maps the same physical frames into several address spaces
	// (mmap MAP_SHARED), the substrate for Flush+Reload.
	MapShared
)

// String names the mapping kind.
func (k MapKind) String() string {
	switch k {
	case MapReclaimable:
		return "reclaimable"
	case MapLocked:
		return "locked"
	case MapShared:
		return "shared"
	default:
		return fmt.Sprintf("MapKind(%d)", int(k))
	}
}

// PhysMemory hands out physical frames.
type PhysMemory struct {
	nextFrame uint64
	frames    uint64 // capacity in frames
}

// NewPhysMemory builds a physical memory with the given capacity in bytes.
func NewPhysMemory(bytes uint64) *PhysMemory {
	return &PhysMemory{nextFrame: 1, frames: bytes / PageSize} // frame 0 reserved
}

// AllocFrame returns a fresh physical frame number.
func (p *PhysMemory) AllocFrame() (uint64, error) {
	if p.nextFrame >= p.frames {
		return 0, fmt.Errorf("mem: out of physical frames (capacity %d)", p.frames)
	}
	f := p.nextFrame
	p.nextFrame++
	return f, nil
}

// FramesUsed reports how many frames have been allocated.
func (p *PhysMemory) FramesUsed() uint64 { return p.nextFrame - 1 }

// Mapping describes one mmap-ed region inside an address space.
type Mapping struct {
	Base   VAddr
	Length uint64
	Kind   MapKind
	frames []uint64 // physical frame per page
}

// End returns the first address past the mapping.
func (m *Mapping) End() VAddr { return m.Base + VAddr(m.Length) }

// Frames exposes the physical frame of each page (for tests and shared maps).
func (m *Mapping) Frames() []uint64 { return m.frames }

// ptChunkShift sizes the radix page-table leaves: 512 translations per
// leaf, so one leaf spans 2 MiB of virtual address space.
const (
	ptChunkShift = 9
	ptChunkSize  = 1 << ptChunkShift
	ptChunkMask  = ptChunkSize - 1
	// ptMaxDirSpan caps the directory at 2^21 chunks (4 TiB of coverage,
	// a 16 MiB pointer slice worst case). VPNs farther from the anchor than
	// that — kernel-half addresses, top-of-address-space probes — fall into
	// the overflow map instead of ballooning the directory.
	ptMaxDirSpan = 1 << 21
)

// pageTable is a two-level radix VPN→PFN map replacing the flat Go map on
// the translation hot path: chunk directory → leaf array, anchored at the
// first chunk installed (user mappings cluster around the mmap base, so the
// directory stays small and dense). Leaf entries store PFN+1 so zero means
// unmapped; unallocated leaves stay nil. A lookup is two array indexes —
// no hashing, no per-access allocation.
type pageTable struct {
	baseChunk uint64            // chunk index covered by dir[0]
	dir       [][]uint64        // leaf per chunk; entry = PFN+1, 0 = unmapped
	overflow  map[uint64]uint64 // VPN -> PFN outside directory coverage
}

// lookup resolves one VPN. Directory coverage can grow after an entry
// landed in overflow, so a directory miss still consults the overflow map
// (a nil check in the common case).
func (pt *pageTable) lookup(vpn uint64) (uint64, bool) {
	c := vpn >> ptChunkShift
	if c >= pt.baseChunk {
		if i := c - pt.baseChunk; i < uint64(len(pt.dir)) {
			if leaf := pt.dir[i]; leaf != nil {
				if e := leaf[vpn&ptChunkMask]; e != 0 {
					return e - 1, true
				}
			}
		}
	}
	if pt.overflow != nil {
		pfn, ok := pt.overflow[vpn]
		return pfn, ok
	}
	return 0, false
}

// set installs one translation, growing the directory (with doubling
// headroom — installs walk monotonically increasing bases) or spilling to
// the overflow map when the VPN is too far from the anchor.
func (pt *pageTable) set(vpn, pfn uint64) {
	c := vpn >> ptChunkShift
	if pt.dir == nil {
		pt.baseChunk = c
		pt.dir = make([][]uint64, 1)
	}
	lo, hi := pt.baseChunk, pt.baseChunk+uint64(len(pt.dir))
	switch {
	case c < lo:
		span := hi - c
		if span > ptMaxDirSpan {
			pt.setOverflow(vpn, pfn)
			return
		}
		if grow := 2 * uint64(len(pt.dir)); span < grow && grow <= hi && grow <= ptMaxDirSpan {
			span = grow
		}
		ndir := make([][]uint64, span)
		copy(ndir[span-uint64(len(pt.dir)):], pt.dir)
		pt.dir = ndir
		pt.baseChunk = hi - span
	case c >= hi:
		span := c - lo + 1
		if span > ptMaxDirSpan {
			pt.setOverflow(vpn, pfn)
			return
		}
		if grow := 2 * uint64(len(pt.dir)); span < grow && grow <= ptMaxDirSpan {
			span = grow
		}
		ndir := make([][]uint64, span)
		copy(ndir, pt.dir)
		pt.dir = ndir
	}
	i := c - pt.baseChunk
	leaf := pt.dir[i]
	if leaf == nil {
		leaf = make([]uint64, ptChunkSize)
		pt.dir[i] = leaf
	}
	leaf[vpn&ptChunkMask] = pfn + 1
}

func (pt *pageTable) setOverflow(vpn, pfn uint64) {
	if pt.overflow == nil {
		pt.overflow = make(map[uint64]uint64)
	}
	pt.overflow[vpn] = pfn
}

// AddressSpace is one process's (or the kernel's) virtual address space.
type AddressSpace struct {
	// ID is a unique address-space identifier (the PCID/ASID used to tag
	// TLB entries, so translations survive context switches).
	ID       uint64
	Name     string
	phys     *PhysMemory
	pages    pageTable // VPN -> PFN radix table
	mappings []*Mapping
	nextBase VAddr
	aslr     *rand.Rand      // nil disables ASLR
	aslrSrc  *detrand.Source // counting source backing aslr (nil iff aslr is)
}

// nextASID is atomic: labs on parallel campaign workers allocate address
// spaces concurrently, and ASIDs are only ever compared for equality (TLB
// entry tags), so allocation order does not affect any simulated outcome.
var nextASID atomic.Uint64

// NewAddressSpace creates an address space backed by phys. When aslrSeed is
// non-zero, mmap bases are randomised at page granularity (Level-2 ASLR);
// a zero seed disables randomisation for reproducible layouts.
func NewAddressSpace(name string, phys *PhysMemory, aslrSeed int64) *AddressSpace {
	as := &AddressSpace{
		ID:       nextASID.Add(1),
		Name:     name,
		phys:     phys,
		nextBase: VAddr(0x5555_0000_0000),
	}
	if aslrSeed != 0 {
		// detrand is stream-identical to rand.New(rand.NewSource(seed)); the
		// counting source is what lets Clone resume ASLR mid-stream.
		as.aslr, as.aslrSrc = detrand.New(aslrSeed)
	}
	return as
}

// pickBase chooses the base address for a fresh mapping of n pages.
func (as *AddressSpace) pickBase(pages uint64) VAddr {
	base := as.nextBase
	if as.aslr != nil {
		// Randomise bits 12..33: page-aligned, so the low 12 bits of every
		// address inside the mapping are unaffected by ASLR.
		slide := VAddr(as.aslr.Int63n(1<<22)) << PageShift
		base += slide
	}
	as.nextBase = base + VAddr((pages+16)*PageSize) // guard gap
	return base
}

// Mmap creates a new mapping of length bytes (rounded up to whole pages)
// with the requested pool behaviour.
func (as *AddressSpace) Mmap(length uint64, kind MapKind) (*Mapping, error) {
	if length == 0 {
		return nil, fmt.Errorf("mem: zero-length mmap")
	}
	pages := (length + PageSize - 1) / PageSize
	m := &Mapping{
		Base:   as.pickBase(pages),
		Length: pages * PageSize,
		Kind:   kind,
		frames: make([]uint64, pages),
	}
	switch kind {
	case MapReclaimable:
		// All pages alias one shared frame.
		f, err := as.phys.AllocFrame()
		if err != nil {
			return nil, err
		}
		for i := range m.frames {
			m.frames[i] = f
		}
	case MapLocked, MapShared:
		for i := range m.frames {
			f, err := as.phys.AllocFrame()
			if err != nil {
				return nil, err
			}
			m.frames[i] = f
		}
	default:
		return nil, fmt.Errorf("mem: unknown map kind %v", kind)
	}
	as.install(m)
	return m, nil
}

// MapExisting installs an existing mapping's physical frames at a fresh base
// in this address space — the receiving side of mmap(MAP_SHARED).
func (as *AddressSpace) MapExisting(src *Mapping) *Mapping {
	pages := uint64(len(src.frames))
	m := &Mapping{
		Base:   as.pickBase(pages),
		Length: pages * PageSize,
		Kind:   MapShared,
		frames: append([]uint64(nil), src.frames...),
	}
	as.install(m)
	return m
}

func (as *AddressSpace) install(m *Mapping) {
	vpn := m.Base.PageNumber()
	for i, f := range m.frames {
		as.pages.set(vpn+uint64(i), f)
	}
	as.mappings = append(as.mappings, m)
}

// Translate resolves a virtual address to a physical one. The boolean is
// false when the address is unmapped.
func (as *AddressSpace) Translate(v VAddr) (PAddr, bool) {
	pfn, ok := as.pages.lookup(v.PageNumber())
	if !ok {
		return 0, false
	}
	return PAddr(pfn<<PageShift | v.PageOffset()), true
}

// Mappings exposes the installed mappings in creation order.
func (as *AddressSpace) Mappings() []*Mapping { return as.mappings }

// MustMmap is Mmap that panics on failure — for tests and examples where
// physical memory exhaustion is a programming error.
func (as *AddressSpace) MustMmap(length uint64, kind MapKind) *Mapping {
	m, err := as.Mmap(length, kind)
	if err != nil {
		panic(err)
	}
	return m
}

// Clone returns a deep copy of the physical memory allocator.
func (p *PhysMemory) Clone() *PhysMemory {
	c := *p
	return &c
}

// clone deep-copies a mapping, including its frame slice.
func (m *Mapping) clone() *Mapping {
	c := *m
	c.frames = append([]uint64(nil), m.frames...)
	return &c
}

// clone deep-copies the radix table: fresh directory with copied leaves
// (nil leaves stay nil, preserving sparseness) and a copied overflow map.
func (pt *pageTable) clone() pageTable {
	c := pageTable{baseChunk: pt.baseChunk}
	if pt.dir != nil {
		c.dir = make([][]uint64, len(pt.dir))
		for i, leaf := range pt.dir {
			if leaf != nil {
				c.dir[i] = append([]uint64(nil), leaf...)
			}
		}
	}
	if pt.overflow != nil {
		c.overflow = make(map[uint64]uint64, len(pt.overflow))
		for k, v := range pt.overflow {
			c.overflow[k] = v
		}
	}
	return c
}

// Clone returns an independent deep copy of the address space backed by
// phys (normally the forked machine's own PhysMemory clone). The copy gets
// a fresh ASID — TLB entries tagged with the parent's ASID must be remapped
// by the caller — while page tables, mappings, allocation cursor, and ASLR
// stream position are byte-identical, so subsequent Mmap calls in parent
// and clone pick the same bases.
func (as *AddressSpace) Clone(phys *PhysMemory) *AddressSpace {
	c := &AddressSpace{
		ID:       nextASID.Add(1),
		Name:     as.Name,
		phys:     phys,
		pages:    as.pages.clone(),
		nextBase: as.nextBase,
	}
	c.mappings = make([]*Mapping, len(as.mappings))
	for i, m := range as.mappings {
		c.mappings[i] = m.clone()
	}
	if as.aslrSrc != nil {
		src := as.aslrSrc.Clone()
		c.aslr, c.aslrSrc = rand.New(src), src
	}
	return c
}
