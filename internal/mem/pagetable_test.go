package mem

import "testing"

// Boundary tests for the two-level radix page table, table-driven over the
// install sequences that stress the anchor, the doubling growth in both
// directions, the directory span cap and the overflow spill.
func TestPageTableBoundaries(t *testing.T) {
	const topVPN = (1 << 52) - 1 // highest VPN of a 64-bit byte address

	type install struct{ vpn, pfn uint64 }
	type probe struct {
		vpn    uint64
		pfn    uint64
		mapped bool
	}
	cases := []struct {
		name     string
		installs []install
		probes   []probe
	}{
		{
			name:     "vpn zero",
			installs: []install{{0, 7}},
			probes:   []probe{{0, 7, true}, {1, 0, false}},
		},
		{
			name:     "pfn zero is a valid mapping",
			installs: []install{{12, 0}},
			probes:   []probe{{12, 0, true}, {13, 0, false}},
		},
		{
			name:     "top of address space",
			installs: []install{{topVPN, 42}},
			probes:   []probe{{topVPN, 42, true}, {topVPN - 1, 0, false}},
		},
		{
			name:     "vpn zero and top of address space coexist via overflow",
			installs: []install{{0, 1}, {topVPN, 2}},
			probes:   []probe{{0, 1, true}, {topVPN, 2, true}, {topVPN >> 1, 0, false}},
		},
		{
			name:     "anchor high then grow down to vpn zero",
			installs: []install{{5 * ptChunkSize, 3}, {0, 4}},
			probes:   []probe{{5 * ptChunkSize, 3, true}, {0, 4, true}, {ptChunkSize, 0, false}},
		},
		{
			name: "grow up across chunks",
			installs: []install{
				{0, 1}, {ptChunkSize, 2}, {7 * ptChunkSize, 3}, {20 * ptChunkSize, 4},
			},
			probes: []probe{
				{0, 1, true}, {ptChunkSize, 2, true},
				{7 * ptChunkSize, 3, true}, {20 * ptChunkSize, 4, true},
				{13 * ptChunkSize, 0, false},
			},
		},
		{
			name: "overwrite keeps the latest translation",
			installs: []install{
				{100, 1}, {100, 9},
			},
			probes: []probe{{100, 9, true}},
		},
		{
			name: "beyond the span cap spills to overflow and stays reachable",
			installs: []install{
				{3_000_000 * ptChunkSize, 1},  // anchor
				{500_000 * ptChunkSize, 2},    // 2.5M chunks below: over the 2^21 cap
				{1_000_000 * ptChunkSize, 3},  // within cap: directory grows down
				{2_999_999 * ptChunkSize, 4},  // dense neighbour of the anchor
				{10_000_000 * ptChunkSize, 5}, // far above: overflow again
			},
			probes: []probe{
				{3_000_000 * ptChunkSize, 1, true},
				{500_000 * ptChunkSize, 2, true},
				{1_000_000 * ptChunkSize, 3, true},
				{2_999_999 * ptChunkSize, 4, true},
				{10_000_000 * ptChunkSize, 5, true},
				{2_000_000 * ptChunkSize, 0, false}, // covered chunk, nil leaf
				{600_000 * ptChunkSize, 0, false},   // uncovered, not in overflow
			},
		},
		{
			name: "leaf-internal neighbours stay independent",
			installs: []install{
				{ptChunkSize - 1, 11}, {ptChunkSize, 12},
			},
			probes: []probe{
				{ptChunkSize - 1, 11, true},
				{ptChunkSize, 12, true},
				{ptChunkSize - 2, 0, false},
				{ptChunkSize + 1, 0, false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var pt pageTable
			for _, in := range tc.installs {
				pt.set(in.vpn, in.pfn)
			}
			for _, pr := range tc.probes {
				pfn, ok := pt.lookup(pr.vpn)
				if ok != pr.mapped {
					t.Fatalf("lookup(%#x): mapped=%v, want %v", pr.vpn, ok, pr.mapped)
				}
				if ok && pfn != pr.pfn {
					t.Fatalf("lookup(%#x) = pfn %d, want %d", pr.vpn, pfn, pr.pfn)
				}
			}
		})
	}
}

// TestPageTableEmptyLookup covers the zero-value table: no directory, no
// overflow, nothing resolves.
func TestPageTableEmptyLookup(t *testing.T) {
	var pt pageTable
	for _, vpn := range []uint64{0, 1, 1 << 30, (1 << 52) - 1} {
		if _, ok := pt.lookup(vpn); ok {
			t.Fatalf("empty table resolved vpn %#x", vpn)
		}
	}
}

// TestASLRAliasesTranslateToSameFrames pins the behaviour §5.2 relies on:
// the same shared mapping lands at different virtual bases in two ASLR-ed
// address spaces (page-aligned slide, low 12 bits intact), and every aliased
// page still translates to the identical physical frame through both radix
// tables.
func TestASLRAliasesTranslateToSamePhysical(t *testing.T) {
	phys := NewPhysMemory(64 << 20)
	as1 := NewAddressSpace("a", phys, 1234)
	as2 := NewAddressSpace("b", phys, 9876)

	src := as1.MustMmap(8*PageSize, MapShared)
	dst := as2.MapExisting(src)

	if src.Base == dst.Base {
		t.Fatalf("ASLR produced identical bases %#x", uint64(src.Base))
	}
	if src.Base.PageOffset() != 0 || dst.Base.PageOffset() != 0 {
		t.Fatalf("ASLR slide is not page-aligned: bases %#x / %#x", uint64(src.Base), uint64(dst.Base))
	}
	for page := uint64(0); page < 8; page++ {
		off := VAddr(page*PageSize + 0x123)
		p1, ok1 := as1.Translate(src.Base + off)
		p2, ok2 := as2.Translate(dst.Base + off)
		if !ok1 || !ok2 {
			t.Fatalf("page %d: translation failed (%v/%v)", page, ok1, ok2)
		}
		if p1 != p2 {
			t.Fatalf("page %d: aliases map to different frames %#x vs %#x", page, uint64(p1), uint64(p2))
		}
		if got := uint64(p1) & (PageSize - 1); got != 0x123 {
			t.Fatalf("page %d: low bits not preserved: %#x", page, got)
		}
	}
}
