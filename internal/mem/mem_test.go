package mem

import (
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	v := VAddr(0x12345)
	if v.PageNumber() != 0x12 {
		t.Fatalf("PageNumber = %#x", v.PageNumber())
	}
	if v.PageOffset() != 0x345 {
		t.Fatalf("PageOffset = %#x", v.PageOffset())
	}
	p := PAddr(0x12345)
	if p.Line() != 0x12345>>6 {
		t.Fatalf("Line = %#x", p.Line())
	}
	if p.Frame() != 0x12 {
		t.Fatalf("Frame = %#x", p.Frame())
	}
}

func TestMmapLockedUniqueFrames(t *testing.T) {
	phys := NewPhysMemory(1 << 24)
	as := NewAddressSpace("p", phys, 0)
	m, err := as.Mmap(8*PageSize, MapLocked)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, f := range m.Frames() {
		if seen[f] {
			t.Fatalf("frame %d repeated in locked mapping", f)
		}
		seen[f] = true
	}
	// Locked frames are physically sequential (so the next-page assist of
	// §4.3 applies across the mapping).
	fr := m.Frames()
	for i := 1; i < len(fr); i++ {
		if fr[i] != fr[i-1]+1 {
			t.Fatalf("locked frames not sequential: %v", fr)
		}
	}
}

func TestMmapReclaimableAliasesOneFrame(t *testing.T) {
	phys := NewPhysMemory(1 << 24)
	as := NewAddressSpace("p", phys, 0)
	m, err := as.Mmap(8*PageSize, MapReclaimable)
	if err != nil {
		t.Fatal(err)
	}
	f0 := m.Frames()[0]
	for _, f := range m.Frames() {
		if f != f0 {
			t.Fatalf("reclaimable mapping has distinct frames: %v", m.Frames())
		}
	}
	// Translation of different pages lands in the same frame.
	p1, _ := as.Translate(m.Base + 10)
	p2, _ := as.Translate(m.Base + 3*PageSize + 10)
	if p1 != p2 {
		t.Fatalf("aliased pages translate differently: %#x vs %#x", uint64(p1), uint64(p2))
	}
}

func TestTranslateUnmapped(t *testing.T) {
	phys := NewPhysMemory(1 << 24)
	as := NewAddressSpace("p", phys, 0)
	if _, ok := as.Translate(0xdead000); ok {
		t.Fatal("unmapped address translated")
	}
}

func TestSharedMappingAcrossSpaces(t *testing.T) {
	phys := NewPhysMemory(1 << 24)
	a := NewAddressSpace("a", phys, 0)
	b := NewAddressSpace("b", phys, 0)
	ma, err := a.Mmap(2*PageSize, MapShared)
	if err != nil {
		t.Fatal(err)
	}
	mb := b.MapExisting(ma)
	pa, _ := a.Translate(ma.Base + 100)
	pb, _ := b.Translate(mb.Base + 100)
	if pa != pb {
		t.Fatalf("shared mapping diverges: %#x vs %#x", uint64(pa), uint64(pb))
	}
}

func TestASLRPreservesLow12Bits(t *testing.T) {
	phys := NewPhysMemory(1 << 26)
	a1 := NewAddressSpace("a1", phys, 11)
	a2 := NewAddressSpace("a2", phys, 2222)
	m1 := a1.MustMmap(PageSize, MapLocked)
	m2 := a2.MustMmap(PageSize, MapLocked)
	if m1.Base.PageOffset() != 0 || m2.Base.PageOffset() != 0 {
		t.Fatal("mmap base not page aligned under ASLR")
	}
	if m1.Base == m2.Base {
		t.Fatal("distinct ASLR seeds produced identical layout")
	}
	// Same seed reproduces the layout (determinism).
	a3 := NewAddressSpace("a3", phys, 11)
	m3 := a3.MustMmap(PageSize, MapLocked)
	if m3.Base != m1.Base {
		t.Fatal("ASLR layout not reproducible for equal seeds")
	}
}

func TestOutOfPhysicalMemory(t *testing.T) {
	phys := NewPhysMemory(4 * PageSize)
	as := NewAddressSpace("p", phys, 0)
	if _, err := as.Mmap(64*PageSize, MapLocked); err == nil {
		t.Fatal("exhausted physical memory did not error")
	}
}

func TestMmapZeroLength(t *testing.T) {
	phys := NewPhysMemory(1 << 20)
	as := NewAddressSpace("p", phys, 0)
	if _, err := as.Mmap(0, MapLocked); err == nil {
		t.Fatal("zero-length mmap accepted")
	}
}

func TestMapKindString(t *testing.T) {
	for _, k := range []MapKind{MapReclaimable, MapLocked, MapShared} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

// TestTranslationQuick property-tests that every address inside a mapping
// translates, preserves its page offset, and distinct locked pages never
// collide physically.
func TestTranslationQuick(t *testing.T) {
	phys := NewPhysMemory(1 << 28)
	as := NewAddressSpace("p", phys, 77)
	m := as.MustMmap(64*PageSize, MapLocked)
	f := func(off uint32) bool {
		v := m.Base + VAddr(uint64(off)%m.Length)
		p, ok := as.Translate(v)
		if !ok {
			return false
		}
		return uint64(p)&(PageSize-1) == v.PageOffset()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingEnd(t *testing.T) {
	phys := NewPhysMemory(1 << 20)
	as := NewAddressSpace("p", phys, 0)
	m := as.MustMmap(3*PageSize-5, MapLocked) // rounds up to 3 pages
	if m.Length != 3*PageSize {
		t.Fatalf("length = %d, want rounded %d", m.Length, 3*PageSize)
	}
	if m.End() != m.Base+VAddr(3*PageSize) {
		t.Fatal("End mismatch")
	}
}
