package mem

import "testing"

// FuzzPageTableWalk checks the address-space page table against its own
// mapping records for arbitrary mmap lengths, kinds, ASLR seeds and probe
// addresses:
//
//   - every address inside a mapping translates, preserving the page offset
//     and resolving to the frame the mapping records for that page;
//   - reclaimable mappings alias a single frame, locked/shared mappings own
//     distinct frames;
//   - the guard gap after a mapping never translates;
//   - MapExisting exposes the same physical frames at a different base.
func FuzzPageTableWalk(f *testing.F) {
	f.Add(int64(0), uint64(4096), uint64(0), byte(1))
	f.Add(int64(7), uint64(1), uint64(123_456), byte(2))
	f.Add(int64(-3), uint64(1<<20), uint64(1<<40), byte(0))
	f.Fuzz(func(t *testing.T, aslrSeed int64, length, probe uint64, kindB byte) {
		length %= 1 << 20 // cap the walk at 1 MiB (256 pages)
		kind := MapKind(kindB % 3)
		phys := NewPhysMemory(64 << 20)
		as := NewAddressSpace("fuzz", phys, aslrSeed)

		m, err := as.Mmap(length, kind)
		if length == 0 {
			if err == nil {
				t.Fatal("zero-length mmap succeeded")
			}
			return
		}
		if err != nil {
			t.Fatalf("mmap(%d, %v): %v", length, kind, err)
		}
		pages := (length + PageSize - 1) / PageSize
		if m.Length != pages*PageSize {
			t.Fatalf("length %d not rounded to pages: %d", length, m.Length)
		}
		if got := uint64(len(m.Frames())); got != pages {
			t.Fatalf("%d frames for %d pages", got, pages)
		}

		// Walk every page (plus an arbitrary in-page offset derived from the
		// probe) and check translation against the mapping's frame list.
		off := probe % PageSize
		seen := make(map[uint64]bool, pages)
		for i, frame := range m.Frames() {
			va := m.Base + VAddr(uint64(i)*PageSize+off)
			pa, ok := as.Translate(va)
			if !ok {
				t.Fatalf("page %d of [%#x,%#x) does not translate", i, m.Base, m.End())
			}
			if uint64(pa)&(PageSize-1) != off {
				t.Fatalf("page offset not preserved: va %#x -> pa %#x", va, pa)
			}
			if pa.Frame() != frame {
				t.Fatalf("page %d: translated frame %d, mapping records %d", i, pa.Frame(), frame)
			}
			seen[frame] = true
		}
		switch kind {
		case MapReclaimable:
			if len(seen) != 1 {
				t.Fatalf("reclaimable mapping uses %d distinct frames, want 1", len(seen))
			}
		default:
			if uint64(len(seen)) != pages {
				t.Fatalf("%v mapping reuses frames: %d distinct for %d pages", kind, len(seen), pages)
			}
		}

		// The guard gap past the mapping and the page below it are unmapped.
		if _, ok := as.Translate(m.End()); ok {
			t.Fatalf("guard page at %#x translates", m.End())
		}
		if _, ok := as.Translate(m.Base - 1); ok {
			t.Fatalf("address below base (%#x) translates", m.Base-1)
		}

		// A second address space importing the mapping shares its frames.
		as2 := NewAddressSpace("fuzz-peer", phys, aslrSeed)
		dup := as2.MapExisting(m)
		for i := range dup.Frames() {
			pa1, ok1 := as.Translate(m.Base + VAddr(uint64(i)*PageSize))
			pa2, ok2 := as2.Translate(dup.Base + VAddr(uint64(i)*PageSize))
			if !ok1 || !ok2 || pa1 != pa2 {
				t.Fatalf("shared page %d diverges: %#x (%v) vs %#x (%v)", i, pa1, ok1, pa2, ok2)
			}
		}
	})
}
