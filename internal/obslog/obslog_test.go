package obslog

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 1, 2, 15, 4, 5, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestJSONLineExact(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo, FormatJSON).WithClock(fixedClock())
	l.Info("campaign admitted", F("corr", "abc-1"), F("key", "ff01"), F("attempts", 3))
	want := `{"ts":"2026-01-02T15:04:05Z","level":"info","msg":"campaign admitted","corr":"abc-1","key":"ff01","attempts":"3"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("json line:\n got %q\nwant %q", got, want)
	}
}

func TestTextLineExact(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug, FormatText).WithClock(fixedClock())
	l.Warn("store quarantine", F("path", "/tmp/x y"), F("n", 2))
	want := `2026-01-02T15:04:05Z WARN  store quarantine path="/tmp/x y" n=2` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("text line:\n got %q\nwant %q", got, want)
	}
}

func TestFieldOrderBoundBeforeCall(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo, FormatJSON).WithClock(fixedClock())
	child := l.With(F("corr", "c1")).With(F("tenant", "t1"))
	child.Info("x", F("z", "last"))
	got := buf.String()
	ci, ti, zi := strings.Index(got, `"corr"`), strings.Index(got, `"tenant"`), strings.Index(got, `"z"`)
	if ci < 0 || ti < 0 || zi < 0 || !(ci < ti && ti < zi) {
		t.Fatalf("field order wrong: %q", got)
	}
	// The parent logger is unmodified by With.
	buf.Reset()
	l.Info("y")
	if strings.Contains(buf.String(), "corr") {
		t.Fatalf("With mutated parent: %q", buf.String())
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelWarn, FormatText).WithClock(fixedClock())
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	out := buf.String()
	if strings.Contains(out, "nope") || !strings.Contains(out, "yes") || !strings.Contains(out, "also") {
		t.Fatalf("level filtering broken:\n%s", out)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with filtering")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", F("k", "v"))
	l.With(F("a", "b")).Ctx(context.Background()).Error("still fine")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestCorrelationContext(t *testing.T) {
	ctx := WithCorrelation(context.Background(), "corr-9")
	if got := Correlation(ctx); got != "corr-9" {
		t.Fatalf("Correlation = %q", got)
	}
	if got := Correlation(context.Background()); got != "" {
		t.Fatalf("empty context Correlation = %q", got)
	}
	if WithCorrelation(ctx, "") != ctx {
		t.Fatal("empty ID should not wrap the context")
	}

	var buf bytes.Buffer
	l := New(&buf, LevelInfo, FormatJSON).WithClock(fixedClock())
	l.Ctx(ctx).Info("stamped")
	if !strings.Contains(buf.String(), `"corr":"corr-9"`) {
		t.Fatalf("Ctx did not stamp correlation: %q", buf.String())
	}
	buf.Reset()
	l.Ctx(context.Background()).Info("bare")
	if strings.Contains(buf.String(), "corr") {
		t.Fatalf("Ctx stamped a correlation that was not there: %q", buf.String())
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	for in, want := range map[string]Format{"json": FormatJSON, "text": FormatText, "": FormatText} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted garbage")
	}
}

func TestFRendering(t *testing.T) {
	cases := []struct {
		f    Field
		want string
	}{
		{F("s", "str"), "str"},
		{F("i", 7), "7"},
		{F("i64", int64(-9)), "-9"},
		{F("u64", uint64(18446744073709551615)), "18446744073709551615"},
		{F("f", 1.5), "1.5"},
		{F("b", true), "true"},
		{F("d", 1500*time.Millisecond), "1.5s"},
		{F("e", fmt.Errorf("boom")), "boom"},
		{F("lv", LevelWarn), "warn"},
	}
	for _, tc := range cases {
		if tc.f.Value != tc.want {
			t.Errorf("F(%q) = %q, want %q", tc.f.Key, tc.f.Value, tc.want)
		}
	}
}

// TestConcurrentLogging: concurrent writers interleave whole lines, never
// partial ones.
func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	l := New(&safeWriter{w: &buf}, LevelInfo, FormatJSON).WithClock(fixedClock())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("line", F("w", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"ts":`) || !strings.HasSuffix(line, `"}`) {
			t.Fatalf("torn line: %q", line)
		}
	}
}

type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
