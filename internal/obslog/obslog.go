// Package obslog is the structured logging layer of the observability
// spine. It emits one line per event — JSON or logfmt-style text — with a
// fixed field order (ts, level, msg, then bound fields, then call fields)
// so that logs are grep-stable and diffable across runs.
//
// The package also owns the correlation-ID context plumbing: a campaign's
// correlation ID is attached to its context once, at the HTTP boundary, and
// every layer below (admission, store, runner, sim) stamps it onto log
// lines and span records via Correlation(ctx). obslog sits below every
// other internal package so any of them can import it without cycles.
package obslog

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Higher is more severe.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the canonical lowercase level token.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a flag token to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obslog: unknown level %q (want debug|info|warn|error)", s)
}

// Format selects the line encoding.
type Format int

const (
	// FormatText is a human-oriented logfmt-style line:
	//   2026-01-02T15:04:05Z INFO  campaign admitted corr=abc key=ff01…
	FormatText Format = iota
	// FormatJSON is one JSON object per line with deterministic key order.
	FormatJSON
)

// ParseFormat maps a flag token to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("obslog: unknown format %q (want text|json)", s)
}

// Field is one key/value annotation. Fields are an ordered slice — never a
// map — so a line's rendering is a pure function of the call.
type Field struct {
	Key   string
	Value string
}

// F builds a Field from any value, rendering it up front so formatting cost
// is paid once and the value is frozen at call time.
func F(key string, value interface{}) Field {
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case error:
		v = x.Error()
	case fmt.Stringer:
		v = x.String()
	case int:
		v = strconv.Itoa(x)
	case int64:
		v = strconv.FormatInt(x, 10)
	case uint64:
		v = strconv.FormatUint(x, 10)
	case float64:
		v = strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		v = strconv.FormatBool(x)
	case time.Duration:
		v = x.String()
	default:
		v = fmt.Sprint(x)
	}
	return Field{Key: key, Value: v}
}

// Logger writes structured lines to a sink. A nil *Logger is valid and
// discards everything, so callers never need a guard. Loggers are safe for
// concurrent use; lines are written atomically under a mutex shared by all
// loggers derived from the same root.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	format Format
	now    func() time.Time
	bound  []Field
}

// New builds a root logger writing to w at the given level and format.
func New(w io.Writer, level Level, format Format) *Logger {
	return &Logger{
		mu:     &sync.Mutex{},
		w:      w,
		level:  level,
		format: format,
		now:    time.Now,
	}
}

// WithClock returns a copy of the logger using the given time source —
// tests pin it to a fixed instant and compare whole lines.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.now = now
	return &c
}

// With returns a child logger with the fields appended to its binding;
// bound fields render before per-call fields on every line.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.bound = append(append([]Field(nil), l.bound...), fields...)
	return &c
}

// Ctx returns the logger bound with the context's correlation ID (as
// corr=…), or the logger unchanged if the context carries none.
func (l *Logger) Ctx(ctx context.Context) *Logger {
	if l == nil {
		return nil
	}
	if corr := Correlation(ctx); corr != "" {
		return l.With(F("corr", corr))
	}
	return l
}

// Enabled reports whether a line at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.w != nil && level >= l.level
}

// Debug, Info, Warn, Error emit one line at the respective level.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }
func (l *Logger) Info(msg string, fields ...Field)  { l.log(LevelInfo, msg, fields) }
func (l *Logger) Warn(msg string, fields ...Field)  { l.log(LevelWarn, msg, fields) }
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var b strings.Builder
	switch l.format {
	case FormatJSON:
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(level.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		for _, f := range l.bound {
			writeJSONField(&b, f)
		}
		for _, f := range fields {
			writeJSONField(&b, f)
		}
		b.WriteString("}\n")
	default:
		b.WriteString(ts)
		fmt.Fprintf(&b, " %-5s ", strings.ToUpper(level.String()))
		b.WriteString(msg)
		for _, f := range l.bound {
			writeTextField(&b, f)
		}
		for _, f := range fields {
			writeTextField(&b, f)
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func writeJSONField(b *strings.Builder, f Field) {
	b.WriteByte(',')
	b.WriteString(strconv.Quote(f.Key))
	b.WriteByte(':')
	b.WriteString(strconv.Quote(f.Value))
}

func writeTextField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	if strings.ContainsAny(f.Value, " \t\"=") || f.Value == "" {
		b.WriteString(strconv.Quote(f.Value))
	} else {
		b.WriteString(f.Value)
	}
}

// correlation-ID context plumbing -----------------------------------------

type corrKey struct{}

// WithCorrelation returns a context carrying the campaign correlation ID.
// An empty ID returns the context unchanged.
func WithCorrelation(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, corrKey{}, id)
}

// Correlation extracts the correlation ID from the context, or "".
func Correlation(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(corrKey{}).(string)
	return id
}
