// Package store is the campaign service's persistent content-addressed
// result cache: byte payloads keyed by the sha256 of a canonical campaign
// fingerprint. Because the simulator makes every campaign a pure function of
// that fingerprint, an entry written once is valid forever — the store never
// needs invalidation, only integrity.
//
// Durability model:
//
//   - Writes are atomic and durable: payload + header go to a same-directory
//     temp file, the file is fsynced, renamed over the final name, and the
//     parent directory is fsynced. A crash at any point leaves either no
//     entry or a complete one under the final name — torn state can exist
//     only under a .tmp name, and every failed write removes its temp file.
//   - Open runs a recovery scan: leftover .tmp files and entries that fail
//     the integrity check are moved to a quarantine directory (never
//     deleted — they are crash forensics), and the store comes up serving
//     every intact entry. A corrupt cache degrades to a smaller cache, not
//     a failed server.
//   - Reads re-verify integrity: the entry's stored sha256 must match its
//     payload bytes. A mismatch (bit rot, external truncation) quarantines
//     the entry and reports a miss, so the caller transparently recomputes.
//   - A background scrubber (see scrub.go) re-verifies entries proactively
//     on a rate-limited walk, so bit rot is found and quarantined before a
//     client's cache hit trips over it.
//   - A size budget (see gc.go) evicts oldest entries first, never touching
//     pinned (in-flight) keys — the cache stays bounded under tournament
//     load instead of filling the disk.
//
// Disk-fault degradation: all filesystem access goes through an injectable
// vfs.FS, and the write path sits behind a health circuit breaker. A write
// error (ENOSPC, EIO) counts against the breaker; once it opens, subsequent
// Puts are dropped immediately (ErrDegraded, store.degraded.writes) until a
// half-open probe write succeeds. Reads are never gated — a full disk still
// serves every entry it already holds.
//
// Entry format (one file per key, sharded by the key's first byte):
//
//	afterimage-store/1 <key> <sha256(payload) hex> <len(payload)>\n
//	<payload bytes, verbatim>
//
// The payload is stored verbatim — not re-encoded — so the bytes a cache hit
// returns are exactly the bytes Put was given, which is what the service's
// byte-identity guarantee is stated over.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"afterimage/internal/cluster"
	"afterimage/internal/obslog"
	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

// Schema versions the on-disk entry format. An entry carrying a different
// schema token is quarantined rather than misread.
const Schema = "afterimage-store/1"

// QuarantineDir is the subdirectory (under the store root) that collects
// torn and corrupt files found by the recovery scan, the scrubber, or a
// failed read.
const QuarantineDir = "quarantine"

const entrySuffix = ".entry"

// ErrDegraded marks a Put the store's health breaker dropped: the disk has
// been failing writes, so the store sheds cache writes instead of stalling
// campaigns against a broken device. The caller's result is still valid —
// it just was not cached.
var ErrDegraded = errors.New("store: write dropped, health breaker open")

// Options assembles a Store for OpenWith. The zero value of every field is a
// usable default; Open is the two-argument shorthand.
type Options struct {
	// Dir is the store root (created if absent). Required.
	Dir string
	// Registry receives the store.* counters; nil disables metrics.
	Registry *telemetry.Registry
	// FS is the filesystem the store reads and writes through; nil means the
	// real one (vfs.OS()). The disk-chaos harness passes a vfs.FaultFS.
	FS vfs.FS
	// Budget bounds the total bytes of stored entries; 0 means unlimited.
	// When a write pushes the total past the budget, oldest entries are
	// evicted first (see gc.go).
	Budget int64
	// MinEvictAge protects just-written entries from eviction for this long
	// (0 = no age grace; pinned keys are always protected).
	MinEvictAge time.Duration
	// ScrubInterval starts a background scrubber pass this often (0 = no
	// background scrubbing; Scrub can still be called on demand).
	ScrubInterval time.Duration
	// ScrubRate bounds the scrubber to this many entry verifications per
	// second (0 = unlimited).
	ScrubRate int
	// BreakerThreshold is how many consecutive write failures open the
	// write-health breaker (<= 0 means 3).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// half-open probe write (<= 0 means 2s).
	BreakerCooldown time.Duration
	// Logger receives structured quarantine/scrub/GC/degrade events; nil
	// disables logging.
	Logger *obslog.Logger
}

// Store is a directory of content-addressed entries. All methods are safe
// for concurrent use.
type Store struct {
	dir string
	fs  vfs.FS

	mu   sync.Mutex // serialises quarantine-name allocation
	qseq int        // quarantine name de-duplicator

	// imu guards the size index, pins, and eviction decisions.
	imu   sync.Mutex
	index map[string]entryMeta
	total int64
	pins  map[string]int

	budget      int64
	minAge      time.Duration
	scrubRate   int
	health      *cluster.Breaker
	scrubWG     sync.WaitGroup
	scrubCancel context.CancelFunc

	hits, misses, writes                    *telemetry.Counter
	corrupt, recovered, entries             *telemetry.Counter
	putErrors, degradedWrites               *telemetry.Counter
	breakerDropped, breakerOpened           *telemetry.Counter
	quarantineFailed                        *telemetry.Counter
	scrubPasses, scrubScanned, scrubCorrupt *telemetry.Counter
	gcEvictions, gcBytes, gcPinnedSkips     *telemetry.Counter
	bytesGauge                              *telemetry.Gauge
	readUS, writeUS                         *telemetry.Histogram

	log *obslog.Logger
}

// entryMeta is the in-memory size/recency index behind the GC: enough to
// pick eviction victims without touching the disk.
type entryMeta struct {
	size    int64
	written time.Time
}

// latencyBounds bucket store I/O latency in µs: a cached read is tens of µs,
// a durable (double-fsync) write can reach tens of ms on loaded disks.
var latencyBounds = []uint64{10, 100, 1_000, 10_000, 100_000, 1_000_000}

// Open prepares the store rooted at dir (created if absent), runs the
// recovery scan, and registers the store.* counters on reg (nil disables
// metrics). It returns the ready store and how many entries the scan
// quarantined. It is the plain-disk shorthand for OpenWith.
func Open(dir string, reg *telemetry.Registry) (*Store, int, error) {
	return OpenWith(Options{Dir: dir, Registry: reg})
}

// OpenWith prepares a store from the full option set: filesystem seam, size
// budget, scrubber cadence, and write-health breaker tuning.
func OpenWith(o Options) (*Store, int, error) {
	if o.Dir == "" {
		return nil, 0, fmt.Errorf("store: Options.Dir is required")
	}
	fsys := o.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := fsys.MkdirAll(filepath.Join(o.Dir, QuarantineDir), 0o755); err != nil {
		return nil, 0, fmt.Errorf("store: create %s: %w", o.Dir, err)
	}
	s := &Store{
		dir:       o.Dir,
		fs:        fsys,
		index:     make(map[string]entryMeta),
		pins:      make(map[string]int),
		budget:    o.Budget,
		minAge:    o.MinEvictAge,
		scrubRate: o.ScrubRate,
		health:    cluster.NewBreaker(o.BreakerThreshold, o.BreakerCooldown),
		log:       o.Logger,
	}
	if reg := o.Registry; reg != nil {
		s.hits = reg.Counter("store.hits")
		s.misses = reg.Counter("store.misses")
		s.writes = reg.Counter("store.writes")
		s.corrupt = reg.Counter("store.corrupt")
		s.recovered = reg.Counter("store.recovery.quarantined")
		s.entries = reg.Counter("store.recovery.entries")
		s.putErrors = reg.Counter("store.put.errors")
		s.degradedWrites = reg.Counter("store.degraded.writes")
		s.breakerDropped = reg.Counter("store.breaker.dropped")
		s.breakerOpened = reg.Counter("store.breaker.opened")
		s.quarantineFailed = reg.Counter("store.quarantine.failed")
		s.scrubPasses = reg.Counter("store.scrub.passes")
		s.scrubScanned = reg.Counter("store.scrub.scanned")
		s.scrubCorrupt = reg.Counter("store.scrub.corrupt")
		s.gcEvictions = reg.Counter("store.gc.evictions")
		s.gcBytes = reg.Counter("store.gc.bytes_reclaimed")
		s.gcPinnedSkips = reg.Counter("store.gc.pinned_skips")
		s.bytesGauge = reg.Gauge("store.bytes")
		s.readUS = reg.Histogram("store.read.us", latencyBounds)
		s.writeUS = reg.Histogram("store.write.us", latencyBounds)
	}
	s.health.OnTransition(func(from, to cluster.BreakerState) {
		if to == cluster.BreakerOpen {
			inc(s.breakerOpened)
		}
	})
	quarantined, err := s.recoveryScan()
	if err != nil {
		return nil, quarantined, err
	}
	if o.ScrubInterval > 0 {
		s.startScrubber(o.ScrubInterval, o.ScrubRate)
	}
	return s, quarantined, nil
}

// Close stops the background scrubber (if any) and waits for its current
// pass to finish. The store remains usable for reads and writes.
func (s *Store) Close() {
	if s.scrubCancel != nil {
		s.scrubCancel()
		s.scrubWG.Wait()
		s.scrubCancel = nil
	}
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// ValidKey reports whether key is a well-formed store key: 64 lowercase hex
// characters (a sha256 digest). Everything else is rejected before it can
// reach the filesystem.
func ValidKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Key hashes arbitrary canonical bytes into a store key.
func Key(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// path maps a key to its entry file, sharded by the first two hex digits so
// a large cache does not put millions of names in one directory.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+entrySuffix)
}

// SetLogger installs the structured logger the store stamps quarantine and
// write events with. Call before serving; a nil logger (the default)
// disables logging.
func (s *Store) SetLogger(l *obslog.Logger) { s.log = l }

// Get returns the payload stored under key and whether it was present. An
// entry that fails the integrity check is quarantined and reported as a
// miss — the caller recomputes and the next Put rewrites it.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetCtx(context.Background(), key)
}

// GetCtx is Get under a request context: the read latency lands in the
// store.read.us histogram and integrity failures are logged with the
// context's correlation ID, tying a quarantine to the campaign that hit it.
func (s *Store) GetCtx(ctx context.Context, key string) ([]byte, bool) {
	if !ValidKey(key) {
		inc(s.misses)
		return nil, false
	}
	start := time.Now()
	defer func() {
		if s.readUS != nil {
			s.readUS.Observe(uint64(time.Since(start).Microseconds()))
		}
	}()
	p := s.path(key)
	raw, err := s.fs.ReadFile(p)
	if err != nil {
		inc(s.misses)
		return nil, false
	}
	body, err := decodeEntry(key, raw)
	if err != nil {
		inc(s.corrupt)
		inc(s.misses)
		s.quarantine(p)
		s.log.Ctx(ctx).Warn("store entry failed integrity check; quarantined",
			obslog.F("key", key), obslog.F("err", err))
		return nil, false
	}
	inc(s.hits)
	return body, true
}

// Put stores payload under key with the full atomic-durable write sequence.
// Re-putting an existing key is allowed and atomic (last write wins); with a
// deterministic producer both writes hold identical bytes anyway.
func (s *Store) Put(key string, payload []byte) error {
	return s.PutCtx(context.Background(), key, payload)
}

// PutCtx is Put under a request context: write latency lands in the
// store.write.us histogram and the write is logged with the context's
// correlation ID.
//
// Disk faults degrade, they do not cascade: a failed write cleans up its
// temp file, counts against the health breaker, and returns the error —
// the entry is simply not cached. While the breaker is open, PutCtx returns
// ErrDegraded immediately without touching the disk; the first Put after
// the cooldown is the half-open probe that decides whether writes resume.
func (s *Store) PutCtx(ctx context.Context, key string, payload []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q (want 64 lowercase hex chars)", key)
	}
	start := time.Now()
	defer func() {
		if s.writeUS != nil {
			s.writeUS.Observe(uint64(time.Since(start).Microseconds()))
		}
	}()
	if !s.health.Allow(time.Now()) {
		inc(s.breakerDropped)
		inc(s.degradedWrites)
		s.log.Ctx(ctx).Warn("store write dropped: health breaker open", obslog.F("key", key))
		return fmt.Errorf("%w (key %s)", ErrDegraded, key)
	}
	size, err := s.writeEntry(key, payload)
	if err != nil {
		s.health.Failure(time.Now())
		inc(s.putErrors)
		inc(s.degradedWrites)
		s.log.Ctx(ctx).Warn("store write failed; cache write shed",
			obslog.F("key", key), obslog.F("err", err))
		return err
	}
	s.health.Success(time.Now())
	inc(s.writes)
	s.recordWrite(key, size, time.Now())
	s.log.Ctx(ctx).Debug("store write", obslog.F("key", key), obslog.F("bytes", len(payload)))
	return nil
}

// writeEntry performs the atomic durable write sequence for one entry and
// returns the entry's on-disk size. Every error path removes the temp file —
// a failed Put must not leak .tmp litter for the recovery scan to quarantine
// later.
func (s *Store) writeEntry(key string, payload []byte) (int64, error) {
	p := s.path(key)
	shard := filepath.Dir(p)
	if err := s.fs.MkdirAll(shard, 0o755); err != nil {
		return 0, fmt.Errorf("store: create shard: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s %d\n", Schema, key, hex.EncodeToString(sum[:]), len(payload))

	tmp := p + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("store: create temp: %w", err)
	}
	if _, err := f.Write([]byte(header)); err != nil {
		f.Close()
		s.discardTemp(tmp)
		return 0, fmt.Errorf("store: write header: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		s.discardTemp(tmp)
		return 0, fmt.Errorf("store: write payload: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.discardTemp(tmp)
		return 0, fmt.Errorf("store: fsync entry: %w", err)
	}
	if err := f.Close(); err != nil {
		s.discardTemp(tmp)
		return 0, fmt.Errorf("store: close entry: %w", err)
	}
	if err := s.fs.Rename(tmp, p); err != nil {
		s.discardTemp(tmp)
		return 0, fmt.Errorf("store: publish entry: %w", err)
	}
	if err := s.fs.SyncDir(shard); err != nil {
		// The entry is published and intact; only the rename's durability is
		// in doubt. Report the failure (it counts against the breaker) — a
		// re-Put after the disk heals restores full durability.
		return 0, fmt.Errorf("store: fsync shard dir: %w", err)
	}
	return int64(len(header) + len(payload)), nil
}

// discardTemp removes a temp file a failed write left behind (best effort —
// the recovery scan quarantines anything that survives a crash here).
func (s *Store) discardTemp(tmp string) {
	if err := s.fs.Remove(tmp); err != nil && !os.IsNotExist(err) {
		s.log.Warn("store temp file could not be removed after failed write",
			obslog.F("path", tmp), obslog.F("err", err))
	}
}

// Len counts the intact-named entries currently on disk (integrity is not
// re-verified; Get does that per entry).
func (s *Store) Len() int {
	n := 0
	s.walkEntries(func(string, fs.DirEntry) { n++ })
	return n
}

// Keys lists every stored key (unverified), in no particular order.
func (s *Store) Keys() []string {
	var keys []string
	s.walkEntries(func(path string, _ fs.DirEntry) {
		keys = append(keys, strings.TrimSuffix(filepath.Base(path), entrySuffix))
	})
	return keys
}

// TotalBytes reports the indexed on-disk size of all entries — the quantity
// the GC budget is enforced over.
func (s *Store) TotalBytes() int64 {
	s.imu.Lock()
	defer s.imu.Unlock()
	return s.total
}

// QuarantinedFiles lists the files the recovery scan, the scrubber, or
// failed reads set aside.
func (s *Store) QuarantinedFiles() []string {
	ents, err := s.fs.ReadDir(filepath.Join(s.dir, QuarantineDir))
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// walk recursively visits every file under dir through the store's FS,
// skipping the quarantine directory. Unreadable directories are skipped —
// a vanishing shard is not a walk failure.
func (s *Store) walk(dir string, fn func(path string, d fs.DirEntry)) {
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		if e.IsDir() {
			if dir == s.dir && e.Name() == QuarantineDir {
				continue
			}
			s.walk(p, fn)
			continue
		}
		fn(p, e)
	}
}

// walkEntries visits every *.entry file outside the quarantine directory.
func (s *Store) walkEntries(fn func(path string, d fs.DirEntry)) {
	s.walk(s.dir, func(path string, d fs.DirEntry) {
		if strings.HasSuffix(d.Name(), entrySuffix) {
			fn(path, d)
		}
	})
}

// recoveryScan walks the store once at Open: leftover temp files are
// quarantined unconditionally (a crash interrupted their write), and every
// entry file is decoded and integrity-checked, with failures quarantined.
// Valid entries seed the in-memory size index the GC budget runs over. The
// scan itself never fails the Open for per-file damage — that is the point —
// but an unreadable root does.
func (s *Store) recoveryScan() (int, error) {
	if _, err := s.fs.ReadDir(s.dir); err != nil {
		return 0, fmt.Errorf("store: recovery scan: %w", err)
	}
	quarantined := 0
	var bad []string
	s.walk(s.dir, func(path string, d fs.DirEntry) {
		if strings.HasSuffix(d.Name(), ".tmp") {
			bad = append(bad, path)
			return
		}
		if !strings.HasSuffix(d.Name(), entrySuffix) {
			return // foreign file; leave it alone
		}
		key := strings.TrimSuffix(d.Name(), entrySuffix)
		raw, rerr := s.fs.ReadFile(path)
		if rerr != nil {
			bad = append(bad, path)
			return
		}
		if _, derr := decodeEntry(key, raw); derr != nil {
			bad = append(bad, path)
			return
		}
		written := time.Now()
		if info, ierr := d.Info(); ierr == nil {
			written = info.ModTime()
		}
		s.imu.Lock()
		s.index[key] = entryMeta{size: int64(len(raw)), written: written}
		s.total += int64(len(raw))
		s.setBytesGauge()
		s.imu.Unlock()
		inc(s.entries)
	})
	for _, p := range bad {
		s.quarantine(p)
		quarantined++
	}
	add(s.recovered, uint64(quarantined))
	return quarantined, nil
}

// quarantine moves a damaged file into the quarantine directory under a
// unique name. A failed rename falls back to removal — a torn entry must not
// keep masquerading as a valid one — and bumps store.quarantine.failed so
// the forensics loss is visible. If even the removal fails, the entry stays
// on disk but can never be re-served: every future read re-fails the same
// integrity check.
func (s *Store) quarantine(path string) {
	s.mu.Lock()
	s.qseq++
	dst := filepath.Join(s.dir, QuarantineDir, fmt.Sprintf("%s.%d", filepath.Base(path), s.qseq))
	s.mu.Unlock()
	if err := s.fs.Rename(path, dst); err != nil {
		inc(s.quarantineFailed)
		if rerr := s.fs.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
			s.log.Error("quarantine rename and removal both failed; corrupt file remains (unservable)",
				obslog.F("path", path), obslog.F("rename_err", err), obslog.F("remove_err", rerr))
		} else {
			s.log.Warn("quarantine rename failed; corrupt file removed instead (forensics lost)",
				obslog.F("path", path), obslog.F("err", err))
		}
	}
	s.dropFromIndex(path)
}

// dropFromIndex removes a departed entry file from the size index.
func (s *Store) dropFromIndex(path string) {
	base := filepath.Base(path)
	if !strings.HasSuffix(base, entrySuffix) {
		return
	}
	key := strings.TrimSuffix(base, entrySuffix)
	s.imu.Lock()
	if m, ok := s.index[key]; ok {
		s.total -= m.size
		delete(s.index, key)
		s.setBytesGauge()
	}
	s.imu.Unlock()
}

// setBytesGauge publishes the indexed total. Callers hold imu.
func (s *Store) setBytesGauge() {
	if s.bytesGauge != nil {
		s.bytesGauge.Set(s.total)
	}
}

// decodeEntry parses and verifies one entry file: schema token, key match,
// declared length, and the payload's sha256.
func decodeEntry(key string, raw []byte) ([]byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("store: entry has no header line")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 4 {
		return nil, fmt.Errorf("store: header has %d fields, want 4", len(fields))
	}
	if fields[0] != Schema {
		return nil, fmt.Errorf("store: entry schema %q, want %q", fields[0], Schema)
	}
	if fields[1] != key {
		return nil, fmt.Errorf("store: entry key %q does not match file name %q", fields[1], key)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("store: bad payload length %q", fields[3])
	}
	body := raw[nl+1:]
	if len(body) != n {
		return nil, fmt.Errorf("store: payload is %d bytes, header declares %d", len(body), n)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, fmt.Errorf("store: payload sha256 mismatch")
	}
	return body, nil
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *telemetry.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}
