// Package store is the campaign service's persistent content-addressed
// result cache: byte payloads keyed by the sha256 of a canonical campaign
// fingerprint. Because the simulator makes every campaign a pure function of
// that fingerprint, an entry written once is valid forever — the store never
// needs invalidation, only integrity.
//
// Durability model:
//
//   - Writes are atomic and durable: payload + header go to a same-directory
//     temp file, the file is fsynced, renamed over the final name, and the
//     parent directory is fsynced. A crash at any point leaves either no
//     entry or a complete one under the final name — torn state can exist
//     only under a .tmp name.
//   - Open runs a recovery scan: leftover .tmp files and entries that fail
//     the integrity check are moved to a quarantine directory (never
//     deleted — they are crash forensics), and the store comes up serving
//     every intact entry. A corrupt cache degrades to a smaller cache, not
//     a failed server.
//   - Reads re-verify integrity: the entry's stored sha256 must match its
//     payload bytes. A mismatch (bit rot, external truncation) quarantines
//     the entry and reports a miss, so the caller transparently recomputes.
//
// Entry format (one file per key, sharded by the key's first byte):
//
//	afterimage-store/1 <key> <sha256(payload) hex> <len(payload)>\n
//	<payload bytes, verbatim>
//
// The payload is stored verbatim — not re-encoded — so the bytes a cache hit
// returns are exactly the bytes Put was given, which is what the service's
// byte-identity guarantee is stated over.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"afterimage/internal/obslog"
	"afterimage/internal/runner"
	"afterimage/internal/telemetry"
)

// Schema versions the on-disk entry format. An entry carrying a different
// schema token is quarantined rather than misread.
const Schema = "afterimage-store/1"

// QuarantineDir is the subdirectory (under the store root) that collects
// torn and corrupt files found by the recovery scan or a failed read.
const QuarantineDir = "quarantine"

const entrySuffix = ".entry"

// Store is a directory of content-addressed entries. All methods are safe
// for concurrent use.
type Store struct {
	dir string

	mu   sync.Mutex // serialises quarantine renames and the recovery scan
	qseq int        // quarantine name de-duplicator

	hits, misses, writes        *telemetry.Counter
	corrupt, recovered, entries *telemetry.Counter
	readUS, writeUS             *telemetry.Histogram

	log *obslog.Logger
}

// latencyBounds bucket store I/O latency in µs: a cached read is tens of µs,
// a durable (double-fsync) write can reach tens of ms on loaded disks.
var latencyBounds = []uint64{10, 100, 1_000, 10_000, 100_000, 1_000_000}

// Open prepares the store rooted at dir (created if absent), runs the
// recovery scan, and registers the store.* counters on reg (nil disables
// metrics). It returns the ready store and how many entries the scan
// quarantined.
func Open(dir string, reg *telemetry.Registry) (*Store, int, error) {
	if err := os.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		return nil, 0, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	if reg != nil {
		s.hits = reg.Counter("store.hits")
		s.misses = reg.Counter("store.misses")
		s.writes = reg.Counter("store.writes")
		s.corrupt = reg.Counter("store.corrupt")
		s.recovered = reg.Counter("store.recovery.quarantined")
		s.entries = reg.Counter("store.recovery.entries")
		s.readUS = reg.Histogram("store.read.us", latencyBounds)
		s.writeUS = reg.Histogram("store.write.us", latencyBounds)
	}
	quarantined, err := s.recoveryScan()
	if err != nil {
		return nil, quarantined, err
	}
	return s, quarantined, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// ValidKey reports whether key is a well-formed store key: 64 lowercase hex
// characters (a sha256 digest). Everything else is rejected before it can
// reach the filesystem.
func ValidKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Key hashes arbitrary canonical bytes into a store key.
func Key(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// path maps a key to its entry file, sharded by the first two hex digits so
// a large cache does not put millions of names in one directory.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+entrySuffix)
}

// SetLogger installs the structured logger the store stamps quarantine and
// write events with. Call before serving; a nil logger (the default)
// disables logging.
func (s *Store) SetLogger(l *obslog.Logger) { s.log = l }

// Get returns the payload stored under key and whether it was present. An
// entry that fails the integrity check is quarantined and reported as a
// miss — the caller recomputes and the next Put rewrites it.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetCtx(context.Background(), key)
}

// GetCtx is Get under a request context: the read latency lands in the
// store.read.us histogram and integrity failures are logged with the
// context's correlation ID, tying a quarantine to the campaign that hit it.
func (s *Store) GetCtx(ctx context.Context, key string) ([]byte, bool) {
	if !ValidKey(key) {
		inc(s.misses)
		return nil, false
	}
	start := time.Now()
	defer func() {
		if s.readUS != nil {
			s.readUS.Observe(uint64(time.Since(start).Microseconds()))
		}
	}()
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		inc(s.misses)
		return nil, false
	}
	body, err := decodeEntry(key, raw)
	if err != nil {
		inc(s.corrupt)
		inc(s.misses)
		s.quarantine(p)
		s.log.Ctx(ctx).Warn("store entry failed integrity check; quarantined",
			obslog.F("key", key), obslog.F("err", err))
		return nil, false
	}
	inc(s.hits)
	return body, true
}

// Put stores payload under key with the full atomic-durable write sequence.
// Re-putting an existing key is allowed and atomic (last write wins); with a
// deterministic producer both writes hold identical bytes anyway.
func (s *Store) Put(key string, payload []byte) error {
	return s.PutCtx(context.Background(), key, payload)
}

// PutCtx is Put under a request context: write latency lands in the
// store.write.us histogram and the write is logged with the context's
// correlation ID.
func (s *Store) PutCtx(ctx context.Context, key string, payload []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q (want 64 lowercase hex chars)", key)
	}
	start := time.Now()
	defer func() {
		if s.writeUS != nil {
			s.writeUS.Observe(uint64(time.Since(start).Microseconds()))
		}
	}()
	p := s.path(key)
	shard := filepath.Dir(p)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: create shard: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s %d\n", Schema, key, hex.EncodeToString(sum[:]), len(payload))

	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	if _, err := f.WriteString(header); err != nil {
		f.Close()
		return fmt.Errorf("store: write header: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("store: write payload: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: fsync entry: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close entry: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("store: publish entry: %w", err)
	}
	if err := runner.SyncDir(shard); err != nil {
		return fmt.Errorf("store: fsync shard dir: %w", err)
	}
	inc(s.writes)
	s.log.Ctx(ctx).Debug("store write", obslog.F("key", key), obslog.F("bytes", len(payload)))
	return nil
}

// Len counts the intact-named entries currently on disk (integrity is not
// re-verified; Get does that per entry).
func (s *Store) Len() int {
	n := 0
	s.walkEntries(func(string, fs.DirEntry) { n++ })
	return n
}

// Keys lists every stored key (unverified), in no particular order.
func (s *Store) Keys() []string {
	var keys []string
	s.walkEntries(func(path string, _ fs.DirEntry) {
		keys = append(keys, strings.TrimSuffix(filepath.Base(path), entrySuffix))
	})
	return keys
}

// QuarantinedFiles lists the files the recovery scan or failed reads set
// aside.
func (s *Store) QuarantinedFiles() []string {
	ents, err := os.ReadDir(filepath.Join(s.dir, QuarantineDir))
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// walkEntries visits every *.entry file outside the quarantine directory.
func (s *Store) walkEntries(fn func(path string, d fs.DirEntry)) {
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // a vanishing shard is not a walk failure
		}
		if d.IsDir() {
			if d.Name() == QuarantineDir && filepath.Dir(path) == s.dir {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), entrySuffix) {
			fn(path, d)
		}
		return nil
	})
}

// recoveryScan walks the store once at Open: leftover temp files are
// quarantined unconditionally (a crash interrupted their write), and every
// entry file is decoded and integrity-checked, with failures quarantined.
// The scan itself never fails the Open for per-file damage — that is the
// point — but an unreadable root does.
func (s *Store) recoveryScan() (int, error) {
	if _, err := os.ReadDir(s.dir); err != nil {
		return 0, fmt.Errorf("store: recovery scan: %w", err)
	}
	quarantined := 0
	var bad []string
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			if err == nil && d.Name() == QuarantineDir && filepath.Dir(path) == s.dir {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".tmp") {
			bad = append(bad, path)
			return nil
		}
		if !strings.HasSuffix(d.Name(), entrySuffix) {
			return nil // foreign file; leave it alone
		}
		key := strings.TrimSuffix(d.Name(), entrySuffix)
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			bad = append(bad, path)
			return nil
		}
		if _, derr := decodeEntry(key, raw); derr != nil {
			bad = append(bad, path)
			return nil
		}
		inc(s.entries)
		return nil
	})
	for _, p := range bad {
		s.quarantine(p)
		quarantined++
	}
	add(s.recovered, uint64(quarantined))
	return quarantined, nil
}

// quarantine moves a damaged file into the quarantine directory under a
// unique name. Failures fall back to removal — a torn entry must not keep
// masquerading as a valid one.
func (s *Store) quarantine(path string) {
	s.mu.Lock()
	s.qseq++
	dst := filepath.Join(s.dir, QuarantineDir, fmt.Sprintf("%s.%d", filepath.Base(path), s.qseq))
	s.mu.Unlock()
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// decodeEntry parses and verifies one entry file: schema token, key match,
// declared length, and the payload's sha256.
func decodeEntry(key string, raw []byte) ([]byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("store: entry has no header line")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 4 {
		return nil, fmt.Errorf("store: header has %d fields, want 4", len(fields))
	}
	if fields[0] != Schema {
		return nil, fmt.Errorf("store: entry schema %q, want %q", fields[0], Schema)
	}
	if fields[1] != key {
		return nil, fmt.Errorf("store: entry key %q does not match file name %q", fields[1], key)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("store: bad payload length %q", fields[3])
	}
	body := raw[nl+1:]
	if len(body) != n {
		return nil, fmt.Errorf("store: payload is %d bytes, header declares %d", len(body), n)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, fmt.Errorf("store: payload sha256 mismatch")
	}
	return body, nil
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *telemetry.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}
