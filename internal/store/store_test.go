package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afterimage/internal/telemetry"
)

func openT(t *testing.T, dir string, reg *telemetry.Registry) (*Store, int) {
	t.Helper()
	s, quarantined, err := Open(dir, reg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, quarantined
}

func TestPutGetRoundTripVerbatim(t *testing.T) {
	s, _ := openT(t, t.TempDir(), nil)
	key := Key([]byte("campaign-1"))
	payload := []byte("{\n  \"curve\": [1, 2, 3],\n  \"html\": \"<&>\"\n}\n")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry reported as miss")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload not verbatim:\ngot  %q\nwant %q", got, payload)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v, want [%s]", keys, key)
	}
}

func TestGetMissAndInvalidKeys(t *testing.T) {
	s, _ := openT(t, t.TempDir(), nil)
	if _, ok := s.Get(Key([]byte("absent"))); ok {
		t.Fatal("absent key reported as hit")
	}
	for _, bad := range []string{"", "short", strings.Repeat("Z", 64), "../../../../etc/passwd"} {
		if _, ok := s.Get(bad); ok {
			t.Fatalf("invalid key %q reported as hit", bad)
		}
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put accepted invalid key %q", bad)
		}
	}
}

func TestCorruptEntryQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s, _ := openT(t, dir, reg)
	key := Key([]byte("to-corrupt"))
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes under the store: the header's sha256 no longer
	// matches.
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still present: %v", err)
	}
	if q := s.QuarantinedFiles(); len(q) != 1 {
		t.Fatalf("quarantine holds %v, want exactly one file", q)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Get("store.corrupt"); v != 1 {
		t.Fatalf("store.corrupt = %d, want 1", v)
	}

	// The slot is writable again, and the rewritten entry serves.
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "payload" {
		t.Fatalf("rewrite after quarantine failed: %q %v", got, ok)
	}
}

func TestRePutLastWriteWins(t *testing.T) {
	s, _ := openT(t, t.TempDir(), nil)
	key := Key([]byte("k"))
	if err := s.Put(key, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != "second" {
		t.Fatalf("Get = %q %v, want \"second\"", got, ok)
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, _ := openT(t, t.TempDir(), reg)
	key := Key([]byte("m"))
	s.Get(key)
	s.Put(key, []byte("v"))
	s.Get(key)
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"store.misses": 1, "store.writes": 1, "store.hits": 1,
	} {
		if v, _ := snap.Get(name); v != want {
			t.Errorf("%s = %d, want %d", name, v, want)
		}
	}
}

func TestOpenMissingRootCreatesIt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s, quarantined := openT(t, dir, nil)
	if quarantined != 0 {
		t.Fatalf("fresh store quarantined %d files", quarantined)
	}
	if err := s.Put(Key([]byte("x")), []byte("y")); err != nil {
		t.Fatal(err)
	}
}
