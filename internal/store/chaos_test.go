package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"afterimage/internal/telemetry"
)

// TestRecoveryScanQuarantinesTornTemp simulates a kill mid-write: the .tmp
// file holds a partial entry, the final name was never created. Reopening
// the store quarantines the temp file and reports the key as a miss.
func TestRecoveryScanQuarantinesTornTemp(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, nil)
	key := Key([]byte("torn"))
	good := Key([]byte("good"))
	if err := s.Put(good, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	// A crash between the temp write and the rename leaves exactly this.
	shard := filepath.Join(dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(shard, key+entrySuffix+".tmp")
	if err := os.WriteFile(torn, []byte(Schema+" "+key+" deadbeef"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, quarantined := openT(t, dir, nil)
	if quarantined != 1 {
		t.Fatalf("recovery quarantined %d files, want 1", quarantined)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn temp file survived recovery: %v", err)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("torn write surfaced as a hit")
	}
	if got, ok := s2.Get(good); !ok || string(got) != "intact" {
		t.Fatalf("intact entry lost by recovery: %q %v", got, ok)
	}
}

// TestRecoveryScanQuarantinesPartialEntry simulates a crash that left a
// published entry truncated (or a disk that tore it after the fact): the
// scan must quarantine it instead of refusing to start, and a re-put must
// restore byte-identical service.
func TestRecoveryScanQuarantinesPartialEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, nil)
	key := Key([]byte("partial"))
	payload := []byte(`{"result": "full campaign output"}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload: header length/sha no longer match.
	if err := os.WriteFile(p, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	s2, quarantined := openT(t, dir, reg)
	if quarantined != 1 {
		t.Fatalf("recovery quarantined %d files, want 1", quarantined)
	}
	if snap := reg.Snapshot(); firstVal(snap, "store.recovery.quarantined") != 1 {
		t.Fatalf("store.recovery.quarantined = %d, want 1", firstVal(snap, "store.recovery.quarantined"))
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("truncated entry served as a hit after recovery")
	}
	// Recompute path: the producer re-puts the same deterministic bytes.
	if err := s2.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("recomputed entry not byte-identical: %q", got)
	}
}

// TestRecoveryScanMixedDamage throws every damage class at one directory —
// torn temps, truncated entries, garbage headers, wrong-key entries, foreign
// files — and checks the scan keeps exactly the intact population.
func TestRecoveryScanMixedDamage(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, nil)
	intact := map[string][]byte{}
	for i := 0; i < 5; i++ {
		k := Key([]byte(fmt.Sprintf("intact-%d", i)))
		v := []byte(fmt.Sprintf("payload-%d", i))
		intact[k] = v
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	damage := 0
	// Torn temp.
	k1 := Key([]byte("d1"))
	os.MkdirAll(filepath.Join(dir, k1[:2]), 0o755)
	os.WriteFile(filepath.Join(dir, k1[:2], k1+entrySuffix+".tmp"), []byte("par"), 0o644)
	damage++
	// Garbage header under a valid entry name.
	k2 := Key([]byte("d2"))
	os.MkdirAll(filepath.Join(dir, k2[:2]), 0o755)
	os.WriteFile(filepath.Join(dir, k2[:2], k2+entrySuffix), []byte("not a header\n"), 0o644)
	damage++
	// Entry whose header names a different key (renamed/copied by hand).
	k3, k4 := Key([]byte("d3")), Key([]byte("d4"))
	if err := s.Put(k3, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	os.MkdirAll(filepath.Join(dir, k4[:2]), 0o755)
	raw, _ := os.ReadFile(s.path(k3))
	os.WriteFile(filepath.Join(dir, k4[:2], k4+entrySuffix), raw, 0o644)
	damage++
	// Foreign file: must be left alone, not quarantined.
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not an entry"), 0o644)

	s2, quarantined := openT(t, dir, nil)
	if quarantined != damage {
		t.Fatalf("recovery quarantined %d files, want %d", quarantined, damage)
	}
	for k, v := range intact {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("intact entry %s lost: %q %v", k, got, ok)
		}
	}
	if got, ok := s2.Get(k3); !ok || string(got) != "v3" {
		t.Fatalf("source of the copied entry lost: %q %v", got, ok)
	}
	if _, ok := s2.Get(k4); ok {
		t.Fatal("wrong-key entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("foreign file disturbed: %v", err)
	}
	if q := len(s2.QuarantinedFiles()); q != damage {
		t.Fatalf("quarantine dir holds %d files, want %d", q, damage)
	}
}

// TestReopenIdempotent: opening an already-clean store quarantines nothing
// and serves everything — recovery must be a no-op on a healthy directory.
func TestReopenIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, nil)
	key := Key([]byte("stable"))
	if err := s.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s2, quarantined := openT(t, dir, nil)
		if quarantined != 0 {
			t.Fatalf("reopen %d quarantined %d files", i, quarantined)
		}
		if _, ok := s2.Get(key); !ok {
			t.Fatalf("reopen %d lost the entry", i)
		}
	}
}

func firstVal(s telemetry.Snapshot, name string) uint64 {
	v, _ := s.Get(name)
	return v
}
