package store

import (
	"os"
	"sort"
	"time"

	"afterimage/internal/obslog"
)

// Retention / garbage collection: the store enforces a configurable size
// budget (Options.Budget) over the in-memory size index. Every successful
// Put records its entry and, when the total exceeds the budget, evicts the
// oldest entries first until the store fits again. Three classes of entry
// are never evicted:
//
//   - pinned keys (Pin/Unpin — the server pins a campaign's key for the
//     lifetime of its single-flight execution, so a result cannot be evicted
//     between being written and being served to its waiters);
//   - entries younger than Options.MinEvictAge (just-written grace);
//   - the entry the triggering Put itself just wrote (evicting it would be
//     pure cache thrash: the bytes were wanted milliseconds ago).
//
// The budget is therefore a soft ceiling: pinned and fresh entries can hold
// the store above it temporarily, and a single entry larger than the budget
// survives until the next write for a different key displaces it.

// Pin marks key as in-flight: the GC will not evict it until a matching
// Unpin. Pins are counted, so overlapping flights on one key nest safely.
func (s *Store) Pin(key string) {
	s.imu.Lock()
	s.pins[key]++
	s.imu.Unlock()
}

// Unpin releases one Pin on key.
func (s *Store) Unpin(key string) {
	s.imu.Lock()
	if s.pins[key] > 1 {
		s.pins[key]--
	} else {
		delete(s.pins, key)
	}
	s.imu.Unlock()
}

// Pinned reports key's current pin count (tests and triage).
func (s *Store) Pinned(key string) int {
	s.imu.Lock()
	defer s.imu.Unlock()
	return s.pins[key]
}

// recordWrite indexes a just-published entry and runs the eviction pass the
// write may have made necessary.
func (s *Store) recordWrite(key string, size int64, now time.Time) {
	s.imu.Lock()
	defer s.imu.Unlock()
	if old, ok := s.index[key]; ok {
		s.total -= old.size
	}
	s.index[key] = entryMeta{size: size, written: now}
	s.total += size
	s.setBytesGauge()
	s.evictLocked(now, key)
}

// evictLocked brings the store back under budget by deleting oldest entries
// first, skipping pinned keys, entries younger than the grace period, and
// justWritten (the key whose write triggered this pass). Callers hold imu.
//
// Eviction removes the entry file through the store's FS; a removal error
// leaves the entry indexed (a later pass retries). Eviction order is total:
// (written time, key), so two stores with identical write histories evict
// identically.
func (s *Store) evictLocked(now time.Time, justWritten string) {
	if s.budget <= 0 || s.total <= s.budget {
		return
	}
	type victim struct {
		key  string
		meta entryMeta
	}
	cands := make([]victim, 0, len(s.index))
	for k, m := range s.index {
		cands = append(cands, victim{k, m})
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].meta.written.Equal(cands[j].meta.written) {
			return cands[i].meta.written.Before(cands[j].meta.written)
		}
		return cands[i].key < cands[j].key
	})
	for _, v := range cands {
		if s.total <= s.budget {
			return
		}
		if v.key == justWritten {
			continue
		}
		if s.pins[v.key] > 0 {
			inc(s.gcPinnedSkips)
			continue
		}
		if s.minAge > 0 && now.Sub(v.meta.written) < s.minAge {
			// Candidates are ordered oldest-first, so every later entry is
			// inside the grace period too — the pass is done.
			inc(s.gcPinnedSkips)
			return
		}
		if err := s.fs.Remove(s.path(v.key)); err != nil && !os.IsNotExist(err) {
			s.log.Warn("store GC could not evict entry",
				obslog.F("key", v.key), obslog.F("err", err))
			continue
		}
		s.total -= v.meta.size
		delete(s.index, v.key)
		s.setBytesGauge()
		inc(s.gcEvictions)
		add(s.gcBytes, uint64(v.meta.size))
		s.log.Debug("store GC evicted entry", obslog.F("key", v.key),
			obslog.F("bytes", v.meta.size), obslog.F("total", s.total))
	}
}
