package store

import (
	"context"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"afterimage/internal/obslog"
)

// The scrubber turns the store's lazy integrity checking proactive: instead
// of waiting for a cache hit to trip over bit rot, a rate-limited walk
// re-verifies every entry's sha256 and quarantines corruption as it is
// found. It runs on a timer (Options.ScrubInterval) and on demand (the
// server's POST /v1/store/scrub). Scrubbing is safe concurrent with reads
// and writes: entries are published by atomic rename, so a scrub read sees
// either the old complete entry or the new one, and an entry that vanishes
// mid-scrub (evicted or re-quarantined) is skipped, not counted as damage.

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// Scanned is how many entries were read and verified.
	Scanned int `json:"scanned"`
	// Corrupt is how many failed verification and were quarantined.
	Corrupt int `json:"corrupt"`
}

// Scrub runs one full verification pass, bounded by ctx and by the
// per-second rate (0 = unlimited) configured at open. It returns what it
// scanned and quarantined.
func (s *Store) Scrub(ctx context.Context) ScrubReport {
	return s.scrub(ctx, s.scrubRate)
}

func (s *Store) scrub(ctx context.Context, rate int) ScrubReport {
	inc(s.scrubPasses)
	var rep ScrubReport

	// Snapshot the entry list first so one pass is bounded even while
	// concurrent writes add entries.
	var paths []string
	s.walkEntries(func(path string, _ fs.DirEntry) { paths = append(paths, path) })

	var gap time.Duration
	if rate > 0 {
		gap = time.Second / time.Duration(rate)
	}
	for _, p := range paths {
		if ctx.Err() != nil {
			break
		}
		if gap > 0 && !sleepCtx(ctx, gap) {
			break
		}
		key := strings.TrimSuffix(filepath.Base(p), entrySuffix)
		raw, err := s.fs.ReadFile(p)
		if err != nil {
			continue // vanished mid-pass (evicted/quarantined); not damage
		}
		rep.Scanned++
		inc(s.scrubScanned)
		if _, derr := decodeEntry(key, raw); derr != nil {
			rep.Corrupt++
			inc(s.scrubCorrupt)
			s.quarantine(p)
			s.log.Warn("scrubber quarantined corrupt entry",
				obslog.F("key", key), obslog.F("err", derr))
		}
	}
	if rep.Corrupt > 0 {
		s.log.Info("scrub pass complete", obslog.F("scanned", rep.Scanned),
			obslog.F("corrupt", rep.Corrupt))
	}
	return rep
}

// startScrubber launches the background verification loop. Stopped by
// Close.
func (s *Store) startScrubber(interval time.Duration, rate int) {
	ctx, cancel := context.WithCancel(context.Background())
	s.scrubCancel = cancel
	s.scrubWG.Add(1)
	go func() {
		defer s.scrubWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.scrub(ctx, rate)
			}
		}
	}()
}

// sleepCtx waits d, reporting false if ctx expired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
