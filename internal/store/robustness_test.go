package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

// openWithT opens a store from the full option set, failing the test on
// error and closing the store at cleanup.
func openWithT(t *testing.T, o Options) *Store {
	t.Helper()
	s, _, err := OpenWith(o)
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// probeEntrySize measures the on-disk size of one entry holding payload —
// the unit the GC budget tests do arithmetic in.
func probeEntrySize(t *testing.T, payload []byte) int64 {
	t.Helper()
	s := openWithT(t, Options{Dir: t.TempDir()})
	if err := s.Put(Key([]byte("size-probe")), payload); err != nil {
		t.Fatal(err)
	}
	return s.TotalBytes()
}

// countTempFiles walks the real directory tree counting *.tmp files — the
// litter a leaky Put error path would leave behind.
func countTempFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func counterValue(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	v, _ := reg.Snapshot().Get(name)
	return v
}

func TestGCBudgetZeroIsUnlimited(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: t.TempDir(), Registry: reg, Budget: 0})
	for i := 0; i < 10; i++ {
		if err := s.Put(Key([]byte(fmt.Sprintf("k%d", i))), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n != 10 {
		t.Fatalf("Len = %d, want all 10 with no budget", n)
	}
	if v := counterValue(t, reg, "store.gc.evictions"); v != 0 {
		t.Fatalf("store.gc.evictions = %d, want 0", v)
	}
}

func TestGCEvictsOldestFirst(t *testing.T) {
	payload := []byte("same-size-payload")
	esz := probeEntrySize(t, payload)
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: t.TempDir(), Registry: reg, Budget: 2 * esz})

	keys := make([]string, 4)
	for i := range keys {
		keys[i] = Key([]byte(fmt.Sprintf("entry-%d", i)))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	// Budget fits exactly two entries; the two oldest are gone, the two
	// newest remain.
	for _, k := range keys[:2] {
		if _, ok := s.Get(k); ok {
			t.Fatalf("oldest entry %s survived eviction", k)
		}
		if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
			t.Fatalf("evicted entry file still on disk: %v", err)
		}
	}
	for _, k := range keys[2:] {
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, payload) {
			t.Fatalf("newest entry %s lost: %q %v", k, got, ok)
		}
	}
	if total := s.TotalBytes(); total != 2*esz {
		t.Fatalf("TotalBytes = %d, want %d", total, 2*esz)
	}
	if v := counterValue(t, reg, "store.gc.evictions"); v != 2 {
		t.Fatalf("store.gc.evictions = %d, want 2", v)
	}
	if v := counterValue(t, reg, "store.gc.bytes_reclaimed"); v != uint64(2*esz) {
		t.Fatalf("store.gc.bytes_reclaimed = %d, want %d", v, 2*esz)
	}
}

func TestGCExactBudgetFitEvictsNothing(t *testing.T) {
	payload := []byte("exact")
	esz := probeEntrySize(t, payload)
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: t.TempDir(), Registry: reg, Budget: 2 * esz})
	for i := 0; i < 2; i++ {
		if err := s.Put(Key([]byte(fmt.Sprintf("fit-%d", i))), payload); err != nil {
			t.Fatal(err)
		}
	}
	// total == budget is in budget: the ceiling is inclusive.
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2 at exact budget", n)
	}
	if v := counterValue(t, reg, "store.gc.evictions"); v != 0 {
		t.Fatalf("store.gc.evictions = %d, want 0 at exact fit", v)
	}
}

func TestGCPinProtectsInFlightKeys(t *testing.T) {
	payload := []byte("pinned-payload")
	esz := probeEntrySize(t, payload)
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: t.TempDir(), Registry: reg, Budget: 2 * esz})

	keyA := Key([]byte("flight-a"))
	keyB := Key([]byte("flight-b"))
	keyC := Key([]byte("flight-c"))
	keyD := Key([]byte("flight-d"))

	if err := s.Put(keyA, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyB, payload); err != nil {
		t.Fatal(err)
	}
	s.Pin(keyA)
	if got := s.Pinned(keyA); got != 1 {
		t.Fatalf("Pinned = %d, want 1", got)
	}

	// Overflow: A is the oldest but pinned, so B (next oldest) goes.
	if err := s.Put(keyC, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyA); !ok {
		t.Fatal("pinned oldest entry was evicted")
	}
	if _, ok := s.Get(keyB); ok {
		t.Fatal("unpinned entry survived while a pinned one should have been skipped")
	}
	if v := counterValue(t, reg, "store.gc.pinned_skips"); v == 0 {
		t.Fatal("store.gc.pinned_skips = 0, want > 0")
	}

	// After Unpin the old entry is fair game again.
	s.Unpin(keyA)
	if got := s.Pinned(keyA); got != 0 {
		t.Fatalf("Pinned after Unpin = %d, want 0", got)
	}
	if err := s.Put(keyD, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyA); ok {
		t.Fatal("unpinned oldest entry survived the next eviction pass")
	}
}

func TestGCNestedPinsCount(t *testing.T) {
	s := openWithT(t, Options{Dir: t.TempDir()})
	key := Key([]byte("nested"))
	s.Pin(key)
	s.Pin(key)
	s.Unpin(key)
	if got := s.Pinned(key); got != 1 {
		t.Fatalf("Pinned after pin,pin,unpin = %d, want 1", got)
	}
	s.Unpin(key)
	if got := s.Pinned(key); got != 0 {
		t.Fatalf("Pinned after final unpin = %d, want 0", got)
	}
}

func TestGCJustWrittenEntrySurvivesItsOwnPass(t *testing.T) {
	payload := []byte("oversized-relative-to-budget")
	esz := probeEntrySize(t, payload)
	s := openWithT(t, Options{Dir: t.TempDir(), Budget: esz / 2})

	keyA := Key([]byte("big-a"))
	keyB := Key([]byte("big-b"))
	// A single entry over budget survives: evicting the bytes the caller
	// wanted milliseconds ago is pure thrash.
	if err := s.Put(keyA, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyA); !ok {
		t.Fatal("just-written entry evicted by its own write's GC pass")
	}
	// The next write for a different key displaces it.
	if err := s.Put(keyB, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyA); ok {
		t.Fatal("stale over-budget entry survived a later write")
	}
	if _, ok := s.Get(keyB); !ok {
		t.Fatal("newest write missing")
	}
}

func TestGCMinEvictAgeGrace(t *testing.T) {
	payload := []byte("fresh")
	esz := probeEntrySize(t, payload)
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{
		Dir: t.TempDir(), Registry: reg,
		Budget: esz, MinEvictAge: time.Hour,
	})
	if err := s.Put(Key([]byte("g-a")), payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key([]byte("g-b")), payload); err != nil {
		t.Fatal(err)
	}
	// Both entries are inside the grace window: the budget is a soft
	// ceiling, nothing is evicted.
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2 (grace period protects fresh entries)", n)
	}
	if v := counterValue(t, reg, "store.gc.evictions"); v != 0 {
		t.Fatalf("store.gc.evictions = %d, want 0 inside grace window", v)
	}
}

func TestGCIndexSeededByRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("restart-survivor")
	esz := probeEntrySize(t, payload)

	s1 := openWithT(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := s1.Put(Key([]byte(fmt.Sprintf("r%d", i))), payload); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()

	// A restarted store learns its size from the recovery scan and the next
	// write brings it back under budget.
	reg := telemetry.NewRegistry()
	s2 := openWithT(t, Options{Dir: dir, Registry: reg, Budget: esz})
	if total := s2.TotalBytes(); total != 3*esz {
		t.Fatalf("TotalBytes after reopen = %d, want %d", total, 3*esz)
	}
	if err := s2.Put(Key([]byte("r-new")), payload); err != nil {
		t.Fatal(err)
	}
	if total := s2.TotalBytes(); total > esz {
		t.Fatalf("TotalBytes after post-restart write = %d, want <= %d", total, esz)
	}
	if v := counterValue(t, reg, "store.gc.evictions"); v != 3 {
		t.Fatalf("store.gc.evictions = %d, want 3", v)
	}
}

func TestScrubQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: dir, Registry: reg})

	keys := make([]string, 3)
	for i := range keys {
		keys[i] = Key([]byte(fmt.Sprintf("scrub-%d", i)))
		if err := s.Put(keys[i], []byte("pristine payload")); err != nil {
			t.Fatal(err)
		}
	}
	// Rot one entry under the store.
	p := s.path(keys[1])
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := s.Scrub(context.Background())
	if rep.Scanned != 3 || rep.Corrupt != 1 {
		t.Fatalf("ScrubReport = %+v, want Scanned 3 Corrupt 1", rep)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("rotted entry still in place after scrub: %v", err)
	}
	if q := s.QuarantinedFiles(); len(q) != 1 {
		t.Fatalf("quarantine holds %v, want exactly one file", q)
	}
	for name, want := range map[string]uint64{
		"store.scrub.passes":  1,
		"store.scrub.scanned": 3,
		"store.scrub.corrupt": 1,
	} {
		if v := counterValue(t, reg, name); v != want {
			t.Errorf("%s = %d, want %d", name, v, want)
		}
	}
	// The intact entries still serve; the rotted one is a clean miss.
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("quarantined entry served as a hit")
	}
	for _, k := range []string{keys[0], keys[2]} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("intact entry %s lost during scrub", k)
		}
	}
}

func TestScrubCanceledContextStopsPass(t *testing.T) {
	s := openWithT(t, Options{Dir: t.TempDir()})
	for i := 0; i < 5; i++ {
		if err := s.Put(Key([]byte(fmt.Sprintf("c%d", i))), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if rep := s.Scrub(ctx); rep.Scanned != 0 {
		t.Fatalf("canceled scrub scanned %d entries, want 0", rep.Scanned)
	}
}

func TestBackgroundScrubberFindsRot(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: dir, Registry: reg, ScrubInterval: 5 * time.Millisecond})

	key := Key([]byte("bg-rot"))
	if err := s.Put(key, []byte("will rot")); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(s.QuarantinedFiles()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never quarantined the rotted entry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close() // idempotent with the cleanup close; stops the ticker
	if v := counterValue(t, reg, "store.scrub.corrupt"); v == 0 {
		t.Fatal("store.scrub.corrupt = 0 after background quarantine")
	}
}

// TestPutNeverLeaksTempFiles is the regression test for the Put error paths:
// whatever fault fires — ENOSPC on create, EIO on write or fsync, a failed
// rename — the temp file must not survive the failed Put.
func TestPutNeverLeaksTempFiles(t *testing.T) {
	cases := []struct {
		name string
		cfg  vfs.FaultConfig
	}{
		{"enospc on create/write/sync", vfs.FaultConfig{Seed: 1, ENOSPCRate: 1}},
		{"eio on write/sync", vfs.FaultConfig{Seed: 1, EIORate: 1}},
		{"rename fails after full write", vfs.FaultConfig{Seed: 1, RenameFailRate: 1}},
		{"mixed intermittent faults", vfs.FaultConfig{Seed: 77, ENOSPCRate: 0.3, EIORate: 0.3, RenameFailRate: 0.3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := telemetry.NewRegistry()
			s := openWithT(t, Options{
				Dir: dir, Registry: reg,
				FS: vfs.NewFaultFS(tc.cfg, nil),
				// Keep the breaker out of the way: this test is about the
				// write path's cleanup, not degradation.
				BreakerThreshold: 1 << 30,
			})
			failures := 0
			for i := 0; i < 64; i++ {
				if err := s.Put(Key([]byte(fmt.Sprintf("leak-%d", i))), []byte("payload")); err != nil {
					if !errors.Is(err, vfs.ErrInjected) {
						t.Fatalf("Put %d failed with a non-injected error: %v", i, err)
					}
					failures++
				}
			}
			if tc.cfg.ENOSPCRate == 1 || tc.cfg.EIORate == 1 || tc.cfg.RenameFailRate == 1 {
				if failures != 64 {
					t.Fatalf("rate-1 fault failed %d/64 Puts, want all", failures)
				}
			} else if failures == 0 {
				t.Fatal("mixed-rate fault injected no failures in 64 Puts")
			}
			if n := countTempFiles(t, dir); n != 0 {
				t.Fatalf("%d stray .tmp files after %d failed Puts, want 0", n, failures)
			}
			if v := counterValue(t, reg, "store.put.errors"); v != uint64(failures) {
				t.Fatalf("store.put.errors = %d, want %d", v, failures)
			}
			if v := counterValue(t, reg, "store.degraded.writes"); v != uint64(failures) {
				t.Fatalf("store.degraded.writes = %d, want %d", v, failures)
			}
		})
	}
}

// TestTornWriteCaughtByIntegrity: a torn write reports success, so Put cannot
// see it — only the read-side sha256 verification catches the truncation and
// quarantines the entry.
func TestTornWriteCaughtByIntegrity(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{
		Dir:      t.TempDir(),
		Registry: reg,
		FS:       vfs.NewFaultFS(vfs.FaultConfig{Seed: 5, TornWriteRate: 1}, nil),
	})
	key := Key([]byte("torn"))
	if err := s.Put(key, []byte("this payload will be silently truncated")); err != nil {
		t.Fatalf("torn write surfaced as a Put error: %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("torn entry served as a hit")
	}
	if q := s.QuarantinedFiles(); len(q) != 1 {
		t.Fatalf("quarantine holds %v, want the torn entry", q)
	}
	if v := counterValue(t, reg, "store.corrupt"); v != 1 {
		t.Fatalf("store.corrupt = %d, want 1", v)
	}
}

// TestBreakerDegradeAndRecover drives the write-health breaker through its
// full arc: consecutive write failures open it, open drops Puts immediately
// with ErrDegraded, and after the disk "heals" the first post-cooldown Put is
// the probe that closes it again.
func TestBreakerDegradeAndRecover(t *testing.T) {
	reg := telemetry.NewRegistry()
	fsys := vfs.NewFaultFS(vfs.FaultConfig{Seed: 3, EIORate: 1}, nil)
	s := openWithT(t, Options{
		Dir: t.TempDir(), Registry: reg, FS: fsys,
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
	})
	key := func(i int) string { return Key([]byte(fmt.Sprintf("brk-%d", i))) }

	// Two real write failures open the breaker.
	for i := 0; i < 2; i++ {
		err := s.Put(key(i), []byte("x"))
		if !errors.Is(err, syscall.EIO) || !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("Put %d: err %v, want injected EIO", i, err)
		}
	}
	if v := counterValue(t, reg, "store.breaker.opened"); v != 1 {
		t.Fatalf("store.breaker.opened = %d, want 1", v)
	}

	// Open: the next Put is dropped without touching the disk.
	if err := s.Put(key(2), []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put while open: err %v, want ErrDegraded", err)
	}
	if v := counterValue(t, reg, "store.breaker.dropped"); v != 1 {
		t.Fatalf("store.breaker.dropped = %d, want 1", v)
	}
	if v := counterValue(t, reg, "store.degraded.writes"); v != 3 {
		t.Fatalf("store.degraded.writes = %d, want 3 (2 failures + 1 drop)", v)
	}

	// Heal the disk and wait out the cooldown: the next Put is the half-open
	// probe, it succeeds, and writes are back.
	fsys.SetEnabled(false)
	time.Sleep(100 * time.Millisecond)
	if err := s.Put(key(3), []byte("probe")); err != nil {
		t.Fatalf("probe Put after heal: %v", err)
	}
	if err := s.Put(key(4), []byte("steady")); err != nil {
		t.Fatalf("steady-state Put after close: %v", err)
	}
	for _, i := range []int{3, 4} {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("post-recovery entry %d missing", i)
		}
	}
	if v := counterValue(t, reg, "store.writes"); v != 2 {
		t.Fatalf("store.writes = %d, want 2", v)
	}
}

// blockQuarantineFS fails every rename into the quarantine directory —
// the disk shape where even setting corruption aside fails.
type blockQuarantineFS struct {
	vfs.FS
}

func (b blockQuarantineFS) Rename(oldpath, newpath string) error {
	if strings.Contains(newpath, string(filepath.Separator)+QuarantineDir+string(filepath.Separator)) {
		return errors.New("injected: quarantine rename blocked")
	}
	return b.FS.Rename(oldpath, newpath)
}

func TestQuarantineRenameFallsBackToRemoval(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openWithT(t, Options{Dir: dir, Registry: reg, FS: blockQuarantineFS{vfs.OS()}})

	key := Key([]byte("unquarantinable"))
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if v := counterValue(t, reg, "store.quarantine.failed"); v != 1 {
		t.Fatalf("store.quarantine.failed = %d, want 1", v)
	}
	// The fallback removed the file: forensics lost, but the corrupt bytes
	// can never be served again.
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still on disk after fallback removal: %v", err)
	}
	if q := s.QuarantinedFiles(); len(q) != 0 {
		t.Fatalf("quarantine holds %v, want empty (rename was blocked)", q)
	}
}
