package vfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	iofs "io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"afterimage/internal/telemetry"
)

// ErrInjected tags every error the fault injector fabricates, so tests and
// failure classification can tell an injected disk fault from a real one.
// The underlying errno (syscall.ENOSPC, syscall.EIO) is also in the chain:
// errors.Is(err, syscall.ENOSPC) holds for an injected full disk exactly as
// it would for a real one.
var ErrInjected = errors.New("vfs: injected disk fault")

// Op names one faultable filesystem operation. Read-side operations
// (ReadFile, ReadDir, Stat, Remove, MkdirAll, SyncDir) pass through
// unfaulted — the write path is where durability lives, and read-side damage
// is modeled by real bit flips in the chaos tests.
type Op string

// The faultable operations.
const (
	OpCreate Op = "create" // opening the temp file (ENOSPC applies)
	OpWrite  Op = "write"  // writing bytes (ENOSPC, EIO, torn apply)
	OpSync   Op = "sync"   // fsync (ENOSPC, EIO apply — the fsyncgate shape)
	OpRename Op = "rename" // publishing the entry (RenameFailRate applies)
)

// FaultConfig parameterises the deterministic filesystem-fault injector.
// Like the cluster's net-fault injector, the whole schedule is a pure
// function of the config: the decision for the n-th faultable operation on a
// path is derived from (Seed, path, n) by FNV-1a hashing, so two injectors
// with equal configs fault the identical operations in the identical ways —
// every degradation path a disk-chaos run takes is reproducible from its
// seed.
type FaultConfig struct {
	// Seed drives every fault decision. Equal seeds replay equal schedules.
	Seed int64
	// ENOSPCRate is the probability a create/write/sync operation fails with
	// ENOSPC (disk full). ENOSPC shadows EIO and torn writes for the same
	// operation — a full disk reports full, not flaky.
	ENOSPCRate float64
	// EIORate is the probability a write/sync operation fails with EIO.
	EIORate float64
	// TornWriteRate is the probability a write is silently truncated: a
	// deterministic fraction of the buffer reaches the file and the call
	// reports success — the short-write a crashing disk controller leaves
	// behind. Only integrity verification (sha256 on read, the scrubber, the
	// recovery scan) can catch it, which is the point.
	TornWriteRate float64
	// RenameFailRate is the probability a rename fails with EIO, leaving the
	// temp file unpublished.
	RenameFailRate float64
	// Registry, when set, receives the vfs.fault.* counters.
	Registry *telemetry.Registry
}

// FaultDecision is the schedule entry for one (path, n) operation slot: the
// independent draws for every fault kind. Which draw applies depends on the
// operation occupying the slot — Fault and TornWrite encode that mapping.
type FaultDecision struct {
	ENOSPC     bool
	EIO        bool
	Torn       bool
	TornFrac   float64 // fraction of the buffer written when Torn applies
	RenameFail bool
}

// Fault resolves the decision against an operation: the injected error for
// this slot, or nil. Precedence for write-path ops is ENOSPC > EIO; torn
// writes are not errors (see TornWrite). Renames consult only RenameFail.
func (d FaultDecision) Fault(op Op) error {
	switch op {
	case OpCreate:
		if d.ENOSPC {
			return injectedErr(syscall.ENOSPC, op)
		}
	case OpWrite, OpSync:
		if d.ENOSPC {
			return injectedErr(syscall.ENOSPC, op)
		}
		if d.EIO {
			return injectedErr(syscall.EIO, op)
		}
	case OpRename:
		if d.RenameFail {
			return injectedErr(syscall.EIO, op)
		}
	}
	return nil
}

// TornWrite reports whether a write in this slot is silently truncated
// (only when no error shadows it).
func (d FaultDecision) TornWrite(op Op) bool {
	return op == OpWrite && !d.ENOSPC && !d.EIO && d.Torn
}

func injectedErr(errno error, op Op) error {
	return fmt.Errorf("%w: %w during %s", ErrInjected, errno, op)
}

// decide computes the deterministic draws for the n-th faultable operation
// on path.
func (cfg FaultConfig) decide(path string, n uint64) FaultDecision {
	return FaultDecision{
		ENOSPC:     fchance(cfg.Seed, path, n, "enospc") < cfg.ENOSPCRate,
		EIO:        fchance(cfg.Seed, path, n, "eio") < cfg.EIORate,
		Torn:       fchance(cfg.Seed, path, n, "torn") < cfg.TornWriteRate,
		TornFrac:   fchance(cfg.Seed, path, n, "torn-frac"),
		RenameFail: fchance(cfg.Seed, path, n, "rename") < cfg.RenameFailRate,
	}
}

// Schedule materialises the first n decisions for path — the determinism
// tests' window into the schedule without performing any I/O. Entry i is the
// decision the live injector applies to the i-th faultable operation on
// path.
func (cfg FaultConfig) Schedule(path string, n int) []FaultDecision {
	out := make([]FaultDecision, n)
	for i := range out {
		out[i] = cfg.decide(path, uint64(i))
	}
	return out
}

// fchance maps (seed, path, n, salt) to a uniform [0, 1) — the same FNV-1a
// construction as the net-fault injector, salted per fault kind so the draws
// for one operation slot are independent.
func fchance(seed int64, path string, n uint64, salt string) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], n)
	h.Write(buf[:])
	io.WriteString(h, path)
	io.WriteString(h, salt)
	return float64(h.Sum64()%(1<<20)) / float64(1<<20)
}

// FaultFS wraps an inner FS with the fault schedule cfg describes. Each path
// has its own operation-sequence counter, so concurrency across paths never
// perturbs a path's schedule. It is safe for concurrent use.
type FaultFS struct {
	cfg   FaultConfig
	inner FS

	enabled atomic.Bool

	mu  sync.Mutex
	seq map[string]uint64 // per-path faultable-operation counter

	enospc, eio, torn, renames *telemetry.Counter
}

// NewFaultFS wraps inner (nil means OS()) with the schedule cfg describes.
// The injector starts enabled.
func NewFaultFS(cfg FaultConfig, inner FS) *FaultFS {
	if inner == nil {
		inner = OS()
	}
	f := &FaultFS{cfg: cfg, inner: inner, seq: make(map[string]uint64)}
	f.enabled.Store(true)
	if reg := cfg.Registry; reg != nil {
		f.enospc = reg.Counter("vfs.fault.enospc")
		f.eio = reg.Counter("vfs.fault.eio")
		f.torn = reg.Counter("vfs.fault.torn")
		f.renames = reg.Counter("vfs.fault.rename_fails")
	}
	return f
}

// SetEnabled turns injection on or off at runtime — the "disk healed" lever
// the breaker-recovery tests pull. Disabled, every operation passes straight
// through without consuming schedule slots.
func (f *FaultFS) SetEnabled(on bool) { f.enabled.Store(on) }

// Enabled reports whether the injector is live.
func (f *FaultFS) Enabled() bool { return f.enabled.Load() }

// next consumes the next schedule slot for path.
func (f *FaultFS) next(path string) FaultDecision {
	f.mu.Lock()
	n := f.seq[path]
	f.seq[path] = n + 1
	f.mu.Unlock()
	return f.cfg.decide(path, n)
}

func (f *FaultFS) count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Passthrough (unfaulted) operations.

func (f *FaultFS) MkdirAll(path string, perm iofs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}
func (f *FaultFS) ReadFile(path string) ([]byte, error)         { return f.inner.ReadFile(path) }
func (f *FaultFS) ReadDir(path string) ([]iofs.DirEntry, error) { return f.inner.ReadDir(path) }
func (f *FaultFS) Stat(path string) (iofs.FileInfo, error)      { return f.inner.Stat(path) }
func (f *FaultFS) Remove(path string) error                     { return f.inner.Remove(path) }
func (f *FaultFS) SyncDir(path string) error                    { return f.inner.SyncDir(path) }

// Create applies the schedule's ENOSPC draw, then opens through the inner
// FS, returning a handle whose writes and syncs consume further slots on the
// same path.
func (f *FaultFS) Create(path string) (File, error) {
	if f.enabled.Load() {
		if err := f.next(path).Fault(OpCreate); err != nil {
			f.count(f.enospc)
			return nil, err
		}
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, inner: inner}, nil
}

// Rename consumes a slot keyed by the source path (the temp file being
// published).
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.enabled.Load() {
		if err := f.next(oldpath).Fault(OpRename); err != nil {
			f.count(f.renames)
			return err
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

// faultFile interposes on the write/sync leg of a durable write.
type faultFile struct {
	fs    *FaultFS
	path  string
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if !ff.fs.enabled.Load() {
		return ff.inner.Write(p)
	}
	d := ff.fs.next(ff.path)
	if err := d.Fault(OpWrite); err != nil {
		if errors.Is(err, syscall.ENOSPC) {
			ff.fs.count(ff.fs.enospc)
		} else {
			ff.fs.count(ff.fs.eio)
		}
		return 0, err
	}
	if d.TornWrite(OpWrite) {
		// Silent truncation: a deterministic prefix lands, the call lies
		// about it. Only content verification downstream can notice.
		ff.fs.count(ff.fs.torn)
		keep := int(d.TornFrac * float64(len(p)))
		if keep >= len(p) && len(p) > 0 {
			keep = len(p) - 1
		}
		if _, err := ff.inner.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.enabled.Load() {
		if err := ff.fs.next(ff.path).Fault(OpSync); err != nil {
			if errors.Is(err, syscall.ENOSPC) {
				ff.fs.count(ff.fs.enospc)
			} else {
				ff.fs.count(ff.fs.eio)
			}
			return err
		}
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

// ParseFaultConfig parses the -fs-chaos flag syntax:
//
//	seed=7,enospc=0.05,eio=0.05,torn=0.02,rename=0.02
//
// Keys may appear in any order; missing keys default to zero. Unknown keys
// and malformed values are errors, so a typo'd chaos flag fails loudly
// instead of silently running a clean-disk soak.
func ParseFaultConfig(s string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(s) == "" {
		return cfg, fmt.Errorf("vfs: empty fault config")
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("vfs: fault config term %q is not key=value", part)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("vfs: fault config seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "enospc", "eio", "torn", "rename":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return cfg, fmt.Errorf("vfs: fault config rate %s=%q: want a number in [0, 1]", key, val)
			}
			switch key {
			case "enospc":
				cfg.ENOSPCRate = r
			case "eio":
				cfg.EIORate = r
			case "torn":
				cfg.TornWriteRate = r
			case "rename":
				cfg.RenameFailRate = r
			}
		default:
			keys := []string{"seed", "enospc", "eio", "torn", "rename"}
			sort.Strings(keys)
			return cfg, fmt.Errorf("vfs: fault config key %q: want one of %s", key, strings.Join(keys, ", "))
		}
	}
	return cfg, nil
}
