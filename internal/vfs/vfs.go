// Package vfs is the filesystem seam under the campaign service's durable
// state (the content-addressed result store and the runner's checkpoints).
// Production code writes through the FS interface instead of calling os.*
// directly, which buys two things:
//
//   - Fault injection: FaultFS wraps any FS with a deterministic seeded
//     schedule of disk faults (ENOSPC, EIO on write/sync, silent torn
//     short-writes, rename failures) — the same pure-function-of-seed shape
//     as the cluster's network-fault injector, so a disk-chaos run is
//     replayable from its seed.
//   - A single durability idiom: SyncDir lives here (with the
//     EINVAL/ENOTSUP tolerance network mounts need) so every atomic
//     write-temp → fsync → rename → fsync-dir sequence in the tree shares
//     one implementation.
//
// The interface is deliberately small — exactly the operations the store and
// checkpoint writers perform. Read-side faults (bit rot) are not injected
// here: flipping bytes in a real file exercises the exact read-verification
// path production takes, so the chaos tests do that directly.
package vfs

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
)

// File is the writable handle Create returns: the write → fsync → close leg
// of an atomic durable write.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the durable-state layers consume. All paths
// are ordinary OS paths; implementations must be safe for concurrent use.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Create opens path for writing, truncating any existing file
	// (O_WRONLY|O_CREATE|O_TRUNC, 0644).
	Create(path string) (File, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat describes a path.
	Stat(path string) (fs.FileInfo, error)
	// Remove deletes a file.
	Remove(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs a directory so a completed rename inside it is durable.
	SyncDir(path string) error
}

// osFS is the passthrough implementation over the real filesystem.
type osFS struct{}

// OS returns the real-filesystem FS. It is stateless; every call returns an
// equivalent value.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)      { return os.Stat(path) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }

// SyncDir fsyncs a directory so a just-completed rename inside it is durable,
// not merely atomic. Filesystems that refuse to fsync directories (some
// network mounts) are tolerated: atomicity still holds there, durability is
// whatever the mount provides.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
