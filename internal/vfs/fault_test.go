package vfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"afterimage/internal/telemetry"
)

// TestFaultScheduleDeterministic: the injector's fault schedule is a pure
// function of (seed, path, sequence, rates) — two configs with the same
// parameters produce byte-identical decision tables, which is what lets a
// disk-chaos failure be replayed by seed.
func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ENOSPCRate: 0.3, EIORate: 0.2, TornWriteRate: 0.2, RenameFailRate: 0.1}
	a := cfg.Schedule("/store/ab/key.entry.tmp", 256)
	b := cfg.Schedule("/store/ab/key.entry.tmp", 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed/path/config produced different schedules")
	}
}

// TestFaultScheduleVariesBySeedAndPath: changing the seed or the path changes
// the schedule — faults are not synchronized across entries, and two seeds
// explore different failure interleavings.
func TestFaultScheduleVariesBySeedAndPath(t *testing.T) {
	base := FaultConfig{Seed: 1, ENOSPCRate: 0.5, EIORate: 0.5, TornWriteRate: 0.5, RenameFailRate: 0.5}
	ref := base.Schedule("/a", 256)

	other := base
	other.Seed = 2
	if reflect.DeepEqual(ref, other.Schedule("/a", 256)) {
		t.Error("different seeds produced identical schedules")
	}
	if reflect.DeepEqual(ref, base.Schedule("/b", 256)) {
		t.Error("different paths produced identical schedules")
	}
}

// TestFaultScheduleInvariants: table-driven over rate corners. ENOSPC shadows
// EIO and torn writes on write-path operations; rate 0 and rate 1 behave as
// exact never/always; torn fractions stay in [0, 1).
func TestFaultScheduleInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  FaultConfig
		// predicates over the 256-entry schedule, resolved per op
		wantCreateAlways bool // Create faults on every slot
		wantCreateNever  bool
		wantWriteErrno   error // non-nil: every Write slot faults with this errno
		wantWriteClean   bool  // every Write slot passes (no error, maybe torn)
		wantAllTorn      bool
		wantNoTorn       bool
		wantRenameAlways bool
		wantRenameNever  bool
	}{
		{
			name:            "all zero rates: clean disk",
			cfg:             FaultConfig{Seed: 7},
			wantCreateNever: true,
			wantWriteClean:  true,
			wantNoTorn:      true,
			wantRenameNever: true,
		},
		{
			name:             "enospc=1 shadows eio and torn on writes",
			cfg:              FaultConfig{Seed: 7, ENOSPCRate: 1, EIORate: 1, TornWriteRate: 1},
			wantCreateAlways: true,
			wantWriteErrno:   syscall.ENOSPC,
			wantNoTorn:       true,
			wantRenameNever:  true,
		},
		{
			name:            "eio=1 without enospc",
			cfg:             FaultConfig{Seed: 7, EIORate: 1, TornWriteRate: 1},
			wantCreateNever: true,
			wantWriteErrno:  syscall.EIO,
			wantNoTorn:      true,
		},
		{
			name:            "torn=1 alone: silent truncation, no errors",
			cfg:             FaultConfig{Seed: 7, TornWriteRate: 1},
			wantCreateNever: true,
			wantWriteClean:  true,
			wantAllTorn:     true,
			wantRenameNever: true,
		},
		{
			name:             "rename=1 faults only renames",
			cfg:              FaultConfig{Seed: 7, RenameFailRate: 1},
			wantCreateNever:  true,
			wantWriteClean:   true,
			wantNoTorn:       true,
			wantRenameAlways: true,
		},
		{
			name: "mixed rates keep precedence",
			cfg:  FaultConfig{Seed: 9, ENOSPCRate: 0.5, EIORate: 0.9, TornWriteRate: 0.9, RenameFailRate: 0.3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := tc.cfg.Schedule("/p", 256)
			if len(sched) != 256 {
				t.Fatalf("schedule length %d, want 256", len(sched))
			}
			for i, d := range sched {
				if d.TornFrac < 0 || d.TornFrac >= 1 {
					t.Fatalf("entry %d: TornFrac %v outside [0, 1)", i, d.TornFrac)
				}
				if d.ENOSPC && d.Fault(OpWrite) != nil && !errors.Is(d.Fault(OpWrite), syscall.ENOSPC) {
					t.Fatalf("entry %d: ENOSPC draw did not shadow EIO: %v", i, d.Fault(OpWrite))
				}
				if d.TornWrite(OpWrite) && d.Fault(OpWrite) != nil {
					t.Fatalf("entry %d: torn write alongside a write error", i)
				}
				if tc.wantCreateAlways && d.Fault(OpCreate) == nil {
					t.Fatalf("entry %d: want create fault", i)
				}
				if tc.wantCreateNever && d.Fault(OpCreate) != nil {
					t.Fatalf("entry %d: unexpected create fault %v", i, d.Fault(OpCreate))
				}
				if tc.wantWriteErrno != nil && !errors.Is(d.Fault(OpWrite), tc.wantWriteErrno) {
					t.Fatalf("entry %d: write fault %v, want %v", i, d.Fault(OpWrite), tc.wantWriteErrno)
				}
				if tc.wantWriteClean && d.Fault(OpWrite) != nil {
					t.Fatalf("entry %d: unexpected write fault %v", i, d.Fault(OpWrite))
				}
				if tc.wantAllTorn && !d.TornWrite(OpWrite) {
					t.Fatalf("entry %d: want torn write", i)
				}
				if tc.wantNoTorn && d.TornWrite(OpWrite) {
					t.Fatalf("entry %d: unexpected torn write", i)
				}
				if tc.wantRenameAlways && d.Fault(OpRename) == nil {
					t.Fatalf("entry %d: want rename fault", i)
				}
				if tc.wantRenameNever && d.Fault(OpRename) != nil {
					t.Fatalf("entry %d: unexpected rename fault %v", i, d.Fault(OpRename))
				}
			}
		})
	}
}

// TestFaultFSMatchesSchedule: the live FaultFS consumes the same
// deterministic schedule Schedule() predicts — operation k on a path faults
// iff the table says so, torn writes truncate to exactly the predicted
// prefix, and the vfs.fault.* counters account for every injection.
func TestFaultFSMatchesSchedule(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	cfg := FaultConfig{Seed: 99, ENOSPCRate: 0.18, EIORate: 0.18, TornWriteRate: 0.18, RenameFailRate: 0.18, Registry: reg}
	fsys := NewFaultFS(cfg, OS())

	tmp := filepath.Join(dir, "entry.tmp")
	final := filepath.Join(dir, "entry")
	payload := []byte("0123456789abcdef0123456789abcdef")
	sched := cfg.Schedule(tmp, 512)

	var wantENOSPC, wantEIO, wantTorn, wantRename uint64
	k := 0
	next := func() FaultDecision { d := sched[k]; k++; return d }
	published := 0
	for attempt := 0; attempt < 64; attempt++ {
		os.Remove(final)
		f, err := fsys.Create(tmp)
		if d := next(); d.Fault(OpCreate) != nil {
			wantENOSPC++
			if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
				t.Fatalf("attempt %d: create err %v, schedule says ENOSPC", attempt, err)
			}
			continue
		} else if err != nil {
			t.Fatalf("attempt %d: create failed off-schedule: %v", attempt, err)
		}

		n, err := f.Write(payload)
		d := next()
		if werr := d.Fault(OpWrite); werr != nil {
			if errors.Is(werr, syscall.ENOSPC) {
				wantENOSPC++
			} else {
				wantEIO++
			}
			if err == nil || !errors.Is(err, ErrInjected) {
				t.Fatalf("attempt %d: write err %v, schedule says %v", attempt, err, werr)
			}
			f.Close()
			continue
		}
		if err != nil || n != len(payload) {
			t.Fatalf("attempt %d: write = (%d, %v), schedule says clean", attempt, n, err)
		}
		torn := d.TornWrite(OpWrite)
		tornKeep := int(d.TornFrac * float64(len(payload)))
		if tornKeep >= len(payload) {
			tornKeep = len(payload) - 1
		}
		if torn {
			wantTorn++
		}

		err = f.Sync()
		if d := next(); d.Fault(OpSync) != nil {
			if errors.Is(d.Fault(OpSync), syscall.ENOSPC) {
				wantENOSPC++
			} else {
				wantEIO++
			}
			if err == nil {
				t.Fatalf("attempt %d: sync succeeded, schedule says fault", attempt)
			}
			f.Close()
			continue
		} else if err != nil {
			t.Fatalf("attempt %d: sync failed off-schedule: %v", attempt, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("attempt %d: close: %v", attempt, err)
		}

		err = fsys.Rename(tmp, final)
		if d := next(); d.Fault(OpRename) != nil {
			wantRename++
			if err == nil {
				t.Fatalf("attempt %d: rename succeeded, schedule says fault", attempt)
			}
			continue
		} else if err != nil {
			t.Fatalf("attempt %d: rename failed off-schedule: %v", attempt, err)
		}

		got, err := os.ReadFile(final)
		if err != nil {
			t.Fatalf("attempt %d: read published file: %v", attempt, err)
		}
		if torn {
			if !bytes.Equal(got, payload[:tornKeep]) {
				t.Fatalf("attempt %d: torn write kept %d bytes, schedule says %d", attempt, len(got), tornKeep)
			}
		} else if !bytes.Equal(got, payload) {
			t.Fatalf("attempt %d: published bytes differ", attempt)
		}
		published++
	}

	if published == 0 {
		t.Fatal("seed published nothing in 64 attempts; pick another seed")
	}
	for _, kind := range []struct {
		name string
		want uint64
	}{
		{"vfs.fault.enospc", wantENOSPC},
		{"vfs.fault.eio", wantEIO},
		{"vfs.fault.torn", wantTorn},
		{"vfs.fault.rename_fails", wantRename},
	} {
		if kind.want == 0 {
			t.Errorf("seed exercised no %s faults in 64 attempts; pick another seed", kind.name)
		}
		if got := reg.Snapshot().Counters[kind.name]; got != kind.want {
			t.Errorf("%s = %d, want %d", kind.name, got, kind.want)
		}
	}
}

// TestFaultFSDisabled: SetEnabled(false) passes everything through without
// consuming schedule slots, and re-enabling resumes the schedule where it
// left off — the injector models a disk that heals and relapses.
func TestFaultFSDisabled(t *testing.T) {
	dir := t.TempDir()
	cfg := FaultConfig{Seed: 3, ENOSPCRate: 1}
	fsys := NewFaultFS(cfg, OS())
	p := filepath.Join(dir, "f")

	if _, err := fsys.Create(p); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("enabled create err = %v, want ENOSPC", err)
	}
	fsys.SetEnabled(false)
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatalf("disabled create failed: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("disabled write failed: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("disabled sync failed: %v", err)
	}
	f.Close()
	fsys.SetEnabled(true)
	if !fsys.Enabled() {
		t.Fatal("Enabled() false after SetEnabled(true)")
	}
	if _, err := fsys.Create(p); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("re-enabled create err = %v, want ENOSPC", err)
	}
}

// TestParseFaultConfig: the -fs-chaos flag syntax round-trips and malformed
// inputs fail loudly instead of silently running a clean-disk soak.
func TestParseFaultConfig(t *testing.T) {
	cfg, err := ParseFaultConfig("seed=7,enospc=0.05,eio=0.1,torn=0.02,rename=0.03")
	if err != nil {
		t.Fatalf("ParseFaultConfig: %v", err)
	}
	want := FaultConfig{Seed: 7, ENOSPCRate: 0.05, EIORate: 0.1, TornWriteRate: 0.02, RenameFailRate: 0.03}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if _, err := ParseFaultConfig("seed=9"); err != nil {
		t.Fatalf("partial config rejected: %v", err)
	}
	for _, bad := range []string{
		"",
		"seed",
		"seed=x",
		"enospc=2",
		"eio=-0.1",
		"unknown=1",
		"torn=0.5,bogus",
	} {
		if _, err := ParseFaultConfig(bad); err == nil {
			t.Errorf("ParseFaultConfig(%q) accepted malformed input", bad)
		}
	}
}

// TestOSRoundTrip exercises the passthrough FS end to end: the atomic
// durable-write sequence the store and checkpoint writers perform, plus the
// read-side surface.
func TestOSRoundTrip(t *testing.T) {
	fsys := OS()
	dir := filepath.Join(t.TempDir(), "a", "b")
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "x.tmp")
	final := filepath.Join(dir, "x")
	f, err := fsys.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(final)
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "x" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	fi, err := fsys.Stat(final)
	if err != nil || fi.Size() != int64(len("payload")) {
		t.Fatalf("Stat = %v, %v", fi, err)
	}
	if err := fsys.Remove(final); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(final); !os.IsNotExist(err) {
		t.Fatalf("Stat after Remove: %v", err)
	}
}

// TestInjectedErrorShape: injected faults are recognisable both as injected
// (ErrInjected) and as their errno (syscall.ENOSPC / syscall.EIO), and their
// text names the operation.
func TestInjectedErrorShape(t *testing.T) {
	d := FaultDecision{ENOSPC: true}
	err := d.Fault(OpWrite)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC fault chain wrong: %v", err)
	}
	if !strings.Contains(err.Error(), "write") {
		t.Fatalf("fault text %q does not name the op", err)
	}
	if derr := (FaultDecision{RenameFail: true}).Fault(OpRename); !errors.Is(derr, syscall.EIO) {
		t.Fatalf("rename fault chain wrong: %v", derr)
	}
}
