package server_test

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/server"
)

// TestServeSoak is the out-of-process crash soak: it builds the real
// afterimage-serve binary, drives it with concurrent clients, SIGKILLs it
// mid-campaign (no drain, no warning), restarts it over the same
// directories, and gates on the service's durability contract:
//
//   - results completed before the kill are served as cache hits with
//     byte-identical bodies;
//   - the campaign interrupted by the kill completes after restart with
//     bytes identical to an uninterrupted in-process run, resuming its
//     checkpointed points rather than starting over.
//
// On failure the store/checkpoint directories are preserved (path logged)
// so CI can upload them as an artifact.
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	work, err := os.MkdirTemp("", "afterimage-serve-soak-")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if t.Failed() {
			t.Logf("soak artifacts preserved at %s", work)
			return
		}
		os.RemoveAll(work)
	}()
	storeDir := filepath.Join(work, "store")
	ckptDir := filepath.Join(work, "checkpoints")

	// Build the actual binary under test.
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(work, "afterimage-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/afterimage-serve")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build afterimage-serve: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	cl := client.New("http://" + addr)
	start := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", addr, "-store", storeDir, "-checkpoints", ckptDir,
			"-max-campaigns", "2", "-queue", "4", "-tenant-quota", "4",
			"-retry-after", "1s")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start afterimage-serve: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := cl.WaitReady(ctx); err != nil {
			t.Fatalf("server never became ready: %v", err)
		}
		return cmd
	}

	// victim is the campaign the kill lands on: enough points that at least
	// one is checkpointed while others remain.
	victim := server.CampaignSpec{
		Tenant: "soak", Attack: "v1-thread", Seed: 900,
		Bits: 16, Intensities: []float64{0, 1, 2, 3, 4, 5},
	}
	victimKey := victim.Normalize().Key()

	// Golden for the victim: the same campaign, in-process, undisturbed.
	golden := func() []byte {
		e := newEnv(t, nil)
		res, err := e.cl.Submit(context.Background(), victim)
		if err != nil {
			t.Fatalf("golden run: %v", err)
		}
		return res.Body
	}()

	// ---- Generation 1: concurrent load, then SIGKILL mid-victim. ----
	gen1 := start()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	small := make(map[int64][]byte)
	var smu sync.Mutex
	for seed := int64(901); seed <= 904; seed++ {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cl.SubmitWait(ctx, tinySpec(seed), 30)
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return
			}
			smu.Lock()
			small[seed] = res.Body
			smu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	baseline := metricValue(t, cl, "runner.checkpoint.writes")

	// Launch the victim and kill the server once its first point lands.
	go cl.Submit(ctx, victim) // the kill will sever this request; ignore it
	deadline := time.Now().Add(60 * time.Second)
	for metricValue(t, cl, "runner.checkpoint.writes") <= baseline {
		if time.Now().After(deadline) {
			t.Fatal("victim campaign never checkpointed a point")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := gen1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	gen1.Wait()
	interrupted := fileExists(filepath.Join(ckptDir, victimKey+".ckpt"))

	// ---- Generation 2: restart over the same state. ----
	gen2 := start()
	defer func() {
		gen2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { gen2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			gen2.Process.Kill()
		}
	}()

	// Everything completed before the kill is a hit, byte for byte.
	for seed, want := range small {
		res, err := cl.SubmitWait(ctx, tinySpec(seed), 30)
		if err != nil {
			t.Fatalf("seed %d after restart: %v", seed, err)
		}
		if res.Source != "hit" {
			t.Errorf("seed %d after restart: source %q, want hit", seed, res.Source)
		}
		if !bytes.Equal(res.Body, want) {
			t.Errorf("seed %d after restart: bytes differ from pre-kill result", seed)
		}
	}

	// The interrupted victim completes — resumed, and identical to golden.
	res, err := cl.SubmitWait(ctx, victim, 30)
	if err != nil {
		t.Fatalf("victim after restart: %v", err)
	}
	if !bytes.Equal(res.Body, golden) {
		t.Errorf("victim after restart diverged from uninterrupted run (%d vs %d bytes)",
			len(res.Body), len(golden))
	}
	if interrupted {
		if resumed := metricValue(t, cl, "runner.jobs.resumed"); resumed < 1 {
			t.Errorf("runner.jobs.resumed = %d, want >= 1 (checkpoint existed but was not used)", resumed)
		}
	} else {
		// The kill landed after the victim finished; the restart must then
		// have served it straight from the store.
		if res.Source != "hit" {
			t.Errorf("victim finished pre-kill but source is %q, want hit", res.Source)
		}
	}
}

// freeAddr reserves an ephemeral localhost port and returns host:port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// metricValue scrapes one counter from the live server's /metrics text.
func metricValue(t *testing.T, cl *client.Client, name string) uint64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	text, err := cl.Metrics(ctx)
	if err != nil {
		return 0 // mid-kill scrapes may fail; callers poll
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("unparseable metric line %q: %v", sc.Text(), err)
			}
			return v
		}
	}
	return 0
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
