package server

import (
	"sync"

	"afterimage"
)

// ProgressEvent is one server-sent progress record for an in-flight
// campaign. The stream for a campaign is: queued → started → point* →
// phases? → (done | error). Phase aggregates originate from the simulator's
// telemetry hub (train/trigger/probe/decode spans absorbed per sweep point)
// and are forwarded when the campaign completes.
type ProgressEvent struct {
	// Type is queued | started | point | phases | done | error.
	Type string `json:"type"`
	// Key is the campaign's content address.
	Key string `json:"key"`
	// Completed / Total count checkpointed sweep points (point events).
	Completed int `json:"completed,omitempty"`
	Total     int `json:"total,omitempty"`
	// Cached marks a done event served from the store without execution.
	Cached bool `json:"cached,omitempty"`
	// Phases carries the campaign's per-phase cycle aggregates (phases
	// events).
	Phases []afterimage.PhaseSummary `json:"phases,omitempty"`
	// Err carries the failure (error events).
	Err string `json:"err,omitempty"`
}

// progressHub fans ProgressEvents out to per-campaign subscribers. Publishes
// never block campaign execution: a subscriber whose buffer is full drops
// events (SSE consumers are advisory observers, not a durability channel —
// the checkpoint is).
type progressHub struct {
	mu   sync.Mutex
	subs map[string]map[chan ProgressEvent]struct{}
	last map[string]ProgressEvent // most recent event per active campaign
}

func newProgressHub() *progressHub {
	return &progressHub{
		subs: make(map[string]map[chan ProgressEvent]struct{}),
		last: make(map[string]ProgressEvent),
	}
}

// publish delivers ev to every subscriber of its key (dropping on full
// buffers) and records it as the key's latest state. Terminal events clear
// the latest-state entry — the store is the source of truth afterwards.
func (h *progressHub) publish(ev ProgressEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ev.Type == "done" || ev.Type == "error" {
		delete(h.last, ev.Key)
	} else {
		h.last[ev.Key] = ev
	}
	for ch := range h.subs[ev.Key] {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a buffered listener for key, first replaying the
// campaign's latest known state so late subscribers are not blind until the
// next event. The returned cancel is idempotent and closes the channel.
func (h *progressHub) subscribe(key string) (<-chan ProgressEvent, func()) {
	ch := make(chan ProgressEvent, 64)
	h.mu.Lock()
	if h.subs[key] == nil {
		h.subs[key] = make(map[chan ProgressEvent]struct{})
	}
	h.subs[key][ch] = struct{}{}
	if last, ok := h.last[key]; ok {
		ch <- last
	}
	h.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs[key], ch)
			if len(h.subs[key]) == 0 {
				delete(h.subs, key)
			}
			h.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// state reports the latest non-terminal event for key, if any — the /status
// answer for an in-flight campaign.
func (h *progressHub) state(key string) (ProgressEvent, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ev, ok := h.last[key]
	return ev, ok
}
