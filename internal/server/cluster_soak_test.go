package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/cluster"
	"afterimage/internal/server"
)

// TestClusterSoak is the out-of-process chaos soak for the sharded lab pool:
// it boots the real afterimage-serve binary in cluster mode plus three real
// afterimage-worker processes, then — mid-campaign — SIGKILLs one worker (a
// crash) and SIGUSR1-partitions another (a netsplit: the process lives, every
// request to it stalls). The gates, in order of severity:
//
//   - every campaign submitted across the chaos completes;
//   - every result is byte-identical to an in-process single-node golden,
//     whichever worker (or the local degradation path) produced it;
//   - after ALL workers are dead the service still answers — degrade-to-local
//     is observable via cluster.dispatch.local.
//
// Worker logs land in the preserved work directory on failure so CI can
// upload them as artifacts.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak skipped in -short mode")
	}

	work, err := os.MkdirTemp("", "afterimage-cluster-soak-")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if t.Failed() {
			t.Logf("cluster soak artifacts preserved at %s", work)
			return
		}
		os.RemoveAll(work)
	}()

	// Build both binaries under test.
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	serveBin := filepath.Join(work, "afterimage-serve")
	workerBin := filepath.Join(work, "afterimage-worker")
	for bin, pkg := range map[string]string{
		serveBin:  "./cmd/afterimage-serve",
		workerBin: "./cmd/afterimage-worker",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Dir = repoRoot
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	// ---- Coordinator. ----
	serveAddr := freeAddr(t)
	serve := exec.Command(serveBin,
		"-addr", serveAddr,
		"-store", filepath.Join(work, "store"),
		"-checkpoints", filepath.Join(work, "checkpoints"),
		"-max-campaigns", "4", "-queue", "8", "-tenant-quota", "8",
		"-retry-after", "1s",
		"-cluster",
		"-cluster-heartbeat", "100ms",
		"-cluster-evict-after", "500ms",
		"-cluster-dispatch-rounds", "3",
		"-cluster-dispatch-timeout", "10s",
		"-cluster-hedge-after", "500ms",
	)
	serve.Stdout = os.Stderr
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatalf("start afterimage-serve: %v", err)
	}
	defer func() {
		serve.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { serve.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			serve.Process.Kill()
		}
	}()
	cl := client.New("http://" + serveAddr)
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelReady()
	if err := cl.WaitReady(readyCtx); err != nil {
		t.Fatalf("serve never became ready: %v", err)
	}

	// ---- Three workers, all chaos-capable. ----
	workers := make(map[string]*exec.Cmd, 3)
	logs := make(map[string]*os.File, 3)
	for _, id := range []string{"w1", "w2", "w3"} {
		logf, err := os.Create(filepath.Join(work, id+".log"))
		if err != nil {
			t.Fatal(err)
		}
		logs[id] = logf
		cmd := exec.Command(workerBin,
			"-addr", freeAddr(t),
			"-id", id,
			"-coordinator", "http://"+serveAddr,
			"-checkpoints", filepath.Join(work, id+"-checkpoints"),
			"-register-every", "200ms",
			"-chaos",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %s: %v", id, err)
		}
		workers[id] = cmd
	}
	defer func() {
		for id, cmd := range workers {
			cmd.Process.Kill()
			cmd.Wait()
			logs[id].Close()
		}
		if t.Failed() {
			for _, id := range []string{"w1", "w2", "w3"} {
				if raw, err := os.ReadFile(filepath.Join(work, id+".log")); err == nil {
					t.Logf("---- %s log ----\n%s", id, raw)
				}
			}
		}
	}()

	healthyWorkers := func() int {
		resp, err := http.Get("http://" + serveAddr + "/v1/cluster/workers")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var out struct {
			Workers []cluster.WorkerStatus `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return -1
		}
		n := 0
		for _, w := range out.Workers {
			if w.State == "healthy" {
				n++
			}
		}
		return n
	}
	waitHealthy := func(want int) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if healthyWorkers() >= want {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("pool never reached %d healthy workers (have %d)", want, healthyWorkers())
	}
	waitHealthy(3)

	// ---- Goldens: the same campaigns, in-process, single node. ----
	victim := server.CampaignSpec{
		Tenant: "csoak", Attack: "v1-thread", Seed: 930,
		Bits: 16, Intensities: []float64{0, 1, 2, 3, 4, 5},
	}
	goldens := map[string][]byte{}
	{
		ge := newEnv(t, nil)
		gv, err := ge.cl.Submit(context.Background(), victim)
		if err != nil {
			t.Fatalf("golden victim: %v", err)
		}
		goldens["victim"] = gv.Body
		for seed := int64(931); seed <= 935; seed++ {
			g, err := ge.cl.Submit(context.Background(), tinySpec(seed))
			if err != nil {
				t.Fatalf("golden %d: %v", seed, err)
			}
			goldens[fmt.Sprintf("tiny-%d", seed)] = g.Body
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Sanity: one campaign through the healthy pool, byte-identical.
	res, err := cl.SubmitWait(ctx, tinySpec(931), 30)
	if err != nil {
		t.Fatalf("pre-chaos campaign: %v", err)
	}
	if !bytes.Equal(res.Body, goldens["tiny-931"]) {
		t.Fatal("pre-chaos result diverged from golden")
	}
	if metricValue(t, cl, "cluster.dispatch.requests") == 0 {
		t.Fatal("campaign completed without a cluster dispatch; cluster mode inactive?")
	}

	// ---- Chaos: launch the big victim, then kill w1 and partition w2 while
	// it is in flight. ----
	baseline := metricValue(t, cl, "cluster.dispatch.requests")
	victimc := make(chan error, 1)
	var victimBody []byte
	go func() {
		r, err := cl.SubmitWait(ctx, victim, 60)
		if err == nil {
			victimBody = r.Body
		}
		victimc <- err
	}()
	deadline := time.Now().Add(60 * time.Second)
	for metricValue(t, cl, "cluster.dispatch.requests") <= baseline {
		if time.Now().After(deadline) {
			t.Fatal("victim campaign never dispatched")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := workers["w1"].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL w1: %v", err)
	}
	workers["w1"].Wait()
	if err := workers["w2"].Process.Signal(syscall.SIGUSR1); err != nil {
		t.Fatalf("SIGUSR1 w2: %v", err)
	}
	t.Log("chaos injected: w1 SIGKILLed, w2 partitioned")

	if err := <-victimc; err != nil {
		t.Fatalf("victim campaign failed under chaos: %v", err)
	}
	if !bytes.Equal(victimBody, goldens["victim"]) {
		t.Fatalf("victim diverged from golden under chaos (%d vs %d bytes)",
			len(victimBody), len(goldens["victim"]))
	}

	// Load during the degraded phase: every campaign completes, byte for byte.
	var wg sync.WaitGroup
	for seed := int64(932); seed <= 933; seed++ {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := cl.SubmitWait(ctx, tinySpec(seed), 60)
			if err != nil {
				t.Errorf("seed %d during chaos: %v", seed, err)
				return
			}
			if !bytes.Equal(r.Body, goldens[fmt.Sprintf("tiny-%d", seed)]) {
				t.Errorf("seed %d during chaos diverged from golden", seed)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Heal the partition; w2 must rejoin and the pool keep serving.
	if err := workers["w2"].Process.Signal(syscall.SIGUSR1); err != nil {
		t.Fatalf("heal w2: %v", err)
	}
	res, err = cl.SubmitWait(ctx, tinySpec(934), 60)
	if err != nil {
		t.Fatalf("post-heal campaign: %v", err)
	}
	if !bytes.Equal(res.Body, goldens["tiny-934"]) {
		t.Fatal("post-heal result diverged from golden")
	}

	// ---- Total worker loss: the service must degrade to local, never refuse.
	for _, id := range []string{"w2", "w3"} {
		workers[id].Process.Signal(syscall.SIGKILL)
		workers[id].Wait()
	}
	localBaseline := metricValue(t, cl, "cluster.dispatch.local")
	res, err = cl.SubmitWait(ctx, tinySpec(935), 60)
	if err != nil {
		t.Fatalf("campaign with zero workers: %v", err)
	}
	if !bytes.Equal(res.Body, goldens["tiny-935"]) {
		t.Fatal("zero-worker local result diverged from golden")
	}
	if got := metricValue(t, cl, "cluster.dispatch.local"); got <= localBaseline {
		t.Fatalf("cluster.dispatch.local did not grow (%d -> %d); degrade path not taken", localBaseline, got)
	}
	t.Logf("soak metrics: dispatches=%d failovers=%d hedged=%d local=%d evicted=%d",
		metricValue(t, cl, "cluster.dispatch.requests"),
		metricValue(t, cl, "cluster.dispatch.failovers"),
		metricValue(t, cl, "cluster.dispatch.hedged"),
		metricValue(t, cl, "cluster.dispatch.local"),
		metricValue(t, cl, "cluster.workers.evicted"))
}
